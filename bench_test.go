package hetopt

// The benchmark harness regenerates every table and figure of the paper
// (DESIGN.md maps each benchmark to its artifact). Benchmarks that need
// the trained performance models share one lazily initialized experiment
// suite; model training happens outside the timed region.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"hetopt/internal/automata"
	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/experiments"
	"hetopt/internal/ml"
	"hetopt/internal/offload"
	"hetopt/internal/parem"
	"hetopt/internal/space"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
	benchFig9  []experiments.MethodComparison
)

func suiteForBench(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite()
		benchSuite.Repeats = 2 // keep bench wall-time bounded
		_, benchErr = benchSuite.Models()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

func fig9ForBench(b *testing.B) []experiments.MethodComparison {
	b.Helper()
	s := suiteForBench(b)
	if benchFig9 == nil {
		mcs, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		benchFig9 = mcs
	}
	return benchFig9
}

// BenchmarkFig2 regenerates the motivational sweep (Figure 2 a-c).
func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := s.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatal("wrong scenario count")
		}
	}
}

// BenchmarkTable1Enumeration measures a full enumeration (EM) of the
// 19,926-configuration space (Table I / Section IV-C).
func BenchmarkTable1Enumeration(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	w := offload.GenomeWorkload(dna.Human)
	inst := &core.Instance{Schema: s.Schema, Measurer: core.NewMeasurer(s.Platform, w)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.EM, inst, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.SearchEvaluations != 19926 {
			b.Fatal("enumeration incomplete")
		}
	}
}

// BenchmarkEnumerationParallel compares sequential and sharded EM
// enumeration of the full 19,926-configuration space: identical results,
// wall-clock scaling with workers (see DESIGN.md, "The search layer").
func BenchmarkEnumerationParallel(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	w := offload.GenomeWorkload(dna.Human)
	inst := &core.Instance{Schema: s.Schema, Measurer: core.NewMeasurer(s.Platform, w)}
	for _, p := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.EM, inst, core.Options{Parallelism: p})
				if err != nil {
					b.Fatal(err)
				}
				if res.SearchEvaluations != 19926 {
					b.Fatal("enumeration incomplete")
				}
			}
		})
	}
}

// BenchmarkSAMMultiChain compares sequential and concurrent execution of
// 4 independent SAM annealing chains sharing the evaluation cache; the
// winner is identical at every parallelism level.
func BenchmarkSAMMultiChain(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	w := offload.GenomeWorkload(dna.Human)
	inst := &core.Instance{Schema: s.Schema, Measurer: core.NewMeasurer(s.Platform, w)}
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.SAM, inst, core.Options{
					Iterations:  2000,
					Seed:        1,
					Restarts:    4,
					Parallelism: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.SearchEvaluations != 4*2001 {
					b.Fatal("chain budget mismatch")
				}
			}
		})
	}
}

// BenchmarkSAMLMultiChain is the prediction-driven variant: 4 SAML
// chains over the shared memoized predictor.
func BenchmarkSAMLMultiChain(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	w := offload.GenomeWorkload(dna.Human)
	models, err := s.Models()
	if err != nil {
		b.Fatal(err)
	}
	pred, err := core.NewPredictor(models, w, s.Platform.Model())
	if err != nil {
		b.Fatal(err)
	}
	inst := &core.Instance{Schema: s.Schema, Measurer: core.NewMeasurer(s.Platform, w), Predictor: pred}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(core.SAML, inst, core.Options{
					Iterations:  2000,
					Seed:        1,
					Restarts:    4,
					Parallelism: p,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelTraining measures the full Figure 4 pipeline: generating
// 7,200 experiments and fitting both BDTR models.
func BenchmarkModelTraining(b *testing.B) {
	b.ReportAllocs()
	platform := offload.NewPlatform()
	plan := core.PaperTrainingPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(platform, plan, core.TrainOptions{SplitSeed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5HostPrediction regenerates the host measured-vs-predicted
// curves.
func BenchmarkFig5HostPrediction(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6DevicePrediction regenerates the device curves.
func BenchmarkFig6DevicePrediction(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ErrorHistogram regenerates the host error histogram.
func BenchmarkFig7ErrorHistogram(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eh, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if eh.Hist.Total() == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFig8ErrorHistogram regenerates the device error histogram.
func BenchmarkFig8ErrorHistogram(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4HostAccuracy regenerates the per-thread-count host
// accuracy table and reports the average percent error as a metric.
func BenchmarkTable4HostAccuracy(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	var last experiments.AccuracyTable
	for i := 0; i < b.N; i++ {
		at, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		last = at
	}
	b.ReportMetric(last.AvgPercent, "pct-err")
}

// BenchmarkTable5DeviceAccuracy regenerates the device accuracy table.
func BenchmarkTable5DeviceAccuracy(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	var last experiments.AccuracyTable
	for i := 0; i < b.N; i++ {
		at, err := s.Table5()
		if err != nil {
			b.Fatal(err)
		}
		last = at
	}
	b.ReportMetric(last.AvgPercent, "pct-err")
}

// BenchmarkFig9MethodComparison runs the full per-genome method
// comparison (EM, EML, SAM, SAML across all budgets) for one genome.
func BenchmarkFig9MethodComparison(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MethodComparisonFor(offload.GenomeWorkload(dna.Human)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6PercentDifference derives and renders Table VI from the
// cached comparison, reporting the 1000-iteration average percent
// difference (paper: 10.13%).
func BenchmarkTable6PercentDifference(b *testing.B) {
	b.ReportAllocs()
	mcs := fig9ForBench(b)
	b.ResetTimer()
	var dt experiments.DifferenceTable
	for i := 0; i < b.N; i++ {
		dt = experiments.Table6(mcs)
		if experiments.RenderDifferenceTable(dt, "Table VI") == "" {
			b.Fatal("empty render")
		}
	}
	for i, it := range dt.Iterations {
		if it == 1000 {
			b.ReportMetric(dt.Average[i], "pct-diff@1000")
		}
	}
}

// BenchmarkTable7AbsoluteDifference derives Table VII.
func BenchmarkTable7AbsoluteDifference(b *testing.B) {
	b.ReportAllocs()
	mcs := fig9ForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt := experiments.Table7(mcs)
		if experiments.RenderDifferenceTable(dt, "Table VII") == "" {
			b.Fatal("empty render")
		}
	}
}

// BenchmarkTable8SpeedupVsHost derives Table VIII, reporting the maximal
// 1000-iteration speedup (paper: 1.74x).
func BenchmarkTable8SpeedupVsHost(b *testing.B) {
	b.ReportAllocs()
	mcs := fig9ForBench(b)
	b.ResetTimer()
	var st experiments.SpeedupTable
	for i := 0; i < b.N; i++ {
		st = experiments.Table8(mcs)
	}
	b.ReportMetric(st.MaxSpeedup(1000), "speedup@1000")
}

// BenchmarkTable9SpeedupVsDevice derives Table IX (paper: 2.18x).
func BenchmarkTable9SpeedupVsDevice(b *testing.B) {
	b.ReportAllocs()
	mcs := fig9ForBench(b)
	b.ResetTimer()
	var st experiments.SpeedupTable
	for i := 0; i < b.N; i++ {
		st = experiments.Table9(mcs)
	}
	b.ReportMetric(st.MaxSpeedup(1000), "speedup@1000")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationCoolingRate probes SA initial-temperature sensitivity.
func BenchmarkAblationCoolingRate(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationCoolingRate(offload.GenomeWorkload(dna.Human), 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNeighborhood probes the SA neighborhood structure.
func BenchmarkAblationNeighborhood(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationNeighborhood(offload.GenomeWorkload(dna.Human), 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRegressors compares BDTR vs linear vs Poisson end to
// end (Section III-B).
func BenchmarkAblationRegressors(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationRegressors(offload.GenomeWorkload(dna.Human)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBoostingRounds probes boosted-tree capacity.
func BenchmarkAblationBoostingRounds(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationBoosting(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReport regenerates the entire evaluation (all tables and
// figures, no ablations), the equivalent of cmd/hetbench.
func BenchmarkFullReport(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunAll(io.Discard, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches (beyond the paper) ---

// BenchmarkExtMultiAccelerator tunes the multi-Phi extension (1 and 2
// cards).
func BenchmarkExtMultiAccelerator(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.ExtMultiDevice(offload.GenomeWorkload(dna.Human), 2, 1500)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkExtDynamicScheduling sweeps the dynamic self-scheduling
// baseline against the static EM optimum.
func BenchmarkExtDynamicScheduling(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ExtDynamicScheduling(offload.GenomeWorkload(dna.Human)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtHeuristicComparison ranks SA against tabu, local search,
// genetic and random search under an equal evaluation budget.
func BenchmarkExtHeuristicComparison(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.HeuristicComparison(offload.GenomeWorkload(dna.Human), 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtServingThroughput drives the tuning service end to end
// over HTTP: a mix of repeated tune jobs against servers with 1 and 4
// workers, measuring throughput and the warm-start hit ratio.
func BenchmarkExtServingThroughput(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.ServingThroughput([]int{1, 4}, 3, 2, 60)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.StoreHits != r.Jobs-r.Distinct {
				b.Fatalf("hit accounting broke: %+v", r)
			}
		}
	}
}

// BenchmarkExtStrategyComparison ranks every search strategy — and the
// racing portfolio over the shared evaluation cache — across the three
// objectives under an equal per-worker budget.
func BenchmarkExtStrategyComparison(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.StrategyComparison(offload.GenomeWorkload(dna.Human), 500)
		if err != nil {
			b.Fatal(err)
		}
		if !res.PortfolioNeverWorse {
			b.Fatal("portfolio worse than its best member")
		}
	}
}

// BenchmarkExtAdaptiveRefinement runs the adaptive pipeline (SAML + 60
// measured refinements) for all genomes.
func BenchmarkExtAdaptiveRefinement(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.ExtAdaptive(500, 60)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkExtSizeSweep tunes the distribution across input sizes via
// EML.
func BenchmarkExtSizeSweep(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	sizes := []float64{50, 200, 800, 3246}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExtSizeSweep(offload.GenomeWorkload(dna.Human), sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSONReport builds and encodes the machine-readable report.
func BenchmarkJSONReport(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate benches ---

// BenchmarkParemStrategies compares the parallel matching strategies on
// 8 MiB of synthetic DNA (the PaREM substrate the workload is built on).
func BenchmarkParemStrategies(b *testing.B) {
	b.ReportAllocs()
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		b.Fatal(err)
	}
	text := dna.NewGenerator(dna.Human, 3).Generate(8 << 20)
	want := d.CountMatches(text)
	for _, s := range []parem.Strategy{parem.Sequential, parem.WarmUp, parem.Enumerative} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				res, err := parem.Count(d, text, parem.Options{Strategy: s, Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				if res.Matches != want {
					b.Fatal("count mismatch")
				}
			}
		})
	}
}

// BenchmarkMeasurement measures the cost of one simulated experiment.
func BenchmarkMeasurement(b *testing.B) {
	b.ReportAllocs()
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	cfg := space.Config{
		HostThreads: 48, HostAffinity: AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: AffinityBalanced,
		HostFraction: 60,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Measure(w, cfg, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrediction measures one memoised-miss BDTR prediction.
func BenchmarkPrediction(b *testing.B) {
	b.ReportAllocs()
	s := suiteForBench(b)
	models, err := s.Models()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := models.PredictHost(48, AffinityScatter, float64(1+i%3000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoostedTraining measures fitting one BDTR model on the host
// half-grid.
func BenchmarkBoostedTraining(b *testing.B) {
	b.ReportAllocs()
	platform := offload.NewPlatform()
	data, err := core.GenerateHostData(platform, core.PaperTrainingPlan())
	if err != nil {
		b.Fatal(err)
	}
	train, _, err := data.Split(0.5, 7)
	if err != nil {
		b.Fatal(err)
	}
	opt := ml.BoostOptions{Rounds: 100, LearningRate: 0.1, Tree: ml.TreeOptions{MaxDepth: 6, MinLeaf: 5}, Subsample: 0.9, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.FitBoostedTrees(train, opt); err != nil {
			b.Fatal(err)
		}
	}
}
