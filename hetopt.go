// Package hetopt is the public API of the reproduction of "Combinatorial
// Optimization of Work Distribution on Heterogeneous Systems" (Memeti &
// Pllana, ICPP Workshops 2016).
//
// The library determines a near-optimal system configuration — host and
// device thread counts, thread affinities, and the host/device workload
// fraction — for divisible workloads on heterogeneous platforms, by
// combining simulated annealing over the discrete configuration space
// with boosted-decision-tree regression models that predict per-side
// execution times. The default objective is the paper's
// E = max(T_host, T_device); a calibrated power model extends it to
// energy-aware bi-objective tuning.
//
// Quick start:
//
//	tuner := hetopt.NewTuner()
//	if err := tuner.Train(); err != nil { ... }
//	res, err := tuner.TuneGenome(hetopt.Human, hetopt.SAML, hetopt.Options{Iterations: 1000})
//	fmt.Println(res.Config, res.MeasuredE())
//
// Energy-aware tuning selects a different point on the time/energy
// front — on the paper platform the energy optimum keeps the work on
// the host and powers the accelerator down, trading ~1.6x the makespan
// for ~36% less energy (cmd/hetopt exposes the same choice as
// "-objective energy" or "-objective weighted -alpha 0.5"):
//
//	res, err = tuner.TuneGenome(hetopt.Human, hetopt.SAML, hetopt.Options{
//		Iterations: 1000,
//		Objective:  hetopt.EnergyObjective{},
//	})
//	fmt.Println(res.Config, res.MeasuredJ(), "J")
//
// The constrained mode minimizes energy while staying within a makespan
// slack of the time optimum:
//
//	timeRes, ecoRes, err := tuner.TuneWithTimeSlack(
//		hetopt.GenomeWorkload(hetopt.Human), hetopt.SAML, hetopt.Options{}, 0.10)
//
// The package re-exports the building blocks for advanced use: the
// configuration space (Schema), the platform simulator (Platform), the
// finite-automata matching engine (CompileMotifs, CountMatches), and the
// four optimization methods (EM, EML, SAM, SAML). The internal packages
// documented in DESIGN.md provide the full substrate.
package hetopt

import (
	"fmt"
	"io"

	"hetopt/internal/adaptive"
	"hetopt/internal/automata"
	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/dynsched"
	"hetopt/internal/graph"
	"hetopt/internal/machine"
	"hetopt/internal/multi"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
	"hetopt/internal/scenario"
	"hetopt/internal/serve"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Config is one point of the configuration space: thread counts,
	// affinities and the host workload fraction.
	Config = space.Config
	// Schema is the discrete configuration space (Table I).
	Schema = space.Schema
	// SchemaSpec declares a custom configuration space.
	SchemaSpec = space.SchemaSpec
	// Affinity is a thread pinning strategy.
	Affinity = machine.Affinity
	// Processor describes one processing unit's hardware.
	Processor = machine.Processor
	// Platform couples the host and device performance models and
	// executes (or simulates) runs.
	Platform = offload.Platform
	// Workload is a divisible input.
	Workload = offload.Workload
	// Times reports per-side execution times; Times.E() is the paper's
	// objective.
	Times = offload.Times
	// Energy reports per-side energy in joules; Energy.Total() is the
	// energy objective.
	Energy = offload.Energy
	// Measurement couples times and energy from one evaluation.
	Measurement = offload.Measurement
	// Objective selects what a search minimizes (time, energy, or a
	// trade-off); see TimeObjective and friends.
	Objective = core.Objective
	// TimeObjective is the paper's makespan objective (the default).
	TimeObjective = core.TimeObjective
	// EnergyObjective minimizes total joules across engaged units.
	EnergyObjective = core.EnergyObjective
	// WeightedSumObjective minimizes alpha*T + (1-alpha)*E/PowerScaleW.
	WeightedSumObjective = core.WeightedSumObjective
	// TimeBoundedObjective minimizes energy subject to a makespan bound.
	TimeBoundedObjective = core.TimeBoundedObjective
	// Method is one of the four optimization methods.
	Method = core.Method
	// Options tunes an optimization run.
	Options = core.Options
	// Strategy is a pluggable search strategy over the configuration
	// space (set via Options.Strategy, MultiTuneOptions.Strategy or
	// RefineOptions.Strategy; nil keeps the method presets).
	Strategy = strategy.Strategy
	// AnnealStrategy is the paper's simulated annealing as an injectable
	// strategy; ExhaustiveStrategy enumerates; GeneticStrategy,
	// TabuStrategy, LocalStrategy and RandomStrategy port the
	// alternative metaheuristics; PortfolioStrategy races any member set
	// over a shared evaluation cache.
	AnnealStrategy     = strategy.Anneal
	ExhaustiveStrategy = strategy.Exhaustive
	GeneticStrategy    = strategy.Genetic
	TabuStrategy       = strategy.Tabu
	LocalStrategy      = strategy.Local
	RandomStrategy     = strategy.Random
	PortfolioStrategy  = strategy.Portfolio
	// ExactStrategy is the deterministic branch-and-bound member, the
	// only strategy that proves its answer: it returns a Certificate
	// and, with a positive PoolSize, a diverse near-optimal solution
	// pool (cmd/hetopt exposes the knobs as -strategy exact -prove
	// -pool-size N -pool-gap G).
	ExactStrategy = strategy.Exact
	// Certificate is a branch-and-bound optimality certificate; read it
	// through Result.Certificate or PlacementResult.Certificate.
	Certificate = strategy.Certificate
	// PoolEntry is one raw (index-vector) member of a placement search's
	// solution pool; PoolConfig is its decoded divisible-space
	// counterpart on Result.Pool.
	PoolEntry  = strategy.PoolEntry
	PoolConfig = core.PoolConfig
	// Result is a completed optimization run.
	Result = core.Result
	// Models bundles the trained host/device performance predictors.
	Models = core.Models
	// TrainingPlan is the model-training experiment grid.
	TrainingPlan = core.TrainingPlan
	// TrainOptions configures model training.
	TrainOptions = core.TrainOptions
	// Genome describes a DNA input.
	Genome = dna.Genome
	// Motif is a nucleotide pattern (IUPAC codes allowed).
	Motif = dna.Motif
	// Generator produces deterministic synthetic DNA.
	Generator = dna.Generator
	// DFA is a compiled matching automaton.
	DFA = automata.DFA
	// PerfModel is the analytic performance model behind a Platform.
	PerfModel = perf.Model
	// Calibration collects the performance model's constants.
	Calibration = perf.Calibration
	// MultiPlatform is a host plus several accelerators (the paper's
	// future-work scenario); MultiProblem/MultiConfig/MultiResult tune
	// work distribution across all of them.
	MultiPlatform = multi.Platform
	MultiProblem  = multi.Problem
	MultiConfig   = multi.Config
	MultiResult   = multi.Result
	// MultiTuneOptions configures a parallel multi-accelerator tuning run
	// (chain count and worker pool).
	MultiTuneOptions = multi.TuneOptions
	// DynamicScheduler simulates CoreTsar-style dynamic self-scheduling,
	// the related-work baseline.
	DynamicScheduler = dynsched.Scheduler
	DynamicConfig    = dynsched.Config
	// Match is a streamed match event (end position + multiplicity).
	Match = automata.Match
	// RefineOptions and RefineResult configure and report adaptive
	// measured refinement of a suggested configuration.
	RefineOptions = adaptive.Options
	RefineResult  = adaptive.Result
	// Server is the embeddable tuning-as-a-service HTTP handler
	// (cmd/hetserved wraps it): async jobs over a bounded worker pool
	// with a warm-start result store. ServeOptions configures it.
	Server       = serve.Server
	ServeOptions = serve.Options
	// TuneRequest and TuneResult are the service's wire types;
	// TuneRequest.Normalize canonicalizes a request the way the
	// warm-start store keys it.
	TuneRequest = serve.TuneRequest
	TuneResult  = serve.TuneResult
	// TuneJobStatus is the wire form of one async job;
	// TuneBatchRequest the batch/alpha-sweep submission form, and
	// ServerMetrics the counters behind GET /v1/metrics.
	TuneJobStatus    = serve.JobStatus
	TuneBatchRequest = serve.BatchRequest
	ServerMetrics    = serve.Metrics
	// ScenarioFamily is a registered workload family (traits plus named
	// size presets); ScenarioPreset one of its sizes; ScenarioPlatform a
	// registered platform spec (topology + calibration + configuration
	// space); ScenarioRegistry a catalog of both. See internal/scenario
	// and DESIGN.md, "The scenario layer".
	ScenarioFamily   = scenario.Family
	ScenarioPreset   = scenario.SizePreset
	ScenarioPlatform = scenario.PlatformSpec
	ScenarioRegistry = scenario.Registry
	// Scenario is a fully resolved (platform, workload) pair; its IsDAG
	// method distinguishes task-graph scenarios from divisible ones.
	Scenario = scenario.Scenario
	// GraphWorkload is a task-graph (DAG) workload: named nodes with
	// per-node compute cost and edges with transfer volumes, placed
	// node-by-node across host and device instead of split by a
	// fraction. GraphNode/GraphEdge are its parts and GraphLink the
	// host-device interconnect pricing cross-side transfers.
	GraphWorkload = graph.Workload
	GraphNode     = graph.Node
	GraphEdge     = graph.Edge
	GraphLink     = graph.Link
	// GraphSim is the deterministic list-scheduling simulator pricing a
	// graph on one platform; PlacementResult a completed placement
	// search with its baselines.
	GraphSim        = graph.Sim
	PlacementResult = graph.Result
	// SearchOptions configures a raw strategy-layer search (placement
	// tuning uses it directly; divisible tuning wraps it in Options).
	SearchOptions = strategy.Options
)

// Affinity values (Table I).
const (
	AffinityNone     = machine.AffinityNone
	AffinityScatter  = machine.AffinityScatter
	AffinityCompact  = machine.AffinityCompact
	AffinityBalanced = machine.AffinityBalanced
)

// The four optimization methods (Table II).
const (
	EM   = core.EM
	EML  = core.EML
	SAM  = core.SAM
	SAML = core.SAML
)

// The paper's evaluation genomes.
var (
	Human = dna.Human
	Mouse = dna.Mouse
	Cat   = dna.Cat
	Dog   = dna.Dog
)

// NewPlatform returns the simulated paper platform (2x Xeon E5-2695v2 +
// Xeon Phi 7120P).
func NewPlatform() *Platform { return offload.NewPlatform() }

// NewCustomPlatform wraps a custom performance model (host/device
// processor descriptions plus calibration), enabling tuning for machines
// other than the paper's.
func NewCustomPlatform(m *PerfModel) *Platform { return offload.NewPlatformWithModel(m) }

// DefaultCalibration returns the calibration constants of the paper
// platform, a starting point for custom machines.
func DefaultCalibration() Calibration { return perf.DefaultCalibration() }

// XeonE5Host and XeonPhi7120P return the paper's processor descriptions.
func XeonE5Host() *Processor   { return machine.XeonE5Host() }
func XeonPhi7120P() *Processor { return machine.XeonPhi7120P() }

// PaperSchema returns the paper's 19,926-configuration space.
func PaperSchema() *Schema { return space.PaperSchema() }

// NewSchema builds a custom configuration space.
func NewSchema(spec SchemaSpec) (*Schema, error) { return space.NewSchema(spec) }

// Genomes returns the four evaluation genomes.
func Genomes() []Genome { return dna.Genomes() }

// GenomeByName looks up an evaluation genome ("human", "mouse", "cat",
// "dog").
func GenomeByName(name string) (Genome, error) { return dna.GenomeByName(name) }

// GenomeWorkload converts a genome to a tunable workload.
func GenomeWorkload(g Genome) Workload { return offload.GenomeWorkload(g) }

// DefaultMotifs returns the built-in biological motif set.
func DefaultMotifs() []Motif { return dna.DefaultMotifs() }

// CompileMotifs builds an Aho-Corasick matching automaton for a motif
// set.
func CompileMotifs(motifs []Motif) (*DFA, error) { return automata.CompileMotifs(motifs) }

// CompilePattern compiles a single regex-like motif pattern into a search
// automaton.
func CompilePattern(pattern string) (*DFA, error) { return automata.CompilePattern(pattern) }

// NewGenerator creates a deterministic synthetic-DNA generator for a
// genome's composition.
func NewGenerator(g Genome, seed uint64) *Generator { return dna.NewGenerator(g, seed) }

// WriteFASTA writes one FASTA record to w.
func WriteFASTA(w io.Writer, header string, seq []byte) error {
	return dna.WriteFASTA(w, header, seq)
}

// ReadFASTA parses all FASTA records from r.
func ReadFASTA(r io.Reader) ([]dna.FASTARecord, error) { return dna.ReadFASTA(r) }

// PaperTrainingPlan returns the 7,200-experiment training grid.
func PaperTrainingPlan() TrainingPlan { return core.PaperTrainingPlan() }

// TrainModels generates training data on the platform and fits the
// per-side performance predictors.
func TrainModels(p *Platform, plan TrainingPlan, opt TrainOptions) (*Models, error) {
	return core.Train(p, plan, opt)
}

// SaveModelsFile persists trained models (off-line learning: train once,
// reuse the predictor without re-measuring).
func SaveModelsFile(m *Models, path string) error { return core.SaveModelsFile(m, path) }

// LoadModelsFile restores models written by SaveModelsFile.
func LoadModelsFile(path string) (*Models, error) { return core.LoadModelsFile(path) }

// ParseMethod converts a method name into a Method.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ParseStrategy converts a strategy name ("anneal", "exhaustive",
// "exact", "genetic", "tabu", "local", "random", "portfolio") into a
// Strategy; the empty name (or "auto") returns nil, selecting each
// method's preset explorer.
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// Pool-knob bounds of the exact strategy, shared by flag and wire
// validation: a zero PoolGap with a positive PoolSize selects
// DefaultPoolGap, and PoolSize clamps at MaxPoolSize.
const (
	DefaultPoolGap = strategy.DefaultPoolGap
	MaxPoolSize    = strategy.MaxPoolSize
)

// StrategyNames lists the parseable strategy names.
func StrategyNames() []string { return strategy.Names() }

// DefaultPortfolio races the paper's annealer against all four
// alternative metaheuristics over a shared evaluation cache.
func DefaultPortfolio() PortfolioStrategy { return strategy.DefaultPortfolio() }

// DefaultAnneal returns the paper's simulated-annealing schedule as an
// injectable strategy.
func DefaultAnneal() AnnealStrategy { return strategy.DefaultAnneal() }

// PlacementString encodes a graph placement canonically: one character
// per node, 'h' or 'd'. ParsePlacement inverts it.
func PlacementString(placement []int) string { return graph.PlacementString(placement) }

// ParsePlacement decodes a PlacementString.
func ParsePlacement(s string) ([]int, error) { return graph.ParsePlacement(s) }

// ParseObjective converts an objective name ("time", "energy",
// "weighted") into an Objective; alpha is the time weight consulted by
// "weighted". The constrained minimum-energy mode is built from a
// time-optimal run instead — see Tuner.TuneWithTimeSlack.
func ParseObjective(name string, alpha float64) (Objective, error) {
	return core.ParseObjective(name, alpha)
}

// MultiPhiProblem builds the multi-accelerator tuning problem for the
// paper's host with n Xeon Phi cards over the Table I value sets.
func MultiPhiProblem(n int, w Workload) (*MultiProblem, error) {
	return multi.PaperProblem(n, w)
}

// TuneMulti runs simulated annealing over a multi-accelerator problem.
func TuneMulti(p *MultiProblem, iterations int, seed int64) (MultiResult, error) {
	return multi.Tune(p, iterations, seed)
}

// TuneMultiParallel runs one or more concurrent annealing chains over a
// multi-accelerator problem; chains share an evaluation cache and the
// result is identical at every parallelism level for a fixed seed.
func TuneMultiParallel(p *MultiProblem, opt MultiTuneOptions) (MultiResult, error) {
	return multi.TuneParallel(p, opt)
}

// NewDynamicScheduler returns the dynamic self-scheduling baseline on the
// paper platform's performance model.
func NewDynamicScheduler() *DynamicScheduler { return dynsched.NewScheduler() }

// Scenarios returns the process-wide scenario registry: the built-in
// catalog (the paper's DNA-on-paper default plus the spmv, stencil and
// crypto families and the gpu-like and edge platforms), extensible via
// its Register methods.
func Scenarios() *ScenarioRegistry { return scenario.Default() }

// ScenarioWorkload resolves a registered workload name ("spmv",
// "dna:human", a genome name, ...) into a tunable workload.
func ScenarioWorkload(name string) (Workload, error) { return scenario.ResolveWorkload(name) }

// ScenarioPlatformByName resolves a registered platform name ("paper",
// "gpu-like", "edge") into its spec; spec.Platform() and spec.Schema()
// produce the tuner inputs.
func ScenarioPlatformByName(name string) (ScenarioPlatform, error) {
	return scenario.PlatformByName(name)
}

// ScenarioLookup resolves a registered (platform, workload) pair into a
// runnable scenario — the shared resolution path of the CLIs, the
// experiment suite and the serving layer. For DAG scenarios,
// Scenario.DAGSim builds the placement simulator.
func ScenarioLookup(platformName, workloadName string) (Scenario, error) {
	return scenario.Lookup(platformName, workloadName)
}

// GraphPresets returns the built-in task-graph workloads (the "dag"
// scenario family).
func GraphPresets() []GraphWorkload { return graph.Presets() }

// TunePlacement searches the makespan-minimizing placement of a task
// graph over its simulator; a nil strategy enumerates the 2^n
// placements exhaustively. Results are deterministic: same simulator,
// strategy and options produce bit-identical placements at any
// parallelism.
func TunePlacement(sim *GraphSim, strat Strategy, opt SearchOptions) (PlacementResult, error) {
	return graph.Tune(sim, strat, opt)
}

// NewScenarioTuner assembles a Tuner for a registered workload family
// on a registered platform: the platform's substrate, schema and the
// family-specific training plan.
func NewScenarioTuner(platformName, workloadName string) (*Tuner, Workload, error) {
	sc, err := scenario.Lookup(platformName, workloadName)
	if err != nil {
		return nil, Workload{}, err
	}
	return &Tuner{
		Platform: sc.Platform.Platform(),
		Schema:   sc.Schema,
		Plan:     sc.TrainingPlan(),
		TrainOpt: TrainOptions{SplitSeed: 7},
	}, sc.Workload, nil
}

// NewServer builds the tuning service handler: mount it on any
// http.Server (or use cmd/hetserved), POST tune jobs to /v1/jobs, and
// poll /v1/jobs/{id}. Identical requests are answered bit-identically,
// repeats from the warm-start store.
func NewServer(opt ServeOptions) *Server { return serve.New(opt) }

// CompileMotifsBothStrands compiles a motif set matching both DNA
// strands (each motif plus its reverse complement; palindromes once).
func CompileMotifsBothStrands(motifs []Motif) (*DFA, error) {
	return automata.CompileMotifsBothStrands(motifs)
}

// ReverseComplement returns the reverse complement of a concrete
// sequence.
func ReverseComplement(seq []byte) []byte { return dna.ReverseComplement(seq) }

// ParseAffinity converts an affinity name into an Affinity.
func ParseAffinity(s string) (Affinity, error) { return machine.ParseAffinity(s) }

// Tuner is the high-level entry point: it owns a platform, a
// configuration space and (after Train) the prediction models, and runs
// any of the four optimization methods against a workload.
type Tuner struct {
	// Platform is the measurement substrate (replaceable for custom
	// machines).
	Platform *Platform
	// Schema is the configuration space.
	Schema *Schema
	// Plan is the training grid used by Train.
	Plan TrainingPlan
	// TrainOpt configures model fitting.
	TrainOpt TrainOptions
	// Models holds the trained predictors (nil until Train, unless
	// assigned directly).
	Models *Models
}

// NewTuner returns a Tuner with the paper's defaults.
func NewTuner() *Tuner {
	return &Tuner{
		Platform: NewPlatform(),
		Schema:   PaperSchema(),
		Plan:     PaperTrainingPlan(),
		TrainOpt: TrainOptions{SplitSeed: 7},
	}
}

// Train generates training data and fits the prediction models. It is
// required before running the ML-based methods (EML, SAML).
func (t *Tuner) Train() error {
	models, err := core.Train(t.Platform, t.Plan, t.TrainOpt)
	if err != nil {
		return err
	}
	t.Models = models
	return nil
}

// instance assembles the optimizer inputs for a workload.
func (t *Tuner) instance(w Workload, needML bool) (*core.Instance, error) {
	inst := &core.Instance{
		Schema:   t.Schema,
		Measurer: core.NewMeasurer(t.Platform, w),
	}
	if t.Models != nil {
		pred, err := core.NewPredictor(t.Models, w, t.Platform.Model())
		if err != nil {
			return nil, err
		}
		inst.Predictor = pred
	} else if needML {
		return nil, fmt.Errorf("hetopt: method requires trained models; call Tuner.Train first")
	}
	return inst, nil
}

// Tune runs the given optimization method for a workload and returns the
// suggested configuration with its fair-comparison measurement.
func (t *Tuner) Tune(w Workload, m Method, opt Options) (Result, error) {
	inst, err := t.instance(w, m.UsesML())
	if err != nil {
		return Result{}, err
	}
	return core.Run(m, inst, opt)
}

// TuneGenome is Tune for one of the evaluation genomes.
func (t *Tuner) TuneGenome(g Genome, m Method, opt Options) (Result, error) {
	return t.Tune(GenomeWorkload(g), m, opt)
}

// TuneWithTimeSlack is the constrained bi-objective pipeline: it first
// finds the time-optimal configuration with method m, then minimizes
// energy subject to the makespan staying within (1+slack) of that
// optimum. It returns the time-optimal reference and the energy-minimal
// result within the slack.
func (t *Tuner) TuneWithTimeSlack(w Workload, m Method, opt Options, slack float64) (timeRes, energyRes Result, err error) {
	inst, err := t.instance(w, m.UsesML())
	if err != nil {
		return Result{}, Result{}, err
	}
	return core.RunWithTimeSlack(m, inst, opt, slack)
}

// TuneAndRefine runs the adaptive pipeline (paper future work): SAML
// proposes a configuration from predictions, then a small budget of real
// measurements hill-climbs from it.
func (t *Tuner) TuneAndRefine(w Workload, samlOpt Options, refineOpt RefineOptions) (Result, RefineResult, error) {
	inst, err := t.instance(w, true)
	if err != nil {
		return Result{}, RefineResult{}, err
	}
	return adaptive.TuneAndRefine(inst, samlOpt, refineOpt)
}

// Baselines measures the host-only and device-only reference
// configurations for a workload (Tables VIII and IX).
func (t *Tuner) Baselines(w Workload) (hostOnly, deviceOnly Result, err error) {
	inst, err := t.instance(w, false)
	if err != nil {
		return Result{}, Result{}, err
	}
	hostOnly, err = core.HostOnlyBaseline(inst)
	if err != nil {
		return Result{}, Result{}, err
	}
	deviceOnly, err = core.DeviceOnlyBaseline(inst)
	if err != nil {
		return Result{}, Result{}, err
	}
	return hostOnly, deviceOnly, nil
}
