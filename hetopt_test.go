package hetopt

import (
	"sync"
	"testing"
)

// trainedTuner is shared across tests; training dominates runtime and is
// deterministic.
var (
	tunerOnce sync.Once
	tuner     *Tuner
	tunerErr  error
)

func sharedTuner(t *testing.T) *Tuner {
	t.Helper()
	tunerOnce.Do(func() {
		tuner = NewTuner()
		tunerErr = tuner.Train()
	})
	if tunerErr != nil {
		t.Fatal(tunerErr)
	}
	return tuner
}

func TestTunerSAMLEndToEnd(t *testing.T) {
	tu := sharedTuner(t)
	res, err := tu.TuneGenome(Human, SAML, Options{Iterations: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != SAML {
		t.Fatalf("method = %v", res.Method)
	}
	if res.Config.HostFraction <= 0 || res.Config.HostFraction >= 100 {
		t.Errorf("SAML should split work, got fraction %g", res.Config.HostFraction)
	}
	host, dev, err := tu.Baselines(GenomeWorkload(Human))
	if err != nil {
		t.Fatal(err)
	}
	hostSpeedup := host.MeasuredE() / res.MeasuredE()
	devSpeedup := dev.MeasuredE() / res.MeasuredE()
	// Paper Section IV-D bands: 1.74x and 2.18x at 1000 iterations.
	if hostSpeedup < 1.1 {
		t.Errorf("speedup vs host-only = %.2f, expected > 1.1", hostSpeedup)
	}
	if devSpeedup < 1.2 {
		t.Errorf("speedup vs device-only = %.2f, expected > 1.2", devSpeedup)
	}
}

func TestTunerRequiresTrainingForML(t *testing.T) {
	fresh := NewTuner()
	if _, err := fresh.Tune(GenomeWorkload(Cat), SAML, Options{Iterations: 10}); err == nil {
		t.Fatal("SAML without training should fail")
	}
	// Measurement-based methods work untrained.
	if _, err := fresh.Tune(GenomeWorkload(Cat), SAM, Options{Iterations: 10, Seed: 1}); err != nil {
		t.Fatalf("SAM should not need training: %v", err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if len(Genomes()) != 4 {
		t.Error("Genomes() should return 4 genomes")
	}
	g, err := GenomeByName("dog")
	if err != nil || g.Name != "dog" {
		t.Fatalf("GenomeByName: %v %v", g, err)
	}
	m, err := ParseMethod("saml")
	if err != nil || m != SAML {
		t.Fatalf("ParseMethod: %v %v", m, err)
	}
	a, err := ParseAffinity("balanced")
	if err != nil || a != AffinityBalanced {
		t.Fatalf("ParseAffinity: %v %v", a, err)
	}
	if PaperSchema().Size() != 19926 {
		t.Error("paper schema size wrong")
	}
}

func TestFacadeMatchingPipeline(t *testing.T) {
	d, err := CompileMotifs(DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(Human, 11)
	text := gen.Generate(1 << 16)
	if d.CountMatches(text) == 0 {
		t.Error("default motifs should occur in 64 KiB of synthetic DNA")
	}
	re, err := CompilePattern("GT(A|G)AGT")
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExecuteRealRun(t *testing.T) {
	tu := sharedTuner(t)
	d, err := CompileMotifs(DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	gen := NewGenerator(Mouse, 4)
	total := int64(1 << 19)
	cfg := Config{
		HostThreads: 48, HostAffinity: AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: AffinityBalanced,
		HostFraction: 60,
	}
	rep, err := tu.Platform.Execute(GenomeWorkload(Mouse), cfg, d, gen, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := d.CountMatches(gen.Generate(int(total)))
	if rep.Matches != seq {
		t.Fatalf("heterogeneous execution counted %d, sequential %d", rep.Matches, seq)
	}
}

func TestCustomSchema(t *testing.T) {
	sc, err := NewSchema(SchemaSpec{
		HostThreads:      []int{8, 16},
		HostAffinities:   []Affinity{AffinityScatter},
		DeviceThreads:    []int{64},
		DeviceAffinities: []Affinity{AffinityBalanced},
		Fractions:        []float64{0, 50, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Size() != 2*1*1*1*3 {
		t.Fatalf("custom schema size = %d", sc.Size())
	}
}

func TestTunerTuneAndRefine(t *testing.T) {
	tu := sharedTuner(t)
	saml, refined, err := tu.TuneAndRefine(GenomeWorkload(Dog),
		Options{Iterations: 400, Seed: 9},
		RefineOptions{MeasureBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	if refined.MeasuredE > saml.MeasuredE() {
		t.Fatalf("refinement worsened the suggestion: %g -> %g", saml.MeasuredE(), refined.MeasuredE)
	}
	if refined.Measurements > 40 {
		t.Fatalf("budget exceeded: %d", refined.Measurements)
	}
}

func TestBothStrandsFacade(t *testing.T) {
	d, err := CompileMotifsBothStrands([]Motif{{Name: "tata", Pattern: "TATAAA"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountMatches([]byte("TTTATA")); got != 1 {
		t.Fatalf("reverse strand count = %d", got)
	}
	rc := ReverseComplement([]byte("AACG"))
	if string(rc) != "CGTT" {
		t.Fatalf("rc = %s", rc)
	}
}
