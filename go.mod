module hetopt

go 1.23
