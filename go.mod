module hetopt

go 1.24
