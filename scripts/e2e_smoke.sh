#!/usr/bin/env bash
# End-to-end smoke test for the tuning service: builds nothing itself —
# pass the hetserved binary as $1 (default ./hetserved). Starts the
# server, submits one tune job and one batch (alpha sweep) with curl,
# polls everything to completion, asserts the cached re-POST is a
# bit-identical store hit, and shuts the server down gracefully.
#
# Local use:
#   go build -o hetserved ./cmd/hetserved && scripts/e2e_smoke.sh ./hetserved
#
# Requires curl and jq.
set -euo pipefail

BIN=${1:-./hetserved}
ADDR=127.0.0.1:18080
BASE="http://$ADDR/v1"

command -v jq >/dev/null || { echo "e2e: jq is required" >&2; exit 1; }
command -v curl >/dev/null || { echo "e2e: curl is required" >&2; exit 1; }
[ -x "$BIN" ] || { echo "e2e: $BIN is not executable" >&2; exit 1; }

"$BIN" -addr "$ADDR" -workers 2 -queue 16 -cache-size 64 &
SERVER_PID=$!
cleanup() { kill "$SERVER_PID" 2>/dev/null || true; }
trap cleanup EXIT

# Liveness: wait for /v1/healthz.
for i in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 100 ] && { echo "e2e: server never became healthy" >&2; exit 1; }
  sleep 0.1
done

# poll JOB_ID -> prints the final status JSON, fails on job failure.
poll() {
  local id=$1 st state
  for i in $(seq 1 600); do
    st=$(curl -fsS "$BASE/jobs/$id")
    state=$(echo "$st" | jq -r .state)
    case "$state" in
      done) echo "$st"; return 0 ;;
      failed) echo "e2e: job $id failed: $st" >&2; return 1 ;;
    esac
    sleep 0.1
  done
  echo "e2e: job $id never completed" >&2
  return 1
}

REQ='{"genome":"human","method":"sam","iterations":300,"seed":7}'

echo "e2e: submitting one tune job"
first=$(curl -fsS -X POST "$BASE/jobs" -d "$REQ")
id1=$(echo "$first" | jq -r .id)
st1=$(poll "$id1")
[ "$(echo "$st1" | jq -r .cached)" = "false" ] \
  || { echo "e2e: first job unexpectedly marked cached: $st1" >&2; exit 1; }

echo "e2e: submitting a batch alpha sweep"
batch=$(curl -fsS -X POST "$BASE/jobs:batch" \
  -d '{"template":{"method":"sam","iterations":200,"seed":3},"alphas":[0,0.5,1]}')
count=$(echo "$batch" | jq '.jobs | length')
[ "$count" = 3 ] || { echo "e2e: batch accepted $count jobs, want 3" >&2; exit 1; }
for id in $(echo "$batch" | jq -r '.jobs[].id'); do
  poll "$id" >/dev/null
done

echo "e2e: re-POSTing the first request (must be an inline store hit, no poll)"
second=$(curl -fsS -X POST "$BASE/jobs" -d "$REQ")
[ "$(echo "$second" | jq -r .state)" = "done" ] \
  || { echo "e2e: cached re-POST not answered synchronously: $second" >&2; exit 1; }
[ "$(echo "$second" | jq -r .cached)" = "true" ] \
  || { echo "e2e: re-POST was not served from the store: $second" >&2; exit 1; }
[ "$(echo "$second" | jq -r .id)" = "null" ] \
  || { echo "e2e: warm re-POST registered a job (id present) instead of answering inline: $second" >&2; exit 1; }

r1=$(echo "$st1" | jq -cS .result)
r2=$(echo "$second" | jq -cS .result)
[ "$r1" = "$r2" ] \
  || { echo "e2e: identical requests returned different results:" >&2; echo "$r1" >&2; echo "$r2" >&2; exit 1; }

echo "e2e: re-POSTing again (warm hits are served stored bytes, byte-identical)"
third=$(curl -fsS -X POST "$BASE/jobs" -d "$REQ")
[ "$second" = "$third" ] \
  || { echo "e2e: two warm re-POSTs returned different bodies:" >&2; echo "$second" >&2; echo "$third" >&2; exit 1; }

echo "e2e: submitting a cold job with ?wait=1 (inline completion)"
wjob=$(curl -fsS -X POST "$BASE/jobs?wait=1" \
  -d '{"genome":"human","method":"sam","iterations":120,"seed":21}')
[ "$(echo "$wjob" | jq -r .state)" = "done" ] \
  || { echo "e2e: wait=1 POST not answered with a terminal state: $wjob" >&2; exit 1; }
[ "$(echo "$wjob" | jq -r .id)" != "null" ] \
  || { echo "e2e: wait=1 cold job was not registered: $wjob" >&2; exit 1; }

metrics=$(curl -fsS "$BASE/metrics")
hits=$(echo "$metrics" | jq .jobs.store_hits)
[ "$hits" -ge 2 ] || { echo "e2e: metrics report $hits store hits, want >= 2" >&2; exit 1; }
warm=$(echo "$metrics" | jq .latency.warm.count)
[ "$warm" -ge 2 ] || { echo "e2e: metrics report $warm warm-hit requests, want >= 2" >&2; exit 1; }

echo "e2e: discovering the scenario catalog"
scen=$(curl -fsS "$BASE/scenarios")
echo "$scen" | jq -e '.workloads | map(.name) | index("spmv")' >/dev/null \
  || { echo "e2e: /v1/scenarios does not list spmv: $scen" >&2; exit 1; }
echo "$scen" | jq -e '.platforms | map(.name) | index("gpu-like")' >/dev/null \
  || { echo "e2e: /v1/scenarios does not list gpu-like: $scen" >&2; exit 1; }

echo "e2e: tuning a non-default scenario (spmv on gpu-like)"
sjob=$(curl -fsS -X POST "$BASE/jobs" \
  -d '{"workload":"spmv","platform":"gpu-like","method":"sam","iterations":150,"seed":5}')
sid=$(echo "$sjob" | jq -r .id)
sres=$(poll "$sid")
[ "$(echo "$sres" | jq -r .request.workload)" = "spmv:medium" ] \
  || { echo "e2e: scenario workload not canonicalized: $sres" >&2; exit 1; }
[ "$(echo "$sres" | jq -r .request.platform)" = "gpu-like" ] \
  || { echo "e2e: scenario platform lost: $sres" >&2; exit 1; }

echo "e2e: discovering the task-graph presets"
echo "$scen" | jq -e '.workloads | map(select(.class == "dag")) | map(.name) | index("dag")' >/dev/null \
  || { echo "e2e: /v1/scenarios does not list the dag family: $scen" >&2; exit 1; }
for preset in resnet-ish fork-join sparse-solver; do
  echo "$scen" | jq -e --arg p "$preset" \
    '.workloads[] | select(.name == "dag") | .presets | map(.name) | index($p)' >/dev/null \
    || { echo "e2e: /v1/scenarios does not list dag preset $preset: $scen" >&2; exit 1; }
done

echo "e2e: tuning a task-graph placement (dag:resnet-ish on gpu-like)"
DAGREQ='{"workload":"dag:resnet-ish","platform":"gpu-like","method":"em","seed":11}'
djob=$(curl -fsS -X POST "$BASE/jobs" -d "$DAGREQ")
did=$(echo "$djob" | jq -r .id)
dres=$(poll "$did")
[ "$(echo "$dres" | jq -r .request.workload)" = "dag:resnet-ish" ] \
  || { echo "e2e: dag workload not canonicalized: $dres" >&2; exit 1; }
[ "$(echo "$dres" | jq -r .result.placement.encoded | wc -c)" -gt 1 ] \
  || { echo "e2e: dag result has no encoded placement: $dres" >&2; exit 1; }
dspeed=$(echo "$dres" | jq -r .result.placement.speedup_vs_host)
ok=$(awk -v s="$dspeed" 'BEGIN { print (s + 0 > 1.0) ? "yes" : "no" }')
[ "$ok" = "yes" ] \
  || { echo "e2e: dag placement speedup_vs_host=$dspeed, want > 1.0" >&2; exit 1; }

echo "e2e: re-POSTing the dag request (must be a bit-identical store hit)"
dsecond=$(curl -fsS -X POST "$BASE/jobs" -d "$DAGREQ")
[ "$(echo "$dsecond" | jq -r .cached)" = "true" ] \
  || { echo "e2e: dag re-POST was not served from the store: $dsecond" >&2; exit 1; }
d1=$(echo "$dres" | jq -cS .result)
d2=$(echo "$dsecond" | jq -cS .result)
[ "$d1" = "$d2" ] \
  || { echo "e2e: identical dag requests returned different results:" >&2; echo "$d1" >&2; echo "$d2" >&2; exit 1; }

echo "e2e: graceful shutdown (SIGTERM)"
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "e2e: server exited non-zero on SIGTERM" >&2
  exit 1
fi
trap - EXIT

echo "e2e: ok (1 job + 3 batch jobs + 1 scenario job + 1 dag placement + 1 wait=1 job tuned, inline warm hits byte-identical, clean shutdown)"
