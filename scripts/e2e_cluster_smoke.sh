#!/usr/bin/env bash
# End-to-end smoke test for the sharded hetserved cluster: starts three
# nodes on localhost, warms one key cluster-wide, asserts every node
# answers it with byte-identical bytes while exactly one compute is
# paid across the cluster, exercises the scatter-gather batch, then
# kills the key's owner and asserts a surviving node fails over to the
# follower's replicated entry and still answers warm.
#
# Local use:
#   go build -o hetserved ./cmd/hetserved && scripts/e2e_cluster_smoke.sh ./hetserved
#
# Requires curl and jq.
set -euo pipefail

BIN=${1:-./hetserved}
PORTS=(18081 18082 18083)
PEERS="http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083"

command -v jq >/dev/null || { echo "e2e-cluster: jq is required" >&2; exit 1; }
command -v curl >/dev/null || { echo "e2e-cluster: curl is required" >&2; exit 1; }
[ -x "$BIN" ] || { echo "e2e-cluster: $BIN is not executable" >&2; exit 1; }

PIDS=()
for port in "${PORTS[@]}"; do
  "$BIN" -addr "127.0.0.1:$port" -workers 2 -queue 16 -cache-size 64 \
    -peers "$PEERS" -node-id "http://127.0.0.1:$port" &
  PIDS+=($!)
done
cleanup() { kill "${PIDS[@]}" 2>/dev/null || true; }
trap cleanup EXIT

for port in "${PORTS[@]}"; do
  for i in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/v1/healthz" >/dev/null 2>&1 && break
    [ "$i" = 100 ] && { echo "e2e-cluster: node $port never became healthy" >&2; exit 1; }
    sleep 0.1
  done
done
echo "e2e-cluster: 3 nodes up"

REQ='{"genome":"human","method":"sam","iterations":200,"seed":7}'

# computes NODE -> cold computes this node has paid (completed minus
# store-served); the cluster-wide sum must stay 1 for one distinct key.
computes() {
  curl -fsS "http://127.0.0.1:$1/v1/metrics" \
    | jq '.jobs.completed - .jobs.store_hits'
}

echo "e2e-cluster: warming the key (wait=1: one round trip wherever it lands)"
warm=$(curl -fsS -X POST "http://127.0.0.1:${PORTS[0]}/v1/jobs?wait=1" -d "$REQ")
[ "$(echo "$warm" | jq -r .state)" = "done" ] \
  || { echo "e2e-cluster: warming POST not terminal: $warm" >&2; exit 1; }

# Give the async replicator a moment to land the entry on the follower.
sleep 1

echo "e2e-cluster: POSTing the same job to every node (all answers must be byte-identical)"
declare -a ANSWERS
for i in 0 1 2; do
  ANSWERS[$i]=$(curl -fsS -X POST "http://127.0.0.1:${PORTS[$i]}/v1/jobs" -d "$REQ")
  [ "$(echo "${ANSWERS[$i]}" | jq -r .state)" = "done" ] \
    || { echo "e2e-cluster: node ${PORTS[$i]} did not answer warm: ${ANSWERS[$i]}" >&2; exit 1; }
done
[ "${ANSWERS[0]}" = "${ANSWERS[1]}" ] && [ "${ANSWERS[1]}" = "${ANSWERS[2]}" ] \
  || { echo "e2e-cluster: answers differ across nodes:" >&2
       printf '%s\n' "${ANSWERS[@]}" >&2; exit 1; }
r1=$(echo "$warm" | jq -cS .result)
r2=$(echo "${ANSWERS[0]}" | jq -cS .result)
[ "$r1" = "$r2" ] \
  || { echo "e2e-cluster: warm result differs from the cold compute: $r1 vs $r2" >&2; exit 1; }

total=0
owner=""
follower=""
for port in "${PORTS[@]}"; do
  c=$(computes "$port")
  total=$((total + c))
  if [ "$c" -gt 0 ]; then owner=$port; fi
done
[ "$total" = 1 ] \
  || { echo "e2e-cluster: cluster paid $total computes for one distinct key, want exactly 1" >&2; exit 1; }
[ -n "$owner" ] || { echo "e2e-cluster: no node reports the compute" >&2; exit 1; }
echo "e2e-cluster: exactly one compute paid cluster-wide (owner: $owner)"

# The follower is the surviving node whose store replicated the entry.
for port in "${PORTS[@]}"; do
  [ "$port" = "$owner" ] && continue
  applied=$(curl -fsS "http://127.0.0.1:$port/v1/metrics" | jq '.cluster.replication.applied')
  if [ "$applied" -ge 1 ]; then follower=$port; fi
done
[ -n "$follower" ] \
  || { echo "e2e-cluster: no surviving node holds the replicated entry" >&2; exit 1; }

echo "e2e-cluster: metrics cluster block sanity (local+forwarded == jobs requests)"
for port in "${PORTS[@]}"; do
  m=$(curl -fsS "http://127.0.0.1:$port/v1/metrics")
  echo "$m" | jq -e '.cluster.local + .cluster.forwarded == (.requests.jobs // 0)' >/dev/null \
    || { echo "e2e-cluster: node $port cluster split does not sum: $m" >&2; exit 1; }
  echo "$m" | jq -e --arg id "http://127.0.0.1:$port" '.cluster.node_id == $id' >/dev/null \
    || { echo "e2e-cluster: node $port reports wrong node_id: $m" >&2; exit 1; }
done

echo "e2e-cluster: scatter-gather batch (every member terminal in one response)"
batch=$(curl -fsS -X POST "http://127.0.0.1:${PORTS[0]}/v1/jobs:batch" \
  -d '{"template":{"method":"sam","iterations":150,"seed":3},"alphas":[0,0.5,1]}')
count=$(echo "$batch" | jq '[.jobs[] | select(.state == "done")] | length')
[ "$count" = 3 ] \
  || { echo "e2e-cluster: batch returned $count terminal members, want 3: $batch" >&2; exit 1; }

# Snapshot the survivors' paid computes (the batch just paid some)
# so the failover check below can assert a zero delta.
before=0
for port in "${PORTS[@]}"; do
  [ "$port" = "$owner" ] && continue
  before=$((before + $(computes "$port")))
done

echo "e2e-cluster: killing the owner ($owner); follower ($follower) must serve the warm entry"
for i in 0 1 2; do
  if [ "${PORTS[$i]}" = "$owner" ]; then
    kill "${PIDS[$i]}" 2>/dev/null || true
    wait "${PIDS[$i]}" 2>/dev/null || true
  fi
done

# POST to a survivor that is NOT the follower when one exists, so the
# request takes the failover hop; fall back to the follower itself on a
# 3-node ring where owner+follower are the only holders.
entry=""
for port in "${PORTS[@]}"; do
  [ "$port" = "$owner" ] && continue
  [ "$port" = "$follower" ] && continue
  entry=$port
done
[ -n "$entry" ] || entry=$follower

failover=$(curl -fsS -X POST "http://127.0.0.1:$entry/v1/jobs" -d "$REQ")
[ "$failover" = "${ANSWERS[0]}" ] \
  || { echo "e2e-cluster: failover answer differs from the owner's bytes:" >&2
       echo "$failover" >&2; echo "${ANSWERS[0]}" >&2; exit 1; }

after=0
for port in "${PORTS[@]}"; do
  [ "$port" = "$owner" ] && continue
  after=$((after + $(computes "$port")))
done
[ "$after" = "$before" ] \
  || { echo "e2e-cluster: survivors recomputed ($((after - before)) new computes) instead of serving the replica" >&2; exit 1; }
echo "e2e-cluster: failover served the replicated entry warm, byte-identical, no recompute"

echo "e2e-cluster: graceful shutdown of the survivors"
for i in 0 1 2; do
  [ "${PORTS[$i]}" = "$owner" ] && continue
  kill -TERM "${PIDS[$i]}" 2>/dev/null || true
  if ! wait "${PIDS[$i]}"; then
    echo "e2e-cluster: node ${PORTS[$i]} exited non-zero on SIGTERM" >&2
    exit 1
  fi
done
trap - EXIT

echo "e2e-cluster: ok (3 nodes, byte-identical answers, 1 compute cluster-wide, scatter batch, follower failover)"
