package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetopt"
)

func TestRunWritesValidFASTA(t *testing.T) {
	out := filepath.Join(t.TempDir(), "seq.fa")
	if err := run("cat", 0.01, 7, out, "", 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := hetopt.ReadFASTA(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	if !strings.Contains(records[0].Header, "cat") {
		t.Errorf("header = %q", records[0].Header)
	}
	sizeMB := 0.01
	wantLen := int(sizeMB * (1 << 20))
	if len(records[0].Seq) != wantLen {
		t.Fatalf("sequence length = %d, want %d", len(records[0].Seq), wantLen)
	}
}

func TestRunPlantsMotif(t *testing.T) {
	out := filepath.Join(t.TempDir(), "seq.fa")
	if err := run("human", 0.05, 7, out, "GAATTC", 1024); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// The raw FASTA wraps lines, so strip newlines before searching.
	flat := strings.ReplaceAll(string(data), "\n", "")
	if !strings.Contains(flat, "GAATTC") {
		t.Error("planted motif not found in output")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("unicorn", 1, 7, "", "", 0); err == nil {
		t.Error("unknown genome should fail")
	}
	if err := run("human", 0, 7, "", "", 0); err == nil {
		t.Error("zero size should fail")
	}
	if err := run("human", 0.01, 7, "", "ACGT", 2); err == nil {
		t.Error("tiny plant interval should fail")
	}
}
