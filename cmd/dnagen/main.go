// Command dnagen writes deterministic synthetic DNA sequences in FASTA
// format, composition-matched to one of the paper's evaluation genomes.
// It replaces the multi-gigabyte GenBank reference files the paper uses
// (see DESIGN.md, "Hardware substitution").
//
// Usage:
//
//	dnagen -genome human -size 16 -out human16.fa
//	dnagen -genome cat -size 4 -plant GAATTC -interval 4096 -out cat4.fa
package main

import (
	"flag"
	"fmt"
	"os"

	"hetopt"
)

func main() {
	var (
		genomeName = flag.String("genome", "human", "genome composition: human, mouse, cat or dog")
		sizeMB     = flag.Float64("size", 1, "sequence size in MiB")
		seed       = flag.Uint64("seed", 42, "generator seed")
		out        = flag.String("out", "", "output FASTA file (empty = stdout)")
		plant      = flag.String("plant", "", "optional motif to plant at regular intervals")
		interval   = flag.Int("interval", 4096, "mean planting interval in bases")
	)
	flag.Parse()

	if err := run(*genomeName, *sizeMB, *seed, *out, *plant, *interval); err != nil {
		fmt.Fprintln(os.Stderr, "dnagen:", err)
		os.Exit(1)
	}
}

func run(genomeName string, sizeMB float64, seed uint64, out, plant string, interval int) error {
	genome, err := hetopt.GenomeByName(genomeName)
	if err != nil {
		return err
	}
	if sizeMB <= 0 {
		return fmt.Errorf("size must be positive, got %g", sizeMB)
	}
	gen := hetopt.NewGenerator(genome, seed)
	if plant != "" {
		if _, err := gen.WithPlantedMotif(plant, interval); err != nil {
			return err
		}
	}
	n := int(sizeMB * (1 << 20))
	seq := gen.Generate(n)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	header := fmt.Sprintf("synthetic %s GC=%.2f seed=%d size=%d", genome.Name, genome.GC, seed, n)
	if err := hetopt.WriteFASTA(w, header, seq); err != nil {
		return err
	}
	if plant != "" {
		fmt.Fprintf(os.Stderr, "planted %d occurrences of %s\n", gen.PlantedCount(n), plant)
	}
	return nil
}
