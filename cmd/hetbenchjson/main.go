// Command hetbenchjson runs the tracked hot-path microbenchmarks and
// emits the repo's perf record (BENCH_<pr>.json: ns/op, allocs/op and
// B/op per benchmark), optionally gating against a previous record.
//
// Usage:
//
//	hetbenchjson -o BENCH_6.json                 # record
//	hetbenchjson -compare BENCH_6.json           # run + gate (exit 1 on regression)
//	hetbenchjson -compare BENCH_6.json -skip-ns  # cross-machine gate (exact alloc counts only)
//
// allocs/op and B/op are exact counts, so the allocation gate is
// deterministic on any machine; ns/op is hardware-dependent — compare
// it only against a record from comparable hardware, or pass -skip-ns.
package main

import (
	"flag"
	"fmt"
	"os"

	"hetopt/internal/benchjson"
)

func main() {
	var (
		out      = flag.String("o", "", "write the fresh record to this file (default stdout)")
		compare  = flag.String("compare", "", "baseline BENCH_*.json to gate against; exit 1 on regression")
		nsTol    = flag.Float64("ns-tol", 0.10, "allowed fractional ns/op growth vs the baseline")
		allocTol = flag.Float64("alloc-tol", 0.10, "allowed fractional allocs/op and B/op growth vs the baseline")
		skipNs   = flag.Bool("skip-ns", false, "skip the ns/op comparison (use for cross-machine baselines)")
		list     = flag.Bool("list", false, "list tracked benchmark names and exit")
	)
	flag.Parse()

	defs := benchjson.Defs()
	if *list {
		for _, d := range defs {
			fmt.Println(d.Name)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "hetbenchjson: running %d tracked benchmarks...\n", len(defs))
	cur := benchjson.Run(defs)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := benchjson.Write(w, cur); err != nil {
		fatal(err)
	}

	if *compare != "" {
		old, err := benchjson.ReadFile(*compare)
		if err != nil {
			fatal(err)
		}
		problems := benchjson.Compare(old, cur, benchjson.CompareOptions{
			NsTolerance:    *nsTol,
			AllocTolerance: *allocTol,
			SkipNs:         *skipNs,
		})
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "REGRESSION:", p)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hetbenchjson: no regressions vs %s\n", *compare)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetbenchjson:", err)
	os.Exit(1)
}
