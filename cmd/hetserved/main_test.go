package main

import (
	"strings"
	"testing"
	"time"
)

// valid returns a baseline valid parameter set.
func valid() params {
	return params{
		addr:           ":0",
		workers:        4,
		queue:          64,
		cacheSize:      1024,
		cacheShards:    16,
		parallel:       1,
		drainTimeout:   time.Minute,
		forwardTimeout: 30 * time.Second,
	}
}

// threePeers is a baseline valid 3-node cluster flag pair.
const threePeers = "http://127.0.0.1:18081,http://127.0.0.1:18082,http://127.0.0.1:18083"

func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*params)
	}{
		{"defaults", func(p *params) {}},
		{"minimum sizing", func(p *params) { p.workers, p.queue, p.cacheSize, p.cacheShards = 1, 1, 1, 1 }},
		{"sequential search", func(p *params) { p.parallel = 0 }},
		{"scenario defaults", func(p *params) { p.workload, p.platform = "spmv:large", "gpu-like" }},
		{"genome alias default", func(p *params) { p.workload = "human" }},
		{"cluster member", func(p *params) { p.peers, p.nodeID = threePeers, "http://127.0.0.1:18082" }},
		{"cluster trailing slash", func(p *params) { p.peers, p.nodeID = threePeers, "http://127.0.0.1:18082/" }},
		{"cluster replication off", func(p *params) {
			p.peers, p.nodeID, p.replicate = threePeers, "http://127.0.0.1:18081", false
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := valid()
			tc.mut(&p)
			if err := p.validate(); err != nil {
				t.Fatalf("valid params rejected: %v", err)
			}
		})
	}
}

// TestValidateRejects pins the strictly-positive sizing contract: a
// zero or negative worker pool, queue bound or store capacity is a
// flag-level usage error, never a silently substituted default.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*params)
		want string
	}{
		{"empty addr", func(p *params) { p.addr = "" }, "-addr"},
		{"zero workers", func(p *params) { p.workers = 0 }, "-workers"},
		{"negative workers", func(p *params) { p.workers = -1 }, "-workers"},
		{"zero queue", func(p *params) { p.queue = 0 }, "-queue"},
		{"negative queue", func(p *params) { p.queue = -2 }, "-queue"},
		{"zero cache", func(p *params) { p.cacheSize = 0 }, "-cache-size"},
		{"negative cache", func(p *params) { p.cacheSize = -1 }, "-cache-size"},
		{"zero cache shards", func(p *params) { p.cacheShards = 0 }, "-cache-shards"},
		{"negative parallel", func(p *params) { p.parallel = -3 }, "-parallel"},
		{"zero drain timeout", func(p *params) { p.drainTimeout = 0 }, "-drain-timeout"},
		{"unknown workload", func(p *params) { p.workload = "plankton" }, "-workload"},
		{"unknown platform", func(p *params) { p.platform = "mainframe" }, "-platform"},
		{"peers without node id", func(p *params) { p.peers = threePeers }, "-node-id"},
		{"node id without peers", func(p *params) { p.nodeID = "http://127.0.0.1:18081" }, "-peers"},
		{"node id not in peers", func(p *params) {
			p.peers, p.nodeID = threePeers, "http://127.0.0.1:9999"
		}, "-peers"},
		{"node id not a url", func(p *params) { p.peers, p.nodeID = threePeers, "127.0.0.1:18081" }, "-node-id"},
		{"zero forward timeout", func(p *params) { p.forwardTimeout = 0 }, "-forward-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := valid()
			tc.mut(&p)
			err := p.validate()
			if err == nil {
				t.Fatalf("expected a validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestRunRejectsInvalid ensures run re-validates (library-style callers
// bypass main's check).
func TestRunRejectsInvalid(t *testing.T) {
	p := valid()
	p.workers = -1
	if err := run(p); err == nil {
		t.Fatalf("run accepted invalid params")
	}
}
