package main

import (
	"strings"
	"testing"
	"time"
)

// valid returns a baseline valid parameter set.
func valid() params {
	return params{
		addr:         ":0",
		workers:      4,
		queue:        64,
		cacheSize:    1024,
		parallel:     1,
		drainTimeout: time.Minute,
	}
}

func TestValidateAccepts(t *testing.T) {
	p := valid()
	if err := p.validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	p.workers, p.queue, p.cacheSize, p.parallel = 0, 0, 0, 0 // all mean "default/unbounded"
	if err := p.validate(); err != nil {
		t.Fatalf("zero defaults rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*params)
		want string
	}{
		{"empty addr", func(p *params) { p.addr = "" }, "-addr"},
		{"negative workers", func(p *params) { p.workers = -1 }, "-workers"},
		{"negative queue", func(p *params) { p.queue = -2 }, "-queue"},
		{"negative cache", func(p *params) { p.cacheSize = -1 }, "-cache-size"},
		{"negative parallel", func(p *params) { p.parallel = -3 }, "-parallel"},
		{"zero drain timeout", func(p *params) { p.drainTimeout = 0 }, "-drain-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := valid()
			tc.mut(&p)
			err := p.validate()
			if err == nil {
				t.Fatalf("expected a validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// TestRunRejectsInvalid ensures run re-validates (library-style callers
// bypass main's check).
func TestRunRejectsInvalid(t *testing.T) {
	p := valid()
	p.workers = -1
	if err := run(p); err == nil {
		t.Fatalf("run accepted invalid params")
	}
}
