// Command hetserved serves tuning-as-a-service: an HTTP/JSON API that
// answers "what is the near-optimal configuration for workload W under
// objective O?" queries as asynchronous jobs on a bounded worker pool,
// with a warm-start result store answering repeat queries from cache.
//
// Usage:
//
//	hetserved -addr :8080 -workers 4 -queue 64 -cache-size 1024
//
//	curl -s -X POST localhost:8080/v1/jobs \
//	  -d '{"genome":"human","method":"sam","iterations":500,"seed":7}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -s -X POST localhost:8080/v1/jobs:batch \
//	  -d '{"template":{"method":"sam"},"alphas":[0,0.25,0.5,0.75,1]}'
//	curl -s localhost:8080/v1/metrics
//
// A re-POST of a request the store already holds (and any POST with
// ?wait=1) answers 200 with the result inline — one round-trip, no id,
// no poll.
//
// The server shuts down gracefully on SIGTERM/SIGINT: the listener
// closes first, then every accepted job — queued and in-flight —
// drains to completion (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetopt/internal/cluster"
	"hetopt/internal/scenario"
	"hetopt/internal/serve"
)

// params collects the validated CLI inputs.
type params struct {
	addr         string
	workers      int
	queue        int
	cacheSize    int
	cacheShards  int
	parallel     int
	pretrain     bool
	drainTimeout time.Duration
	workload     string
	platform     string

	// Cluster mode: -peers lists every member's base URL (self
	// included) and -node-id names this node's entry in that list.
	peers          string
	nodeID         string
	replicate      bool
	forwardTimeout time.Duration
}

// clusterOptions derives the serve cluster configuration; nil when
// -peers is unset (single-node).
func (p *params) clusterOptions() *serve.ClusterOptions {
	if strings.TrimSpace(p.peers) == "" {
		return nil
	}
	var peers []string
	for _, raw := range strings.Split(p.peers, ",") {
		if n := strings.TrimSpace(raw); n != "" {
			peers = append(peers, strings.TrimRight(n, "/"))
		}
	}
	return &serve.ClusterOptions{
		NodeID:         strings.TrimRight(strings.TrimSpace(p.nodeID), "/"),
		Peers:          peers,
		Replicate:      p.replicate,
		ForwardTimeout: p.forwardTimeout,
	}
}

// validate rejects bad flag values before binding the listener. The
// sizing flags are strictly positive: a zero worker pool, queue or
// store would silently serve nothing (or grow without bound), so the
// flag layer rejects them the way hetopt/hetbench reject out-of-range
// budgets instead of clamping.
func (p *params) validate() error {
	if p.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if p.workers <= 0 {
		return fmt.Errorf("-workers must be > 0, got %d", p.workers)
	}
	if p.queue <= 0 {
		return fmt.Errorf("-queue must be > 0, got %d", p.queue)
	}
	if p.cacheSize <= 0 {
		return fmt.Errorf("-cache-size must be > 0, got %d", p.cacheSize)
	}
	if p.cacheShards <= 0 {
		return fmt.Errorf("-cache-shards must be > 0, got %d", p.cacheShards)
	}
	if p.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", p.parallel)
	}
	if p.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", p.drainTimeout)
	}
	if p.workload != "" {
		if _, err := scenario.ResolveWorkload(p.workload); err != nil {
			return fmt.Errorf("-workload: %v", err)
		}
	}
	if p.platform != "" {
		if _, err := scenario.PlatformByName(p.platform); err != nil {
			return fmt.Errorf("-platform: %v", err)
		}
	}
	if p.forwardTimeout <= 0 {
		return fmt.Errorf("-forward-timeout must be positive, got %v", p.forwardTimeout)
	}
	if cl := p.clusterOptions(); cl != nil {
		if cl.NodeID == "" {
			return fmt.Errorf("-peers needs -node-id naming this node's entry in the peer list")
		}
		if !strings.HasPrefix(cl.NodeID, "http://") && !strings.HasPrefix(cl.NodeID, "https://") {
			return fmt.Errorf("-node-id %q must be a base URL (http://host:port)", cl.NodeID)
		}
		// The router re-validates membership; checking here turns a
		// misconfigured node into a flag error before the bind.
		if _, err := cluster.NewRouter(cl.NodeID, cl.Peers, 0); err != nil {
			return fmt.Errorf("-peers: %v", err)
		}
	} else if strings.TrimSpace(p.nodeID) != "" {
		return fmt.Errorf("-node-id %q is set but -peers is empty", p.nodeID)
	}
	return nil
}

func main() {
	var p params
	flag.StringVar(&p.addr, "addr", ":8080", "listen address")
	flag.IntVar(&p.workers, "workers", 4, "worker-pool size (must be positive)")
	flag.IntVar(&p.queue, "queue", 64, "pending-job queue bound; full queue answers 429 (must be positive)")
	flag.IntVar(&p.cacheSize, "cache-size", 1024, "warm-start store capacity, LRU-evicted beyond it (must be positive)")
	flag.IntVar(&p.cacheShards, "cache-shards", 16, "warm-start store lock stripes; 1 = exact global LRU (must be positive)")
	flag.IntVar(&p.parallel, "parallel", 1, "per-job search worker count; never affects results")
	flag.BoolVar(&p.pretrain, "pretrain", false, "train the prediction models at startup instead of on the first EML/SAML job")
	flag.DurationVar(&p.drainTimeout, "drain-timeout", 60*time.Second, "graceful-shutdown budget for draining accepted jobs")
	flag.StringVar(&p.workload, "workload", "", `default workload for requests naming none (empty = "dna:human")`)
	flag.StringVar(&p.platform, "platform", "", `default platform for requests naming none (empty = "paper")`)
	flag.StringVar(&p.peers, "peers", "", "comma-separated base URLs of every cluster member, self included (empty = single-node)")
	flag.StringVar(&p.nodeID, "node-id", "", "this node's entry in -peers (required with -peers)")
	flag.BoolVar(&p.replicate, "replicate", true, "replicate completed store entries to each key's ring-successor follower")
	flag.DurationVar(&p.forwardTimeout, "forward-timeout", cluster.DefaultForwardTimeout, "per-hop budget for proxied requests (cold forwards block for compute)")
	flag.Parse()

	if err := p.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "hetserved:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(p); err != nil {
		fmt.Fprintln(os.Stderr, "hetserved:", err)
		os.Exit(1)
	}
}

func run(p params) error {
	if err := p.validate(); err != nil {
		return err
	}
	s, err := serve.NewCluster(serve.Options{
		Workers:         p.workers,
		QueueSize:       p.queue,
		StoreSize:       p.cacheSize,
		StoreShards:     p.cacheShards,
		Parallelism:     p.parallel,
		DefaultWorkload: p.workload,
		DefaultPlatform: p.platform,
		Cluster:         p.clusterOptions(),
	})
	if err != nil {
		return err
	}
	if p.pretrain {
		fmt.Println("hetserved: training prediction models...")
		if err := s.Pretrain(); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: p.addr, Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	fmt.Printf("hetserved: listening on %s (%d workers, queue %d, store %d x%d shards)\n",
		p.addr, p.workers, p.queue, p.cacheSize, p.cacheShards)
	for _, ep := range serve.Endpoints() {
		fmt.Println("  ", ep)
	}
	if cl := p.clusterOptions(); cl != nil {
		fmt.Printf("hetserved: cluster member %s of %d peers (replicate=%v, forward timeout %v)\n",
			cl.NodeID, len(cl.Peers), cl.Replicate, p.forwardTimeout)
		fmt.Println("   POST /v1/cluster/replicate")
	}

	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure to bind or serve.
		return err
	case <-ctx.Done():
	}

	fmt.Println("hetserved: shutting down, draining accepted jobs...")
	shutCtx, cancel := context.WithTimeout(context.Background(), p.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("closing listener: %w", err)
	}
	if err := s.Drain(shutCtx); err != nil {
		return fmt.Errorf("draining jobs: %w", err)
	}
	fmt.Println("hetserved: drained, bye")
	return nil
}
