package main

import (
	"hetopt"

	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCompleteReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.txt")
	if err := run(out, false, 1, 1, false, 2, "auto", "", "", exactKnobs{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{
		"Table I", "Table II", "Table III",
		"Figure 2", "Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9",
		"Table IV", "Table V", "Table VI", "Table VII", "Table VIII", "Table IX",
		"Result 1/2", "Result 3", "Result 5",
		"Bi-objective", "energy",
		"report generated in",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Without -ablate the extension sections are absent.
	if strings.Contains(report, "Ablation:") {
		t.Error("unexpected ablation section in plain report")
	}
}

func TestRunRejectsBadPath(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing", "report.txt"), false, 1, 1, false, 1, "auto", "", "", exactKnobs{}); err == nil {
		t.Fatal("uncreatable output path should fail")
	}
}

// TestRunRejectsBadFlags checks the flag-layer validation: out-of-range
// values fail fast with an error naming the flag instead of being
// silently clamped by the search engine.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run("", false, 0, 1, false, 1, "auto", "", "", exactKnobs{}); err == nil || !strings.Contains(err.Error(), "-repeats") {
		t.Errorf("repeats=0 should fail naming -repeats, got %v", err)
	}
	if err := run("", false, -3, 1, false, 1, "auto", "", "", exactKnobs{}); err == nil || !strings.Contains(err.Error(), "-repeats") {
		t.Errorf("negative repeats should fail naming -repeats, got %v", err)
	}
	if err := run("", false, 1, 1, false, -4, "auto", "", "", exactKnobs{}); err == nil || !strings.Contains(err.Error(), "-parallel") {
		t.Errorf("negative parallel should fail naming -parallel, got %v", err)
	}
	if err := run("", false, 1, 1, false, 1, "quantum", "", "", exactKnobs{}); err == nil || !strings.Contains(err.Error(), "-strategy") {
		t.Errorf("unknown strategy should fail naming -strategy, got %v", err)
	}
	// The exact-only knobs are rejected under any other strategy and
	// range-checked under exact.
	if err := validate(1, 0, "anneal", "", "", true, 0, 0); err == nil || !strings.Contains(err.Error(), "-strategy exact") {
		t.Errorf("-prove without -strategy exact should fail, got %v", err)
	}
	if err := validate(1, 0, "exact", "", "", false, -1, 0); err == nil || !strings.Contains(err.Error(), "-pool-size") {
		t.Errorf("negative pool size should fail naming -pool-size, got %v", err)
	}
	if err := validate(1, 0, "exact", "", "", false, 0, -0.5); err == nil || !strings.Contains(err.Error(), "-pool-gap") {
		t.Errorf("negative pool gap should fail naming -pool-gap, got %v", err)
	}
	if err := validate(1, 0, "exact", "", "", true, 4, 0.2); err != nil {
		t.Errorf("valid exact knobs rejected: %v", err)
	}
}

func TestRunJSONMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	if err := run(out, false, 1, 1, true, 2, "auto", "", "", exactKnobs{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"space_size\": 19926") {
		t.Error("JSON report missing space size")
	}
	if !strings.Contains(string(data), "fig9_method_comparison") {
		t.Error("JSON report missing comparisons")
	}
}

// TestScenarioFlagsRoundTripRegistry: every registered scenario name is
// accepted by the -workload/-platform validation.
func TestScenarioFlagsRoundTripRegistry(t *testing.T) {
	for _, name := range hetopt.Scenarios().WorkloadNames() {
		if err := validate(1, 0, "auto", name, "", false, 0, 0); err != nil {
			t.Errorf("registered workload %q rejected: %v", name, err)
		}
	}
	for _, name := range hetopt.Scenarios().PlatformNames() {
		if err := validate(1, 0, "auto", "", name, false, 0, 0); err != nil {
			t.Errorf("registered platform %q rejected: %v", name, err)
		}
	}
	if err := validate(1, 0, "auto", "plankton", "", false, 0, 0); err == nil || !strings.Contains(err.Error(), "-workload") {
		t.Errorf("unknown workload error not actionable: %v", err)
	}
	if err := validate(1, 0, "auto", "", "mainframe", false, 0, 0); err == nil || !strings.Contains(err.Error(), "-platform") {
		t.Errorf("unknown platform error not actionable: %v", err)
	}
}
