// Command hetbench regenerates the paper's tables and figures on the
// simulated platform and writes the full report (see EXPERIMENTS.md for
// the paper-vs-measured comparison).
//
// Usage:
//
//	hetbench                 # full report to stdout
//	hetbench -out report.txt # write to a file
//	hetbench -ablate         # include the ablation studies
//	hetbench -repeats 10     # average SA over more seeds
//	hetbench -workload spmv -platform gpu-like   # any registered scenario
//	hetbench -workload dag:resnet-ish -platform gpu-like  # task-graph placement report
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hetopt"
	"hetopt/internal/experiments"
)

func main() {
	var (
		out      = flag.String("out", "", "output file (empty = stdout)")
		ablate   = flag.Bool("ablate", false, "include ablation and extension studies")
		repeats  = flag.Int("repeats", 7, "SA seeds averaged per table cell")
		seed     = flag.Int64("seed", 1, "base random seed")
		jsonMode = flag.Bool("json", false, "emit the machine-readable JSON report instead of text")
		parallel = flag.Int("parallel", 0, "search worker count (0 = all CPUs); the report is identical at any level")
		strategy = flag.String("strategy", "auto", "search strategy injected into every method run: auto (method presets), anneal, exhaustive, exact, genetic, tabu, local, random or portfolio")
		workload = flag.String("workload", "dna:human", `registered workload the report runs on: a family ("spmv"), a preset ("stencil:large"), or a genome name`)
		platform = flag.String("platform", "paper", "registered platform spec: paper, gpu-like or edge")
		prove    = flag.Bool("prove", false, "with -strategy exact: exhaust the branch-and-bound tree in every injected run, certifying each optimum")
		poolSize = flag.Int("pool-size", 0, fmt.Sprintf("with -strategy exact: diverse solution pool size per run (max %d)", hetopt.MaxPoolSize))
		poolGap  = flag.Float64("pool-gap", 0, fmt.Sprintf("with -strategy exact: relative objective gap admitting pool members (0 selects the default %g)", hetopt.DefaultPoolGap))
	)
	flag.Parse()

	if err := validate(*repeats, *parallel, *strategy, *workload, *platform, *prove, *poolSize, *poolGap); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	knobs := exactKnobs{prove: *prove, poolSize: *poolSize, poolGap: *poolGap}
	if err := run(*out, *ablate, *repeats, *seed, *jsonMode, *parallel, *strategy, *workload, *platform, knobs); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		os.Exit(1)
	}
}

// exactKnobs bundles the exact-only strategy flags.
type exactKnobs struct {
	prove    bool
	poolSize int
	poolGap  float64
}

// apply threads the knobs into a parsed exact strategy; validate has
// already rejected them for any other -strategy.
func (k exactKnobs) apply(strat hetopt.Strategy) hetopt.Strategy {
	if ex, ok := strat.(hetopt.ExactStrategy); ok {
		ex.Prove = k.prove
		ex.PoolSize = k.poolSize
		ex.PoolGap = k.poolGap
		return ex
	}
	return strat
}

// validate rejects out-of-range flags before any work, so the user gets
// a usage error instead of a silently clamped report.
func validate(repeats, parallel int, strategy, workload, platform string, prove bool, poolSize int, poolGap float64) error {
	if repeats < 1 {
		return fmt.Errorf("-repeats must be >= 1, got %d", repeats)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", parallel)
	}
	if _, err := hetopt.ParseStrategy(strategy); err != nil {
		return fmt.Errorf("-strategy must be auto or one of %s, got %q",
			strings.Join(hetopt.StrategyNames(), ", "), strategy)
	}
	if poolSize < 0 || poolSize > hetopt.MaxPoolSize {
		return fmt.Errorf("-pool-size must be in [0,%d], got %d", hetopt.MaxPoolSize, poolSize)
	}
	if poolGap < 0 {
		return fmt.Errorf("-pool-gap must be >= 0, got %g", poolGap)
	}
	if (prove || poolSize != 0 || poolGap != 0) && strategy != "exact" {
		return fmt.Errorf("-prove, -pool-size and -pool-gap require -strategy exact, got -strategy %q", strategy)
	}
	if _, err := hetopt.ScenarioWorkload(workloadOrDefault(workload)); err != nil {
		return fmt.Errorf("-workload: %v", err)
	}
	if _, err := hetopt.ScenarioPlatformByName(platformOrDefault(platform)); err != nil {
		return fmt.Errorf("-platform: %v", err)
	}
	return nil
}

// workloadOrDefault and platformOrDefault mirror the flag defaults for
// library-style callers that bypass them.
func workloadOrDefault(w string) string {
	if w == "" {
		return "dna:human"
	}
	return w
}

func platformOrDefault(p string) string {
	if p == "" {
		return "paper"
	}
	return p
}

func run(out string, ablate bool, repeats int, seed int64, jsonMode bool, parallel int, strategyName, workload, platform string, knobs exactKnobs) error {
	if err := validate(repeats, parallel, strategyName, workload, platform, knobs.prove, knobs.poolSize, knobs.poolGap); err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	sc, err := hetopt.ScenarioLookup(platformOrDefault(platform), workloadOrDefault(workload))
	if err != nil {
		return err
	}
	if sc.IsDAG() {
		// Task-graph scenarios get the placement-focused report: the
		// paper's tables assume one divisible kernel and do not apply.
		if jsonMode {
			return fmt.Errorf("-json is not supported for task-graph workloads; run the text report")
		}
		start := time.Now()
		if err := experiments.DAGReport(w, platformOrDefault(platform), workloadOrDefault(workload), parallel); err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "\nreport generated in %v\n", time.Since(start).Round(time.Millisecond))
		return err
	}

	suite, err := experiments.NewScenarioSuite(platformOrDefault(platform), workloadOrDefault(workload))
	if err != nil {
		return err
	}
	suite.Repeats = repeats
	suite.Seed = seed
	suite.Parallelism = parallel
	if strat, err := hetopt.ParseStrategy(strategyName); err != nil {
		return err
	} else if strat != nil {
		suite.Strategy = knobs.apply(strat)
	}

	if jsonMode {
		return suite.WriteJSON(w)
	}
	start := time.Now()
	if err := suite.RunAll(w, ablate); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nreport generated in %v\n", time.Since(start).Round(time.Millisecond))
	return err
}
