// Command hetbench regenerates the paper's tables and figures on the
// simulated platform and writes the full report (see EXPERIMENTS.md for
// the paper-vs-measured comparison).
//
// Usage:
//
//	hetbench                 # full report to stdout
//	hetbench -out report.txt # write to a file
//	hetbench -ablate         # include the ablation studies
//	hetbench -repeats 10     # average SA over more seeds
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hetopt"
	"hetopt/internal/experiments"
)

func main() {
	var (
		out      = flag.String("out", "", "output file (empty = stdout)")
		ablate   = flag.Bool("ablate", false, "include ablation and extension studies")
		repeats  = flag.Int("repeats", 7, "SA seeds averaged per table cell")
		seed     = flag.Int64("seed", 1, "base random seed")
		jsonMode = flag.Bool("json", false, "emit the machine-readable JSON report instead of text")
		parallel = flag.Int("parallel", 0, "search worker count (0 = all CPUs); the report is identical at any level")
		strategy = flag.String("strategy", "auto", "search strategy injected into every method run: auto (method presets), anneal, exhaustive, genetic, tabu, local, random or portfolio")
	)
	flag.Parse()

	if err := validate(*repeats, *parallel, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := run(*out, *ablate, *repeats, *seed, *jsonMode, *parallel, *strategy); err != nil {
		fmt.Fprintln(os.Stderr, "hetbench:", err)
		os.Exit(1)
	}
}

// validate rejects out-of-range flags before any work, so the user gets
// a usage error instead of a silently clamped report.
func validate(repeats, parallel int, strategy string) error {
	if repeats < 1 {
		return fmt.Errorf("-repeats must be >= 1, got %d", repeats)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", parallel)
	}
	if _, err := hetopt.ParseStrategy(strategy); err != nil {
		return fmt.Errorf("-strategy must be auto or one of %s, got %q",
			strings.Join(hetopt.StrategyNames(), ", "), strategy)
	}
	return nil
}

func run(out string, ablate bool, repeats int, seed int64, jsonMode bool, parallel int, strategyName string) error {
	if err := validate(repeats, parallel, strategyName); err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	suite := experiments.NewSuite()
	suite.Repeats = repeats
	suite.Seed = seed
	suite.Parallelism = parallel
	if strat, err := hetopt.ParseStrategy(strategyName); err != nil {
		return err
	} else if strat != nil {
		suite.Strategy = strat
	}

	if jsonMode {
		return suite.WriteJSON(w)
	}
	start := time.Now()
	if err := suite.RunAll(w, ablate); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nreport generated in %v\n", time.Since(start).Round(time.Millisecond))
	return err
}
