// Command hetopt tunes the work distribution of the DNA-analysis workload
// on the simulated heterogeneous platform using any of the paper's four
// optimization methods, and reports the suggested system configuration
// together with the speedups over host-only and device-only execution.
//
// Usage:
//
//	hetopt -method saml -genome human -iterations 1000
//	hetopt -method em -genome cat
//	hetopt -compare -genome mouse
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hetopt"
)

func main() {
	var (
		methodName = flag.String("method", "saml", "optimization method: em, eml, sam or saml")
		genomeName = flag.String("genome", "human", "evaluation genome: human, mouse, cat or dog")
		iterations = flag.Int("iterations", 1000, "simulated-annealing iteration budget (per chain)")
		seed       = flag.Int64("seed", 1, "random seed for simulated annealing")
		sizeMB     = flag.Float64("size", 0, "override the workload size in MB (0 = genome size)")
		compare    = flag.Bool("compare", false, "run all four methods and compare")
		modelCache = flag.String("model-cache", "", "path for persisted prediction models (loaded if present, written after training)")
		parallel   = flag.Int("parallel", 1, "search worker count (0 = all CPUs); results are identical at any level")
		restarts   = flag.Int("restarts", 1, "independent annealing chains for sam/saml (best chain wins)")
	)
	flag.Parse()

	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	if err := run(*methodName, *genomeName, *iterations, *seed, *sizeMB, *compare, *modelCache, *parallel, *restarts); err != nil {
		fmt.Fprintln(os.Stderr, "hetopt:", err)
		os.Exit(1)
	}
}

func run(methodName, genomeName string, iterations int, seed int64, sizeMB float64, compare bool, modelCache string, parallel, restarts int) error {
	genome, err := hetopt.GenomeByName(genomeName)
	if err != nil {
		return err
	}
	workload := hetopt.GenomeWorkload(genome)
	if sizeMB > 0 {
		workload = workload.Scaled(sizeMB)
	}

	tuner := hetopt.NewTuner()
	if modelCache != "" {
		if models, err := hetopt.LoadModelsFile(modelCache); err == nil {
			tuner.Models = models
			fmt.Printf("loaded prediction models from %s\n", modelCache)
		}
	}
	if tuner.Models == nil {
		fmt.Printf("training prediction models (%d+%d experiments)...\n",
			tuner.Plan.HostExperiments(), tuner.Plan.DeviceExperiments())
		if err := tuner.Train(); err != nil {
			return err
		}
		if modelCache != "" {
			if err := hetopt.SaveModelsFile(tuner.Models, modelCache); err != nil {
				return err
			}
			fmt.Printf("saved prediction models to %s\n", modelCache)
		}
	}
	fmt.Printf("  host model:   %.3f%% mean percent error\n", tuner.Models.HostReport.Eval.MeanPercentError)
	fmt.Printf("  device model: %.3f%% mean percent error\n\n", tuner.Models.DeviceReport.Eval.MeanPercentError)

	hostOnly, deviceOnly, err := tuner.Baselines(workload)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s (%.0f MB)\n", workload.Name, workload.SizeMB)
	fmt.Printf("host-only   (48T):  %.4f s\n", hostOnly.MeasuredE())
	fmt.Printf("device-only (240T): %.4f s\n\n", deviceOnly.MeasuredE())

	methods := []hetopt.Method{}
	if compare {
		methods = append(methods, hetopt.EM, hetopt.EML, hetopt.SAM, hetopt.SAML)
	} else {
		m, err := hetopt.ParseMethod(methodName)
		if err != nil {
			return err
		}
		methods = append(methods, m)
	}

	for _, m := range methods {
		res, err := tuner.Tune(workload, m, hetopt.Options{
			Iterations:  iterations,
			Seed:        seed,
			Parallelism: parallel,
			Restarts:    restarts,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-4s suggested: %v\n", m, res.Config)
		fmt.Printf("     measured: T_host=%.4f s, T_device=%.4f s, E=%.4f s\n",
			res.Measured.Host, res.Measured.Device, res.MeasuredE())
		fmt.Printf("     speedup:  %.2fx vs host-only, %.2fx vs device-only\n",
			hostOnly.MeasuredE()/res.MeasuredE(), deviceOnly.MeasuredE()/res.MeasuredE())
		fmt.Printf("     effort:   %d search evaluations, %d experiments\n\n",
			res.SearchEvaluations, res.Experiments)
	}
	return nil
}
