// Command hetopt tunes the work distribution of the DNA-analysis workload
// on the simulated heterogeneous platform using any of the paper's four
// optimization methods, and reports the suggested system configuration
// together with the speedups over host-only and device-only execution.
//
// Usage:
//
//	hetopt -method saml -genome human -iterations 1000
//	hetopt -method em -genome cat
//	hetopt -compare -genome mouse
//	hetopt -workload spmv -platform gpu-like     # any registered scenario
//	hetopt -workload stencil:large -platform edge
//	hetopt -strategy genetic                 # explore with the GA instead of SA
//	hetopt -strategy portfolio -restarts 4   # race all strategies, shared cache
//	hetopt -strategy exact -prove            # branch-and-bound, certified optimum
//	hetopt -strategy exact -prove -pool-size 5   # plus a diverse solution pool
//	hetopt -objective energy                 # minimize joules, not seconds
//	hetopt -objective weighted -alpha 0.5    # trade time against energy
//	hetopt -objective bounded -slack 0.10    # min energy within 110% of T_best
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hetopt"
)

// params collects the validated CLI inputs of one run.
type params struct {
	method     string
	strategy   string
	genome     string
	workload   string
	platform   string
	iterations int
	seed       int64
	sizeMB     float64
	compare    bool
	modelCache string
	parallel   int
	restarts   int
	objective  string
	alpha      float64
	slack      float64
	prove      bool
	poolSize   int
	poolGap    float64
}

// validate rejects flag combinations before any expensive work, so the
// user gets a usage error instead of a silently clamped run.
func (p *params) validate() error {
	if p.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = all CPUs), got %d", p.parallel)
	}
	if p.restarts < 0 {
		return fmt.Errorf("-restarts must be >= 0, got %d", p.restarts)
	}
	if p.iterations < 0 {
		return fmt.Errorf("-iterations must be >= 0, got %d", p.iterations)
	}
	if _, err := hetopt.ParseStrategy(p.strategy); err != nil {
		return fmt.Errorf("-strategy must be auto or one of %s, got %q",
			strings.Join(hetopt.StrategyNames(), ", "), p.strategy)
	}
	if p.poolSize < 0 || p.poolSize > hetopt.MaxPoolSize {
		return fmt.Errorf("-pool-size must be in [0,%d], got %d", hetopt.MaxPoolSize, p.poolSize)
	}
	if p.poolGap < 0 {
		return fmt.Errorf("-pool-gap must be >= 0, got %g", p.poolGap)
	}
	if (p.prove || p.poolSize != 0 || p.poolGap != 0) && p.strategy != "exact" {
		return fmt.Errorf("-prove, -pool-size and -pool-gap require -strategy exact, got -strategy %q", p.strategy)
	}
	if p.workload != "" && p.genome != "" {
		return fmt.Errorf("-workload %q and -genome %q both set; -genome is a workload alias, set exactly one (the serving layer enforces the same rule)", p.workload, p.genome)
	}
	if _, err := hetopt.ScenarioWorkload(p.workloadName()); err != nil {
		return fmt.Errorf("-workload: %v", err)
	}
	if _, err := hetopt.ScenarioPlatformByName(p.platformName()); err != nil {
		return fmt.Errorf("-platform: %v", err)
	}
	if p.alpha < 0 || p.alpha > 1 {
		return fmt.Errorf("-alpha must be in [0,1], got %g", p.alpha)
	}
	if p.slack < 0 {
		return fmt.Errorf("-slack must be >= 0, got %g", p.slack)
	}
	switch p.objective {
	case "time", "energy", "weighted", "bounded", "":
	default:
		return fmt.Errorf("-objective must be time, energy, weighted or bounded, got %q", p.objective)
	}
	return nil
}

// platformName resolves the effective platform name; the empty value
// (library-style callers bypassing flag defaults) selects "paper".
func (p *params) platformName() string {
	if p.platform == "" {
		return "paper"
	}
	return p.platform
}

// workloadName resolves the effective workload name: -workload wins,
// -genome is the backward-compatible alias, "human" is the default.
func (p *params) workloadName() string {
	if p.workload != "" {
		return p.workload
	}
	if p.genome != "" {
		return p.genome
	}
	return "human"
}

func main() {
	var p params
	flag.StringVar(&p.method, "method", "saml", "optimization method: em, eml, sam or saml")
	flag.StringVar(&p.strategy, "strategy", "auto", "search strategy: auto (method preset), anneal, exhaustive, exact, genetic, tabu, local, random or portfolio")
	flag.StringVar(&p.genome, "genome", "", "evaluation genome (alias for -workload): human, mouse, cat or dog")
	flag.StringVar(&p.workload, "workload", "", `registered workload: a family ("spmv"), a preset ("stencil:large"), or a genome name (default "human")`)
	flag.StringVar(&p.platform, "platform", "paper", "registered platform spec: paper, gpu-like or edge")
	flag.IntVar(&p.iterations, "iterations", 1000, "search evaluation budget per worker, for any strategy (exhaustive enumeration ignores it)")
	flag.Int64Var(&p.seed, "seed", 1, "base random seed for the search strategy")
	flag.Float64Var(&p.sizeMB, "size", 0, "override the workload size in MB (0 = genome size)")
	flag.BoolVar(&p.compare, "compare", false, "run all four methods and compare")
	flag.StringVar(&p.modelCache, "model-cache", "", "path for persisted prediction models (loaded if present, written after training)")
	flag.IntVar(&p.parallel, "parallel", 1, "search worker count (0 = all CPUs); results are identical at any level")
	flag.IntVar(&p.restarts, "restarts", 1, "independent search workers: annealing chains or heuristic restarts (best one wins)")
	flag.StringVar(&p.objective, "objective", "time", "search objective: time, energy, weighted or bounded")
	flag.Float64Var(&p.alpha, "alpha", 0.5, "time weight in [0,1] for -objective weighted")
	flag.Float64Var(&p.slack, "slack", 0.10, "makespan slack over the time optimum for -objective bounded")
	flag.BoolVar(&p.prove, "prove", false, "with -strategy exact: ignore the budget and exhaust the branch-and-bound tree, certifying the optimum")
	flag.IntVar(&p.poolSize, "pool-size", 0, fmt.Sprintf("with -strategy exact: keep up to this many diverse near-optimal configurations (max %d)", hetopt.MaxPoolSize))
	flag.Float64Var(&p.poolGap, "pool-gap", 0, fmt.Sprintf("with -strategy exact: relative objective gap admitting pool members (0 selects the default %g)", hetopt.DefaultPoolGap))
	flag.Parse()

	if err := p.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "hetopt:", err)
		flag.Usage()
		os.Exit(2)
	}
	if p.parallel == 0 {
		p.parallel = runtime.GOMAXPROCS(0)
	}
	if err := run(p); err != nil {
		fmt.Fprintln(os.Stderr, "hetopt:", err)
		os.Exit(1)
	}
}

func run(p params) error {
	if err := p.validate(); err != nil {
		return err
	}
	sc, err := hetopt.ScenarioLookup(p.platformName(), p.workloadName())
	if err != nil {
		return err
	}
	if sc.IsDAG() {
		return runDAG(p, sc)
	}
	tuner, workload, err := hetopt.NewScenarioTuner(p.platformName(), p.workloadName())
	if err != nil {
		return err
	}
	if p.sizeMB > 0 {
		workload = workload.Scaled(p.sizeMB)
	}
	if p.modelCache != "" {
		if models, err := hetopt.LoadModelsFile(p.modelCache); err == nil {
			tuner.Models = models
			fmt.Printf("loaded prediction models from %s\n", p.modelCache)
		}
	}
	if tuner.Models == nil {
		fmt.Printf("training prediction models (%d+%d experiments)...\n",
			tuner.Plan.HostExperiments(), tuner.Plan.DeviceExperiments())
		if err := tuner.Train(); err != nil {
			return err
		}
		if p.modelCache != "" {
			if err := hetopt.SaveModelsFile(tuner.Models, p.modelCache); err != nil {
				return err
			}
			fmt.Printf("saved prediction models to %s\n", p.modelCache)
		}
	}
	fmt.Printf("  host model:   %.3f%% mean percent error\n", tuner.Models.HostReport.Eval.MeanPercentError)
	fmt.Printf("  device model: %.3f%% mean percent error\n\n", tuner.Models.DeviceReport.Eval.MeanPercentError)

	hostOnly, deviceOnly, err := tuner.Baselines(workload)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s (%.0f MB) on %s, objective: %s\n", workload.Name, workload.SizeMB, p.platformName(), p.objective)
	fmt.Printf("host-only   (%dT):  %.4f s, %.1f J\n", hostOnly.Config.HostThreads, hostOnly.MeasuredE(), hostOnly.MeasuredJ())
	fmt.Printf("device-only (%dT): %.4f s, %.1f J\n\n", deviceOnly.Config.DeviceThreads, deviceOnly.MeasuredE(), deviceOnly.MeasuredJ())

	methods := []hetopt.Method{}
	if p.compare {
		methods = append(methods, hetopt.EM, hetopt.EML, hetopt.SAM, hetopt.SAML)
	} else {
		m, err := hetopt.ParseMethod(p.method)
		if err != nil {
			return err
		}
		methods = append(methods, m)
	}

	strat, err := hetopt.ParseStrategy(p.strategy)
	if err != nil {
		return err
	}
	strat = p.applyExactKnobs(strat)
	if strat != nil {
		fmt.Printf("search strategy: %s\n\n", strat.Name())
	}
	opt := hetopt.Options{
		Iterations:  p.iterations,
		Seed:        p.seed,
		Parallelism: p.parallel,
		Restarts:    p.restarts,
		Strategy:    strat,
	}
	for _, m := range methods {
		var res hetopt.Result
		if p.objective == "bounded" {
			timeRes, ecoRes, err := tuner.TuneWithTimeSlack(workload, m, opt, p.slack)
			if err != nil {
				return err
			}
			fmt.Printf("%-4s time-opt:  %v (T=%.4f s, %.1f J)\n", m, timeRes.Config, timeRes.MeasuredE(), timeRes.MeasuredJ())
			res = ecoRes
		} else {
			obj, err := hetopt.ParseObjective(p.objective, p.alpha)
			if err != nil {
				return err
			}
			opt.Objective = obj
			res, err = tuner.Tune(workload, m, opt)
			if err != nil {
				return err
			}
		}
		fmt.Printf("%-4s suggested: %v\n", m, res.Config)
		fmt.Printf("     measured: T_host=%.4f s, T_device=%.4f s, E=%.4f s\n",
			res.Measured.Host, res.Measured.Device, res.MeasuredE())
		fmt.Printf("     energy:   J_host=%.1f, J_device=%.1f, total=%.1f J (%s objective value %.4f)\n",
			res.MeasuredEnergy.Host, res.MeasuredEnergy.Device, res.MeasuredJ(), res.Objective, res.MeasuredObjective)
		fmt.Printf("     speedup:  %.2fx vs host-only, %.2fx vs device-only; energy: %.2fx vs host-only, %.2fx vs device-only\n",
			hostOnly.MeasuredE()/res.MeasuredE(), deviceOnly.MeasuredE()/res.MeasuredE(),
			hostOnly.MeasuredJ()/res.MeasuredJ(), deviceOnly.MeasuredJ()/res.MeasuredJ())
		fmt.Printf("     effort:   %d search evaluations, %d experiments\n",
			res.SearchEvaluations, res.Experiments)
		if cert, ok := res.Certificate(); ok {
			fmt.Printf("     proof:    %s\n", formatCertificate(cert))
		}
		for i, e := range res.Pool {
			fmt.Printf("     pool[%d]:  %v (objective %.4f)\n", i, e.Config, e.Objective)
		}
		fmt.Println()
	}
	return nil
}

// applyExactKnobs threads the exact-only flags into a parsed exact
// strategy; validate has already rejected them for any other -strategy.
func (p *params) applyExactKnobs(strat hetopt.Strategy) hetopt.Strategy {
	if ex, ok := strat.(hetopt.ExactStrategy); ok {
		ex.Prove = p.prove
		ex.PoolSize = p.poolSize
		ex.PoolGap = p.poolGap
		return ex
	}
	return strat
}

// formatCertificate renders a branch-and-bound certificate on one line.
func formatCertificate(cert hetopt.Certificate) string {
	status := "proved optimal"
	if !cert.Optimal {
		status = fmt.Sprintf("gap %.2f%% to lower bound (budget exhausted; rerun with -prove)", 100*cert.Gap)
	}
	return fmt.Sprintf("%s — lower bound %.4f, %d nodes explored, %d pruned",
		status, cert.LowerBound, cert.Explored, cert.Pruned)
}

// runDAG tunes a task-graph scenario: instead of splitting one kernel
// by a fraction, the search assigns each graph node to the host or the
// device and the list-scheduling simulator prices the resulting
// makespan. The methods map onto the placement search the way the
// serving layer maps them: EM/EML enumerate, SAM/SAML anneal, and an
// explicit -strategy overrides either.
func runDAG(p params, sc hetopt.Scenario) error {
	if p.objective != "" && p.objective != "time" {
		return fmt.Errorf("workload %s is a task graph; the placement simulator prices time only (-objective %s unsupported)", p.workloadName(), p.objective)
	}
	if p.sizeMB > 0 {
		return fmt.Errorf("workload %s is a task graph; -size cannot rescale it", p.workloadName())
	}
	sim, err := sc.DAGSim()
	if err != nil {
		return err
	}
	host, device := sim.SideNames()
	g := sim.Workload()
	fmt.Printf("workload: %s — %s\n", p.workloadName(), g.Description)
	fmt.Printf("graph: %d nodes, %d edges, %.0f MB total work on %s (%s + %s)\n\n",
		len(g.Nodes), len(g.Edges), g.TotalWorkMB(), p.platformName(), host, device)
	fmt.Printf("host-only:   %.4f s\ndevice-only: %.4f s\n\n", sim.HostOnlySec(), sim.DeviceOnlySec())

	methods := []hetopt.Method{}
	if p.compare {
		methods = append(methods, hetopt.EM, hetopt.EML, hetopt.SAM, hetopt.SAML)
	} else {
		m, err := hetopt.ParseMethod(p.method)
		if err != nil {
			return err
		}
		methods = append(methods, m)
	}
	explicit, err := hetopt.ParseStrategy(p.strategy)
	if err != nil {
		return err
	}
	explicit = p.applyExactKnobs(explicit)
	opt := hetopt.SearchOptions{
		Budget:      p.iterations,
		Seed:        p.seed,
		Restarts:    p.restarts,
		Parallelism: p.parallel,
	}
	for _, m := range methods {
		strat := explicit
		if strat == nil { // auto: the method's preset explorer
			if m.UsesAnnealing() {
				strat = hetopt.DefaultAnneal()
			} else {
				strat = hetopt.ExhaustiveStrategy{}
			}
		}
		res, err := hetopt.TunePlacement(sim, strat, opt)
		if err != nil {
			return err
		}
		fmt.Printf("%-4s placement: %s\n", m, sim.FormatPlacement(res.Placement))
		fmt.Printf("     encoded:  %s (host share %.0f%% of node work)\n",
			hetopt.PlacementString(res.Placement), sim.HostWorkFraction(res.Placement))
		fmt.Printf("     makespan: %.4f s | round-robin %.4f s\n", res.MakespanSec, res.RoundRobinSec)
		fmt.Printf("     speedup:  %.2fx vs host-only, %.2fx vs device-only\n",
			res.HostOnlySec/res.MakespanSec, res.DeviceOnlySec/res.MakespanSec)
		fmt.Printf("     effort:   %d placements priced\n", res.Evaluations)
		if cert, ok := res.Certificate(); ok {
			fmt.Printf("     proof:    %s\n", formatCertificate(cert))
		}
		for i, e := range res.PoolEntries() {
			fmt.Printf("     pool[%d]:  %s (%.4f s)\n", i, hetopt.PlacementString(e.State), e.Energy)
		}
		fmt.Println()
	}
	return nil
}
