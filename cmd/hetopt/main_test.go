package main

import (
	"hetopt"

	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// base returns the default parameters of one CLI run, mirroring the flag
// defaults.
func base() params {
	return params{
		method: "saml", strategy: "auto", genome: "human", iterations: 1000, seed: 1,
		parallel: 1, restarts: 1, objective: "time", alpha: 0.5, slack: 0.10,
	}
}

func TestRunSingleMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	p := base()
	p.genome = "cat"
	p.iterations = 200
	p.parallel, p.restarts = 2, 2
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}

func TestRunInjectedStrategy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	// The portfolio races every strategy over a shared cache; the run
	// must complete under parallelism with a non-preset strategy.
	p := base()
	p.genome, p.iterations, p.strategy = "cat", 150, "portfolio"
	p.parallel = 4
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomSize(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	// A small override size exercises the Scaled path; CPU-only should
	// win, and the run must still succeed.
	p := base()
	p.method, p.iterations, p.sizeMB = "sam", 100, 190
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}

func TestRunEnergyObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	p := base()
	p.method, p.iterations, p.objective = "sam", 300, "energy"
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	// Genome and method validation happen before the expensive training.
	p := base()
	p.genome = "unicorn"
	if err := run(p); err == nil {
		t.Error("unknown genome should fail")
	}
}

// TestRunRejectsBadFlags checks that out-of-range flags fail fast with a
// clear error instead of being clamped deep inside the search engine.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*params)
		want string
	}{
		{"negative parallel", func(p *params) { p.parallel = -2 }, "-parallel"},
		{"negative restarts", func(p *params) { p.restarts = -1 }, "-restarts"},
		{"negative iterations", func(p *params) { p.iterations = -5 }, "-iterations"},
		{"unknown strategy", func(p *params) { p.strategy = "quantum" }, "-strategy"},
		{"unknown objective", func(p *params) { p.objective = "carbon" }, "-objective"},
		{"alpha above one", func(p *params) { p.alpha = 1.5 }, "-alpha"},
		{"negative alpha", func(p *params) { p.alpha = -0.1 }, "-alpha"},
		{"negative slack", func(p *params) { p.slack = -0.2 }, "-slack"},
		{"prove without exact", func(p *params) { p.prove = true }, "-strategy exact"},
		{"pool size without exact", func(p *params) { p.poolSize = 4 }, "-strategy exact"},
		{"pool gap without exact", func(p *params) { p.poolGap = 0.2 }, "-strategy exact"},
		{"negative pool size", func(p *params) { p.strategy = "exact"; p.poolSize = -1 }, "-pool-size"},
		{"oversized pool", func(p *params) { p.strategy = "exact"; p.poolSize = 1 << 20 }, "-pool-size"},
		{"negative pool gap", func(p *params) { p.strategy = "exact"; p.poolGap = -0.5 }, "-pool-gap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base()
			tc.mut(&p)
			err := run(p)
			if err == nil {
				t.Fatal("invalid flags should fail")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending flag %s", err, tc.want)
			}
		})
	}
}

func TestRunModelCache(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	cache := filepath.Join(t.TempDir(), "models.gob")
	// First run trains and writes the cache.
	p := base()
	p.genome, p.iterations, p.modelCache = "dog", 100, cache
	if err := run(p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("model cache not written: %v", err)
	}
	// Second run loads it (much faster; correctness checked by completing).
	start := time.Now()
	if err := run(p); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cached run suspiciously slow; cache likely ignored")
	}
}

// TestFlagsRoundTripRegistry: every name the scenario registry
// advertises is accepted by the -workload/-platform flag validation,
// and unknown names are rejected with an actionable error.
func TestFlagsRoundTripRegistry(t *testing.T) {
	for _, name := range hetopt.Scenarios().WorkloadNames() {
		p := base()
		p.genome = ""
		p.workload = name
		if err := p.validate(); err != nil {
			t.Errorf("registered workload %q rejected: %v", name, err)
		}
	}
	for _, name := range hetopt.Scenarios().PlatformNames() {
		p := base()
		p.platform = name
		if err := p.validate(); err != nil {
			t.Errorf("registered platform %q rejected: %v", name, err)
		}
	}
	p := base()
	p.genome = ""
	p.workload = "spnv"
	err := p.validate()
	if err == nil || !strings.Contains(err.Error(), "spmv") {
		t.Errorf("unknown workload error not actionable: %v", err)
	}
	p = base()
	p.platform = "papper"
	err = p.validate()
	if err == nil || !strings.Contains(err.Error(), "paper") {
		t.Errorf("unknown platform error not actionable: %v", err)
	}
	p = base()
	p.genome, p.workload = "human", "spmv"
	if err := p.validate(); err == nil {
		t.Error("conflicting -genome and -workload accepted")
	}
}

// TestStrategyNamesStayInSync: every name StrategyNames advertises —
// the listing the -strategy usage error prints — parses back to a
// strategy answering to that name, and the exact strategy is among
// them. A strategy added to the registry can never be missing from the
// CLI's did-you-mean listing, and vice versa.
func TestStrategyNamesStayInSync(t *testing.T) {
	names := hetopt.StrategyNames()
	sawExact := false
	for _, name := range names {
		strat, err := hetopt.ParseStrategy(name)
		if err != nil {
			t.Errorf("advertised strategy %q does not parse: %v", name, err)
			continue
		}
		if strat == nil || strat.Name() != name {
			t.Errorf("strategy %q does not round-trip: parsed %v", name, strat)
		}
		if name == "exact" {
			sawExact = true
		}
	}
	if !sawExact {
		t.Error("exact missing from StrategyNames")
	}
	p := base()
	p.strategy = "exactt"
	err := p.validate()
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("-strategy listing omits %q: %v", name, err)
		}
	}
}

// TestRunExactDAGCertified drives the exact strategy end to end through
// the CLI's task-graph path: branch-and-bound over the 2^11 fork-join
// placements with a proof and a diverse pool (no model training, so the
// test is cheap).
func TestRunExactDAGCertified(t *testing.T) {
	p := base()
	p.genome = ""
	p.workload = "dag:fork-join"
	p.method = "em"
	p.strategy = "exact"
	p.prove = true
	p.poolSize = 3
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}
