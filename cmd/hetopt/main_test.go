package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunSingleMethod(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	if err := run("saml", "cat", 200, 1, 0, false, "", 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomSize(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	// A small override size exercises the Scaled path; CPU-only should
	// win, and the run must still succeed.
	if err := run("sam", "human", 100, 1, 190, false, "", 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	// Genome and method validation happen before the expensive training.
	if err := run("saml", "unicorn", 10, 1, 0, false, "", 1, 1); err == nil {
		t.Error("unknown genome should fail")
	}
}

func TestRunModelCache(t *testing.T) {
	if testing.Short() {
		t.Skip("trains full models")
	}
	cache := filepath.Join(t.TempDir(), "models.gob")
	// First run trains and writes the cache.
	if err := run("saml", "dog", 100, 1, 0, false, cache, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("model cache not written: %v", err)
	}
	// Second run loads it (much faster; correctness checked by completing).
	start := time.Now()
	if err := run("saml", "dog", 100, 1, 0, false, cache, 1, 1); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cached run suspiciously slow; cache likely ignored")
	}
}
