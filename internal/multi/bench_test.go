package multi

import (
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
)

func BenchmarkMeasureTwoPhis(b *testing.B) {
	b.ReportAllocs()
	p, err := PaperProblem(2, offload.GenomeWorkload(dna.Human))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Host: Assignment{Threads: 48, Affinity: machine.AffinityScatter, FractionPct: 40},
		Devices: []Assignment{
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 30},
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 30},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Platform.Measure(p.Workload, cfg, i); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTuneTwoPhis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := PaperProblem(2, offload.GenomeWorkload(dna.Human))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Tune(p, 1000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
