// Package multi extends the paper's optimizer to platforms with several
// accelerators. The paper evaluates one Xeon Phi but motivates the
// problem with nodes carrying up to eight accelerators (Section II-A;
// Tianhe-2 nodes carry three Phis), and the configuration-space
// formulation (Equation 1) already generalizes: this package adds the
// multi-device workload split — a fraction vector over host + K devices
// summing to 100% — the generalized objectives (time = max over all
// processing units, energy = joules summed over engaged units, plus the
// weighted and time-bounded trade-offs from internal/core), and a
// simulated-annealing tuner over the extended space.
package multi

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
	"hetopt/internal/strategy"
)

// Platform is a host plus K accelerators, each with its own performance
// model (device models may differ, modeling mixed accelerator
// generations).
type Platform struct {
	host    *perf.Model
	devices []*perf.Model
	names   []string
}

// NewPlatform assembles a multi-accelerator platform. host's device side
// is ignored; each devices entry contributes its device side.
func NewPlatform(host *perf.Model, names []string, devices []*perf.Model) (*Platform, error) {
	if host == nil {
		return nil, fmt.Errorf("multi: nil host model")
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("multi: need at least one device")
	}
	if len(names) != len(devices) {
		return nil, fmt.Errorf("multi: %d names for %d devices", len(names), len(devices))
	}
	for i, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("multi: device %d is nil", i)
		}
	}
	return &Platform{host: host, devices: devices, names: names}, nil
}

// PaperWithPhis builds the paper's host with n identical Xeon Phi 7120P
// cards. Each card observes independent measurement noise.
func PaperWithPhis(n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("multi: need at least one Phi, got %d", n)
	}
	host := perf.NewPaperModel()
	devices := make([]*perf.Model, n)
	names := make([]string, n)
	for i := range devices {
		m := perf.NewPaperModel()
		// Decorrelate per-card noise: same silicon, different card.
		m.Cal.NoiseSeed ^= uint64(i+1) * 0x9E3779B97F4A7C15
		devices[i] = m
		names[i] = fmt.Sprintf("phi%d", i)
	}
	return NewPlatform(host, names, devices)
}

// NumDevices returns the accelerator count.
func (p *Platform) NumDevices() int { return len(p.devices) }

// DeviceName returns the display name of device i.
func (p *Platform) DeviceName(i int) string { return p.names[i] }

// Assignment configures one processing unit's share.
type Assignment struct {
	// Threads and Affinity configure the unit.
	Threads  int
	Affinity machine.Affinity
	// FractionPct is the percentage of the total workload mapped to the
	// unit.
	FractionPct float64
}

// Config is a complete multi-device system configuration.
type Config struct {
	Host    Assignment
	Devices []Assignment
}

// Validate checks the fraction simplex and unit counts. The simplex
// tolerance scales with the number of units: each fraction derived from
// float arithmetic (e.g. thirds) contributes its own rounding error, so a
// fixed epsilon would start rejecting valid configurations as K grows.
func (c Config) Validate(numDevices int) error {
	if len(c.Devices) != numDevices {
		return fmt.Errorf("multi: config has %d device assignments for %d devices", len(c.Devices), numDevices)
	}
	total := c.Host.FractionPct
	if c.Host.FractionPct < 0 {
		return fmt.Errorf("multi: negative host fraction %g", c.Host.FractionPct)
	}
	for i, d := range c.Devices {
		if d.FractionPct < 0 {
			return fmt.Errorf("multi: negative fraction %g on device %d", d.FractionPct, i)
		}
		total += d.FractionPct
	}
	tol := 1e-9 * float64(1+len(c.Devices))
	if math.Abs(total-100) > tol {
		return fmt.Errorf("multi: fractions sum to %g, want 100", total)
	}
	return nil
}

// String renders the distribution without device names (a bare Config
// does not know which platform it belongs to), e.g.
// "host 40% (48T,scatter) | 30% (240T,balanced) | 30% (240T,balanced)".
// Use Platform.FormatConfig to label each device entry with its name.
func (c Config) String() string {
	s := fmt.Sprintf("host %g%% (%dT,%s)", c.Host.FractionPct, c.Host.Threads, c.Host.Affinity)
	for _, d := range c.Devices {
		s += fmt.Sprintf(" | %g%% (%dT,%s)", d.FractionPct, d.Threads, d.Affinity)
	}
	return s
}

// FormatConfig renders the distribution with each device entry labeled
// by its platform name, e.g. "host 40% (48T,scatter) | phi0 30%
// (240T,balanced) | phi1 30% (240T,balanced)". Extra device entries
// beyond the platform's count keep an index-based label rather than
// panicking.
func (p *Platform) FormatConfig(c Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "host %g%% (%dT,%s)", c.Host.FractionPct, c.Host.Threads, c.Host.Affinity)
	for i, d := range c.Devices {
		name := fmt.Sprintf("dev%d", i)
		if i < len(p.names) {
			name = p.names[i]
		}
		fmt.Fprintf(&sb, " | %s %g%% (%dT,%s)", name, d.FractionPct, d.Threads, d.Affinity)
	}
	return sb.String()
}

// Times holds per-unit execution times.
type Times struct {
	Host    float64
	Devices []float64
}

// E is the generalized time objective: the maximum over all processing
// units.
func (t Times) E() float64 {
	e := t.Host
	for _, d := range t.Devices {
		if d > e {
			e = d
		}
	}
	return e
}

// Energy holds per-unit energy in joules; units with no work are
// disengaged and consume nothing.
type Energy struct {
	Host    float64
	Devices []float64
}

// Total is the generalized energy objective: joules summed over all
// engaged processing units.
func (e Energy) Total() float64 {
	total := e.Host
	for _, d := range e.Devices {
		total += d
	}
	return total
}

// Measurement is one evaluated configuration: per-unit times and
// energies from a single experiment, so any objective can be scored from
// one cached evaluation.
type Measurement struct {
	Times  Times
	Energy Energy
}

// E is the time objective of the measurement.
func (m Measurement) E() float64 { return m.Times.E() }

// Joules is the energy objective of the measurement.
func (m Measurement) Joules() float64 { return m.Energy.Total() }

// Measure evaluates a configuration on the platform and reports per-unit
// times.
func (p *Platform) Measure(w offload.Workload, cfg Config, trial int) (Times, error) {
	m, err := p.MeasureFull(w, cfg, trial)
	return m.Times, err
}

// MeasureFull evaluates a configuration and reports both per-unit times
// and per-unit energy. Each engaged unit draws active power while its
// share runs and static power while waiting for the slowest unit.
func (p *Platform) MeasureFull(w offload.Workload, cfg Config, trial int) (Measurement, error) {
	if err := w.Validate(); err != nil {
		return Measurement{}, err
	}
	if err := cfg.Validate(p.NumDevices()); err != nil {
		return Measurement{}, err
	}
	traits := w.Traits()
	hostA := perf.Assignment{
		SizeMB:   w.SizeMB * cfg.Host.FractionPct / 100,
		Threads:  cfg.Host.Threads,
		Affinity: cfg.Host.Affinity,
	}
	out := Measurement{
		Times:  Times{Devices: make([]float64, p.NumDevices())},
		Energy: Energy{Devices: make([]float64, p.NumDevices())},
	}
	if cfg.Host.FractionPct > 0 {
		t, err := p.host.HostTime(hostA, traits, trial)
		if err != nil {
			return Measurement{}, err
		}
		out.Times.Host = t
	}
	devA := make([]perf.Assignment, len(cfg.Devices))
	devTraits := make([]perf.Traits, len(cfg.Devices))
	for i, d := range cfg.Devices {
		devA[i] = perf.Assignment{
			SizeMB:   w.SizeMB * d.FractionPct / 100,
			Threads:  d.Threads,
			Affinity: d.Affinity,
		}
		devTraits[i] = w.Traits()
		// Per-device noise decorrelation: each card observes its own
		// perturbations, keyed by the device name.
		devTraits[i].Name = w.Name + ":" + p.names[i]
		if d.FractionPct == 0 {
			continue
		}
		t, err := p.devices[i].DeviceTime(devA[i], devTraits[i], trial)
		if err != nil {
			return Measurement{}, err
		}
		out.Times.Devices[i] = t
	}
	makespan := out.Times.E()
	e, err := p.host.HostEnergy(hostA, traits, trial, out.Times.Host, makespan)
	if err != nil {
		return Measurement{}, err
	}
	out.Energy.Host = e
	for i := range cfg.Devices {
		e, err := p.devices[i].DeviceEnergy(devA[i], devTraits[i], trial, out.Times.Devices[i], makespan)
		if err != nil {
			return Measurement{}, err
		}
		out.Energy.Devices[i] = e
	}
	return out, nil
}

// Problem is the multi-device tuning problem. Its state couples the
// fraction coordinates on a simplex, so it is a strategy.Problem but
// not strategy.Spaced: only Initial/Neighbor-driven strategies
// (annealing, or a portfolio of them) can tune it.
//
// State layout: [hostThreadIdx, hostAffIdx,
// (devThreadIdx, devAffIdx) x K, unit_0 ... unit_K] where unit_i counts
// FractionUnits-ths of the workload on unit i (index 0 = host) and the
// unit counts are kept on the simplex by the neighbor move (shifting one
// unit between two random processors).
type Problem struct {
	// Platform and Workload define the measurement.
	Platform *Platform
	Workload offload.Workload
	// Value sets (Table I style).
	HostThreads      []int
	HostAffinities   []machine.Affinity
	DeviceThreads    []int
	DeviceAffinities []machine.Affinity
	// FractionUnits is the simplex resolution; 40 yields the paper's
	// 2.5% grid. Zero selects 40.
	FractionUnits int
	// Trial selects the measurement noise draw.
	Trial int
	// Objective selects what tuning minimizes: nil or core.TimeObjective
	// is the generalized makespan (max over units), core.EnergyObjective
	// the total joules over engaged units, and the weighted/bounded
	// objectives trade the two.
	Objective core.Objective
}

func (p *Problem) units() int {
	if p.FractionUnits <= 0 {
		return 40
	}
	return p.FractionUnits
}

// Validate checks the problem definition.
func (p *Problem) Validate() error {
	if p.Platform == nil {
		return fmt.Errorf("multi: problem needs a platform")
	}
	if err := p.Workload.Validate(); err != nil {
		return err
	}
	if len(p.HostThreads) == 0 || len(p.HostAffinities) == 0 ||
		len(p.DeviceThreads) == 0 || len(p.DeviceAffinities) == 0 {
		return fmt.Errorf("multi: empty value set in problem definition")
	}
	return nil
}

// layout helpers.
func (p *Problem) numDevices() int { return p.Platform.NumDevices() }
func (p *Problem) unitBase() int   { return 2 + 2*p.numDevices() }

// Dim returns the state-vector length.
func (p *Problem) Dim() int { return p.unitBase() + p.numDevices() + 1 }

// Initial writes a random starting state: random parameters and a
// random composition of the fraction units.
func (p *Problem) Initial(dst []int, rng *rand.Rand) {
	dst[0] = rng.Intn(len(p.HostThreads))
	dst[1] = rng.Intn(len(p.HostAffinities))
	for d := 0; d < p.numDevices(); d++ {
		dst[2+2*d] = rng.Intn(len(p.DeviceThreads))
		dst[3+2*d] = rng.Intn(len(p.DeviceAffinities))
	}
	// Random composition: drop each unit into a uniformly random bin.
	base := p.unitBase()
	for i := 0; i <= p.numDevices(); i++ {
		dst[base+i] = 0
	}
	for u := 0; u < p.units(); u++ {
		dst[base+rng.Intn(p.numDevices()+1)]++
	}
}

// Neighbor writes a neighbor of src into dst: half the moves perturb
// one thread/affinity parameter, half shift one fraction unit between
// two processors (keeping the composition on the simplex).
func (p *Problem) Neighbor(dst, src []int, rng *rand.Rand) {
	copy(dst, src)
	base := p.unitBase()
	if rng.Intn(2) == 0 {
		// Parameter move.
		which := rng.Intn(base)
		var levels int
		switch {
		case which == 0:
			levels = len(p.HostThreads)
		case which == 1:
			levels = len(p.HostAffinities)
		case (which-2)%2 == 0:
			levels = len(p.DeviceThreads)
		default:
			levels = len(p.DeviceAffinities)
		}
		if levels > 1 {
			nv := rng.Intn(levels - 1)
			if nv >= dst[which] {
				nv++
			}
			dst[which] = nv
		}
		return
	}
	// Fraction move: one unit from a non-empty bin to another bin.
	n := p.numDevices() + 1
	from := rng.Intn(n)
	for tries := 0; dst[base+from] == 0 && tries < 2*n; tries++ {
		from = rng.Intn(n)
	}
	if dst[base+from] == 0 {
		return
	}
	to := rng.Intn(n - 1)
	if to >= from {
		to++
	}
	dst[base+from]--
	dst[base+to]++
}

// Decode converts a state vector into a typed Config.
func (p *Problem) Decode(state []int) (Config, error) {
	if len(state) != p.Dim() {
		return Config{}, fmt.Errorf("multi: state has %d entries, want %d", len(state), p.Dim())
	}
	base := p.unitBase()
	unitPct := 100 / float64(p.units())
	cfg := Config{
		Host: Assignment{
			Threads:     p.HostThreads[state[0]],
			Affinity:    p.HostAffinities[state[1]],
			FractionPct: float64(state[base]) * unitPct,
		},
	}
	for d := 0; d < p.numDevices(); d++ {
		cfg.Devices = append(cfg.Devices, Assignment{
			Threads:     p.DeviceThreads[state[2+2*d]],
			Affinity:    p.DeviceAffinities[state[3+2*d]],
			FractionPct: float64(state[base+1+d]) * unitPct,
		})
	}
	return cfg, nil
}

// objective returns the problem's objective, defaulting to the
// generalized makespan.
func (p *Problem) objective() core.Objective {
	if p.Objective == nil {
		return core.TimeObjective{}
	}
	return p.Objective
}

// Energy implements strategy.Problem by measuring the decoded
// configuration and scoring it under the problem's objective.
// Measurement is a pure function of the state and trial, so the
// strategy layer's shared memo (installed for multi-worker runs) never
// changes a value, only the physical effort spent.
func (p *Problem) Energy(state []int) (float64, error) {
	cfg, err := p.Decode(state)
	if err != nil {
		return 0, err
	}
	t, err := p.Platform.MeasureFull(p.Workload, cfg, p.Trial)
	if err != nil {
		return 0, err
	}
	return p.objective().Value(t.E(), t.Joules()), nil
}

// Result is the outcome of a multi-device tuning run.
type Result struct {
	Config Config
	Times  Times
	// Energy is the per-unit energy of the final measurement.
	Energy Energy
	// Objective names the objective tuning minimized and ObjectiveValue
	// is its value on the final measurement.
	Objective      string
	ObjectiveValue float64
	// Iterations counts search steps beyond each worker's initialization
	// (annealing candidates summed over chains; for an injected strategy,
	// its evaluation total minus one initial evaluation per worker).
	Iterations int
	// Chain is the index of the winning search worker (the annealing
	// chain for the default strategy; 0 for single-worker runs).
	Chain int
}

// TuneOptions configures a TuneParallel run.
type TuneOptions struct {
	// Iterations is the per-worker candidate budget. Zero selects 2000.
	Iterations int
	// Seed is the base seed; worker i derives search.ChainSeed(Seed, i).
	Seed int64
	// Restarts is the number of independent search workers (annealing
	// chains for the default strategy). Zero or one runs a single
	// worker, reproducing Tune exactly.
	Restarts int
	// Parallelism caps the number of workers searching concurrently. The
	// result is identical at any parallelism level.
	Parallelism int
	// Strategy injects the search strategy. Nil selects the annealing
	// preset (InitialTemp 5, StopTemp 5e-4, the multi-device schedule).
	// The multi-device state couples the fraction simplex, so only
	// Initial/Neighbor-driven strategies apply — strategy.Anneal, or a
	// strategy.Portfolio of such members; product-space strategies
	// (exhaustive, genetic, tabu, local, random) fail with an error.
	Strategy strategy.Strategy
}

// Tune runs simulated annealing over the multi-device space and returns
// the best configuration with its measurement.
func Tune(p *Problem, iterations int, seed int64) (Result, error) {
	return TuneParallel(p, TuneOptions{Iterations: iterations, Seed: seed})
}

// TuneParallel runs a search strategy — one or more simulated-annealing
// chains by default — over the multi-device space and returns the best
// configuration with its measurement. Workers share a memoizing
// evaluation cache, so states visited by several workers are measured
// once. For fixed (Seed, Restarts, Strategy) the result is
// bit-identical at every Parallelism level.
func TuneParallel(p *Problem, opt TuneOptions) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	iterations := opt.Iterations
	if iterations <= 0 {
		iterations = 2000
	}
	strat := opt.Strategy
	if strat == nil {
		strat = strategy.Anneal{InitialTemp: 5, StopTemp: 5e-4}
	}
	res, err := strat.Minimize(p, strategy.Options{
		Budget:      iterations,
		Seed:        opt.Seed,
		Restarts:    opt.Restarts,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return Result{}, err
	}
	cfg, err := p.Decode(res.Best)
	if err != nil {
		return Result{}, err
	}
	meas, err := p.Platform.MeasureFull(p.Workload, cfg, p.Trial)
	if err != nil {
		return Result{}, err
	}
	obj := p.objective()
	return Result{
		Config:         cfg,
		Times:          meas.Times,
		Energy:         meas.Energy,
		Objective:      obj.Name(),
		ObjectiveValue: obj.Value(meas.E(), meas.Joules()),
		Iterations:     res.Evaluations - res.Workers,
		Chain:          res.Worker,
	}, nil
}

// PaperProblem builds the multi-device tuning problem over the paper's
// Table I value sets for a platform with n Phi cards.
func PaperProblem(n int, w offload.Workload) (*Problem, error) {
	platform, err := PaperWithPhis(n)
	if err != nil {
		return nil, err
	}
	return &Problem{
		Platform:         platform,
		Workload:         w,
		HostThreads:      []int{2, 6, 12, 24, 36, 48},
		HostAffinities:   []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact},
		DeviceThreads:    []int{2, 4, 8, 16, 30, 60, 120, 180, 240},
		DeviceAffinities: []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact},
	}, nil
}
