package multi

import (
	"fmt"
	"math"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

// mfp64 renders a float64 by its exact bit pattern.
func mfp64(x float64) string { return fmt.Sprintf("%016x", math.Float64bits(x)) }

// TestDNAPaperPlatformGolden pins the multi-accelerator tuner's
// DNA-on-paper-platform result to a golden value captured before the
// scenario-layer refactor: the scenario plumbing must leave the default
// scenario bit-identical.
func TestDNAPaperPlatformGolden(t *testing.T) {
	problem, err := PaperProblem(2, offload.GenomeWorkload(dna.Human))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TuneParallel(problem, TuneOptions{Iterations: 400, Seed: 3, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%s|%s|%s|%s|%s|%d|%d",
		problem.Platform.FormatConfig(res.Config),
		mfp64(res.Times.Host), mfp64(res.Energy.Host),
		res.Objective, mfp64(res.ObjectiveValue),
		res.Iterations, res.Chain)
	const golden = "host 42.5% (48T,none) | phi0 27.5% (240T,scatter) | phi1 30% (240T,balanced)|3fd334169782294c|404e127484dedaf3|time|3fd3717620c08412|800|0"
	if got != golden {
		t.Errorf("multi tuner diverged from the pre-scenario-layer golden:\n got  %s\n want %s", got, golden)
	}
}
