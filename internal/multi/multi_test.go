package multi

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
)

func quietProblem(t *testing.T, nPhis int) *Problem {
	t.Helper()
	p, err := PaperProblem(nPhis, offload.GenomeWorkload(dna.Human))
	if err != nil {
		t.Fatal(err)
	}
	p.Platform.host.Cal.NoiseStdHost = 0
	p.Platform.host.Cal.NoiseStdDevice = 0
	for _, d := range p.Platform.devices {
		d.Cal.NoiseStdHost = 0
		d.Cal.NoiseStdDevice = 0
	}
	return p
}

func TestNewPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(nil, nil, nil); err == nil {
		t.Error("nil host should fail")
	}
	if _, err := NewPlatform(perf.NewPaperModel(), nil, nil); err == nil {
		t.Error("no devices should fail")
	}
	if _, err := NewPlatform(perf.NewPaperModel(), []string{"a"}, []*perf.Model{perf.NewPaperModel(), perf.NewPaperModel()}); err == nil {
		t.Error("name/device mismatch should fail")
	}
	if _, err := NewPlatform(perf.NewPaperModel(), []string{"a"}, []*perf.Model{nil}); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := PaperWithPhis(0); err == nil {
		t.Error("zero Phis should fail")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		Host:    Assignment{Threads: 48, Affinity: machine.AffinityScatter, FractionPct: 40},
		Devices: []Assignment{{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 60}},
	}
	if err := good.Validate(1); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Host.FractionPct = 50 // sums to 110
	if err := bad.Validate(1); err == nil {
		t.Error("bad simplex should fail")
	}
	if err := good.Validate(2); err == nil {
		t.Error("wrong device count should fail")
	}
	neg := good
	neg.Host.FractionPct = -10
	neg.Devices[0].FractionPct = 110
	if err := neg.Validate(1); err == nil {
		t.Error("negative fraction should fail")
	}
}

func TestMeasureTwoPhis(t *testing.T) {
	p := quietProblem(t, 2)
	cfg := Config{
		Host: Assignment{Threads: 48, Affinity: machine.AffinityScatter, FractionPct: 40},
		Devices: []Assignment{
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 30},
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 30},
		},
	}
	times, err := p.Platform.Measure(p.Workload, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if times.Host <= 0 || times.Devices[0] <= 0 || times.Devices[1] <= 0 {
		t.Fatalf("times = %+v", times)
	}
	// Identical noiseless cards with identical shares take identical time.
	if times.Devices[0] != times.Devices[1] {
		t.Fatalf("identical quiet cards diverge: %g vs %g", times.Devices[0], times.Devices[1])
	}
	if times.E() < times.Host || times.E() < times.Devices[0] {
		t.Fatal("E must be the maximum")
	}
}

func TestPerCardNoiseIndependent(t *testing.T) {
	p, err := PaperProblem(2, offload.GenomeWorkload(dna.Human))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Host: Assignment{Threads: 48, Affinity: machine.AffinityScatter, FractionPct: 40},
		Devices: []Assignment{
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 30},
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 30},
		},
	}
	times, err := p.Platform.Measure(p.Workload, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if times.Devices[0] == times.Devices[1] {
		t.Fatal("noisy identical cards should observe independent noise")
	}
}

func TestTuneTwoPhisBeatsOne(t *testing.T) {
	one := quietProblem(t, 1)
	two := quietProblem(t, 2)
	resOne, err := Tune(one, 2500, 1)
	if err != nil {
		t.Fatal(err)
	}
	resTwo, err := Tune(two, 2500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resTwo.Times.E() >= resOne.Times.E() {
		t.Fatalf("two Phis (%g) should beat one (%g)", resTwo.Times.E(), resOne.Times.E())
	}
	// The second card must actually receive work.
	work := 0.0
	for _, d := range resTwo.Config.Devices {
		if d.FractionPct > 0 {
			work++
		}
	}
	if work < 2 {
		t.Fatalf("tuner left a card idle: %v", resTwo.Config)
	}
}

func TestTuneConfigOnSimplex(t *testing.T) {
	p := quietProblem(t, 3)
	res, err := Tune(p, 1500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Config.Validate(3); err != nil {
		t.Fatalf("tuned config invalid: %v (%v)", err, res.Config)
	}
	if res.Iterations != 1500 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if !strings.Contains(res.Config.String(), "host") {
		t.Error("config string malformed")
	}
}

func TestProblemValidate(t *testing.T) {
	p := quietProblem(t, 1)
	p.HostThreads = nil
	if err := p.Validate(); err == nil {
		t.Error("empty host threads should fail")
	}
	if _, err := Tune(&Problem{}, 10, 1); err == nil {
		t.Error("empty problem should fail")
	}
}

// Property: Initial and Neighbor preserve the simplex invariant (unit
// counts are non-negative and sum to FractionUnits) and keep indices in
// range.
func TestSimplexInvariantProperty(t *testing.T) {
	p := quietProblem(t, 2)
	f := func(seed int64, moves uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		state := make([]int, p.Dim())
		p.Initial(state, rng)
		for m := 0; m < int(moves); m++ {
			p.Neighbor(state, state, rng)
		}
		base := p.unitBase()
		sum := 0
		for i := base; i < len(state); i++ {
			if state[i] < 0 {
				return false
			}
			sum += state[i]
		}
		if sum != p.units() {
			return false
		}
		cfg, err := p.Decode(state)
		if err != nil {
			return false
		}
		return cfg.Validate(2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeLengthChecked(t *testing.T) {
	p := quietProblem(t, 1)
	if _, err := p.Decode([]int{0}); err == nil {
		t.Error("short state should fail")
	}
}
