package multi

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/machine"
)

// TestFormatConfigNamesDevices is the regression test for the rendering
// bug: Config.String has no access to the platform's device names, so
// Platform.FormatConfig must label every device entry.
func TestFormatConfigNamesDevices(t *testing.T) {
	p := quietProblem(t, 2)
	cfg := Config{
		Host: Assignment{Threads: 48, Affinity: machine.AffinityScatter, FractionPct: 40},
		Devices: []Assignment{
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 30},
			{Threads: 120, Affinity: machine.AffinityCompact, FractionPct: 30},
		},
	}
	got := p.Platform.FormatConfig(cfg)
	want := "host 40% (48T,scatter) | phi0 30% (240T,balanced) | phi1 30% (120T,compact)"
	if got != want {
		t.Fatalf("FormatConfig = %q, want %q", got, want)
	}
	// The bare String stays platform-agnostic and must not invent names.
	if s := cfg.String(); strings.Contains(s, "phi") {
		t.Fatalf("Config.String %q must not contain device names", s)
	}
	// Extra device entries beyond the platform's count degrade to an
	// index label instead of panicking.
	cfg.Devices = append(cfg.Devices, Assignment{Threads: 60, Affinity: machine.AffinityScatter, FractionPct: 0})
	cfg.Devices[0].FractionPct = 30
	if s := p.Platform.FormatConfig(cfg); !strings.Contains(s, "dev2") {
		t.Fatalf("overflow device entry not labeled: %q", s)
	}
}

// TestValidateToleranceScalesWithDevices is the regression test for the
// fixed simplex epsilon: with K=8 devices and fractions derived from
// float arithmetic (ninths), the accumulated rounding error must still
// validate.
func TestValidateToleranceScalesWithDevices(t *testing.T) {
	const k = 8
	cfg := Config{Host: Assignment{Threads: 48, Affinity: machine.AffinityScatter}}
	// Nine equal shares of 100/9: the float sum drifts from 100 by a few
	// ULPs, more than a single-unit epsilon allows.
	share := 100.0 / 9.0
	cfg.Host.FractionPct = share
	for i := 0; i < k; i++ {
		cfg.Devices = append(cfg.Devices, Assignment{
			Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: share,
		})
	}
	sum := cfg.Host.FractionPct
	for _, d := range cfg.Devices {
		sum += d.FractionPct
	}
	if sum == 100 {
		t.Skip("float sum landed exactly on 100; scenario not reached")
	}
	if err := cfg.Validate(k); err != nil {
		t.Fatalf("K=%d non-grid fractions rejected: %v", k, err)
	}
	// Real drift must still be caught.
	cfg.Devices[0].FractionPct += 0.5
	if err := cfg.Validate(k); err == nil {
		t.Fatal("half-percent drift must still fail validation")
	}
}

func TestMeasureFullEnergy(t *testing.T) {
	p := quietProblem(t, 2)
	cfg := Config{
		Host: Assignment{Threads: 48, Affinity: machine.AffinityScatter, FractionPct: 40},
		Devices: []Assignment{
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 60},
			{Threads: 240, Affinity: machine.AffinityBalanced, FractionPct: 0},
		},
	}
	m, err := p.Platform.MeasureFull(p.Workload, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Energy.Host <= 0 || m.Energy.Devices[0] <= 0 {
		t.Fatalf("engaged units must consume energy: %+v", m.Energy)
	}
	if m.Energy.Devices[1] != 0 {
		t.Fatalf("device with no work consumed %g J", m.Energy.Devices[1])
	}
	if got, want := m.Joules(), m.Energy.Host+m.Energy.Devices[0]; got != want {
		t.Fatalf("total %g != sum of engaged units %g", got, want)
	}
	// Times side matches the times-only path.
	times, err := p.Platform.Measure(p.Workload, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Times, times) {
		t.Fatalf("MeasureFull times %+v differ from Measure %+v", m.Times, times)
	}
}

// TestTuneEnergyObjective checks that the energy objective steers
// multi-device tuning toward a lower-energy distribution than time
// tuning, deterministically at every parallelism level.
func TestTuneEnergyObjective(t *testing.T) {
	timeP := quietProblem(t, 2)
	timeRes, err := TuneParallel(timeP, TuneOptions{Iterations: 1500, Seed: 7, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	energyP := quietProblem(t, 2)
	energyP.Objective = core.EnergyObjective{}
	var want Result
	for i, par := range []int{1, 4, 8} {
		res, err := TuneParallel(energyP, TuneOptions{Iterations: 1500, Seed: 7, Restarts: 2, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			continue
		}
		if !reflect.DeepEqual(want, res) {
			t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", par, want, res)
		}
	}
	if want.Objective != "energy" {
		t.Fatalf("result records objective %q, want energy", want.Objective)
	}
	if want.Energy.Total() >= timeRes.Energy.Total() {
		t.Fatalf("energy tuning consumed %g J, not less than time tuning's %g J",
			want.Energy.Total(), timeRes.Energy.Total())
	}
	fmt.Printf("time-opt %s (%.1f J) vs energy-opt %s (%.1f J)\n",
		timeP.Platform.FormatConfig(timeRes.Config), timeRes.Energy.Total(),
		energyP.Platform.FormatConfig(want.Config), want.Energy.Total())
}
