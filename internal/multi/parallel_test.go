package multi

import (
	"reflect"
	"strings"
	"testing"

	"hetopt/internal/strategy"
)

func TestTuneParallelSingleChainMatchesTune(t *testing.T) {
	a, err := Tune(quietProblem(t, 2), 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuneParallel(quietProblem(t, 2), TuneOptions{Iterations: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("single-chain TuneParallel diverged from Tune:\n%+v\n%+v", a, b)
	}
}

func TestTuneParallelDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) Result {
		res, err := TuneParallel(quietProblem(t, 2), TuneOptions{
			Iterations:  500,
			Seed:        9,
			Restarts:    4,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, p := range []int{4, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, got)
		}
	}
	if want.Iterations != 4*500 {
		t.Fatalf("iterations = %d, want %d", want.Iterations, 4*500)
	}
}

// TestTuneParallelInjectedStrategy: the multi-device simplex couples
// its fraction coordinates, so product-space strategies must be
// rejected with a clear error, while Initial/Neighbor-driven ones (a
// portfolio of annealing schedules) tune it deterministically at every
// parallelism level.
func TestTuneParallelInjectedStrategy(t *testing.T) {
	_, err := TuneParallel(quietProblem(t, 2), TuneOptions{Iterations: 50, Strategy: strategy.Genetic{}})
	if err == nil || !strings.Contains(err.Error(), "product-space") {
		t.Fatalf("genetic on the simplex should fail naming the requirement, got %v", err)
	}

	pf := strategy.Portfolio{Members: []strategy.Strategy{
		strategy.Anneal{InitialTemp: 5, StopTemp: 5e-4},
		strategy.Anneal{InitialTemp: 50, StopTemp: 5e-3},
	}}
	run := func(parallelism int) Result {
		res, err := TuneParallel(quietProblem(t, 2), TuneOptions{
			Iterations:  300,
			Seed:        4,
			Restarts:    2,
			Parallelism: parallelism,
			Strategy:    pf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, p := range []int{4, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, got)
		}
	}
	if err := want.Config.Validate(2); err != nil {
		t.Fatalf("winning config invalid: %v", err)
	}
}

func TestTuneParallelChainsNeverWorse(t *testing.T) {
	single, err := TuneParallel(quietProblem(t, 2), TuneOptions{Iterations: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	many, err := TuneParallel(quietProblem(t, 2), TuneOptions{Iterations: 600, Seed: 2, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if many.Times.E() > single.Times.E() {
		t.Fatalf("4 chains (%g) worse than chain 0 alone (%g)", many.Times.E(), single.Times.E())
	}
	if err := many.Config.Validate(2); err != nil {
		t.Fatalf("winning config invalid: %v", err)
	}
}
