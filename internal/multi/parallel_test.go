package multi

import (
	"reflect"
	"testing"
)

func TestTuneParallelSingleChainMatchesTune(t *testing.T) {
	a, err := Tune(quietProblem(t, 2), 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuneParallel(quietProblem(t, 2), TuneOptions{Iterations: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("single-chain TuneParallel diverged from Tune:\n%+v\n%+v", a, b)
	}
}

func TestTuneParallelDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) Result {
		res, err := TuneParallel(quietProblem(t, 2), TuneOptions{
			Iterations:  500,
			Seed:        9,
			Restarts:    4,
			Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, p := range []int{4, 8} {
		if got := run(p); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, got)
		}
	}
	if want.Iterations != 4*500 {
		t.Fatalf("iterations = %d, want %d", want.Iterations, 4*500)
	}
}

func TestTuneParallelChainsNeverWorse(t *testing.T) {
	single, err := TuneParallel(quietProblem(t, 2), TuneOptions{Iterations: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	many, err := TuneParallel(quietProblem(t, 2), TuneOptions{Iterations: 600, Seed: 2, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if many.Times.E() > single.Times.E() {
		t.Fatalf("4 chains (%g) worse than chain 0 alone (%g)", many.Times.E(), single.Times.E())
	}
	if err := many.Config.Validate(2); err != nil {
		t.Fatalf("winning config invalid: %v", err)
	}
}

func TestStateKeyDistinct(t *testing.T) {
	a := stateKey([]int{1, 2, 3})
	b := stateKey([]int{1, 2, 4})
	c := stateKey([]int{12, 3})
	if a == b || a == c || b == c {
		t.Fatalf("state keys collide: %q %q %q", a, b, c)
	}
	if a != stateKey([]int{1, 2, 3}) {
		t.Fatal("equal states must produce equal keys")
	}
}
