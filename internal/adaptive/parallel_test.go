package adaptive

import (
	"reflect"
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/dna"
)

// TestRefineParallelMatchesSequential: a round's neighborhood is only
// scanned concurrently when the budget covers it whole, so the refined
// configuration and the measurements spent must be identical at every
// parallelism level.
func TestRefineParallelMatchesSequential(t *testing.T) {
	inst := fixture(t, dna.Human)
	seq, err := Refine(inst, seedConfig(), Options{MeasureBudget: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		par, err := Refine(inst, seedConfig(), Options{MeasureBudget: 60, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallelism %d diverged:\nseq %+v\npar %+v", p, seq, par)
		}
	}
}

// TestTuneAndRefineParallelOptions drives the whole adaptive pipeline
// with a parallel, multi-chain SAML stage and a parallel refinement
// stage; the outcome must match the sequential run of the same seeds.
func TestTuneAndRefineParallelOptions(t *testing.T) {
	inst := fixture(t, dna.Human)
	type outcome struct {
		samlE, refinedE float64
	}
	run := func(parallelism int) outcome {
		saml, refined, err := TuneAndRefine(inst,
			core.Options{Iterations: 300, Seed: 3, Restarts: 2, Parallelism: parallelism},
			Options{MeasureBudget: 40, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{saml.MeasuredE(), refined.MeasuredE}
	}
	want := run(1)
	if got := run(4); got != want {
		t.Fatalf("parallel pipeline diverged: %+v vs %+v", got, want)
	}
}
