package adaptive

import (
	"reflect"
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/strategy"
)

// TestRefineParallelMatchesSequential: a round's neighborhood is only
// scanned concurrently when the budget covers it whole, so the refined
// configuration and the measurements spent must be identical at every
// parallelism level.
func TestRefineParallelMatchesSequential(t *testing.T) {
	inst := fixture(t, dna.Human)
	seq, err := Refine(inst, seedConfig(), Options{MeasureBudget: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		par, err := Refine(inst, seedConfig(), Options{MeasureBudget: 60, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallelism %d diverged:\nseq %+v\npar %+v", p, seq, par)
		}
	}
}

// TestRefineInjectedStrategy: an injected strategy refines from the
// seed (every worker starts there), never regresses below the seed, and
// is bit-identical at every parallelism level.
func TestRefineInjectedStrategy(t *testing.T) {
	inst := fixture(t, dna.Human)
	for _, tc := range []struct {
		name string
		s    strategy.Strategy
	}{
		{"anneal", strategy.DefaultAnneal()},
		{"tabu", strategy.Tabu{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(parallelism int) Result {
				res, err := Refine(inst, seedConfig(), Options{
					MeasureBudget: 60,
					Strategy:      tc.s,
					Seed:          5,
					Restarts:      3,
					Parallelism:   parallelism,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(1)
			for _, p := range []int{4, 8} {
				if got := run(p); !reflect.DeepEqual(want, got) {
					t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, got)
				}
			}
			if want.MeasuredE > want.StartE {
				t.Fatalf("strategy refinement regressed: %g > seed %g", want.MeasuredE, want.StartE)
			}
			if want.Measurements <= 0 {
				t.Fatal("no measurements accounted")
			}
			// All workers and the seed evaluation share one cache: the
			// physical count must stay below the un-deduplicated worst
			// case (3 workers x (60+1) evaluations + 1 seed), since at
			// minimum every worker re-evaluates the shared seed state.
			if worst := 3*(60+1) + 1; want.Measurements >= worst {
				t.Fatalf("measurements = %d, want < %d (shared cache must deduplicate)", want.Measurements, worst)
			}
		})
	}
}

// TestRefineRejectsExhaustive: enumeration ignores evaluation budgets,
// so it must be refused instead of measuring the whole space.
func TestRefineRejectsExhaustive(t *testing.T) {
	inst := fixture(t, dna.Human)
	for name, s := range map[string]strategy.Strategy{
		"value":     strategy.Exhaustive{},
		"pointer":   &strategy.Exhaustive{},
		"portfolio": strategy.Portfolio{Members: []strategy.Strategy{strategy.DefaultAnneal(), strategy.Exhaustive{}}},
	} {
		if _, err := Refine(inst, seedConfig(), Options{MeasureBudget: 20, Strategy: s}); err == nil {
			t.Fatalf("%s: exhaustive refinement must be rejected", name)
		}
	}
}

// TestTuneAndRefineParallelOptions drives the whole adaptive pipeline
// with a parallel, multi-chain SAML stage and a parallel refinement
// stage; the outcome must match the sequential run of the same seeds.
func TestTuneAndRefineParallelOptions(t *testing.T) {
	inst := fixture(t, dna.Human)
	type outcome struct {
		samlE, refinedE float64
	}
	run := func(parallelism int) outcome {
		saml, refined, err := TuneAndRefine(inst,
			core.Options{Iterations: 300, Seed: 3, Restarts: 2, Parallelism: parallelism},
			Options{MeasureBudget: 40, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{saml.MeasuredE(), refined.MeasuredE}
	}
	want := run(1)
	if got := run(4); got != want {
		t.Fatalf("parallel pipeline diverged: %+v vs %+v", got, want)
	}
}
