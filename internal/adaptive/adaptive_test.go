package adaptive

import (
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/ml"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// fixture builds a paper-space instance with trained models (small
// boosting budget keeps the test fast).
func fixture(t *testing.T, g dna.Genome) *core.Instance {
	t.Helper()
	platform := offload.NewPlatform()
	models, err := core.Train(platform, core.PaperTrainingPlan(), core.TrainOptions{
		Boost:     ml.BoostOptions{Rounds: 60, LearningRate: 0.15, Tree: ml.TreeOptions{MaxDepth: 6, MinLeaf: 5}, Subsample: 0.9, Seed: 1},
		SplitSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := offload.GenomeWorkload(g)
	pred, err := core.NewPredictor(models, w, platform.Model())
	if err != nil {
		t.Fatal(err)
	}
	return &core.Instance{
		Schema:    space.PaperSchema(),
		Measurer:  core.NewMeasurer(platform, w),
		Predictor: pred,
	}
}

func seedConfig() space.Config {
	return space.Config{
		HostThreads: 24, HostAffinity: machine.AffinityNone,
		DeviceThreads: 120, DeviceAffinity: machine.AffinityScatter,
		HostFraction: 30,
	}
}

func TestRefineImprovesPoorSeed(t *testing.T) {
	inst := fixture(t, dna.Human)
	res, err := Refine(inst, seedConfig(), Options{MeasureBudget: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredE > res.StartE {
		t.Fatalf("refinement worsened the seed: %g -> %g", res.StartE, res.MeasuredE)
	}
	if res.Improvement() <= 0.05 {
		t.Fatalf("expected a clear improvement from a poor seed, got %.1f%%", 100*res.Improvement())
	}
	if res.Measurements > 120 {
		t.Fatalf("budget exceeded: %d", res.Measurements)
	}
	if _, err := inst.Schema.Index(res.Config); err != nil {
		t.Fatalf("refined config left the space: %v", err)
	}
}

func TestRefineRespectsBudget(t *testing.T) {
	inst := fixture(t, dna.Cat)
	inst.Measurer.ResetCount()
	res, err := Refine(inst, seedConfig(), Options{MeasureBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measurements > 10 {
		t.Fatalf("measurements = %d, budget 10", res.Measurements)
	}
	if inst.Measurer.Count() != res.Measurements {
		t.Fatalf("measurer saw %d, result reports %d", inst.Measurer.Count(), res.Measurements)
	}
}

func TestRefineStopsAtLocalOptimum(t *testing.T) {
	inst := fixture(t, dna.Dog)
	// Refine twice: the second run from the first result must make no
	// further progress (it is already a measured local optimum) as long
	// as the budget was not the binding constraint.
	first, err := Refine(inst, seedConfig(), Options{MeasureBudget: 500, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Refine(inst, first.Config, Options{MeasureBudget: 500, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	if second.MeasuredE < first.MeasuredE-1e-12 {
		t.Fatalf("second refinement improved further (%g -> %g): first run was not at a local optimum",
			first.MeasuredE, second.MeasuredE)
	}
	if second.Rounds != 0 {
		t.Fatalf("second refinement took %d rounds, want 0", second.Rounds)
	}
}

func TestRefineRejectsForeignSeed(t *testing.T) {
	inst := fixture(t, dna.Human)
	bad := seedConfig()
	bad.HostThreads = 7 // not a schema level
	if _, err := Refine(inst, bad, Options{}); err == nil {
		t.Fatal("foreign seed should fail")
	}
}

func TestTuneAndRefinePipeline(t *testing.T) {
	inst := fixture(t, dna.Mouse)
	inst.Measurer.ResetCount()
	saml, refined, err := TuneAndRefine(inst,
		core.Options{Iterations: 500, Seed: 3},
		Options{MeasureBudget: 60})
	if err != nil {
		t.Fatal(err)
	}
	if refined.MeasuredE > saml.MeasuredE() {
		t.Fatalf("refinement worsened SAML's suggestion: %g -> %g", saml.MeasuredE(), refined.MeasuredE)
	}
	// Total measurements stay far below enumeration.
	if total := inst.Measurer.Count(); total > 70 {
		t.Fatalf("adaptive pipeline spent %d measurements", total)
	}
}
