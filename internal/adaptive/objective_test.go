package adaptive

import (
	"reflect"
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// measureInstance builds a measurement-only instance over the paper
// space (Refine never needs the predictor).
func measureInstance(g dna.Genome) *core.Instance {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(g)
	return &core.Instance{
		Schema:   space.PaperSchema(),
		Measurer: core.NewMeasurer(platform, w),
	}
}

// TestRefineUnderEnergyObjective checks that the objective threads
// through refinement: hill-climbing a balanced seed under the energy
// objective must reduce joules, and the reported E fields are energy
// values, not makespans.
func TestRefineUnderEnergyObjective(t *testing.T) {
	inst := measureInstance(dna.Human)
	res, err := Refine(inst, seedConfig(), Options{
		MeasureBudget: 200,
		Objective:     core.EnergyObjective{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredE > res.StartE {
		t.Fatalf("energy refinement worsened the seed: %g -> %g J", res.StartE, res.MeasuredE)
	}
	if res.Improvement() <= 0 {
		t.Fatalf("expected an energy improvement, got %.1f%%", 100*res.Improvement())
	}
	// The seed is a mid-split: its total energy on this platform is far
	// above a makespan-valued number, so the objective units are visible.
	if res.StartE < 10 {
		t.Fatalf("StartE %g looks like a makespan, want joules", res.StartE)
	}
	// The refined configuration should shift work toward the
	// energy-efficient host.
	if res.Config.HostFraction <= res.Start.HostFraction {
		t.Errorf("energy refinement kept host fraction at %g%% (seed %g%%)",
			res.Config.HostFraction, res.Start.HostFraction)
	}
}

// TestRefineObjectiveDeterministicAcrossParallelism extends the
// round-scan determinism contract to the energy objective.
func TestRefineObjectiveDeterministicAcrossParallelism(t *testing.T) {
	var want Result
	for i, p := range []int{1, 4, 8} {
		inst := measureInstance(dna.Human)
		res, err := Refine(inst, seedConfig(), Options{
			MeasureBudget: 150,
			Parallelism:   p,
			Objective:     core.WeightedSumObjective{Alpha: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			continue
		}
		if !reflect.DeepEqual(want, res) {
			t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, res)
		}
	}
}
