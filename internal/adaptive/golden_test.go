package adaptive

import (
	"fmt"
	"math"
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/dna"
)

// afp64 renders a float64 by its exact bit pattern.
func afp64(x float64) string { return fmt.Sprintf("%016x", math.Float64bits(x)) }

// TestDNAPaperPlatformGolden pins the adaptive pipeline's
// DNA-on-paper-platform outcome to a golden value captured before the
// scenario-layer refactor: the scenario plumbing must leave the default
// scenario bit-identical.
func TestDNAPaperPlatformGolden(t *testing.T) {
	inst := fixture(t, dna.Human)
	saml, refined, err := TuneAndRefine(inst, core.Options{Iterations: 300, Seed: 5}, Options{MeasureBudget: 80})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("%v|%s|%v|%s|%v|%s|%d|%d",
		saml.Config, afp64(saml.MeasuredE()),
		refined.Start, afp64(refined.StartE),
		refined.Config, afp64(refined.MeasuredE),
		refined.Measurements, refined.Rounds)
	const golden = "57.5/42.5 host(48T,scatter) device(240T,balanced)|3fd8867e1c6f80aa|57.5/42.5 host(48T,scatter) device(240T,balanced)|3fd8867e1c6f80aa|60/40 host(48T,compact) device(240T,balanced)|3fd77e3deaee3406|25|2"
	if got != golden {
		t.Errorf("adaptive pipeline diverged from the pre-scenario-layer golden:\n got  %s\n want %s", got, golden)
	}
}
