// Package adaptive implements the paper's stated future work ("Future
// work will study adaptive workload-aware approaches"): combining the
// cheap ML-guided global search (SAML) with a small budget of real
// measurements spent adaptively around the suggested configuration.
//
// SAML's residual gap to the EM optimum (Table VI: ~10% at 1000
// iterations) comes from prediction error: the predicted optimum is near,
// but not at, the measured optimum. Refine spends a few dozen real
// experiments hill-climbing from SAML's suggestion under measurement,
// closing most of that gap at a tiny fraction of EM's 19,926
// experiments.
package adaptive

import (
	"fmt"
	"math"
	"math/rand"

	"hetopt/internal/core"
	"hetopt/internal/search"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// Options configures Refine.
type Options struct {
	// MeasureBudget caps the number of real measurements spent on
	// refinement. Zero selects 48.
	MeasureBudget int
	// MaxRounds caps hill-climbing rounds (each round scans the
	// neighborhood of the incumbent). Zero selects 16.
	MaxRounds int
	// Parallelism is the worker count for scanning a round's neighborhood.
	// A round is measured concurrently only when the remaining budget
	// covers the whole neighborhood, so the measurements spent and the
	// refined configuration are identical at every parallelism level.
	// Zero or one measures sequentially.
	Parallelism int
	// Objective selects what refinement minimizes (nil = the paper's
	// makespan). Use the same objective as the seeding search so the
	// hill-climb improves the quantity the search optimized.
	Objective core.Objective
	// Strategy, when non-nil, replaces the built-in hill-climb: the
	// strategy searches the measured space with MeasureBudget as its
	// per-worker evaluation budget and Restarts workers seeded from
	// Seed. Initial/Neighbor-driven strategies (Anneal, a Portfolio of
	// such members) start every worker at the seed configuration and
	// explore its neighborhood; the heuristics-based strategies draw
	// their own restart points and use the seed only as the incumbent
	// to beat. Either way the refined configuration is the better of
	// the seed and the strategy's best, so refinement can never
	// regress. The seed evaluation and every worker share one
	// measurement cache, so a configuration is measured at most once no
	// matter how often the search revisits it; Measurements reports the
	// distinct configurations actually measured, which is bounded by
	// Restarts x MeasureBudget (+1 for each worker's initialization)
	// rather than capped at MeasureBudget — size the per-worker budget
	// accordingly. strategy.Exhaustive is rejected: it ignores
	// evaluation budgets, and enumerating the space under measurement
	// is EM, not refinement. Nil keeps the paper-faithful neighborhood
	// hill-climb, whose MeasureBudget is a hard cap, bit-identical to
	// the pre-strategy-layer behavior.
	Strategy strategy.Strategy
	// Seed and Restarts configure an injected Strategy (ignored by the
	// built-in hill-climb, which is deterministic).
	Seed     int64
	Restarts int
}

func (o Options) budget() int {
	if o.MeasureBudget <= 0 {
		return 48
	}
	return o.MeasureBudget
}

func (o Options) rounds() int {
	if o.MaxRounds <= 0 {
		return 16
	}
	return o.MaxRounds
}

// Result reports a refinement run. The E fields are values of the
// objective the refinement ran under (the makespan by default).
type Result struct {
	// Start and StartE are the seed configuration and its measured
	// objective.
	Start  space.Config
	StartE float64
	// Config and MeasuredE are the refined incumbent.
	Config    space.Config
	MeasuredE float64
	// Measurements counts real experiments spent (including measuring the
	// seed).
	Measurements int
	// Rounds is the number of completed hill-climbing rounds.
	Rounds int
}

// Improvement returns the relative gain of refinement over the seed.
func (r Result) Improvement() float64 {
	if r.StartE == 0 {
		return 0
	}
	return (r.StartE - r.MeasuredE) / r.StartE
}

// Refine measures the seed configuration and improves it under real
// measurements. By default it hill-climbs: each round evaluates the
// one-step neighbors (adjacent levels for ordered parameters, all
// alternatives for categorical ones) of the incumbent and moves to the
// best improvement, stopping at a local measured optimum, the
// measurement budget, or the round cap. With Options.Strategy set, the
// injected search strategy explores from the seed instead.
func Refine(inst *core.Instance, seed space.Config, opt Options) (Result, error) {
	if err := inst.Validate(core.EM); err != nil {
		return Result{}, err
	}
	schema := inst.Schema
	idx, err := schema.Index(seed)
	if err != nil {
		return Result{}, fmt.Errorf("adaptive: seed configuration: %w", err)
	}
	if opt.Strategy != nil {
		return refineWith(inst, seed, idx, opt)
	}

	budget := opt.budget()
	used := 0
	obj := opt.Objective
	if obj == nil {
		obj = core.TimeObjective{}
	}
	// energy measures one candidate and scores it under the objective;
	// measure additionally enforces the budget (the parallel round scan
	// accounts for the budget itself).
	energy := func(candidate []int) (float64, error) {
		cfg, err := schema.Config(candidate)
		if err != nil {
			return 0, err
		}
		t, err := inst.Measurer.Evaluate(cfg)
		if err != nil {
			return 0, err
		}
		return obj.Value(t.E(), t.Joules()), nil
	}
	measure := func(candidate []int) (float64, error) {
		if used >= budget {
			return math.Inf(1), nil
		}
		e, err := energy(candidate)
		if err != nil {
			return 0, err
		}
		used++
		return e, nil
	}

	curE, err := measure(idx)
	if err != nil {
		return Result{}, err
	}
	res := Result{Start: seed, StartE: curE}

	params := schema.Space().Params
	cand := make([]int, len(idx))
	workers := search.Workers(opt.Parallelism)
	for round := 0; round < opt.rounds() && used < budget; round++ {
		// Gather the round's neighborhood: adjacent levels for ordered
		// parameters, all alternatives for categorical ones.
		type move struct{ param, value int }
		var moves []move
		for pi := range params {
			p := &params[pi]
			if p.Kind == space.Ordered {
				if idx[pi] > 0 {
					moves = append(moves, move{pi, idx[pi] - 1})
				}
				if idx[pi] < p.Levels()-1 {
					moves = append(moves, move{pi, idx[pi] + 1})
				}
			} else {
				for v := 0; v < p.Levels(); v++ {
					if v != idx[pi] {
						moves = append(moves, move{pi, v})
					}
				}
			}
		}

		bestE := curE
		bestParam, bestValue := -1, 0
		if workers > 1 && budget-used >= len(moves) {
			// The whole neighborhood fits the budget: measure it
			// concurrently and select exactly as the sequential scan would
			// (lowest energy, earliest move among ties).
			energies := make([]float64, len(moves))
			err := search.ForEach(len(moves), workers, func(i int) error {
				c := make([]int, len(idx))
				copy(c, idx)
				c[moves[i].param] = moves[i].value
				var err error
				energies[i], err = energy(c)
				return err
			})
			if err != nil {
				return Result{}, err
			}
			used += len(moves)
			for i, e := range energies {
				if e < bestE {
					bestE = e
					bestParam, bestValue = moves[i].param, moves[i].value
				}
			}
		} else {
			for _, mv := range moves {
				if used >= budget {
					break
				}
				copy(cand, idx)
				cand[mv.param] = mv.value
				e, err := measure(cand)
				if err != nil {
					return Result{}, err
				}
				if e < bestE {
					bestE = e
					bestParam, bestValue = mv.param, mv.value
				}
			}
		}
		if bestParam < 0 {
			break // local measured optimum
		}
		idx[bestParam] = bestValue
		curE = bestE
		res.Rounds++
	}

	cfg, err := schema.Config(idx)
	if err != nil {
		return Result{}, err
	}
	res.Config = cfg
	res.MeasuredE = curE
	res.Measurements = used
	return res, nil
}

// seededProblem fixes the starting state of a search problem: every
// worker begins at the seed configuration, so the search refines
// around it rather than restarting from random points.
type seededProblem struct {
	strategy.Spaced
	seed []int
}

func (p *seededProblem) Initial(dst []int, _ *rand.Rand) { copy(dst, p.seed) }

// refineWith is the injected-strategy refinement path: the strategy
// searches the measured space from the seed, and the result is the
// better of the seed and the strategy's best, so refinement never
// regresses. The seed evaluation and all workers evaluate through one
// shared cache, so no configuration — the seed included, which every
// worker re-evaluates as its initial state — is measured twice.
// containsExhaustive reports whether s is the exhaustive strategy (by
// value or pointer) or a portfolio carrying one, however nested.
func containsExhaustive(s strategy.Strategy) bool {
	switch t := s.(type) {
	case strategy.Exhaustive, *strategy.Exhaustive:
		return true
	case strategy.Portfolio:
		for _, m := range t.Members {
			if containsExhaustive(m) {
				return true
			}
		}
	case *strategy.Portfolio:
		for _, m := range t.Members {
			if containsExhaustive(m) {
				return true
			}
		}
	}
	return false
}

func refineWith(inst *core.Instance, seed space.Config, idx []int, opt Options) (Result, error) {
	if containsExhaustive(opt.Strategy) {
		return Result{}, fmt.Errorf("adaptive: exhaustive strategy ignores the measurement budget; run core EM instead of refinement")
	}
	start := inst.Measurer.Count()
	cached := search.NewCache(inst.Measurer)
	prob := &seededProblem{
		Spaced: core.NewSearchProblem(inst.Schema, cached, opt.Objective, space.StepMove),
		seed:   idx,
	}
	seedE, err := prob.Energy(idx)
	if err != nil {
		return Result{}, err
	}
	res := Result{Start: seed, StartE: seedE, Config: seed, MeasuredE: seedE}
	sres, err := opt.Strategy.Minimize(prob, strategy.Options{
		Budget:      opt.budget(),
		Seed:        opt.Seed,
		Restarts:    opt.Restarts,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return Result{}, err
	}
	if sres.BestEnergy < seedE {
		cfg, err := inst.Schema.Config(sres.Best)
		if err != nil {
			return Result{}, err
		}
		res.Config, res.MeasuredE = cfg, sres.BestEnergy
	}
	res.Measurements = inst.Measurer.Count() - start
	return res, nil
}

// TuneAndRefine is the adaptive workload-aware pipeline: SAML proposes a
// configuration from predictions (one real experiment), then Refine
// spends the measurement budget improving it. The total experiment count
// stays two orders of magnitude below enumeration. When refineOpt leaves
// Objective nil, refinement inherits the objective of the SAML search so
// both stages minimize the same quantity.
func TuneAndRefine(inst *core.Instance, samlOpt core.Options, refineOpt Options) (core.Result, Result, error) {
	saml, err := core.Run(core.SAML, inst, samlOpt)
	if err != nil {
		return core.Result{}, Result{}, err
	}
	if refineOpt.Objective == nil {
		refineOpt.Objective = samlOpt.Objective
	}
	refined, err := Refine(inst, saml.Config, refineOpt)
	if err != nil {
		return core.Result{}, Result{}, err
	}
	return saml, refined, nil
}
