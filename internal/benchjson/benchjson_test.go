package benchjson

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func record(name string, ns float64, allocs, bytes int64) Record {
	return Record{Name: name, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes}
}

func TestWriteReadRoundtrip(t *testing.T) {
	f := File{Schema: 1, GoVersion: "go1.23", GOOS: "linux", GOARCH: "amd64",
		Benchmarks: []Record{record("a", 123.5, 4, 96)}}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0] != f.Benchmarks[0] {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("missing trailing newline")
	}
}

func TestReadFileRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"schema":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("want schema error")
	}
}

func TestComparePasses(t *testing.T) {
	old := File{Benchmarks: []Record{record("a", 100, 10, 80), record("zero", 50, 0, 0)}}
	cur := File{Benchmarks: []Record{
		record("a", 105, 10, 80),       // within 10%
		record("zero", 54, 0, 0),       // still allocation-free
		record("new-bench", 1, 99, 99), // additions are not regressions
	}}
	if p := Compare(old, cur, CompareOptions{NsTolerance: 0.10, AllocTolerance: 0.10}); len(p) != 0 {
		t.Fatalf("unexpected problems: %v", p)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := File{Benchmarks: []Record{record("a", 100, 10, 80), record("zero", 50, 0, 0), record("gone", 1, 1, 1)}}
	cur := File{Benchmarks: []Record{
		record("a", 150, 12, 120), // ns, allocs and bytes all regressed
		record("zero", 50, 1, 16), // zero-alloc contract broken
	}}
	p := Compare(old, cur, CompareOptions{NsTolerance: 0.10, AllocTolerance: 0.10})
	if len(p) != 6 {
		t.Fatalf("want 6 problems (3x a, 2x zero, 1x gone), got %d: %v", len(p), p)
	}
	joined := strings.Join(p, "\n")
	for _, want := range []string{"a: ns/op", "a: allocs/op", "a: B/op", "zero: allocs/op", "zero: B/op", "gone: tracked benchmark missing"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in %v", want, p)
		}
	}
}

func TestCompareSkipNs(t *testing.T) {
	old := File{Benchmarks: []Record{record("a", 100, 10, 80)}}
	cur := File{Benchmarks: []Record{record("a", 1e9, 10, 80)}}
	if p := Compare(old, cur, CompareOptions{NsTolerance: 0.10, AllocTolerance: 0.10, SkipNs: true}); len(p) != 0 {
		t.Fatalf("skip-ns should ignore time: %v", p)
	}
}

// TestDefsRun smoke-tests the cheap tracked definitions end to end
// through testing.Benchmark (the expensive search benches are exercised
// by the repo's regular benchmarks; re-running them here would double
// CI time for no coverage).
func TestDefsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	cheap := map[string]bool{"store-key": true, "measure-full": true, "cache-evaluate-hit": true}
	var defs []Def
	for _, d := range Defs() {
		if cheap[d.Name] {
			defs = append(defs, d)
		}
	}
	if len(defs) != len(cheap) {
		t.Fatalf("tracked set lost a definition: %v", defs)
	}
	f := Run(defs)
	if f.Schema != 1 || len(f.Benchmarks) != len(defs) {
		t.Fatalf("bad record: %+v", f)
	}
	for _, r := range f.Benchmarks {
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %g", r.Name, r.NsPerOp)
		}
	}
	for _, r := range f.Benchmarks {
		if r.Name == "cache-evaluate-hit" && r.AllocsPerOp != 0 {
			t.Fatalf("cache-evaluate-hit allocates: %d allocs/op", r.AllocsPerOp)
		}
	}
}

func TestDefNamesAreStable(t *testing.T) {
	want := []string{"em-enumeration", "sam-multichain", "measure-full",
		"predictor-evaluate-hit", "cache-evaluate-hit", "store-key"}
	defs := Defs()
	if len(defs) < len(want) {
		t.Fatalf("tracked set shrank: %d < %d", len(defs), len(want))
	}
	have := map[string]bool{}
	for _, d := range defs {
		have[d.Name] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Fatalf("tracked benchmark %q missing (renaming breaks the perf trajectory)", n)
		}
	}
}
