package benchjson

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetopt/internal/cluster"
	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/graph"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/scenario"
	"hetopt/internal/search"
	"hetopt/internal/serve"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// The tracked set covers each layer the hot-path work touches: the two
// end-to-end search benches the acceptance gate names (enumeration and
// multi-chain annealing), the per-evaluation measurement, the two
// memo-hit paths whose zero-allocation contract the PR introduces, and
// the serving layer's canonical store key. Names are stable across PRs;
// add to the set, do not rename.

// benchState lazily builds the shared fixtures once per process —
// model training is seconds-scale and must never run inside a timed
// region (testing.Benchmark re-invokes the function while calibrating
// b.N, so fixtures cannot be built there unguarded).
type benchState struct {
	platform *offload.Platform
	schema   *space.Schema
	workload offload.Workload
	pred     *core.Predictor
	err      error
}

var (
	stateOnce sync.Once
	state     benchState
)

func fixtures(b *testing.B) *benchState {
	b.Helper()
	stateOnce.Do(func() {
		state.platform = offload.NewPlatform()
		state.schema = space.PaperSchema()
		state.workload = offload.GenomeWorkload(dna.Human)
		models, err := core.Train(state.platform, core.PaperTrainingPlan(), core.TrainOptions{SplitSeed: 7})
		if err != nil {
			state.err = err
			return
		}
		state.pred, state.err = core.NewPredictor(models, state.workload, state.platform.Model())
	})
	if state.err != nil {
		b.Fatal(state.err)
	}
	return &state
}

// trackedConfig is the paper's flagship configuration (Section IV-C).
func trackedConfig() space.Config {
	return space.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 60,
	}
}

// Defs returns the tracked benchmark set.
func Defs() []Def {
	return []Def{
		{Name: "em-enumeration", Bench: benchEMEnumeration},
		{Name: "sam-multichain", Bench: benchSAMMultiChain},
		{Name: "measure-full", Bench: benchMeasureFull},
		{Name: "predictor-evaluate-hit", Bench: benchPredictorEvaluateHit},
		{Name: "cache-evaluate-hit", Bench: benchCacheEvaluateHit},
		{Name: "store-key", Bench: benchStoreKey},
		{Name: "store-peek", Bench: benchStorePeek},
		{Name: "warm-hit-post", Bench: benchWarmHitPost},
		{Name: "dag-placement", Bench: benchDAGPlacement},
		{Name: "exact-small-space", Bench: benchExactSmallSpace},
		{Name: "ring-lookup", Bench: benchRingLookup},
		{Name: "local-warm-hit-http", Bench: benchLocalWarmHitHTTP},
		{Name: "forward-warm-hit", Bench: benchForwardWarmHit},
	}
}

// benchRingLookup is the cluster routing decision paid by every POST:
// one consistent-hash lookup of a canonical store key, returning owner
// and failover follower. Contract: 0 allocs/op (the ring is immutable
// and the binary search walks a flat point slice).
func benchRingLookup(b *testing.B) {
	ring, err := cluster.New([]string{
		"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080",
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("w=dna:human|p=paper|mb=3246|m=SAML|s=auto|o=time|a=0|sl=0|it=1000|r=1|seed=42")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner, follower := ring.Lookup(key)
		if owner == "" || follower == "" {
			b.Fatal("empty lookup")
		}
	}
}

// benchSwap adapts a Server into a handler swappable after its peer
// URLs are known (the cluster benches need listeners bound first).
type benchSwap struct {
	s atomic.Pointer[serve.Server]
}

func (sw *benchSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s := sw.s.Load(); s != nil {
		s.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

// benchCluster builds a 2-node cluster, warms one key on its owner,
// and returns the owner URL, the other node's URL, the warm POST body
// and a teardown. The same fixture serves the local and forwarded
// warm-hit benches, so their ratio is a clean one-hop cost.
func benchCluster(b *testing.B) (ownerURL, otherURL string, body []byte, done func()) {
	b.Helper()
	swaps := [2]*benchSwap{{}, {}}
	l0 := httptest.NewServer(swaps[0])
	l1 := httptest.NewServer(swaps[1])
	urls := []string{l0.URL, l1.URL}
	servers := make([]*serve.Server, 2)
	for i := range servers {
		s, err := serve.NewCluster(serve.Options{
			Workers:   2,
			QueueSize: 8,
			Cluster:   &serve.ClusterOptions{NodeID: urls[i], Peers: urls, Replicate: false},
		})
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = s
		swaps[i].s.Store(s)
	}
	done = func() {
		l0.Close()
		l1.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, s := range servers {
			_ = s.Drain(ctx)
		}
	}
	// Sweep seeds for a key owned by node 0 (the httptest ports differ
	// per process, so the ring layout does too).
	for seed := int64(1); seed < 4096; seed++ {
		raw := serve.TuneRequest{Method: "sam", Iterations: 40, Seed: seed}
		canon, err := raw.Normalize()
		if err != nil {
			b.Fatal(err)
		}
		if servers[0].ClusterOwner(canon.Key()) != urls[0] {
			continue
		}
		body, err = json.Marshal(canon)
		if err != nil {
			b.Fatal(err)
		}
		resp, perr := http.Post(urls[0]+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
		if perr != nil {
			b.Fatal(perr)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warming POST: status %d", resp.StatusCode)
		}
		return urls[0], urls[1], body, done
	}
	b.Fatal("no seed under 4096 owned by node 0")
	return "", "", nil, nil
}

// benchWarmPost drives b.N warm POSTs of body to url over a pooled
// client — one full HTTP round trip per op.
func benchWarmPost(b *testing.B, url string, body []byte) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warm POST: status %d", resp.StatusCode)
		}
	}
}

// benchLocalWarmHitHTTP is a warm hit POSTed to the key's owner: the
// full HTTP round trip of the store-served fast path, and the baseline
// the forwarded hop is compared against (acceptance: forwarded stays
// within 10x of this).
func benchLocalWarmHitHTTP(b *testing.B) {
	ownerURL, _, body, done := benchCluster(b)
	defer done()
	benchWarmPost(b, ownerURL+"/v1/jobs", body)
}

// benchForwardWarmHit is the same warm hit POSTed to the non-owner:
// the entry node routes the key, proxies to the owner, and streams the
// owner's pre-rendered bytes through — two HTTP round trips total.
func benchForwardWarmHit(b *testing.B) {
	ownerURL, otherURL, body, done := benchCluster(b)
	_ = ownerURL
	defer done()
	benchWarmPost(b, otherURL+"/v1/jobs", body)
}

// benchExactSmallSpace is one certified branch-and-bound solve of the
// fork-join placement space (2^11 states): the end-to-end cost of a
// proof on a small space, with the critical-path lower bound pruning
// the tree and the diverse pool riding along.
func benchExactSmallSpace(b *testing.B) {
	spec, err := scenario.PlatformByName("gpu-like")
	if err != nil {
		b.Fatal(err)
	}
	sim, err := spec.DAGSim(graph.ForkJoin())
	if err != nil {
		b.Fatal(err)
	}
	prob := graph.NewPlacementProblem(sim)
	ex := strategy.Exact{Prove: true, PoolSize: 4}
	opt := strategy.Options{Parallelism: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ex.Minimize(prob, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cert == nil || !res.Cert.Optimal || res.Cert.Pruned == 0 {
			b.Fatal("solve returned no pruning proof")
		}
	}
}

// benchDAGPlacement is one makespan evaluation of the graph
// list-scheduling simulator — the inner loop of every placement search.
// Its zero-allocation contract is also pinned by an AllocsPerRun test
// in internal/graph.
func benchDAGPlacement(b *testing.B) {
	spec, err := scenario.PlatformByName("gpu-like")
	if err != nil {
		b.Fatal(err)
	}
	sim, err := spec.DAGSim(graph.ResNetIsh())
	if err != nil {
		b.Fatal(err)
	}
	placement := sim.RoundRobinPlacement()
	if sim.Makespan(placement) <= 0 {
		b.Fatal("degenerate makespan")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sim.Makespan(placement) <= 0 {
			b.Fatal("degenerate makespan")
		}
	}
}

// benchEMEnumeration is a full EM enumeration of the 19,926-config
// space (the BenchmarkTable1Enumeration acceptance bench).
func benchEMEnumeration(b *testing.B) {
	s := fixtures(b)
	inst := &core.Instance{Schema: s.schema, Measurer: core.NewMeasurer(s.platform, s.workload)}
	// Warm the shared measure cache so the record captures the
	// steady-state per-run cost: the first enumeration's 19,926 memo
	// inserts would otherwise amortize over a run-dependent N and make
	// allocs/op non-reproducible.
	if _, err := core.Run(core.EM, inst, core.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.EM, inst, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.SearchEvaluations != 19926 {
			b.Fatal("enumeration incomplete")
		}
	}
}

// benchSAMMultiChain runs 4 concurrent SAM chains over the shared
// evaluation cache (the BenchmarkSAMMultiChain acceptance bench).
func benchSAMMultiChain(b *testing.B) {
	s := fixtures(b)
	inst := &core.Instance{Schema: s.schema, Measurer: core.NewMeasurer(s.platform, s.workload)}
	// Warm the shared measure cache (see benchEMEnumeration).
	if _, err := core.Run(core.SAM, inst, core.Options{
		Iterations: 2000, Seed: 1, Restarts: 4, Parallelism: 4,
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.SAM, inst, core.Options{
			Iterations: 2000, Seed: 1, Restarts: 4, Parallelism: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.SearchEvaluations != 4*2001 {
			b.Fatal("chain budget mismatch")
		}
	}
}

// benchMeasureFull is one simulated measurement: four placements-worth
// of table lookups plus four noise hashes.
func benchMeasureFull(b *testing.B) {
	s := fixtures(b)
	cfg := trackedConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.platform.MeasureFull(s.workload, cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredictorEvaluateHit is the steady-state prediction path: both
// side memos warm, energy priced through the cached power tables.
func benchPredictorEvaluateHit(b *testing.B) {
	s := fixtures(b)
	cfg := trackedConfig()
	if _, err := s.pred.Evaluate(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.pred.Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCacheEvaluateHit is the memo-hit path of the shared evaluation
// cache.
func benchCacheEvaluateHit(b *testing.B) {
	s := fixtures(b)
	cache := search.NewCache(core.NewMeasurer(s.platform, s.workload))
	cfg := trackedConfig()
	if _, err := cache.Evaluate(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchStoreKey is the canonical store key of a normalized tune
// request, computed on every submit — the allocation-free AppendKey
// path the serving handler uses, with the key buffer reused across
// requests the way the pooled decode scratch reuses it.
func benchStoreKey(b *testing.B) {
	req := serve.TuneRequest{
		Workload: "dna-human", Platform: "paper", SizeMB: 3246,
		Method: "SAML", Strategy: "anneal", Objective: "time",
		Iterations: 1000, Restarts: 4, Seed: 42,
	}
	buf := make([]byte, 0, 192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = req.AppendKey(buf[:0])
		if len(buf) == 0 {
			b.Fatal("empty key")
		}
	}
}

// benchStorePeek is the sharded store's warm-hit lookup: key bytes in,
// pre-rendered response bytes out, one shard mutex held briefly.
func benchStorePeek(b *testing.B) {
	store := serve.NewStore(0)
	req := warmBenchRequest()
	canon, err := req.Normalize()
	if err != nil {
		b.Fatal(err)
	}
	key := canon.Key()
	if _, err, _ := store.Do(key, func() (serve.TuneResult, error) {
		return serve.TuneResult{Method: "SAM", TimeSec: 1.25, EnergyJ: 80}, nil
	}); err != nil {
		b.Fatal(err)
	}
	store.SetBody(key, []byte(`{"state":"done"}`+"\n"))
	keyBytes := []byte(key)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _, ok := store.PeekWarm(keyBytes)
		if !ok || body == nil {
			b.Fatal("warm entry missing")
		}
	}
}

// benchWarmHitPost is the server-side core of a warm POST /v1/jobs —
// everything between the decoded request and the socket write:
// normalization, the canonical key appended into the reused scratch
// buffer, the sharded-store lookup and the write of the stored response
// bytes. HTTP transport and JSON decode are excluded (they are the
// client's and codec's cost, identical warm or cold); the pre-PR
// two-round-trip equivalent of this path is the POST+GET measured in
// internal/serve's BenchmarkServeWarmStart lineage (see DESIGN.md).
func benchWarmHitPost(b *testing.B) {
	store := serve.NewStore(0)
	req := warmBenchRequest()
	canon, err := req.Normalize()
	if err != nil {
		b.Fatal(err)
	}
	key := canon.Key()
	if _, err, _ := store.Do(key, func() (serve.TuneResult, error) {
		return serve.TuneResult{Method: "SAM", TimeSec: 1.25, EnergyJ: 80}, nil
	}); err != nil {
		b.Fatal(err)
	}
	body, jerr := json.Marshal(serve.JobStatus{State: serve.JobDone, Cached: true, Request: canon, Key: key})
	if jerr != nil {
		b.Fatal(jerr)
	}
	store.SetBody(key, append(body, '\n'))
	keyBuf := make([]byte, 0, 192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		canon, err := req.Normalize()
		if err != nil {
			b.Fatal(err)
		}
		keyBuf = canon.AppendKey(keyBuf[:0])
		body, _, ok := store.PeekWarm(keyBuf)
		if !ok || body == nil {
			b.Fatal("warm entry missing")
		}
		if n, err := io.Discard.Write(body); err != nil || n == 0 {
			b.Fatal("write failed")
		}
	}
}

// warmBenchRequest is the raw (pre-normalization) request the serving
// benches replay — field casing as a client would plausibly send it.
func warmBenchRequest() serve.TuneRequest {
	return serve.TuneRequest{
		Workload: "dna:human", Method: "SAM", Objective: "time",
		Iterations: 300, Seed: 9,
	}
}
