// Package benchjson is the repo's measured perf record: it runs the
// tracked microbenchmarks of the evaluator hot path programmatically
// (testing.Benchmark), serializes their ns/op, allocs/op and B/op into
// a BENCH_<pr>.json file, and compares two such files to gate
// regressions in CI (see DESIGN.md, "The hot path", and README,
// "Reading BENCH_*.json").
//
// Two of the three metrics are machine-independent: allocs/op and B/op
// are exact counts, so a cross-machine comparison of them is
// deterministic — in particular, the zero-allocation contract of the
// memo-hit and steady-state evaluation paths shows up as allocs_per_op
// 0 and any regression fails the gate no matter the tolerance. ns/op is
// hardware-dependent; compare it only against a record produced on
// comparable hardware, or skip it (cmd/hetbenchjson -skip-ns).
package benchjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
)

// Record is one tracked benchmark's measurement.
type Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the serialized perf record.
type File struct {
	Schema     int      `json:"schema"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Record `json:"benchmarks"`
}

// Def is one tracked benchmark: a name stable across PRs and the
// function the testing harness drives. Bench must call b.ReportAllocs
// so allocation counts are recorded.
type Def struct {
	Name  string
	Bench func(b *testing.B)
}

// Run executes every definition and assembles the record, in input
// order.
func Run(defs []Def) File {
	f := File{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, d := range defs {
		r := testing.Benchmark(d.Bench)
		f.Benchmarks = append(f.Benchmarks, Record{
			Name:        d.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return f
}

// Write serializes f as indented JSON with a trailing newline.
func Write(w io.Writer, f File) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadFile loads a previously written record.
func ReadFile(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	if f.Schema != 1 {
		return File{}, fmt.Errorf("benchjson: %s has unknown schema %d", path, f.Schema)
	}
	return f, nil
}

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// NsTolerance is the allowed fractional ns/op growth (0.10 = +10%).
	NsTolerance float64
	// AllocTolerance is the allowed fractional allocs/op and B/op
	// growth. A baseline of 0 tolerates nothing: the zero-allocation
	// paths must stay at zero.
	AllocTolerance float64
	// SkipNs disables the ns/op comparison (cross-machine records).
	SkipNs bool
}

// Compare gates cur against the baseline old: every baseline benchmark
// must still exist, and none may regress beyond the tolerances. It
// returns one human-readable line per violation (empty means the gate
// passes). Benchmarks only present in cur are ignored — adding tracked
// benchmarks is not a regression.
func Compare(old, cur File, opt CompareOptions) []string {
	curByName := make(map[string]Record, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curByName[r.Name] = r
	}
	var problems []string
	exceeds := func(baseline, now, tol float64) bool {
		return now > baseline*(1+tol)
	}
	for _, o := range old.Benchmarks {
		c, ok := curByName[o.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: tracked benchmark missing from current record", o.Name))
			continue
		}
		if !opt.SkipNs && exceeds(o.NsPerOp, c.NsPerOp, opt.NsTolerance) {
			problems = append(problems, fmt.Sprintf("%s: ns/op regressed %.0f -> %.0f (>%.0f%%)",
				o.Name, o.NsPerOp, c.NsPerOp, opt.NsTolerance*100))
		}
		if exceeds(float64(o.AllocsPerOp), float64(c.AllocsPerOp), opt.AllocTolerance) {
			problems = append(problems, fmt.Sprintf("%s: allocs/op regressed %d -> %d (>%.0f%%)",
				o.Name, o.AllocsPerOp, c.AllocsPerOp, opt.AllocTolerance*100))
		}
		if exceeds(float64(o.BytesPerOp), float64(c.BytesPerOp), opt.AllocTolerance) {
			problems = append(problems, fmt.Sprintf("%s: B/op regressed %d -> %d (>%.0f%%)",
				o.Name, o.BytesPerOp, c.BytesPerOp, opt.AllocTolerance*100))
		}
	}
	sort.Strings(problems)
	return problems
}
