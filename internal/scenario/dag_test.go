package scenario

import (
	"reflect"
	"strings"
	"testing"

	"hetopt/internal/graph"
	"hetopt/internal/strategy"
)

// TestDAGScenarioResolution checks that DAG workloads resolve through
// the same machinery as divisible ones: family default, qualified
// names, unique bare preset aliases, and canonical forms.
func TestDAGScenarioResolution(t *testing.T) {
	fam, preset, err := Resolve("dag")
	if err != nil {
		t.Fatal(err)
	}
	if !fam.IsDAG() || preset.Name != "resnet-ish" {
		t.Fatalf("dag default resolved to %q (IsDAG %v)", preset.Name, fam.IsDAG())
	}
	for _, name := range []string{"dag:resnet-ish", "DAG:RESNET-ISH", "resnet-ish", "dag:fork-join", "sparse-solver"} {
		fam, preset, err := Resolve(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !fam.IsDAG() {
			t.Errorf("%s: resolved to non-DAG family %q", name, fam.Name)
		}
		if preset.Graph == nil {
			t.Errorf("%s: preset carries no graph", name)
		}
		canon, err := CanonicalWorkloadName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(canon, "dag:") {
			t.Errorf("%s: canonical form %q not dag-qualified", name, canon)
		}
	}
	sc, err := Lookup("gpu-like", "dag:resnet-ish")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.IsDAG() || sc.Graph == nil {
		t.Fatal("Lookup did not fill the scenario graph")
	}
	if sc.Workload.SizeMB != sc.Graph.TotalWorkMB() {
		t.Errorf("carrier size %g != total graph work %g", sc.Workload.SizeMB, sc.Graph.TotalWorkMB())
	}
	if _, err := sc.DAGSim(); err != nil {
		t.Fatal(err)
	}
	// Divisible scenarios must refuse the DAG path.
	div, err := Lookup("paper", "dna:human")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := div.DAGSim(); err == nil {
		t.Error("divisible scenario built a DAG simulator")
	}
}

// TestDAGNamesInDidYouMean sync-asserts that the error machinery
// advertises the DAG names: every dag preset appears in the unknown-name
// listing, and a near-miss suggests the right qualified name.
func TestDAGNamesInDidYouMean(t *testing.T) {
	_, _, err := Resolve("no-such-workload-xyz")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{"dag", "dag:resnet-ish", "dag:fork-join", "dag:sparse-solver"} {
		if !strings.Contains(msg, want) {
			t.Errorf("unknown-workload error does not list %q: %s", want, msg)
		}
	}
	_, _, err = Resolve("dag:resnet-sh")
	if err == nil || !strings.Contains(err.Error(), `"resnet-ish"`) {
		t.Errorf("typo did not suggest resnet-ish: %v", err)
	}
}

// TestDAGPlatformLinks checks every built-in platform prices transfers
// with an explicit link, and that the calibration fallback engages for
// specs registered before the graph layer existed.
func TestDAGPlatformLinks(t *testing.T) {
	for _, p := range Platforms() {
		link := p.Link()
		if link.BandwidthMBs <= 0 {
			t.Errorf("%s: non-positive link bandwidth", p.Name)
		}
		if p.LinkBandwidthMBs == 0 {
			t.Errorf("%s: built-in platform should set an explicit link", p.Name)
		}
	}
	legacy := PaperPlatform()
	legacy.LinkBandwidthMBs, legacy.LinkLatencySec = 0, 0
	link := legacy.Link()
	cal := legacy.Cal()
	if link.BandwidthMBs != cal.PCIeRateMBs || link.LatencySec != cal.OffloadLatencySec {
		t.Errorf("fallback link %+v does not match calibration (%g, %g)",
			link, cal.PCIeRateMBs, cal.OffloadLatencySec)
	}
}

// TestDAGDeterminismSweep is the cross-layer determinism contract for
// the graph class: every preset × platform × strategy yields
// bit-identical results at parallelism 1, 4 and 8.
func TestDAGDeterminismSweep(t *testing.T) {
	strats := []strategy.Strategy{
		strategy.DefaultAnneal(),
		strategy.Genetic{},
		strategy.DefaultPortfolio(),
	}
	fam, err := FamilyByName("dag")
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range Platforms() {
		for _, preset := range fam.Presets {
			sim, err := spec.DAGSim(*preset.Graph)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, preset.Name, err)
			}
			for _, strat := range strats {
				var ref graph.Result
				for i, par := range []int{1, 4, 8} {
					res, err := graph.Tune(sim, strat, strategy.Options{
						Budget: 300, Seed: 7, Restarts: 3, Parallelism: par,
					})
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", spec.Name, preset.Name, strat.Name(), err)
					}
					if i == 0 {
						ref = res
						continue
					}
					if !reflect.DeepEqual(res, ref) {
						t.Errorf("%s/%s/%s: parallelism %d diverged:\n got  %+v\n want %+v",
							spec.Name, preset.Name, strat.Name(), par, res, ref)
					}
				}
			}
		}
	}
}

// TestDAGSpeedupOnGPULike pins the acceptance criterion: the optimal
// resnet-ish placement on the gpu-like platform is measurably faster
// than host-only.
func TestDAGSpeedupOnGPULike(t *testing.T) {
	sc, err := Lookup("gpu-like", "dag:resnet-ish")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sc.DAGSim()
	if err != nil {
		t.Fatal(err)
	}
	res, err := graph.Tune(sim, nil, strategy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.SpeedupVsHost(); s < 1.05 {
		t.Errorf("speedup over host-only %g, want >= 1.05", s)
	}
	if res.MakespanSec > res.RoundRobinSec+1e-12 {
		t.Errorf("optimum %g worse than round-robin %g", res.MakespanSec, res.RoundRobinSec)
	}
}
