package scenario

import (
	"strings"
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
	"hetopt/internal/space"
)

// TestDNAResolutionBitIdentical: the registry path for a genome name
// produces exactly the workload the legacy path produces, field for
// field — the contract that keeps every DNA-on-paper result
// bit-identical through the scenario layer.
func TestDNAResolutionBitIdentical(t *testing.T) {
	for _, g := range dna.Genomes() {
		want := offload.GenomeWorkload(g)
		for _, name := range []string{g.Name, "dna:" + g.Name, strings.ToUpper(g.Name)} {
			got, err := ResolveWorkload(name)
			if err != nil {
				t.Fatalf("ResolveWorkload(%q): %v", name, err)
			}
			if got != want {
				t.Fatalf("ResolveWorkload(%q) = %+v, want %+v", name, got, want)
			}
		}
	}
	w, err := ResolveWorkload("dna")
	if err != nil || w != offload.GenomeWorkload(dna.Human) {
		t.Fatalf("bare family name must select the default preset (human): %+v, %v", w, err)
	}
}

// TestPaperPlatformBitIdentical: the registered paper platform measures
// exactly like the legacy constructor.
func TestPaperPlatformBitIdentical(t *testing.T) {
	spec, err := PlatformByName("paper")
	if err != nil {
		t.Fatal(err)
	}
	legacy := offload.NewPlatform()
	viaSpec := spec.Platform()
	w := offload.GenomeWorkload(dna.Human)
	cfg := space.Config{
		HostThreads: 24, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 120, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 60,
	}
	for trial := 0; trial < 3; trial++ {
		a, err := legacy.MeasureFull(w, cfg, trial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := viaSpec.MeasureFull(w, cfg, trial)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("trial %d: registry platform diverged: %+v vs %+v", trial, a, b)
		}
	}
	schema, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if schema.Size() != space.PaperSchema().Size() {
		t.Fatalf("paper schema size %d, want %d", schema.Size(), space.PaperSchema().Size())
	}
}

// TestPaperTrainingPlanBitIdentical: the registry-derived plan for the
// DNA family on the paper platform equals core.PaperTrainingPlan, so
// lazily trained serving models stay bit-identical too.
func TestPaperTrainingPlanBitIdentical(t *testing.T) {
	spec, err := PlatformByName("paper")
	if err != nil {
		t.Fatal(err)
	}
	fam, err := FamilyByName("dna")
	if err != nil {
		t.Fatal(err)
	}
	got, want := spec.TrainingPlan(fam), core.PaperTrainingPlan()
	if len(got.Workloads) != len(want.Workloads) {
		t.Fatalf("workload count %d, want %d", len(got.Workloads), len(want.Workloads))
	}
	for i := range got.Workloads {
		if got.Workloads[i] != want.Workloads[i] {
			t.Fatalf("workload %d: %+v, want %+v", i, got.Workloads[i], want.Workloads[i])
		}
	}
	if len(got.Fractions) != len(want.Fractions) {
		t.Fatalf("fraction count %d, want %d", len(got.Fractions), len(want.Fractions))
	}
	for i := range got.Fractions {
		if got.Fractions[i] != want.Fractions[i] {
			t.Fatalf("fraction %d: %g, want %g", i, got.Fractions[i], want.Fractions[i])
		}
	}
	if got.HostExperiments() != want.HostExperiments() || got.DeviceExperiments() != want.DeviceExperiments() {
		t.Fatalf("experiment counts (%d,%d), want (%d,%d)",
			got.HostExperiments(), got.DeviceExperiments(), want.HostExperiments(), want.DeviceExperiments())
	}
}

// TestCatalogShape pins the acceptance floor: at least four families
// (three beyond dna) and at least three platforms (two beyond paper).
func TestCatalogShape(t *testing.T) {
	if n := len(Families()); n < 4 {
		t.Fatalf("catalog ships %d families, want >= 4", n)
	}
	if n := len(Platforms()); n < 3 {
		t.Fatalf("catalog ships %d platforms, want >= 3", n)
	}
	for _, want := range []string{"dna", "spmv", "stencil", "crypto"} {
		if _, err := FamilyByName(want); err != nil {
			t.Errorf("family %q missing: %v", want, err)
		}
	}
	for _, want := range []string{"paper", "gpu-like", "edge"} {
		if _, err := PlatformByName(want); err != nil {
			t.Errorf("platform %q missing: %v", want, err)
		}
	}
}

// TestWorkloadNamesRoundTrip: every name the registry advertises
// resolves, and canonicalization is idempotent.
func TestWorkloadNamesRoundTrip(t *testing.T) {
	for _, name := range WorkloadNames() {
		w, err := ResolveWorkload(name)
		if err != nil {
			t.Errorf("advertised workload %q does not resolve: %v", name, err)
			continue
		}
		if w.SizeMB <= 0 {
			t.Errorf("workload %q resolved to empty size: %+v", name, w)
		}
		canon, err := CanonicalWorkloadName(name)
		if err != nil {
			t.Errorf("canonicalizing %q: %v", name, err)
			continue
		}
		again, err := CanonicalWorkloadName(canon)
		if err != nil || again != canon {
			t.Errorf("canonical form %q not stable: %q, %v", canon, again, err)
		}
		cw, err := ResolveWorkload(canon)
		if err != nil || cw != w {
			t.Errorf("canonical %q resolves differently: %+v vs %+v (%v)", canon, cw, w, err)
		}
	}
	for _, name := range PlatformNames() {
		if _, err := PlatformByName(name); err != nil {
			t.Errorf("advertised platform %q does not resolve: %v", name, err)
		}
	}
}

// TestUnknownNameErrorsListRegistry: unknown-name errors enumerate the
// registered names, and the lists cannot go stale because they are
// built from the registries themselves.
func TestUnknownNameErrorsListRegistry(t *testing.T) {
	_, err := FamilyByName("nope-such-family")
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	for _, f := range Families() {
		if !strings.Contains(err.Error(), strings.ToLower(f.Name)) {
			t.Errorf("family error %q does not list %q", err, f.Name)
		}
	}
	_, err = PlatformByName("nope-such-platform")
	if err == nil {
		t.Fatal("unknown platform accepted")
	}
	for _, p := range Platforms() {
		if !strings.Contains(err.Error(), strings.ToLower(p.Name)) {
			t.Errorf("platform error %q does not list %q", err, p.Name)
		}
	}
	_, err = ResolveWorkload("totally-unknown")
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, n := range WorkloadNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("workload error does not list %q:\n%s", n, err)
		}
	}
	// Genome errors list the genome registry (satellite: actionable
	// unknown-name errors everywhere).
	_, err = dna.GenomeByName("plankton")
	if err == nil {
		t.Fatal("unknown genome accepted")
	}
	for _, n := range dna.GenomeNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("genome error %q does not list %q", err, n)
		}
	}
}

// TestDidYouMeanSuggestion: a near-miss gets a concrete suggestion.
func TestDidYouMeanSuggestion(t *testing.T) {
	_, err := ResolveWorkload("spnv")
	if err == nil || !strings.Contains(err.Error(), `did you mean "spmv"`) {
		t.Fatalf("no did-you-mean for spnv: %v", err)
	}
	_, err = PlatformByName("papper")
	if err == nil || !strings.Contains(err.Error(), `did you mean "paper"`) {
		t.Fatalf("no did-you-mean for papper: %v", err)
	}
}

// TestRegistryRegistration exercises custom registration and the
// under-30-lines extension path documented in DESIGN.md.
func TestRegistryRegistration(t *testing.T) {
	r := NewRegistry()
	fam := Family{
		Name:         "blur",
		Description:  "image blur",
		Complexity:   0.7,
		BytesPerByte: 3,
		Presets:      []SizePreset{{Name: "hd", SizeMB: 128}},
	}
	if err := r.RegisterFamily(fam); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily(fam); err == nil {
		t.Fatal("duplicate family accepted")
	}
	if err := r.RegisterFamily(Family{Name: "bad"}); err == nil {
		t.Fatal("family without presets accepted")
	}
	if err := r.RegisterFamily(Family{Name: "with space", Presets: fam.Presets}); err == nil {
		t.Fatal("family name with space accepted")
	}
	spec := PaperPlatform()
	spec.Name = "lab"
	if err := r.RegisterPlatform(spec); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterPlatform(spec); err == nil {
		t.Fatal("duplicate platform accepted")
	}
	w, err := r.ResolveWorkload("blur:hd")
	if err != nil || w.SizeMB != 128 || w.Complexity != 0.7 || w.BytesPerByte != 3 {
		t.Fatalf("custom workload resolved wrong: %+v, %v", w, err)
	}
	if _, err := r.Platform("lab"); err != nil {
		t.Fatal(err)
	}
}

// TestAmbiguousPresetRejected: a bare preset name shared by two
// families must name both qualified forms instead of guessing.
func TestAmbiguousPresetRejected(t *testing.T) {
	r := NewRegistry()
	p := []SizePreset{{Name: "big", SizeMB: 10}}
	if err := r.RegisterFamily(Family{Name: "a", Presets: p}); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterFamily(Family{Name: "b", Presets: p}); err != nil {
		t.Fatal(err)
	}
	_, err := r.ResolveWorkload("big")
	if err == nil || !strings.Contains(err.Error(), "a:big") || !strings.Contains(err.Error(), "b:big") {
		t.Fatalf("ambiguous preset not reported with qualified names: %v", err)
	}
}

// TestNewModelParameterized: perf.NewModel wired from a spec honors the
// spec's calibration rather than any baked-in default.
func TestNewModelParameterized(t *testing.T) {
	spec, err := PlatformByName("gpu-like")
	if err != nil {
		t.Fatal(err)
	}
	m := spec.Model()
	if m.Cal.OffloadLatencySec == perf.DefaultCalibration().OffloadLatencySec {
		t.Fatal("gpu-like model carries the paper offload latency; NewModel not parameterized")
	}
	if m.Host.Name == machine.XeonE5Host().Name {
		t.Fatal("gpu-like model carries the paper host")
	}
}
