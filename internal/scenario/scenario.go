// Package scenario is the catalog layer of the tuning stack: a registry
// of named workload families and platform specifications that every
// optimizer, objective, strategy, CLI and the serving layer resolve
// scenarios from. The paper tunes exactly one application (Aho-Corasick
// DNA matching) on exactly one platform (2x Xeon E5-2695v2 + Xeon Phi
// 7120P), but its combinatorial-optimization machinery is
// workload-agnostic; this package makes "which workload, on which
// machine" a first-class, pluggable input.
//
// A workload family contributes the perf.Traits-style parameters that
// shape execution time — complexity (compute per byte), bytes-per-byte
// memory traffic (arithmetic intensity), and per-side rate factors (how
// well the kernel maps onto each processor) — plus named size presets.
// A platform spec contributes the machine topology (host and device
// processor descriptions), the performance-model calibration including
// the power constants, and the configuration-space value sets.
//
// The paper's scenario — the four DNA genomes on the paper platform —
// is registered as the default, and resolving it reproduces the
// pre-scenario-layer behaviour bit-identically. Adding a new scenario
// is a single Register call; see DESIGN.md, "The scenario layer".
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"hetopt/internal/core"
	"hetopt/internal/graph"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
	"hetopt/internal/space"
)

// Class is the workload-class axis of a family: how its work divides
// across the two processors.
type Class string

const (
	// ClassDivisible is the paper's shape — one kernel split by a
	// fraction. The empty Class means divisible, so every family
	// registered before the class axis existed behaves unchanged.
	ClassDivisible Class = "divisible"
	// ClassDAG is a task graph placed node-by-node across host and
	// device (internal/graph).
	ClassDAG Class = "dag"
)

// SizePreset is one named input size of a workload family.
type SizePreset struct {
	// Name addresses the preset ("small", "human", ...).
	Name string
	// SizeMB is the input size in megabytes. For DAG presets it is the
	// graph's total node work, so size-based reporting stays uniform
	// across classes.
	SizeMB float64
	// Complexity overrides the family default when positive (the DNA
	// genomes carry per-organism matching-cost factors).
	Complexity float64
	// WorkloadName overrides the resolved workload's name when set. The
	// DNA presets keep their organism names ("human", not "dna") so the
	// measurement-noise keys — and therefore every result — stay
	// bit-identical to the pre-scenario-layer code.
	WorkloadName string
	// Graph is the task graph of a ClassDAG preset; divisible presets
	// leave it nil.
	Graph *graph.Workload

	// qualified is the canonical lowercase "family:preset" name,
	// precomputed at registration so hot callers (the serving layer's
	// request canonicalization) get it without allocating a concat.
	qualified string
}

// Qualified returns the canonical lowercase "family:preset" name of the
// preset within fam. Presets obtained from a registry carry it
// precomputed (allocation-free); hand-built presets fall back to the
// concatenation.
func (p SizePreset) Qualified(fam Family) string {
	if p.qualified != "" {
		return p.qualified
	}
	return strings.ToLower(fam.Name) + ":" + strings.ToLower(p.Name)
}

// Family is a named workload family: the traits shared by every size of
// one kind of computation.
type Family struct {
	// Name addresses the family ("dna", "spmv", ...).
	Name string
	// Description is a one-line summary for catalogs and /v1/scenarios.
	Description string
	// Complexity is the compute cost per input byte relative to the DNA
	// reference (zero means 1.0).
	Complexity float64
	// BytesPerByte is the memory traffic per input byte (zero keeps the
	// platform calibration's default of 1.0). High values make the
	// workload bandwidth-bound: throughput hits the roofline ceiling.
	BytesPerByte float64
	// HostRateFactor and DeviceRateFactor scale the per-core streaming
	// rates relative to the DNA reference (zero means 1.0), modeling how
	// well the kernel maps onto each side's microarchitecture.
	HostRateFactor, DeviceRateFactor float64
	// Class selects the workload class; empty means ClassDivisible.
	Class Class
	// Presets are the named sizes; the first one is the family default.
	Presets []SizePreset
}

// IsDAG reports whether the family's workloads are task graphs.
func (f Family) IsDAG() bool { return f.Class == ClassDAG }

// Validate checks the family's structural sanity.
func (f Family) Validate() error {
	if strings.TrimSpace(f.Name) == "" {
		return fmt.Errorf("scenario: workload family needs a name")
	}
	if strings.ContainsAny(f.Name, ": \t") {
		return fmt.Errorf("scenario: family name %q must not contain colons or spaces", f.Name)
	}
	if f.Class != "" && f.Class != ClassDivisible && f.Class != ClassDAG {
		return fmt.Errorf("scenario: family %q has unknown class %q", f.Name, f.Class)
	}
	if len(f.Presets) == 0 {
		return fmt.Errorf("scenario: family %q needs at least one size preset", f.Name)
	}
	seen := map[string]bool{}
	for _, p := range f.Presets {
		if strings.TrimSpace(p.Name) == "" {
			return fmt.Errorf("scenario: family %q has an unnamed preset", f.Name)
		}
		if p.SizeMB <= 0 {
			return fmt.Errorf("scenario: family %q preset %q size %g must be positive", f.Name, p.Name, p.SizeMB)
		}
		if f.IsDAG() {
			if p.Graph == nil {
				return fmt.Errorf("scenario: DAG family %q preset %q has no graph", f.Name, p.Name)
			}
			if err := p.Graph.Validate(); err != nil {
				return fmt.Errorf("scenario: family %q preset %q: %w", f.Name, p.Name, err)
			}
		} else if p.Graph != nil {
			return fmt.Errorf("scenario: divisible family %q preset %q carries a graph", f.Name, p.Name)
		}
		key := strings.ToLower(p.Name)
		if seen[key] {
			return fmt.Errorf("scenario: family %q has duplicate preset %q", f.Name, p.Name)
		}
		seen[key] = true
	}
	return nil
}

// workload materializes one preset of the family. DAG presets yield a
// carrier workload with the graph's traits and total work, so
// class-agnostic consumers (catalog listings, size reporting) see a
// uniform shape; the runnable object for a DAG preset is the graph
// itself (Family.Graph).
func (f Family) workload(p SizePreset) offload.Workload {
	if f.IsDAG() && p.Graph != nil {
		name := p.WorkloadName
		if name == "" {
			name = p.Graph.Name
		}
		return offload.Workload{
			Name:             name,
			SizeMB:           p.SizeMB,
			Complexity:       p.Graph.Complexity,
			BytesPerByte:     p.Graph.BytesPerByte,
			HostRateFactor:   p.Graph.HostRateFactor,
			DeviceRateFactor: p.Graph.DeviceRateFactor,
		}
	}
	name := p.WorkloadName
	if name == "" {
		name = f.Name
	}
	cx := p.Complexity
	if cx <= 0 {
		cx = f.Complexity
	}
	return offload.Workload{
		Name:             name,
		SizeMB:           p.SizeMB,
		Complexity:       cx,
		BytesPerByte:     f.BytesPerByte,
		HostRateFactor:   f.HostRateFactor,
		DeviceRateFactor: f.DeviceRateFactor,
	}
}

// Preset looks up a preset by case-insensitive name; the empty name
// selects the family default (the first preset).
func (f Family) Preset(name string) (SizePreset, error) {
	if strings.TrimSpace(name) == "" {
		return f.Presets[0], nil
	}
	for _, p := range f.Presets {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	names := make([]string, len(f.Presets))
	for i, p := range f.Presets {
		names[i] = p.Name
	}
	return SizePreset{}, fmt.Errorf("scenario: family %q has no preset %q%s", f.Name, name, suggest(name, names))
}

// Workload resolves a preset name (empty = default) into the runnable
// workload.
func (f Family) Workload(preset string) (offload.Workload, error) {
	p, err := f.Preset(preset)
	if err != nil {
		return offload.Workload{}, err
	}
	return f.workload(p), nil
}

// DefaultWorkload returns the family's default preset as a workload.
func (f Family) DefaultWorkload() offload.Workload {
	return f.workload(f.Presets[0])
}

// Graph resolves a preset name (empty = default) into the family's
// task graph; it fails for divisible families.
func (f Family) Graph(preset string) (graph.Workload, error) {
	if !f.IsDAG() {
		return graph.Workload{}, fmt.Errorf("scenario: family %q is not a DAG family", f.Name)
	}
	p, err := f.Preset(preset)
	if err != nil {
		return graph.Workload{}, err
	}
	return *p.Graph, nil
}

// PlatformSpec is a named heterogeneous platform: topology, calibration
// (timing and power constants) and the configuration space.
type PlatformSpec struct {
	// Name addresses the platform ("paper", "gpu-like", ...).
	Name string
	// Description is a one-line summary for catalogs and /v1/scenarios.
	Description string
	// Host and Device construct the processor descriptions (fresh values
	// per call, so callers can mutate their copies safely).
	Host, Device func() *machine.Processor
	// Cal constructs the performance-model calibration, including the
	// power constants of the energy objective.
	Cal func() perf.Calibration
	// Space lists the configuration-space value sets (thread counts,
	// affinities, fraction grid) tuned over on this platform.
	Space space.SchemaSpec
	// LinkBandwidthMBs and LinkLatencySec describe the host-device
	// interconnect that prices DAG edge transfers. A zero bandwidth
	// falls back to the calibration's PCIe constants (see Link), so
	// platforms registered before the graph layer keep working.
	LinkBandwidthMBs float64
	LinkLatencySec   float64
}

// Link returns the platform's transfer link for the graph simulator.
// When LinkBandwidthMBs is unset the calibration's offload constants
// stand in: PCIe bandwidth, and the full offload latency as the
// per-transfer cost — conservative, since a per-edge transfer pays at
// most one launch/sync round-trip.
func (p PlatformSpec) Link() graph.Link {
	if p.LinkBandwidthMBs > 0 {
		return graph.Link{BandwidthMBs: p.LinkBandwidthMBs, LatencySec: p.LinkLatencySec}
	}
	cal := p.Cal()
	return graph.Link{BandwidthMBs: cal.PCIeRateMBs, LatencySec: cal.OffloadLatencySec}
}

// bestSideConfig picks the throughput-maximizing (threads, affinity)
// pair for one side of the platform under a workload's traits, scanning
// the spec's value sets in order (ties keep the earliest pair, so the
// choice is deterministic). Each side of a DAG placement runs its nodes
// at this configuration.
func bestSideConfig(threadValues []int, affinities []machine.Affinity,
	rate func(threads int, aff machine.Affinity) (float64, error)) (graph.SideConfig, error) {
	best := graph.SideConfig{}
	bestRate := -1.0
	for _, threads := range threadValues {
		for _, aff := range affinities {
			r, err := rate(threads, aff)
			if err != nil {
				return graph.SideConfig{}, err
			}
			if r > bestRate {
				best, bestRate = graph.SideConfig{Threads: threads, Affinity: aff}, r
			}
		}
	}
	if bestRate <= 0 {
		return graph.SideConfig{}, fmt.Errorf("scenario: no usable side configuration")
	}
	return best, nil
}

// DAGSim builds the list-scheduling simulator for a graph workload on
// this platform: node execution is priced by the roofline model at each
// side's best configuration from the platform's value sets, edge
// transfers by the platform link.
func (p PlatformSpec) DAGSim(w graph.Workload) (*graph.Sim, error) {
	m := p.Model()
	traits := w.Traits()
	host, err := bestSideConfig(p.Space.HostThreads, p.Space.HostAffinities,
		func(threads int, aff machine.Affinity) (float64, error) {
			return m.HostThroughputFor(threads, aff, traits)
		})
	if err != nil {
		return nil, fmt.Errorf("scenario: platform %q host: %w", p.Name, err)
	}
	device, err := bestSideConfig(p.Space.DeviceThreads, p.Space.DeviceAffinities,
		func(threads int, aff machine.Affinity) (float64, error) {
			return m.DeviceThroughputFor(threads, aff, traits)
		})
	if err != nil {
		return nil, fmt.Errorf("scenario: platform %q device: %w", p.Name, err)
	}
	return graph.NewSim(w, m, host, device, p.Link())
}

// Validate checks the spec's structural sanity.
func (p PlatformSpec) Validate() error {
	if strings.TrimSpace(p.Name) == "" {
		return fmt.Errorf("scenario: platform spec needs a name")
	}
	if strings.ContainsAny(p.Name, ": \t") {
		return fmt.Errorf("scenario: platform name %q must not contain colons or spaces", p.Name)
	}
	if p.Host == nil || p.Device == nil || p.Cal == nil {
		return fmt.Errorf("scenario: platform %q needs host, device and calibration constructors", p.Name)
	}
	if err := p.Host().Validate(); err != nil {
		return fmt.Errorf("scenario: platform %q host: %w", p.Name, err)
	}
	if err := p.Device().Validate(); err != nil {
		return fmt.Errorf("scenario: platform %q device: %w", p.Name, err)
	}
	if _, err := p.Schema(); err != nil {
		return fmt.Errorf("scenario: platform %q: %w", p.Name, err)
	}
	return nil
}

// Model builds the platform's performance model.
func (p PlatformSpec) Model() *perf.Model {
	return perf.NewModel(p.Host(), p.Device(), p.Cal())
}

// Platform builds the measurement substrate for the spec.
func (p PlatformSpec) Platform() *offload.Platform {
	return offload.NewPlatformWithModel(p.Model())
}

// Schema builds the platform's configuration space.
func (p PlatformSpec) Schema() (*space.Schema, error) {
	return space.NewSchema(p.Space)
}

// TrainingPlan derives the model-training grid for one workload family
// on this platform: every preset of the family, the paper's fraction
// grid (2.5%-100% in 2.5% steps), and the platform's thread/affinity
// value sets. For the DNA family on the paper platform this reproduces
// core.PaperTrainingPlan exactly, keeping the trained models — and the
// EML/SAML results — bit-identical to the pre-scenario-layer code.
func (p PlatformSpec) TrainingPlan(f Family) core.TrainingPlan {
	fractions := make([]float64, 0, 40)
	for fr := 2.5; fr <= 100; fr += 2.5 {
		fractions = append(fractions, fr)
	}
	workloads := make([]offload.Workload, len(f.Presets))
	for i, preset := range f.Presets {
		workloads[i] = f.workload(preset)
	}
	return core.TrainingPlan{
		Workloads:        workloads,
		Fractions:        fractions,
		HostThreads:      append([]int(nil), p.Space.HostThreads...),
		HostAffinities:   append([]machine.Affinity(nil), p.Space.HostAffinities...),
		DeviceThreads:    append([]int(nil), p.Space.DeviceThreads...),
		DeviceAffinities: append([]machine.Affinity(nil), p.Space.DeviceAffinities...),
	}
}

// Registry holds named workload families and platform specs. The zero
// value is empty and usable; Builtin returns one with the shipped
// catalog. A Registry is safe for concurrent use.
type Registry struct {
	mu        sync.RWMutex
	families  map[string]Family
	famOrder  []string
	platforms map[string]PlatformSpec
	platOrder []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterFamily adds a workload family; names are case-insensitively
// unique.
func (r *Registry) RegisterFamily(f Family) error {
	if err := f.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(f.Name)
	if r.families == nil {
		r.families = map[string]Family{}
	}
	if _, ok := r.families[key]; ok {
		return fmt.Errorf("scenario: workload family %q already registered", f.Name)
	}
	// Copy the preset slice (the caller keeps its own) and precompute
	// each preset's canonical qualified name.
	presets := make([]SizePreset, len(f.Presets))
	copy(presets, f.Presets)
	for i := range presets {
		presets[i].qualified = key + ":" + strings.ToLower(presets[i].Name)
	}
	f.Presets = presets
	r.families[key] = f
	r.famOrder = append(r.famOrder, key)
	return nil
}

// RegisterPlatform adds a platform spec; names are case-insensitively
// unique.
func (r *Registry) RegisterPlatform(p PlatformSpec) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(p.Name)
	if r.platforms == nil {
		r.platforms = map[string]PlatformSpec{}
	}
	if _, ok := r.platforms[key]; ok {
		return fmt.Errorf("scenario: platform %q already registered", p.Name)
	}
	r.platforms[key] = p
	r.platOrder = append(r.platOrder, key)
	return nil
}

// Families lists the registered workload families in registration order.
func (r *Registry) Families() []Family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Family, 0, len(r.famOrder))
	for _, k := range r.famOrder {
		out = append(out, r.families[k])
	}
	return out
}

// Platforms lists the registered platform specs in registration order.
func (r *Registry) Platforms() []PlatformSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]PlatformSpec, 0, len(r.platOrder))
	for _, k := range r.platOrder {
		out = append(out, r.platforms[k])
	}
	return out
}

// Family looks a workload family up by case-insensitive name. Unknown
// names fail with the full list of valid names (did-you-mean style).
func (r *Registry) Family(name string) (Family, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if f, ok := r.families[strings.ToLower(strings.TrimSpace(name))]; ok {
		return f, nil
	}
	return Family{}, fmt.Errorf("scenario: unknown workload family %q%s", name, suggest(name, r.famOrder))
}

// Platform looks a platform spec up by case-insensitive name. Unknown
// names fail with the full list of valid names.
func (r *Registry) Platform(name string) (PlatformSpec, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if p, ok := r.platforms[strings.ToLower(strings.TrimSpace(name))]; ok {
		return p, nil
	}
	return PlatformSpec{}, fmt.Errorf("scenario: unknown platform %q%s", name, suggest(name, r.platOrder))
}

// Resolve parses a workload name — "family", "family:preset", or a bare
// preset name that is unique across the registry (the genome names
// "human", "mouse", "cat", "dog" resolve this way) — into its family
// and preset. Unknown names fail with every resolvable name.
func (r *Registry) Resolve(name string) (Family, SizePreset, error) {
	q := strings.ToLower(strings.TrimSpace(name))
	if q == "" {
		return Family{}, SizePreset{}, fmt.Errorf("scenario: empty workload name (valid: %s)", strings.Join(r.WorkloadNames(), ", "))
	}
	if fam, preset, ok := strings.Cut(q, ":"); ok {
		f, err := r.Family(fam)
		if err != nil {
			return Family{}, SizePreset{}, err
		}
		p, err := f.Preset(preset)
		if err != nil {
			return Family{}, SizePreset{}, err
		}
		return f, p, nil
	}
	if f, err := r.Family(q); err == nil {
		return f, f.Presets[0], nil
	}
	// Bare preset alias: unique across every family.
	type hit struct {
		f Family
		p SizePreset
	}
	var hits []hit
	for _, f := range r.Families() {
		for _, p := range f.Presets {
			if strings.EqualFold(p.Name, q) {
				hits = append(hits, hit{f, p})
			}
		}
	}
	switch len(hits) {
	case 1:
		return hits[0].f, hits[0].p, nil
	case 0:
		return Family{}, SizePreset{}, fmt.Errorf("scenario: unknown workload %q%s", name, suggest(name, r.WorkloadNames()))
	default:
		quals := make([]string, len(hits))
		for i, h := range hits {
			quals[i] = h.f.Name + ":" + h.p.Name
		}
		return Family{}, SizePreset{}, fmt.Errorf("scenario: workload %q is ambiguous (use one of %s)", name, strings.Join(quals, ", "))
	}
}

// Scenario is a fully resolved (platform, workload) pair: everything a
// tuner, report suite or serving job needs to run.
type Scenario struct {
	Platform PlatformSpec
	Family   Family
	Preset   SizePreset
	Workload offload.Workload
	Schema   *space.Schema
	// Graph is the task graph of a DAG scenario; nil for divisible
	// scenarios.
	Graph *graph.Workload
}

// IsDAG reports whether the scenario's workload is a task graph.
func (s Scenario) IsDAG() bool { return s.Family.IsDAG() }

// TrainingPlan derives the scenario's model-training grid.
func (s Scenario) TrainingPlan() core.TrainingPlan {
	return s.Platform.TrainingPlan(s.Family)
}

// DAGSim builds the scenario's list-scheduling simulator; it fails for
// divisible scenarios.
func (s Scenario) DAGSim() (*graph.Sim, error) {
	if s.Graph == nil {
		return nil, fmt.Errorf("scenario: %s is not a DAG scenario", s.Workload.Name)
	}
	return s.Platform.DAGSim(*s.Graph)
}

// Lookup resolves a platform name and a workload name into a runnable
// scenario — the single resolution path shared by the CLIs, the
// experiment suite and the serving layer.
func (r *Registry) Lookup(platformName, workloadName string) (Scenario, error) {
	spec, err := r.Platform(platformName)
	if err != nil {
		return Scenario{}, err
	}
	fam, preset, err := r.Resolve(workloadName)
	if err != nil {
		return Scenario{}, err
	}
	schema, err := spec.Schema()
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Platform: spec,
		Family:   fam,
		Preset:   preset,
		Workload: fam.workload(preset),
		Schema:   schema,
		Graph:    preset.Graph,
	}, nil
}

// ResolveWorkload resolves a workload name into the runnable workload.
func (r *Registry) ResolveWorkload(name string) (offload.Workload, error) {
	f, p, err := r.Resolve(name)
	if err != nil {
		return offload.Workload{}, err
	}
	return f.workload(p), nil
}

// CanonicalWorkloadName resolves a workload name into its canonical
// lowercase "family:preset" form — the form the serving layer keys its
// warm-start store with.
func (r *Registry) CanonicalWorkloadName(name string) (string, error) {
	f, p, err := r.Resolve(name)
	if err != nil {
		return "", err
	}
	return p.Qualified(f), nil
}

// WorkloadNames lists every resolvable workload name: each family, each
// qualified "family:preset", and each bare preset name that is unique
// across the registry, sorted.
func (r *Registry) WorkloadNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counts := map[string]int{}
	for _, k := range r.famOrder {
		for _, p := range r.families[k].Presets {
			counts[strings.ToLower(p.Name)]++
		}
	}
	var names []string
	for _, k := range r.famOrder {
		f := r.families[k]
		names = append(names, strings.ToLower(f.Name))
		for _, p := range f.Presets {
			names = append(names, strings.ToLower(f.Name)+":"+strings.ToLower(p.Name))
			bare := strings.ToLower(p.Name)
			if counts[bare] == 1 && r.families[bare].Name == "" {
				names = append(names, bare)
			}
		}
	}
	sort.Strings(names)
	return names
}

// PlatformNames lists the registered platform names, sorted.
func (r *Registry) PlatformNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := append([]string(nil), r.platOrder...)
	sort.Strings(names)
	return names
}

// suggest renders the did-you-mean tail of an unknown-name error: the
// closest valid name (when one is close enough) plus the full valid
// list, so the error is actionable without consulting documentation.
func suggest(got string, valid []string) string {
	if len(valid) == 0 {
		return " (nothing registered)"
	}
	sorted := append([]string(nil), valid...)
	sort.Strings(sorted)
	list := strings.Join(sorted, ", ")
	got = strings.ToLower(strings.TrimSpace(got))
	best, bestDist := "", 1<<30
	for _, v := range sorted {
		d := editDistance(got, strings.ToLower(v))
		if d < bestDist {
			best, bestDist = v, d
		}
	}
	// A suggestion is only helpful when the typo is small relative to
	// the name.
	if best != "" && bestDist <= 1+len(best)/3 {
		return fmt.Sprintf(" (did you mean %q? valid: %s)", best, list)
	}
	return fmt.Sprintf(" (valid: %s)", list)
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
