package scenario

import (
	"hetopt/internal/dna"
	"hetopt/internal/graph"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
	"hetopt/internal/space"
)

// This file ships the built-in catalog: the paper's scenario (the four
// DNA genomes on the 2x Xeon E5 + Xeon Phi platform) as the default,
// three further workload families spanning the arithmetic-intensity
// spectrum, and two further platform specs. The families are calibrated
// so the optimizer genuinely chooses different distributions per
// scenario: bandwidth-bound irregular kernels (spmv) shift work toward
// the host, vector-friendly streaming kernels (stencil) toward the
// device, and compute-bound scalar kernels (crypto) predominantly onto
// the host — the cross-scenario table in internal/experiments renders
// the effect.

// DNAFamily returns the paper's workload family: the four evaluation
// genomes as size presets. Preset workload names keep the organism
// names, so resolving "human" through the registry is bit-identical to
// offload.GenomeWorkload(dna.Human).
func DNAFamily() Family {
	gs := dna.Genomes()
	presets := make([]SizePreset, len(gs))
	for i, g := range gs {
		presets[i] = SizePreset{
			Name:         g.Name,
			SizeMB:       g.SizeMB,
			Complexity:   g.Complexity,
			WorkloadName: g.Name,
		}
	}
	return Family{
		Name:        "dna",
		Description: "Aho-Corasick DNA motif matching over GenBank genomes (the paper's workload)",
		Complexity:  1,
		Presets:     presets,
	}
}

// SpMVFamily returns a sparse matrix-vector multiply family: very low
// arithmetic intensity (index loads and vector gathers move ~10 bytes
// per input byte) and irregular access that throughput-oriented device
// cores handle poorly. The optimizer keeps most of the work on the
// host's large caches.
func SpMVFamily() Family {
	return Family{
		Name:             "spmv",
		Description:      "sparse matrix-vector multiply (CSR): bandwidth-bound, irregular gathers",
		Complexity:       0.6,
		BytesPerByte:     10,
		HostRateFactor:   1.15,
		DeviceRateFactor: 0.5,
		Presets: []SizePreset{
			{Name: "medium", SizeMB: 2048},
			{Name: "small", SizeMB: 512},
			{Name: "large", SizeMB: 8192},
		},
	}
}

// StencilFamily returns a structured-grid stencil family: regular,
// vector-friendly streaming that wide-SIMD devices execute far above
// the DNA reference rate, still bandwidth-hungry (each cell touches its
// neighborhood). The optimizer shifts work toward the device wherever
// the device's vector units outrun the host — on the edge platform
// nearly everything moves across.
func StencilFamily() Family {
	return Family{
		Name:             "stencil",
		Description:      "structured-grid stencil sweep: bandwidth-bound, vector-friendly streaming",
		Complexity:       0.8,
		BytesPerByte:     4,
		HostRateFactor:   0.9,
		DeviceRateFactor: 2.2,
		Presets: []SizePreset{
			{Name: "medium", SizeMB: 1536},
			{Name: "small", SizeMB: 384},
			{Name: "large", SizeMB: 6144},
		},
	}
}

// CryptoFamily returns a compute-bound kernel family: heavy scalar
// arithmetic per byte (long dependency chains, little memory traffic)
// that simple in-order device cores execute at a fraction of the
// reference rate. The optimizer keeps the bulk of the work on the host
// on every platform.
func CryptoFamily() Family {
	return Family{
		Name:             "crypto",
		Description:      "password-hashing style kernel: compute-bound scalar chains, negligible memory traffic",
		Complexity:       4,
		BytesPerByte:     0.2,
		HostRateFactor:   1.0,
		DeviceRateFactor: 0.3,
		Presets: []SizePreset{
			{Name: "medium", SizeMB: 1024},
			{Name: "small", SizeMB: 256},
			{Name: "large", SizeMB: 4096},
		},
	}
}

// DAGFamily returns the task-graph workload family: the shipped graph
// presets (internal/graph) exposed through the registry, so
// "dag:resnet-ish" resolves with the same canonical-name and
// did-you-mean machinery as "dna:human". Preset sizes are the graphs'
// total node work, keeping size-based listings uniform across classes.
func DAGFamily() Family {
	gs := graph.Presets()
	presets := make([]SizePreset, len(gs))
	for i := range gs {
		g := gs[i]
		presets[i] = SizePreset{
			Name:   g.Name,
			SizeMB: g.TotalWorkMB(),
			Graph:  &g,
		}
	}
	return Family{
		Name:        "dag",
		Description: "task graphs placed node-by-node across host and device (list-scheduling simulator)",
		Class:       ClassDAG,
		Presets:     presets,
	}
}

// PaperPlatform returns the paper's platform spec: the 2x Xeon E5-2695v2
// host with the Xeon Phi 7120P and the default calibration over the
// paper's 19,926-configuration space. Resolving it is bit-identical to
// offload.NewPlatform() + space.PaperSchema().
func PaperPlatform() PlatformSpec {
	return PlatformSpec{
		Name:        "paper",
		Description: "2x Intel Xeon E5-2695v2 + Intel Xeon Phi 7120P (the paper's testbed)",
		Host:        machine.XeonE5Host,
		Device:      machine.XeonPhi7120P,
		Cal:         perf.DefaultCalibration,
		Space:       space.PaperSpec(),
		// PCIe gen2 x16 to the Phi; a per-transfer DMA setup round-trip
		// is milliseconds-scale, far below the full offload engagement
		// cost (which pays runtime init the graph layer amortizes).
		LinkBandwidthMBs: 6500,
		LinkLatencySec:   0.0025,
	}
}

// gpuLikeHost is a modern 16-core single-socket server host.
func gpuLikeHost() *machine.Processor {
	return &machine.Processor{
		Name:            "16-core server CPU",
		Sockets:         1,
		CoresPerSocket:  16,
		ThreadsPerCore:  2,
		BaseClockGHz:    2.9,
		MaxClockGHz:     4.0,
		CacheMB:         40,
		MemBandwidthGBs: 90,
		MemoryGB:        256,
		VectorBits:      512,
		Affinities:      []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact},
	}
}

// gpuLikeDevice is a discrete GPU-like accelerator: many simple cores,
// very high aggregate throughput and memory bandwidth.
func gpuLikeDevice() *machine.Processor {
	return &machine.Processor{
		Name:            "GPU-like accelerator",
		Sockets:         1,
		CoresPerSocket:  128, // compute units
		ThreadsPerCore:  16,  // resident warps per unit
		BaseClockGHz:    1.4,
		MaxClockGHz:     1.8,
		CacheMB:         48,
		MemBandwidthGBs: 900,
		MemoryGB:        48,
		VectorBits:      1024,
		Affinities:      []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact},
	}
}

// GPULikePlatform returns a platform spec for a GPU-class accelerator:
// an order of magnitude more device throughput than the Phi, but
// costlier engagement — higher launch latency, a larger non-overlapped
// transfer residual, and a card that burns real power the moment it is
// engaged. Host-only stays attractive for small inputs and poorly
// mapping kernels; everything else shifts device-heavy.
func GPULikePlatform() PlatformSpec {
	return PlatformSpec{
		Name:        "gpu-like",
		Description: "16-core server CPU + GPU-like accelerator (high throughput, costly engagement)",
		Host:        gpuLikeHost,
		Device:      gpuLikeDevice,
		Cal: func() perf.Calibration {
			return perf.Calibration{
				HostCoreRateMBs:    340,
				HostSMTGain:        []float64{1.0, 1.25},
				HostCoreScalingExp: 0.95,
				HostSetupSec:       0.03,
				HostThreadSpawnSec: 0.0002,
				HostCompactBonus:   1.02,
				HostNonePenalty:    0.97,

				DeviceCoreRateMBs:    28,
				DeviceSMTGain:        []float64{1.0, 1.9, 2.7, 3.3, 3.8, 4.1, 4.3, 4.4},
				DeviceCoreScalingExp: 0.99,
				DeviceSetupSec:       0.01,
				DeviceThreadSpawnSec: 0.000002,
				DeviceBalancedBonus:  1.04,
				DeviceCompactBonus:   1.0,

				OffloadLatencySec: 0.35,
				PCIeRateMBs:       12000,
				TransferResidual:  0.08,

				BandwidthEfficiency: 0.85,
				BytesPerByte:        1.0,

				OversubscriptionDecay: 0.995,

				NoiseStdHost:    0.025,
				NoiseStdDevice:  0.030,
				NoiseNoneFactor: 1.4,
				NoiseSeed:       0xC2B2AE3D27D4EB4F,

				HostIdleW:           65,
				HostCoreActiveW:     5.5,
				HostThreadActiveW:   0.4,
				DeviceIdleW:         80,
				DeviceCoreActiveW:   1.9,
				DeviceThreadActiveW: 0.02,
				HostNonePowerFactor: 1.05,

				NoiseStdHostPower:   0.015,
				NoiseStdDevicePower: 0.015,
			}
		},
		Space: space.SchemaSpec{
			HostThreads:      []int{2, 4, 8, 16, 24, 32},
			HostAffinities:   []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact},
			DeviceThreads:    []int{128, 256, 512, 1024, 2048},
			DeviceAffinities: []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact},
			Fractions:        paperFractions(),
		},
		// PCIe gen4 x16 with resident kernels: per-transfer cost is a
		// launch/sync round-trip, not the full 0.35 s engagement.
		LinkBandwidthMBs: 12000,
		LinkLatencySec:   0.0015,
	}
}

// edgeHost is a small embedded quad-core.
func edgeHost() *machine.Processor {
	return &machine.Processor{
		Name:            "embedded quad-core CPU",
		Sockets:         1,
		CoresPerSocket:  4,
		ThreadsPerCore:  2,
		BaseClockGHz:    1.8,
		MaxClockGHz:     2.4,
		CacheMB:         4,
		MemBandwidthGBs: 25.6,
		MemoryGB:        8,
		VectorBits:      128,
		Affinities:      []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact},
	}
}

// edgeDevice is a small on-package accelerator (NPU-style).
func edgeDevice() *machine.Processor {
	return &machine.Processor{
		Name:            "on-package NPU",
		Sockets:         1,
		CoresPerSocket:  16,
		ThreadsPerCore:  4,
		BaseClockGHz:    1.0,
		MaxClockGHz:     1.2,
		CacheMB:         8,
		MemBandwidthGBs: 68,
		MemoryGB:        8,
		VectorBits:      256,
		Affinities:      []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact},
	}
}

// EdgePlatform returns a power-constrained edge platform spec: a small
// host with an on-package accelerator sharing memory — engagement is
// nearly free (no PCIe hop), but absolute throughput and power budgets
// are tiny, which makes the energy objective bite.
func EdgePlatform() PlatformSpec {
	return PlatformSpec{
		Name:        "edge",
		Description: "embedded quad-core + on-package NPU (shared memory, tight power budget)",
		Host:        edgeHost,
		Device:      edgeDevice,
		Cal: func() perf.Calibration {
			return perf.Calibration{
				HostCoreRateMBs:    120,
				HostSMTGain:        []float64{1.0, 1.2},
				HostCoreScalingExp: 0.96,
				HostSetupSec:       0.02,
				HostThreadSpawnSec: 0.0003,
				HostCompactBonus:   1.01,
				HostNonePenalty:    0.95,

				DeviceCoreRateMBs:    30,
				DeviceSMTGain:        []float64{1.0, 1.7, 2.1, 2.3},
				DeviceCoreScalingExp: 0.98,
				DeviceSetupSec:       0.005,
				DeviceThreadSpawnSec: 0.00002,
				DeviceBalancedBonus:  1.02,
				DeviceCompactBonus:   1.01,

				// On-package: no PCIe hop, engagement is nearly free.
				OffloadLatencySec: 0.008,
				PCIeRateMBs:       20000,
				TransferResidual:  0.005,

				BandwidthEfficiency: 0.75,
				BytesPerByte:        1.0,

				OversubscriptionDecay: 0.96,

				NoiseStdHost:    0.040,
				NoiseStdDevice:  0.030,
				NoiseNoneFactor: 1.6,
				NoiseSeed:       0xA24BAED4963EE407,

				HostIdleW:           3.5,
				HostCoreActiveW:     1.1,
				HostThreadActiveW:   0.15,
				DeviceIdleW:         1.5,
				DeviceCoreActiveW:   0.35,
				DeviceThreadActiveW: 0.02,
				HostNonePowerFactor: 1.08,

				NoiseStdHostPower:   0.02,
				NoiseStdDevicePower: 0.02,
			}
		},
		Space: space.SchemaSpec{
			HostThreads:      []int{1, 2, 4, 8},
			HostAffinities:   []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact},
			DeviceThreads:    []int{4, 8, 16, 32, 64},
			DeviceAffinities: []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact},
			Fractions:        paperFractions(),
		},
		// Shared memory: a transfer is a cache handoff, nearly free.
		LinkBandwidthMBs: 20000,
		LinkLatencySec:   0.0002,
	}
}

// paperFractions returns the paper's 41-value host-fraction grid
// (0-100% in 2.5% steps), shared by every built-in platform.
func paperFractions() []float64 {
	fractions := make([]float64, 0, 41)
	for f := 0.0; f <= 100; f += 2.5 {
		fractions = append(fractions, f)
	}
	return fractions
}

// Builtin returns a registry populated with the shipped catalog: the
// dna, spmv, stencil and crypto divisible families, the dag task-graph
// family, and the paper, gpu-like and edge platforms. The catalog is
// statically valid; registration cannot fail.
func Builtin() *Registry {
	r := NewRegistry()
	for _, f := range []Family{DNAFamily(), SpMVFamily(), StencilFamily(), CryptoFamily(), DAGFamily()} {
		if err := r.RegisterFamily(f); err != nil {
			panic(err)
		}
	}
	for _, p := range []PlatformSpec{PaperPlatform(), GPULikePlatform(), EdgePlatform()} {
		if err := r.RegisterPlatform(p); err != nil {
			panic(err)
		}
	}
	return r
}

// defaultRegistry is the process-wide catalog behind the package-level
// accessors.
var defaultRegistry = Builtin()

// Default returns the process-wide registry holding the built-in
// catalog; libraries and applications may register additional scenarios
// on it.
func Default() *Registry { return defaultRegistry }

// Package-level conveniences over the default registry.

// Families lists the registered workload families.
func Families() []Family { return defaultRegistry.Families() }

// Platforms lists the registered platform specs.
func Platforms() []PlatformSpec { return defaultRegistry.Platforms() }

// FamilyByName looks a workload family up in the default registry.
func FamilyByName(name string) (Family, error) { return defaultRegistry.Family(name) }

// PlatformByName looks a platform spec up in the default registry.
func PlatformByName(name string) (PlatformSpec, error) { return defaultRegistry.Platform(name) }

// Resolve parses a workload name against the default registry.
func Resolve(name string) (Family, SizePreset, error) { return defaultRegistry.Resolve(name) }

// Lookup resolves a (platform, workload) name pair against the default
// registry.
func Lookup(platformName, workloadName string) (Scenario, error) {
	return defaultRegistry.Lookup(platformName, workloadName)
}

// ResolveWorkload resolves a workload name against the default registry.
func ResolveWorkload(name string) (offload.Workload, error) {
	return defaultRegistry.ResolveWorkload(name)
}

// CanonicalWorkloadName canonicalizes a workload name against the
// default registry.
func CanonicalWorkloadName(name string) (string, error) {
	return defaultRegistry.CanonicalWorkloadName(name)
}

// WorkloadNames lists every resolvable workload name in the default
// registry.
func WorkloadNames() []string { return defaultRegistry.WorkloadNames() }

// PlatformNames lists the registered platform names in the default
// registry.
func PlatformNames() []string { return defaultRegistry.PlatformNames() }
