package scenario

import (
	"reflect"
	"testing"

	"hetopt/internal/core"
	"hetopt/internal/machine"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// thinSpec reduces a platform's configuration space to a few levels per
// axis (first, middle, last) so the determinism sweep over every
// scenario stays fast — including under -race — while preserving the
// space's structure.
func thinSpec(s space.SchemaSpec) space.SchemaSpec {
	thinInts := func(xs []int) []int {
		if len(xs) <= 3 {
			return xs
		}
		return []int{xs[0], xs[len(xs)/2], xs[len(xs)-1]}
	}
	thinFloats := func(xs []float64) []float64 {
		if len(xs) <= 5 {
			return xs
		}
		return []float64{xs[0], xs[len(xs)/4], xs[len(xs)/2], xs[3*len(xs)/4], xs[len(xs)-1]}
	}
	thinAffs := func(xs []machine.Affinity) []machine.Affinity {
		if len(xs) <= 2 {
			return xs
		}
		return xs[:2]
	}
	return space.SchemaSpec{
		HostThreads:      thinInts(s.HostThreads),
		HostAffinities:   thinAffs(s.HostAffinities),
		DeviceThreads:    thinInts(s.DeviceThreads),
		DeviceAffinities: thinAffs(s.DeviceAffinities),
		Fractions:        thinFloats(s.Fractions),
	}
}

// TestEveryScenarioDeterministicAcrossParallelism extends the engine's
// core determinism contract (see core's parallel tests) to the whole
// catalog: for every registered workload family x platform and each of
// {EM, SAM, portfolio}, the Result is bit-identical at parallelism
// 1, 4 and 8. Run under -race in CI, this also guards the shared
// evaluation caches on every scenario's substrate.
func TestEveryScenarioDeterministicAcrossParallelism(t *testing.T) {
	strategies := []struct {
		name  string
		m     core.Method
		strat strategy.Strategy
		opt   core.Options
	}{
		{"EM", core.EM, nil, core.Options{}},
		{"SAM", core.SAM, nil, core.Options{Iterations: 150, Seed: 5, Restarts: 2}},
		{"portfolio", core.SAM, strategy.DefaultPortfolio(), core.Options{Iterations: 80, Seed: 5}},
	}
	for _, spec := range Platforms() {
		schema, err := space.NewSchema(thinSpec(spec.Space))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		platform := spec.Platform()
		for _, fam := range Families() {
			w := fam.DefaultWorkload()
			for _, tc := range strategies {
				t.Run(spec.Name+"/"+fam.Name+"/"+tc.name, func(t *testing.T) {
					var want core.Result
					for i, p := range []int{1, 4, 8} {
						inst := &core.Instance{Schema: schema, Measurer: core.NewMeasurer(platform, w)}
						opt := tc.opt
						opt.Parallelism = p
						opt.Strategy = tc.strat
						res, err := core.Run(tc.m, inst, opt)
						if err != nil {
							t.Fatal(err)
						}
						if i == 0 {
							want = res
							continue
						}
						if !reflect.DeepEqual(want, res) {
							t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, res)
						}
					}
				})
			}
		}
	}
}
