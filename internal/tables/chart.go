package tables

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders labeled horizontal bars scaled to width characters,
// used for the paper's histogram figures (Figures 7 and 8).
func BarChart(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	if len(labels) != len(values) || len(values) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	maxV := values[0]
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&sb, "%s | %s %.4g\n", pad(labels[i], maxLabel), strings.Repeat("#", bar), v)
	}
	return sb.String()
}

// Series is one line of a LineChart.
type Series struct {
	Name string
	X, Y []float64
}

// seriesMarks are the plotting symbols assigned to series in order.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// LineChart renders multiple series as a character scatter plot with a
// shared axis range, standing in for the paper's line figures (Figures 2,
// 5, 6 and 9). Points that collide keep the first series' mark.
func LineChart(title string, series []Series, width, height int) string {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 18
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if grid[r][c] == ' ' {
				grid[r][c] = mark
			}
		}
	}
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(&sb, "%s |%s|\n", label, row)
	}
	gap := width - 16
	if gap < 0 {
		gap = 0
	}
	fmt.Fprintf(&sb, "%8s  %-8.3g%s%8.3g\n", "", minX, strings.Repeat(" ", gap), maxX)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s", seriesMarks[si%len(seriesMarks)], s.Name)
		if si != len(series)-1 {
			sb.WriteString("   ")
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}
