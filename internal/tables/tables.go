// Package tables renders the reproduction's experiment results as aligned
// ASCII tables and simple character plots, standing in for the paper's
// figures and tables in terminal reports.
package tables

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with aligned columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extra cells are
// kept (the widest row defines the grid).
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Columns)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Columns)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return fmt.Sprintf("tables: render failed: %v", err)
	}
	return sb.String()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Seconds formats a duration in seconds with millisecond resolution.
func Seconds(v float64) string {
	return F(v, 3) + "s"
}

// Percent formats a percentage with two decimals.
func Percent(v float64) string {
	return F(v, 2) + "%"
}
