package tables

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("My Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22")
	out := tb.String()
	if !strings.Contains(out, "My Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	// Columns align: 'value' column starts at the same offset in every
	// data line.
	header := lines[1]
	col := strings.Index(header, "value")
	for _, l := range lines[3:] {
		cell := strings.TrimRight(l[col:], " ")
		if cell != "1" && cell != "22" {
			t.Fatalf("misaligned column: %q", l)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x")
	tb.AddRow("y", "z", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Error("extra cell dropped")
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F wrong")
	}
	if Seconds(0.5) != "0.500s" {
		t.Errorf("Seconds = %q", Seconds(0.5))
	}
	if Percent(12.345) != "12.35%" {
		t.Errorf("Percent = %q", Percent(12.345))
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("title", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "title") || !strings.Contains(out, "##########") {
		t.Fatalf("bar chart wrong:\n%s", out)
	}
	// Mismatched input degrades gracefully.
	if out := BarChart("t", []string{"a"}, nil, 10); !strings.Contains(out, "no data") {
		t.Error("mismatch should render no data")
	}
	// All-zero values draw no bars but render.
	if out := BarChart("", []string{"a"}, []float64{0}, 10); !strings.Contains(out, "a |") {
		t.Error("zero bar missing label")
	}
}

func TestLineChart(t *testing.T) {
	out := LineChart("plot", []Series{
		{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
		{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
	}, 40, 10)
	if !strings.Contains(out, "plot") || !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Fatalf("line chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("marks missing")
	}
}

func TestLineChartDegenerate(t *testing.T) {
	if out := LineChart("", nil, 10, 5); !strings.Contains(out, "no data") {
		t.Error("empty series should render no data")
	}
	// Constant series must not divide by zero.
	out := LineChart("", []Series{{Name: "c", X: []float64{1, 1}, Y: []float64{3, 3}}}, 10, 5)
	if !strings.Contains(out, "c") {
		t.Error("constant series failed to render")
	}
}
