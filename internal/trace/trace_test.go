package trace

import (
	"math/rand"
	"strings"
	"testing"

	"hetopt/internal/anneal"
)

// bowl is a small quadratic test problem.
type bowl struct{ target []int }

func (b *bowl) Dim() int { return len(b.target) }
func (b *bowl) Initial(dst []int, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Intn(20)
	}
}
func (b *bowl) Neighbor(dst, src []int, rng *rand.Rand) {
	copy(dst, src)
	i := rng.Intn(len(dst))
	if dst[i] == 0 {
		dst[i] = 1
	} else if rng.Intn(2) == 0 {
		dst[i]--
	} else {
		dst[i]++
	}
}
func (b *bowl) Energy(state []int) float64 {
	e := 0.0
	for i, v := range state {
		d := float64(v - b.target[i])
		e += d * d
	}
	return e
}

func record(t *testing.T, iters int) *Recorder {
	t.Helper()
	rec := &Recorder{}
	_, err := anneal.Minimize(&bowl{target: []int{7, 12}}, anneal.Options{
		MaxIters:    iters,
		InitialTemp: 50,
		StopTemp:    0.005,
		Seed:        3,
		OnStep:      rec.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCapturesAllSteps(t *testing.T) {
	rec := record(t, 400)
	if rec.Len() != 400 {
		t.Fatalf("recorded %d steps, want 400", rec.Len())
	}
	if len(rec.Steps()) != 400 {
		t.Fatal("Steps() length mismatch")
	}
}

func TestSummary(t *testing.T) {
	rec := record(t, 400)
	sum, err := rec.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Iterations != 400 {
		t.Fatalf("iterations = %d", sum.Iterations)
	}
	if sum.AcceptanceRate <= 0 || sum.AcceptanceRate > 1 {
		t.Fatalf("acceptance rate = %g", sum.AcceptanceRate)
	}
	if sum.FinalBest > sum.FirstBest {
		t.Fatal("best energy must not increase")
	}
	if sum.BestFoundAtIter < 0 || sum.BestFoundAtIter >= 400 {
		t.Fatalf("best found at %d", sum.BestFoundAtIter)
	}
	if len(sum.Phases) != 4 {
		t.Fatalf("phases = %d", len(sum.Phases))
	}
	// Explore-to-exploit: late acceptance must be below early acceptance
	// for a schedule spanning the energy scale.
	if sum.Phases[3] >= sum.Phases[0] {
		t.Errorf("acceptance did not fall: %v", sum.Phases)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	rec := &Recorder{}
	if _, err := rec.Summarize(); err == nil {
		t.Fatal("empty recording should fail")
	}
}

func TestRenderConvergence(t *testing.T) {
	rec := record(t, 300)
	out := rec.RenderConvergence("anneal trace")
	for _, want := range []string{"anneal trace", "best", "current", "acceptance rate", "best found at iter", "acceptance Q4"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
	if out := (&Recorder{}).RenderConvergence("x"); !strings.Contains(out, "empty") {
		t.Error("empty recorder should say so")
	}
}
