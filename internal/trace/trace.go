// Package trace records and renders the trajectory of a simulated
// annealing run: per-iteration candidate/current/best energies,
// temperatures, and acceptance events. It provides the observability
// behind Figure 9-style convergence analysis — *why* a run at a given
// budget lands where it does — and feeds the convergence plots of
// cmd/hetopt users debugging their own tuning problems.
package trace

import (
	"fmt"
	"math"
	"strings"

	"hetopt/internal/anneal"
	"hetopt/internal/tables"
)

// Recorder accumulates annealing steps. Attach via Hook.
type Recorder struct {
	steps []anneal.Step
}

// Hook returns an OnStep callback recording into r.
func (r *Recorder) Hook() func(anneal.Step) {
	return func(s anneal.Step) {
		r.steps = append(r.steps, s)
	}
}

// Len returns the number of recorded steps.
func (r *Recorder) Len() int { return len(r.steps) }

// Steps returns the recorded steps (shared slice; callers must not
// modify).
func (r *Recorder) Steps() []anneal.Step { return r.steps }

// Summary aggregates a recorded run.
type Summary struct {
	Iterations      int
	Accepted        int
	AcceptedWorse   int
	AcceptanceRate  float64
	FirstBest       float64
	FinalBest       float64
	BestFoundAtIter int
	// Phases splits the run into quarters and reports the per-quarter
	// acceptance rate — the explore-to-exploit transition of a healthy
	// anneal shows as a falling sequence.
	Phases []float64
}

// Summarize computes the run summary. It fails on an empty recording.
func (r *Recorder) Summarize() (Summary, error) {
	if len(r.steps) == 0 {
		return Summary{}, fmt.Errorf("trace: empty recording")
	}
	s := Summary{
		Iterations: len(r.steps),
		FirstBest:  r.steps[0].Best,
		FinalBest:  r.steps[len(r.steps)-1].Best,
	}
	best := math.Inf(1)
	for i, st := range r.steps {
		if st.Accepted {
			s.Accepted++
		}
		if st.Worse {
			s.AcceptedWorse++
		}
		if st.Best < best {
			best = st.Best
			s.BestFoundAtIter = i
		}
	}
	s.AcceptanceRate = float64(s.Accepted) / float64(s.Iterations)
	quarters := 4
	for q := 0; q < quarters; q++ {
		lo := q * len(r.steps) / quarters
		hi := (q + 1) * len(r.steps) / quarters
		if hi <= lo {
			continue
		}
		acc := 0
		for _, st := range r.steps[lo:hi] {
			if st.Accepted {
				acc++
			}
		}
		s.Phases = append(s.Phases, float64(acc)/float64(hi-lo))
	}
	return s, nil
}

// RenderConvergence plots best-so-far and current energy against
// iteration, plus the summary table.
func (r *Recorder) RenderConvergence(title string) string {
	if len(r.steps) == 0 {
		return "trace: empty recording\n"
	}
	var sb strings.Builder
	xs := make([]float64, len(r.steps))
	best := make([]float64, len(r.steps))
	current := make([]float64, len(r.steps))
	for i, st := range r.steps {
		xs[i] = float64(st.Iter)
		best[i] = st.Best
		current[i] = st.Current
	}
	sb.WriteString(tables.LineChart(title, []tables.Series{
		{Name: "best", X: xs, Y: best},
		{Name: "current", X: xs, Y: current},
	}, 72, 14))
	sum, err := r.Summarize()
	if err != nil {
		return sb.String()
	}
	tb := tables.New("", "metric", "value")
	tb.AddRow("iterations", fmt.Sprint(sum.Iterations))
	tb.AddRow("acceptance rate", tables.Percent(100*sum.AcceptanceRate))
	tb.AddRow("uphill acceptances", fmt.Sprint(sum.AcceptedWorse))
	tb.AddRow("best found at iter", fmt.Sprint(sum.BestFoundAtIter))
	tb.AddRow("best energy", tables.F(sum.FinalBest, 4))
	for q, rate := range sum.Phases {
		tb.AddRow(fmt.Sprintf("acceptance Q%d", q+1), tables.Percent(100*rate))
	}
	sb.WriteString(tb.String())
	return sb.String()
}
