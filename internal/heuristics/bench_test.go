package heuristics

import "testing"

func benchProblem() *bowl {
	return &bowl{levels: 41, target: []int{20, 5, 33, 11, 40}}
}

func BenchmarkRandomSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RandomSearch(benchProblem(), Options{Budget: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LocalSearch(benchProblem(), Options{Budget: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTabuSearch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TabuSearch(benchProblem(), TabuOptions{Options: Options{Budget: 1000, Seed: int64(i)}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenetic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Genetic(benchProblem(), GeneticOptions{Options: Options{Budget: 1000, Seed: int64(i)}}); err != nil {
			b.Fatal(err)
		}
	}
}
