// Package heuristics implements the alternative metaheuristics the paper
// weighs against simulated annealing when discussing how to explore the
// configuration space (Section III-A, citing Press et al.: genetic
// algorithms, local search, tabu search). The paper selects SA; this
// package makes the comparison concrete — an extension experiment ranks
// all of them on the same tuning problem under equal evaluation budgets.
//
// All searchers minimize an energy over integer index vectors (one index
// per discrete parameter), the same representation internal/space and
// internal/anneal use, and spend at most Budget energy evaluations.
package heuristics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Problem is a discrete minimization problem over index vectors.
type Problem interface {
	// Dim returns the number of parameters.
	Dim() int
	// Levels returns the number of values parameter i can take.
	Levels(i int) int
	// Energy evaluates a state; lower is better. NaN is treated as +Inf.
	Energy(state []int) float64
}

// BatchProblem is optionally implemented by problems that evaluate a
// slice of states in one call, equivalent to out[i] = Energy(states[i])
// in order. Genetic uses it to evaluate whole generations at once;
// because evaluation consumes no search randomness, batching never
// changes a result.
type BatchProblem interface {
	Problem
	// EnergyBatch writes Energy(states[i]) into out[i];
	// len(out) >= len(states).
	EnergyBatch(states [][]int, out []float64)
}

// Result is the outcome of a search.
type Result struct {
	// Best is the lowest-energy state found; BestEnergy its energy.
	Best       []int
	BestEnergy float64
	// Evaluations counts energy calls actually spent.
	Evaluations int
}

// Options configures a search run.
type Options struct {
	// Budget caps the number of energy evaluations. Zero selects 1000.
	Budget int
	// Seed drives all stochastic choices.
	Seed int64
}

func (o Options) budget() int {
	if o.Budget <= 0 {
		return 1000
	}
	return o.Budget
}

// validate checks the problem's shape.
func validate(p Problem) error {
	if p.Dim() <= 0 {
		return fmt.Errorf("heuristics: problem dimension must be positive")
	}
	for i := 0; i < p.Dim(); i++ {
		if p.Levels(i) <= 0 {
			return fmt.Errorf("heuristics: parameter %d has no levels", i)
		}
	}
	return nil
}

// randomState fills dst uniformly.
func randomState(p Problem, dst []int, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Intn(p.Levels(i))
	}
}

// sanitize maps NaN to +Inf.
func sanitize(e float64) float64 {
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e
}

// counter wraps a problem with budget accounting.
type counter struct {
	p     Problem
	used  int
	limit int
}

func (c *counter) spent() bool { return c.used >= c.limit }

func (c *counter) eval(state []int) (float64, bool) {
	if c.spent() {
		return math.Inf(1), false
	}
	c.used++
	return sanitize(c.p.Energy(state)), true
}

// RandomSearch samples the space uniformly: the natural lower baseline
// every metaheuristic must beat.
func RandomSearch(p Problem, opt Options) (Result, error) {
	if err := validate(p); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &counter{p: p, limit: opt.budget()}
	cur := make([]int, p.Dim())
	best := make([]int, p.Dim())
	bestE := math.Inf(1)
	for !c.spent() {
		randomState(p, cur, rng)
		e, ok := c.eval(cur)
		if !ok {
			break
		}
		if e < bestE {
			bestE = e
			copy(best, cur)
		}
	}
	return Result{Best: best, BestEnergy: bestE, Evaluations: c.used}, nil
}

// LocalSearch is steepest-descent hill climbing with random restarts:
// from a random start it repeatedly moves to the best single-parameter
// change, restarting from a fresh random state at local minima, until the
// budget is exhausted.
func LocalSearch(p Problem, opt Options) (Result, error) {
	if err := validate(p); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &counter{p: p, limit: opt.budget()}
	cur := make([]int, p.Dim())
	cand := make([]int, p.Dim())
	best := make([]int, p.Dim())
	bestE := math.Inf(1)

	for !c.spent() {
		randomState(p, cur, rng)
		curE, ok := c.eval(cur)
		if !ok {
			break
		}
		if curE < bestE {
			bestE = curE
			copy(best, cur)
		}
		for { // descend
			improved := false
			bestMoveE := curE
			var bestMoveParam, bestMoveValue int
			for i := 0; i < p.Dim() && !c.spent(); i++ {
				for v := 0; v < p.Levels(i); v++ {
					if v == cur[i] {
						continue
					}
					copy(cand, cur)
					cand[i] = v
					e, ok := c.eval(cand)
					if !ok {
						break
					}
					if e < bestMoveE {
						bestMoveE = e
						bestMoveParam, bestMoveValue = i, v
						improved = true
					}
				}
			}
			if !improved {
				break
			}
			cur[bestMoveParam] = bestMoveValue
			curE = bestMoveE
			if curE < bestE {
				bestE = curE
				copy(best, cur)
			}
			if c.spent() {
				break
			}
		}
	}
	return Result{Best: best, BestEnergy: bestE, Evaluations: c.used}, nil
}

// TabuOptions extends Options for tabu search.
type TabuOptions struct {
	Options
	// Tenure is the number of iterations a reversed move stays
	// forbidden. Zero selects 2*Dim.
	Tenure int
	// Samples is the number of random single-parameter moves examined
	// per iteration. Zero selects 4*Dim.
	Samples int
}

// TabuSearch explores with a short-term memory: the best sampled
// non-tabu neighbor is accepted even when worse, reversing moves is tabu
// for Tenure iterations, and tabu moves are still taken when they beat
// the global best (aspiration).
func TabuSearch(p Problem, opt TabuOptions) (Result, error) {
	if err := validate(p); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &counter{p: p, limit: opt.budget()}
	tenure := opt.Tenure
	if tenure <= 0 {
		tenure = 2 * p.Dim()
	}
	samples := opt.Samples
	if samples <= 0 {
		samples = 4 * p.Dim()
	}

	cur := make([]int, p.Dim())
	cand := make([]int, p.Dim())
	best := make([]int, p.Dim())
	randomState(p, cur, rng)
	curE, _ := c.eval(cur)
	bestE := curE
	copy(best, cur)

	type assignment struct{ param, value int }
	tabuUntil := map[assignment]int{}

	for iter := 0; !c.spent(); iter++ {
		type move struct {
			param, value int
			energy       float64
		}
		chosen := move{param: -1, energy: math.Inf(1)}
		for s := 0; s < samples && !c.spent(); s++ {
			i := rng.Intn(p.Dim())
			if p.Levels(i) < 2 {
				continue
			}
			v := rng.Intn(p.Levels(i) - 1)
			if v >= cur[i] {
				v++
			}
			copy(cand, cur)
			cand[i] = v
			e, ok := c.eval(cand)
			if !ok {
				break
			}
			// The move back to the current value is what becomes tabu;
			// moving *to* a tabu assignment is forbidden unless it
			// aspirates.
			isTabu := tabuUntil[assignment{i, v}] > iter
			if isTabu && e >= bestE {
				continue
			}
			if e < chosen.energy {
				chosen = move{param: i, value: v, energy: e}
			}
		}
		if chosen.param < 0 {
			continue
		}
		// Forbid undoing this move for tenure iterations.
		tabuUntil[assignment{chosen.param, cur[chosen.param]}] = iter + tenure
		cur[chosen.param] = chosen.value
		curE = chosen.energy
		if curE < bestE {
			bestE = curE
			copy(best, cur)
		}
	}
	return Result{Best: best, BestEnergy: bestE, Evaluations: c.used}, nil
}

// GeneticOptions extends Options for the genetic algorithm.
type GeneticOptions struct {
	Options
	// Population is the number of individuals. Zero selects 24.
	Population int
	// MutationRate is the per-gene mutation probability. Zero selects
	// 1/Dim.
	MutationRate float64
	// Elite is the number of best individuals copied unchanged into the
	// next generation. Zero selects 2.
	Elite int
}

// Genetic runs a generational genetic algorithm with tournament
// selection, uniform crossover, per-gene mutation and elitism.
func Genetic(p Problem, opt GeneticOptions) (Result, error) {
	if err := validate(p); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &counter{p: p, limit: opt.budget()}
	pop := opt.Population
	if pop <= 0 {
		pop = 24
	}
	if pop < 2 {
		return Result{}, fmt.Errorf("heuristics: population must be at least 2, got %d", pop)
	}
	mut := opt.MutationRate
	if mut == 0 {
		mut = 1 / float64(p.Dim())
	}
	if mut < 0 || mut > 1 {
		return Result{}, fmt.Errorf("heuristics: mutation rate %g outside [0,1]", mut)
	}
	elite := opt.Elite
	if elite == 0 {
		elite = 2
	}
	if elite < 0 || elite >= pop {
		return Result{}, fmt.Errorf("heuristics: elite count %d outside [0,%d)", elite, pop)
	}

	type indiv struct {
		genes  []int
		energy float64
	}
	population := make([]indiv, pop)
	for i := range population {
		g := make([]int, p.Dim())
		randomState(p, g, rng)
		e, _ := c.eval(g)
		population[i] = indiv{genes: g, energy: e}
	}
	best := append([]int(nil), population[0].genes...)
	bestE := population[0].energy
	record := func(in indiv) {
		if in.energy < bestE {
			bestE = in.energy
			copy(best, in.genes)
		}
	}
	for _, in := range population {
		record(in)
	}

	tournament := func() indiv {
		a := population[rng.Intn(pop)]
		b := population[rng.Intn(pop)]
		if a.energy <= b.energy {
			return a
		}
		return b
	}
	makeChild := func() []int {
		ma, pa := tournament(), tournament()
		child := make([]int, p.Dim())
		for g := range child {
			if rng.Intn(2) == 0 {
				child[g] = ma.genes[g]
			} else {
				child[g] = pa.genes[g]
			}
			if rng.Float64() < mut {
				child[g] = rng.Intn(p.Levels(g))
			}
		}
		return child
	}

	bp, batch := p.(BatchProblem)
	var states [][]int
	var energies []float64
	if batch {
		states = make([][]int, 0, pop)
		energies = make([]float64, pop)
	}

	for !c.spent() {
		// Elitism: carry the best individuals over unchanged.
		sort.Slice(population, func(i, j int) bool { return population[i].energy < population[j].energy })
		next := make([]indiv, 0, pop)
		for i := 0; i < elite; i++ {
			next = append(next, population[i])
		}
		if batch {
			// Generate exactly the children the sequential loop would —
			// evaluation consumes no randomness, so drawing them all
			// before evaluating leaves the RNG stream unchanged — then
			// evaluate the whole generation in one call.
			b := pop - len(next)
			if rem := c.limit - c.used; b > rem {
				b = rem
			}
			states = states[:0]
			for len(states) < b {
				states = append(states, makeChild())
			}
			bp.EnergyBatch(states, energies[:len(states)])
			for i, g := range states {
				c.used++
				in := indiv{genes: g, energy: sanitize(energies[i])}
				record(in)
				next = append(next, in)
			}
		} else {
			for len(next) < pop && !c.spent() {
				child := makeChild()
				e, ok := c.eval(child)
				if !ok {
					break
				}
				in := indiv{genes: child, energy: e}
				record(in)
				next = append(next, in)
			}
		}
		if len(next) < pop {
			break // budget exhausted mid-generation
		}
		population = next
	}
	return Result{Best: best, BestEnergy: bestE, Evaluations: c.used}, nil
}
