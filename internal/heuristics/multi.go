package heuristics

import (
	"fmt"

	"hetopt/internal/search"
)

// Searcher runs one search to completion: RandomSearch, LocalSearch, or
// a closure binding the extended options of TabuSearch/Genetic.
type Searcher func(p Problem, opt Options) (Result, error)

// MultiOptions configures a SearchMulti run.
type MultiOptions struct {
	// Options configures each restart. Seed is the base seed: restart i
	// runs with search.ChainSeed(Seed, i), so restart 0 reproduces a
	// plain single run with the same options.
	Options
	// Restarts is the number of independent restarts K. Zero or one
	// selects a single restart, reproducing the plain searcher exactly.
	Restarts int
	// Parallelism caps the number of restarts searching concurrently.
	// Zero or one runs restarts sequentially. The outcome is identical
	// at any parallelism level: restarts are independent (each gets its
	// own problem instance from the factory) and the winner is chosen by
	// (energy, restart index), never by completion order.
	Parallelism int
}

func (o MultiOptions) restarts() int {
	if o.Restarts <= 1 {
		return 1
	}
	return o.Restarts
}

// MultiResult is the outcome of a SearchMulti run.
type MultiResult struct {
	// Result is the winning restart's result (lowest best energy, ties
	// broken by lowest restart index).
	Result
	// Restart is the index of the winning restart.
	Restart int
	// PerRestart holds every restart's result, indexed by restart.
	PerRestart []Result
}

// TotalEvaluations sums the energy evaluations across all restarts.
func (r MultiResult) TotalEvaluations() int {
	total := 0
	for _, c := range r.PerRestart {
		total += c.Evaluations
	}
	return total
}

// SearchMulti runs K independent restarts of a searcher and returns the
// best outcome. newProblem(i) supplies the problem instance for restart
// i; it is called once per restart on the calling goroutine before any
// restart runs, so implementations carrying per-run state (sticky
// errors, evaluation counters) can hand out one instance per restart
// while sharing read-only or concurrency-safe parts (e.g. a shared
// evaluation memo).
//
// Restart i runs with the explicit per-worker seed
// search.ChainSeed(opt.Seed, i) — the same derivation the multi-chain
// annealer uses — rather than restarts drawing from a single
// math/rand stream, so for a fixed (Options, Restarts) the result is
// bit-identical at every Parallelism level.
func SearchMulti(newProblem func(restart int) Problem, run Searcher, opt MultiOptions) (MultiResult, error) {
	if newProblem == nil {
		return MultiResult{}, fmt.Errorf("heuristics: nil problem factory")
	}
	if run == nil {
		return MultiResult{}, fmt.Errorf("heuristics: nil searcher")
	}
	restarts := opt.restarts()
	problems := make([]Problem, restarts)
	for i := range problems {
		if problems[i] = newProblem(i); problems[i] == nil {
			return MultiResult{}, fmt.Errorf("heuristics: nil problem for restart %d", i)
		}
	}

	results := make([]Result, restarts)
	err := search.ForEach(restarts, opt.Parallelism, func(i int) error {
		restartOpt := opt.Options
		restartOpt.Seed = search.ChainSeed(opt.Seed, i)
		var err error
		results[i], err = run(problems[i], restartOpt)
		if err != nil {
			return fmt.Errorf("heuristics: restart %d: %w", i, err)
		}
		return nil
	})
	if err != nil {
		return MultiResult{}, err
	}
	out := MultiResult{Result: results[0], Restart: 0, PerRestart: results}
	for i := 1; i < restarts; i++ {
		if results[i].BestEnergy < out.BestEnergy {
			out.Result = results[i]
			out.Restart = i
		}
	}
	return out, nil
}
