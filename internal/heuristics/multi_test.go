package heuristics

import (
	"fmt"
	"reflect"
	"testing"

	"hetopt/internal/search"
)

func tabuSearcher(p Problem, o Options) (Result, error) {
	return TabuSearch(p, TabuOptions{Options: o})
}

func geneticSearcher(p Problem, o Options) (Result, error) {
	return Genetic(p, GeneticOptions{Options: o})
}

// TestSearchMultiDeterministicAcrossParallelism: restarts draw explicit
// ChainSeed-derived seeds, so the multi-restart outcome is bit-identical
// at every parallelism level for every searcher.
func TestSearchMultiDeterministicAcrossParallelism(t *testing.T) {
	searchers := map[string]Searcher{
		"random":  RandomSearch,
		"local":   LocalSearch,
		"tabu":    tabuSearcher,
		"genetic": geneticSearcher,
	}
	for name, run := range searchers {
		t.Run(name, func(t *testing.T) {
			var want MultiResult
			for i, p := range []int{1, 4, 8} {
				res, err := SearchMulti(func(int) Problem { return newBowl() }, run, MultiOptions{
					Options:     Options{Budget: 250, Seed: 6},
					Restarts:    5,
					Parallelism: p,
				})
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = res
					continue
				}
				if !reflect.DeepEqual(want, res) {
					t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, res)
				}
			}
		})
	}
}

// TestSearchMultiRestartZeroMatchesSingleRun: restart 0 keeps the base
// seed, so one restart reproduces the plain searcher bit-for-bit.
func TestSearchMultiRestartZeroMatchesSingleRun(t *testing.T) {
	plain, err := Genetic(newBowl(), GeneticOptions{Options: Options{Budget: 300, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SearchMulti(func(int) Problem { return newBowl() }, geneticSearcher, MultiOptions{
		Options: Options{Budget: 300, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, multi.Result) {
		t.Fatalf("single-restart SearchMulti diverged from the plain run:\n%+v\n%+v", plain, multi.Result)
	}
	if multi.Restart != 0 || len(multi.PerRestart) != 1 {
		t.Fatalf("bookkeeping wrong: %+v", multi)
	}
}

// TestSearchMultiSeedsDecorrelated: each restart must use
// search.ChainSeed(seed, i), reproducible standalone.
func TestSearchMultiSeedsDecorrelated(t *testing.T) {
	const restarts = 4
	multi, err := SearchMulti(func(int) Problem { return newBowl() }, RandomSearch, MultiOptions{
		Options:  Options{Budget: 100, Seed: 12},
		Restarts: restarts,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < restarts; i++ {
		standalone, err := RandomSearch(newBowl(), Options{Budget: 100, Seed: search.ChainSeed(12, i)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(standalone, multi.PerRestart[i]) {
			t.Fatalf("restart %d does not match its ChainSeed standalone run", i)
		}
		if multi.Result.BestEnergy > standalone.BestEnergy {
			t.Fatalf("winner worse than restart %d", i)
		}
	}
}

func TestSearchMultiErrorPropagation(t *testing.T) {
	if _, err := SearchMulti(nil, RandomSearch, MultiOptions{}); err == nil {
		t.Error("nil factory must error")
	}
	if _, err := SearchMulti(func(int) Problem { return newBowl() }, nil, MultiOptions{}); err == nil {
		t.Error("nil searcher must error")
	}
	if _, err := SearchMulti(func(int) Problem { return nil }, RandomSearch, MultiOptions{}); err == nil {
		t.Error("nil problem must error")
	}
	boom := func(Problem, Options) (Result, error) { return Result{}, fmt.Errorf("boom") }
	_, err := SearchMulti(func(int) Problem { return newBowl() }, boom, MultiOptions{Restarts: 3, Parallelism: 2})
	if err == nil {
		t.Error("searcher failure must propagate")
	}
}
