package heuristics

import (
	"math"
	"testing"
	"testing/quick"
)

// bowl is a separable quadratic with a unique minimum.
type bowl struct {
	levels int
	target []int
	evals  int
}

func (b *bowl) Dim() int         { return len(b.target) }
func (b *bowl) Levels(i int) int { return b.levels }
func (b *bowl) Energy(state []int) float64 {
	b.evals++
	e := 0.0
	for i, v := range state {
		d := float64(v - b.target[i])
		e += d * d
	}
	return e
}

// deceptive has a broad false valley and a narrow true optimum.
type deceptive struct{ bowl }

func (d *deceptive) Energy(state []int) float64 {
	e := d.bowl.Energy(state)
	if state[0] == 0 && state[1] == 0 {
		return -1 // hidden optimum far from the bowl's center
	}
	return e
}

func newBowl() *bowl { return &bowl{levels: 12, target: []int{7, 3, 9}} }

func TestAllSearchersFindBowlMinimum(t *testing.T) {
	searchers := map[string]func(Problem, Options) (Result, error){
		"random": RandomSearch,
		"local":  LocalSearch,
		"tabu": func(p Problem, o Options) (Result, error) {
			return TabuSearch(p, TabuOptions{Options: o})
		},
		"genetic": func(p Problem, o Options) (Result, error) {
			return Genetic(p, GeneticOptions{Options: o})
		},
	}
	for name, search := range searchers {
		res, err := search(newBowl(), Options{Budget: 3000, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Random search may miss the exact optimum; the guided searchers
		// must hit it on a 12^3 space with 3000 evaluations.
		if name != "random" && res.BestEnergy != 0 {
			t.Errorf("%s: best = %g at %v, want 0", name, res.BestEnergy, res.Best)
		}
		if name == "random" && res.BestEnergy > 9 {
			t.Errorf("random: best = %g suspiciously bad", res.BestEnergy)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	for name, run := range map[string]func(p Problem) (Result, error){
		"random": func(p Problem) (Result, error) { return RandomSearch(p, Options{Budget: 137, Seed: 2}) },
		"local":  func(p Problem) (Result, error) { return LocalSearch(p, Options{Budget: 137, Seed: 2}) },
		"tabu": func(p Problem) (Result, error) {
			return TabuSearch(p, TabuOptions{Options: Options{Budget: 137, Seed: 2}})
		},
		"genetic": func(p Problem) (Result, error) {
			return Genetic(p, GeneticOptions{Options: Options{Budget: 137, Seed: 2}})
		},
	} {
		b := newBowl()
		res, err := run(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Evaluations > 137 {
			t.Errorf("%s: spent %d evaluations for budget 137", name, res.Evaluations)
		}
		if b.evals != res.Evaluations {
			t.Errorf("%s: reported %d evaluations but problem saw %d", name, res.Evaluations, b.evals)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := Genetic(newBowl(), GeneticOptions{Options: Options{Budget: 500, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(newBowl(), GeneticOptions{Options: Options{Budget: 500, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestEnergy != b.BestEnergy || a.Evaluations != b.Evaluations {
		t.Fatal("same seed must reproduce the genetic run")
	}
	c, err := TabuSearch(newBowl(), TabuOptions{Options: Options{Budget: 500, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := TabuSearch(newBowl(), TabuOptions{Options: Options{Budget: 500, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if c.BestEnergy != d.BestEnergy {
		t.Fatal("same seed must reproduce the tabu run")
	}
}

func TestValidation(t *testing.T) {
	if _, err := RandomSearch(&bowl{levels: 12}, Options{}); err == nil {
		t.Error("zero-dimensional problem should fail")
	}
	if _, err := LocalSearch(&bowl{levels: 0, target: []int{1}}, Options{}); err == nil {
		t.Error("zero levels should fail")
	}
	if _, err := Genetic(newBowl(), GeneticOptions{Options: Options{Budget: 10}, Population: 1}); err == nil {
		t.Error("population 1 should fail")
	}
	if _, err := Genetic(newBowl(), GeneticOptions{Options: Options{Budget: 10}, MutationRate: 2}); err == nil {
		t.Error("mutation rate 2 should fail")
	}
	if _, err := Genetic(newBowl(), GeneticOptions{Options: Options{Budget: 10}, Elite: 50}); err == nil {
		t.Error("elite >= population should fail")
	}
}

func TestTabuEscapesLocalMinimum(t *testing.T) {
	// The deceptive problem's hidden optimum sits away from the bowl
	// center; tabu's uphill moves should find it where pure descent can
	// stall at the bowl.
	p := &deceptive{bowl{levels: 12, target: []int{7, 3}}}
	res, err := TabuSearch(p, TabuOptions{Options: Options{Budget: 4000, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy != -1 {
		t.Fatalf("tabu best = %g, want -1 (hidden optimum)", res.BestEnergy)
	}
}

func TestNaNTreatedAsInf(t *testing.T) {
	res, err := RandomSearch(&nanProblem{}, Options{Budget: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.BestEnergy, 1) {
		t.Fatalf("best = %g, want +Inf", res.BestEnergy)
	}
}

type nanProblem struct{}

func (n *nanProblem) Dim() int                   { return 1 }
func (n *nanProblem) Levels(i int) int           { return 3 }
func (n *nanProblem) Energy(state []int) float64 { return math.NaN() }

// Property: every searcher returns an in-bounds state whose energy equals
// its reported best.
func TestSearchersSoundProperty(t *testing.T) {
	f := func(seed int64, which uint8, budgetRaw uint8) bool {
		budget := int(budgetRaw)%400 + 50
		p := newBowl()
		var res Result
		var err error
		switch which % 4 {
		case 0:
			res, err = RandomSearch(p, Options{Budget: budget, Seed: seed})
		case 1:
			res, err = LocalSearch(p, Options{Budget: budget, Seed: seed})
		case 2:
			res, err = TabuSearch(p, TabuOptions{Options: Options{Budget: budget, Seed: seed}})
		case 3:
			res, err = Genetic(p, GeneticOptions{Options: Options{Budget: budget, Seed: seed}})
		}
		if err != nil {
			return false
		}
		for i, v := range res.Best {
			if v < 0 || v >= p.Levels(i) {
				return false
			}
		}
		check := newBowl()
		return check.Energy(res.Best) == res.BestEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: guided searchers beat random search on average over seeds.
func TestGuidedBeatsRandomOnAverage(t *testing.T) {
	var randSum, localSum, tabuSum, gaSum float64
	const n = 20
	for seed := int64(0); seed < n; seed++ {
		r, err := RandomSearch(newBowl(), Options{Budget: 400, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		l, err := LocalSearch(newBowl(), Options{Budget: 400, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := TabuSearch(newBowl(), TabuOptions{Options: Options{Budget: 400, Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		g, err := Genetic(newBowl(), GeneticOptions{Options: Options{Budget: 400, Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		randSum += r.BestEnergy
		localSum += l.BestEnergy
		tabuSum += tb.BestEnergy
		gaSum += g.BestEnergy
	}
	if localSum > randSum || tabuSum > randSum || gaSum > randSum {
		t.Fatalf("guided searchers should beat random: random=%g local=%g tabu=%g ga=%g",
			randSum/n, localSum/n, tabuSum/n, gaSum/n)
	}
}
