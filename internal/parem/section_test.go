package parem

import (
	"testing"
	"testing/quick"

	"hetopt/internal/automata"
	"hetopt/internal/dna"
)

func TestSectionView(t *testing.T) {
	base := Bytes([]byte("ACGTACGTAC"))
	sec := Section(base, 4)
	got := make([]byte, 3)
	sec.FillAt(0, got)
	if string(got) != "ACG" {
		t.Fatalf("section read %q, want ACG", got)
	}
	sec.FillAt(2, got[:2])
	if string(got[:2]) != "GT" {
		t.Fatalf("section offset read %q, want GT", got[:2])
	}
}

func TestFinalStateChaining(t *testing.T) {
	// Counting a text in two sections, chaining Final -> StartState, must
	// equal one pass — even when a match straddles the cut.
	d, err := automata.CompileMotifs([]dna.Motif{{Name: "m", Pattern: "ACGT"}})
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("TTACGTTTACGTT")
	whole, err := Count(d, text, Options{Strategy: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(text); cut++ {
		first, err := Count(d, text[:cut], Options{Strategy: Sequential})
		if err != nil {
			t.Fatal(err)
		}
		second, err := Count(d, text[cut:], Options{Strategy: Sequential, StartState: &first.Final})
		if err != nil {
			t.Fatal(err)
		}
		if first.Matches+second.Matches != whole.Matches {
			t.Fatalf("cut %d: %d + %d != %d", cut, first.Matches, second.Matches, whole.Matches)
		}
	}
}

func TestFinalStateConsistentAcrossStrategies(t *testing.T) {
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	text := dna.NewGenerator(dna.Human, 31).Generate(1 << 19)
	seq, err := Count(d, text, Options{Strategy: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{WarmUp, Enumerative} {
		res, err := Count(d, text, Options{Strategy: s, Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		if res.Final != seq.Final {
			t.Errorf("%v final state %d != sequential %d", s, res.Final, seq.Final)
		}
	}
}

func TestStartStateValidation(t *testing.T) {
	d, err := automata.CompileMotifs([]dna.Motif{{Name: "m", Pattern: "ACGT"}})
	if err != nil {
		t.Fatal(err)
	}
	bad := int32(d.NumStates())
	if _, err := Count(d, []byte("ACGT"), Options{StartState: &bad}); err == nil {
		t.Fatal("out-of-range start state should fail")
	}
	neg := int32(-1)
	if _, err := Count(d, []byte("ACGT"), Options{StartState: &neg}); err == nil {
		t.Fatal("negative start state should fail")
	}
}

// Property: for any cut position and any strategy pair, section chaining
// preserves total counts and final states.
func TestSectionChainingProperty(t *testing.T) {
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	gen := dna.NewGenerator(dna.Mouse, 17)
	text := gen.Generate(1 << 16)
	whole, err := Count(d, text, Options{Strategy: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []Strategy{Sequential, WarmUp, Enumerative}
	f := func(cutRaw uint16, s1, s2 uint8) bool {
		cut := int(cutRaw) % (len(text) + 1)
		first, err := Count(d, text[:cut], Options{Strategy: strategies[int(s1)%3], Workers: 5})
		if err != nil {
			return false
		}
		second, err := Count(d, text[cut:], Options{Strategy: strategies[int(s2)%3], Workers: 3, StartState: &first.Final})
		if err != nil {
			return false
		}
		return first.Matches+second.Matches == whole.Matches && second.Final == whole.Final
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
