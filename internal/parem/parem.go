// Package parem implements parallel finite-automaton matching in the
// style of the authors' PaREM tool (Memeti & Pllana, "PaREM: A Novel
// Approach for Parallel Regular Expression Matching", CSE 2014), which the
// paper's DNA sequence analysis application is generated from.
//
// The hard part of data-parallel FA matching is that a chunk's initial
// automaton state depends on everything before it. Two exact strategies
// are provided:
//
//   - WarmUp: each worker first replays the ContextLen bytes preceding its
//     chunk to reconstruct the boundary state, then counts within the
//     chunk. Exact whenever the automaton's state provably depends only on
//     bounded trailing context (Aho-Corasick automata and determinized
//     patterns without unbounded repetition).
//
//   - Enumerative: each worker computes, in a single pass over its chunk,
//     the transition summary state -> (end state, match count) for every
//     possible entry state (this is PaREM's per-block transition-function
//     computation); a sequential fold over the summaries then yields the
//     exact global count. Works for arbitrary DFAs at a cost proportional
//     to the number of states.
//
// Both parallel strategies and the Sequential reference produce bit-equal
// match counts; property tests enforce that.
//
// Inputs are abstracted behind Source so that multi-gigabyte virtual
// sequences (dna.Generator) can be streamed without materializing them.
package parem

import (
	"fmt"
	"runtime"
	"sync"

	"hetopt/internal/automata"
	"hetopt/internal/dna"
)

// Source supplies input bytes by absolute position. Implementations must
// be safe for concurrent FillAt calls.
type Source interface {
	// FillAt copies the bytes at [pos, pos+len(dst)) into dst.
	FillAt(pos int64, dst []byte)
}

// Bytes adapts an in-memory slice to Source.
type Bytes []byte

// FillAt implements Source.
func (b Bytes) FillAt(pos int64, dst []byte) {
	copy(dst, b[pos:])
}

// Section returns a Source exposing src shifted by base: position p of the
// section reads position base+p of src. It is how the offload runtime
// hands each processor its share of the input.
func Section(src Source, base int64) Source {
	return &section{src: src, base: base}
}

type section struct {
	src  Source
	base int64
}

// FillAt implements Source.
func (s *section) FillAt(pos int64, dst []byte) {
	s.src.FillAt(s.base+pos, dst)
}

// Strategy selects the matching algorithm.
type Strategy int

const (
	// Auto picks WarmUp when the automaton advertises bounded context and
	// Enumerative otherwise (Sequential when only one worker is used).
	Auto Strategy = iota
	// Sequential streams the input on one goroutine.
	Sequential
	// WarmUp is the boundary-replay strategy (exact for bounded-context
	// automata).
	WarmUp
	// Enumerative is PaREM's all-states transition-summary strategy
	// (exact for every DFA).
	Enumerative
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case WarmUp:
		return "warmup"
	case Enumerative:
		return "enumerative"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// bufSize is the per-worker streaming buffer size. Chunks larger than
// this are processed in multiple refills.
const bufSize = 256 << 10

// Options configures Count.
type Options struct {
	// Strategy selects the algorithm; Auto by default.
	Strategy Strategy
	// Workers is the number of concurrent workers; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// ChunksPerWorker controls load-balancing granularity; <= 0 means 4.
	ChunksPerWorker int
	// StartState, when non-nil, is the automaton state entering the
	// input (instead of the DFA's start state). The offload runtime uses
	// it to resume the device share exactly where the host share left
	// off, so matches straddling the distribution boundary are never
	// lost.
	StartState *int32
}

// start resolves the effective entry state.
func (o Options) start(d *automata.DFA) (int32, error) {
	if o.StartState == nil {
		return d.Start, nil
	}
	s := *o.StartState
	if s < 0 || int(s) >= d.NumStates() {
		return 0, fmt.Errorf("parem: start state %d out of range [0,%d)", s, d.NumStates())
	}
	return s, nil
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Result reports a completed count.
type Result struct {
	// Matches is the total match multiplicity over the input.
	Matches uint64
	// Chunks is the number of independently processed chunks.
	Chunks int
	// Strategy is the algorithm actually used (Auto is resolved).
	Strategy Strategy
	// Final is the automaton state after the last input byte; feeding it
	// as StartState of a following section continues matching seamlessly.
	Final int32
}

// Count matches d over an in-memory text.
func Count(d *automata.DFA, text []byte, opt Options) (Result, error) {
	return CountSource(d, Bytes(text), int64(len(text)), opt)
}

// CountSource matches d over total bytes drawn from src.
func CountSource(d *automata.DFA, src Source, total int64, opt Options) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if total < 0 {
		return Result{}, fmt.Errorf("parem: negative input length %d", total)
	}
	strategy := opt.Strategy
	workers := opt.workers()
	if strategy == Auto {
		switch {
		case workers <= 1 || total < 2*bufSize:
			strategy = Sequential
		case d.ContextLen > 0:
			strategy = WarmUp
		default:
			strategy = Enumerative
		}
	}
	entry, err := opt.start(d)
	if err != nil {
		return Result{}, err
	}
	switch strategy {
	case Sequential:
		return countSequential(d, src, total, entry)
	case WarmUp:
		if d.ContextLen <= 0 {
			return Result{}, fmt.Errorf("parem: warm-up strategy requires a bounded-context automaton (ContextLen > 0)")
		}
		return countWarmUp(d, src, total, entry, workers, opt.chunks(workers, total))
	case Enumerative:
		return countEnumerative(d, src, total, entry, workers, opt.chunks(workers, total))
	default:
		return Result{}, fmt.Errorf("parem: unknown strategy %d", strategy)
	}
}

// chunks picks the chunk count: enough for load balancing, never so many
// that chunks vanish.
func (o Options) chunks(workers int, total int64) int {
	per := o.ChunksPerWorker
	if per <= 0 {
		per = 4
	}
	n := workers * per
	if int64(n) > total {
		n = int(total)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// chunkBounds returns the half-open range of chunk i of n over total.
func chunkBounds(i, n int, total int64) (lo, hi int64) {
	lo = int64(i) * total / int64(n)
	hi = int64(i+1) * total / int64(n)
	return lo, hi
}

func countSequential(d *automata.DFA, src Source, total int64, entry int32) (Result, error) {
	buf := make([]byte, bufSize)
	state := entry
	var matches uint64
	for pos := int64(0); pos < total; {
		n := int64(len(buf))
		if pos+n > total {
			n = total - pos
		}
		src.FillAt(pos, buf[:n])
		var c uint64
		c, state = d.CountFrom(state, buf[:n])
		matches += c
		pos += n
	}
	return Result{Matches: matches, Chunks: 1, Strategy: Sequential, Final: state}, nil
}

func countWarmUp(d *automata.DFA, src Source, total int64, entry int32, workers, chunks int) (Result, error) {
	counts := make([]uint64, chunks)
	finals := make([]int32, chunks)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < chunks; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, bufSize)
			for i := range next {
				lo, hi := chunkBounds(i, chunks, total)
				warmLo := lo - int64(d.ContextLen)
				// When the warm-up window reaches back to the section
				// start, the true entry state is known exactly; otherwise
				// any state converges within ContextLen bytes, so start
				// the replay from the DFA's start state.
				state := d.Start
				if warmLo <= 0 {
					warmLo = 0
					state = entry
				}
				// Replay the warm-up region without counting.
				for pos := warmLo; pos < lo; {
					n := int64(len(buf))
					if pos+n > lo {
						n = lo - pos
					}
					src.FillAt(pos, buf[:n])
					state = d.FinalState(state, buf[:n])
					pos += n
				}
				// Count inside the chunk.
				var c uint64
				for pos := lo; pos < hi; {
					n := int64(len(buf))
					if pos+n > hi {
						n = hi - pos
					}
					src.FillAt(pos, buf[:n])
					var cc uint64
					cc, state = d.CountFrom(state, buf[:n])
					c += cc
					pos += n
				}
				counts[i] = c
				finals[i] = state
			}
		}()
	}
	wg.Wait()
	var totalMatches uint64
	for _, c := range counts {
		totalMatches += c
	}
	final := entry
	if chunks > 0 && total > 0 {
		final = finals[chunks-1]
	}
	return Result{Matches: totalMatches, Chunks: chunks, Strategy: WarmUp, Final: final}, nil
}

// summary is the per-chunk transition summary of the enumerative strategy.
type summary struct {
	end   []int32  // end[s] = state after the chunk when entering in s
	count []uint64 // count[s] = matches inside the chunk when entering in s
}

func countEnumerative(d *automata.DFA, src Source, total int64, entry int32, workers, chunks int) (Result, error) {
	nStates := d.NumStates()
	summaries := make([]summary, chunks)
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for i := 0; i < chunks; i++ {
			next <- i
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, bufSize)
			for i := range next {
				lo, hi := chunkBounds(i, chunks, total)
				sum := summary{
					end:   make([]int32, nStates),
					count: make([]uint64, nStates),
				}
				for s := range sum.end {
					sum.end[s] = int32(s)
				}
				// One pass over the chunk, advancing the whole state
				// vector per byte: this is PaREM's per-block transition
				// function computation.
				for pos := lo; pos < hi; {
					n := int64(len(buf))
					if pos+n > hi {
						n = hi - pos
					}
					src.FillAt(pos, buf[:n])
					for _, b := range buf[:n] {
						stepVector(d, &sum, b)
					}
					pos += n
				}
				summaries[i] = sum
			}
		}()
	}
	wg.Wait()
	// Sequential fold of the summaries.
	state := entry
	var matches uint64
	for i := range summaries {
		matches += summaries[i].count[state]
		state = summaries[i].end[state]
	}
	return Result{Matches: matches, Chunks: chunks, Strategy: Enumerative, Final: state}, nil
}

// stepVector advances every entry of the summary's state vector by one
// input byte, accumulating per-entry match counts. Separator bytes reset
// every lane to the start state without counting, mirroring
// DFA.CountFrom's semantics exactly.
func stepVector(d *automata.DFA, sum *summary, b byte) {
	code, ok := dna.EncodeByte(b)
	if !ok {
		for s := range sum.end {
			sum.end[s] = d.Start
		}
		return
	}
	for s := range sum.end {
		ns := d.Next[sum.end[s]][code]
		sum.end[s] = ns
		sum.count[s] += uint64(d.Out[ns])
	}
}
