package parem

import (
	"testing"
	"testing/quick"

	"hetopt/internal/automata"
	"hetopt/internal/dna"
)

func TestCountInterleavedMatchesSequential(t *testing.T) {
	d := compileDefault(t)
	text := genText(41, 1<<19)
	want := d.CountMatches(text)
	for _, lanes := range []int{1, 2, 4, 8, 16} {
		got, err := CountInterleaved(d, text, lanes)
		if err != nil {
			t.Fatalf("%d lanes: %v", lanes, err)
		}
		if got != want {
			t.Fatalf("%d lanes: %d != %d", lanes, got, want)
		}
	}
}

func TestCountInterleavedValidation(t *testing.T) {
	d := compileDefault(t)
	if _, err := CountInterleaved(d, []byte("ACGT"), 0); err == nil {
		t.Error("zero lanes should fail")
	}
	if _, err := CountInterleaved(d, []byte("ACGT"), 17); err == nil {
		t.Error("17 lanes should fail")
	}
	unbounded, err := automata.CompilePattern("(AC)+G")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CountInterleaved(unbounded, []byte("ACGT"), 4); err == nil {
		t.Error("unbounded context with >1 lane should fail")
	}
	if _, err := CountInterleaved(unbounded, []byte("ACACG"), 1); err != nil {
		t.Errorf("single lane works for any automaton: %v", err)
	}
	if _, err := CountInterleaved(&automata.DFA{}, []byte("ACGT"), 2); err == nil {
		t.Error("invalid DFA should fail")
	}
}

func TestCountInterleavedTinyInput(t *testing.T) {
	// Inputs smaller than lanes*(ctx+1) fall back to sequential.
	d := compileDefault(t)
	text := []byte("GAATTC")
	got, err := CountInterleaved(d, text, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != d.CountMatches(text) {
		t.Fatal("tiny-input fallback broken")
	}
}

func TestCountInterleavedWithSeparators(t *testing.T) {
	d := compileDefault(t)
	text := genText(42, 1<<16)
	for i := 0; i < len(text); i += 997 {
		text[i] = 'N'
	}
	want := d.CountMatches(text)
	got, err := CountInterleaved(d, text, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("separators: %d != %d", got, want)
	}
}

// Property: interleaved counting is exact for any lane count and input
// size.
func TestCountInterleavedProperty(t *testing.T) {
	d := compileDefault(t)
	f := func(seed uint64, lanesRaw, sizeKB uint8) bool {
		lanes := int(lanesRaw)%16 + 1
		text := genText(seed, (int(sizeKB)%64+1)*1024)
		got, err := CountInterleaved(d, text, lanes)
		if err != nil {
			return false
		}
		return got == d.CountMatches(text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountInterleaved(b *testing.B) {
	b.ReportAllocs()
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		b.Fatal(err)
	}
	text := dna.NewGenerator(dna.Human, 9).Generate(4 << 20)
	for _, lanes := range []int{1, 2, 4, 8} {
		b.Run(lanesName(lanes), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				if _, err := CountInterleaved(d, text, lanes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func lanesName(n int) string {
	return map[int]string{1: "1lane", 2: "2lanes", 4: "4lanes", 8: "8lanes"}[n]
}
