package parem

import (
	"fmt"

	"hetopt/internal/automata"
	"hetopt/internal/dna"
)

// CountInterleaved is a latency-hiding matching kernel: it splits the
// input into lanes and advances lanes' automata in one
// interleaved loop, giving the CPU independent dependency chains per
// iteration (the scalar analogue of PaREM's SIMD vectorization, where the
// Xeon Phi's 512-bit units process many transitions at once). Lane
// boundaries are made exact the same way the parallel strategies are:
// warm-up replay for bounded-context automata.
//
// It is a single-goroutine kernel; the parallel strategies in this
// package distribute across cores, this one targets instruction-level
// parallelism within a core. Counts are bit-identical to
// DFA.CountMatches. Whether interleaving actually pays off is
// platform-dependent: table-walk loops are load-latency bound on
// out-of-order cores with good speculation, and Go's bounds checks add
// per-lane overhead — BenchmarkCountInterleaved quantifies the effect on
// the host at hand (on this reproduction's CI-class machines the scalar
// transformation does not win, which is itself a faithful data point: the
// paper's gains come from real SIMD gather hardware, not from the loop
// shape).
func CountInterleaved(d *automata.DFA, text []byte, lanes int) (uint64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if lanes < 1 || lanes > 16 {
		return 0, fmt.Errorf("parem: lane count %d outside [1,16]", lanes)
	}
	if d.ContextLen <= 0 && lanes > 1 {
		return 0, fmt.Errorf("parem: interleaved matching requires a bounded-context automaton")
	}
	if lanes == 1 || len(text) < lanes*(d.ContextLen+1) {
		return d.CountMatches(text), nil
	}

	// Lane l processes [bounds[l], bounds[l+1]).
	bounds := make([]int, lanes+1)
	for l := 0; l <= lanes; l++ {
		bounds[l] = l * len(text) / lanes
	}

	state := make([]int32, lanes)
	pos := make([]int, lanes)
	var count uint64

	// Warm-up: replay ContextLen bytes before each lane start (lane 0
	// starts exact).
	state[0] = d.Start
	pos[0] = bounds[0]
	for l := 1; l < lanes; l++ {
		warmLo := bounds[l] - d.ContextLen
		if warmLo < 0 {
			warmLo = 0
		}
		state[l] = d.FinalState(d.Start, text[warmLo:bounds[l]])
		pos[l] = bounds[l]
	}

	// Main interleaved loop over the shortest lane length.
	minLen := len(text)
	for l := 0; l < lanes; l++ {
		if n := bounds[l+1] - bounds[l]; n < minLen {
			minLen = n
		}
	}
	next := d.Next
	out := d.Out
	start := d.Start
	for step := 0; step < minLen; step++ {
		for l := 0; l < lanes; l++ {
			b := text[pos[l]]
			pos[l]++
			code, ok := dna.EncodeByte(b)
			if !ok {
				state[l] = start
				continue
			}
			s := next[state[l]][code]
			state[l] = s
			count += uint64(out[s])
		}
	}
	// Drain lane tails (uneven division).
	for l := 0; l < lanes; l++ {
		var c uint64
		c, _ = d.CountFrom(state[l], text[pos[l]:bounds[l+1]])
		count += c
	}
	return count, nil
}
