package parem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hetopt/internal/automata"
	"hetopt/internal/dna"
)

func compileDefault(t *testing.T) *automata.DFA {
	t.Helper()
	d, err := automata.CompileMotifs(dna.DefaultMotifs())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func genText(seed uint64, n int) []byte {
	g, err := dna.NewGenerator(dna.Human, seed).WithPlantedMotif("GAATTC", 200)
	if err != nil {
		panic(err)
	}
	return g.Generate(n)
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Auto: "auto", Sequential: "sequential", WarmUp: "warmup", Enumerative: "enumerative",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
	if got := Strategy(42).String(); got != "strategy(42)" {
		t.Errorf("unknown strategy string = %q", got)
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	d := compileDefault(t)
	text := genText(1, 1<<20)
	want := d.CountMatches(text)
	if want == 0 {
		t.Fatal("test input should contain matches")
	}
	for _, s := range []Strategy{Sequential, WarmUp, Enumerative} {
		res, err := Count(d, text, Options{Strategy: s, Workers: 8})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Matches != want {
			t.Errorf("%v: matches = %d, want %d", s, res.Matches, want)
		}
		if res.Strategy != s {
			t.Errorf("%v: reported strategy %v", s, res.Strategy)
		}
	}
}

func TestAutoSelectsWarmUpForBoundedContext(t *testing.T) {
	d := compileDefault(t)
	text := genText(2, 1<<20)
	res, err := Count(d, text, Options{Strategy: Auto, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != WarmUp {
		t.Fatalf("auto picked %v, want warmup for AC automaton", res.Strategy)
	}
}

func TestAutoSelectsEnumerativeForUnboundedContext(t *testing.T) {
	d, err := automata.CompilePattern("(AC)+G")
	if err != nil {
		t.Fatal(err)
	}
	if d.ContextLen != 0 {
		t.Fatalf("pattern should have unbounded context, got %d", d.ContextLen)
	}
	text := genText(3, 1<<20)
	res, err := Count(d, text, Options{Strategy: Auto, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != Enumerative {
		t.Fatalf("auto picked %v, want enumerative", res.Strategy)
	}
	seq, _ := Count(d, text, Options{Strategy: Sequential})
	if res.Matches != seq.Matches {
		t.Fatalf("enumerative %d != sequential %d", res.Matches, seq.Matches)
	}
}

func TestAutoSelectsSequentialForSmallInputs(t *testing.T) {
	d := compileDefault(t)
	res, err := Count(d, genText(4, 1024), Options{Strategy: Auto, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != Sequential {
		t.Fatalf("auto picked %v for tiny input, want sequential", res.Strategy)
	}
}

func TestWarmUpRequiresBoundedContext(t *testing.T) {
	d, err := automata.CompilePattern("(AC)+G")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Count(d, genText(5, 4096), Options{Strategy: WarmUp, Workers: 2}); err == nil {
		t.Fatal("warm-up on unbounded automaton must fail")
	}
}

func TestNegativeTotalRejected(t *testing.T) {
	d := compileDefault(t)
	if _, err := CountSource(d, Bytes(nil), -1, Options{}); err == nil {
		t.Fatal("negative total should fail")
	}
}

func TestInvalidDFARejected(t *testing.T) {
	if _, err := Count(&automata.DFA{}, []byte("ACGT"), Options{}); err == nil {
		t.Fatal("invalid DFA should fail")
	}
}

func TestEmptyInput(t *testing.T) {
	d := compileDefault(t)
	for _, s := range []Strategy{Sequential, WarmUp, Enumerative} {
		res, err := Count(d, nil, Options{Strategy: s, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Matches != 0 {
			t.Fatalf("%v: empty input matched %d times", s, res.Matches)
		}
	}
}

func TestSeparatorsAcrossChunks(t *testing.T) {
	// Separators near chunk boundaries must not change counts.
	d := compileDefault(t)
	text := genText(6, 1<<18)
	// Sprinkle N separators deterministically.
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		text[rng.Intn(len(text))] = 'N'
	}
	want, _ := Count(d, text, Options{Strategy: Sequential})
	for _, s := range []Strategy{WarmUp, Enumerative} {
		got, err := Count(d, text, Options{Strategy: s, Workers: 7, ChunksPerWorker: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got.Matches != want.Matches {
			t.Fatalf("%v with separators: %d != %d", s, got.Matches, want.Matches)
		}
	}
}

func TestCountSourceStreamsGenerator(t *testing.T) {
	// Virtual input: never materialized as a whole.
	g, err := dna.NewGenerator(dna.Mouse, 8).WithPlantedMotif("TATAAA", 1000)
	if err != nil {
		t.Fatal(err)
	}
	d, err := automata.CompileMotifs([]dna.Motif{{Name: "tata", Pattern: "TATAAA"}})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(4 << 20)
	res, err := CountSource(d, g, total, Options{Strategy: WarmUp, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches < uint64(g.PlantedCount(int(total))) {
		t.Fatalf("matches %d below planted %d", res.Matches, g.PlantedCount(int(total)))
	}
	seq, err := CountSource(d, g, total, Options{Strategy: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != seq.Matches {
		t.Fatalf("parallel %d != sequential %d", res.Matches, seq.Matches)
	}
}

func TestPlantedLowerBoundHolds(t *testing.T) {
	g, err := dna.NewGenerator(dna.Cat, 21).WithPlantedMotif("GCGGCCGC", 300)
	if err != nil {
		t.Fatal(err)
	}
	d, err := automata.CompileMotifs([]dna.Motif{{Name: "NotI", Pattern: "GCGGCCGC"}})
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 19
	res, err := CountSource(d, g, int64(n), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches < uint64(g.PlantedCount(n)) {
		t.Fatalf("matches %d < planted %d", res.Matches, g.PlantedCount(n))
	}
}

// Property: every strategy returns the same count for random inputs,
// worker counts, and chunk granularities.
func TestStrategyEquivalenceProperty(t *testing.T) {
	d := compileDefault(t)
	f := func(seed uint64, workers, chunksPer uint8, sizeKB uint16) bool {
		n := (int(sizeKB)%512 + 1) * 1024
		text := genText(seed, n)
		w := int(workers)%16 + 1
		cp := int(chunksPer)%8 + 1
		seq, err := Count(d, text, Options{Strategy: Sequential})
		if err != nil {
			return false
		}
		wu, err := Count(d, text, Options{Strategy: WarmUp, Workers: w, ChunksPerWorker: cp})
		if err != nil {
			return false
		}
		en, err := Count(d, text, Options{Strategy: Enumerative, Workers: w, ChunksPerWorker: cp})
		if err != nil {
			return false
		}
		return seq.Matches == wu.Matches && seq.Matches == en.Matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: enumerative equals sequential for unbounded-context automata.
func TestEnumerativeUnboundedProperty(t *testing.T) {
	d, err := automata.CompilePattern("(A|T)+C")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, workers uint8, sizeKB uint16) bool {
		n := (int(sizeKB)%256 + 1) * 1024
		text := genText(seed, n)
		seq, err := Count(d, text, Options{Strategy: Sequential})
		if err != nil {
			return false
		}
		en, err := Count(d, text, Options{Strategy: Enumerative, Workers: int(workers)%8 + 1})
		if err != nil {
			return false
		}
		return seq.Matches == en.Matches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
