package space

import (
	"fmt"
	"reflect"
	"testing"
)

func rangeSpace(t *testing.T) *Space {
	t.Helper()
	s, err := New(
		Param{Name: "a", Kind: Ordered, Values: []float64{0, 1, 2}},
		Param{Name: "b", Kind: Categorical, Values: []float64{0, 1}},
		Param{Name: "c", Kind: Ordered, Values: []float64{0, 1, 2, 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestForEachRangeMatchesForEach(t *testing.T) {
	s := rangeSpace(t)
	var full [][]int
	if err := s.ForEach(func(idx []int) error {
		full = append(full, append([]int(nil), idx...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(full) != s.Size() {
		t.Fatalf("ForEach visited %d points, want %d", len(full), s.Size())
	}
	// Stitching any sharding of [0, Size()) back together must reproduce
	// the full enumeration, with ordinals matching Flatten.
	for _, bounds := range [][]int{
		{0, s.Size()},
		{0, 7, s.Size()},
		{0, 1, 2, 3, s.Size()},
		{0, 0, 5, 5, s.Size()},
	} {
		var got [][]int
		for i := 0; i+1 < len(bounds); i++ {
			err := s.ForEachRange(bounds[i], bounds[i+1], func(ord int, idx []int) error {
				want, err := s.Flatten(idx)
				if err != nil {
					return err
				}
				if ord != want {
					return fmt.Errorf("ordinal %d for index %v, want %d", ord, idx, want)
				}
				got = append(got, append([]int(nil), idx...))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(full, got) {
			t.Fatalf("sharding %v diverged from ForEach", bounds)
		}
	}
}

func TestForEachRangeValidation(t *testing.T) {
	s := rangeSpace(t)
	for _, bad := range [][2]int{{-1, 5}, {0, s.Size() + 1}, {5, 4}} {
		if err := s.ForEachRange(bad[0], bad[1], func(int, []int) error { return nil }); err == nil {
			t.Errorf("range %v should fail", bad)
		}
	}
	if err := s.ForEachRange(3, 3, func(int, []int) error {
		t.Error("empty range must not call fn")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachRangeAbortsOnError(t *testing.T) {
	s := rangeSpace(t)
	calls := 0
	err := s.ForEachRange(0, s.Size(), func(ord int, _ []int) error {
		calls++
		if ord == 4 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil || calls != 5 {
		t.Fatalf("err=%v calls=%d, want error after 5 calls", err, calls)
	}
}
