package space

import (
	"math/rand"
	"testing"
)

func BenchmarkForEachPaperSpace(b *testing.B) {
	b.ReportAllocs()
	sc := PaperSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		err := sc.Space().ForEach(func(idx []int) error {
			count++
			return nil
		})
		if err != nil || count != 19926 {
			b.Fatalf("count = %d, err = %v", count, err)
		}
	}
}

func BenchmarkConfigDecode(b *testing.B) {
	b.ReportAllocs()
	sc := PaperSchema()
	idx := []int{3, 1, 8, 0, 24}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Config(idx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighbor(b *testing.B) {
	b.ReportAllocs()
	sc := PaperSchema()
	rng := rand.New(rand.NewSource(1))
	idx := sc.Space().Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Space().Neighbor(idx, idx, rng, StepMove)
	}
}
