package space

import (
	"fmt"

	"hetopt/internal/machine"
)

// Parameter positions inside the heterogeneous schema's index vectors.
const (
	ParamHostThreads = iota
	ParamHostAffinity
	ParamDeviceThreads
	ParamDeviceAffinity
	ParamHostFraction
	numParams
)

// Config is the typed view of one system configuration: the decision
// variables of the paper's optimization problem.
type Config struct {
	// HostThreads and DeviceThreads are the software thread counts.
	HostThreads, DeviceThreads int
	// HostAffinity and DeviceAffinity are the pinning strategies.
	HostAffinity, DeviceAffinity machine.Affinity
	// HostFraction is the percentage of the workload mapped to the host
	// (0-100); the device receives 100 - HostFraction.
	HostFraction float64
}

// DeviceFraction returns the percentage of work mapped to the device.
func (c Config) DeviceFraction() float64 { return 100 - c.HostFraction }

// String renders the configuration the way the paper writes distribution
// ratios, e.g. "60/40 host(24T,scatter) device(120T,balanced)".
func (c Config) String() string {
	return fmt.Sprintf("%g/%g host(%dT,%s) device(%dT,%s)",
		c.HostFraction, c.DeviceFraction(),
		c.HostThreads, c.HostAffinity, c.DeviceThreads, c.DeviceAffinity)
}

// Schema binds the generic Space to the heterogeneous Config view.
type Schema struct {
	space       *Space
	hostThreads []int
	hostAff     []machine.Affinity
	devThreads  []int
	devAff      []machine.Affinity
	fractions   []float64
}

// SchemaSpec lists the value sets of a heterogeneous schema.
type SchemaSpec struct {
	HostThreads      []int
	HostAffinities   []machine.Affinity
	DeviceThreads    []int
	DeviceAffinities []machine.Affinity
	// Fractions holds the host workload percentages (0-100).
	Fractions []float64
}

// NewSchema builds a Schema from explicit value sets.
func NewSchema(spec SchemaSpec) (*Schema, error) {
	if len(spec.HostThreads) == 0 || len(spec.DeviceThreads) == 0 ||
		len(spec.HostAffinities) == 0 || len(spec.DeviceAffinities) == 0 ||
		len(spec.Fractions) == 0 {
		return nil, fmt.Errorf("space: schema spec has an empty value set")
	}
	for _, f := range spec.Fractions {
		if f < 0 || f > 100 {
			return nil, fmt.Errorf("space: fraction %g outside [0,100]", f)
		}
	}
	toF := func(xs []int) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		return out
	}
	affParam := func(name string, affs []machine.Affinity) Param {
		vals := make([]float64, len(affs))
		labels := make([]string, len(affs))
		for i, a := range affs {
			vals[i] = float64(a)
			labels[i] = a.String()
		}
		return Param{Name: name, Kind: Categorical, Values: vals, Labels: labels}
	}
	sp, err := New(
		Param{Name: "host-threads", Kind: Ordered, Values: toF(spec.HostThreads)},
		affParam("host-affinity", spec.HostAffinities),
		Param{Name: "device-threads", Kind: Ordered, Values: toF(spec.DeviceThreads)},
		affParam("device-affinity", spec.DeviceAffinities),
		Param{Name: "host-fraction", Kind: Ordered, Values: append([]float64(nil), spec.Fractions...)},
	)
	if err != nil {
		return nil, err
	}
	return &Schema{
		space:       sp,
		hostThreads: append([]int(nil), spec.HostThreads...),
		hostAff:     append([]machine.Affinity(nil), spec.HostAffinities...),
		devThreads:  append([]int(nil), spec.DeviceThreads...),
		devAff:      append([]machine.Affinity(nil), spec.DeviceAffinities...),
		fractions:   append([]float64(nil), spec.Fractions...),
	}, nil
}

// PaperSpec returns the evaluation configuration space of Section IV-A:
// host threads {2,6,12,24,36,48}, device threads
// {2,4,8,16,30,60,120,180,240}, the three affinities per side, and the
// DNA-fraction grid in 2.5% steps (41 values, 0-100). Its size is
// 6*3*9*3*41 = 19,926, matching the paper's enumeration experiment count.
func PaperSpec() SchemaSpec {
	fractions := make([]float64, 0, 41)
	for f := 0.0; f <= 100; f += 2.5 {
		fractions = append(fractions, f)
	}
	return SchemaSpec{
		HostThreads:      []int{2, 6, 12, 24, 36, 48},
		HostAffinities:   []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact},
		DeviceThreads:    []int{2, 4, 8, 16, 30, 60, 120, 180, 240},
		DeviceAffinities: []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact},
		Fractions:        fractions,
	}
}

// Table1Spec returns the full Table I space, whose host thread set also
// includes 4 and whose fraction grid is every integer percentage 0-100.
func Table1Spec() SchemaSpec {
	fractions := make([]float64, 101)
	for i := range fractions {
		fractions[i] = float64(i)
	}
	spec := PaperSpec()
	spec.HostThreads = []int{2, 4, 6, 12, 24, 36, 48}
	spec.Fractions = fractions
	return spec
}

// PaperSchema returns the schema for PaperSpec; it panics only on
// programmer error (the spec is statically valid).
func PaperSchema() *Schema {
	sc, err := NewSchema(PaperSpec())
	if err != nil {
		panic(err)
	}
	return sc
}

// Space exposes the underlying generic space.
func (sc *Schema) Space() *Space { return sc.space }

// Size returns the number of configurations.
func (sc *Schema) Size() int { return sc.space.Size() }

// Config decodes an index vector into the typed view.
func (sc *Schema) Config(idx []int) (Config, error) {
	if err := sc.space.ValidateIndex(idx); err != nil {
		return Config{}, err
	}
	return Config{
		HostThreads:    sc.hostThreads[idx[ParamHostThreads]],
		HostAffinity:   sc.hostAff[idx[ParamHostAffinity]],
		DeviceThreads:  sc.devThreads[idx[ParamDeviceThreads]],
		DeviceAffinity: sc.devAff[idx[ParamDeviceAffinity]],
		HostFraction:   sc.fractions[idx[ParamHostFraction]],
	}, nil
}

// Index encodes a typed configuration back into an index vector. Every
// field must be one of the schema's levels.
func (sc *Schema) Index(cfg Config) ([]int, error) {
	idx := make([]int, numParams)
	find := func(name string, want float64, values []float64) (int, error) {
		for i, v := range values {
			if v == want {
				return i, nil
			}
		}
		return 0, fmt.Errorf("space: %s value %g not in schema", name, want)
	}
	var err error
	if idx[ParamHostThreads], err = find("host-threads", float64(cfg.HostThreads), sc.space.Params[ParamHostThreads].Values); err != nil {
		return nil, err
	}
	if idx[ParamHostAffinity], err = find("host-affinity", float64(cfg.HostAffinity), sc.space.Params[ParamHostAffinity].Values); err != nil {
		return nil, err
	}
	if idx[ParamDeviceThreads], err = find("device-threads", float64(cfg.DeviceThreads), sc.space.Params[ParamDeviceThreads].Values); err != nil {
		return nil, err
	}
	if idx[ParamDeviceAffinity], err = find("device-affinity", float64(cfg.DeviceAffinity), sc.space.Params[ParamDeviceAffinity].Values); err != nil {
		return nil, err
	}
	if idx[ParamHostFraction], err = find("host-fraction", cfg.HostFraction, sc.space.Params[ParamHostFraction].Values); err != nil {
		return nil, err
	}
	return idx, nil
}

// HostThreadValues returns the host thread levels (copy).
func (sc *Schema) HostThreadValues() []int {
	return append([]int(nil), sc.hostThreads...)
}

// DeviceThreadValues returns the device thread levels (copy).
func (sc *Schema) DeviceThreadValues() []int {
	return append([]int(nil), sc.devThreads...)
}

// HostAffinityValues returns the host affinity levels (copy).
func (sc *Schema) HostAffinityValues() []machine.Affinity {
	return append([]machine.Affinity(nil), sc.hostAff...)
}

// DeviceAffinityValues returns the device affinity levels (copy).
func (sc *Schema) DeviceAffinityValues() []machine.Affinity {
	return append([]machine.Affinity(nil), sc.devAff...)
}

// FractionValues returns the fraction grid (copy).
func (sc *Schema) FractionValues() []float64 {
	return append([]float64(nil), sc.fractions...)
}
