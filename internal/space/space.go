// Package space models the discrete system-configuration space of the
// paper's Table I: the number of host and device threads, the host and
// device thread affinities, and the workload fraction assigned to the
// host (the device receives the remainder). It provides the generic
// machinery the optimization methods need — exhaustive enumeration
// (Equation 1: the space size is the product of the parameter value
// ranges), uniform random sampling, and neighborhood moves for simulated
// annealing — together with a typed view of a point in the space.
package space

import (
	"fmt"
	"math/rand"
)

// Kind distinguishes parameter semantics for neighborhood moves.
type Kind int

const (
	// Ordered parameters have a meaningful value ordering (thread counts,
	// fractions); neighbor moves step to adjacent levels.
	Ordered Kind = iota
	// Categorical parameters have unordered values (affinities); neighbor
	// moves resample uniformly among the other values.
	Categorical
)

// Param is one discrete parameter with a fixed set of levels.
type Param struct {
	// Name identifies the parameter in reports.
	Name string
	// Kind selects neighborhood semantics.
	Kind Kind
	// Values holds the numeric levels in presentation order (for
	// categorical parameters these are arbitrary distinct codes).
	Values []float64
	// Labels optionally names each level (used by categorical
	// parameters).
	Labels []string

	// genLabels caches %g-formatted fallback labels for parameters
	// without explicit Labels. New fills it so Label never formats on
	// the hot path; zero-value Params fall back to formatting.
	genLabels []string
}

// Levels returns the number of values the parameter can take.
func (p *Param) Levels() int { return len(p.Values) }

// Label returns the human-readable form of level i.
func (p *Param) Label(i int) string {
	if len(p.Labels) == len(p.Values) {
		return p.Labels[i]
	}
	if len(p.genLabels) == len(p.Values) {
		return p.genLabels[i]
	}
	return fmt.Sprintf("%g", p.Values[i])
}

// Validate checks structural sanity.
func (p *Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("space: parameter with empty name")
	}
	if len(p.Values) == 0 {
		return fmt.Errorf("space: parameter %q has no values", p.Name)
	}
	if p.Labels != nil && len(p.Labels) != len(p.Values) {
		return fmt.Errorf("space: parameter %q has %d labels for %d values", p.Name, len(p.Labels), len(p.Values))
	}
	seen := map[float64]bool{}
	for _, v := range p.Values {
		if seen[v] {
			return fmt.Errorf("space: parameter %q has duplicate value %g", p.Name, v)
		}
		seen[v] = true
	}
	return nil
}

// Space is an ordered list of parameters; a point in the space is an
// index vector with one level index per parameter.
type Space struct {
	Params []Param
}

// New validates the parameters and assembles a Space.
func New(params ...Param) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("space: no parameters")
	}
	for i := range params {
		if err := params[i].Validate(); err != nil {
			return nil, err
		}
		if params[i].Labels == nil {
			gen := make([]string, len(params[i].Values))
			for j, v := range params[i].Values {
				gen[j] = fmt.Sprintf("%g", v)
			}
			params[i].genLabels = gen
		}
	}
	return &Space{Params: params}, nil
}

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.Params) }

// Size returns the total number of configurations, the product of the
// per-parameter ranges (Equation 1 of the paper).
func (s *Space) Size() int {
	n := 1
	for i := range s.Params {
		n *= s.Params[i].Levels()
	}
	return n
}

// ValidateIndex checks that idx addresses a point inside the space.
func (s *Space) ValidateIndex(idx []int) error {
	if len(idx) != s.Dim() {
		return fmt.Errorf("space: index has %d entries for %d parameters", len(idx), s.Dim())
	}
	for i, v := range idx {
		if v < 0 || v >= s.Params[i].Levels() {
			return fmt.Errorf("space: parameter %q index %d out of range [0,%d)", s.Params[i].Name, v, s.Params[i].Levels())
		}
	}
	return nil
}

// Flatten maps an index vector to a unique ordinal in [0, Size()).
func (s *Space) Flatten(idx []int) (int, error) {
	if err := s.ValidateIndex(idx); err != nil {
		return 0, err
	}
	ord := 0
	for i, v := range idx {
		ord = ord*s.Params[i].Levels() + v
	}
	return ord, nil
}

// Unflatten is the inverse of Flatten.
func (s *Space) Unflatten(ord int) ([]int, error) {
	if ord < 0 || ord >= s.Size() {
		return nil, fmt.Errorf("space: ordinal %d out of range [0,%d)", ord, s.Size())
	}
	idx := make([]int, s.Dim())
	for i := s.Dim() - 1; i >= 0; i-- {
		l := s.Params[i].Levels()
		idx[i] = ord % l
		ord /= l
	}
	return idx, nil
}

// ForEach enumerates every configuration in lexicographic order, calling
// fn with an index vector that is reused between calls (copy it to
// retain). A non-nil error from fn aborts the enumeration and is
// returned.
func (s *Space) ForEach(fn func(idx []int) error) error {
	return s.ForEachRange(0, s.Size(), func(_ int, idx []int) error {
		return fn(idx)
	})
}

// ForEachRange enumerates the configurations with ordinals in [start, end)
// in lexicographic order, calling fn with the ordinal and an index vector
// that is reused between calls (copy it to retain). Lexicographic order
// coincides with ordinal (Flatten) order, so contiguous ordinal ranges
// shard the space for parallel enumeration. A non-nil error from fn
// aborts the enumeration and is returned.
func (s *Space) ForEachRange(start, end int, fn func(ord int, idx []int) error) error {
	if start < 0 || end > s.Size() || start > end {
		return fmt.Errorf("space: range [%d,%d) outside [0,%d]", start, end, s.Size())
	}
	if start == end {
		return nil
	}
	idx, err := s.Unflatten(start)
	if err != nil {
		return err
	}
	for ord := start; ; {
		if err := fn(ord, idx); err != nil {
			return err
		}
		if ord++; ord >= end {
			return nil
		}
		// Odometer increment.
		for i := s.Dim() - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < s.Params[i].Levels() {
				break
			}
			idx[i] = 0
		}
	}
}

// Random fills a uniformly random configuration.
func (s *Space) Random(rng *rand.Rand) []int {
	idx := make([]int, s.Dim())
	for i := range idx {
		idx[i] = rng.Intn(s.Params[i].Levels())
	}
	return idx
}

// NeighborMode selects the neighborhood structure used by Neighbor.
type NeighborMode int

const (
	// StepMove perturbs one parameter: ordered parameters step +-1 level,
	// categorical ones resample. This is the default and matches how SA
	// walks smooth landscapes.
	StepMove NeighborMode = iota
	// ResampleMove resamples one parameter uniformly (ordered or not);
	// used by the neighborhood ablation.
	ResampleMove
)

// Neighbor writes into dst a neighbor of src according to mode: exactly
// one randomly chosen parameter changes. dst and src may alias. Parameters
// with a single level are skipped; if every parameter has one level,
// Neighbor copies src.
func (s *Space) Neighbor(dst, src []int, rng *rand.Rand, mode NeighborMode) {
	copy(dst, src)
	// Collect movable parameters once per call.
	movable := 0
	for i := range s.Params {
		if s.Params[i].Levels() > 1 {
			movable++
		}
	}
	if movable == 0 {
		return
	}
	pick := rng.Intn(movable)
	pi := -1
	for i := range s.Params {
		if s.Params[i].Levels() > 1 {
			if pick == 0 {
				pi = i
				break
			}
			pick--
		}
	}
	p := &s.Params[pi]
	cur := src[pi]
	if mode == StepMove && p.Kind == Ordered {
		// Step +-1, reflecting at the boundaries.
		if cur == 0 {
			dst[pi] = 1
		} else if cur == p.Levels()-1 {
			dst[pi] = cur - 1
		} else if rng.Intn(2) == 0 {
			dst[pi] = cur - 1
		} else {
			dst[pi] = cur + 1
		}
		return
	}
	// Uniform resample among the other levels.
	nv := rng.Intn(p.Levels() - 1)
	if nv >= cur {
		nv++
	}
	dst[pi] = nv
}
