package space

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallSpace(t *testing.T) *Space {
	t.Helper()
	s, err := New(
		Param{Name: "a", Kind: Ordered, Values: []float64{1, 2, 3}},
		Param{Name: "b", Kind: Categorical, Values: []float64{0, 1}, Labels: []string{"x", "y"}},
		Param{Name: "c", Kind: Ordered, Values: []float64{10, 20, 30, 40}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty space should fail")
	}
	if _, err := New(Param{Name: "", Values: []float64{1}}); err == nil {
		t.Error("unnamed parameter should fail")
	}
	if _, err := New(Param{Name: "a"}); err == nil {
		t.Error("no values should fail")
	}
	if _, err := New(Param{Name: "a", Values: []float64{1, 1}}); err == nil {
		t.Error("duplicate values should fail")
	}
	if _, err := New(Param{Name: "a", Values: []float64{1, 2}, Labels: []string{"x"}}); err == nil {
		t.Error("label/value mismatch should fail")
	}
}

func TestSizeIsProductOfRanges(t *testing.T) {
	s := smallSpace(t)
	if got := s.Size(); got != 3*2*4 {
		t.Fatalf("Size = %d, want 24 (Equation 1)", got)
	}
}

func TestParamLabel(t *testing.T) {
	s := smallSpace(t)
	if got := s.Params[1].Label(1); got != "y" {
		t.Errorf("categorical label = %q, want y", got)
	}
	if got := s.Params[0].Label(2); got != "3" {
		t.Errorf("numeric label = %q, want 3", got)
	}
}

func TestValidateIndex(t *testing.T) {
	s := smallSpace(t)
	if err := s.ValidateIndex([]int{0, 1, 3}); err != nil {
		t.Errorf("valid index rejected: %v", err)
	}
	if err := s.ValidateIndex([]int{0, 1}); err == nil {
		t.Error("short index should fail")
	}
	if err := s.ValidateIndex([]int{0, 2, 0}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if err := s.ValidateIndex([]int{-1, 0, 0}); err == nil {
		t.Error("negative index should fail")
	}
}

func TestForEachCoversSpaceExactlyOnce(t *testing.T) {
	s := smallSpace(t)
	seen := map[int]bool{}
	err := s.ForEach(func(idx []int) error {
		ord, err := s.Flatten(idx)
		if err != nil {
			return err
		}
		if seen[ord] {
			t.Fatalf("ordinal %d visited twice", ord)
		}
		seen[ord] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != s.Size() {
		t.Fatalf("visited %d of %d configurations", len(seen), s.Size())
	}
}

func TestForEachAbortsOnError(t *testing.T) {
	s := smallSpace(t)
	calls := 0
	err := s.ForEach(func(idx []int) error {
		calls++
		if calls == 5 {
			return errSentinel
		}
		return nil
	})
	if err != errSentinel || calls != 5 {
		t.Fatalf("err = %v after %d calls", err, calls)
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	s := smallSpace(t)
	for ord := 0; ord < s.Size(); ord++ {
		idx, err := s.Unflatten(ord)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Flatten(idx)
		if err != nil {
			t.Fatal(err)
		}
		if back != ord {
			t.Fatalf("round trip %d -> %v -> %d", ord, idx, back)
		}
	}
	if _, err := s.Unflatten(-1); err == nil {
		t.Error("negative ordinal should fail")
	}
	if _, err := s.Unflatten(s.Size()); err == nil {
		t.Error("overflow ordinal should fail")
	}
}

func TestRandomStaysInBounds(t *testing.T) {
	s := smallSpace(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if err := s.ValidateIndex(s.Random(rng)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNeighborChangesExactlyOneParameter(t *testing.T) {
	s := smallSpace(t)
	rng := rand.New(rand.NewSource(2))
	src := s.Random(rng)
	dst := make([]int, s.Dim())
	for trial := 0; trial < 300; trial++ {
		for _, mode := range []NeighborMode{StepMove, ResampleMove} {
			s.Neighbor(dst, src, rng, mode)
			if err := s.ValidateIndex(dst); err != nil {
				t.Fatal(err)
			}
			diff := 0
			for i := range dst {
				if dst[i] != src[i] {
					diff++
				}
			}
			if diff != 1 {
				t.Fatalf("mode %d: %d parameters changed, want 1", mode, diff)
			}
		}
	}
}

func TestNeighborStepMovesAreAdjacent(t *testing.T) {
	s := smallSpace(t)
	rng := rand.New(rand.NewSource(3))
	src := []int{1, 0, 2}
	dst := make([]int, 3)
	for trial := 0; trial < 200; trial++ {
		s.Neighbor(dst, src, rng, StepMove)
		for i := range dst {
			if dst[i] == src[i] {
				continue
			}
			if s.Params[i].Kind == Ordered {
				d := dst[i] - src[i]
				if d != 1 && d != -1 {
					t.Fatalf("ordered parameter %d jumped %d levels", i, d)
				}
			}
		}
	}
}

func TestNeighborSingleLevelSpace(t *testing.T) {
	s, err := New(Param{Name: "only", Values: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	dst := []int{0}
	s.Neighbor(dst, []int{0}, rng, StepMove)
	if dst[0] != 0 {
		t.Fatal("single-level space should stay put")
	}
}

func TestNeighborAliasingAllowed(t *testing.T) {
	s := smallSpace(t)
	rng := rand.New(rand.NewSource(5))
	idx := s.Random(rng)
	for i := 0; i < 100; i++ {
		s.Neighbor(idx, idx, rng, StepMove)
		if err := s.ValidateIndex(idx); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: Flatten is a bijection onto [0, Size).
func TestFlattenBijectionProperty(t *testing.T) {
	s := smallSpace(t)
	f := func(a, b, c uint8) bool {
		idx := []int{int(a) % 3, int(b) % 2, int(c) % 4}
		ord, err := s.Flatten(idx)
		if err != nil || ord < 0 || ord >= s.Size() {
			return false
		}
		back, err := s.Unflatten(ord)
		if err != nil {
			return false
		}
		for i := range idx {
			if back[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
