package space

import (
	"strings"
	"testing"

	"hetopt/internal/machine"
)

func TestPaperSpecSize(t *testing.T) {
	sc, err := NewSchema(PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Section IV-C: "19926 experiments were required when we used
	// enumeration".
	if got := sc.Size(); got != 19926 {
		t.Fatalf("paper space size = %d, want 19926", got)
	}
}

func TestTable1SpecSize(t *testing.T) {
	sc, err := NewSchema(Table1Spec())
	if err != nil {
		t.Fatal(err)
	}
	// 7 host threads x 3 x 9 x 3 x 101 fractions.
	if got := sc.Size(); got != 7*3*9*3*101 {
		t.Fatalf("table 1 space size = %d", got)
	}
}

func TestSchemaConfigRoundTrip(t *testing.T) {
	sc := PaperSchema()
	err := sc.Space().ForEach(func(idx []int) error {
		cfg, err := sc.Config(idx)
		if err != nil {
			return err
		}
		back, err := sc.Index(cfg)
		if err != nil {
			return err
		}
		for i := range idx {
			if back[i] != idx[i] {
				t.Fatalf("round trip failed at %v -> %+v -> %v", idx, cfg, back)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchemaFractionComplement(t *testing.T) {
	sc := PaperSchema()
	idx, err := sc.Index(Config{
		HostThreads: 24, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 120, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Config(idx)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DeviceFraction() != 40 {
		t.Fatalf("device fraction = %g, want 40", cfg.DeviceFraction())
	}
}

func TestSchemaIndexRejectsForeignValues(t *testing.T) {
	sc := PaperSchema()
	bad := []Config{
		{HostThreads: 7, HostAffinity: machine.AffinityScatter, DeviceThreads: 60, DeviceAffinity: machine.AffinityBalanced, HostFraction: 50},
		{HostThreads: 24, HostAffinity: machine.AffinityBalanced, DeviceThreads: 60, DeviceAffinity: machine.AffinityBalanced, HostFraction: 50},
		{HostThreads: 24, HostAffinity: machine.AffinityScatter, DeviceThreads: 61, DeviceAffinity: machine.AffinityBalanced, HostFraction: 50},
		{HostThreads: 24, HostAffinity: machine.AffinityScatter, DeviceThreads: 60, DeviceAffinity: machine.AffinityNone, HostFraction: 50},
		{HostThreads: 24, HostAffinity: machine.AffinityScatter, DeviceThreads: 60, DeviceAffinity: machine.AffinityBalanced, HostFraction: 51},
	}
	for i, cfg := range bad {
		if _, err := sc.Index(cfg); err == nil {
			t.Errorf("config %d (%v) should be rejected", i, cfg)
		}
	}
}

func TestSchemaSpecValidation(t *testing.T) {
	spec := PaperSpec()
	spec.Fractions = nil
	if _, err := NewSchema(spec); err == nil {
		t.Error("empty fractions should fail")
	}
	spec = PaperSpec()
	spec.Fractions = []float64{-1}
	if _, err := NewSchema(spec); err == nil {
		t.Error("negative fraction should fail")
	}
	spec = PaperSpec()
	spec.Fractions = []float64{101}
	if _, err := NewSchema(spec); err == nil {
		t.Error("fraction > 100 should fail")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{HostThreads: 24, HostAffinity: machine.AffinityScatter, DeviceThreads: 120, DeviceAffinity: machine.AffinityBalanced, HostFraction: 60}
	s := c.String()
	for _, want := range []string{"60/40", "24T", "scatter", "120T", "balanced"} {
		if !strings.Contains(s, want) {
			t.Errorf("Config.String() = %q missing %q", s, want)
		}
	}
}

func TestSchemaAccessorsCopy(t *testing.T) {
	sc := PaperSchema()
	ht := sc.HostThreadValues()
	ht[0] = 999
	if sc.HostThreadValues()[0] == 999 {
		t.Error("HostThreadValues must return a copy")
	}
	fr := sc.FractionValues()
	if len(fr) != 41 {
		t.Errorf("fraction grid = %d values, want 41", len(fr))
	}
	if got := len(sc.DeviceThreadValues()); got != 9 {
		t.Errorf("device thread levels = %d, want 9", got)
	}
	if got := len(sc.HostAffinityValues()); got != 3 {
		t.Errorf("host affinities = %d, want 3", got)
	}
	if got := len(sc.DeviceAffinityValues()); got != 3 {
		t.Errorf("device affinities = %d, want 3", got)
	}
}
