package machine

import "fmt"

// Placement describes how a number of software threads lands on the
// hardware after applying an affinity strategy.
type Placement struct {
	// Threads is the number of software threads placed.
	Threads int
	// CoresUsed is the number of distinct physical cores that received at
	// least one thread.
	CoresUsed int
	// SocketsUsed is the number of distinct packages that received at
	// least one thread.
	SocketsUsed int
	// ThreadsOnCore[i] is the number of cores carrying exactly i+1
	// threads; the slice has length Processor.ThreadsPerCore.
	ThreadsOnCore []int
	// OSManaged is true when the placement is delegated to the operating
	// system (AffinityNone): the occupancy fields then describe the
	// expected steady-state layout rather than a pinned one.
	OSManaged bool
}

// MaxShare returns the largest number of threads sharing one core.
func (pl Placement) MaxShare() int {
	for i := len(pl.ThreadsOnCore) - 1; i >= 0; i-- {
		if pl.ThreadsOnCore[i] > 0 {
			return i + 1
		}
	}
	return 0
}

// Place computes the placement of n software threads under affinity a.
//
// Semantics follow Intel's KMP_AFFINITY types:
//
//   - compact fills all hardware threads of a core before using the next
//     core, and all cores of a socket before the next socket;
//   - scatter round-robins threads across sockets first, then cores, so
//     the maximum number of cores participates and per-core sharing is as
//     even as possible;
//   - balanced (device) spreads across cores like scatter but keeps
//     consecutive thread ids adjacent; occupancy-wise it matches scatter
//     on a single-socket device, which is how it is modeled here;
//   - none (host) lets the OS schedule; the expected layout equals
//     scatter, with OSManaged set so the performance model can apply its
//     migration penalty.
//
// Threads beyond the processor's capacity oversubscribe: the placement
// wraps around, so MaxShare can exceed ThreadsPerCore only when n exceeds
// TotalThreads. Place returns an error when n is not positive or the
// affinity is unsupported by the processor.
func Place(p *Processor, n int, a Affinity) (Placement, error) {
	if err := p.Validate(); err != nil {
		return Placement{}, err
	}
	if n <= 0 {
		return Placement{}, fmt.Errorf("machine: thread count must be positive, got %d", n)
	}
	if !p.SupportsAffinity(a) {
		return Placement{}, fmt.Errorf("machine: %s does not support affinity %q", p.Name, a)
	}

	cores := p.TotalCores()
	tpc := p.ThreadsPerCore
	capacity := cores * tpc

	// perCore[i] counts software threads on physical core i. Cores are
	// numbered socket-major: cores [0, CoresPerSocket) sit on socket 0,
	// etc. Reserved cores are removed from the end (the Phi's OS core).
	perCore := make([]int, cores)

	effective := a
	osManaged := false
	if a == AffinityNone {
		effective = AffinityScatter
		osManaged = true
	}
	if a == AffinityBalanced {
		effective = AffinityScatter
	}

	switch effective {
	case AffinityCompact:
		for t := 0; t < n; t++ {
			slot := t % capacity
			perCore[slot/tpc]++
		}
	case AffinityScatter:
		for t := 0; t < n; t++ {
			slot := t % capacity
			idx := slot % cores
			// Round-robin across sockets: thread k of an SMT layer goes
			// to socket k%Sockets, core (k/Sockets) within that socket.
			socket := idx % p.Sockets
			coreInSocket := idx / p.Sockets
			core := socket*p.CoresPerSocket + coreInSocket
			if core >= cores {
				// Reserved cores are cut from the end of the numbering;
				// wrap onto the first cores instead.
				core = (core - cores) % cores
			}
			perCore[core]++
		}
	default:
		return Placement{}, fmt.Errorf("machine: unhandled affinity %q", a)
	}

	pl := Placement{
		Threads:       n,
		ThreadsOnCore: make([]int, maxInt(tpc, ceilDiv(n, cores))),
		OSManaged:     osManaged,
	}
	socketsSeen := make(map[int]bool)
	for core, cnt := range perCore {
		if cnt == 0 {
			continue
		}
		pl.CoresUsed++
		socketsSeen[core/p.CoresPerSocket] = true
		if cnt > len(pl.ThreadsOnCore) {
			grown := make([]int, cnt)
			copy(grown, pl.ThreadsOnCore)
			pl.ThreadsOnCore = grown
		}
		pl.ThreadsOnCore[cnt-1]++
	}
	pl.SocketsUsed = len(socketsSeen)
	return pl, nil
}

func ceilDiv(a, b int) int {
	return (a + b - 1) / b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
