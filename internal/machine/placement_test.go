package machine

import (
	"testing"
	"testing/quick"
)

func TestPlaceErrors(t *testing.T) {
	h := XeonE5Host()
	if _, err := Place(h, 0, AffinityScatter); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := Place(h, -4, AffinityScatter); err == nil {
		t.Error("negative threads should fail")
	}
	if _, err := Place(h, 4, AffinityBalanced); err == nil {
		t.Error("balanced on host should fail")
	}
	d := XeonPhi7120P()
	if _, err := Place(d, 4, AffinityNone); err == nil {
		t.Error("none on device should fail")
	}
}

func TestPlaceCompactHost(t *testing.T) {
	h := XeonE5Host()
	// 4 threads compact occupy 2 cores with 2 threads each, one socket.
	pl, err := Place(h, 4, AffinityCompact)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CoresUsed != 2 || pl.SocketsUsed != 1 {
		t.Fatalf("compact 4T: cores=%d sockets=%d, want 2/1", pl.CoresUsed, pl.SocketsUsed)
	}
	if pl.MaxShare() != 2 {
		t.Fatalf("compact 4T: max share = %d, want 2", pl.MaxShare())
	}
}

func TestPlaceScatterHost(t *testing.T) {
	h := XeonE5Host()
	// 4 threads scatter occupy 4 distinct cores across both sockets.
	pl, err := Place(h, 4, AffinityScatter)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CoresUsed != 4 || pl.SocketsUsed != 2 {
		t.Fatalf("scatter 4T: cores=%d sockets=%d, want 4/2", pl.CoresUsed, pl.SocketsUsed)
	}
	if pl.MaxShare() != 1 {
		t.Fatalf("scatter 4T: max share = %d, want 1", pl.MaxShare())
	}
}

func TestPlaceFullHost(t *testing.T) {
	h := XeonE5Host()
	for _, aff := range []Affinity{AffinityScatter, AffinityCompact, AffinityNone} {
		pl, err := Place(h, 48, aff)
		if err != nil {
			t.Fatal(err)
		}
		if pl.CoresUsed != 24 || pl.MaxShare() != 2 || pl.SocketsUsed != 2 {
			t.Fatalf("%v 48T: %+v", aff, pl)
		}
	}
}

func TestPlaceNoneIsOSManaged(t *testing.T) {
	h := XeonE5Host()
	pl, err := Place(h, 8, AffinityNone)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.OSManaged {
		t.Error("none affinity should mark the placement OS-managed")
	}
	pl2, _ := Place(h, 8, AffinityScatter)
	if pl2.OSManaged {
		t.Error("scatter must not be OS-managed")
	}
	// Occupancy of none matches scatter.
	if pl.CoresUsed != pl2.CoresUsed || pl.MaxShare() != pl2.MaxShare() {
		t.Errorf("none occupancy %+v != scatter %+v", pl, pl2)
	}
}

func TestPlaceDeviceFull(t *testing.T) {
	d := XeonPhi7120P()
	pl, err := Place(d, 240, AffinityBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CoresUsed != 60 || pl.MaxShare() != 4 {
		t.Fatalf("240T balanced: %+v", pl)
	}
}

func TestPlaceDeviceCompactSmall(t *testing.T) {
	d := XeonPhi7120P()
	pl, err := Place(d, 8, AffinityCompact)
	if err != nil {
		t.Fatal(err)
	}
	if pl.CoresUsed != 2 || pl.MaxShare() != 4 {
		t.Fatalf("8T compact on Phi: cores=%d share=%d, want 2/4", pl.CoresUsed, pl.MaxShare())
	}
	pl2, _ := Place(d, 8, AffinityScatter)
	if pl2.CoresUsed != 8 || pl2.MaxShare() != 1 {
		t.Fatalf("8T scatter on Phi: cores=%d share=%d, want 8/1", pl2.CoresUsed, pl2.MaxShare())
	}
}

func TestPlaceOversubscription(t *testing.T) {
	h := XeonE5Host()
	pl, err := Place(h, 96, AffinityCompact)
	if err != nil {
		t.Fatal(err)
	}
	if pl.MaxShare() != 4 {
		t.Fatalf("96T on 48-thread host: max share = %d, want 4", pl.MaxShare())
	}
	if pl.CoresUsed != 24 {
		t.Fatalf("96T: cores = %d, want 24", pl.CoresUsed)
	}
}

func TestPlacePaperThreadCounts(t *testing.T) {
	// All thread counts from Table I must place successfully.
	h, d := XeonE5Host(), XeonPhi7120P()
	for _, n := range []int{2, 4, 6, 12, 24, 36, 48} {
		for _, a := range h.Affinities {
			if _, err := Place(h, n, a); err != nil {
				t.Errorf("host %dT %v: %v", n, a, err)
			}
		}
	}
	for _, n := range []int{2, 4, 8, 16, 30, 60, 120, 180, 240} {
		for _, a := range d.Affinities {
			if _, err := Place(d, n, a); err != nil {
				t.Errorf("device %dT %v: %v", n, a, err)
			}
		}
	}
}

// Property: for any valid thread count and supported affinity, the
// placement conserves threads (sum over cores equals n), uses no more
// cores than exist, and never exceeds the SMT width unless oversubscribed.
func TestPlaceConservationProperty(t *testing.T) {
	procs := []*Processor{XeonE5Host(), XeonPhi7120P()}
	f := func(nRaw uint16, procIdx, affIdx uint8) bool {
		p := procs[int(procIdx)%len(procs)]
		a := p.Affinities[int(affIdx)%len(p.Affinities)]
		n := int(nRaw)%600 + 1
		pl, err := Place(p, n, a)
		if err != nil {
			return false
		}
		total := 0
		for i, c := range pl.ThreadsOnCore {
			total += (i + 1) * c
		}
		if total != n {
			return false
		}
		if pl.CoresUsed > p.TotalCores() || pl.SocketsUsed > p.Sockets {
			return false
		}
		if n <= p.TotalThreads() && pl.MaxShare() > p.ThreadsPerCore {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: scatter never uses fewer cores than compact for the same
// thread count (scatter maximizes spread).
func TestScatterSpreadsAtLeastAsWideAsCompact(t *testing.T) {
	procs := []*Processor{XeonE5Host(), XeonPhi7120P()}
	f := func(nRaw uint16, procIdx uint8) bool {
		p := procs[int(procIdx)%len(procs)]
		n := int(nRaw)%p.TotalThreads() + 1
		sc, err1 := Place(p, n, AffinityScatter)
		co, err2 := Place(p, n, AffinityCompact)
		if err1 != nil || err2 != nil {
			return false
		}
		return sc.CoresUsed >= co.CoresUsed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
