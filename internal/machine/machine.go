// Package machine models the hardware topology of the heterogeneous
// platform the paper evaluates on (Table III): a host with two 12-core
// Intel Xeon E5-2695v2 CPUs (2 hardware threads per core, 48 threads
// total) and an Intel Xeon Phi 7120P co-processor (61 cores, 4 hardware
// threads per core; one core is reserved for the card's µOS, leaving 60
// cores / 240 threads for computation).
//
// The package's main job is affinity placement: given a requested thread
// count and a thread-affinity strategy (none/scatter/compact on the host,
// balanced/scatter/compact on the device, following Intel's KMP_AFFINITY
// semantics), it decides which hardware threads the software threads
// occupy. The resulting occupancy — how many cores participate and how
// many threads share each core — drives the throughput model in
// internal/perf.
package machine

import (
	"fmt"
	"strings"
)

// Affinity names a thread pinning strategy. The host accepts None, Scatter
// and Compact; the device accepts Balanced, Scatter and Compact, matching
// Table I of the paper.
type Affinity int

const (
	// AffinityNone leaves placement to the operating system (host only).
	AffinityNone Affinity = iota
	// AffinityScatter distributes threads as evenly as possible across
	// cores (and sockets) before reusing hardware threads.
	AffinityScatter
	// AffinityCompact packs threads onto as few cores as possible,
	// filling every hardware thread of a core before moving on.
	AffinityCompact
	// AffinityBalanced distributes threads evenly across cores but keeps
	// consecutively numbered threads adjacent (device only).
	AffinityBalanced
)

var affinityNames = map[Affinity]string{
	AffinityNone:     "none",
	AffinityScatter:  "scatter",
	AffinityCompact:  "compact",
	AffinityBalanced: "balanced",
}

// String returns the lowercase KMP-style name of the affinity.
func (a Affinity) String() string {
	if s, ok := affinityNames[a]; ok {
		return s
	}
	return fmt.Sprintf("affinity(%d)", int(a))
}

// ParseAffinity converts a KMP-style name into an Affinity. It accepts any
// case and returns an error for unknown names.
func ParseAffinity(s string) (Affinity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return AffinityNone, nil
	case "scatter":
		return AffinityScatter, nil
	case "compact":
		return AffinityCompact, nil
	case "balanced":
		return AffinityBalanced, nil
	default:
		return 0, fmt.Errorf("machine: unknown affinity %q", s)
	}
}

// Processor describes one processing unit (a CPU package pair or an
// accelerator card) at the granularity the performance model needs.
type Processor struct {
	// Name identifies the processor in reports, e.g. "2x Xeon E5-2695v2".
	Name string
	// Sockets is the number of physical packages sharing the cores.
	Sockets int
	// CoresPerSocket is the number of physical cores in each package.
	CoresPerSocket int
	// ThreadsPerCore is the SMT width of each core.
	ThreadsPerCore int
	// ReservedCores is subtracted from the usable core count (the Xeon
	// Phi reserves one core for its embedded OS).
	ReservedCores int
	// BaseClockGHz and MaxClockGHz bound the operating frequency.
	BaseClockGHz, MaxClockGHz float64
	// CacheMB is the size of the last-level cache in megabytes.
	CacheMB float64
	// MemBandwidthGBs is the peak memory bandwidth in GB/s (per
	// processor, aggregated over its sockets).
	MemBandwidthGBs float64
	// MemoryGB is the attached memory capacity.
	MemoryGB float64
	// VectorBits is the SIMD register width in bits.
	VectorBits int
	// Affinities lists the placement strategies the processor supports.
	Affinities []Affinity
}

// TotalCores returns the number of physical cores usable for computation.
func (p *Processor) TotalCores() int {
	c := p.Sockets*p.CoresPerSocket - p.ReservedCores
	if c < 0 {
		return 0
	}
	return c
}

// TotalThreads returns the number of usable hardware threads.
func (p *Processor) TotalThreads() int {
	return p.TotalCores() * p.ThreadsPerCore
}

// SupportsAffinity reports whether the processor accepts the strategy.
func (p *Processor) SupportsAffinity(a Affinity) bool {
	for _, s := range p.Affinities {
		if s == a {
			return true
		}
	}
	return false
}

// Validate checks the structural sanity of the processor description.
func (p *Processor) Validate() error {
	switch {
	case p.Sockets <= 0:
		return fmt.Errorf("machine: %s: sockets must be positive, got %d", p.Name, p.Sockets)
	case p.CoresPerSocket <= 0:
		return fmt.Errorf("machine: %s: cores per socket must be positive, got %d", p.Name, p.CoresPerSocket)
	case p.ThreadsPerCore <= 0:
		return fmt.Errorf("machine: %s: threads per core must be positive, got %d", p.Name, p.ThreadsPerCore)
	case p.ReservedCores < 0:
		return fmt.Errorf("machine: %s: reserved cores must be non-negative, got %d", p.Name, p.ReservedCores)
	case p.TotalCores() == 0:
		return fmt.Errorf("machine: %s: no usable cores", p.Name)
	case len(p.Affinities) == 0:
		return fmt.Errorf("machine: %s: no affinity strategies declared", p.Name)
	}
	return nil
}

// XeonE5Host returns the paper's host: two Intel Xeon E5-2695v2 packages
// (12 cores each, 2-way hyper-threading, 30 MB L3 per package, 59.7 GB/s
// per package).
func XeonE5Host() *Processor {
	return &Processor{
		Name:            "2x Intel Xeon E5-2695v2",
		Sockets:         2,
		CoresPerSocket:  12,
		ThreadsPerCore:  2,
		BaseClockGHz:    2.4,
		MaxClockGHz:     3.2,
		CacheMB:         30,
		MemBandwidthGBs: 2 * 59.7,
		MemoryGB:        128,
		VectorBits:      256,
		Affinities:      []Affinity{AffinityNone, AffinityScatter, AffinityCompact},
	}
}

// XeonPhi7120P returns the paper's accelerator: an Intel Xeon Phi 7120P
// with 61 cores (one reserved for the µOS), 4-way SMT, 30.5 MB aggregate
// L2, 352 GB/s GDDR bandwidth and 512-bit vector units.
func XeonPhi7120P() *Processor {
	return &Processor{
		Name:            "Intel Xeon Phi 7120P",
		Sockets:         1,
		CoresPerSocket:  61,
		ThreadsPerCore:  4,
		ReservedCores:   1,
		BaseClockGHz:    1.238,
		MaxClockGHz:     1.333,
		CacheMB:         30.5,
		MemBandwidthGBs: 352,
		MemoryGB:        16,
		VectorBits:      512,
		Affinities:      []Affinity{AffinityBalanced, AffinityScatter, AffinityCompact},
	}
}
