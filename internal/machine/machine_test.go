package machine

import (
	"strings"
	"testing"
)

func TestAffinityString(t *testing.T) {
	cases := map[Affinity]string{
		AffinityNone:     "none",
		AffinityScatter:  "scatter",
		AffinityCompact:  "compact",
		AffinityBalanced: "balanced",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
	if got := Affinity(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown affinity string = %q", got)
	}
}

func TestParseAffinity(t *testing.T) {
	for _, s := range []string{"none", "Scatter", " COMPACT ", "balanced"} {
		if _, err := ParseAffinity(s); err != nil {
			t.Errorf("ParseAffinity(%q) error: %v", s, err)
		}
	}
	if _, err := ParseAffinity("weird"); err == nil {
		t.Error("ParseAffinity(weird) should fail")
	}
}

func TestParseAffinityRoundTrip(t *testing.T) {
	for _, a := range []Affinity{AffinityNone, AffinityScatter, AffinityCompact, AffinityBalanced} {
		got, err := ParseAffinity(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v -> %v (%v)", a, got, err)
		}
	}
}

func TestXeonE5HostSpec(t *testing.T) {
	h := XeonE5Host()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.TotalCores(); got != 24 {
		t.Errorf("host cores = %d, want 24", got)
	}
	if got := h.TotalThreads(); got != 48 {
		t.Errorf("host threads = %d, want 48 (Table III)", got)
	}
	if h.SupportsAffinity(AffinityBalanced) {
		t.Error("host must not support balanced affinity (Table I)")
	}
	for _, a := range []Affinity{AffinityNone, AffinityScatter, AffinityCompact} {
		if !h.SupportsAffinity(a) {
			t.Errorf("host should support %v", a)
		}
	}
}

func TestXeonPhiSpec(t *testing.T) {
	d := XeonPhi7120P()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// One of 61 cores is reserved for the card's OS (paper Section II-A).
	if got := d.TotalCores(); got != 60 {
		t.Errorf("device cores = %d, want 60", got)
	}
	if got := d.TotalThreads(); got != 240 {
		t.Errorf("device threads = %d, want 240", got)
	}
	if d.SupportsAffinity(AffinityNone) {
		t.Error("device must not support none affinity (Table I)")
	}
	if d.VectorBits != 512 {
		t.Errorf("device vector width = %d, want 512", d.VectorBits)
	}
}

func TestProcessorValidate(t *testing.T) {
	bad := []*Processor{
		{Name: "no-sockets", CoresPerSocket: 1, ThreadsPerCore: 1, Affinities: []Affinity{AffinityScatter}},
		{Name: "no-cores", Sockets: 1, ThreadsPerCore: 1, Affinities: []Affinity{AffinityScatter}},
		{Name: "no-smt", Sockets: 1, CoresPerSocket: 1, Affinities: []Affinity{AffinityScatter}},
		{Name: "neg-reserved", Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1, ReservedCores: -1, Affinities: []Affinity{AffinityScatter}},
		{Name: "all-reserved", Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1, ReservedCores: 2, Affinities: []Affinity{AffinityScatter}},
		{Name: "no-affinity", Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", p.Name)
		}
	}
}
