package graph

import (
	"reflect"
	"testing"

	"hetopt/internal/strategy"
)

// TestTuneBeatsBaselines runs exhaustive placement search on every
// preset: the optimum can never exceed any baseline, and on the paper
// platform each preset must gain from heterogeneity.
func TestTuneBeatsBaselines(t *testing.T) {
	for _, w := range Presets() {
		s := testSim(t, w)
		res, err := Tune(s, nil, strategy.Options{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(res.Placement) != s.Nodes() {
			t.Fatalf("%s: placement length %d", w.Name, len(res.Placement))
		}
		for _, base := range []float64{res.HostOnlySec, res.DeviceOnlySec, res.RoundRobinSec} {
			if res.MakespanSec > base+1e-12 {
				t.Errorf("%s: exhaustive optimum %g exceeds baseline %g", w.Name, res.MakespanSec, base)
			}
		}
		if res.SpeedupVsHost() <= 1 {
			t.Errorf("%s: no speedup over host-only (%g)", w.Name, res.SpeedupVsHost())
		}
	}
}

// TestTuneDeterministicAcrossParallelism pins the core determinism
// contract: the same seed yields the identical placement at any
// parallelism for the search strategies.
func TestTuneDeterministicAcrossParallelism(t *testing.T) {
	strats := []strategy.Strategy{
		strategy.DefaultAnneal(),
		strategy.Genetic{},
		strategy.Exhaustive{},
		// The proved branch-and-bound run must be bit-identical at any
		// parallelism too — certificate counts and pool included (the
		// DeepEqual below sees through Result.Cert).
		strategy.Exact{Prove: true, PoolSize: 3},
	}
	for _, w := range Presets() {
		s := testSim(t, w)
		for _, strat := range strats {
			var ref Result
			for i, par := range []int{1, 4, 8} {
				res, err := Tune(s, strat, strategy.Options{Budget: 400, Seed: 11, Restarts: 4, Parallelism: par})
				if err != nil {
					t.Fatalf("%s/%s: %v", w.Name, strat.Name(), err)
				}
				if i == 0 {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res, ref) {
					t.Errorf("%s/%s: parallelism %d diverged: %+v vs %+v", w.Name, strat.Name(), par, res, ref)
				}
			}
		}
	}
}
