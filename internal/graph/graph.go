// Package graph generalizes the workload abstraction from "one divisible
// kernel split by a fraction" to a DAG of operators with data-transfer
// edges placed across host and device — the task-graph problem shape of
// QuickP-style operator placement and of heterogeneous task scheduling
// (see DESIGN.md, "The graph layer").
//
// A graph workload has nodes carrying per-unit compute cost (in MB of
// the reference streaming workload, so the existing perf roofline model
// prices them) and edges carrying transfer volume (priced by the
// platform's host-device link). A deterministic list-scheduling
// simulator turns a placement vector — one host/device bit per node —
// into a makespan, and PlacementProblem exposes makespan minimization
// on the strategy layer (Spaced and batch-capable, so every registered
// strategy including exhaustive enumeration and the portfolio applies
// unchanged).
package graph

import (
	"fmt"
	"strings"

	"hetopt/internal/perf"
)

// MaxNodes bounds the node count of a graph workload. The bound lets
// the simulator run on fixed-size stack arrays — the makespan hot path
// allocates nothing — and keeps exhaustive placement enumeration (2^n
// states) feasible for every preset.
const MaxNodes = 32

// Node is one operator of a graph workload.
type Node struct {
	// Name identifies the operator in placements and reports.
	Name string
	// WorkMB is the operator's compute cost, expressed in megabytes of
	// the reference streaming workload: a node with WorkMB w runs as
	// long as w MB of the reference kernel on the same side, so the
	// perf roofline model prices it without new calibration constants.
	WorkMB float64
}

// Edge is a data dependency between two operators.
type Edge struct {
	// From and To are node indices. Edges must point forward
	// (From < To), which both guarantees acyclicity and makes the node
	// order a topological order.
	From, To int
	// TransferMB is the volume moved when the endpoints run on
	// different sides; same-side edges cost nothing.
	TransferMB float64
}

// Workload is a DAG of operators with data-transfer edges, plus the
// perf.Traits-style parameters that shape node execution time on each
// side (the same knobs workload families carry for divisible kernels).
type Workload struct {
	// Name identifies the graph ("resnet-ish", ...).
	Name string
	// Description is a one-line summary for catalogs.
	Description string
	// Nodes are the operators in topological order.
	Nodes []Node
	// Edges are the data dependencies; every edge points forward.
	Edges []Edge
	// Complexity, BytesPerByte, HostRateFactor and DeviceRateFactor
	// scale node execution exactly like the divisible families' traits
	// (zero means the reference value).
	Complexity       float64
	BytesPerByte     float64
	HostRateFactor   float64
	DeviceRateFactor float64
}

// Validate checks the graph's structural sanity: named nodes with
// positive work, at most MaxNodes of them, and forward edges with
// non-negative transfer volumes.
func (w Workload) Validate() error {
	if strings.TrimSpace(w.Name) == "" {
		return fmt.Errorf("graph: workload needs a name")
	}
	if len(w.Nodes) == 0 {
		return fmt.Errorf("graph: workload %q has no nodes", w.Name)
	}
	if len(w.Nodes) > MaxNodes {
		return fmt.Errorf("graph: workload %q has %d nodes (max %d)", w.Name, len(w.Nodes), MaxNodes)
	}
	seen := map[string]bool{}
	for i, n := range w.Nodes {
		if strings.TrimSpace(n.Name) == "" {
			return fmt.Errorf("graph: workload %q node %d is unnamed", w.Name, i)
		}
		if n.WorkMB <= 0 {
			return fmt.Errorf("graph: workload %q node %q work %g must be positive", w.Name, n.Name, n.WorkMB)
		}
		key := strings.ToLower(n.Name)
		if seen[key] {
			return fmt.Errorf("graph: workload %q has duplicate node %q", w.Name, n.Name)
		}
		seen[key] = true
	}
	for _, e := range w.Edges {
		if e.From < 0 || e.To >= len(w.Nodes) || e.From >= e.To {
			return fmt.Errorf("graph: workload %q edge %d->%d must point forward within [0,%d)",
				w.Name, e.From, e.To, len(w.Nodes))
		}
		if e.TransferMB < 0 {
			return fmt.Errorf("graph: workload %q edge %d->%d has negative transfer %g",
				w.Name, e.From, e.To, e.TransferMB)
		}
	}
	return nil
}

// TotalWorkMB sums the node compute costs — the graph's total input
// size in reference-workload megabytes.
func (w Workload) TotalWorkMB() float64 {
	total := 0.0
	for _, n := range w.Nodes {
		total += n.WorkMB
	}
	return total
}

// Traits returns the workload's perf traits, the parameters the
// roofline model prices node execution with.
func (w Workload) Traits() perf.Traits {
	return perf.Traits{
		Name:             w.Name,
		Complexity:       w.Complexity,
		BytesPerByte:     w.BytesPerByte,
		HostRateFactor:   w.HostRateFactor,
		DeviceRateFactor: w.DeviceRateFactor,
	}
}

// ResNetIsh is an inference-chain graph: a convolutional stem, four
// residual blocks (two convolutions plus a skip edge each) with
// activation volumes shrinking as channels deepen, and a pooling/FC
// head. The long dependency chain makes the host/device boundary — and
// the transfers it induces — the interesting placement decision.
func ResNetIsh() Workload {
	return Workload{
		Name:        "resnet-ish",
		Description: "inference chain: stem, four residual blocks with skip edges, pooled head",
		Nodes: []Node{
			{Name: "stem", WorkMB: 180},
			{Name: "b1-conv1", WorkMB: 240}, {Name: "b1-conv2", WorkMB: 240},
			{Name: "b2-conv1", WorkMB: 320}, {Name: "b2-conv2", WorkMB: 320},
			{Name: "b3-conv1", WorkMB: 420}, {Name: "b3-conv2", WorkMB: 420},
			{Name: "b4-conv1", WorkMB: 520}, {Name: "b4-conv2", WorkMB: 520},
			{Name: "pool", WorkMB: 60}, {Name: "fc", WorkMB: 90},
		},
		Edges: []Edge{
			{From: 0, To: 1, TransferMB: 64},
			{From: 1, To: 2, TransferMB: 64}, {From: 0, To: 2, TransferMB: 64},
			{From: 2, To: 3, TransferMB: 48},
			{From: 3, To: 4, TransferMB: 48}, {From: 2, To: 4, TransferMB: 48},
			{From: 4, To: 5, TransferMB: 32},
			{From: 5, To: 6, TransferMB: 32}, {From: 4, To: 6, TransferMB: 32},
			{From: 6, To: 7, TransferMB: 24},
			{From: 7, To: 8, TransferMB: 24}, {From: 6, To: 8, TransferMB: 24},
			{From: 8, To: 9, TransferMB: 16},
			{From: 9, To: 10, TransferMB: 4},
		},
		// Convolutions are compute-dense and vectorize well on the
		// throughput-oriented side.
		Complexity:       1.1,
		HostRateFactor:   0.95,
		DeviceRateFactor: 1.25,
	}
}

// ForkJoin is a stencil pipeline: a decomposition fans out into four
// independent tiles, a halo exchange joins them, a second sweep fans
// out again, and a reduction gathers the result. The parallel branches
// are what a two-processor placement can genuinely overlap.
func ForkJoin() Workload {
	return Workload{
		Name:        "fork-join",
		Description: "stencil pipeline: two fan-out/fan-in sweeps of four tiles around a halo exchange",
		Nodes: []Node{
			{Name: "decompose", WorkMB: 120},
			{Name: "tile-a", WorkMB: 550}, {Name: "tile-b", WorkMB: 550},
			{Name: "tile-c", WorkMB: 550}, {Name: "tile-d", WorkMB: 550},
			{Name: "halo", WorkMB: 90},
			{Name: "tile-a2", WorkMB: 480}, {Name: "tile-b2", WorkMB: 480},
			{Name: "tile-c2", WorkMB: 480}, {Name: "tile-d2", WorkMB: 480},
			{Name: "reduce", WorkMB: 70},
		},
		Edges: []Edge{
			{From: 0, To: 1, TransferMB: 96}, {From: 0, To: 2, TransferMB: 96},
			{From: 0, To: 3, TransferMB: 96}, {From: 0, To: 4, TransferMB: 96},
			{From: 1, To: 5, TransferMB: 96}, {From: 2, To: 5, TransferMB: 96},
			{From: 3, To: 5, TransferMB: 96}, {From: 4, To: 5, TransferMB: 96},
			{From: 5, To: 6, TransferMB: 72}, {From: 5, To: 7, TransferMB: 72},
			{From: 5, To: 8, TransferMB: 72}, {From: 5, To: 9, TransferMB: 72},
			{From: 6, To: 10, TransferMB: 72}, {From: 7, To: 10, TransferMB: 72},
			{From: 8, To: 10, TransferMB: 72}, {From: 9, To: 10, TransferMB: 72},
		},
		// Stencil sweeps stream several bytes per input byte and sit
		// near the bandwidth roofline on both sides.
		BytesPerByte:     2.4,
		HostRateFactor:   1.1,
		DeviceRateFactor: 1.15,
	}
}

// SparseSolver is a direct-solver phase graph: reorder, symbolic and
// numeric factorization, then solve/refine rounds that all reuse the
// factors. The factor-reuse edges make "where the factorization lives"
// the dominant placement decision.
func SparseSolver() Workload {
	return Workload{
		Name:        "sparse-solver",
		Description: "direct-solver phases: reorder, factorize, and factor-reusing solve/refine rounds",
		Nodes: []Node{
			{Name: "reorder", WorkMB: 150},
			{Name: "symbolic", WorkMB: 300},
			{Name: "numeric", WorkMB: 700},
			{Name: "solve-1", WorkMB: 260}, {Name: "refine-1", WorkMB: 140},
			{Name: "solve-2", WorkMB: 260}, {Name: "refine-2", WorkMB: 140},
			{Name: "norm", WorkMB: 40},
			{Name: "solve-3", WorkMB: 260},
			{Name: "gather", WorkMB: 60},
		},
		Edges: []Edge{
			{From: 0, To: 1, TransferMB: 40},
			{From: 1, To: 2, TransferMB: 110},
			{From: 2, To: 3, TransferMB: 130},
			// Each refine polishes the previous solve's result while the
			// next factor-reusing solve proceeds — the overlap a
			// two-processor placement can exploit.
			{From: 3, To: 4, TransferMB: 30},
			{From: 3, To: 5, TransferMB: 30}, {From: 2, To: 5, TransferMB: 130},
			{From: 5, To: 6, TransferMB: 30},
			{From: 4, To: 7, TransferMB: 10}, {From: 6, To: 7, TransferMB: 10},
			{From: 5, To: 8, TransferMB: 30}, {From: 2, To: 8, TransferMB: 130},
			{From: 7, To: 8, TransferMB: 10},
			{From: 8, To: 9, TransferMB: 30},
		},
		// Irregular accesses: bandwidth-bound and a poor fit for the
		// wide device, like the SpMV family.
		Complexity:       1.3,
		BytesPerByte:     3.2,
		HostRateFactor:   0.85,
		DeviceRateFactor: 0.55,
	}
}

// Presets returns the shipped graph workloads in catalog order.
func Presets() []Workload {
	return []Workload{ResNetIsh(), ForkJoin(), SparseSolver()}
}
