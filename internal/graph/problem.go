package graph

import (
	"fmt"
	"math"
	"math/rand"

	"hetopt/internal/strategy"
)

// PlacementProblem exposes makespan minimization over a Sim on the
// strategy layer: one binary dimension per node (level 0 = host,
// 1 = device). It implements strategy.Spaced — so exhaustive
// enumeration and every coordinate-wise metaheuristic apply — and
// strategy.BatchProblem, so the batched evaluation path introduced for
// divisible kernels applies to placements too. Energy is pure and
// allocation-free; the problem is safe for concurrent evaluation.
type PlacementProblem struct {
	Sim *Sim
}

// NewPlacementProblem wraps a simulator.
func NewPlacementProblem(s *Sim) *PlacementProblem { return &PlacementProblem{Sim: s} }

// Dim implements strategy.Problem.
func (p *PlacementProblem) Dim() int { return p.Sim.Nodes() }

// Levels implements strategy.Spaced: every node has two placements.
func (p *PlacementProblem) Levels(int) int { return 2 }

// Initial implements strategy.Problem with a uniform random placement.
func (p *PlacementProblem) Initial(dst []int, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Intn(2)
	}
}

// Neighbor implements strategy.Problem by moving one random node to the
// other side.
func (p *PlacementProblem) Neighbor(dst, src []int, rng *rand.Rand) {
	copy(dst, src)
	i := rng.Intn(len(dst))
	dst[i] = 1 - (dst[i] & 1)
}

// Energy implements strategy.Problem: the placement's makespan.
func (p *PlacementProblem) Energy(state []int) (float64, error) {
	if len(state) != p.Sim.Nodes() {
		return 0, fmt.Errorf("graph: placement has %d entries, want %d", len(state), p.Sim.Nodes())
	}
	return p.Sim.Makespan(state), nil
}

// EnergyBatch implements strategy.BatchProblem.
func (p *PlacementProblem) EnergyBatch(states [][]int, out []float64) error {
	for i, st := range states {
		e, err := p.Energy(st)
		if err != nil {
			return err
		}
		out[i] = e
	}
	return nil
}

// LowerBound implements exact.Bounded with an admissible bound on the
// makespan of any placement agreeing with prefix[:fixed] — the pruning
// rule of the exact branch-and-bound strategy over placement spaces.
// It is the maximum of two classic DAG relaxations:
//
//   - Critical path: the longest dependency chain where a fixed node
//     costs its assigned side's execution time, an unfixed node costs
//     the cheaper of its two sides, and a transfer is charged only when
//     both endpoints are fixed to different sides (an unfixed endpoint
//     could always match its neighbor). No schedule can beat its own
//     dependency chain.
//   - Load: each side runs its nodes serially, so the makespan is at
//     least the busy time already committed to either side, and at
//     least half the total work under the cheapest split of the
//     unfixed remainder.
//
// Both relaxations are monotone (fixing one more node never lowers
// them) and exact when every node is fixed only in the relaxed sense —
// the bound stays below the true makespan, which is what admissibility
// requires. The simulator is noise-free, so no noise floor applies.
func (p *PlacementProblem) LowerBound(prefix []int, fixed int) float64 {
	s := p.Sim
	n := s.n
	if fixed > n {
		fixed = n
	}
	var cp [MaxNodes]float64
	var w [MaxNodes]float64
	busyH, busyD, freeMin := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		h, d := s.nodeSec[SideHost][i], s.nodeSec[SideDevice][i]
		if i < fixed {
			side := prefix[i] & 1
			w[i] = s.nodeSec[side][i]
			if side == SideHost {
				busyH += w[i]
			} else {
				busyD += w[i]
			}
		} else {
			w[i] = math.Min(h, d)
			freeMin += w[i]
		}
	}
	best := 0.0
	for i := 0; i < n; i++ {
		ready := 0.0
		for k := s.inStart[i]; k < s.inStart[i+1]; k++ {
			e := s.edges[k]
			t := cp[e.from]
			if e.from < fixed && i < fixed && prefix[e.from]&1 != prefix[i]&1 {
				t += e.xferSec
			}
			if t > ready {
				ready = t
			}
		}
		cp[i] = ready + w[i]
		if cp[i] > best {
			best = cp[i]
		}
	}
	if load := (busyH + busyD + freeMin) / 2; load > best {
		best = load
	}
	if busyH > best {
		best = busyH
	}
	if busyD > best {
		best = busyD
	}
	return best
}

// Result is a completed placement search with the baselines every
// report compares against.
type Result struct {
	// Placement assigns each node a side (SideHost/SideDevice).
	Placement []int
	// MakespanSec is the placement's simulated makespan.
	MakespanSec float64
	// HostOnlySec, DeviceOnlySec and RoundRobinSec are the baseline
	// makespans: everything on the host, everything on the device, and
	// naive alternation.
	HostOnlySec, DeviceOnlySec, RoundRobinSec float64
	// Evaluations is the number of placements priced by the search;
	// Worker and Workers mirror strategy.Result.
	Evaluations, Worker, Workers int
	// Cert and Pool carry the exact strategy's optimality certificate
	// and diverse placement pool (nil/empty for heuristic strategies).
	// Read them through Certificate()/PoolEntries().
	Cert *strategy.Certificate
	Pool []strategy.PoolEntry
}

// Certificate returns the search's optimality certificate; ok is false
// when the strategy could not certify anything.
func (r Result) Certificate() (strategy.Certificate, bool) {
	if r.Cert == nil {
		return strategy.Certificate{}, false
	}
	return *r.Cert, true
}

// PoolEntries returns the diverse placement pool, nil unless an exact
// run collected one. Entry states are placements (SideHost/SideDevice
// per node).
func (r Result) PoolEntries() []strategy.PoolEntry { return r.Pool }

// SpeedupVsHost is the host-only-over-best makespan ratio.
func (r Result) SpeedupVsHost() float64 {
	if r.MakespanSec <= 0 {
		return 0
	}
	return r.HostOnlySec / r.MakespanSec
}

// Tune searches for the makespan-minimizing placement with the given
// strategy (nil selects exhaustive enumeration — placement spaces are
// at most 2^MaxNodes but preset graphs stay small enough to enumerate).
// Results are deterministic: same sim, strategy, and options produce
// bit-identical placements at any parallelism.
func Tune(sim *Sim, strat strategy.Strategy, opt strategy.Options) (Result, error) {
	if strat == nil {
		strat = strategy.Exhaustive{}
	}
	res, err := strat.Minimize(NewPlacementProblem(sim), opt)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Placement:     res.Best,
		MakespanSec:   res.BestEnergy,
		HostOnlySec:   sim.HostOnlySec(),
		DeviceOnlySec: sim.DeviceOnlySec(),
		RoundRobinSec: sim.Makespan(sim.RoundRobinPlacement()),
		Evaluations:   res.Evaluations,
		Worker:        res.Worker,
		Workers:       res.Workers,
		Cert:          res.Cert,
		Pool:          res.Pool,
	}, nil
}

// ParsePlacement decodes the canonical 'h'/'d' placement string.
func ParsePlacement(s string) ([]int, error) {
	out := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'h':
			out[i] = SideHost
		case 'd':
			out[i] = SideDevice
		default:
			return nil, fmt.Errorf("graph: placement %q has invalid side %q at %d", s, s[i], i)
		}
	}
	return out, nil
}
