package graph

import (
	"fmt"
	"math/rand"

	"hetopt/internal/strategy"
)

// PlacementProblem exposes makespan minimization over a Sim on the
// strategy layer: one binary dimension per node (level 0 = host,
// 1 = device). It implements strategy.Spaced — so exhaustive
// enumeration and every coordinate-wise metaheuristic apply — and
// strategy.BatchProblem, so the batched evaluation path introduced for
// divisible kernels applies to placements too. Energy is pure and
// allocation-free; the problem is safe for concurrent evaluation.
type PlacementProblem struct {
	Sim *Sim
}

// NewPlacementProblem wraps a simulator.
func NewPlacementProblem(s *Sim) *PlacementProblem { return &PlacementProblem{Sim: s} }

// Dim implements strategy.Problem.
func (p *PlacementProblem) Dim() int { return p.Sim.Nodes() }

// Levels implements strategy.Spaced: every node has two placements.
func (p *PlacementProblem) Levels(int) int { return 2 }

// Initial implements strategy.Problem with a uniform random placement.
func (p *PlacementProblem) Initial(dst []int, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Intn(2)
	}
}

// Neighbor implements strategy.Problem by moving one random node to the
// other side.
func (p *PlacementProblem) Neighbor(dst, src []int, rng *rand.Rand) {
	copy(dst, src)
	i := rng.Intn(len(dst))
	dst[i] = 1 - (dst[i] & 1)
}

// Energy implements strategy.Problem: the placement's makespan.
func (p *PlacementProblem) Energy(state []int) (float64, error) {
	if len(state) != p.Sim.Nodes() {
		return 0, fmt.Errorf("graph: placement has %d entries, want %d", len(state), p.Sim.Nodes())
	}
	return p.Sim.Makespan(state), nil
}

// EnergyBatch implements strategy.BatchProblem.
func (p *PlacementProblem) EnergyBatch(states [][]int, out []float64) error {
	for i, st := range states {
		e, err := p.Energy(st)
		if err != nil {
			return err
		}
		out[i] = e
	}
	return nil
}

// Result is a completed placement search with the baselines every
// report compares against.
type Result struct {
	// Placement assigns each node a side (SideHost/SideDevice).
	Placement []int
	// MakespanSec is the placement's simulated makespan.
	MakespanSec float64
	// HostOnlySec, DeviceOnlySec and RoundRobinSec are the baseline
	// makespans: everything on the host, everything on the device, and
	// naive alternation.
	HostOnlySec, DeviceOnlySec, RoundRobinSec float64
	// Evaluations is the number of placements priced by the search;
	// Worker and Workers mirror strategy.Result.
	Evaluations, Worker, Workers int
}

// SpeedupVsHost is the host-only-over-best makespan ratio.
func (r Result) SpeedupVsHost() float64 {
	if r.MakespanSec <= 0 {
		return 0
	}
	return r.HostOnlySec / r.MakespanSec
}

// Tune searches for the makespan-minimizing placement with the given
// strategy (nil selects exhaustive enumeration — placement spaces are
// at most 2^MaxNodes but preset graphs stay small enough to enumerate).
// Results are deterministic: same sim, strategy, and options produce
// bit-identical placements at any parallelism.
func Tune(sim *Sim, strat strategy.Strategy, opt strategy.Options) (Result, error) {
	if strat == nil {
		strat = strategy.Exhaustive{}
	}
	res, err := strat.Minimize(NewPlacementProblem(sim), opt)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Placement:     res.Best,
		MakespanSec:   res.BestEnergy,
		HostOnlySec:   sim.HostOnlySec(),
		DeviceOnlySec: sim.DeviceOnlySec(),
		RoundRobinSec: sim.Makespan(sim.RoundRobinPlacement()),
		Evaluations:   res.Evaluations,
		Worker:        res.Worker,
		Workers:       res.Workers,
	}, nil
}

// ParsePlacement decodes the canonical 'h'/'d' placement string.
func ParsePlacement(s string) ([]int, error) {
	out := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'h':
			out[i] = SideHost
		case 'd':
			out[i] = SideDevice
		default:
			return nil, fmt.Errorf("graph: placement %q has invalid side %q at %d", s, s[i], i)
		}
	}
	return out, nil
}
