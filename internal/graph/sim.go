package graph

import (
	"fmt"
	"strings"

	"hetopt/internal/machine"
	"hetopt/internal/perf"
)

// Placement sides. A placement vector assigns each node one of these.
const (
	SideHost   = 0
	SideDevice = 1
)

// Link describes the host-device interconnect that prices cross-side
// edge transfers: a fixed per-transfer latency (launch/sync cost) plus
// a bandwidth term. Platform specs carry one (scenario.PlatformSpec);
// the zero value is invalid — a link needs positive bandwidth.
type Link struct {
	// BandwidthMBs is the effective transfer rate in MB/s.
	BandwidthMBs float64
	// LatencySec is the fixed cost paid per cross-side transfer.
	LatencySec float64
}

// SideConfig is the execution configuration one side runs every node it
// owns with: the thread count and pinning the roofline model prices
// node throughput at.
type SideConfig struct {
	Threads  int
	Affinity machine.Affinity
}

// simEdge is a precomputed dependency: node from must finish before
// node to starts, plus the transfer time paid when they sit on
// different sides.
type simEdge struct {
	from, to int
	xferSec  float64
}

// Sim is a deterministic list-scheduling simulator for one graph
// workload on one platform: node execution times are precomputed per
// side from the perf roofline model, edge transfer times from the
// platform link, so evaluating a placement is pure table arithmetic.
// The makespan path allocates nothing and a Sim is safe for concurrent
// use (it is read-only after construction).
type Sim struct {
	w        Workload
	n        int
	nodeSec  [2][MaxNodes]float64 // [side][node] execution seconds
	edges    []simEdge            // sorted by (to, from)
	inStart  [MaxNodes + 1]int    // edges[inStart[i]:inStart[i+1]] enter node i
	hostName string
	devName  string
	hostCfg  SideConfig
	devCfg   SideConfig
}

// NewSim prices the workload on a platform: m prices node execution
// (each side runs its nodes serially at the side's configured
// throughput), link prices cross-side transfers.
func NewSim(w Workload, m *perf.Model, host, device SideConfig, link Link) (*Sim, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if link.BandwidthMBs <= 0 {
		return nil, fmt.Errorf("graph: link bandwidth %g must be positive", link.BandwidthMBs)
	}
	if link.LatencySec < 0 {
		return nil, fmt.Errorf("graph: link latency %g must be non-negative", link.LatencySec)
	}
	traits := w.Traits()
	hostRate, err := m.HostThroughputFor(host.Threads, host.Affinity, traits)
	if err != nil {
		return nil, fmt.Errorf("graph: host throughput: %w", err)
	}
	devRate, err := m.DeviceThroughputFor(device.Threads, device.Affinity, traits)
	if err != nil {
		return nil, fmt.Errorf("graph: device throughput: %w", err)
	}
	if hostRate <= 0 || devRate <= 0 {
		return nil, fmt.Errorf("graph: non-positive side throughput (host %g, device %g)", hostRate, devRate)
	}
	s := &Sim{
		w:        w,
		n:        len(w.Nodes),
		hostName: m.Host.Name,
		devName:  m.Device.Name,
		hostCfg:  host,
		devCfg:   device,
	}
	cx := traits.Complexity
	if cx <= 0 {
		cx = 1
	}
	for i, node := range w.Nodes {
		work := node.WorkMB * cx
		s.nodeSec[SideHost][i] = work / hostRate
		s.nodeSec[SideDevice][i] = work / devRate
	}
	// Sort edges by (to, from) so incoming edges of each node are
	// contiguous; the simulate loop walks them via inStart without
	// allocating adjacency lists.
	s.edges = make([]simEdge, len(w.Edges))
	for i, e := range w.Edges {
		s.edges[i] = simEdge{from: e.From, to: e.To, xferSec: link.LatencySec + e.TransferMB/link.BandwidthMBs}
	}
	for i := 1; i < len(s.edges); i++ {
		for j := i; j > 0 && (s.edges[j].to < s.edges[j-1].to ||
			(s.edges[j].to == s.edges[j-1].to && s.edges[j].from < s.edges[j-1].from)); j-- {
			s.edges[j], s.edges[j-1] = s.edges[j-1], s.edges[j]
		}
	}
	ei := 0
	for node := 0; node <= s.n; node++ {
		for ei < len(s.edges) && s.edges[ei].to < node {
			ei++
		}
		s.inStart[node] = ei
	}
	s.inStart[s.n] = len(s.edges)
	return s, nil
}

// Workload returns the simulated graph.
func (s *Sim) Workload() Workload { return s.w }

// Nodes returns the node count — the placement vector's length.
func (s *Sim) Nodes() int { return s.n }

// SideNames returns the processor names placements render with.
func (s *Sim) SideNames() (host, device string) { return s.hostName, s.devName }

// NodeSec returns the priced execution time of one node on one side.
func (s *Sim) NodeSec(side, node int) float64 { return s.nodeSec[side][node] }

// SideConfigs returns the per-side execution configurations the nodes
// were priced at.
func (s *Sim) SideConfigs() (host, device SideConfig) { return s.hostCfg, s.devCfg }

// HostWorkFraction is the percentage of node work (by MB) a placement
// assigns to the host — the DAG analogue of the divisible host fraction.
func (s *Sim) HostWorkFraction(placement []int) float64 {
	total, host := 0.0, 0.0
	for i, node := range s.w.Nodes {
		total += node.WorkMB
		if placement[i]&1 == SideHost {
			host += node.WorkMB
		}
	}
	if total <= 0 {
		return 0
	}
	return 100 * host / total
}

// Makespan runs list scheduling over the placement: nodes start in
// topological (index) order, each waiting for its predecessors — plus
// the link transfer when a predecessor sits on the other side — and for
// its own side's previous node (each side executes serially). The
// return value is the finish time of the last node. It allocates
// nothing and is safe to call concurrently.
func (s *Sim) Makespan(placement []int) float64 {
	var finish [MaxNodes]float64
	var free [2]float64
	for i := 0; i < s.n; i++ {
		side := placement[i] & 1
		ready := 0.0
		for ei := s.inStart[i]; ei < s.inStart[i+1]; ei++ {
			e := &s.edges[ei]
			t := finish[e.from]
			if placement[e.from]&1 != side {
				t += e.xferSec
			}
			if t > ready {
				ready = t
			}
		}
		start := ready
		if free[side] > start {
			start = free[side]
		}
		finish[i] = start + s.nodeSec[side][i]
		free[side] = finish[i]
	}
	if free[SideDevice] > free[SideHost] {
		return free[SideDevice]
	}
	return free[SideHost]
}

// HostOnlySec is the makespan with every node on the host — the
// baseline any heterogeneous placement must beat.
func (s *Sim) HostOnlySec() float64 {
	var placement [MaxNodes]int
	return s.Makespan(placement[:s.n])
}

// DeviceOnlySec is the makespan with every node on the device.
func (s *Sim) DeviceOnlySec() float64 {
	var placement [MaxNodes]int
	for i := 0; i < s.n; i++ {
		placement[i] = SideDevice
	}
	return s.Makespan(placement[:s.n])
}

// RoundRobinPlacement returns the naive alternating placement
// (node i on side i mod 2) — the strawman a search must beat.
func (s *Sim) RoundRobinPlacement() []int {
	placement := make([]int, s.n)
	for i := range placement {
		placement[i] = i % 2
	}
	return placement
}

// NodeSchedule is one node's simulated execution in a Schedule.
type NodeSchedule struct {
	Name             string
	Side             int
	StartSec, EndSec float64
}

// Schedule is the full simulated timeline of one placement, for
// reports and serving results (the search path uses Makespan, which
// allocates nothing).
type Schedule struct {
	Nodes       []NodeSchedule
	MakespanSec float64
	// HostBusySec and DeviceBusySec are each side's summed execution
	// time — the utilization view of the placement.
	HostBusySec, DeviceBusySec float64
}

// Report simulates the placement and returns the full timeline.
func (s *Sim) Report(placement []int) Schedule {
	var finish [MaxNodes]float64
	var free [2]float64
	out := Schedule{Nodes: make([]NodeSchedule, s.n)}
	for i := 0; i < s.n; i++ {
		side := placement[i] & 1
		ready := 0.0
		for ei := s.inStart[i]; ei < s.inStart[i+1]; ei++ {
			e := &s.edges[ei]
			t := finish[e.from]
			if placement[e.from]&1 != side {
				t += e.xferSec
			}
			if t > ready {
				ready = t
			}
		}
		start := ready
		if free[side] > start {
			start = free[side]
		}
		finish[i] = start + s.nodeSec[side][i]
		free[side] = finish[i]
		out.Nodes[i] = NodeSchedule{Name: s.w.Nodes[i].Name, Side: side, StartSec: start, EndSec: finish[i]}
		if side == SideHost {
			out.HostBusySec += s.nodeSec[side][i]
		} else {
			out.DeviceBusySec += s.nodeSec[side][i]
		}
	}
	out.MakespanSec = free[SideHost]
	if free[SideDevice] > out.MakespanSec {
		out.MakespanSec = free[SideDevice]
	}
	return out
}

// FormatPlacement renders a placement with the platform's processor
// names, e.g. "host[stem b1-conv1] device[b1-conv2 ...]".
func (s *Sim) FormatPlacement(placement []int) string {
	var sides [2][]string
	for i := 0; i < s.n; i++ {
		side := placement[i] & 1
		sides[side] = append(sides[side], s.w.Nodes[i].Name)
	}
	return fmt.Sprintf("host[%s] device[%s]",
		strings.Join(sides[SideHost], " "), strings.Join(sides[SideDevice], " "))
}

// PlacementString is the compact canonical encoding of a placement —
// one character per node, 'h' or 'd' — used in serving results where
// byte-identical re-rendering matters.
func PlacementString(placement []int) string {
	var b strings.Builder
	b.Grow(len(placement))
	for _, side := range placement {
		if side&1 == SideHost {
			b.WriteByte('h')
		} else {
			b.WriteByte('d')
		}
	}
	return b.String()
}
