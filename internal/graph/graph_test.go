package graph

import (
	"math"
	"testing"

	"hetopt/internal/machine"
	"hetopt/internal/perf"
)

func testSim(t *testing.T, w Workload) *Sim {
	t.Helper()
	s, err := NewSim(w, perf.NewPaperModel(),
		SideConfig{Threads: 48, Affinity: machine.AffinityCompact},
		SideConfig{Threads: 240, Affinity: machine.AffinityBalanced},
		Link{BandwidthMBs: 6500, LatencySec: 0.0025})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPresetsValidate(t *testing.T) {
	presets := Presets()
	if len(presets) != 3 {
		t.Fatalf("expected 3 shipped presets, got %d", len(presets))
	}
	seen := map[string]bool{}
	for _, w := range presets {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate preset name %q", w.Name)
		}
		seen[w.Name] = true
		if w.TotalWorkMB() <= 0 {
			t.Errorf("%s: non-positive total work", w.Name)
		}
	}
}

func TestValidateRejectsMalformedGraphs(t *testing.T) {
	base := ResNetIsh()
	cases := []struct {
		name   string
		mutate func(*Workload)
	}{
		{"unnamed", func(w *Workload) { w.Name = " " }},
		{"no nodes", func(w *Workload) { w.Nodes = nil }},
		{"zero work", func(w *Workload) { w.Nodes[0].WorkMB = 0 }},
		{"duplicate node", func(w *Workload) { w.Nodes[1].Name = w.Nodes[0].Name }},
		{"backward edge", func(w *Workload) { w.Edges[0] = Edge{From: 3, To: 1} }},
		{"self edge", func(w *Workload) { w.Edges[0] = Edge{From: 2, To: 2} }},
		{"out of range", func(w *Workload) { w.Edges[0] = Edge{From: 0, To: 99} }},
		{"negative transfer", func(w *Workload) { w.Edges[0].TransferMB = -1 }},
		{"too many nodes", func(w *Workload) {
			w.Nodes = make([]Node, MaxNodes+1)
			for i := range w.Nodes {
				w.Nodes[i] = Node{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), WorkMB: 1}
			}
			w.Edges = nil
		}},
	}
	for _, tc := range cases {
		w := base
		w.Nodes = append([]Node(nil), base.Nodes...)
		w.Edges = append([]Edge(nil), base.Edges...)
		tc.mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// TestMakespanChainSemantics checks list scheduling by hand on a
// two-node chain: same-side placement pays no transfer, cross-side
// placement pays exactly the link cost.
func TestMakespanChainSemantics(t *testing.T) {
	w := Workload{
		Name:  "chain",
		Nodes: []Node{{Name: "a", WorkMB: 100}, {Name: "b", WorkMB: 100}},
		Edges: []Edge{{From: 0, To: 1, TransferMB: 65}},
	}
	s := testSim(t, w)
	hostBoth := s.Makespan([]int{0, 0})
	want := s.NodeSec(SideHost, 0) + s.NodeSec(SideHost, 1)
	if math.Abs(hostBoth-want) > 1e-12 {
		t.Errorf("host chain makespan %g, want %g", hostBoth, want)
	}
	cross := s.Makespan([]int{0, 1})
	xfer := 0.0025 + 65.0/6500
	wantCross := s.NodeSec(SideHost, 0) + xfer + s.NodeSec(SideDevice, 1)
	if math.Abs(cross-wantCross) > 1e-12 {
		t.Errorf("cross chain makespan %g, want %g", cross, wantCross)
	}
}

// TestMakespanOverlapsIndependentNodes checks that two independent
// nodes on different sides run concurrently, and that each side
// executes its own nodes serially.
func TestMakespanOverlapsIndependentNodes(t *testing.T) {
	w := Workload{
		Name:  "pair",
		Nodes: []Node{{Name: "a", WorkMB: 300}, {Name: "b", WorkMB: 300}},
	}
	s := testSim(t, w)
	split := s.Makespan([]int{0, 1})
	wantSplit := math.Max(s.NodeSec(SideHost, 0), s.NodeSec(SideDevice, 1))
	if math.Abs(split-wantSplit) > 1e-12 {
		t.Errorf("split makespan %g, want %g (overlap)", split, wantSplit)
	}
	serial := s.Makespan([]int{0, 0})
	wantSerial := s.NodeSec(SideHost, 0) + s.NodeSec(SideHost, 1)
	if math.Abs(serial-wantSerial) > 1e-12 {
		t.Errorf("serial makespan %g, want %g", serial, wantSerial)
	}
}

func TestBaselinesAndReportAgree(t *testing.T) {
	for _, w := range Presets() {
		s := testSim(t, w)
		placement := s.RoundRobinPlacement()
		rep := s.Report(placement)
		if math.Abs(rep.MakespanSec-s.Makespan(placement)) > 1e-12 {
			t.Errorf("%s: Report makespan %g != Makespan %g", w.Name, rep.MakespanSec, s.Makespan(placement))
		}
		if rep.HostBusySec+rep.DeviceBusySec <= 0 {
			t.Errorf("%s: no busy time reported", w.Name)
		}
		if s.HostOnlySec() <= 0 || s.DeviceOnlySec() <= 0 {
			t.Errorf("%s: non-positive baseline", w.Name)
		}
	}
}

func TestPlacementStringRoundTrip(t *testing.T) {
	placement := []int{0, 1, 1, 0, 1}
	s := PlacementString(placement)
	if s != "hddhd" {
		t.Fatalf("PlacementString = %q", s)
	}
	back, err := ParsePlacement(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range placement {
		if back[i] != placement[i] {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, back, placement)
		}
	}
	if _, err := ParsePlacement("hxd"); err == nil {
		t.Fatal("expected error for invalid side character")
	}
}

// TestMakespanAllocsZero enforces the simulator's steady-state
// zero-allocation contract: the makespan path is the inner loop of
// every placement search.
func TestMakespanAllocsZero(t *testing.T) {
	s := testSim(t, ResNetIsh())
	placement := s.RoundRobinPlacement()
	allocs := testing.AllocsPerRun(100, func() {
		if s.Makespan(placement) <= 0 {
			t.Fatal("non-positive makespan")
		}
	})
	if allocs != 0 {
		t.Errorf("Makespan allocates %v objects per run, want 0", allocs)
	}
}
