package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); got != 3 {
		t.Fatalf("Sum = %g, want 3", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	minV, err := Min(xs)
	if err != nil || minV != -1 {
		t.Fatalf("Min = %g, %v; want -1, nil", minV, err)
	}
	maxV, err := Max(xs)
	if err != nil || maxV != 7 {
		t.Fatalf("Max = %g, %v; want 7, nil", maxV, err)
	}
}

func TestMinMaxEmpty(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", got)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance single = %g, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%g) error: %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestPercentileSingle(t *testing.T) {
	got, err := Percentile([]float64{42}, 90)
	if err != nil || got != 42 {
		t.Fatalf("Percentile single = %g, %v", got, err)
	}
}

func TestMedianOrderIndependent(t *testing.T) {
	a, _ := Median([]float64{5, 1, 3})
	b, _ := Median([]float64{3, 5, 1})
	if a != b || a != 3 {
		t.Fatalf("Median = %g/%g, want 3", a, b)
	}
}

func TestNormalizeRangePaperStyle(t *testing.T) {
	// Figure 2 normalizes execution times into [1, 10].
	xs := []float64{0.5, 1.0, 2.0}
	out := NormalizeRange(xs, 1, 10)
	if !almostEqual(out[0], 1, 1e-12) || !almostEqual(out[2], 10, 1e-12) {
		t.Fatalf("endpoints = %v, want 1 and 10", out)
	}
	if !almostEqual(out[1], 4, 1e-12) { // (1-0.5)/1.5 * 9 + 1
		t.Fatalf("mid = %g, want 4", out[1])
	}
}

func TestNormalizeRangeConstant(t *testing.T) {
	out := NormalizeRange([]float64{2, 2, 2}, 1, 10)
	for _, v := range out {
		if v != 1 {
			t.Fatalf("constant input should map to lo: %v", out)
		}
	}
}

func TestNormalizeRangeEmpty(t *testing.T) {
	if out := NormalizeRange(nil, 1, 10); len(out) != 0 {
		t.Fatalf("want empty output, got %v", out)
	}
}

func TestNormalizeRangePreservesInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = NormalizeRange(xs, 0, 1)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input modified: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

// Property: normalization output always lies within [lo, hi] and is
// monotonic with respect to the input ordering.
func TestNormalizeRangeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		out := NormalizeRange(clean, 1, 10)
		for _, v := range out {
			if v < 1-1e-9 || v > 10+1e-9 {
				return false
			}
		}
		for i := range clean {
			for j := range clean {
				if clean[i] < clean[j] && out[i] > out[j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 101)
		p2 = math.Mod(math.Abs(p2), 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(xs, p1)
		v2, err2 := Percentile(xs, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		minV, _ := Min(xs)
		maxV, _ := Max(xs)
		return v1 <= v2+1e-9 && v1 >= minV-1e-9 && v2 <= maxV+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %g, %v", r, err)
	}
	r, err = Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %g, %v", r, err)
	}
	r, err = Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant series correlation = %g, %v", r, err)
	}
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrEmpty {
		t.Fatal("single sample should fail with ErrEmpty")
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but nonlinear relationship: Spearman is 1, Pearson is not.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	s, err := Spearman(xs, ys)
	if err != nil || !almostEqual(s, 1, 1e-12) {
		t.Fatalf("spearman = %g, %v; want 1", s, err)
	}
	p, _ := Pearson(xs, ys)
	if p >= 1-1e-9 {
		t.Fatalf("pearson = %g should be below 1 on a nonlinear relation", p)
	}
}

func TestSpearmanTies(t *testing.T) {
	// Ties take average ranks; a series tied everywhere has zero variance.
	s, err := Spearman([]float64{1, 1, 2, 2}, []float64{3, 3, 4, 4})
	if err != nil || !almostEqual(s, 1, 1e-12) {
		t.Fatalf("tied spearman = %g, %v", s, err)
	}
	s, err = Spearman([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil || s != 0 {
		t.Fatalf("all-tied spearman = %g, %v", s, err)
	}
}

// Property: correlations are symmetric and bounded by 1 in magnitude.
func TestCorrelationProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw[:2*n] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a, err1 := Pearson(xs, ys)
		b, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(a-b) > 1e-9 || math.Abs(a) > 1+1e-9 {
			return false
		}
		s, err := Spearman(xs, ys)
		return err == nil && math.Abs(s) <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
