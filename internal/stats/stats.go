// Package stats provides the small statistical toolkit used throughout the
// reproduction: summary statistics, percentiles, histograms with explicit
// bucket edges (as used by the paper's Figures 7 and 8), and the 1–10
// normalization applied to the motivational experiment in Figure 2.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Min returns the smallest element of xs. It returns ErrEmpty when xs is
// empty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs. It returns ErrEmpty when xs is
// empty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Variance returns the population variance of xs (division by n, not n-1).
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for an empty
// slice and clamps p into [0, 100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// NormalizeRange linearly maps xs onto [lo, hi], the transformation the
// paper applies to Figure 2 ("values are normalized in a range from 1-10").
// A constant input maps every value to lo. The input slice is not modified.
func NormalizeRange(xs []float64, lo, hi float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	minV, _ := Min(xs)
	maxV, _ := Max(xs)
	span := maxV - minV
	for i, x := range xs {
		if span == 0 {
			out[i] = lo
			continue
		}
		out[i] = lo + (x-minV)/span*(hi-lo)
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, used to quantify measured-vs-predicted agreement (Figures 5/6).
// It returns ErrEmpty for fewer than two samples and an error on length
// mismatch; a zero-variance input yields 0.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series lengths differ (%d vs %d)", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation of two series: the
// Pearson correlation of their ranks, robust to monotone nonlinearities.
// Ties receive their average rank.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: series lengths differ (%d vs %d)", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// Summary aggregates the descriptive statistics reported for an experiment
// series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary for xs. It returns ErrEmpty for an empty
// slice.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	minV, _ := Min(xs)
	maxV, _ := Max(xs)
	med, _ := Median(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    minV,
		Max:    maxV,
		Median: med,
	}, nil
}
