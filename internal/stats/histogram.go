package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts samples into buckets delimited by explicit upper edges,
// matching the presentation of the paper's error histograms (Figures 7 and
// 8), which label each bar with the inclusive upper bound of its bucket.
//
// A sample x falls into bucket i when x <= Edges[i] and x > Edges[i-1]
// (x > Edges[len-1] falls into the overflow count).
type Histogram struct {
	// Edges holds strictly increasing inclusive upper bounds.
	Edges []float64
	// Counts holds one count per edge.
	Counts []int
	// Overflow counts samples larger than the last edge.
	Overflow int
}

// NewHistogram creates a histogram with the given strictly increasing
// inclusive upper edges. It returns an error if edges is empty or not
// strictly increasing.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: histogram edges must be strictly increasing (edge %d: %g <= %g)", i, edges[i], edges[i-1])
		}
	}
	return &Histogram{
		Edges:  append([]float64(nil), edges...),
		Counts: make([]int, len(edges)),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the first index with Edges[i] >= x, which is
	// exactly the inclusive-upper-bound bucket.
	if i == len(h.Edges) {
		h.Overflow++
		return
	}
	h.Counts[i]++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded samples, including overflow.
func (h *Histogram) Total() int {
	total := h.Overflow
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// MaxCount returns the largest bucket count (ignoring overflow), useful for
// scaling plots.
func (h *Histogram) MaxCount() int {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}

// Fractions returns per-bucket fractions of the total (0 when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	total := h.Total()
	if total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// PaperHostErrorEdges are the bucket upper bounds of the paper's Figure 7
// (host absolute prediction error, seconds).
func PaperHostErrorEdges() []float64 {
	return []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.1, 0.15, 0.2}
}

// PaperDeviceErrorEdges are the bucket upper bounds of the paper's Figure 8
// (device absolute prediction error, seconds). The axis as printed in the
// arXiv extraction is partially garbled; the edges are reproduced here in
// strictly increasing order.
func PaperDeviceErrorEdges() []float64 {
	return []float64{0.015, 0.025, 0.04, 0.05, 0.08, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 1, 1.5, 2.5}
}
