package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("want error for empty edges")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("want error for non-increasing edges")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("want error for decreasing edges")
	}
	if _, err := NewHistogram([]float64{1, 2, 3}); err != nil {
		t.Fatalf("valid edges rejected: %v", err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h, err := NewHistogram([]float64{0.01, 0.02, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0.005, 0.01, 0.015, 0.02, 0.03, 0.05, 0.06})
	// Inclusive upper bounds: 0.005,0.01 -> bucket0; 0.015,0.02 -> bucket1;
	// 0.03,0.05 -> bucket2; 0.06 -> overflow.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 2 || h.Overflow != 1 {
		t.Fatalf("counts = %v overflow = %d", h.Counts, h.Overflow)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	if h.MaxCount() != 2 {
		t.Fatalf("MaxCount = %d, want 2", h.MaxCount())
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	h, _ := NewHistogram([]float64{1})
	h.Add(math.NaN())
	if h.Total() != 0 {
		t.Fatalf("NaN should be ignored, total = %d", h.Total())
	}
}

func TestHistogramFractions(t *testing.T) {
	h, _ := NewHistogram([]float64{1, 2})
	h.AddAll([]float64{0.5, 1.5, 1.7, 3.0})
	fr := h.Fractions()
	if fr[0] != 0.25 || fr[1] != 0.5 {
		t.Fatalf("fractions = %v", fr)
	}
}

func TestHistogramFractionsEmpty(t *testing.T) {
	h, _ := NewHistogram([]float64{1})
	fr := h.Fractions()
	if len(fr) != 1 || fr[0] != 0 {
		t.Fatalf("fractions = %v", fr)
	}
}

func TestPaperEdges(t *testing.T) {
	if _, err := NewHistogram(PaperHostErrorEdges()); err != nil {
		t.Fatalf("host edges invalid: %v", err)
	}
	if _, err := NewHistogram(PaperDeviceErrorEdges()); err != nil {
		t.Fatalf("device edges invalid: %v", err)
	}
	if n := len(PaperHostErrorEdges()); n != 10 {
		t.Fatalf("host edge count = %d, want 10 (paper Fig 7)", n)
	}
	if n := len(PaperDeviceErrorEdges()); n != 14 {
		t.Fatalf("device edge count = %d, want 14 (paper Fig 8)", n)
	}
}

// Property: every finite non-NaN sample lands in exactly one bucket or the
// overflow, so totals always match the number of samples added.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h, err := NewHistogram([]float64{0.1, 0.5, 1, 5, 100})
		if err != nil {
			return false
		}
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		return h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
