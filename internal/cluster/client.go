package cluster

import (
	"bytes"
	"net/http"
	"time"
)

// ForwardedHeader marks a request as already proxied once. A node
// receiving it serves the request itself, whatever its ring says —
// the loop guard that caps every request at a single extra hop even
// when two nodes momentarily disagree about ownership (mismatched
// -peers during a rolling restart).
const ForwardedHeader = "X-Hetopt-Forwarded"

// DefaultForwardTimeout bounds one peer exchange end to end. Forwarded
// cold jobs block until the owner finishes computing (the proxied hop
// is synchronous), so the default is sized for compute, not for the
// microseconds a warm hit takes.
const DefaultForwardTimeout = 30 * time.Second

// Client is the pooled peer HTTP client: one shared http.Transport
// with keep-alive connections per peer, so steady forwarding traffic
// reuses sockets instead of paying a dial per request.
type Client struct {
	hc *http.Client
}

// NewClient builds a peer client with the given per-exchange timeout
// (<= 0 selects DefaultForwardTimeout).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultForwardTimeout
	}
	return &Client{hc: &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        128,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// Post sends body as one JSON POST to url, marking it forwarded when
// from is non-empty. The caller owns the response and must close its
// body; a non-nil error means no response was received (connection
// refused, timeout) and the exchange is eligible for failover.
func (c *Client) Post(url string, body []byte, from string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if from != "" {
		req.Header.Set(ForwardedHeader, from)
	}
	return c.hc.Do(req)
}
