package cluster

import (
	"fmt"
	"testing"
)

// catalogKeys generates n keys shaped like the serving layer's
// canonical store keys — the real key distribution the ring shards —
// cycling workload families, platforms and methods over a seed sweep.
func catalogKeys(n int) [][]byte {
	families := []string{"dna:human", "dna:mouse", "spmv:medium", "spmv:large", "stencil:medium", "crypto:medium", "dag:resnet-ish", "dag:fork-join"}
	platforms := []string{"paper", "gpu-like", "edge"}
	methods := []string{"EM", "EML", "SAM", "SAML"}
	keys := make([][]byte, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("w=%s|p=%s|mb=3246|m=%s|s=auto|o=time|a=0|sl=0|it=1000|r=1|seed=%d",
			families[i%len(families)], platforms[i%len(platforms)], methods[i%len(methods)], i)
		keys = append(keys, []byte(k))
	}
	return keys
}

func threeNodes() []string {
	return []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}
}

// TestRingBalance pins the distribution quality the sharding story
// rests on: at 128 virtual nodes, 10k catalog-shaped keys land within
// ±20% of fair share on every node of a 3-node ring.
func TestRingBalance(t *testing.T) {
	nodes := threeNodes()
	r, err := New(nodes, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := catalogKeys(10000)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		c := counts[n]
		if float64(c) < 0.8*fair || float64(c) > 1.2*fair {
			t.Errorf("node %s owns %d of %d keys; fair share %.0f ±20%% violated (full split %v)",
				n, c, len(keys), fair, counts)
		}
	}
}

// TestRingRemapFraction: adding one node to a 3-node ring must remap
// roughly a quarter of the key space — and nothing else: every key
// that changes owner moves TO the new node (consistent hashing's
// defining property; a modulo shard would remap ~75% here). Removing
// the node restores the original ownership exactly.
func TestRingRemapFraction(t *testing.T) {
	nodes := threeNodes()
	added := "http://10.0.0.4:8080"
	r3, err := New(nodes, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := New(append(append([]string{}, nodes...), added), DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := catalogKeys(10000)
	moved := 0
	for _, k := range keys {
		before, after := r3.Owner(k), r4.Owner(k)
		if before != after {
			moved++
			if after != added {
				t.Fatalf("key %q moved %s -> %s: a key may only move to the added node", k, before, after)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Expected fraction is 1/4; the ±20%-of-fair balance bound above
	// translates to the same tolerance here.
	if frac < 0.25*0.8 || frac > 0.25*1.2 {
		t.Errorf("adding a 4th node remapped %.3f of keys; want ~0.25 ±20%%", frac)
	}
	// Removal is the exact inverse: rebuilding the 3-node ring gives
	// identical ownership for every key (determinism: the ring is a
	// pure function of the node set).
	r3b, err := New([]string{nodes[2], nodes[0], nodes[1]}, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if r3.Owner(k) != r3b.Owner(k) {
			t.Fatalf("ring is not a pure function of the node set: key %q owner %s vs %s", k, r3.Owner(k), r3b.Owner(k))
		}
	}
}

// TestRingGoldenTable pins ownership (owner and follower) of a fixed
// key sample against a golden table, so the ring layout can never
// drift across PRs — a silent drift would cold-start every node's
// store slice on upgrade.
func TestRingGoldenTable(t *testing.T) {
	r, err := New(threeNodes(), DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := catalogKeys(8)
	golden := []struct{ owner, follower string }{
		{"http://10.0.0.1:8080", "http://10.0.0.2:8080"},
		{"http://10.0.0.1:8080", "http://10.0.0.2:8080"},
		{"http://10.0.0.2:8080", "http://10.0.0.1:8080"},
		{"http://10.0.0.1:8080", "http://10.0.0.3:8080"},
		{"http://10.0.0.2:8080", "http://10.0.0.1:8080"},
		{"http://10.0.0.3:8080", "http://10.0.0.1:8080"},
		{"http://10.0.0.2:8080", "http://10.0.0.1:8080"},
		{"http://10.0.0.3:8080", "http://10.0.0.1:8080"},
	}
	for i, k := range keys {
		owner, follower := r.Lookup(k)
		if owner != golden[i].owner || follower != golden[i].follower {
			t.Errorf("key %d (%q): owner/follower %s/%s, golden %s/%s",
				i, k, owner, follower, golden[i].owner, golden[i].follower)
		}
		if owner == follower {
			t.Errorf("key %d: follower equals owner on a 3-node ring", i)
		}
	}
}

// TestRingInputOrderIrrelevant: every permutation of the peer list
// builds the same ring — all cluster members agree on ownership
// whatever order their -peers flags list.
func TestRingInputOrderIrrelevant(t *testing.T) {
	nodes := threeNodes()
	perms := [][]string{
		{nodes[0], nodes[1], nodes[2]},
		{nodes[2], nodes[1], nodes[0]},
		{nodes[1], nodes[0], nodes[2], nodes[0]}, // duplicate folded
	}
	rings := make([]*Ring, len(perms))
	for i, p := range perms {
		var err error
		rings[i], err = New(p, DefaultVirtualNodes)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range catalogKeys(512) {
		o0, f0 := rings[0].Lookup(k)
		for i := 1; i < len(rings); i++ {
			o, f := rings[i].Lookup(k)
			if o != o0 || f != f0 {
				t.Fatalf("permutation %d disagrees on key %q: %s/%s vs %s/%s", i, k, o, f, o0, f0)
			}
		}
	}
}

// TestRingSingleNode: one node owns everything and is its own
// follower.
func TestRingSingleNode(t *testing.T) {
	r, err := New([]string{"http://solo:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	owner, follower := r.Lookup([]byte("w=dna:human"))
	if owner != "http://solo:1" || follower != "http://solo:1" {
		t.Fatalf("single-node lookup: %s/%s", owner, follower)
	}
}

// TestRingRejects pins the constructor's error contract.
func TestRingRejects(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := New([]string{"http://a:1", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
}

// TestRingLookupAllocationFree pins the 0 allocs/op contract of the
// routing hot path (every single POST pays one lookup).
func TestRingLookupAllocationFree(t *testing.T) {
	r, err := New(threeNodes(), DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("w=dna:human|p=paper|mb=3246|m=SAML|s=auto|o=time|a=0|sl=0|it=1000|r=1|seed=42")
	if allocs := testing.AllocsPerRun(200, func() {
		owner, follower := r.Lookup(key)
		if owner == "" || follower == "" {
			t.Fatal("empty lookup")
		}
	}); allocs != 0 {
		t.Fatalf("Lookup allocates %v/op; the routing hot path must be allocation-free", allocs)
	}
}
