package cluster

import (
	"fmt"
	"sync/atomic"
)

// Route is one routing decision: the key's owner and follower, and
// whether this node is the owner (Local) — in which case the request
// is served here and no hop is paid.
type Route struct {
	Owner    string
	Follower string
	Local    bool
}

// Router binds a ring to one member node: it answers "is this key
// mine, and if not, who do I forward to?" and tracks a coarse up/down
// health bit per peer, flipped by forward and replication outcomes
// (no background prober — traffic is the probe).
type Router struct {
	ring *Ring
	self string
	up   []atomic.Bool // indexed like ring.nodes
}

// NewRouter builds the router for node self over the peer set (self
// included — every node of a cluster is configured with the same
// -peers list). Peers start marked up.
func NewRouter(self string, peers []string, virtualNodes int) (*Router, error) {
	ring, err := New(peers, virtualNodes)
	if err != nil {
		return nil, err
	}
	idx := -1
	for i, n := range ring.Nodes() {
		if n == self {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("cluster: node id %q is not in the peer set %v", self, ring.Nodes())
	}
	r := &Router{ring: ring, self: self, up: make([]atomic.Bool, len(ring.Nodes()))}
	for i := range r.up {
		r.up[i].Store(true)
	}
	return r, nil
}

// Self returns this node's name.
func (r *Router) Self() string { return r.self }

// Ring returns the underlying ring.
func (r *Router) Ring() *Ring { return r.ring }

// Peers returns the sorted full node set (self included).
func (r *Router) Peers() []string { return r.ring.Nodes() }

// Route decides where key is served.
func (r *Router) Route(key []byte) Route {
	owner, follower := r.ring.Lookup(key)
	return Route{Owner: owner, Follower: follower, Local: owner == r.self}
}

// nodeIndex resolves a node name; -1 when unknown.
func (r *Router) nodeIndex(node string) int {
	for i, n := range r.ring.Nodes() {
		if n == node {
			return i
		}
	}
	return -1
}

// MarkUp records a successful exchange with node.
func (r *Router) MarkUp(node string) {
	if i := r.nodeIndex(node); i >= 0 {
		r.up[i].Store(true)
	}
}

// MarkDown records a failed exchange with node.
func (r *Router) MarkDown(node string) {
	if i := r.nodeIndex(node); i >= 0 {
		r.up[i].Store(false)
	}
}

// Up reports the last-known health of node (unknown nodes are down).
func (r *Router) Up(node string) bool {
	i := r.nodeIndex(node)
	return i >= 0 && r.up[i].Load()
}
