// Package cluster is the horizontal scale-out layer of the tuning
// service: a consistent-hash ring that shards the canonical request
// key space over N hetserved nodes (so each node's warm-start store
// and trained models stay hot for its slice), a router that decides
// local-vs-forward and tracks peer health, a pooled stdlib HTTP peer
// client, and a bounded asynchronous replicator that copies completed
// hot store entries to each key's ring-successor follower for
// failover. See DESIGN.md, "The cluster layer".
//
// The package is deliberately below the serving layer: it knows about
// node names (base URLs), key bytes and opaque replication payloads,
// never about tune requests — internal/serve composes it into the
// HTTP handlers.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node virtual-node count: enough
// points that a 3-node ring stays within a few percent of fair share
// (the ±20% balance bound is pinned by tests at this value), few
// enough that a lookup's binary search stays cache-resident.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring: each node contributes
// VirtualNodes points hashed onto a 64-bit circle (FNV-1a, the same
// hash family the sharded store routes stripes with), and a key is
// owned by the first point at or clockwise of the key's own hash.
// Construct with New; lookups are concurrency-safe and allocation-free
// (pinned by a tracked bench).
//
// Determinism contract: the ring is a pure function of the sorted node
// name set and the virtual-node count — input order never matters, so
// every node of a cluster computes identical ownership, and a golden
// test pins the point layout so ownership never drifts across PRs
// (a drift would silently cold-start every store).
type Ring struct {
	points []ringPoint // sorted by hash, ties broken by node index
	nodes  []string    // sorted, deduplicated
	vnodes int
}

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// New builds a ring over the given node names (base URLs in the
// serving layer). Names are deduplicated and sorted, so every cluster
// member builds the same ring whatever order its -peers flag lists.
// virtualNodes <= 0 selects DefaultVirtualNodes.
func New(nodes []string, virtualNodes int) (*Ring, error) {
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{
		nodes:  uniq,
		vnodes: virtualNodes,
		points: make([]ringPoint, 0, len(uniq)*virtualNodes),
	}
	var buf [24]byte
	for ni, name := range uniq {
		for v := 0; v < virtualNodes; v++ {
			h := fnv1a(offset64, name)
			h = fnv1aByte(h, '#')
			h = fnv1aBytes(h, strconv.AppendInt(buf[:0], int64(v), 10))
			r.points = append(r.points, ringPoint{hash: mix64(h), node: int32(ni)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the sorted node name set (callers must not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// VirtualNodes returns the per-node point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func fnv1aBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func fnv1aByte(h uint64, c byte) uint64 {
	h ^= uint64(c)
	h *= prime64
	return h
}

// mix64 is a 64-bit finalizer (murmur3 fmix64): vnode point strings
// differ only in their numeric suffix and catalog keys share long
// prefixes, so raw FNV-1a values are correlated enough to skew the
// ±20% balance bound; the finalizer's avalanche restores uniformity.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ownerPoint returns the index of the first ring point at or clockwise
// of hash h (wrapping past the top of the circle).
func (r *Ring) ownerPoint(h uint64) int {
	pts := r.points
	// Binary search: first point with hash >= h.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pts) {
		lo = 0 // wrap
	}
	return lo
}

// Owner returns the node owning key.
func (r *Ring) Owner(key []byte) string {
	if len(r.nodes) == 1 {
		return r.nodes[0]
	}
	return r.nodes[r.points[r.ownerPoint(mix64(fnv1aBytes(offset64, key)))].node]
}

// Lookup returns the node owning key and its follower — the next
// distinct node clockwise on the ring, which is where completed
// entries for the key are replicated and where the router fails over
// when the owner is unreachable. A single-node ring returns the node
// as both.
func (r *Ring) Lookup(key []byte) (owner, follower string) {
	if len(r.nodes) == 1 {
		return r.nodes[0], r.nodes[0]
	}
	pts := r.points
	i := r.ownerPoint(mix64(fnv1aBytes(offset64, key)))
	own := pts[i].node
	// Walk clockwise to the first point of a different node. The walk
	// terminates: the ring holds points of >= 2 distinct nodes.
	j := i
	for {
		j++
		if j == len(pts) {
			j = 0
		}
		if pts[j].node != own {
			return r.nodes[own], r.nodes[pts[j].node]
		}
	}
}
