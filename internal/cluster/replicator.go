package cluster

import (
	"sync"
	"sync/atomic"
)

// Item is one replication unit: an opaque pre-marshaled payload (the
// serving layer's {key, rendered response bytes} envelope) and the
// nodes it should land on.
type Item struct {
	Targets []string
	Payload []byte
}

// Replicator copies completed hot store entries to follower nodes
// from a bounded asynchronous queue. Enqueue never blocks and never
// does I/O: the warm path hands the item over and moves on, and a
// slow — or entirely black-holed — follower costs queued items, never
// request latency. A full queue drops the newest item (replication is
// an availability optimization, not a durability contract: the owner
// still holds the entry, and a failover miss just recomputes
// deterministically).
type Replicator struct {
	ch   chan Item
	send func(target string, payload []byte) error
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool

	sent    atomic.Int64
	failed  atomic.Int64
	dropped atomic.Int64
}

// DefaultReplicationQueue bounds the pending replication queue.
const DefaultReplicationQueue = 256

// NewReplicator starts a replicator draining a queue of the given
// bound (<= 0 selects DefaultReplicationQueue) on workers goroutines
// (<= 0 selects 1; a single worker keeps per-follower apply order
// matching completion order). send performs one delivery; its error
// is counted, not retried.
func NewReplicator(queue, workers int, send func(target string, payload []byte) error) *Replicator {
	if queue <= 0 {
		queue = DefaultReplicationQueue
	}
	if workers <= 0 {
		workers = 1
	}
	r := &Replicator{ch: make(chan Item, queue), send: send}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer r.wg.Done()
			for it := range r.ch {
				for _, t := range it.Targets {
					if err := r.send(t, it.Payload); err != nil {
						r.failed.Add(1)
					} else {
						r.sent.Add(1)
					}
				}
			}
		}()
	}
	return r
}

// Enqueue hands one item to the queue, reporting false (and counting
// a drop) when the queue is full or the replicator is closed. Items
// without targets are accepted and ignored.
func (r *Replicator) Enqueue(it Item) bool {
	if len(it.Targets) == 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		r.dropped.Add(1)
		return false
	}
	select {
	case r.ch <- it:
		return true
	default:
		r.dropped.Add(1)
		return false
	}
}

// Close stops intake and waits for queued deliveries to finish (each
// bounded by the send function's own timeout). Idempotent.
func (r *Replicator) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.ch)
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Sent counts successful deliveries (one per target).
func (r *Replicator) Sent() int64 { return r.sent.Load() }

// Failed counts deliveries whose send returned an error.
func (r *Replicator) Failed() int64 { return r.failed.Load() }

// Dropped counts items rejected by the full (or closed) queue.
func (r *Replicator) Dropped() int64 { return r.dropped.Load() }

// Pending returns the queued item count (diagnostics).
func (r *Replicator) Pending() int { return len(r.ch) }
