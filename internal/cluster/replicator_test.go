package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestReplicatorDelivers: every enqueued item reaches every target.
func TestReplicatorDelivers(t *testing.T) {
	var mu sync.Mutex
	got := map[string][]string{}
	r := NewReplicator(8, 1, func(target string, payload []byte) error {
		mu.Lock()
		got[target] = append(got[target], string(payload))
		mu.Unlock()
		return nil
	})
	for i := 0; i < 4; i++ {
		if !r.Enqueue(Item{Targets: []string{"a", "b"}, Payload: []byte{byte('0' + i)}}) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	r.Close()
	if r.Sent() != 8 || r.Failed() != 0 || r.Dropped() != 0 {
		t.Fatalf("sent/failed/dropped = %d/%d/%d, want 8/0/0", r.Sent(), r.Failed(), r.Dropped())
	}
	mu.Lock()
	defer mu.Unlock()
	for _, target := range []string{"a", "b"} {
		if len(got[target]) != 4 {
			t.Fatalf("target %s got %d payloads, want 4", target, len(got[target]))
		}
		// One worker: per-target apply order matches enqueue order.
		for i, p := range got[target] {
			if p != string(byte('0'+i)) {
				t.Fatalf("target %s payload %d = %q, out of order", target, i, p)
			}
		}
	}
}

// TestReplicatorEnqueueNeverBlocks pins the warm-path contract the
// SetBody fix depends on: with the single worker black-holed inside a
// send, Enqueue keeps returning immediately — filling the queue and
// then dropping — instead of blocking the caller.
func TestReplicatorEnqueueNeverBlocks(t *testing.T) {
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	r := NewReplicator(2, 1, func(string, []byte) error {
		once.Do(func() { close(blocked) })
		<-release
		return nil
	})
	defer func() { close(release); r.Close() }()

	if !r.Enqueue(Item{Targets: []string{"x"}, Payload: []byte("0")}) {
		t.Fatal("first enqueue rejected")
	}
	<-blocked // worker is now stuck holding item 0

	// Fill the 2-slot queue, then overflow it. Each call must return
	// promptly; a blocking Enqueue would hang the test here.
	done := make(chan int, 1)
	go func() {
		accepted := 0
		for i := 0; i < 5; i++ {
			if r.Enqueue(Item{Targets: []string{"x"}, Payload: []byte("x")}) {
				accepted++
			}
		}
		done <- accepted
	}()
	select {
	case accepted := <-done:
		if accepted != 2 {
			t.Fatalf("queue of 2 accepted %d of 5 items behind a stuck worker", accepted)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Enqueue blocked behind a black-holed send")
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
}

// TestReplicatorCountsFailures: send errors are counted, not retried,
// and never stop the queue.
func TestReplicatorCountsFailures(t *testing.T) {
	calls := 0
	r := NewReplicator(8, 1, func(string, []byte) error {
		calls++
		if calls%2 == 1 {
			return errors.New("peer down")
		}
		return nil
	})
	for i := 0; i < 6; i++ {
		r.Enqueue(Item{Targets: []string{"x"}, Payload: []byte("p")})
	}
	r.Close()
	if r.Sent() != 3 || r.Failed() != 3 {
		t.Fatalf("sent/failed = %d/%d, want 3/3", r.Sent(), r.Failed())
	}
}

// TestReplicatorClose: Close is idempotent, drains queued items, and
// later Enqueues are counted drops.
func TestReplicatorClose(t *testing.T) {
	var delivered atomic64
	r := NewReplicator(8, 2, func(string, []byte) error {
		delivered.inc()
		return nil
	})
	for i := 0; i < 5; i++ {
		r.Enqueue(Item{Targets: []string{"x"}, Payload: []byte("p")})
	}
	r.Close()
	r.Close()
	if n := delivered.load(); n != 5 {
		t.Fatalf("delivered %d of 5 queued items before Close returned", n)
	}
	if r.Enqueue(Item{Targets: []string{"x"}, Payload: []byte("p")}) {
		t.Fatal("enqueue accepted after Close")
	}
	if r.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", r.Dropped())
	}
	if r.Enqueue(Item{Payload: []byte("p")}) != true {
		t.Fatal("target-less item must be accepted (and ignored) even closed")
	}
}

// atomic64 is a tiny counter helper (sync/atomic.Int64 spelled out to
// keep the test body readable).
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// TestRouterRoutesAndHealth covers the Route decision and the
// traffic-driven health bits.
func TestRouterRoutesAndHealth(t *testing.T) {
	nodes := threeNodes()
	rt, err := NewRouter(nodes[1], nodes, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Self() != nodes[1] {
		t.Fatalf("Self = %q", rt.Self())
	}
	local, remote := 0, 0
	for _, k := range catalogKeys(1000) {
		r := rt.Route(k)
		if r.Owner == "" || r.Follower == "" || r.Owner == r.Follower {
			t.Fatalf("bad route %+v", r)
		}
		if r.Local != (r.Owner == nodes[1]) {
			t.Fatalf("Local flag disagrees with owner: %+v", r)
		}
		if r.Local {
			local++
		} else {
			remote++
		}
	}
	if local == 0 || remote == 0 {
		t.Fatalf("route split local=%d remote=%d: both paths must occur", local, remote)
	}

	if !rt.Up(nodes[0]) {
		t.Fatal("peers must start up")
	}
	rt.MarkDown(nodes[0])
	if rt.Up(nodes[0]) {
		t.Fatal("MarkDown did not stick")
	}
	rt.MarkUp(nodes[0])
	if !rt.Up(nodes[0]) {
		t.Fatal("MarkUp did not stick")
	}
	if rt.Up("http://unknown:1") {
		t.Fatal("unknown node reported up")
	}

	if _, err := NewRouter("http://not-a-member:1", nodes, 0); err == nil {
		t.Fatal("router accepted a self outside the peer set")
	}
}
