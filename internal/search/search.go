// Package search is the concurrent optimization substrate shared by every
// tuning path: a concurrency-safe memoizing evaluation cache (deduplicating
// repeated configuration evaluations across annealing chains and restarts)
// and a deterministic worker-pool runner (sharding enumeration and fanning
// out independent chains). See DESIGN.md, "The search layer".
//
// Determinism is the package's design constraint: every helper is written
// so that results depend only on the inputs, never on goroutine
// scheduling. Evaluations in this codebase are pure functions of the
// configuration (measurement noise is hash-keyed, predictions are
// deterministic), so caching and sharding cannot change any value — only
// how many times it is computed and on how many goroutines.
package search

import (
	"math"
	"sync"
	"sync/atomic"

	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// Evaluator estimates the per-side execution times and energy of a
// configuration. It is structurally identical to core.Evaluator, so
// *core.Measurer and *core.Predictor satisfy it without an import cycle.
type Evaluator interface {
	Evaluate(cfg space.Config) (offload.Measurement, error)
}

// BatchEvaluator is an Evaluator that can also evaluate a slice of
// configurations in one call, writing results into out (len(out) >=
// len(cfgs)). Semantics match calling Evaluate sequentially over cfgs —
// same values, same effort accounting, stop at the first error — batching
// only amortizes per-call interface and memo overhead. *core.Measurer,
// *core.Predictor and *Cache implement it; strategies probe for it with a
// type assertion and fall back to the sequential loop.
type BatchEvaluator interface {
	Evaluator
	EvaluateBatch(cfgs []space.Config, out []offload.Measurement) error
}

// memoEntry holds one memoized computation; once guards the single
// flight, done publishes completion to the lock-free Get fast path.
type memoEntry[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

// memoShard is one lock stripe of a Memo: a mutex plus the entries it
// guards.
type memoShard[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*memoEntry[V]
}

// Memo is a concurrency-safe, single-flight memo table: concurrent Do
// calls with the same key perform the computation exactly once and share
// the result (including the error). Entries may be striped over several
// independently locked shards (NewShardedMemo) so concurrent chains do
// not serialize on one mutex. The zero value is not usable; construct
// with NewMemo or NewShardedMemo.
type Memo[K comparable, V any] struct {
	shards []memoShard[K, V]
	hash   func(K) uint64

	lookups atomic.Int64
	unique  atomic.Int64
}

// NewMemo returns an empty single-shard memo table.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return NewShardedMemo[K, V](1, nil)
}

// NewShardedMemo returns an empty memo table striped over shards locks,
// routing each key by hash. Sharding never changes results — only which
// mutex a key contends on. shards < 2 or a nil hash yields the plain
// single-shard table.
func NewShardedMemo[K comparable, V any](shards int, hash func(K) uint64) *Memo[K, V] {
	if shards < 2 || hash == nil {
		shards, hash = 1, nil
	}
	m := &Memo[K, V]{shards: make([]memoShard[K, V], shards), hash: hash}
	for i := range m.shards {
		m.shards[i].entries = map[K]*memoEntry[V]{}
	}
	return m
}

func (m *Memo[K, V]) shard(key K) *memoShard[K, V] {
	if len(m.shards) == 1 {
		return &m.shards[0]
	}
	return &m.shards[m.hash(key)%uint64(len(m.shards))]
}

// Do returns the memoized result for key, computing it with fn on the
// first call. Concurrent first calls block until the single computation
// finishes.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.lookups.Add(1)
	s := m.shard(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &memoEntry[V]{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		m.unique.Add(1)
		e.val, e.err = fn()
		e.done.Store(true)
	})
	return e.val, e.err
}

// Get returns the memoized result for key when its computation has
// already completed, without blocking and without allocating. A miss —
// absent key or a computation still in flight — reports ok false and
// counts nothing, so a Get-then-Do sequence still records exactly one
// lookup per logical evaluation.
func (m *Memo[K, V]) Get(key K) (v V, ok bool, err error) {
	s := m.shard(key)
	s.mu.Lock()
	e := s.entries[key]
	s.mu.Unlock()
	if e == nil || !e.done.Load() {
		return v, false, nil
	}
	m.lookups.Add(1)
	return e.val, true, e.err
}

// Lookups returns the number of Do calls so far.
func (m *Memo[K, V]) Lookups() int { return int(m.lookups.Load()) }

// Unique returns the number of distinct keys computed (cache misses).
func (m *Memo[K, V]) Unique() int { return int(m.unique.Load()) }

// Hits returns the number of Do calls served from the memo.
func (m *Memo[K, V]) Hits() int { return m.Lookups() - m.Unique() }

// cacheShards stripes the Cache memo: enough locks that 4-8 concurrent
// chains rarely collide, few enough that the table stays cheap to build.
const cacheShards = 16

// HashConfig mixes a configuration into a 64-bit shard-routing hash.
// It only spreads keys over memo shards; no result depends on it.
func HashConfig(cfg space.Config) uint64 {
	h := splitmix64(uint64(cfg.HostThreads)<<32 ^ uint64(cfg.DeviceThreads))
	h ^= splitmix64(uint64(cfg.HostAffinity)<<8 ^ uint64(cfg.DeviceAffinity))
	h ^= splitmix64(math.Float64bits(cfg.HostFraction))
	return h
}

// Cache is a concurrency-safe memoizing Evaluator: repeated evaluations
// of the same configuration — across annealing chains, restarts or
// refinement rounds — hit the memo instead of the underlying evaluator.
// Because evaluations are deterministic, wrapping an evaluator in a Cache
// never changes any returned value, only the effort spent. The memo is
// keyed on the configuration alone and stores the full Measurement
// (times and energy), so every objective is served from one evaluation.
// Entries are striped over sharded locks and hits are served through the
// allocation-free Get fast path (see DESIGN.md, "The hot path").
type Cache struct {
	eval Evaluator
	memo *Memo[space.Config, offload.Measurement]
}

// NewCache wraps an evaluator in a fresh cache.
func NewCache(eval Evaluator) *Cache {
	return &Cache{eval: eval, memo: NewShardedMemo[space.Config, offload.Measurement](cacheShards, HashConfig)}
}

// Evaluate implements Evaluator with single-flight memoization. Hits take
// the Get fast path, which neither blocks on in-flight computations nor
// allocates (the Do closure is only built on a miss).
func (c *Cache) Evaluate(cfg space.Config) (offload.Measurement, error) {
	if v, ok, err := c.memo.Get(cfg); ok {
		return v, err
	}
	return c.memo.Do(cfg, func() (offload.Measurement, error) {
		return c.eval.Evaluate(cfg)
	})
}

// EvaluateBatch implements BatchEvaluator: identical to evaluating cfgs
// sequentially (same memo accounting, first error stops), with hits
// served allocation-free.
func (c *Cache) EvaluateBatch(cfgs []space.Config, out []offload.Measurement) error {
	for i, cfg := range cfgs {
		v, err := c.Evaluate(cfg)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// Lookups returns the number of Evaluate calls observed.
func (c *Cache) Lookups() int { return c.memo.Lookups() }

// Unique returns the number of distinct configurations evaluated.
func (c *Cache) Unique() int { return c.memo.Unique() }

// Hits returns the number of Evaluate calls served from the cache.
func (c *Cache) Hits() int { return c.memo.Hits() }

// ChainSeed derives the seed of worker i (an annealing chain, a
// heuristic restart, a portfolio member) from the base seed. Worker 0
// uses the base seed unchanged — so a single worker reproduces the
// plain single-run behavior bit-for-bit — and later workers get
// decorrelated streams via a SplitMix64 finalizer. Every concurrent
// search path derives its per-worker seeds through this one function,
// which is what makes results reproducible at any parallelism level.
func ChainSeed(base int64, worker int) int64 {
	if worker == 0 {
		return base
	}
	return int64(splitmix64(uint64(base) + uint64(worker)*0x9E3779B97F4A7C15))
}

// splitmix64 is the finalizer of the SplitMix64 generator (also used by
// internal/perf for measurement noise): a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Workers normalizes a requested parallelism: zero or negative requests
// select 1 (sequential).
func Workers(n int) int {
	if n <= 1 {
		return 1
	}
	return n
}

// Shards splits the range [0, n) into at most k contiguous, near-equal
// subranges [lo, hi). It returns fewer shards when n < k and nil when
// n <= 0.
func Shards(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	shards := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		shards = append(shards, [2]int{lo, hi})
		lo = hi
	}
	return shards
}

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// concurrent goroutines. All indices run even if some fail; the error
// with the lowest index is returned unmodified, making both the reported
// failure and its message independent of goroutine scheduling. workers
// <= 1 runs sequentially on the calling goroutine (stopping at the first
// error, which is then also the lowest-index one).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
