// Package search is the concurrent optimization substrate shared by every
// tuning path: a concurrency-safe memoizing evaluation cache (deduplicating
// repeated configuration evaluations across annealing chains and restarts)
// and a deterministic worker-pool runner (sharding enumeration and fanning
// out independent chains). See DESIGN.md, "The search layer".
//
// Determinism is the package's design constraint: every helper is written
// so that results depend only on the inputs, never on goroutine
// scheduling. Evaluations in this codebase are pure functions of the
// configuration (measurement noise is hash-keyed, predictions are
// deterministic), so caching and sharding cannot change any value — only
// how many times it is computed and on how many goroutines.
package search

import (
	"sync"
	"sync/atomic"

	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// Evaluator estimates the per-side execution times and energy of a
// configuration. It is structurally identical to core.Evaluator, so
// *core.Measurer and *core.Predictor satisfy it without an import cycle.
type Evaluator interface {
	Evaluate(cfg space.Config) (offload.Measurement, error)
}

// memoEntry holds one memoized computation; once guards the single flight.
type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Memo is a concurrency-safe, single-flight memo table: concurrent Do
// calls with the same key perform the computation exactly once and share
// the result (including the error). The zero value is not usable;
// construct with NewMemo.
type Memo[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*memoEntry[V]

	lookups atomic.Int64
	unique  atomic.Int64
}

// NewMemo returns an empty memo table.
func NewMemo[K comparable, V any]() *Memo[K, V] {
	return &Memo[K, V]{entries: map[K]*memoEntry[V]{}}
}

// Do returns the memoized result for key, computing it with fn on the
// first call. Concurrent first calls block until the single computation
// finishes.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.lookups.Add(1)
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[V]{}
		m.entries[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		m.unique.Add(1)
		e.val, e.err = fn()
	})
	return e.val, e.err
}

// Lookups returns the number of Do calls so far.
func (m *Memo[K, V]) Lookups() int { return int(m.lookups.Load()) }

// Unique returns the number of distinct keys computed (cache misses).
func (m *Memo[K, V]) Unique() int { return int(m.unique.Load()) }

// Hits returns the number of Do calls served from the memo.
func (m *Memo[K, V]) Hits() int { return m.Lookups() - m.Unique() }

// Cache is a concurrency-safe memoizing Evaluator: repeated evaluations
// of the same configuration — across annealing chains, restarts or
// refinement rounds — hit the memo instead of the underlying evaluator.
// Because evaluations are deterministic, wrapping an evaluator in a Cache
// never changes any returned value, only the effort spent. The memo is
// keyed on the configuration alone and stores the full Measurement
// (times and energy), so every objective is served from one evaluation.
type Cache struct {
	eval Evaluator
	memo *Memo[space.Config, offload.Measurement]
}

// NewCache wraps an evaluator in a fresh cache.
func NewCache(eval Evaluator) *Cache {
	return &Cache{eval: eval, memo: NewMemo[space.Config, offload.Measurement]()}
}

// Evaluate implements Evaluator with single-flight memoization.
func (c *Cache) Evaluate(cfg space.Config) (offload.Measurement, error) {
	return c.memo.Do(cfg, func() (offload.Measurement, error) {
		return c.eval.Evaluate(cfg)
	})
}

// Lookups returns the number of Evaluate calls observed.
func (c *Cache) Lookups() int { return c.memo.Lookups() }

// Unique returns the number of distinct configurations evaluated.
func (c *Cache) Unique() int { return c.memo.Unique() }

// Hits returns the number of Evaluate calls served from the cache.
func (c *Cache) Hits() int { return c.memo.Hits() }

// ChainSeed derives the seed of worker i (an annealing chain, a
// heuristic restart, a portfolio member) from the base seed. Worker 0
// uses the base seed unchanged — so a single worker reproduces the
// plain single-run behavior bit-for-bit — and later workers get
// decorrelated streams via a SplitMix64 finalizer. Every concurrent
// search path derives its per-worker seeds through this one function,
// which is what makes results reproducible at any parallelism level.
func ChainSeed(base int64, worker int) int64 {
	if worker == 0 {
		return base
	}
	return int64(splitmix64(uint64(base) + uint64(worker)*0x9E3779B97F4A7C15))
}

// splitmix64 is the finalizer of the SplitMix64 generator (also used by
// internal/perf for measurement noise): a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Workers normalizes a requested parallelism: zero or negative requests
// select 1 (sequential).
func Workers(n int) int {
	if n <= 1 {
		return 1
	}
	return n
}

// Shards splits the range [0, n) into at most k contiguous, near-equal
// subranges [lo, hi). It returns fewer shards when n < k and nil when
// n <= 0.
func Shards(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	shards := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		shards = append(shards, [2]int{lo, hi})
		lo = hi
	}
	return shards
}

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// concurrent goroutines. All indices run even if some fail; the error
// with the lowest index is returned unmodified, making both the reported
// failure and its message independent of goroutine scheduling. workers
// <= 1 runs sequentially on the calling goroutine (stopping at the first
// error, which is then also the lowest-index one).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
