package search

import (
	"testing"

	"hetopt/internal/machine"
	"hetopt/internal/space"
)

// TestCacheEvaluateHitZeroAllocs pins the memo-hit path of the shared
// evaluation cache as allocation-free: once a configuration has been
// evaluated, every further Evaluate of it is a sharded map read plus an
// atomic load. This is the path concurrent annealing chains and
// portfolio members sit on.
func TestCacheEvaluateHitZeroAllocs(t *testing.T) {
	c := NewCache(&countingEvaluator{})
	cfg := space.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 60,
	}
	if _, err := c.Evaluate(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Evaluate(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memo-hit Evaluate allocates %g allocs/op, want 0", allocs)
	}
}
