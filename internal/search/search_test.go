package search

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int, int]()
	var calls atomic.Int64
	const goroutines = 16
	var wg sync.WaitGroup
	wg.Add(goroutines)
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			v, err := m.Do(7, func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d, want 42", g, v)
		}
	}
	if m.Lookups() != goroutines || m.Unique() != 1 || m.Hits() != goroutines-1 {
		t.Fatalf("accounting = %d/%d/%d, want %d/1/%d", m.Lookups(), m.Unique(), m.Hits(), goroutines, goroutines-1)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	m := NewMemo[string, int]()
	calls := 0
	fail := func() (int, error) { calls++; return 0, fmt.Errorf("boom") }
	if _, err := m.Do("k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, err := m.Do("k", fail); err == nil {
		t.Fatal("want cached error")
	}
	if calls != 1 {
		t.Fatalf("failed computation ran %d times, want 1", calls)
	}
}

// countingEvaluator returns a deterministic measurement per configuration
// and counts invocations.
type countingEvaluator struct {
	calls atomic.Int64
}

func (e *countingEvaluator) Evaluate(cfg space.Config) (offload.Measurement, error) {
	e.calls.Add(1)
	return offload.Measurement{
		Times:  offload.Times{Host: cfg.HostFraction, Device: float64(cfg.DeviceThreads)},
		Energy: offload.Energy{Host: 2 * cfg.HostFraction, Device: 3 * float64(cfg.DeviceThreads)},
	}, nil
}

func TestCacheDeduplicates(t *testing.T) {
	under := &countingEvaluator{}
	c := NewCache(under)
	cfg := space.Config{HostThreads: 4, DeviceThreads: 8, HostAffinity: machine.AffinityScatter, HostFraction: 50}
	other := cfg
	other.HostFraction = 75

	for i := 0; i < 5; i++ {
		if _, err := c.Evaluate(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Evaluate(other); err != nil {
		t.Fatal(err)
	}
	if got := under.calls.Load(); got != 2 {
		t.Fatalf("underlying evaluator saw %d calls, want 2", got)
	}
	if c.Lookups() != 6 || c.Unique() != 2 || c.Hits() != 4 {
		t.Fatalf("cache accounting = %d/%d/%d, want 6/2/4", c.Lookups(), c.Unique(), c.Hits())
	}
	a, _ := c.Evaluate(cfg)
	b, _ := under.Evaluate(cfg)
	if a != b {
		t.Fatal("cached value differs from direct evaluation")
	}
}

func TestWorkers(t *testing.T) {
	for _, tc := range [][2]int{{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {64, 64}} {
		if got := Workers(tc[0]); got != tc[1] {
			t.Errorf("Workers(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
}

func TestShardsCoverRangeExactly(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{10, 3}, {1, 1}, {5, 8}, {19926, 8}, {7, 7}, {100, 1},
	} {
		shards := Shards(tc.n, tc.k)
		if len(shards) > tc.k || len(shards) == 0 {
			t.Fatalf("Shards(%d,%d) produced %d shards", tc.n, tc.k, len(shards))
		}
		next := 0
		for _, sh := range shards {
			if sh[0] != next || sh[1] <= sh[0] {
				t.Fatalf("Shards(%d,%d) = %v not contiguous", tc.n, tc.k, shards)
			}
			next = sh[1]
		}
		if next != tc.n {
			t.Fatalf("Shards(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.k, next, tc.n)
		}
	}
	if Shards(0, 4) != nil {
		t.Error("Shards(0, k) should be nil")
	}
}

func TestForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 100
		seen := make([]atomic.Int64, n)
		err := ForEach(n, workers, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, seen[i].Load())
			}
		}
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(50, workers, func(i int) error {
			if i == 13 || i == 37 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		if err.Error() != "fail-13" {
			t.Fatalf("workers=%d: got %q, want the lowest-index error unmodified", workers, err)
		}
	}
}
