// Package dynsched implements a dynamic self-scheduling baseline of the
// kind the paper's related work builds on (CoreTsar's adaptive
// worksharing, StarPU/OmpSs task queues, Ravi & Agrawal's task-farm
// scheduler): the workload is cut into equal chunks placed in a central
// queue, and the host and the accelerator each grab the next chunk as
// soon as they finish the previous one.
//
// The simulation uses the same calibrated performance model as the static
// optimizer, so "static optimum found by SAML/EM" and "dynamic
// self-scheduling with chunk size c" are directly comparable. Dynamic
// scheduling load-balances without any tuning of the fraction, but pays a
// per-chunk offload launch overhead on the device and still leaves the
// thread-count/affinity choices open — which is exactly the gap the
// paper's configuration search fills.
package dynsched

import (
	"fmt"
	"math"

	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
)

// Config selects the per-side execution configuration and the chunking.
type Config struct {
	HostThreads    int
	HostAffinity   machine.Affinity
	DeviceThreads  int
	DeviceAffinity machine.Affinity
	// ChunkMB is the scheduling granularity.
	ChunkMB float64
}

// Scheduler simulates dynamic self-scheduling on a modeled platform.
type Scheduler struct {
	// Model provides the throughput and overhead constants.
	Model *perf.Model
	// PerChunkLaunchSec is the device-side overhead paid per chunk
	// (offload pragma invocation, signalling). Zero selects 4 ms.
	PerChunkLaunchSec float64
}

// NewScheduler wraps the paper platform's model.
func NewScheduler() *Scheduler {
	return &Scheduler{Model: perf.NewPaperModel()}
}

func (s *Scheduler) perChunkLaunch() float64 {
	if s.PerChunkLaunchSec <= 0 {
		return 0.004
	}
	return s.PerChunkLaunchSec
}

// Result reports a simulated dynamic run.
type Result struct {
	// Makespan is the completion time of the last chunk.
	Makespan float64
	// HostChunks and DeviceChunks count the chunks each side processed.
	HostChunks, DeviceChunks int
	// HostBusy and DeviceBusy are the per-side busy times.
	HostBusy, DeviceBusy float64
	// Chunks is the total chunk count.
	Chunks int
}

// HostShare returns the fraction of chunks the host processed.
func (r Result) HostShare() float64 {
	if r.Chunks == 0 {
		return 0
	}
	return float64(r.HostChunks) / float64(r.Chunks)
}

// Simulate runs greedy self-scheduling: the earliest-free processor takes
// the next chunk. It returns the makespan and the realized distribution.
func (s *Scheduler) Simulate(w offload.Workload, cfg Config) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.ChunkMB <= 0 {
		return Result{}, fmt.Errorf("dynsched: chunk size %g must be positive", cfg.ChunkMB)
	}
	// Throughput honors the workload's traits (bytes-per-byte roofline,
	// per-side rate factors) so the simulated dynamic run and the static
	// optimum it is compared against execute the same workload.
	hostRate, err := s.Model.HostThroughputFor(cfg.HostThreads, cfg.HostAffinity, w.Traits())
	if err != nil {
		return Result{}, err
	}
	devRate, err := s.Model.DeviceThroughputFor(cfg.DeviceThreads, cfg.DeviceAffinity, w.Traits())
	if err != nil {
		return Result{}, err
	}
	complexity := w.Complexity
	if complexity <= 0 {
		complexity = 1
	}

	chunks := int(math.Ceil(w.SizeMB / cfg.ChunkMB))
	lastChunkMB := w.SizeMB - float64(chunks-1)*cfg.ChunkMB

	hostChunkCost := func(mb float64) float64 {
		return mb * complexity / hostRate
	}
	devChunkCost := func(mb float64) float64 {
		compute := mb * complexity / devRate
		transfer := mb / s.Model.Cal.PCIeRateMBs
		// Transfer of the next chunk overlaps computation of the current
		// one; the slower of the two paces the pipeline, plus the
		// per-chunk launch overhead.
		return math.Max(compute, transfer) + s.perChunkLaunch() + s.Model.Cal.TransferResidual*transfer
	}

	res := Result{Chunks: chunks}
	hostFree := s.Model.Cal.HostSetupSec + s.Model.Cal.HostThreadSpawnSec*float64(cfg.HostThreads)
	devFree := s.Model.Cal.OffloadLatencySec + s.Model.Cal.DeviceSetupSec + s.Model.Cal.DeviceThreadSpawnSec*float64(cfg.DeviceThreads)
	for i := 0; i < chunks; i++ {
		mb := cfg.ChunkMB
		if i == chunks-1 {
			mb = lastChunkMB
		}
		// Greedy: whoever would *finish* the chunk first takes it, which
		// is what work-stealing converges to with lookahead-one.
		hostFinish := hostFree + hostChunkCost(mb)
		devFinish := devFree + devChunkCost(mb)
		if hostFinish <= devFinish {
			hostFree = hostFinish
			res.HostChunks++
			res.HostBusy += hostChunkCost(mb)
		} else {
			devFree = devFinish
			res.DeviceChunks++
			res.DeviceBusy += devChunkCost(mb)
		}
	}
	res.Makespan = hostFree
	if res.DeviceChunks > 0 && devFree > res.Makespan {
		res.Makespan = devFree
	}
	if res.HostChunks == 0 {
		// Host did nothing; its setup does not gate completion.
		res.Makespan = devFree
	}
	return res, nil
}

// BestChunk sweeps candidate chunk sizes and returns the one minimizing
// the makespan together with its result.
func (s *Scheduler) BestChunk(w offload.Workload, cfg Config, candidatesMB []float64) (float64, Result, error) {
	if len(candidatesMB) == 0 {
		return 0, Result{}, fmt.Errorf("dynsched: no chunk candidates")
	}
	bestChunk := 0.0
	var best Result
	bestMakespan := math.Inf(1)
	for _, c := range candidatesMB {
		cfg.ChunkMB = c
		r, err := s.Simulate(w, cfg)
		if err != nil {
			return 0, Result{}, err
		}
		if r.Makespan < bestMakespan {
			bestMakespan = r.Makespan
			bestChunk = c
			best = r
		}
	}
	return bestChunk, best, nil
}
