package dynsched

import (
	"math"
	"testing"
	"testing/quick"

	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
)

func fullConfig(chunkMB float64) Config {
	return Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		ChunkMB: chunkMB,
	}
}

func TestSimulateBasics(t *testing.T) {
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	res, err := s.Simulate(w, fullConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != int(math.Ceil(w.SizeMB/64)) {
		t.Fatalf("chunks = %d", res.Chunks)
	}
	if res.HostChunks+res.DeviceChunks != res.Chunks {
		t.Fatal("chunks lost")
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	// Both sides should participate on a large input.
	if res.HostChunks == 0 || res.DeviceChunks == 0 {
		t.Fatalf("one side idle: host=%d dev=%d", res.HostChunks, res.DeviceChunks)
	}
}

func TestSimulateValidation(t *testing.T) {
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	if _, err := s.Simulate(w, fullConfig(0)); err == nil {
		t.Error("zero chunk should fail")
	}
	if _, err := s.Simulate(offload.Workload{}, fullConfig(64)); err == nil {
		t.Error("invalid workload should fail")
	}
	cfg := fullConfig(64)
	cfg.HostAffinity = machine.AffinityBalanced
	if _, err := s.Simulate(w, cfg); err == nil {
		t.Error("invalid affinity should fail")
	}
}

func TestTinyChunksPayOverhead(t *testing.T) {
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	small, err := s.Simulate(w, fullConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	medium, err := s.Simulate(w, fullConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if small.Makespan <= medium.Makespan {
		t.Fatalf("1 MB chunks (%.3fs) should lose to 64 MB chunks (%.3fs): per-chunk overhead", small.Makespan, medium.Makespan)
	}
}

func TestHugeChunksLoadImbalance(t *testing.T) {
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	// Chunk = whole input: one side does everything.
	huge, err := s.Simulate(w, fullConfig(w.SizeMB))
	if err != nil {
		t.Fatal(err)
	}
	if huge.HostChunks != 0 && huge.DeviceChunks != 0 {
		t.Fatal("single chunk cannot be split")
	}
	medium, err := s.Simulate(w, fullConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if huge.Makespan <= medium.Makespan {
		t.Fatalf("whole-input chunk (%.3fs) should lose to 64 MB chunks (%.3fs)", huge.Makespan, medium.Makespan)
	}
}

func TestDynamicTracksStaticOptimum(t *testing.T) {
	// With a sensible chunk size, dynamic self-scheduling must land in
	// the same ballpark as the noiseless static optimum (it load-balances
	// by construction) and must beat host-only execution.
	s := NewScheduler()
	s.Model.Cal.NoiseStdHost = 0
	s.Model.Cal.NoiseStdDevice = 0
	w := offload.GenomeWorkload(dna.Human)
	_, best, err := s.BestChunk(w, fullConfig(0), []float64{8, 16, 32, 64, 128, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	// Static noiseless optimum is ~0.40 s (see perf tests); host-only is
	// ~0.62 s.
	if best.Makespan > 0.55 {
		t.Fatalf("best dynamic makespan %.3fs too far from the static optimum", best.Makespan)
	}
	if best.Makespan < 0.25 {
		t.Fatalf("best dynamic makespan %.3fs implausibly low", best.Makespan)
	}
}

func TestFewHostThreadsShiftShare(t *testing.T) {
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	cfg := fullConfig(64)
	full, err := s.Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HostThreads = 4
	weak, err := s.Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if weak.HostShare() >= full.HostShare() {
		t.Fatalf("4 host threads should take a smaller share (%.2f vs %.2f)", weak.HostShare(), full.HostShare())
	}
}

func TestBestChunkValidation(t *testing.T) {
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	if _, _, err := s.BestChunk(w, fullConfig(0), nil); err == nil {
		t.Error("no candidates should fail")
	}
}

// Property: chunks are conserved and busy times never exceed the
// makespan.
func TestConservationProperty(t *testing.T) {
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Cat)
	f := func(chunkRaw uint16, hostIdx, devIdx uint8) bool {
		chunk := float64(chunkRaw%1000) + 1
		cfg := fullConfig(chunk)
		cfg.HostThreads = []int{2, 6, 12, 24, 36, 48}[hostIdx%6]
		cfg.DeviceThreads = []int{2, 4, 8, 16, 30, 60, 120, 180, 240}[devIdx%9]
		res, err := s.Simulate(w, cfg)
		if err != nil {
			return false
		}
		if res.HostChunks+res.DeviceChunks != res.Chunks {
			return false
		}
		return res.HostBusy <= res.Makespan+1e-9 && res.DeviceBusy <= res.Makespan+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
