package dynsched

import (
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

func BenchmarkSimulate(b *testing.B) {
	b.ReportAllocs()
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	cfg := fullConfig(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Simulate(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestChunk(b *testing.B) {
	b.ReportAllocs()
	s := NewScheduler()
	w := offload.GenomeWorkload(dna.Human)
	candidates := []float64{1, 4, 16, 64, 128, 256, 512, 1024}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.BestChunk(w, fullConfig(0), candidates); err != nil {
			b.Fatal(err)
		}
	}
}
