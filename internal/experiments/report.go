package experiments

import (
	"fmt"
	"io"
)

// RunAll regenerates every paper artifact and writes the full report to
// w: Tables I-IX and Figures 2, 5-9, followed by the Result 1-5
// summaries, the bi-objective time/energy comparison, and (when ablate
// is true) the ablation studies.
func (s *Suite) RunAll(w io.Writer, ablate bool) error {
	section := func(text string) error {
		_, err := io.WriteString(w, text+"\n")
		return err
	}

	if err := section(s.RenderFig1()); err != nil {
		return err
	}
	if err := section(s.RenderTable1()); err != nil {
		return err
	}
	if err := section(RenderTable2()); err != nil {
		return err
	}
	if err := section(s.RenderTable3()); err != nil {
		return err
	}
	if err := section(RenderFig3()); err != nil {
		return err
	}
	if err := section(RenderFig4()); err != nil {
		return err
	}

	fig2, err := s.Fig2()
	if err != nil {
		return err
	}
	if err := section(RenderFig2(fig2)); err != nil {
		return err
	}

	models, err := s.Models()
	if err != nil {
		return err
	}
	if err := section(fmt.Sprintf(
		"Result 1/2: prediction model accuracy (paper: host 0.027 s / 5.239%%, device 0.074 s / 3.132%%)\n"+
			"  host:   %d train / %d test, abs %.3f s, pct %.3f%%, R2 %.4f\n"+
			"  device: %d train / %d test, abs %.3f s, pct %.3f%%, R2 %.4f\n",
		models.HostReport.TrainN, models.HostReport.TestN,
		models.HostReport.Eval.MeanAbsoluteError, models.HostReport.Eval.MeanPercentError, models.HostReport.Eval.R2,
		models.DeviceReport.TrainN, models.DeviceReport.TestN,
		models.DeviceReport.Eval.MeanAbsoluteError, models.DeviceReport.Eval.MeanPercentError, models.DeviceReport.Eval.R2,
	)); err != nil {
		return err
	}

	fig5, err := s.Fig5()
	if err != nil {
		return err
	}
	if err := section(RenderPredictionCurves(fig5, "Figure 5")); err != nil {
		return err
	}
	fig6, err := s.Fig6()
	if err != nil {
		return err
	}
	if err := section(RenderPredictionCurves(fig6, "Figure 6")); err != nil {
		return err
	}
	fig7, err := s.Fig7()
	if err != nil {
		return err
	}
	if err := section(RenderErrorHistogram(fig7, "Figure 7")); err != nil {
		return err
	}
	fig8, err := s.Fig8()
	if err != nil {
		return err
	}
	if err := section(RenderErrorHistogram(fig8, "Figure 8")); err != nil {
		return err
	}
	table4, err := s.Table4()
	if err != nil {
		return err
	}
	if err := section(RenderAccuracyTable(table4, "Table IV")); err != nil {
		return err
	}
	table5, err := s.Table5()
	if err != nil {
		return err
	}
	if err := section(RenderAccuracyTable(table5, "Table V")); err != nil {
		return err
	}

	fig9, err := s.Fig9()
	if err != nil {
		return err
	}
	if err := section(RenderFig9(fig9)); err != nil {
		return err
	}
	if err := section(RenderDifferenceTable(Table6(fig9), "Table VI")); err != nil {
		return err
	}
	if err := section(RenderDifferenceTable(Table7(fig9), "Table VII")); err != nil {
		return err
	}
	t8 := Table8(fig9)
	if err := section(RenderSpeedupTable(t8, "Table VIII")); err != nil {
		return err
	}
	t9 := Table9(fig9)
	if err := section(RenderSpeedupTable(t9, "Table IX")); err != nil {
		return err
	}

	r3, err := Result3(fig9)
	if err != nil {
		return err
	}
	if err := section(fmt.Sprintf(
		"Result 3: SAML with %d iterations explores %.2f%% of the %d-configuration space (paper: ~5%%),\n"+
			"          at an average %.2f%% percent difference to the EM optimum.\n"+
			"Result 5: max SAML speedup at 1000 iterations: %.2fx vs host-only (paper: 1.74x), %.2fx vs device-only (paper: 2.18x).\n",
		r3.SAMLIterations, r3.Fraction, r3.EMExperiments, r3.AvgPercentDiff,
		t8.MaxSpeedup(1000), t9.MaxSpeedup(1000),
	)); err != nil {
		return err
	}

	bi, err := s.BiObjective(s.reference(), 0.5, 0.10)
	if err != nil {
		return err
	}
	if err := section(RenderBiObjective(bi, s.reference())); err != nil {
		return err
	}

	scen, err := s.ScenarioTable()
	if err != nil {
		return err
	}
	if err := section(RenderScenarioTable(scen)); err != nil {
		return err
	}

	dag, err := s.DAGTable()
	if err != nil {
		return err
	}
	if err := section(RenderDAGTable(dag)); err != nil {
		return err
	}

	if ablate {
		ab, err := s.RenderAblations()
		if err != nil {
			return err
		}
		if err := section(ab); err != nil {
			return err
		}
		rows, emE, err := s.HeuristicComparison(s.reference(), 1000)
		if err != nil {
			return err
		}
		if err := section(RenderHeuristicComparison(rows, emE, s.reference(), 1000, s.repeats())); err != nil {
			return err
		}
		sc, err := s.StrategyComparison(s.reference(), 1000)
		if err != nil {
			return err
		}
		if err := section(RenderStrategyComparison(sc, s.reference(), 1000, s.repeats())); err != nil {
			return err
		}
		gaps, err := s.ExactGapTable(1000)
		if err != nil {
			return err
		}
		if err := section(RenderExactGapTable(gaps)); err != nil {
			return err
		}
		tp, err := s.ServingThroughput([]int{1, 4, 8}, 4, 3, 200)
		if err != nil {
			return err
		}
		if err := section(RenderServingThroughput(tp)); err != nil {
			return err
		}
		ct, err := s.ClusterThroughput([]int{1, 2, 4}, 8, 25, 200)
		if err != nil {
			return err
		}
		if err := section(RenderClusterThroughput(ct)); err != nil {
			return err
		}
		md, err := s.ExtMultiDevice(s.reference(), 3, 2500)
		if err != nil {
			return err
		}
		if err := section(RenderMultiDevice(md, s.reference())); err != nil {
			return err
		}
		dyn, dynEM, err := s.ExtDynamicScheduling(s.reference())
		if err != nil {
			return err
		}
		if err := section(RenderDynamicScheduling(dyn, dynEM, s.reference())); err != nil {
			return err
		}
		ad, err := s.ExtAdaptive(1000, 60)
		if err != nil {
			return err
		}
		if err := section(RenderAdaptive(ad, 1000, 60)); err != nil {
			return err
		}
		sweep, err := s.ExtSizeSweep(s.reference(), []float64{50, 100, 200, 400, 800, 1600, 3246})
		if err != nil {
			return err
		}
		if err := section(RenderSizeSweep(sweep, s.reference())); err != nil {
			return err
		}
		saTrace, err := s.RenderSATrace(s.reference(), 1000)
		if err != nil {
			return err
		}
		if err := section(saTrace); err != nil {
			return err
		}
	}
	return nil
}
