package experiments

import (
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/stats"
)

func TestRenderFig1(t *testing.T) {
	s := testSuite(t)
	out := s.RenderFig1()
	for _, want := range []string{"Figure 1", "PCIe", "Xeon E5", "Xeon Phi", "reserved for uOS", "512-bit SIMD"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 missing %q", want)
		}
	}
}

func TestRenderFig3And4(t *testing.T) {
	f3 := RenderFig3()
	for _, want := range []string{"Figure 3", "coolingRate", "exp((E-E')/T)", "max(T_host, T_device)"} {
		if !strings.Contains(f3, want) {
			t.Errorf("fig3 missing %q", want)
		}
	}
	f4 := RenderFig4()
	for _, want := range []string{"Figure 4", "normalize", "boosted decision tree", "7200 experiments"} {
		if !strings.Contains(f4, want) {
			t.Errorf("fig4 missing %q", want)
		}
	}
}

func TestRenderSATrace(t *testing.T) {
	s := testSuite(t)
	out, err := s.RenderSATrace(offload.GenomeWorkload(dna.Cat), 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"instrumented SAML trace", "acceptance rate", "best found at iter"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestPredictionCurvesRankCorrelation(t *testing.T) {
	// Figures 5/6 claim measured and predicted "match well"; quantify via
	// rank correlation on every curve.
	s := testSuite(t)
	for _, build := range []func() (PredictionCurves, error){s.Fig5, s.Fig6} {
		pc, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for n, pts := range pc.Curves {
			measured := make([]float64, len(pts))
			predicted := make([]float64, len(pts))
			for i, p := range pts {
				measured[i] = p.Measured
				predicted[i] = p.Predicted
			}
			rho, err := stats.Spearman(measured, predicted)
			if err != nil {
				t.Fatal(err)
			}
			if rho < 0.97 {
				t.Errorf("%s %dT: rank correlation %.3f below 0.97", pc.Side, n, rho)
			}
		}
	}
}
