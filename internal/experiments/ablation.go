package experiments

import (
	"fmt"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/ml"
	"hetopt/internal/offload"
	"hetopt/internal/space"
	"hetopt/internal/tables"
)

// Ablations probe the design choices DESIGN.md calls out: the SA
// temperature scale, the SA neighborhood, the regressor family and the
// boosting capacity. Each returns a rendered table so cmd/hetbench and
// the benches can report them.

// AblationCoolingRate compares SAML outcomes across initial temperatures
// (the cooling rate follows from the budget, so temperature sets the
// explore/exploit balance).
func (s *Suite) AblationCoolingRate(w offload.Workload, iterations int) (string, error) {
	inst, err := s.instance(w)
	if err != nil {
		return "", err
	}
	em, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
	if err != nil {
		return "", err
	}
	tb := tables.New(fmt.Sprintf("Ablation: SA initial temperature (genome %s, %d iterations, %d seeds)",
		w.Name, iterations, s.repeats()),
		"initial temp", "mean SAML E [s]", "pct diff vs EM")
	for _, t0 := range []float64{0.05, 0.5, core.DefaultInitialTemp, 50, 10000} {
		sum := 0.0
		for r := 0; r < s.repeats(); r++ {
			opt := s.coreOpts(iterations, s.Seed+int64(r))
			// This ablation probes the SA preset's temperature; a
			// suite-injected strategy would carry its own schedule and
			// silently ignore InitialTemp, flattening the sweep.
			opt.Strategy = nil
			opt.InitialTemp = t0
			res, err := core.Run(core.SAML, inst, opt)
			if err != nil {
				return "", err
			}
			sum += res.MeasuredE()
		}
		mean := sum / float64(s.repeats())
		tb.AddRow(tables.F(t0, 2), tables.F(mean, 4), tables.Percent(100*(mean-em.MeasuredE())/em.MeasuredE()))
	}
	return tb.String(), nil
}

// AblationNeighborhood compares the step-move neighborhood against
// uniform resampling.
func (s *Suite) AblationNeighborhood(w offload.Workload, iterations int) (string, error) {
	inst, err := s.instance(w)
	if err != nil {
		return "", err
	}
	em, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
	if err != nil {
		return "", err
	}
	tb := tables.New(fmt.Sprintf("Ablation: SA neighborhood (genome %s, %d iterations, %d seeds)",
		w.Name, iterations, s.repeats()),
		"neighborhood", "mean SAML E [s]", "pct diff vs EM")
	for _, mode := range []struct {
		name string
		mode space.NeighborMode
	}{{"step +-1", space.StepMove}, {"resample", space.ResampleMove}} {
		sum := 0.0
		for r := 0; r < s.repeats(); r++ {
			opt := s.coreOpts(iterations, s.Seed+int64(r))
			// Probe the SA preset's neighborhood: the heuristic
			// strategies never call Neighbor, so an injected suite
			// strategy would make both rows identical.
			opt.Strategy = nil
			opt.NeighborMode = mode.mode
			res, err := core.Run(core.SAML, inst, opt)
			if err != nil {
				return "", err
			}
			sum += res.MeasuredE()
		}
		mean := sum / float64(s.repeats())
		tb.AddRow(mode.name, tables.F(mean, 4), tables.Percent(100*(mean-em.MeasuredE())/em.MeasuredE()))
	}
	return tb.String(), nil
}

// AblationRegressors compares BDTR with the linear and Poisson
// alternatives the paper considered (Section III-B), both on prediction
// accuracy and on the quality of the SAML result they induce.
func (s *Suite) AblationRegressors(w offload.Workload) (string, error) {
	hostData, err := core.GenerateHostData(s.Platform, s.Plan)
	if err != nil {
		return "", err
	}
	devData, err := core.GenerateDeviceData(s.Platform, s.Plan)
	if err != nil {
		return "", err
	}
	meas := core.NewMeasurer(s.Platform, w)
	em, err := core.Run(core.EM, &core.Instance{Schema: s.Schema, Measurer: meas}, s.coreOpts(0, 0))
	if err != nil {
		return "", err
	}
	tb := tables.New(fmt.Sprintf("Ablation: regressor family (%s, 1000 iterations)", w.Name),
		"regressor", "host pct err", "device pct err", "SAML pct diff vs EM")
	for _, kind := range []core.RegressorKind{core.BoostedTrees, core.Linear, core.Poisson} {
		models, err := core.TrainOnData(hostData, devData, core.TrainOptions{Kind: kind, SplitSeed: s.TrainOpt.SplitSeed})
		if err != nil {
			return "", err
		}
		pred, err := core.NewPredictor(models, w, s.Platform.Model())
		if err != nil {
			return "", err
		}
		inst := &core.Instance{Schema: s.Schema, Measurer: meas, Predictor: pred}
		sum := 0.0
		for r := 0; r < s.repeats(); r++ {
			res, err := core.Run(core.SAML, inst, s.coreOpts(1000, s.Seed+int64(r)))
			if err != nil {
				return "", err
			}
			sum += res.MeasuredE()
		}
		mean := sum / float64(s.repeats())
		tb.AddRow(kind.String(),
			tables.Percent(models.HostReport.Eval.MeanPercentError),
			tables.Percent(models.DeviceReport.Eval.MeanPercentError),
			tables.Percent(100*(mean-em.MeasuredE())/em.MeasuredE()))
	}
	return tb.String(), nil
}

// AblationBoosting explores boosted-tree capacity: rounds and depth vs
// held-out accuracy.
func (s *Suite) AblationBoosting() (string, error) {
	hostData, err := core.GenerateHostData(s.Platform, s.Plan)
	if err != nil {
		return "", err
	}
	devData, err := core.GenerateDeviceData(s.Platform, s.Plan)
	if err != nil {
		return "", err
	}
	tb := tables.New("Ablation: boosting capacity", "rounds", "depth", "lr", "host pct err", "device pct err")
	for _, cfg := range []ml.BoostOptions{
		{Rounds: 25, LearningRate: 0.3, Tree: ml.TreeOptions{MaxDepth: 3, MinLeaf: 5}, Subsample: 0.9, Seed: 1},
		{Rounds: 100, LearningRate: 0.1, Tree: ml.TreeOptions{MaxDepth: 5, MinLeaf: 5}, Subsample: 0.9, Seed: 1},
		{Rounds: 300, LearningRate: 0.08, Tree: ml.TreeOptions{MaxDepth: 7, MinLeaf: 5}, Subsample: 0.9, Seed: 1},
	} {
		models, err := core.TrainOnData(hostData, devData, core.TrainOptions{Boost: cfg, SplitSeed: s.TrainOpt.SplitSeed})
		if err != nil {
			return "", err
		}
		tb.AddRow(fmt.Sprint(cfg.Rounds), fmt.Sprint(cfg.Tree.MaxDepth), tables.F(cfg.LearningRate, 2),
			tables.Percent(models.HostReport.Eval.MeanPercentError),
			tables.Percent(models.DeviceReport.Eval.MeanPercentError))
	}
	return tb.String(), nil
}

// RenderAblations runs every ablation and concatenates the reports.
func (s *Suite) RenderAblations() (string, error) {
	var sb strings.Builder
	cool, err := s.AblationCoolingRate(s.reference(), 1000)
	if err != nil {
		return "", err
	}
	sb.WriteString(cool)
	sb.WriteByte('\n')
	nb, err := s.AblationNeighborhood(s.reference(), 1000)
	if err != nil {
		return "", err
	}
	sb.WriteString(nb)
	sb.WriteByte('\n')
	reg, err := s.AblationRegressors(s.reference())
	if err != nil {
		return "", err
	}
	sb.WriteString(reg)
	sb.WriteByte('\n')
	boost, err := s.AblationBoosting()
	if err != nil {
		return "", err
	}
	sb.WriteString(boost)
	return sb.String(), nil
}
