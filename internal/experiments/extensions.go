package experiments

import (
	"fmt"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/dynsched"
	"hetopt/internal/machine"
	"hetopt/internal/multi"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
	"hetopt/internal/tables"
)

// MultiDeviceResult is one row of the multi-accelerator extension: the
// tuned execution time on a platform with n Phi cards. Distribution is
// the platform-rendered configuration (device entries labeled with
// their names).
type MultiDeviceResult struct {
	Devices      int
	Config       multi.Config
	Distribution string
	E            float64
}

// multiProblem builds the multi-device tuning problem for n copies of
// the suite platform's accelerator over the suite schema's value sets.
// On the paper suite this reproduces multi.PaperProblem exactly (same
// models, same Table I grids); on a scenario suite the cards, the
// calibration and the thread grids are the selected platform's.
func (s *Suite) multiProblem(n int, w offload.Workload) (*multi.Problem, error) {
	// Device names key per-card measurement noise; the Phi keeps the
	// "phi" prefix so the paper suite's table is bit-identical to the
	// multi.PaperWithPhis numbers it reproduced before the scenario
	// layer.
	prefix := "dev"
	if strings.Contains(s.Platform.Device().Name, "Phi") {
		prefix = "phi"
	}
	devices := make([]*perf.Model, n)
	names := make([]string, n)
	for i := range devices {
		m := *s.Platform.Model()
		// Decorrelate per-card noise: same silicon, different card.
		m.Cal.NoiseSeed ^= uint64(i+1) * 0x9E3779B97F4A7C15
		devices[i] = &m
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	platform, err := multi.NewPlatform(s.Platform.Model(), names, devices)
	if err != nil {
		return nil, err
	}
	return &multi.Problem{
		Platform:         platform,
		Workload:         w,
		HostThreads:      s.Schema.HostThreadValues(),
		HostAffinities:   s.Schema.HostAffinityValues(),
		DeviceThreads:    s.Schema.DeviceThreadValues(),
		DeviceAffinities: s.Schema.DeviceAffinityValues(),
	}, nil
}

// ExtMultiDevice tunes the workload on platforms with 1..maxDevices
// copies of the suite platform's accelerator (the paper's future-work
// scenario: nodes carry several cards) and reports the scaling of the
// tuned execution time.
func (s *Suite) ExtMultiDevice(w offload.Workload, maxDevices, iterations int) ([]MultiDeviceResult, error) {
	if maxDevices < 1 {
		return nil, fmt.Errorf("experiments: need at least one device")
	}
	var out []MultiDeviceResult
	for n := 1; n <= maxDevices; n++ {
		problem, err := s.multiProblem(n, w)
		if err != nil {
			return nil, err
		}
		best := multi.Result{}
		bestE := 0.0
		for r := 0; r < s.repeats(); r++ {
			// Two chains per repeat exercise the shared-memo multi-chain
			// path; Parallelism only spreads them across workers.
			res, err := multi.TuneParallel(problem, multi.TuneOptions{
				Iterations:  iterations,
				Seed:        s.Seed + int64(r),
				Restarts:    2,
				Parallelism: s.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			if r == 0 || res.Times.E() < bestE {
				best, bestE = res, res.Times.E()
			}
		}
		out = append(out, MultiDeviceResult{
			Devices:      n,
			Config:       best.Config,
			Distribution: problem.Platform.FormatConfig(best.Config),
			E:            bestE,
		})
	}
	return out, nil
}

// RenderMultiDevice formats the multi-accelerator scaling table.
func RenderMultiDevice(rows []MultiDeviceResult, w offload.Workload) string {
	tb := tables.New(fmt.Sprintf("Extension: multi-accelerator scaling (%s, tuned per platform)", w.Name),
		"phis", "tuned E [s]", "speedup vs 1 phi", "distribution")
	if len(rows) == 0 {
		return tb.String()
	}
	base := rows[0].E
	for _, r := range rows {
		dist := r.Distribution
		if dist == "" {
			dist = r.Config.String()
		}
		tb.AddRow(fmt.Sprint(r.Devices), tables.F(r.E, 4), tables.F(base/r.E, 2), dist)
	}
	return tb.String()
}

// DynamicRow is one chunk-size point of the dynamic-scheduling baseline.
type DynamicRow struct {
	ChunkMB   float64
	Makespan  float64
	HostShare float64
}

// ExtDynamicScheduling compares CoreTsar-style dynamic self-scheduling
// against the paper's static optimum: it sweeps the chunk size on the
// same modeled platform and reports makespans next to the EM optimum for
// the same genome.
func (s *Suite) ExtDynamicScheduling(w offload.Workload) ([]DynamicRow, float64, error) {
	inst, err := s.instance(w)
	if err != nil {
		return nil, 0, err
	}
	em, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
	if err != nil {
		return nil, 0, err
	}

	// Both sides run maximally threaded under scatter (falling back to
	// the side's first affinity) — the natural untuned choice a runtime
	// would make. The values come from the suite's schema, so a scenario
	// suite simulates the selected platform, not the paper's.
	scatterOr := func(affs []machine.Affinity) machine.Affinity {
		for _, a := range affs {
			if a == machine.AffinityScatter {
				return a
			}
		}
		return affs[0]
	}
	hostThreads := s.Schema.HostThreadValues()
	devThreads := s.Schema.DeviceThreadValues()
	sched := dynsched.Scheduler{Model: s.Platform.Model()}
	cfg := dynsched.Config{
		HostThreads: hostThreads[len(hostThreads)-1], HostAffinity: scatterOr(s.Schema.HostAffinityValues()),
		DeviceThreads: devThreads[len(devThreads)-1], DeviceAffinity: s.Schema.DeviceAffinityValues()[0],
	}
	var rows []DynamicRow
	for _, chunk := range []float64{1, 4, 16, 64, 128, 256, 512, 1024} {
		cfg.ChunkMB = chunk
		res, err := sched.Simulate(w, cfg)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, DynamicRow{ChunkMB: chunk, Makespan: res.Makespan, HostShare: res.HostShare()})
	}
	return rows, em.MeasuredE(), nil
}

// RenderDynamicScheduling formats the dynamic-vs-static comparison.
func RenderDynamicScheduling(rows []DynamicRow, emE float64, w offload.Workload) string {
	var sb strings.Builder
	tb := tables.New(fmt.Sprintf("Extension: dynamic self-scheduling baseline (%s, static EM optimum %.4f s)", w.Name, emE),
		"chunk [MB]", "makespan [s]", "vs static EM", "host share")
	for _, r := range rows {
		tb.AddRow(tables.F(r.ChunkMB, 0), tables.F(r.Makespan, 4),
			tables.Percent(100*(r.Makespan-emE)/emE), tables.F(100*r.HostShare, 1)+"%")
	}
	sb.WriteString(tb.String())
	sb.WriteString("Dynamic scheduling load-balances without tuning the fraction, but needs a runtime,\n")
	sb.WriteString("pays per-chunk offload overhead, and still leaves thread counts/affinities to choose —\n")
	sb.WriteString("the gap the paper's configuration search fills (cf. Section V related work).\n")
	return sb.String()
}
