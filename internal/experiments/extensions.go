package experiments

import (
	"fmt"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/dynsched"
	"hetopt/internal/machine"
	"hetopt/internal/multi"
	"hetopt/internal/offload"
	"hetopt/internal/tables"
)

// MultiDeviceResult is one row of the multi-accelerator extension: the
// tuned execution time on a platform with n Phi cards. Distribution is
// the platform-rendered configuration (device entries labeled with
// their names).
type MultiDeviceResult struct {
	Devices      int
	Config       multi.Config
	Distribution string
	E            float64
}

// ExtMultiDevice tunes the workload on platforms with 1..maxDevices Phi
// cards (the paper's future-work scenario: nodes carry several
// accelerators) and reports the scaling of the tuned execution time.
func (s *Suite) ExtMultiDevice(g dna.Genome, maxDevices, iterations int) ([]MultiDeviceResult, error) {
	if maxDevices < 1 {
		return nil, fmt.Errorf("experiments: need at least one device")
	}
	var out []MultiDeviceResult
	w := offload.GenomeWorkload(g)
	for n := 1; n <= maxDevices; n++ {
		problem, err := multi.PaperProblem(n, w)
		if err != nil {
			return nil, err
		}
		best := multi.Result{}
		bestE := 0.0
		for r := 0; r < s.repeats(); r++ {
			// Two chains per repeat exercise the shared-memo multi-chain
			// path; Parallelism only spreads them across workers.
			res, err := multi.TuneParallel(problem, multi.TuneOptions{
				Iterations:  iterations,
				Seed:        s.Seed + int64(r),
				Restarts:    2,
				Parallelism: s.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			if r == 0 || res.Times.E() < bestE {
				best, bestE = res, res.Times.E()
			}
		}
		out = append(out, MultiDeviceResult{
			Devices:      n,
			Config:       best.Config,
			Distribution: problem.Platform.FormatConfig(best.Config),
			E:            bestE,
		})
	}
	return out, nil
}

// RenderMultiDevice formats the multi-accelerator scaling table.
func RenderMultiDevice(rows []MultiDeviceResult, g dna.Genome) string {
	tb := tables.New(fmt.Sprintf("Extension: multi-accelerator scaling (genome %s, tuned per platform)", g.Name),
		"phis", "tuned E [s]", "speedup vs 1 phi", "distribution")
	if len(rows) == 0 {
		return tb.String()
	}
	base := rows[0].E
	for _, r := range rows {
		dist := r.Distribution
		if dist == "" {
			dist = r.Config.String()
		}
		tb.AddRow(fmt.Sprint(r.Devices), tables.F(r.E, 4), tables.F(base/r.E, 2), dist)
	}
	return tb.String()
}

// DynamicRow is one chunk-size point of the dynamic-scheduling baseline.
type DynamicRow struct {
	ChunkMB   float64
	Makespan  float64
	HostShare float64
}

// ExtDynamicScheduling compares CoreTsar-style dynamic self-scheduling
// against the paper's static optimum: it sweeps the chunk size on the
// same modeled platform and reports makespans next to the EM optimum for
// the same genome.
func (s *Suite) ExtDynamicScheduling(g dna.Genome) ([]DynamicRow, float64, error) {
	inst, err := s.instance(g)
	if err != nil {
		return nil, 0, err
	}
	em, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
	if err != nil {
		return nil, 0, err
	}

	sched := dynsched.Scheduler{Model: s.Platform.Model()}
	w := offload.GenomeWorkload(g)
	cfg := dynsched.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
	}
	var rows []DynamicRow
	for _, chunk := range []float64{1, 4, 16, 64, 128, 256, 512, 1024} {
		cfg.ChunkMB = chunk
		res, err := sched.Simulate(w, cfg)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, DynamicRow{ChunkMB: chunk, Makespan: res.Makespan, HostShare: res.HostShare()})
	}
	return rows, em.MeasuredE(), nil
}

// RenderDynamicScheduling formats the dynamic-vs-static comparison.
func RenderDynamicScheduling(rows []DynamicRow, emE float64, g dna.Genome) string {
	var sb strings.Builder
	tb := tables.New(fmt.Sprintf("Extension: dynamic self-scheduling baseline (genome %s, static EM optimum %.4f s)", g.Name, emE),
		"chunk [MB]", "makespan [s]", "vs static EM", "host share")
	for _, r := range rows {
		tb.AddRow(tables.F(r.ChunkMB, 0), tables.F(r.Makespan, 4),
			tables.Percent(100*(r.Makespan-emE)/emE), tables.F(100*r.HostShare, 1)+"%")
	}
	sb.WriteString(tb.String())
	sb.WriteString("Dynamic scheduling load-balances without tuning the fraction, but needs a runtime,\n")
	sb.WriteString("pays per-chunk offload overhead, and still leaves thread counts/affinities to choose —\n")
	sb.WriteString("the gap the paper's configuration search fills (cf. Section V related work).\n")
	return sb.String()
}
