package experiments

import (
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

func TestStrategyComparison(t *testing.T) {
	s := NewSuite()
	s.Repeats = 2
	res, err := s.StrategyComparison(offload.GenomeWorkload(dna.Human), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 6 || res.Strategies[len(res.Strategies)-1] != "portfolio" {
		t.Fatalf("unexpected strategy rows: %v", res.Strategies)
	}
	if len(res.Objectives) != 3 {
		t.Fatalf("unexpected objective columns: %v", res.Objectives)
	}
	// The portfolio's best is a min over members run with identical
	// seeds; the acceptance criterion of the whole layer.
	if !res.PortfolioNeverWorse {
		t.Fatal("portfolio worse than its best member in at least one run")
	}
	// Sharing must actually happen: members overlap on the small budget,
	// and the books must balance.
	if res.PortfolioHits <= 0 {
		t.Fatalf("portfolio saved no evaluations (lookups %d, unique %d)", res.PortfolioLookups, res.PortfolioUnique)
	}
	if res.PortfolioLookups != res.PortfolioUnique+res.PortfolioHits {
		t.Fatalf("cache accounting broken: %d != %d + %d", res.PortfolioLookups, res.PortfolioUnique, res.PortfolioHits)
	}
	pi := len(res.Strategies) - 1
	for oi := range res.Objectives {
		for si := range res.Strategies {
			c := res.Cells[si][oi]
			if c.MeanObjective <= 0 {
				t.Errorf("cell [%s][%s] has non-positive mean %g", res.Strategies[si], res.Objectives[oi], c.MeanObjective)
			}
			if c.PctVsBest < 0 {
				t.Errorf("cell [%s][%s] beats the column best: %g%%", res.Strategies[si], res.Objectives[oi], c.PctVsBest)
			}
		}
		// The portfolio row must sit at or below every member row (same
		// seeds, min over members, averaged over the same repeats).
		for si := 0; si < pi; si++ {
			if res.Cells[pi][oi].MeanObjective > res.Cells[si][oi].MeanObjective {
				t.Errorf("portfolio mean %g worse than %s mean %g under %s",
					res.Cells[pi][oi].MeanObjective, res.Strategies[si], res.Cells[si][oi].MeanObjective, res.Objectives[oi])
			}
		}
	}

	text := RenderStrategyComparison(res, offload.GenomeWorkload(dna.Human), 150, s.Repeats)
	for _, want := range []string{"strategy x objective", "anneal", "portfolio", "shared cache", "never worse"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}
