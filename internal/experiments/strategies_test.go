package experiments

import (
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

func TestStrategyComparison(t *testing.T) {
	s := NewSuite()
	s.Repeats = 2
	res, err := s.StrategyComparison(offload.GenomeWorkload(dna.Human), 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategies) != 6 || res.Strategies[len(res.Strategies)-1] != "portfolio" {
		t.Fatalf("unexpected strategy rows: %v", res.Strategies)
	}
	if len(res.Objectives) != 3 {
		t.Fatalf("unexpected objective columns: %v", res.Objectives)
	}
	// The portfolio's best is a min over members run with identical
	// seeds; the acceptance criterion of the whole layer.
	if !res.PortfolioNeverWorse {
		t.Fatal("portfolio worse than its best member in at least one run")
	}
	// Sharing must actually happen: members overlap on the small budget,
	// and the books must balance.
	if res.PortfolioHits <= 0 {
		t.Fatalf("portfolio saved no evaluations (lookups %d, unique %d)", res.PortfolioLookups, res.PortfolioUnique)
	}
	if res.PortfolioLookups != res.PortfolioUnique+res.PortfolioHits {
		t.Fatalf("cache accounting broken: %d != %d + %d", res.PortfolioLookups, res.PortfolioUnique, res.PortfolioHits)
	}
	pi := len(res.Strategies) - 1
	for oi := range res.Objectives {
		for si := range res.Strategies {
			c := res.Cells[si][oi]
			if c.MeanObjective <= 0 {
				t.Errorf("cell [%s][%s] has non-positive mean %g", res.Strategies[si], res.Objectives[oi], c.MeanObjective)
			}
			if c.PctVsBest < 0 {
				t.Errorf("cell [%s][%s] beats the column best: %g%%", res.Strategies[si], res.Objectives[oi], c.PctVsBest)
			}
		}
		// The portfolio row must sit at or below every member row (same
		// seeds, min over members, averaged over the same repeats).
		for si := 0; si < pi; si++ {
			if res.Cells[pi][oi].MeanObjective > res.Cells[si][oi].MeanObjective {
				t.Errorf("portfolio mean %g worse than %s mean %g under %s",
					res.Cells[pi][oi].MeanObjective, res.Strategies[si], res.Cells[si][oi].MeanObjective, res.Objectives[oi])
			}
		}
	}

	// Every mean sits at or above the certified optimum of its column —
	// the gap-to-proof columns can never go negative.
	if len(res.ProvenOptima) != len(res.Objectives) {
		t.Fatalf("proven optima per objective: %v", res.ProvenOptima)
	}
	for oi := range res.Objectives {
		if res.ProvenOptima[oi] <= 0 {
			t.Errorf("objective %s: non-positive certified optimum %g", res.Objectives[oi], res.ProvenOptima[oi])
		}
		for si := range res.Strategies {
			if c := res.Cells[si][oi]; c.PctVsOptimum < 0 {
				t.Errorf("cell [%s][%s] beats the certified optimum: %g%%",
					res.Strategies[si], res.Objectives[oi], c.PctVsOptimum)
			}
		}
	}

	text := RenderStrategyComparison(res, offload.GenomeWorkload(dna.Human), 150, s.Repeats)
	for _, want := range []string{"strategy x objective", "anneal", "portfolio", "shared cache", "never worse", "pct vs optimum", "certified optima"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}

func TestExactGapTable(t *testing.T) {
	s := NewSuite()
	res, err := s.ExactGapTable(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Heuristics) != 5 {
		t.Fatalf("gap table shape: %d rows, heuristics %v", len(res.Rows), res.Heuristics)
	}
	sawDAG, sawDivisible := false, false
	for _, r := range res.Rows {
		if !r.MatchesEnumeration {
			t.Errorf("%s on %s: exact optimum diverged from enumeration", r.Scenario, r.Platform)
		}
		if r.Explored >= r.SpaceSize {
			t.Errorf("%s on %s: no pruning (%d of %d explored)", r.Scenario, r.Platform, r.Explored, r.SpaceSize)
		}
		if len(r.GapPct) != len(res.Heuristics) {
			t.Fatalf("%s on %s: %d gaps for %d heuristics", r.Scenario, r.Platform, len(r.GapPct), len(res.Heuristics))
		}
		for hi, g := range r.GapPct {
			if g < 0 {
				t.Errorf("%s on %s: %s beat the proven optimum by %g%%",
					r.Scenario, r.Platform, res.Heuristics[hi], -g)
			}
		}
		if strings.HasPrefix(r.Scenario, "dag:") {
			sawDAG = true
		} else {
			sawDivisible = true
		}
	}
	if !sawDAG || !sawDivisible {
		t.Fatalf("gap table must cover both workload classes: dag=%v divisible=%v", sawDAG, sawDivisible)
	}
	text := RenderExactGapTable(res)
	for _, want := range []string{"proven optimum", "every proof matched", "real pruning"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q:\n%s", want, text)
		}
	}
}
