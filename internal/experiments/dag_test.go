package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hetopt/internal/scenario"
)

// TestDAGTableCoverage: the placement table covers every graph preset
// on every platform; the optimum never loses to either baseline, and
// at least one cell shows a genuine heterogeneous win.
func TestDAGTableCoverage(t *testing.T) {
	s := NewSuite()
	s.Parallelism = 8
	cells, err := s.DAGTable()
	if err != nil {
		t.Fatal(err)
	}
	presets := 0
	for _, f := range scenario.Families() {
		if f.IsDAG() {
			presets += len(f.Presets)
		}
	}
	if want := presets * len(scenario.Platforms()); len(cells) != want {
		t.Fatalf("table has %d cells, want %d (graph presets x platforms)", len(cells), want)
	}
	split := 0
	for _, c := range cells {
		if c.BestSec > c.HostOnlySec+1e-12 || c.BestSec > c.RoundRobinSec+1e-12 {
			t.Errorf("%s/%s: optimum %.4f loses to a baseline (%+v)", c.Platform, c.Workload, c.BestSec, c)
		}
		if len(c.Placement) != c.HostNodes+c.DeviceNodes {
			t.Errorf("%s/%s: placement %q inconsistent with %d/%d counts",
				c.Platform, c.Workload, c.Placement, c.HostNodes, c.DeviceNodes)
		}
		if c.HostNodes > 0 && c.DeviceNodes > 0 {
			split++
		}
	}
	if split == 0 {
		t.Error("no cell uses both processors; the placement problem is degenerate")
	}
}

// TestDAGReport smoke-checks the placement-focused report.
func TestDAGReport(t *testing.T) {
	var buf bytes.Buffer
	if err := DAGReport(&buf, "gpu-like", "dag:resnet-ish", 8); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"dag:resnet-ish", "GPU-like accelerator", "optimal placement", "speedup vs host-only", "DAG placement:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	if err := DAGReport(&buf, "paper", "dna:human", 1); err == nil {
		t.Error("divisible workload accepted by DAGReport")
	}
}
