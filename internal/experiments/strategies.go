package experiments

import (
	"fmt"
	"math"

	"hetopt/internal/core"
	"hetopt/internal/offload"
	"hetopt/internal/search"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
	"hetopt/internal/tables"
)

// StrategyCell is one (strategy, objective) entry of the comparison.
type StrategyCell struct {
	// MeanObjective is the measured objective value of the suggested
	// configuration, averaged over Suite.Repeats seeds (the search runs
	// on measurements, so the search optimum and its measured value
	// coincide).
	MeanObjective float64
	// PctVsBest is the gap to the column's best strategy; PctVsOptimum
	// is the gap to the column's certified branch-and-bound optimum —
	// distance from a proof, not from the best heuristic.
	PctVsBest    float64
	PctVsOptimum float64
	// MeanEvaluations is the logical evaluation count per run.
	MeanEvaluations float64
}

// StrategyComparisonResult ranks strategies x objectives under equal
// per-worker evaluation budgets, with the portfolio's shared-cache
// accounting.
type StrategyComparisonResult struct {
	// Strategies and Objectives label the table axes; Cells is indexed
	// [strategy][objective].
	Strategies []string
	Objectives []string
	Cells      [][]StrategyCell
	// PortfolioLookups/Unique/Hits aggregate the racing portfolio's
	// shared-cache accounting over every (objective, seed) run: Unique
	// is what the portfolio actually paid, Hits what sharing saved —
	// evaluations that were never duplicated across members.
	PortfolioLookups, PortfolioUnique, PortfolioHits int
	// PortfolioNeverWorse reports whether the portfolio's best search
	// energy matched or beat its best member's in every single run (it
	// must: every member races with the same seed and budget it gets
	// standalone, and the winner is a min over them).
	PortfolioNeverWorse bool
	// ProvenOptima[oi] is the exact strategy's certified optimum per
	// objective — the reference every PctVsOptimum measures against —
	// and ExactEvaluations[oi] what the proof cost in evaluations.
	ProvenOptima     []float64
	ExactEvaluations []int
}

// StrategyComparison is the tentpole experiment of the pluggable search
// layer: every strategy explores the same configuration space under the
// same measured objective and an equal per-worker evaluation budget,
// and the racing portfolio runs all of them concurrently over one
// shared evaluation cache. Evaluation is measurement-driven (the SAM
// column's regime), so rankings compare search quality, not prediction
// error.
func (s *Suite) StrategyComparison(w offload.Workload, budget int) (*StrategyComparisonResult, error) {
	// One configuration-keyed cache serves the whole comparison:
	// measurement is objective-independent (the cache stores the full
	// Measurement) and seeds repeat across members and objectives, so
	// heavily overlapping states are paid once. Logical per-run
	// accounting (MeanEvaluations, the portfolio's memo stats) is
	// untouched — caching never changes a reported number.
	measurer := search.NewCache(core.NewMeasurer(s.Platform, w))
	members := []strategy.Strategy{
		strategy.Anneal{InitialTemp: core.DefaultInitialTemp, StopTemp: core.DefaultInitialTemp / core.TempSpan},
		strategy.Genetic{},
		strategy.Tabu{},
		strategy.Local{},
		strategy.Random{},
	}
	portfolio := strategy.Portfolio{Members: members}
	objectives := []core.Objective{
		core.TimeObjective{},
		core.EnergyObjective{},
		core.WeightedSumObjective{Alpha: 0.5},
	}

	res := &StrategyComparisonResult{
		Objectives:          make([]string, len(objectives)),
		Cells:               make([][]StrategyCell, len(members)+1),
		PortfolioNeverWorse: true,
		ProvenOptima:        make([]float64, len(objectives)),
		ExactEvaluations:    make([]int, len(objectives)),
	}
	for _, m := range members {
		res.Strategies = append(res.Strategies, m.Name())
	}
	res.Strategies = append(res.Strategies, portfolio.Name())
	for i := range res.Cells {
		res.Cells[i] = make([]StrategyCell, len(objectives))
	}

	repeats := s.repeats()
	for oi, obj := range objectives {
		res.Objectives[oi] = obj.Name()
		// The bounded adapter attaches the roofline pruning oracle, so
		// the certified reference below is cheap; heuristics never read
		// bounds, so their runs are untouched.
		prob := core.NewBoundedSearchProblem(s.Schema, measurer, obj, space.StepMove, s.Platform, w)
		exact, err := strategy.Exact{Prove: true}.Minimize(prob, strategy.Options{Parallelism: s.Parallelism})
		if err != nil {
			return nil, fmt.Errorf("experiments: exact reference for %s: %w", obj.Name(), err)
		}
		cert, ok := exact.Certificate()
		if !ok || !cert.Optimal {
			return nil, fmt.Errorf("experiments: exact reference for %s not proved: %+v", obj.Name(), cert)
		}
		res.ProvenOptima[oi] = exact.BestEnergy
		res.ExactEvaluations[oi] = exact.Evaluations
		for r := 0; r < repeats; r++ {
			opt := strategy.Options{Budget: budget, Seed: s.Seed + int64(r), Parallelism: s.Parallelism}
			bestMember := math.Inf(1)
			for mi, m := range members {
				mres, err := m.Minimize(prob, opt)
				if err != nil {
					return nil, fmt.Errorf("experiments: strategy %s: %w", m.Name(), err)
				}
				res.Cells[mi][oi].MeanObjective += mres.BestEnergy
				res.Cells[mi][oi].MeanEvaluations += float64(mres.Evaluations)
				if mres.BestEnergy < bestMember {
					bestMember = mres.BestEnergy
				}
			}
			pres, err := portfolio.Race(prob, opt)
			if err != nil {
				return nil, fmt.Errorf("experiments: portfolio: %w", err)
			}
			pi := len(members)
			res.Cells[pi][oi].MeanObjective += pres.BestEnergy
			res.Cells[pi][oi].MeanEvaluations += float64(pres.Evaluations)
			res.PortfolioLookups += pres.Lookups
			res.PortfolioUnique += pres.Unique
			res.PortfolioHits += pres.Hits
			if pres.BestEnergy > bestMember {
				res.PortfolioNeverWorse = false
			}
		}
	}

	for oi := range objectives {
		best := math.Inf(1)
		for si := range res.Cells {
			res.Cells[si][oi].MeanObjective /= float64(repeats)
			res.Cells[si][oi].MeanEvaluations /= float64(repeats)
			if res.Cells[si][oi].MeanObjective < best {
				best = res.Cells[si][oi].MeanObjective
			}
		}
		opt := res.ProvenOptima[oi]
		for si := range res.Cells {
			res.Cells[si][oi].PctVsBest = 100 * (res.Cells[si][oi].MeanObjective - best) / best
			if opt > 0 {
				res.Cells[si][oi].PctVsOptimum = 100 * (res.Cells[si][oi].MeanObjective - opt) / opt
			}
		}
	}
	return res, nil
}

// RenderStrategyComparison formats the strategy x objective ranking
// with the portfolio's cache accounting.
func RenderStrategyComparison(res *StrategyComparisonResult, w offload.Workload, budget, repeats int) string {
	cols := []string{"strategy"}
	for _, o := range res.Objectives {
		cols = append(cols, "mean "+o, "pct vs best", "pct vs optimum")
	}
	cols = append(cols, "mean evals")
	tb := tables.New(fmt.Sprintf(
		"Extension: strategy x objective ranking (genome %s, budget %d evaluations per worker, %d seeds, measurement-driven)",
		w.Name, budget, repeats), cols...)
	for si, name := range res.Strategies {
		row := []string{name}
		for oi := range res.Objectives {
			c := res.Cells[si][oi]
			row = append(row, tables.F(c.MeanObjective, 4), tables.Percent(c.PctVsBest), tables.Percent(c.PctVsOptimum))
		}
		row = append(row, tables.F(res.Cells[si][0].MeanEvaluations, 0))
		tb.AddRow(row...)
	}
	never := "never worse than its best member (as constructed)"
	if !res.PortfolioNeverWorse {
		never = "WORSE than its best member in at least one run (bug!)"
	}
	optima := "certified optima:"
	for oi, o := range res.Objectives {
		optima += fmt.Sprintf(" %s=%s (%d evals)", o, tables.F(res.ProvenOptima[oi], 4), res.ExactEvaluations[oi])
	}
	return tb.String() + optima + "\n" + fmt.Sprintf(
		"portfolio shared cache: %d lookups, %d paid evaluations, %d hits (%.1f%% of lookups saved; no evaluation paid twice across members); portfolio best %s\n",
		res.PortfolioLookups, res.PortfolioUnique, res.PortfolioHits,
		100*float64(res.PortfolioHits)/math.Max(1, float64(res.PortfolioLookups)), never)
}
