package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the machine-readable form of the full evaluation, for
// regenerating the paper's figures with external plotting tools.
type Report struct {
	// SpaceSize is the configuration-space cardinality (19,926).
	SpaceSize int `json:"space_size"`
	// Fig2 holds the motivational sweeps.
	Fig2 []Fig2Series `json:"fig2"`
	// Host and Device prediction accuracy.
	HostAccuracy   AccuracyTable `json:"table4_host_accuracy"`
	DeviceAccuracy AccuracyTable `json:"table5_device_accuracy"`
	// HostErrorHistogram and DeviceErrorHistogram mirror Figures 7/8.
	HostErrorHistogram   HistogramJSON `json:"fig7_host_error_histogram"`
	DeviceErrorHistogram HistogramJSON `json:"fig8_device_error_histogram"`
	// Comparisons holds the per-genome method comparison (Figure 9 and
	// Tables VI-IX derive from it).
	Comparisons []MethodComparison `json:"fig9_method_comparison"`
	// Table6Average is the average percent difference row of Table VI.
	Table6Average []float64 `json:"table6_average_percent_difference"`
	// Result3 summarizes the search-effort claim.
	Result3 Result3Summary `json:"result3"`
}

// HistogramJSON is the serializable histogram form.
type HistogramJSON struct {
	Edges    []float64 `json:"edges"`
	Counts   []int     `json:"counts"`
	Overflow int       `json:"overflow"`
}

// BuildReport runs the core experiments and assembles the JSON report.
func (s *Suite) BuildReport() (*Report, error) {
	fig2, err := s.Fig2()
	if err != nil {
		return nil, err
	}
	t4, err := s.Table4()
	if err != nil {
		return nil, err
	}
	t5, err := s.Table5()
	if err != nil {
		return nil, err
	}
	f7, err := s.Fig7()
	if err != nil {
		return nil, err
	}
	f8, err := s.Fig8()
	if err != nil {
		return nil, err
	}
	fig9, err := s.Fig9()
	if err != nil {
		return nil, err
	}
	r3, err := Result3(fig9)
	if err != nil {
		return nil, err
	}
	return &Report{
		SpaceSize:      s.Schema.Size(),
		Fig2:           fig2,
		HostAccuracy:   t4,
		DeviceAccuracy: t5,
		HostErrorHistogram: HistogramJSON{
			Edges: f7.Hist.Edges, Counts: f7.Hist.Counts, Overflow: f7.Hist.Overflow,
		},
		DeviceErrorHistogram: HistogramJSON{
			Edges: f8.Hist.Edges, Counts: f8.Hist.Counts, Overflow: f8.Hist.Overflow,
		},
		Comparisons:   fig9,
		Table6Average: Table6(fig9).Average,
		Result3:       r3,
	}, nil
}

// WriteJSON builds the report and writes it, indented, to w.
func (s *Suite) WriteJSON(w io.Writer) error {
	report, err := s.BuildReport()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return fmt.Errorf("experiments: encoding JSON report: %w", err)
	}
	return nil
}
