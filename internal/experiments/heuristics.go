package experiments

import (
	"fmt"
	"math"

	"hetopt/internal/core"
	"hetopt/internal/heuristics"
	"hetopt/internal/offload"
	"hetopt/internal/space"
	"hetopt/internal/tables"
)

// searchProblem adapts the configuration space + an evaluator to the
// heuristics package's Problem interface.
type searchProblem struct {
	schema *space.Schema
	eval   core.Evaluator
	err    error
}

func (p *searchProblem) Dim() int { return p.schema.Space().Dim() }

func (p *searchProblem) Levels(i int) int { return p.schema.Space().Params[i].Levels() }

func (p *searchProblem) Energy(state []int) float64 {
	if p.err != nil {
		return math.Inf(1)
	}
	cfg, err := p.schema.Config(state)
	if err != nil {
		p.err = err
		return math.Inf(1)
	}
	t, err := p.eval.Evaluate(cfg)
	if err != nil {
		p.err = err
		return math.Inf(1)
	}
	return t.E()
}

// HeuristicResult is one row of the explorer comparison.
type HeuristicResult struct {
	// Name of the search heuristic.
	Name string
	// MeanMeasuredE is the measured objective of the suggested
	// configuration, averaged over Suite.Repeats seeds.
	MeanMeasuredE float64
	// PercentVsEM is the gap to the enumerated optimum.
	PercentVsEM float64
}

// HeuristicComparison is the extension experiment behind the paper's
// Section III-A discussion: all candidate metaheuristics explore the same
// configuration space with ML evaluation under an equal budget, and their
// suggestions are measured for fair comparison. Simulated annealing (the
// paper's choice) is included via the regular SAML path.
func (s *Suite) HeuristicComparison(w offload.Workload, budget int) ([]HeuristicResult, float64, error) {
	inst, err := s.instance(w)
	if err != nil {
		return nil, 0, err
	}
	em, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
	if err != nil {
		return nil, 0, err
	}

	measureBest := func(best []int) (float64, error) {
		cfg, err := inst.Schema.Config(best)
		if err != nil {
			return 0, err
		}
		t, err := inst.Measurer.Evaluate(cfg)
		if err != nil {
			return 0, err
		}
		return t.E(), nil
	}

	type searcher struct {
		name string
		run  func(seed int64) ([]int, error)
	}
	problem := func() *searchProblem {
		return &searchProblem{schema: inst.Schema, eval: inst.Predictor}
	}
	searchers := []searcher{
		{"simulated-annealing", func(seed int64) ([]int, error) {
			res, err := core.Run(core.SAML, inst, s.coreOpts(budget, seed))
			if err != nil {
				return nil, err
			}
			return inst.Schema.Index(res.Config)
		}},
		{"tabu-search", func(seed int64) ([]int, error) {
			p := problem()
			res, err := heuristics.TabuSearch(p, heuristics.TabuOptions{Options: heuristics.Options{Budget: budget, Seed: seed}})
			if err != nil {
				return nil, err
			}
			if p.err != nil {
				return nil, p.err
			}
			return res.Best, nil
		}},
		{"local-search", func(seed int64) ([]int, error) {
			p := problem()
			res, err := heuristics.LocalSearch(p, heuristics.Options{Budget: budget, Seed: seed})
			if err != nil {
				return nil, err
			}
			if p.err != nil {
				return nil, p.err
			}
			return res.Best, nil
		}},
		{"genetic-algorithm", func(seed int64) ([]int, error) {
			p := problem()
			res, err := heuristics.Genetic(p, heuristics.GeneticOptions{Options: heuristics.Options{Budget: budget, Seed: seed}})
			if err != nil {
				return nil, err
			}
			if p.err != nil {
				return nil, p.err
			}
			return res.Best, nil
		}},
		{"random-search", func(seed int64) ([]int, error) {
			p := problem()
			res, err := heuristics.RandomSearch(p, heuristics.Options{Budget: budget, Seed: seed})
			if err != nil {
				return nil, err
			}
			if p.err != nil {
				return nil, p.err
			}
			return res.Best, nil
		}},
	}

	var out []HeuristicResult
	for _, sr := range searchers {
		sum := 0.0
		for r := 0; r < s.repeats(); r++ {
			best, err := sr.run(s.Seed + int64(r))
			if err != nil {
				return nil, 0, fmt.Errorf("experiments: %s: %w", sr.name, err)
			}
			e, err := measureBest(best)
			if err != nil {
				return nil, 0, err
			}
			sum += e
		}
		mean := sum / float64(s.repeats())
		out = append(out, HeuristicResult{
			Name:          sr.name,
			MeanMeasuredE: mean,
			PercentVsEM:   100 * (mean - em.MeasuredE()) / em.MeasuredE(),
		})
	}
	return out, em.MeasuredE(), nil
}

// RenderHeuristicComparison formats the explorer comparison.
func RenderHeuristicComparison(rows []HeuristicResult, emE float64, w offload.Workload, budget, repeats int) string {
	tb := tables.New(fmt.Sprintf("Extension: metaheuristic comparison (genome %s, budget %d evaluations, %d seeds, EM optimum %.4f s)",
		w.Name, budget, repeats, emE),
		"heuristic", "mean measured E [s]", "pct diff vs EM")
	for _, r := range rows {
		tb.AddRow(r.Name, tables.F(r.MeanMeasuredE, 4), tables.Percent(r.PercentVsEM))
	}
	return tb.String()
}
