package experiments

import (
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

func TestHeuristicComparison(t *testing.T) {
	s := testSuite(t)
	rows, emE, err := s.HeuristicComparison(offload.GenomeWorkload(dna.Human), 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 heuristics", len(rows))
	}
	if emE <= 0 {
		t.Fatal("EM reference not positive")
	}
	byName := map[string]HeuristicResult{}
	for _, r := range rows {
		byName[r.Name] = r
		// No heuristic may beat the enumerated optimum.
		if r.PercentVsEM < -1e-9 {
			t.Errorf("%s beat the EM optimum (pd %.2f%%)", r.Name, r.PercentVsEM)
		}
		if r.MeanMeasuredE < emE-1e-12 {
			t.Errorf("%s measured below optimum", r.Name)
		}
	}
	for _, want := range []string{"simulated-annealing", "tabu-search", "local-search", "genetic-algorithm", "random-search"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("missing heuristic %s", want)
		}
	}
	// The guided heuristics (excluding SA, which needs a longer budget to
	// finish cooling) should beat uniform random sampling.
	if byName["genetic-algorithm"].MeanMeasuredE >= byName["random-search"].MeanMeasuredE {
		t.Error("genetic algorithm should beat random search")
	}
	text := RenderHeuristicComparison(rows, emE, offload.GenomeWorkload(dna.Human), 500, s.repeats())
	if !strings.Contains(text, "tabu-search") || !strings.Contains(text, "EM optimum") {
		t.Error("rendered comparison incomplete")
	}
}
