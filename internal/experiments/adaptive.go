package experiments

import (
	"fmt"

	"hetopt/internal/adaptive"
	"hetopt/internal/core"
	"hetopt/internal/offload"
	"hetopt/internal/tables"
)

// AdaptiveRow compares one genome's SAML suggestion before and after
// measured refinement, against the EM optimum.
type AdaptiveRow struct {
	Genome string
	// SAMLE and RefinedE are measured objectives; EME the enumerated
	// optimum.
	SAMLE, RefinedE, EME float64
	// SAMLPd and RefinedPd are percent differences to EM.
	SAMLPd, RefinedPd float64
	// Experiments counts real measurements of the adaptive pipeline
	// (SAML's final check + refinement budget actually used).
	Experiments int
}

// ExtAdaptive runs the future-work experiment: SAML alone versus SAML
// plus measured local refinement, per genome.
func (s *Suite) ExtAdaptive(iterations, refineBudget int) ([]AdaptiveRow, error) {
	var rows []AdaptiveRow
	for _, w := range s.Plan.Workloads {
		inst, err := s.instance(w)
		if err != nil {
			return nil, err
		}
		em, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
		if err != nil {
			return nil, err
		}
		var samlSum, refinedSum float64
		experiments := 0
		for r := 0; r < s.repeats(); r++ {
			inst.Measurer.ResetCount()
			saml, refined, err := adaptive.TuneAndRefine(inst,
				s.coreOpts(iterations, s.Seed+int64(r)+genomeSeed(w.Name)),
				adaptive.Options{MeasureBudget: refineBudget, Parallelism: s.Parallelism})
			if err != nil {
				return nil, fmt.Errorf("experiments: adaptive on %s: %w", w.Name, err)
			}
			samlSum += saml.MeasuredE()
			refinedSum += refined.MeasuredE
			experiments += inst.Measurer.Count()
		}
		samlMean := samlSum / float64(s.repeats())
		refinedMean := refinedSum / float64(s.repeats())
		rows = append(rows, AdaptiveRow{
			Genome:      w.Name,
			SAMLE:       samlMean,
			RefinedE:    refinedMean,
			EME:         em.MeasuredE(),
			SAMLPd:      100 * (samlMean - em.MeasuredE()) / em.MeasuredE(),
			RefinedPd:   100 * (refinedMean - em.MeasuredE()) / em.MeasuredE(),
			Experiments: experiments / s.repeats(),
		})
	}
	return rows, nil
}

// RenderAdaptive formats the adaptive-refinement comparison.
func RenderAdaptive(rows []AdaptiveRow, iterations, budget int) string {
	tb := tables.New(fmt.Sprintf("Extension: adaptive refinement (SAML %d iters + <=%d measured refinements; paper future work)",
		iterations, budget),
		"DNA", "SAML E [s]", "pd vs EM", "refined E [s]", "pd vs EM", "experiments", "EM E [s]")
	for _, r := range rows {
		tb.AddRow(r.Genome,
			tables.F(r.SAMLE, 4), tables.Percent(r.SAMLPd),
			tables.F(r.RefinedE, 4), tables.Percent(r.RefinedPd),
			fmt.Sprint(r.Experiments), tables.F(r.EME, 4))
	}
	return tb.String()
}

// SizeSweepRow records the tuned distribution for one input size.
type SizeSweepRow struct {
	SizeMB       float64
	HostFraction float64
	E            float64
	CPUOnly      bool
}

// ExtSizeSweep tunes the distribution across input sizes, quantifying the
// paper's observation that "the optimal workload distribution depends on
// the input size": small inputs stay CPU-only, large ones split. Tuning
// uses EML — once the models are trained, enumerating predictions is
// nearly free (the per-side inputs memoize), deterministic, and exactly
// the "prediction" capability Table II credits the ML-based methods with.
func (s *Suite) ExtSizeSweep(ref offload.Workload, sizesMB []float64) ([]SizeSweepRow, error) {
	if len(sizesMB) == 0 {
		return nil, fmt.Errorf("experiments: no sizes to sweep")
	}
	models, err := s.Models()
	if err != nil {
		return nil, err
	}
	var rows []SizeSweepRow
	for _, size := range sizesMB {
		w := ref.Scaled(size)
		pred, err := core.NewPredictor(models, w, s.Platform.Model())
		if err != nil {
			return nil, err
		}
		inst := &core.Instance{
			Schema:    s.Schema,
			Measurer:  core.NewMeasurer(s.Platform, w),
			Predictor: pred,
		}
		res, err := core.Run(core.EML, inst, s.coreOpts(0, 0))
		if err != nil {
			return nil, err
		}
		rows = append(rows, SizeSweepRow{
			SizeMB:       size,
			HostFraction: res.Config.HostFraction,
			E:            res.MeasuredE(),
			CPUOnly:      res.Config.HostFraction == 100,
		})
	}
	return rows, nil
}

// RenderSizeSweep formats the size sweep.
func RenderSizeSweep(rows []SizeSweepRow, ref offload.Workload) string {
	tb := tables.New(fmt.Sprintf("Extension: tuned distribution vs input size (%s composition)", ref.Name),
		"size [MB]", "host fraction", "E [s]", "mode")
	for _, r := range rows {
		mode := "split"
		if r.CPUOnly {
			mode = "CPU only"
		} else if r.HostFraction == 0 {
			mode = "device only"
		}
		tb.AddRow(tables.F(r.SizeMB, 0), tables.F(r.HostFraction, 1)+"%", tables.F(r.E, 4), mode)
	}
	return tb.String()
}
