package experiments

import (
	"fmt"
	"strings"

	"hetopt/internal/machine"
)

// The paper's non-data figures are diagrams; RenderFig1/3/4 reproduce
// them as ASCII art so the report covers every figure.

// RenderFig1 draws the heterogeneous platform diagram (paper Figure 1):
// the host's sockets and cores on the left, the accelerator on the right,
// joined by PCIe.
func (s *Suite) RenderFig1() string {
	host, dev := s.Platform.Host(), s.Platform.Device()
	var sb strings.Builder
	sb.WriteString("Figure 1: target accelerated system\n\n")

	left := processorBox(host, "Host")
	right := processorBox(dev, "Device")
	// Join side by side with the PCIe link on the middle line.
	maxLines := len(left)
	if len(right) > maxLines {
		maxLines = len(right)
	}
	width := 0
	for _, l := range left {
		if len(l) > width {
			width = len(l)
		}
	}
	for i := 0; i < maxLines; i++ {
		var l, r string
		if i < len(left) {
			l = left[i]
		}
		if i < len(right) {
			r = right[i]
		}
		link := "        "
		if i == maxLines/2 {
			link = "--PCIe--"
		}
		fmt.Fprintf(&sb, "%-*s %s %s\n", width, l, link, r)
	}
	return sb.String()
}

// processorBox renders one processor as a bordered box of facts.
func processorBox(p *machine.Processor, role string) []string {
	lines := []string{
		fmt.Sprintf("%s: %s", role, p.Name),
		fmt.Sprintf("%d socket(s) x %d cores", p.Sockets, p.CoresPerSocket),
		fmt.Sprintf("%d HW threads/core -> %d threads", p.ThreadsPerCore, p.TotalThreads()),
		fmt.Sprintf("%.1f MB cache, %.0f GB/s", p.CacheMB, p.MemBandwidthGBs),
		fmt.Sprintf("%d-bit SIMD", p.VectorBits),
	}
	if p.ReservedCores > 0 {
		lines = append(lines, fmt.Sprintf("%d core(s) reserved for uOS", p.ReservedCores))
	}
	width := 0
	for _, l := range lines {
		if len(l) > width {
			width = len(l)
		}
	}
	out := []string{"+" + strings.Repeat("-", width+2) + "+"}
	for _, l := range lines {
		out = append(out, fmt.Sprintf("| %-*s |", width, l))
	}
	out = append(out, "+"+strings.Repeat("-", width+2)+"+")
	return out
}

// RenderFig3 draws the simulated-annealing flowchart (paper Figure 3).
func RenderFig3() string {
	return `Figure 3: structure of the simulated annealing algorithm

  [ set initial & best solution, temperature T ]
                     |
                     v
        +--> [ generate a new solution ]
        |            |
        |            v
        |   [ evaluate the new solution:
        |     predict T_host and T_device,
        |     E' = max(T_host, T_device) ]
        |            |
        |            v
        |   ( E' < E  or  p = exp((E-E')/T) close to 1 ? )
        |        | yes                | no
        |        v                    |
        |   [ update current          |
        |     and best solution ]     |
        |        |                    |
        |        +--------+-----------+
        |                 v
        |        [ T = T * (1 - coolingRate) ]
        |                 |
        |                 v
        +------ no ( T < stop temperature ? ) yes --> [ stop ]
`
}

// RenderFig4 draws the predictive-model pipeline (paper Figure 4).
func RenderFig4() string {
	return `Figure 4: the predictive model using boosted decision tree regression

   training (offline)                     prediction (online)
  +--------------------+               +------------------------+
  |   training data    |               |  proposed system       |
  | (7200 experiments) |               |  configuration         |
  +--------------------+               +------------------------+
            |                                      |
            v                                      v
  +--------------------+               +------------------------+
  |   normalize data   | -- ranges --> |  normalize features    |
  +--------------------+               +------------------------+
            |                                      |
            v                                      v
  +--------------------+   ensemble    +------------------------+
  |    train model     | ------------> |  boosted decision tree |
  |  (least-squares    |               |  regression:           |
  |   gradient boost)  |               |  predict T_host,       |
  +--------------------+               |  T_device              |
                                       +------------------------+
`
}
