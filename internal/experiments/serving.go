package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"hetopt/internal/serve"
	"hetopt/internal/tables"
)

// ServingRow is one worker-count row of the serving-throughput table.
type ServingRow struct {
	// Workers is the pool size of the measured server.
	Workers int
	// Jobs is the number of submitted requests, Distinct how many
	// canonical keys they collapse to.
	Jobs, Distinct int
	// StoreHits counts jobs answered without paying for a run; the
	// single-flight store guarantees Jobs - Distinct of them.
	StoreHits int
	// HitRatio is StoreHits / Jobs.
	HitRatio float64
	// ElapsedMS is the wall-clock from first submission to last
	// completion; ReqPerSec the resulting throughput.
	ElapsedMS float64
	ReqPerSec float64
	// MeanLatencyMS is the server-side mean job service time (store
	// hits included, which is what makes the warm-start speedup show).
	MeanLatencyMS float64
	// Inline counts submissions answered on the POST itself (warm hits
	// served from the store with no registry entry and no poll).
	Inline int
	// WarmMeanMS / ColdMeanMS split MeanLatencyMS into the warm-hit
	// fast path and the cold-miss pool path.
	WarmMeanMS float64
	ColdMeanMS float64
}

// ServingThroughputResult is the serving-layer scaling experiment.
type ServingThroughputResult struct {
	Rows []ServingRow
	// Iterations is the per-job search budget used.
	Iterations int
}

// ServingThroughput measures the tuning service end to end over real
// HTTP: for each worker count a fresh server receives jobs = distinct *
// repeats SAM tune requests (seeds 0..distinct-1, cycled), and the
// experiment records throughput and the warm-start hit ratio. The
// store's single-flight discipline makes the accounting deterministic —
// exactly distinct runs are paid, every other submission is a hit — while
// elapsed time and requests/sec vary with the machine.
func (s *Suite) ServingThroughput(workerCounts []int, distinct, repeats, iterations int) (*ServingThroughputResult, error) {
	if distinct < 1 || repeats < 1 {
		return nil, fmt.Errorf("experiments: serving throughput needs distinct >= 1 and repeats >= 1")
	}
	total := distinct * repeats
	res := &ServingThroughputResult{Iterations: iterations}
	for _, workers := range workerCounts {
		srv := serve.New(serve.Options{
			Platform:  s.Platform,
			Schema:    s.Schema,
			Workers:   workers,
			QueueSize: total + 8,
		})
		ts := httptest.NewServer(srv)
		row, err := servingRound(srv, ts.URL, workers, distinct, total, iterations)
		ts.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// servingRound drives one server instance through the request mix.
func servingRound(srv *serve.Server, baseURL string, workers, distinct, total, iterations int) (ServingRow, error) {
	start := time.Now()
	ids := make([]string, 0, total)
	inline := 0
	for i := 0; i < total; i++ {
		req := serve.TuneRequest{
			Method:     "sam",
			Iterations: iterations,
			Seed:       int64(i % distinct),
		}
		body, err := json.Marshal(req)
		if err != nil {
			return ServingRow{}, err
		}
		resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return ServingRow{}, fmt.Errorf("experiments: submitting job %d: %w", i, err)
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return ServingRow{}, fmt.Errorf("experiments: decoding job %d: %w", i, err)
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return ServingRow{}, fmt.Errorf("experiments: job %d refused with status %d", i, resp.StatusCode)
		}
		if st.ID == "" {
			// Warm inline completion: the POST carried the terminal
			// result itself — nothing registered, nothing to poll.
			if st.State != serve.JobDone {
				return ServingRow{}, fmt.Errorf("experiments: inline job %d not done: %s", i, st.State)
			}
			inline++
			continue
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if err := waitDone(baseURL, id); err != nil {
			return ServingRow{}, err
		}
	}
	elapsed := time.Since(start)

	m := srv.Metrics()
	row := ServingRow{
		Workers:       workers,
		Jobs:          total,
		Distinct:      distinct,
		StoreHits:     int(m.Jobs.StoreHits),
		HitRatio:      float64(m.Jobs.StoreHits) / float64(total),
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		MeanLatencyMS: m.Latency.MeanMS,
		Inline:        inline,
		WarmMeanMS:    m.Latency.Warm.MeanMS,
		ColdMeanMS:    m.Latency.Cold.MeanMS,
	}
	if elapsed > 0 {
		row.ReqPerSec = float64(total) / elapsed.Seconds()
	}
	if int(m.Jobs.Completed) != total {
		return ServingRow{}, fmt.Errorf("experiments: %d of %d jobs completed", m.Jobs.Completed, total)
	}
	return row, nil
}

// waitDone polls one job to completion.
func waitDone(baseURL, id string) error {
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch st.State {
		case serve.JobDone:
			return nil
		case serve.JobFailed:
			return fmt.Errorf("experiments: job %s failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: job %s stuck in state %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// RenderServingThroughput formats the serving-layer scaling table.
func RenderServingThroughput(res *ServingThroughputResult) string {
	tb := tables.New(fmt.Sprintf(
		"Extension: tuning-service throughput (SAM, %d iterations per job; jobs collapse onto %d distinct requests, warm-start store absorbs the rest)",
		res.Iterations, res.Rows[0].Distinct),
		"workers", "jobs", "distinct", "store hits", "inline", "hit ratio", "elapsed ms", "req/s", "warm mean ms", "cold mean ms")
	for _, r := range res.Rows {
		tb.AddRow(
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.Distinct),
			fmt.Sprintf("%d", r.StoreHits),
			fmt.Sprintf("%d", r.Inline),
			tables.F(r.HitRatio, 3),
			tables.F(r.ElapsedMS, 1),
			tables.F(r.ReqPerSec, 1),
			tables.F(r.WarmMeanMS, 3),
			tables.F(r.ColdMeanMS, 3),
		)
	}
	return tb.String() +
		"(hit accounting is deterministic: single-flight guarantees each distinct request is paid exactly once,\n" +
		" and every inline answer is a warm hit served on the POST itself;\n" +
		" elapsed/req-s and the warm/cold latency split are wall-clock and vary with the machine)\n"
}
