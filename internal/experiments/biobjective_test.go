package experiments

import (
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

func TestBiObjective(t *testing.T) {
	s := NewSuite()
	s.Parallelism = 4
	rows, err := s.BiObjective(offload.GenomeWorkload(dna.Human), 0.5, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (time, energy, weighted, bounded)", len(rows))
	}
	ref := rows[0]
	if ref.Objective != "time" {
		t.Fatalf("first row must be the time-optimal reference, got %q", ref.Objective)
	}
	var energy, weighted, bounded *BiObjectiveRow
	for i := range rows[1:] {
		r := &rows[1+i]
		switch {
		case r.Objective == "energy":
			energy = r
		case strings.HasPrefix(r.Objective, "weighted"):
			weighted = r
		case strings.HasPrefix(r.Objective, "bounded"):
			bounded = r
		}
	}
	if energy == nil || weighted == nil || bounded == nil {
		t.Fatalf("missing objectives in rows: %+v", rows)
	}
	// The acceptance shape of the bi-objective extension: the energy- and
	// weighted-optimal distributions differ from the time-optimal one and
	// consume less energy.
	if energy.Config == ref.Config || weighted.Config == ref.Config {
		t.Fatalf("energy/weighted optima must differ from the time optimum %v", ref.Config)
	}
	if energy.EnergyJ >= ref.EnergyJ {
		t.Fatalf("energy optimum %g J not below time optimum %g J", energy.EnergyJ, ref.EnergyJ)
	}
	if bounded.TimeSec > 1.1*ref.TimeSec {
		t.Fatalf("bounded row %g s violates the 10%% slack over %g s", bounded.TimeSec, ref.TimeSec)
	}

	text := RenderBiObjective(rows, offload.GenomeWorkload(dna.Human))
	for _, want := range []string{"Bi-objective", "time", "energy", "weighted", "bounded", "dT vs time-opt"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
}
