package experiments

import (
	"fmt"
	"io"

	"hetopt/internal/graph"
	"hetopt/internal/scenario"
	"hetopt/internal/strategy"
	"hetopt/internal/tables"
)

// DAGCell is one graph-preset x platform cell of the DAG placement
// table: the optimal placement and its makespan against the host-only
// and naive round-robin baselines.
type DAGCell struct {
	// Workload and Platform name the scenario ("dag:resnet-ish" etc.).
	Workload, Platform string
	// Placement is the canonical 'h'/'d' encoding of the best placement;
	// HostNodes and DeviceNodes count each side's operators.
	Placement              string
	HostNodes, DeviceNodes int
	// BestSec, HostOnlySec and RoundRobinSec are the simulated
	// makespans of the tuned, all-host and alternating placements.
	BestSec, HostOnlySec, RoundRobinSec float64
	// Speedup is HostOnlySec / BestSec.
	Speedup float64
	// Evaluations is the number of placements priced by the search.
	Evaluations int
}

// DAGTable searches the optimal placement for every registered graph
// preset on every registered platform with exhaustive enumeration (the
// placement spaces are 2^n for n <= graph.MaxNodes nodes; every shipped
// preset enumerates in milliseconds) and reports it against the
// host-only and round-robin baselines — the graph-class analogue of
// ScenarioTable.
func (s *Suite) DAGTable() ([]DAGCell, error) {
	var cells []DAGCell
	for _, spec := range scenario.Platforms() {
		for _, fam := range scenario.Families() {
			if !fam.IsDAG() {
				continue
			}
			for _, preset := range fam.Presets {
				sim, err := spec.DAGSim(*preset.Graph)
				if err != nil {
					return nil, fmt.Errorf("experiments: dag %s on %s: %w", preset.Name, spec.Name, err)
				}
				res, err := graph.Tune(sim, strategy.Exhaustive{}, strategy.Options{Parallelism: s.Parallelism})
				if err != nil {
					return nil, fmt.Errorf("experiments: dag %s on %s: %w", preset.Name, spec.Name, err)
				}
				cell := DAGCell{
					Workload:      fam.Name + ":" + preset.Name,
					Platform:      spec.Name,
					Placement:     graph.PlacementString(res.Placement),
					BestSec:       res.MakespanSec,
					HostOnlySec:   res.HostOnlySec,
					RoundRobinSec: res.RoundRobinSec,
					Speedup:       res.HostOnlySec / res.MakespanSec,
					Evaluations:   res.Evaluations,
				}
				for _, side := range res.Placement {
					if side == graph.SideHost {
						cell.HostNodes++
					} else {
						cell.DeviceNodes++
					}
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// RenderDAGTable renders the DAG placement comparison.
func RenderDAGTable(cells []DAGCell) string {
	tb := tables.New("DAG placement: optimal vs host-only vs round-robin per graph preset x platform",
		"platform", "workload", "placement", "host/dev", "best (s)", "host-only (s)", "round-robin (s)", "speedup")
	for _, c := range cells {
		tb.AddRow(c.Platform, c.Workload, c.Placement,
			fmt.Sprintf("%d/%d", c.HostNodes, c.DeviceNodes),
			fmt.Sprintf("%.4f", c.BestSec),
			fmt.Sprintf("%.4f", c.HostOnlySec),
			fmt.Sprintf("%.4f", c.RoundRobinSec),
			fmt.Sprintf("%.2fx", c.Speedup))
	}
	return tb.String()
}

// DAGReport writes the placement-focused report for one DAG scenario:
// the priced graph, the tuned placement rendered with the platform's
// processor names, and the cross-preset table. cmd/hetbench runs it
// when -workload resolves to a graph.
func DAGReport(w io.Writer, platformName, workloadName string, parallelism int) error {
	sc, err := scenario.Lookup(platformName, workloadName)
	if err != nil {
		return err
	}
	if !sc.IsDAG() {
		return fmt.Errorf("experiments: %s is not a DAG workload", workloadName)
	}
	sim, err := sc.DAGSim()
	if err != nil {
		return err
	}
	res, err := graph.Tune(sim, strategy.Exhaustive{}, strategy.Options{Parallelism: parallelism})
	if err != nil {
		return err
	}
	host, device := sim.SideNames()
	rep := sim.Report(res.Placement)
	fmt.Fprintf(w, "DAG scenario %s on %s (%s + %s)\n",
		workloadName, sc.Platform.Name, host, device)
	fmt.Fprintf(w, "  graph: %d nodes, %d edges, %.0f MB total work\n",
		len(sc.Graph.Nodes), len(sc.Graph.Edges), sc.Graph.TotalWorkMB())
	fmt.Fprintf(w, "  optimal placement (%d placements priced): %s\n",
		res.Evaluations, sim.FormatPlacement(res.Placement))
	fmt.Fprintf(w, "  makespan %.4f s | host-only %.4f s | device-only %.4f s | round-robin %.4f s\n",
		res.MakespanSec, res.HostOnlySec, res.DeviceOnlySec, res.RoundRobinSec)
	fmt.Fprintf(w, "  speedup vs host-only: %.2fx | busy: %s %.4f s, %s %.4f s\n\n",
		res.SpeedupVsHost(), host, rep.HostBusySec, device, rep.DeviceBusySec)

	suite := &Suite{Parallelism: parallelism}
	cells, err := suite.DAGTable()
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, RenderDAGTable(cells)+"\n")
	return err
}
