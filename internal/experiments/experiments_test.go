package experiments

import (
	"strings"
	"sync"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

// sharedSuite is trained once and reused across tests: model training
// dominates test time and is deterministic.
var (
	sharedOnce  sync.Once
	sharedSuite *Suite
	sharedErr   error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSuite = NewSuite()
		sharedSuite.Repeats = 2 // keep method-comparison tests fast
		_, sharedErr = sharedSuite.Models()
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedSuite
}

func TestFig2ReproducesPaperShapes(t *testing.T) {
	s := testSuite(t)
	series, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(series))
	}
	// Figure 2a: CPU-only is fastest for the small input.
	a := series[0]
	if a.Ratios[a.BestIndex] != "CPU only" {
		t.Errorf("fig2a best = %s, want CPU only", a.Ratios[a.BestIndex])
	}
	// Figure 2b: a balanced split wins for the large input at 48 threads.
	b := series[1]
	if f := b.HostFractions[b.BestIndex]; f < 50 || f > 80 {
		t.Errorf("fig2b best host share = %g, want within [50,80]", f)
	}
	// Figure 2c: the device takes the majority with 4 host threads.
	c := series[2]
	if f := c.HostFractions[c.BestIndex]; f > 40 {
		t.Errorf("fig2c best host share = %g, want <= 40", f)
	}
	// Normalization covers [1, 10] per the paper's presentation.
	for _, sr := range series {
		lo, hi := sr.Normalized[0], sr.Normalized[0]
		for _, v := range sr.Normalized {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo != 1 || hi != 10 {
			t.Errorf("%s normalized range [%g,%g], want [1,10]", sr.Scenario.Label, lo, hi)
		}
		if len(sr.Ratios) != 11 {
			t.Errorf("%s has %d ratios, want 11", sr.Scenario.Label, len(sr.Ratios))
		}
	}
	text := RenderFig2(series)
	for _, want := range []string{"fig2a", "fig2b", "fig2c", "CPU only", "Phi only", "<- best"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered fig2 missing %q", want)
		}
	}
}

func TestModelAccuracyWithinPaperBands(t *testing.T) {
	s := testSuite(t)
	models, err := s.Models()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: host 5.239%, device 3.132%. Allow generous bands.
	if pct := models.HostReport.Eval.MeanPercentError; pct > 8 {
		t.Errorf("host percent error %.2f%% outside band (paper 5.24%%)", pct)
	}
	if pct := models.DeviceReport.Eval.MeanPercentError; pct > 6 {
		t.Errorf("device percent error %.2f%% outside band (paper 3.13%%)", pct)
	}
	// Split halves: 1440/1440 host, 2160/2160 device.
	if models.HostReport.TrainN != 1440 || models.HostReport.TestN != 1440 {
		t.Errorf("host split %d/%d, want 1440/1440", models.HostReport.TrainN, models.HostReport.TestN)
	}
	if models.DeviceReport.TrainN != 2160 || models.DeviceReport.TestN != 2160 {
		t.Errorf("device split %d/%d, want 2160/2160", models.DeviceReport.TrainN, models.DeviceReport.TestN)
	}
}

func TestFig5HostCurves(t *testing.T) {
	s := testSuite(t)
	pc, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if pc.Side != "host" || len(pc.ThreadCounts) != 4 {
		t.Fatalf("unexpected curves %v", pc.ThreadCounts)
	}
	for _, n := range pc.ThreadCounts {
		pts := pc.Curves[n]
		if len(pts) != len(s.Plan.Workloads)*len(s.Plan.Fractions) {
			t.Fatalf("%dT: %d points", n, len(pts))
		}
		// Sizes sorted; predictions track measurements.
		var worst float64
		for i := 1; i < len(pts); i++ {
			if pts[i].SizeMB < pts[i-1].SizeMB {
				t.Fatalf("%dT: sizes not sorted", n)
			}
		}
		var pctSum float64
		for _, p := range pts {
			pct := 100 * abs(p.Measured-p.Predicted) / p.Measured
			pctSum += pct
			if pct > worst {
				worst = pct
			}
		}
		if mean := pctSum / float64(len(pts)); mean > 12 {
			t.Errorf("%dT: mean prediction error %.1f%% too large", n, mean)
		}
	}
	// More threads must be faster at the same size (paper Figure 5).
	p6 := pc.Curves[6]
	p48 := pc.Curves[48]
	if p6[len(p6)-1].Measured <= p48[len(p48)-1].Measured {
		t.Error("6 threads should be slower than 48 at the largest size")
	}
	text := RenderPredictionCurves(pc, "Figure 5")
	if !strings.Contains(text, "48T measured") || !strings.Contains(text, "48T predicted") {
		t.Error("rendered curves missing series labels")
	}
}

func TestFig6DeviceCurves(t *testing.T) {
	s := testSuite(t)
	pc, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if pc.Side != "device" {
		t.Fatal("wrong side")
	}
	// 240 threads beat 30 at the largest size.
	p30 := pc.Curves[30]
	p240 := pc.Curves[240]
	if p30[len(p30)-1].Measured <= p240[len(p240)-1].Measured {
		t.Error("30 device threads should be slower than 240")
	}
}

func TestFig7And8Histograms(t *testing.T) {
	s := testSuite(t)
	h7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if h7.Hist.Total() != 1440 {
		t.Errorf("fig7 samples = %d, want 1440 (host test half)", h7.Hist.Total())
	}
	h8, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if h8.Hist.Total() != 2160 {
		t.Errorf("fig8 samples = %d, want 2160 (device test half)", h8.Hist.Total())
	}
	// Result 2: "most of the absolute error values are low" — at least
	// half the mass in the lower half of the buckets.
	lowerMass := 0
	for i := 0; i < len(h7.Hist.Counts)/2; i++ {
		lowerMass += h7.Hist.Counts[i]
	}
	if lowerMass < h7.Hist.Total()/2 {
		t.Errorf("host error mass not concentrated low: %d of %d", lowerMass, h7.Hist.Total())
	}
	text := RenderErrorHistogram(h7, "Figure 7")
	if !strings.Contains(text, "host") || !strings.Contains(text, "#") {
		t.Error("rendered histogram looks empty")
	}
}

func TestTables4And5(t *testing.T) {
	s := testSuite(t)
	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != len(s.Plan.HostThreads) {
		t.Fatalf("table 4 rows = %d, want %d", len(t4.Rows), len(s.Plan.HostThreads))
	}
	if t4.AvgPercent <= 0 || t4.AvgPercent > 10 {
		t.Errorf("table 4 avg percent = %.2f implausible", t4.AvgPercent)
	}
	t5, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != len(s.Plan.DeviceThreads) {
		t.Fatalf("table 5 rows = %d, want %d", len(t5.Rows), len(s.Plan.DeviceThreads))
	}
	text := RenderAccuracyTable(t4, "Table IV")
	if !strings.Contains(text, "avg") {
		t.Error("rendered accuracy table missing average row")
	}
}

func TestMethodComparisonSingleGenome(t *testing.T) {
	s := testSuite(t)
	mc, err := s.MethodComparisonFor(offload.GenomeWorkload(dna.Cat))
	if err != nil {
		t.Fatal(err)
	}
	if mc.EMExperiments != 19926 {
		t.Fatalf("EM performed %d experiments, want 19926", mc.EMExperiments)
	}
	if len(mc.SAML) != len(PaperIterations()) || len(mc.SAM) != len(PaperIterations()) {
		t.Fatal("budget sweep incomplete")
	}
	for i := range mc.SAML {
		// EM is the enumerated optimum: nothing beats it.
		if mc.SAML[i] < mc.EM-1e-12 || mc.SAM[i] < mc.EM-1e-12 {
			t.Fatalf("budget %d: SA beat the enumerated optimum", mc.Iterations[i])
		}
	}
	if mc.HostOnly <= mc.EM || mc.DeviceOnly <= mc.EM {
		t.Fatal("heterogeneous optimum should beat both baselines")
	}
	// Result 3 shape: late budgets should be no worse than the first one
	// on average.
	if mc.SAML[len(mc.SAML)-1] > mc.SAML[0]*1.2 {
		t.Errorf("SAML at 2000 iterations (%g) much worse than at 250 (%g)", mc.SAML[len(mc.SAML)-1], mc.SAML[0])
	}
}

func TestDerivedTablesFromSyntheticData(t *testing.T) {
	mcs := []MethodComparison{
		{
			Genome:     "human",
			Iterations: []int{250, 1000},
			SAML:       []float64{0.45, 0.40},
			SAM:        []float64{0.42, 0.39},
			EM:         0.36, EML: 0.38, EMExperiments: 19926,
			HostOnly: 0.60, DeviceOnly: 0.72,
		},
		{
			Genome:     "mouse",
			Iterations: []int{250, 1000},
			SAML:       []float64{0.40, 0.36},
			SAM:        []float64{0.38, 0.34},
			EM:         0.32, EML: 0.33, EMExperiments: 19926,
			HostOnly: 0.55, DeviceOnly: 0.62,
		},
	}
	t6 := Table6(mcs)
	if !t6.Percent || len(t6.Average) != 2 {
		t.Fatalf("table 6 malformed: %+v", t6)
	}
	wantHuman := 100 * (0.45 - 0.36) / 0.36
	if got := t6.Rows["human"][0]; abs(got-wantHuman) > 1e-9 {
		t.Fatalf("human pd = %g, want %g", got, wantHuman)
	}
	if t6.Average[0] <= t6.Average[1] {
		t.Fatal("average percent difference should shrink with iterations")
	}
	t7 := Table7(mcs)
	if got := t7.Rows["mouse"][1]; abs(got-0.04) > 1e-9 {
		t.Fatalf("mouse abs diff = %g, want 0.04", got)
	}
	t8 := Table8(mcs)
	if got := t8.Rows["human"][1]; abs(got-0.60/0.40) > 1e-9 {
		t.Fatalf("human host speedup = %g", got)
	}
	if got := t8.EMRow["human"]; abs(got-0.60/0.36) > 1e-9 {
		t.Fatalf("human EM speedup = %g", got)
	}
	t9 := Table9(mcs)
	if got := t9.MaxSpeedup(1000); abs(got-0.72/0.40) > 1e-9 {
		t.Fatalf("max device speedup = %g", got)
	}
	r3, err := Result3(mcs)
	if err != nil {
		t.Fatal(err)
	}
	if abs(r3.Fraction-100*1000.0/19926) > 1e-9 {
		t.Fatalf("result 3 fraction = %g", r3.Fraction)
	}
	for _, text := range []string{
		RenderDifferenceTable(t6, "Table VI"),
		RenderDifferenceTable(t7, "Table VII"),
		RenderSpeedupTable(t8, "Table VIII"),
		RenderSpeedupTable(t9, "Table IX"),
		RenderFig9(mcs),
	} {
		if !strings.Contains(text, "human") || !strings.Contains(text, "mouse") {
			t.Error("rendered table missing genomes")
		}
	}
}

func TestResult3Errors(t *testing.T) {
	if _, err := Result3(nil); err == nil {
		t.Error("empty comparisons should fail")
	}
	if _, err := Result3([]MethodComparison{{Genome: "x", Iterations: []int{10}, SAML: []float64{1}, EM: 1}}); err == nil {
		t.Error("missing 1000-iteration budget should fail")
	}
}

func TestStaticTables(t *testing.T) {
	s := testSuite(t)
	t1 := s.RenderTable1()
	if !strings.Contains(t1, "19926") {
		t.Error("table 1 missing space size")
	}
	t2 := RenderTable2()
	for _, m := range []string{"EM", "EML", "SAM", "SAML"} {
		if !strings.Contains(t2, m) {
			t.Errorf("table 2 missing %s", m)
		}
	}
	t3 := s.RenderTable3()
	for _, wantStr := range []string{"Xeon Phi", "61", "244", "352.0"} {
		if !strings.Contains(t3, wantStr) {
			t.Errorf("table 3 missing %q", wantStr)
		}
	}
}

func TestGenomeSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, g := range dna.Genomes() {
		s := genomeSeed(g.Name)
		if prev, ok := seen[s]; ok {
			t.Fatalf("genomes %s and %s share a seed", prev, g.Name)
		}
		seen[s] = g.Name
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
