package experiments

import (
	"math"
	"strings"
	"testing"

	"hetopt/internal/scenario"
)

// TestScenarioTableCoverage: the cross-scenario table covers every
// registered workload family on every registered platform, and the
// optimizer genuinely distributes differently per scenario — at least
// two cells' tuned host fractions differ by >= 20 points.
func TestScenarioTableCoverage(t *testing.T) {
	s := NewSuite()
	s.Parallelism = 8
	cells, err := s.ScenarioTable()
	if err != nil {
		t.Fatal(err)
	}
	platforms := scenario.Platforms()
	var families []scenario.Family
	for _, f := range scenario.Families() {
		// DAG families are covered by the placement table, not the
		// fraction-tuning one.
		if !f.IsDAG() {
			families = append(families, f)
		}
	}
	if want := len(families) * len(platforms); len(cells) != want {
		t.Fatalf("table has %d cells, want %d (divisible families x platforms)", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.Platform+"/"+c.Workload] = true
		if c.Speedup < 1 {
			// EM's optimum can never be slower than the host-only
			// baseline it dominates.
			t.Errorf("%s/%s: speedup %.2f < 1", c.Platform, c.Workload, c.Speedup)
		}
		if c.TimeSec <= 0 || c.HostOnlySec <= 0 {
			t.Errorf("%s/%s: non-positive times %+v", c.Platform, c.Workload, c)
		}
	}
	for _, p := range platforms {
		for _, f := range families {
			if !seen[p.Name+"/"+f.Name] {
				t.Errorf("table misses scenario %s/%s", p.Name, f.Name)
			}
		}
	}
	if spread := HostFractionSpread(cells); spread < 20 {
		t.Fatalf("tuned host fractions span only %.1f points; the scenario layer must produce visibly different distributions", spread)
	}
	// The spread must come from workload identity, not only platform
	// identity: on at least one single platform two families differ by
	// >= 20 points.
	perPlatform := map[string][]float64{}
	for _, c := range cells {
		perPlatform[c.Platform] = append(perPlatform[c.Platform], c.Config.HostFraction)
	}
	bestSpread := 0.0
	for _, fr := range perPlatform {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, f := range fr {
			lo, hi = math.Min(lo, f), math.Max(hi, f)
		}
		bestSpread = math.Max(bestSpread, hi-lo)
	}
	if bestSpread < 20 {
		t.Fatalf("no single platform shows a >= 20-point spread across families (best %.1f)", bestSpread)
	}
}

// TestRenderScenarioTable smoke-checks the rendering.
func TestRenderScenarioTable(t *testing.T) {
	s := NewSuite()
	s.Parallelism = 8
	cells, err := s.ScenarioTable()
	if err != nil {
		t.Fatal(err)
	}
	text := RenderScenarioTable(cells)
	for _, want := range []string{"Cross-scenario", "spmv", "stencil", "crypto", "dna", "gpu-like", "edge", "paper", "host fraction spans"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
}

// TestScenarioSuiteDefaultsMatchPaper: the default scenario resolves to
// the exact suite NewSuite builds, so every golden paper artifact is
// reachable through the scenario path.
func TestScenarioSuiteDefaultsMatchPaper(t *testing.T) {
	def := NewSuite()
	sc, err := NewScenarioSuite("paper", "dna:human")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Schema.Size() != def.Schema.Size() {
		t.Fatalf("scenario schema has %d configurations, paper %d", sc.Schema.Size(), def.Schema.Size())
	}
	if len(sc.Plan.Workloads) != len(def.Plan.Workloads) {
		t.Fatalf("scenario plan trains %d workloads, paper %d", len(sc.Plan.Workloads), len(def.Plan.Workloads))
	}
	for i := range sc.Plan.Workloads {
		if sc.Plan.Workloads[i] != def.Plan.Workloads[i] {
			t.Fatalf("plan workload %d differs: %+v vs %+v", i, sc.Plan.Workloads[i], def.Plan.Workloads[i])
		}
	}
	if sc.reference() != def.reference() {
		t.Fatalf("reference workload differs: %+v vs %+v", sc.reference(), def.reference())
	}
	if _, err := NewScenarioSuite("mainframe", "dna"); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := NewScenarioSuite("paper", "plankton"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
