package experiments

import (
	"fmt"

	"hetopt/internal/machine"
	"hetopt/internal/tables"
)

// RenderTable1 reproduces Table I: the considered parameters and values.
func (s *Suite) RenderTable1() string {
	tb := tables.New("Table I: parameter space", "parameter", "host", "device")
	tb.AddRow("threads", fmt.Sprint(s.Schema.HostThreadValues()), fmt.Sprint(s.Schema.DeviceThreadValues()))
	tb.AddRow("affinity", affNames(s.Schema.HostAffinityValues()), affNames(s.Schema.DeviceAffinityValues()))
	fr := s.Schema.FractionValues()
	tb.AddRow("workload fraction",
		fmt.Sprintf("%g..%g (%d values)", fr[0], fr[len(fr)-1], len(fr)),
		"100 - host fraction")
	tb.AddRow("total configurations", fmt.Sprint(s.Schema.Size()), "")
	return tb.String()
}

func affNames(affs []machine.Affinity) string {
	out := ""
	for i, a := range affs {
		if i > 0 {
			out += ", "
		}
		out += a.String()
	}
	return out
}

// RenderTable2 reproduces Table II: properties of the optimization
// methods.
func RenderTable2() string {
	tb := tables.New("Table II: properties of optimization methods",
		"method", "space exploration", "evaluation", "effort", "accuracy", "prediction")
	tb.AddRow("EM", "enumeration", "measurements", "high", "optimal", "no")
	tb.AddRow("EML", "enumeration", "machine learning", "high", "near-optimal", "yes")
	tb.AddRow("SAM", "simulated annealing", "measurements", "medium", "near-optimal", "no")
	tb.AddRow("SAML", "simulated annealing", "machine learning", "medium", "near-optimal", "yes")
	return tb.String()
}

// RenderTable3 reproduces Table III: the hardware architecture of the
// (simulated) Emil platform.
func (s *Suite) RenderTable3() string {
	host, dev := s.Platform.Host(), s.Platform.Device()
	tb := tables.New("Table III: simulated hardware architecture",
		"specification", host.Name, dev.Name)
	tb.AddRow("core frequency [GHz]",
		fmt.Sprintf("%.1f - %.1f", host.BaseClockGHz, host.MaxClockGHz),
		fmt.Sprintf("%.3f - %.3f", dev.BaseClockGHz, dev.MaxClockGHz))
	tb.AddRow("# of cores", fmt.Sprint(host.TotalCores()), fmt.Sprint(dev.Sockets*dev.CoresPerSocket))
	tb.AddRow("# of threads", fmt.Sprint(host.TotalThreads()), fmt.Sprint(dev.Sockets*dev.CoresPerSocket*dev.ThreadsPerCore))
	tb.AddRow("cache [MB]", tables.F(host.CacheMB, 1), tables.F(dev.CacheMB, 1))
	tb.AddRow("max mem bandwidth [GB/s]", tables.F(host.MemBandwidthGBs, 1), tables.F(dev.MemBandwidthGBs, 1))
	tb.AddRow("memory [GB]", tables.F(host.MemoryGB, 0), tables.F(dev.MemoryGB, 0))
	tb.AddRow("SIMD width [bit]", fmt.Sprint(host.VectorBits), fmt.Sprint(dev.VectorBits))
	return tb.String()
}
