package experiments

import (
	"fmt"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/offload"
	"hetopt/internal/stats"
	"hetopt/internal/tables"
)

// PaperIterations are the SA budgets of Tables VI-IX and Figure 9.
func PaperIterations() []int {
	return []int{250, 500, 750, 1000, 1250, 1500, 1750, 2000}
}

// MethodComparison is the per-genome result behind Figure 9 and
// Tables VI-IX: measured execution times of the configurations suggested
// by each method.
type MethodComparison struct {
	// Genome is the input's name.
	Genome string
	// Iterations lists the SA budgets.
	Iterations []int
	// SAML and SAM hold the measured E of the suggested configuration per
	// budget, averaged over Suite.Repeats seeds.
	SAML, SAM []float64
	// EM and EML are the enumeration references; EMExperiments the
	// enumeration effort (19,926 in the paper space).
	EM, EML       float64
	EMExperiments int
	// HostOnly and DeviceOnly are the baselines of Tables VIII and IX.
	HostOnly, DeviceOnly float64
}

// MethodComparisonFor runs the full comparison for one workload.
func (s *Suite) MethodComparisonFor(w offload.Workload) (MethodComparison, error) {
	inst, err := s.instance(w)
	if err != nil {
		return MethodComparison{}, err
	}
	mc := MethodComparison{Genome: w.Name, Iterations: PaperIterations()}

	em, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
	if err != nil {
		return MethodComparison{}, fmt.Errorf("experiments: EM on %s: %w", w.Name, err)
	}
	mc.EM = em.MeasuredE()
	mc.EMExperiments = em.SearchEvaluations

	eml, err := core.Run(core.EML, inst, s.coreOpts(0, 0))
	if err != nil {
		return MethodComparison{}, fmt.Errorf("experiments: EML on %s: %w", w.Name, err)
	}
	mc.EML = eml.MeasuredE()

	host, err := core.HostOnlyBaseline(inst)
	if err != nil {
		return MethodComparison{}, err
	}
	mc.HostOnly = host.MeasuredE()
	device, err := core.DeviceOnlyBaseline(inst)
	if err != nil {
		return MethodComparison{}, err
	}
	mc.DeviceOnly = device.MeasuredE()

	for _, iters := range mc.Iterations {
		var samlSum, samSum float64
		for r := 0; r < s.repeats(); r++ {
			// Seeds are paired across budgets (the same seed set per
			// column) so the iteration-count effect is not drowned in
			// between-run variance.
			seed := s.Seed + int64(r) + genomeSeed(w.Name)
			saml, err := core.Run(core.SAML, inst, s.coreOpts(iters, seed))
			if err != nil {
				return MethodComparison{}, fmt.Errorf("experiments: SAML on %s: %w", w.Name, err)
			}
			samlSum += saml.MeasuredE()
			sam, err := core.Run(core.SAM, inst, s.coreOpts(iters, seed))
			if err != nil {
				return MethodComparison{}, fmt.Errorf("experiments: SAM on %s: %w", w.Name, err)
			}
			samSum += sam.MeasuredE()
		}
		mc.SAML = append(mc.SAML, samlSum/float64(s.repeats()))
		mc.SAM = append(mc.SAM, samSum/float64(s.repeats()))
	}
	return mc, nil
}

// genomeSeed decorrelates per-genome SA seeds deterministically.
func genomeSeed(name string) int64 {
	var h int64
	for _, c := range name {
		h = h*131 + int64(c)
	}
	return h
}

// Fig9 runs the method comparison for every training-plan workload (the
// paper's four genomes by default; a scenario family's size presets
// otherwise). Workloads sharing one family name are labeled with their
// size so the rendered rows stay distinguishable.
func (s *Suite) Fig9() ([]MethodComparison, error) {
	names := map[string]int{}
	for _, w := range s.Plan.Workloads {
		names[w.Name]++
	}
	var out []MethodComparison
	for _, w := range s.Plan.Workloads {
		mc, err := s.MethodComparisonFor(w)
		if err != nil {
			return nil, err
		}
		if names[w.Name] > 1 {
			mc.Genome = fmt.Sprintf("%s %.0fMB", w.Name, w.SizeMB)
		}
		out = append(out, mc)
	}
	return out, nil
}

// RenderFig9 plots the per-genome comparison: SAML and SAM versus the EM
// and EML horizontal references.
func RenderFig9(mcs []MethodComparison) string {
	var sb strings.Builder
	for _, mc := range mcs {
		fmt.Fprintf(&sb, "Figure 9 (%s): execution time of suggested configuration vs SA iterations\n", mc.Genome)
		xs := make([]float64, len(mc.Iterations))
		emY := make([]float64, len(mc.Iterations))
		emlY := make([]float64, len(mc.Iterations))
		for i, it := range mc.Iterations {
			xs[i] = float64(it)
			emY[i] = mc.EM
			emlY[i] = mc.EML
		}
		sb.WriteString(tables.LineChart("", []tables.Series{
			{Name: "SAML", X: xs, Y: mc.SAML},
			{Name: "SAM", X: xs, Y: mc.SAM},
			{Name: "EM", X: xs, Y: emY},
			{Name: "EML", X: xs, Y: emlY},
		}, 72, 14))
		tb := tables.New("", "iterations", "SAML [s]", "SAM [s]", "EM [s]", "EML [s]")
		for i, it := range mc.Iterations {
			tb.AddRow(fmt.Sprint(it), tables.F(mc.SAML[i], 4), tables.F(mc.SAM[i], 4), tables.F(mc.EM, 4), tables.F(mc.EML, 4))
		}
		sb.WriteString(tb.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DifferenceTable is Table VI (percent) or Table VII (absolute): the gap
// between SAML's suggestion and the EM optimum per iteration budget.
type DifferenceTable struct {
	// Percent selects the metric.
	Percent bool
	// Iterations are the column budgets.
	Iterations []int
	// Rows maps genome name to per-budget differences; Average aggregates
	// across genomes per budget.
	Rows    map[string][]float64
	Order   []string
	Average []float64
}

// differences derives Table VI/VII from Fig9 results.
func differences(mcs []MethodComparison, percent bool) DifferenceTable {
	dt := DifferenceTable{Percent: percent, Rows: map[string][]float64{}}
	if len(mcs) == 0 {
		return dt
	}
	dt.Iterations = mcs[0].Iterations
	dt.Average = make([]float64, len(dt.Iterations))
	for _, mc := range mcs {
		row := make([]float64, len(mc.Iterations))
		for i := range mc.Iterations {
			diff := mc.SAML[i] - mc.EM
			if percent {
				row[i] = 100 * diff / mc.EM
			} else {
				row[i] = diff
			}
			dt.Average[i] += row[i]
		}
		dt.Rows[mc.Genome] = row
		dt.Order = append(dt.Order, mc.Genome)
	}
	for i := range dt.Average {
		dt.Average[i] /= float64(len(mcs))
	}
	return dt
}

// Table6 builds the percent-difference table (SAML vs EM).
func Table6(mcs []MethodComparison) DifferenceTable { return differences(mcs, true) }

// Table7 builds the absolute-difference table (seconds).
func Table7(mcs []MethodComparison) DifferenceTable { return differences(mcs, false) }

// RenderDifferenceTable formats Table VI/VII in the paper's layout
// (genomes as rows, budgets as columns).
func RenderDifferenceTable(dt DifferenceTable, name string) string {
	metric := "absolute difference [s]"
	decimals := 3
	if dt.Percent {
		metric = "percent difference [%]"
		decimals = 2
	}
	cols := []string{"DNA"}
	for _, it := range dt.Iterations {
		cols = append(cols, fmt.Sprint(it))
	}
	tb := tables.New(fmt.Sprintf("%s: %s of SAML vs the EM optimum", name, metric), cols...)
	for _, g := range dt.Order {
		row := []string{g}
		for _, v := range dt.Rows[g] {
			row = append(row, tables.F(v, decimals))
		}
		tb.AddRow(row...)
	}
	avg := []string{"average"}
	for _, v := range dt.Average {
		avg = append(avg, tables.F(v, decimals))
	}
	tb.AddRow(avg...)
	return tb.String()
}

// SpeedupTable is Table VIII (vs host-only) or Table IX (vs device-only).
type SpeedupTable struct {
	// Baseline names the reference execution ("host-only", "device-only").
	Baseline   string
	Iterations []int
	// Rows maps genome to per-budget speedups; EMRow holds the EM column.
	Rows  map[string][]float64
	EMRow map[string]float64
	Order []string
}

func speedups(mcs []MethodComparison, baseline func(MethodComparison) float64, name string) SpeedupTable {
	st := SpeedupTable{Baseline: name, Rows: map[string][]float64{}, EMRow: map[string]float64{}}
	if len(mcs) == 0 {
		return st
	}
	st.Iterations = mcs[0].Iterations
	for _, mc := range mcs {
		base := baseline(mc)
		row := make([]float64, len(mc.Iterations))
		for i := range mc.Iterations {
			row[i] = base / mc.SAML[i]
		}
		st.Rows[mc.Genome] = row
		st.EMRow[mc.Genome] = base / mc.EM
		st.Order = append(st.Order, mc.Genome)
	}
	return st
}

// Table8 builds the speedup table against the CPU-only baseline.
func Table8(mcs []MethodComparison) SpeedupTable {
	return speedups(mcs, func(mc MethodComparison) float64 { return mc.HostOnly }, "host-only")
}

// Table9 builds the speedup table against the accelerator-only baseline.
func Table9(mcs []MethodComparison) SpeedupTable {
	return speedups(mcs, func(mc MethodComparison) float64 { return mc.DeviceOnly }, "device-only")
}

// MaxSpeedup returns the best SAML speedup at the given budget across
// genomes (the headline numbers of Section IV-D).
func (st SpeedupTable) MaxSpeedup(iterations int) float64 {
	best := 0.0
	for _, g := range st.Order {
		for i, it := range st.Iterations {
			if it == iterations && st.Rows[g][i] > best {
				best = st.Rows[g][i]
			}
		}
	}
	return best
}

// RenderSpeedupTable formats Table VIII/IX.
func RenderSpeedupTable(st SpeedupTable, name string) string {
	cols := []string{"DNA"}
	for _, it := range st.Iterations {
		cols = append(cols, fmt.Sprint(it))
	}
	cols = append(cols, "EM")
	tb := tables.New(fmt.Sprintf("%s: speedup of SAML-suggested configuration vs %s", name, st.Baseline), cols...)
	for _, g := range st.Order {
		row := []string{g}
		for _, v := range st.Rows[g] {
			row = append(row, tables.F(v, 2))
		}
		row = append(row, tables.F(st.EMRow[g], 2))
		tb.AddRow(row...)
	}
	return tb.String()
}

// Result3Summary quantifies the paper's Result 3: SAML needs only ~5% of
// EM's experiments.
type Result3Summary struct {
	SAMLIterations int
	EMExperiments  int
	Fraction       float64
	AvgPercentDiff float64
}

// Result3 derives the summary from Fig9 data at the 1000-iteration budget.
func Result3(mcs []MethodComparison) (Result3Summary, error) {
	if len(mcs) == 0 {
		return Result3Summary{}, fmt.Errorf("experiments: no comparisons")
	}
	target := 1000
	var diffs []float64
	em := 0
	for _, mc := range mcs {
		for i, it := range mc.Iterations {
			if it == target {
				diffs = append(diffs, 100*(mc.SAML[i]-mc.EM)/mc.EM)
			}
		}
		em = mc.EMExperiments
	}
	if len(diffs) == 0 {
		return Result3Summary{}, fmt.Errorf("experiments: budget %d not present", target)
	}
	return Result3Summary{
		SAMLIterations: target,
		EMExperiments:  em,
		Fraction:       100 * float64(target) / float64(em),
		AvgPercentDiff: stats.Mean(diffs),
	}, nil
}
