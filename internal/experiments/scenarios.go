package experiments

import (
	"fmt"

	"hetopt/internal/core"
	"hetopt/internal/scenario"
	"hetopt/internal/space"
	"hetopt/internal/tables"
)

// ScenarioCell is one workload-family x platform cell of the
// cross-scenario table: the tuned configuration and its speedup over
// host-only execution on that platform.
type ScenarioCell struct {
	// Workload and Platform name the scenario (family default preset).
	Workload, Platform string
	// Config is the EM-optimal configuration.
	Config space.Config
	// TimeSec is the measured makespan of Config; HostOnlySec the
	// host-only baseline on the same platform.
	TimeSec, HostOnlySec float64
	// Speedup is HostOnlySec / TimeSec.
	Speedup float64
}

// ScenarioTable tunes every registered workload family (default preset)
// on every registered platform with exhaustive enumeration — the
// certainly-optimal method, so the table reflects the true optimum per
// scenario — and reports the chosen configuration plus the
// speedup-over-host-only. It is the whole point of the scenario layer
// made visible: the same optimizer picks very different distributions
// per scenario (bandwidth-bound irregular kernels shift toward the
// host, vector-friendly ones toward the device, engagement-costly
// platforms toward host-only).
func (s *Suite) ScenarioTable() ([]ScenarioCell, error) {
	var cells []ScenarioCell
	for _, spec := range scenario.Platforms() {
		schema, err := spec.Schema()
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario platform %s: %w", spec.Name, err)
		}
		platform := spec.Platform()
		for _, fam := range scenario.Families() {
			// Task-graph families are not fraction-divisible; they get
			// their own placement table (DAGTable).
			if fam.IsDAG() {
				continue
			}
			w := fam.DefaultWorkload()
			inst := &core.Instance{Schema: schema, Measurer: core.NewMeasurer(platform, w)}
			res, err := core.Run(core.EM, inst, s.coreOpts(0, 0))
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario %s on %s: %w", fam.Name, spec.Name, err)
			}
			host, err := core.HostOnlyBaseline(inst)
			if err != nil {
				return nil, fmt.Errorf("experiments: host baseline for %s on %s: %w", fam.Name, spec.Name, err)
			}
			cells = append(cells, ScenarioCell{
				Workload:    fam.Name,
				Platform:    spec.Name,
				Config:      res.Config,
				TimeSec:     res.MeasuredE(),
				HostOnlySec: host.MeasuredE(),
				Speedup:     host.MeasuredE() / res.MeasuredE(),
			})
		}
	}
	return cells, nil
}

// HostFractionSpread returns the largest difference in tuned host
// fraction between any two cells of the table — the headline number of
// the scenario layer (the optimizer genuinely distributes differently
// per scenario).
func HostFractionSpread(cells []ScenarioCell) float64 {
	if len(cells) == 0 {
		return 0
	}
	lo, hi := cells[0].Config.HostFraction, cells[0].Config.HostFraction
	for _, c := range cells[1:] {
		if c.Config.HostFraction < lo {
			lo = c.Config.HostFraction
		}
		if c.Config.HostFraction > hi {
			hi = c.Config.HostFraction
		}
	}
	return hi - lo
}

// RenderScenarioTable renders the cross-scenario comparison.
func RenderScenarioTable(cells []ScenarioCell) string {
	tb := tables.New("Cross-scenario: EM-optimal distribution per workload family x platform",
		"platform", "workload", "best configuration", "E (s)", "host-only (s)", "speedup")
	for _, c := range cells {
		tb.AddRow(c.Platform, c.Workload, c.Config.String(),
			fmt.Sprintf("%.4f", c.TimeSec),
			fmt.Sprintf("%.4f", c.HostOnlySec),
			fmt.Sprintf("%.2fx", c.Speedup))
	}
	return tb.String() + fmt.Sprintf("tuned host fraction spans %.1f points across scenarios\n", HostFractionSpread(cells))
}
