package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"hetopt/internal/anneal"
	"hetopt/internal/core"
	"hetopt/internal/offload"
	"hetopt/internal/space"
	"hetopt/internal/trace"
)

// annealAdapter exposes the tuning problem to the annealer for the
// instrumented trace run.
type annealAdapter struct {
	schema *space.Schema
	eval   core.Evaluator
	err    error
}

func (a *annealAdapter) Dim() int { return a.schema.Space().Dim() }

func (a *annealAdapter) Initial(dst []int, rng *rand.Rand) {
	copy(dst, a.schema.Space().Random(rng))
}

func (a *annealAdapter) Neighbor(dst, src []int, rng *rand.Rand) {
	a.schema.Space().Neighbor(dst, src, rng, space.StepMove)
}

func (a *annealAdapter) Energy(state []int) float64 {
	if a.err != nil {
		return math.Inf(1)
	}
	cfg, err := a.schema.Config(state)
	if err != nil {
		a.err = err
		return math.Inf(1)
	}
	t, err := a.eval.Evaluate(cfg)
	if err != nil {
		a.err = err
		return math.Inf(1)
	}
	return t.E()
}

// RenderSATrace runs one instrumented SAML search and renders its
// convergence trajectory with acceptance statistics — the observability
// view behind the Figure 9 discussion ("sometimes it accepts a worse
// system configuration ... to avoid ending at a local optima").
func (s *Suite) RenderSATrace(w offload.Workload, iterations int) (string, error) {
	inst, err := s.instance(w)
	if err != nil {
		return "", err
	}
	rec := &trace.Recorder{}
	adapter := &annealAdapter{schema: inst.Schema, eval: inst.Predictor}
	res, err := anneal.Minimize(adapter, anneal.Options{
		InitialTemp: core.DefaultInitialTemp,
		StopTemp:    core.DefaultInitialTemp / core.TempSpan,
		MaxIters:    iterations,
		Seed:        s.Seed,
		OnStep:      rec.Hook(),
	})
	if err != nil {
		return "", err
	}
	if adapter.err != nil {
		return "", adapter.err
	}
	cfg, err := inst.Schema.Config(res.Best)
	if err != nil {
		return "", err
	}
	title := fmt.Sprintf("Extension: instrumented SAML trace (genome %s, %d iterations, best %v at predicted E %.4f s)",
		w.Name, iterations, cfg, res.BestEnergy)
	return rec.RenderConvergence(title), nil
}
