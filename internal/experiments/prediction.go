package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/machine"
	"hetopt/internal/ml"
	"hetopt/internal/space"
	"hetopt/internal/stats"
	"hetopt/internal/tables"
)

// PredictionPoint pairs a measured and predicted execution time at one
// input size.
type PredictionPoint struct {
	SizeMB              float64
	Measured, Predicted float64
}

// PredictionCurves is the result of Figure 5 or Figure 6: measured vs
// predicted execution time per thread count, across the genomes' size
// grid, at a fixed affinity.
type PredictionCurves struct {
	// Side is "host" or "device"; Affinity the fixed pinning strategy.
	Side     string
	Affinity machine.Affinity
	// Curves maps thread count to size-ordered points.
	Curves map[int][]PredictionPoint
	// ThreadCounts lists the plotted thread counts in order.
	ThreadCounts []int
}

// Fig5 reproduces the host prediction-accuracy figure: measured and
// predicted times for 6, 12, 24 and 48 threads under scatter affinity
// across all genome-size fractions.
func (s *Suite) Fig5() (PredictionCurves, error) {
	return s.predictionCurves("host", machine.AffinityScatter, []int{6, 12, 24, 48})
}

// Fig6 reproduces the device prediction-accuracy figure: 30, 60, 120 and
// 240 threads under balanced affinity.
func (s *Suite) Fig6() (PredictionCurves, error) {
	return s.predictionCurves("device", machine.AffinityBalanced, []int{30, 60, 120, 240})
}

func (s *Suite) predictionCurves(side string, aff machine.Affinity, threadCounts []int) (PredictionCurves, error) {
	models, err := s.Models()
	if err != nil {
		return PredictionCurves{}, err
	}
	out := PredictionCurves{Side: side, Affinity: aff, Curves: map[int][]PredictionPoint{}, ThreadCounts: threadCounts}
	for _, n := range threadCounts {
		var points []PredictionPoint
		for _, w := range s.Plan.Workloads {
			for _, f := range s.Plan.Fractions {
				sizeMB := w.SizeMB * f / 100
				var measured, predicted float64
				if side == "host" {
					t, err := s.Platform.Measure(w.Scaled(sizeMB), hostOnlyConfig(n, aff), s.Plan.Trial)
					if err != nil {
						return PredictionCurves{}, err
					}
					measured = t.Host
					predicted, err = models.PredictHost(n, aff, sizeMB)
					if err != nil {
						return PredictionCurves{}, err
					}
				} else {
					t, err := s.Platform.Measure(w.Scaled(sizeMB), deviceOnlyConfig(n, aff), s.Plan.Trial)
					if err != nil {
						return PredictionCurves{}, err
					}
					measured = t.Device
					predicted, err = models.PredictDevice(n, aff, sizeMB)
					if err != nil {
						return PredictionCurves{}, err
					}
				}
				points = append(points, PredictionPoint{SizeMB: sizeMB, Measured: measured, Predicted: predicted})
			}
		}
		sort.Slice(points, func(i, j int) bool { return points[i].SizeMB < points[j].SizeMB })
		out.Curves[n] = points
	}
	return out, nil
}

func hostOnlyConfig(threads int, aff machine.Affinity) space.Config {
	return space.Config{
		HostThreads: threads, HostAffinity: aff,
		DeviceThreads: 2, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 100,
	}
}

func deviceOnlyConfig(threads int, aff machine.Affinity) space.Config {
	return space.Config{
		HostThreads: 2, HostAffinity: machine.AffinityScatter,
		DeviceThreads: threads, DeviceAffinity: aff,
		HostFraction: 0,
	}
}

// RenderPredictionCurves plots measured vs predicted series per thread
// count and summarizes their agreement.
func RenderPredictionCurves(pc PredictionCurves, figure string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s prediction accuracy, affinity %s (measured vs predicted)\n",
		figure, pc.Side, pc.Affinity)
	var series []tables.Series
	for _, n := range pc.ThreadCounts {
		pts := pc.Curves[n]
		mx := make([]float64, len(pts))
		my := make([]float64, len(pts))
		py := make([]float64, len(pts))
		for i, p := range pts {
			mx[i] = p.SizeMB
			my[i] = p.Measured
			py[i] = p.Predicted
		}
		series = append(series,
			tables.Series{Name: fmt.Sprintf("%dT measured", n), X: mx, Y: my},
			tables.Series{Name: fmt.Sprintf("%dT predicted", n), X: mx, Y: py},
		)
	}
	sb.WriteString(tables.LineChart("", series, 76, 20))
	tb := tables.New("per-thread-count agreement", "threads", "mean abs err [s]", "mean pct err")
	for _, n := range pc.ThreadCounts {
		pts := pc.Curves[n]
		var abs, pct float64
		for _, p := range pts {
			abs += ml.AbsoluteError(p.Measured, p.Predicted)
			pct += ml.PercentError(p.Measured, p.Predicted)
		}
		abs /= float64(len(pts))
		pct /= float64(len(pts))
		tb.AddRow(fmt.Sprint(n), tables.F(abs, 4), tables.Percent(pct))
	}
	sb.WriteString(tb.String())
	return sb.String()
}

// ErrorHistogram is the result of Figure 7 or 8: the distribution of
// absolute prediction errors over the held-out test half.
type ErrorHistogram struct {
	Side string
	Hist *stats.Histogram
}

// Fig7 builds the host absolute-error histogram with the paper's bucket
// edges.
func (s *Suite) Fig7() (ErrorHistogram, error) {
	models, err := s.Models()
	if err != nil {
		return ErrorHistogram{}, err
	}
	h, err := stats.NewHistogram(stats.PaperHostErrorEdges())
	if err != nil {
		return ErrorHistogram{}, err
	}
	h.AddAll(models.HostReport.Eval.AbsErrors)
	return ErrorHistogram{Side: "host", Hist: h}, nil
}

// Fig8 builds the device absolute-error histogram.
func (s *Suite) Fig8() (ErrorHistogram, error) {
	models, err := s.Models()
	if err != nil {
		return ErrorHistogram{}, err
	}
	h, err := stats.NewHistogram(stats.PaperDeviceErrorEdges())
	if err != nil {
		return ErrorHistogram{}, err
	}
	h.AddAll(models.DeviceReport.Eval.AbsErrors)
	return ErrorHistogram{Side: "device", Hist: h}, nil
}

// RenderErrorHistogram draws the histogram as labeled bars.
func RenderErrorHistogram(eh ErrorHistogram, figure string) string {
	labels := make([]string, len(eh.Hist.Edges))
	values := make([]float64, len(eh.Hist.Counts))
	for i, e := range eh.Hist.Edges {
		labels[i] = fmt.Sprintf("<=%g", e)
		values[i] = float64(eh.Hist.Counts[i])
	}
	title := fmt.Sprintf("%s: %s absolute prediction error histogram (%d samples, %d overflow)",
		figure, eh.Side, eh.Hist.Total(), eh.Hist.Overflow)
	return tables.BarChart(title, labels, values, 50)
}

// AccuracyRow is one row of Table IV or V: prediction accuracy for one
// thread count.
type AccuracyRow struct {
	Threads  int
	Absolute float64
	Percent  float64
}

// AccuracyTable is the result of Table IV (host) or Table V (device).
type AccuracyTable struct {
	Side        string
	Rows        []AccuracyRow
	AvgAbsolute float64
	AvgPercent  float64
}

// Table4 reproduces the host prediction-accuracy table: absolute and
// percent error per thread count over the held-out half.
func (s *Suite) Table4() (AccuracyTable, error) {
	models, err := s.Models()
	if err != nil {
		return AccuracyTable{}, err
	}
	return accuracyByThreads("host", models.HostReport, s.Plan.HostThreads)
}

// Table5 reproduces the device prediction-accuracy table.
func (s *Suite) Table5() (AccuracyTable, error) {
	models, err := s.Models()
	if err != nil {
		return AccuracyTable{}, err
	}
	return accuracyByThreads("device", models.DeviceReport, s.Plan.DeviceThreads)
}

func accuracyByThreads(side string, report core.SideReport, threadCounts []int) (AccuracyTable, error) {
	threadIdx := -1
	for i, name := range report.Test.FeatureNames {
		if name == "threads" {
			threadIdx = i
			break
		}
	}
	if threadIdx < 0 {
		return AccuracyTable{}, fmt.Errorf("experiments: test set lacks a threads feature")
	}
	type agg struct {
		absSum, pctSum float64
		n              int
	}
	byThreads := map[int]*agg{}
	for i, row := range report.Test.X {
		n := int(row[threadIdx])
		a := byThreads[n]
		if a == nil {
			a = &agg{}
			byThreads[n] = a
		}
		measured := report.Test.Y[i]
		predicted := report.Predictions[i]
		a.absSum += ml.AbsoluteError(measured, predicted)
		a.pctSum += ml.PercentError(measured, predicted)
		a.n++
	}
	out := AccuracyTable{Side: side}
	var absTotal, pctTotal float64
	for _, n := range threadCounts {
		a := byThreads[n]
		if a == nil || a.n == 0 {
			return AccuracyTable{}, fmt.Errorf("experiments: no test samples for %d threads", n)
		}
		row := AccuracyRow{Threads: n, Absolute: a.absSum / float64(a.n), Percent: a.pctSum / float64(a.n)}
		out.Rows = append(out.Rows, row)
		absTotal += row.Absolute
		pctTotal += row.Percent
	}
	out.AvgAbsolute = absTotal / float64(len(out.Rows))
	out.AvgPercent = pctTotal / float64(len(out.Rows))
	return out, nil
}

// RenderAccuracyTable formats Table IV/V in the paper's layout.
func RenderAccuracyTable(at AccuracyTable, name string) string {
	tb := tables.New(fmt.Sprintf("%s: %s prediction accuracy by thread count", name, at.Side),
		"threads", "absolute [s]", "percent [%]")
	for _, r := range at.Rows {
		tb.AddRow(fmt.Sprint(r.Threads), tables.F(r.Absolute, 3), tables.F(r.Percent, 3))
	}
	tb.AddRow("avg", tables.F(at.AvgAbsolute, 3), tables.F(at.AvgPercent, 3))
	return tb.String()
}
