package experiments

import (
	"strings"
	"testing"
)

// TestClusterThroughput checks the deterministic half of the scale-out
// experiment: at every node count the cluster pays each distinct key
// exactly once, the measured phase covers the full key set, and the
// rendered table carries the determinism caveat.
func TestClusterThroughput(t *testing.T) {
	s := NewSuite()
	const distinct, repeats, iters = 4, 2, 30
	res, err := s.ClusterThroughput([]int{1, 2}, distinct, repeats, iters)
	if err != nil {
		t.Fatalf("ClusterThroughput: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Computes != distinct {
			t.Fatalf("%d nodes: %d computes, want %d (one per distinct key cluster-wide)",
				r.Nodes, r.Computes, distinct)
		}
		if r.Jobs != distinct*repeats {
			t.Fatalf("%d nodes: %d measured jobs, want %d", r.Nodes, r.Jobs, distinct*repeats)
		}
		if r.ElapsedMS <= 0 || r.ReqPerSec <= 0 || r.LocalWarmMeanMS <= 0 {
			t.Fatalf("%d nodes: non-positive timing %+v", r.Nodes, r)
		}
	}
	if res.Rows[0].ForwardWarmMeanMS != 0 {
		t.Fatalf("single-node row has a forwarded warm mean: %+v", res.Rows[0])
	}
	if res.Rows[1].ForwardWarmMeanMS <= 0 {
		t.Fatalf("2-node row has no forwarded warm mean: %+v", res.Rows[1])
	}

	rendered := RenderClusterThroughput(res)
	for _, want := range []string{"cluster scale-out", "nodes", "computes", "forward warm ms", "n/a", "exactly once cluster-wide"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, rendered)
		}
	}
}

// TestClusterThroughputRejects pins the argument contract.
func TestClusterThroughputRejects(t *testing.T) {
	s := NewSuite()
	if _, err := s.ClusterThroughput([]int{1}, 0, 1, 10); err == nil {
		t.Fatal("distinct=0 accepted")
	}
	if _, err := s.ClusterThroughput([]int{0}, 1, 1, 10); err == nil {
		t.Fatal("node count 0 accepted")
	}
}
