package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
)

func TestExtAdaptiveClosesTheGap(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ExtAdaptive(500, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 genomes", len(rows))
	}
	improvedSomewhere := false
	for _, r := range rows {
		if r.RefinedE > r.SAMLE+1e-12 {
			t.Errorf("%s: refinement worsened SAML (%g -> %g)", r.Genome, r.SAMLE, r.RefinedE)
		}
		if r.RefinedPd < -1e-9 {
			t.Errorf("%s: refined result beat the enumerated optimum", r.Genome)
		}
		if r.RefinedPd < r.SAMLPd-1e-9 {
			improvedSomewhere = true
		}
		// The adaptive pipeline must stay far below enumeration effort.
		if r.Experiments > 100 {
			t.Errorf("%s: %d experiments is not 'adaptive'", r.Genome, r.Experiments)
		}
	}
	if !improvedSomewhere {
		t.Error("refinement never improved any genome; the extension is vacuous")
	}
	text := RenderAdaptive(rows, 500, 60)
	if !strings.Contains(text, "refined E [s]") {
		t.Error("rendered adaptive table incomplete")
	}
}

func TestExtSizeSweepShowsCrossover(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ExtSizeSweep(offload.GenomeWorkload(dna.Human), []float64{100, 400, 1600, 3200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Small inputs run CPU-only; the largest splits (paper Section II-C).
	if !rows[0].CPUOnly {
		t.Errorf("100 MB should tune to CPU-only, got host fraction %g", rows[0].HostFraction)
	}
	last := rows[len(rows)-1]
	if last.CPUOnly {
		t.Error("3200 MB should tune to a split")
	}
	if last.HostFraction <= 0 || last.HostFraction >= 100 {
		t.Errorf("3200 MB host fraction = %g, want a real split", last.HostFraction)
	}
	// Execution time grows with size.
	for i := 1; i < len(rows); i++ {
		if rows[i].E <= rows[i-1].E {
			t.Errorf("E not increasing with size: %v", rows)
		}
	}
	if _, err := s.ExtSizeSweep(offload.GenomeWorkload(dna.Human), nil); err == nil {
		t.Error("empty size list should fail")
	}
	text := RenderSizeSweep(rows, offload.GenomeWorkload(dna.Human))
	if !strings.Contains(text, "CPU only") || !strings.Contains(text, "split") {
		t.Error("rendered sweep missing modes")
	}
}

func TestWriteJSONReport(t *testing.T) {
	s := testSuite(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.SpaceSize != 19926 {
		t.Errorf("space size = %d", report.SpaceSize)
	}
	if len(report.Fig2) != 3 || len(report.Comparisons) != 4 {
		t.Errorf("report incomplete: fig2=%d comparisons=%d", len(report.Fig2), len(report.Comparisons))
	}
	if report.HostErrorHistogram.Counts == nil || report.Result3.EMExperiments != 19926 {
		t.Error("histogram or result3 missing")
	}
	if len(report.Table6Average) != len(PaperIterations()) {
		t.Errorf("table6 average has %d entries", len(report.Table6Average))
	}
}
