package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"hetopt/internal/serve"
	"hetopt/internal/tables"
)

// ClusterRow is one node-count row of the cluster scale-out table.
type ClusterRow struct {
	// Nodes is the cluster size of the measured round.
	Nodes int
	// Jobs is the number of measured warm requests, Distinct the
	// number of canonical keys they collapse to.
	Jobs, Distinct int
	// Computes is the cluster-wide paid compute count after the whole
	// round — exactly Distinct by the single-flight + routing contract.
	Computes int
	// ElapsedMS is the wall-clock of the measured warm phase, with one
	// concurrent driver per node hammering that node's own key slice;
	// ReqPerSec is the aggregate warm-hit throughput.
	ElapsedMS float64
	ReqPerSec float64
	// LocalWarmMeanMS is the mean round-trip of a warm hit POSTed to
	// the key's owner; ForwardWarmMeanMS the mean when POSTed to a
	// non-owner, which streams the owner's bytes through one hop
	// (zero on a single-node cluster: there is no one to forward to).
	LocalWarmMeanMS   float64
	ForwardWarmMeanMS float64
}

// ClusterThroughputResult is the horizontal scale-out experiment.
type ClusterThroughputResult struct {
	Rows       []ClusterRow
	Iterations int
}

// swapHandler lets every member's listener bind before any member's
// Server exists (each peer list names every member's URL).
type swapHandler struct {
	h atomic.Pointer[serve.Server]
}

func (sw *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s := sw.h.Load(); s != nil {
		s.ServeHTTP(w, r)
		return
	}
	http.Error(w, "cluster member not ready", http.StatusServiceUnavailable)
}

// ClusterThroughput measures hetserved's horizontal scale-out over
// real HTTP: for each node count an in-process cluster is built, the
// distinct key set is computed once (each key cold on its owning
// shard — the slices are disjoint by the ring's partition), and the
// measured phase replays the whole key set repeats times with one
// concurrent driver per node posting that node's own slice. Hit
// accounting stays deterministic at every size: the ring plus
// single-flight store pay each distinct key exactly once cluster-wide,
// so throughput is the only machine-varying column.
func (s *Suite) ClusterThroughput(nodeCounts []int, distinct, repeats, iterations int) (*ClusterThroughputResult, error) {
	if distinct < 1 || repeats < 1 {
		return nil, fmt.Errorf("experiments: cluster throughput needs distinct >= 1 and repeats >= 1")
	}
	res := &ClusterThroughputResult{Iterations: iterations}
	for _, n := range nodeCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiments: node count %d must be >= 1", n)
		}
		row, err := s.clusterRound(n, distinct, repeats, iterations)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// clusterRound builds one n-node cluster, warms it, and measures.
func (s *Suite) clusterRound(n, distinct, repeats, iterations int) (ClusterRow, error) {
	swaps := make([]*swapHandler, n)
	listeners := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		listeners[i] = httptest.NewServer(swaps[i])
		urls[i] = listeners[i].URL
	}
	servers := make([]*serve.Server, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	for i := range servers {
		opt := serve.Options{
			Platform:  s.Platform,
			Schema:    s.Schema,
			Workers:   2,
			QueueSize: distinct + 8,
		}
		if n > 1 {
			opt.Cluster = &serve.ClusterOptions{NodeID: urls[i], Peers: urls, Replicate: true}
		}
		srv, err := serve.NewCluster(opt)
		if err != nil {
			return ClusterRow{}, err
		}
		servers[i] = srv
		swaps[i].h.Store(srv)
	}

	// The request mix, keyed to owning nodes: seeds 0..distinct-1 fold
	// into distinct canonical keys, each owned by exactly one shard.
	type member struct {
		body  []byte
		owner int // index into urls
	}
	keys := make([]member, distinct)
	slices := make([][]int, n) // per-node key indices (disjoint)
	for i := range keys {
		raw := serve.TuneRequest{Method: "sam", Iterations: iterations, Seed: int64(i)}
		canon, err := raw.Normalize()
		if err != nil {
			return ClusterRow{}, err
		}
		body, err := json.Marshal(canon)
		if err != nil {
			return ClusterRow{}, err
		}
		owner := 0
		if n > 1 {
			ownerURL := servers[0].ClusterOwner(canon.Key())
			for j, u := range urls {
				if u == ownerURL {
					owner = j
					break
				}
			}
		}
		keys[i] = member{body: body, owner: owner}
		slices[owner] = append(slices[owner], i)
	}

	// Warm phase: each key computes once, on its owning shard (POSTed
	// to node 0; non-owned keys take the forwarded hop to the owner).
	for i := range keys {
		if code, _, err := postWait(urls[0]+"/v1/jobs?wait=1", keys[i].body); err != nil {
			return ClusterRow{}, fmt.Errorf("experiments: warming key %d: %w", i, err)
		} else if code != http.StatusOK {
			return ClusterRow{}, fmt.Errorf("experiments: warming key %d: status %d", i, code)
		}
	}

	// Measured phase: one driver per node hammers its own (disjoint)
	// slice of warm keys, repeats times over.
	total := 0
	for _, sl := range slices {
		total += len(sl) * repeats
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for node := 0; node < n; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for r := 0; r < repeats; r++ {
				for _, ki := range slices[node] {
					code, _, err := postWait(urls[node]+"/v1/jobs", keys[ki].body)
					if err == nil && code != http.StatusOK {
						err = fmt.Errorf("warm status %d", code)
					}
					if err != nil {
						errs[node] = fmt.Errorf("experiments: node %d key %d: %w", node, ki, err)
						return
					}
				}
			}
		}(node)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ClusterRow{}, err
		}
	}

	// Forward-vs-local warm latency: time the same warm key POSTed to
	// its owner and to a non-owner (single-node clusters have no hop).
	const probes = 20
	localMean, err := meanWarmMS(urls[keys[0].owner]+"/v1/jobs", keys[0].body, probes)
	if err != nil {
		return ClusterRow{}, err
	}
	forwardMean := 0.0
	if n > 1 {
		other := (keys[0].owner + 1) % n
		forwardMean, err = meanWarmMS(urls[other]+"/v1/jobs", keys[0].body, probes)
		if err != nil {
			return ClusterRow{}, err
		}
	}

	computes := 0
	for _, srv := range servers {
		m := srv.Metrics()
		computes += int(m.Jobs.Completed - m.Jobs.StoreHits)
	}
	if computes != distinct {
		return ClusterRow{}, fmt.Errorf("experiments: %d-node cluster paid %d computes for %d distinct keys", n, computes, distinct)
	}
	row := ClusterRow{
		Nodes:             n,
		Jobs:              total,
		Distinct:          distinct,
		Computes:          computes,
		ElapsedMS:         float64(elapsed) / float64(time.Millisecond),
		LocalWarmMeanMS:   localMean,
		ForwardWarmMeanMS: forwardMean,
	}
	if elapsed > 0 {
		row.ReqPerSec = float64(total) / elapsed.Seconds()
	}
	return row, nil
}

// postWait POSTs body and fully reads the answer.
func postWait(url string, body []byte) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out.Bytes(), nil
}

// meanWarmMS times count warm POSTs of body to url.
func meanWarmMS(url string, body []byte, count int) (float64, error) {
	start := time.Now()
	for i := 0; i < count; i++ {
		code, _, err := postWait(url, body)
		if err != nil {
			return 0, err
		}
		if code != http.StatusOK {
			return 0, fmt.Errorf("experiments: warm probe status %d", code)
		}
	}
	return float64(time.Since(start)) / float64(time.Millisecond) / float64(count), nil
}

// RenderClusterThroughput formats the scale-out table.
func RenderClusterThroughput(res *ClusterThroughputResult) string {
	tb := tables.New(fmt.Sprintf(
		"Extension: cluster scale-out (consistent-hash sharding; %d distinct SAM keys at %d iterations, warm phase paid once cluster-wide, measured phase replays each node's disjoint slice)",
		res.Rows[0].Distinct, res.Iterations),
		"nodes", "warm jobs", "distinct", "computes", "elapsed ms", "req/s", "local warm ms", "forward warm ms")
	for _, r := range res.Rows {
		fw := "n/a"
		if r.Nodes > 1 {
			fw = tables.F(r.ForwardWarmMeanMS, 3)
		}
		tb.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.Distinct),
			fmt.Sprintf("%d", r.Computes),
			tables.F(r.ElapsedMS, 1),
			tables.F(r.ReqPerSec, 1),
			tables.F(r.LocalWarmMeanMS, 3),
			fw,
		)
	}
	return tb.String() +
		"(computes is deterministic: the ring partitions the key space and single-flight pays each distinct key\n" +
		" exactly once cluster-wide, whatever node receives the POST; throughput and the local/forwarded warm\n" +
		" round-trips are wall-clock and vary with the machine)\n"
}
