package experiments

import (
	"fmt"
	"strings"

	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/space"
	"hetopt/internal/stats"
	"hetopt/internal/tables"
)

// Fig2Scenario describes one motivational sweep of Figure 2.
type Fig2Scenario struct {
	// Label names the subfigure, e.g. "fig2a".
	Label string
	// SizeMB and HostThreads are the sweep's fixed parameters.
	SizeMB      float64
	HostThreads int
}

// Fig2Series is the result of one sweep: execution time versus work
// distribution ratio, both raw and normalized to 1-10 as in the paper.
type Fig2Series struct {
	Scenario Fig2Scenario
	// Ratios labels each point ("CPU only", "90/10", ..., "Phi only").
	Ratios []string
	// HostFractions holds the corresponding host percentages.
	HostFractions []float64
	// Raw and Normalized are the execution times.
	Raw, Normalized []float64
	// BestIndex is the position of the fastest ratio.
	BestIndex int
}

// Fig2Scenarios returns the paper's three motivational scenarios:
// (a) 190 MB input with 48 CPU threads, (b) 3250 MB with 48 threads,
// (c) 3250 MB with 4 threads.
func Fig2Scenarios() []Fig2Scenario {
	return []Fig2Scenario{
		{Label: "fig2a", SizeMB: 190, HostThreads: 48},
		{Label: "fig2b", SizeMB: 3250, HostThreads: 48},
		{Label: "fig2c", SizeMB: 3250, HostThreads: 4},
	}
}

// Fig2 reproduces the motivational experiment (Section II-C): the
// execution time of the DNA analysis workload across the eleven
// distribution ratios CPU-only, 90/10, ..., 10/90, Phi-only, for each
// scenario.
func (s *Suite) Fig2() ([]Fig2Series, error) {
	var out []Fig2Series
	for _, scen := range Fig2Scenarios() {
		series := Fig2Series{Scenario: scen}
		w := offload.Workload{Name: "human", SizeMB: scen.SizeMB, Complexity: 1}
		for f := 100; f >= 0; f -= 10 {
			label := fmt.Sprintf("%d/%d", f, 100-f)
			if f == 100 {
				label = "CPU only"
			} else if f == 0 {
				label = "Phi only"
			}
			cfg := space.Config{
				HostThreads:    scen.HostThreads,
				HostAffinity:   machine.AffinityScatter,
				DeviceThreads:  240,
				DeviceAffinity: machine.AffinityBalanced,
				HostFraction:   float64(f),
			}
			t, err := s.Platform.Measure(w, cfg, 0)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig2 %s ratio %s: %w", scen.Label, label, err)
			}
			series.Ratios = append(series.Ratios, label)
			series.HostFractions = append(series.HostFractions, float64(f))
			series.Raw = append(series.Raw, t.E())
		}
		series.Normalized = stats.NormalizeRange(series.Raw, 1, 10)
		series.BestIndex = 0
		for i, v := range series.Raw {
			if v < series.Raw[series.BestIndex] {
				series.BestIndex = i
			}
		}
		out = append(out, series)
	}
	return out, nil
}

// RenderFig2 formats the sweeps as tables plus a bar chart per scenario.
func RenderFig2(series []Fig2Series) string {
	var sb strings.Builder
	for _, s := range series {
		title := fmt.Sprintf("Figure 2 (%s): size=%.0f MB, host threads=%d — execution time by work distribution (host/device)",
			s.Scenario.Label, s.Scenario.SizeMB, s.Scenario.HostThreads)
		tb := tables.New(title, "ratio", "time [s]", "normalized (1-10)", "")
		for i := range s.Ratios {
			mark := ""
			if i == s.BestIndex {
				mark = "<- best"
			}
			tb.AddRow(s.Ratios[i], tables.F(s.Raw[i], 3), tables.F(s.Normalized[i], 2), mark)
		}
		sb.WriteString(tb.String())
		sb.WriteString(tables.BarChart("", s.Ratios, s.Normalized, 40))
		sb.WriteByte('\n')
	}
	return sb.String()
}
