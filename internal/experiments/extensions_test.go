package experiments

import (
	"reflect"
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/multi"
	"hetopt/internal/offload"
)

func TestExtMultiDeviceScaling(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ExtMultiDevice(offload.GenomeWorkload(dna.Human), 2, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Devices != 1 || rows[1].Devices != 2 {
		t.Fatalf("device counts wrong: %+v", rows)
	}
	// A second accelerator must not hurt, and should help noticeably.
	if rows[1].E >= rows[0].E {
		t.Errorf("2 Phis (%.4f) should beat 1 Phi (%.4f)", rows[1].E, rows[0].E)
	}
	text := RenderMultiDevice(rows, offload.GenomeWorkload(dna.Human))
	if !strings.Contains(text, "speedup vs 1 phi") || !strings.Contains(text, "host") {
		t.Error("rendered multi-device table incomplete")
	}
	if RenderMultiDevice(nil, offload.GenomeWorkload(dna.Human)) == "" {
		t.Error("empty render should still emit a header")
	}
}

func TestExtMultiDeviceValidation(t *testing.T) {
	s := testSuite(t)
	if _, err := s.ExtMultiDevice(offload.GenomeWorkload(dna.Human), 0, 100); err == nil {
		t.Error("zero devices should fail")
	}
}

func TestExtDynamicScheduling(t *testing.T) {
	s := testSuite(t)
	rows, emE, err := s.ExtDynamicScheduling(offload.GenomeWorkload(dna.Human))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 chunk sizes", len(rows))
	}
	if emE <= 0 {
		t.Fatal("EM reference missing")
	}
	// The sweep must expose both failure modes: tiny chunks pay
	// overhead, huge chunks lose balance; some middle chunk is
	// competitive with the static optimum (within 25%).
	bestMakespan := rows[0].Makespan
	for _, r := range rows {
		if r.Makespan < bestMakespan {
			bestMakespan = r.Makespan
		}
	}
	if bestMakespan > emE*1.25 {
		t.Errorf("best dynamic (%.4f) too far above static EM (%.4f)", bestMakespan, emE)
	}
	if rows[0].Makespan <= bestMakespan {
		t.Error("1 MB chunks should be worse than the best chunk size")
	}
	if rows[len(rows)-1].Makespan <= bestMakespan {
		t.Error("1 GB chunks should be worse than the best chunk size")
	}
	text := RenderDynamicScheduling(rows, emE, offload.GenomeWorkload(dna.Human))
	if !strings.Contains(text, "chunk [MB]") || !strings.Contains(text, "vs static EM") {
		t.Error("rendered dynamic table incomplete")
	}
}

// TestMultiProblemMatchesPaperOnDefaultSuite: the suite-derived
// multi-device problem reproduces multi.PaperProblem bit-identically on
// the default (paper) suite — the scenario generalization must not
// drift the paper's multi-accelerator table.
func TestMultiProblemMatchesPaperOnDefaultSuite(t *testing.T) {
	s := NewSuite()
	w := offload.GenomeWorkload(dna.Human)
	mine, err := s.multiProblem(2, w)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := multi.PaperProblem(2, w)
	if err != nil {
		t.Fatal(err)
	}
	opt := multi.TuneOptions{Iterations: 300, Seed: 4, Restarts: 2}
	a, err := multi.TuneParallel(mine, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := multi.TuneParallel(paper, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("suite-derived multi problem diverges from PaperProblem:\n%+v\n%+v", a, b)
	}
}
