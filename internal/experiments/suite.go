// Package experiments regenerates every table and figure of the paper's
// evaluation (Section II-C and Section IV). Each experiment has a typed
// result, a driver method on Suite, and a text rendering; DESIGN.md maps
// experiment ids to the modules involved and bench_test.go exposes one
// benchmark per artifact.
package experiments

import (
	"fmt"

	"hetopt/internal/core"
	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/scenario"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// Suite carries the shared state of an experiment session: the simulated
// platform, the paper's configuration space, and lazily trained
// performance models.
type Suite struct {
	// Platform is the measurement substrate.
	Platform *offload.Platform
	// Schema is the configuration space (19,926 configurations).
	Schema *space.Schema
	// Plan is the model-training grid (7,200 experiments).
	Plan core.TrainingPlan
	// TrainOpt configures model fitting.
	TrainOpt core.TrainOptions
	// Seed drives simulated annealing; per-run seeds derive from it.
	Seed int64
	// Repeats is the number of SA seeds averaged per (genome, budget)
	// cell in the method-comparison experiments. The paper reports single
	// runs; averaging a few seeds recovers the trend its tables show
	// without the jitter of one trajectory.
	Repeats int
	// Parallelism is the worker count handed to every optimization run:
	// enumerations shard over it and annealing chains fan out across it.
	// Results are identical at any level (the engine is deterministic);
	// only wall-clock time changes. Zero or one runs sequentially.
	Parallelism int
	// Strategy, when non-nil, is injected into every method run, so the
	// whole report regenerates under a different explorer (e.g. the
	// racing portfolio). Nil keeps the paper presets: enumeration for
	// EM/EML, simulated annealing for SAM/SAML.
	Strategy strategy.Strategy
	// Reference, when non-zero, replaces the human genome as the
	// workload of the single-workload experiments (bi-objective,
	// strategy comparison, extensions, ablations). cmd/hetbench sets it
	// from -workload.
	Reference offload.Workload

	models *core.Models
}

// NewSuite returns a Suite with the paper's defaults.
func NewSuite() *Suite {
	return &Suite{
		Platform: offload.NewPlatform(),
		Schema:   space.PaperSchema(),
		Plan:     core.PaperTrainingPlan(),
		TrainOpt: core.TrainOptions{SplitSeed: 7},
		Seed:     1,
		Repeats:  7,
	}
}

// NewScenarioSuite returns a Suite regenerating the report for a
// registered scenario: the platform's substrate, schema and
// family-specific training plan, with the resolved workload as the
// single-workload reference. The default scenario ("paper",
// "dna:human") reproduces NewSuite exactly.
func NewScenarioSuite(platformName, workloadName string) (*Suite, error) {
	sc, err := scenario.Lookup(platformName, workloadName)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Platform:  sc.Platform.Platform(),
		Schema:    sc.Schema,
		Plan:      sc.TrainingPlan(),
		TrainOpt:  core.TrainOptions{SplitSeed: 7},
		Seed:      1,
		Repeats:   7,
		Reference: sc.Workload,
	}, nil
}

// reference returns the workload of the single-workload experiments.
func (s *Suite) reference() offload.Workload {
	if s.Reference.Name != "" {
		return s.Reference
	}
	return offload.GenomeWorkload(dna.Human)
}

// coreOpts assembles method-run options carrying the suite's
// parallelism and injected strategy.
func (s *Suite) coreOpts(iters int, seed int64) core.Options {
	return core.Options{Iterations: iters, Seed: seed, Parallelism: s.Parallelism, Strategy: s.Strategy}
}

// Models trains (once) and returns the performance-prediction models.
func (s *Suite) Models() (*core.Models, error) {
	if s.models != nil {
		return s.models, nil
	}
	m, err := core.Train(s.Platform, s.Plan, s.TrainOpt)
	if err != nil {
		return nil, fmt.Errorf("experiments: training models: %w", err)
	}
	s.models = m
	return m, nil
}

// instance assembles a method-run instance for a workload.
func (s *Suite) instance(w offload.Workload) (*core.Instance, error) {
	models, err := s.Models()
	if err != nil {
		return nil, err
	}
	pred, err := core.NewPredictor(models, w, s.Platform.Model())
	if err != nil {
		return nil, err
	}
	return &core.Instance{
		Schema:    s.Schema,
		Measurer:  core.NewMeasurer(s.Platform, w),
		Predictor: pred,
	}, nil
}

// repeats returns the effective SA repeat count.
func (s *Suite) repeats() int {
	if s.Repeats <= 0 {
		return 1
	}
	return s.Repeats
}
