package experiments

import (
	"fmt"

	"hetopt/internal/core"
	"hetopt/internal/graph"
	"hetopt/internal/scenario"
	"hetopt/internal/search"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
	"hetopt/internal/tables"
)

// GapRow is one scenario of the exact-gap table: the branch-and-bound
// proven optimum and every heuristic's measured distance from it.
type GapRow struct {
	// Scenario and Platform name the row ("spmv", "dag:fork-join", ...).
	Scenario, Platform string
	// OptimumSec is the proven optimal objective (makespan) and
	// MatchesEnumeration whether independent exhaustive enumeration
	// reproduced the identical optimum — the equivalence check run as an
	// experiment rather than trusted.
	OptimumSec         float64
	MatchesEnumeration bool
	// SpaceSize is the number of configurations, Explored how many the
	// exact solver evaluated before proving optimality (the rest were
	// pruned by admissible bounds).
	SpaceSize, Explored int
	// GapPct[i] is heuristic i's percent distance above the proven
	// optimum (0 = the heuristic found a certified optimal answer).
	GapPct []float64
}

// ExactGapResult is the exact-vs-heuristics study over every registered
// scenario: divisible families x platforms plus every DAG preset.
type ExactGapResult struct {
	// Heuristics labels the gap columns, in GapPct order.
	Heuristics []string
	Rows       []GapRow
	// Budget is the per-worker evaluation budget each heuristic got.
	Budget int
}

// gapHeuristics is the heuristic lineup measured against the proven
// optimum, mirroring the strategy-comparison member set.
func gapHeuristics() []strategy.Strategy {
	return []strategy.Strategy{
		strategy.Anneal{InitialTemp: core.DefaultInitialTemp, StopTemp: core.DefaultInitialTemp / core.TempSpan},
		strategy.Genetic{},
		strategy.Tabu{},
		strategy.Local{},
		strategy.Random{},
	}
}

// ExactGapTable proves the optimum of every enumerable scenario space
// with the exact branch-and-bound strategy, cross-checks it against
// plain exhaustive enumeration, and measures how far each heuristic
// lands from it under a fixed budget. This is the experiment the exact
// layer exists for: heuristic quality reported against a certificate
// instead of against the best heuristic.
func (s *Suite) ExactGapTable(budget int) (*ExactGapResult, error) {
	heuristics := gapHeuristics()
	res := &ExactGapResult{Budget: budget}
	for _, h := range heuristics {
		res.Heuristics = append(res.Heuristics, h.Name())
	}

	solve := func(scenarioName, platformName string, prob strategy.Problem, size int) error {
		exact := strategy.Exact{Prove: true}
		opt := strategy.Options{Seed: s.Seed, Parallelism: s.Parallelism}
		er, err := exact.Minimize(prob, opt)
		if err != nil {
			return fmt.Errorf("experiments: exact on %s/%s: %w", scenarioName, platformName, err)
		}
		cert, ok := er.Certificate()
		if !ok || !cert.Optimal {
			return fmt.Errorf("experiments: exact on %s/%s returned no proof: %+v", scenarioName, platformName, cert)
		}
		ref, err := strategy.Exhaustive{}.Minimize(prob, opt)
		if err != nil {
			return fmt.Errorf("experiments: enumeration on %s/%s: %w", scenarioName, platformName, err)
		}
		row := GapRow{
			Scenario:           scenarioName,
			Platform:           platformName,
			OptimumSec:         er.BestEnergy,
			MatchesEnumeration: er.BestEnergy == ref.BestEnergy && equalStates(er.Best, ref.Best),
			SpaceSize:          size,
			Explored:           cert.Explored,
		}
		hopt := strategy.Options{Budget: budget, Seed: s.Seed, Parallelism: s.Parallelism}
		for _, h := range heuristics {
			hr, err := h.Minimize(prob, hopt)
			if err != nil {
				return fmt.Errorf("experiments: %s on %s/%s: %w", h.Name(), scenarioName, platformName, err)
			}
			gap := 0.0
			if er.BestEnergy > 0 {
				gap = 100 * (hr.BestEnergy - er.BestEnergy) / er.BestEnergy
			}
			row.GapPct = append(row.GapPct, gap)
		}
		res.Rows = append(res.Rows, row)
		return nil
	}

	for _, spec := range scenario.Platforms() {
		schema, err := spec.Schema()
		if err != nil {
			return nil, fmt.Errorf("experiments: gap platform %s: %w", spec.Name, err)
		}
		platform := spec.Platform()
		for _, fam := range scenario.Families() {
			if fam.IsDAG() {
				for _, preset := range fam.Presets {
					sim, err := spec.DAGSim(*preset.Graph)
					if err != nil {
						return nil, fmt.Errorf("experiments: gap dag %s on %s: %w", preset.Name, spec.Name, err)
					}
					prob := graph.NewPlacementProblem(sim)
					if err := solve(fam.Name+":"+preset.Name, spec.Name, prob, 1<<prob.Dim()); err != nil {
						return nil, err
					}
				}
				continue
			}
			w := fam.DefaultWorkload()
			// One measurement cache per scenario serves the proof, the
			// enumeration cross-check and every heuristic: measurements
			// are pure, so sharing changes values nowhere.
			measurer := search.NewCache(core.NewMeasurer(platform, w))
			prob := core.NewBoundedSearchProblem(schema, measurer, core.TimeObjective{}, space.StepMove, platform, w)
			if err := solve(fam.Name, spec.Name, prob, schema.Size()); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

func equalStates(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RenderExactGapTable renders the proven-optimum study.
func RenderExactGapTable(res *ExactGapResult) string {
	cols := []string{"platform", "scenario", "space", "explored", "optimum E (s)", "= enum"}
	for _, h := range res.Heuristics {
		cols = append(cols, h+" gap")
	}
	tb := tables.New(fmt.Sprintf(
		"Exact layer: proven optimum per scenario and heuristic gap at %d evaluations per worker",
		res.Budget), cols...)
	allMatch, allPruned := true, true
	for _, r := range res.Rows {
		match := "yes"
		if !r.MatchesEnumeration {
			match, allMatch = "NO", false
		}
		if r.Explored >= r.SpaceSize {
			allPruned = false
		}
		row := []string{
			r.Platform, r.Scenario,
			fmt.Sprintf("%d", r.SpaceSize),
			fmt.Sprintf("%d (%.1f%%)", r.Explored, 100*float64(r.Explored)/float64(r.SpaceSize)),
			tables.F(r.OptimumSec, 4),
			match,
		}
		for _, g := range r.GapPct {
			row = append(row, tables.Percent(g))
		}
		tb.AddRow(row...)
	}
	summary := "every proof matched independent enumeration"
	if !allMatch {
		summary = "MISMATCH against enumeration in at least one scenario (bug!)"
	}
	pruned := "with real pruning in every space"
	if !allPruned {
		pruned = "but at least one space was fully enumerated (no pruning)"
	}
	return tb.String() + fmt.Sprintf("%s, %s\n", summary, pruned)
}
