package experiments

import (
	"fmt"
	"strings"

	"hetopt/internal/core"
	"hetopt/internal/offload"
	"hetopt/internal/space"
	"hetopt/internal/tables"
)

// BiObjectiveRow is one objective's enumerated optimum for a genome:
// the suggested distribution with its measured time and energy.
type BiObjectiveRow struct {
	Objective string
	Config    space.Config
	TimeSec   float64
	EnergyJ   float64
}

// BiObjective maps the time/energy trade-off of the workload
// distribution, following the framing of Khaleghzadeh et al.
// (bi-objective optimisation for performance and energy via workload
// distribution): it enumerates (EM) the optimum under the time
// objective, the energy objective, the weighted sum with the given
// alpha, and the constrained minimum-energy mode within the given
// makespan slack. The first row is always the time-optimal reference.
func (s *Suite) BiObjective(w offload.Workload, alpha, slack float64) ([]BiObjectiveRow, error) {
	inst := &core.Instance{Schema: s.Schema, Measurer: core.NewMeasurer(s.Platform, w)}

	timeRes, boundedRes, err := core.RunWithTimeSlack(core.EM, inst, s.coreOpts(0, s.Seed), slack)
	if err != nil {
		return nil, err
	}
	rows := []BiObjectiveRow{{
		Objective: timeRes.Objective,
		Config:    timeRes.Config,
		TimeSec:   timeRes.MeasuredE(),
		EnergyJ:   timeRes.MeasuredJ(),
	}}
	for _, obj := range []core.Objective{core.EnergyObjective{}, core.WeightedSumObjective{Alpha: alpha}} {
		opt := s.coreOpts(0, s.Seed)
		opt.Objective = obj
		res, err := core.Run(core.EM, inst, opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BiObjectiveRow{
			Objective: res.Objective,
			Config:    res.Config,
			TimeSec:   res.MeasuredE(),
			EnergyJ:   res.MeasuredJ(),
		})
	}
	rows = append(rows, BiObjectiveRow{
		Objective: boundedRes.Objective,
		Config:    boundedRes.Config,
		TimeSec:   boundedRes.MeasuredE(),
		EnergyJ:   boundedRes.MeasuredJ(),
	})
	return rows, nil
}

// RenderBiObjective formats the bi-objective comparison; deltas are
// relative to the time-optimal reference in the first row.
func RenderBiObjective(rows []BiObjectiveRow, w offload.Workload) string {
	var sb strings.Builder
	tb := tables.New(fmt.Sprintf("Bi-objective: time-optimal vs energy-optimal distributions (%s, EM)", w.Name),
		"objective", "distribution", "T [s]", "E [J]", "dT vs time-opt", "dE vs time-opt")
	if len(rows) == 0 {
		return tb.String()
	}
	ref := rows[0]
	for _, r := range rows {
		tb.AddRow(r.Objective, r.Config.String(), tables.F(r.TimeSec, 4), tables.F(r.EnergyJ, 1),
			tables.Percent(100*(r.TimeSec-ref.TimeSec)/ref.TimeSec),
			tables.Percent(100*(r.EnergyJ-ref.EnergyJ)/ref.EnergyJ))
	}
	sb.WriteString(tb.String())
	sb.WriteString("The energy optimum keeps the work on the energy-efficient host and powers the\n")
	sb.WriteString("accelerator down; within a tight makespan slack the accelerator must stay engaged,\n")
	sb.WriteString("and its static draw makes race-to-idle (the time optimum) also energy-sensible.\n")
	return sb.String()
}
