package experiments

import (
	"strings"
	"testing"
)

// TestServingThroughput checks the deterministic half of the serving
// experiment: every job completes and the single-flight store pays each
// distinct request exactly once, at every worker count.
func TestServingThroughput(t *testing.T) {
	s := NewSuite()
	const distinct, repeats, iters = 3, 3, 30
	res, err := s.ServingThroughput([]int{1, 4}, distinct, repeats, iters)
	if err != nil {
		t.Fatalf("ServingThroughput: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Jobs != distinct*repeats {
			t.Fatalf("workers %d: %d jobs, want %d", r.Workers, r.Jobs, distinct*repeats)
		}
		if r.StoreHits != r.Jobs-distinct {
			t.Fatalf("workers %d: %d store hits, want %d (single-flight pays each distinct request once)",
				r.Workers, r.StoreHits, r.Jobs-distinct)
		}
		if r.ElapsedMS <= 0 || r.ReqPerSec <= 0 {
			t.Fatalf("workers %d: non-positive timing %+v", r.Workers, r)
		}
		// Inline answers are a subset of the store hits (a repeat that
		// lands while its cold job is still in flight shares the flight
		// through the pool instead of answering on the POST).
		if r.Inline < 0 || r.Inline > r.StoreHits {
			t.Fatalf("workers %d: inline %d outside 0..%d", r.Workers, r.Inline, r.StoreHits)
		}
	}

	rendered := RenderServingThroughput(res)
	for _, want := range []string{"tuning-service throughput", "hit ratio", "req/s"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("rendered table lacks %q:\n%s", want, rendered)
		}
	}
}

func TestServingThroughputRejectsBadShape(t *testing.T) {
	s := NewSuite()
	if _, err := s.ServingThroughput([]int{1}, 0, 1, 10); err == nil {
		t.Fatalf("distinct=0 accepted")
	}
	if _, err := s.ServingThroughput([]int{1}, 1, 0, 10); err == nil {
		t.Fatalf("repeats=0 accepted")
	}
}
