package strategy

import (
	"fmt"

	"hetopt/internal/search"
)

// Portfolio races member strategies concurrently over one shared
// single-flight evaluation memo, following the portfolio framing
// implicit in the paper's strategy comparison: instead of betting on
// one metaheuristic, run several and keep the best. Every member
// receives the same Options — the same budget, base seed and restart
// count it would get standalone — so the portfolio's best result is
// never worse than its best member's, by construction (the winner is
// the lowest best energy, ties broken by the lowest member index, and
// evaluations are pure so sharing the memo changes no value).
//
// The race is twofold: members run concurrently (up to
// Options.Parallelism at once, each fanning its own restarts out over
// the same worker budget), and an evaluation paid by whichever member
// reaches a state first is free for every other member — the shared
// memo guarantees no evaluation is ever paid twice across the
// portfolio. Members that exhaust their budget early simply stand as
// best-so-far until the slowest member finishes. Race reports the
// cache accounting that proves the sharing.
type Portfolio struct {
	// Members are the racing strategies, in reporting order. A member
	// requiring Spaced fails the race on problems with coupled
	// coordinates; pick Initial/Neighbor-driven members (Anneal) there.
	Members []Strategy
	// ExactLimit, when positive, appends an Exact{Prove: true} member
	// to the race whenever the problem is a product space of at most
	// this many states — small enough that a certified solve is
	// affordable — so the portfolio returns a proven optimum (and its
	// certificate) on small spaces for free. Zero never adds it,
	// preserving the explicitly-listed member set exactly.
	ExactLimit int
}

// DefaultExactLimit is the space-size gate under which DefaultPortfolio
// races the exact member: it covers the paper's 19,926-config schema
// and every registered DAG preset, while leaving unboundedly large
// product spaces to the heuristics.
const DefaultExactLimit = 1 << 16

// DefaultPortfolio races the paper's annealer against all four
// alternative metaheuristics, plus the exact branch-and-bound member on
// spaces within DefaultExactLimit.
func DefaultPortfolio() Portfolio {
	return Portfolio{
		Members:    []Strategy{DefaultAnneal(), Genetic{}, Tabu{}, Local{}, Random{}},
		ExactLimit: DefaultExactLimit,
	}
}

// Name implements Strategy.
func (Portfolio) Name() string { return "portfolio" }

// PortfolioResult reports a completed race with per-member outcomes and
// the shared-cache accounting.
type PortfolioResult struct {
	// Result is the winning member's result; Result.Worker is the
	// winning member index and Result.Evaluations the portfolio-wide
	// logical total.
	Result
	// MemberNames and PerMember report each member's name and outcome,
	// indexed in Members order.
	MemberNames []string
	PerMember   []Result
	// Lookups, Unique and Hits are the shared memo's accounting across
	// the whole race: Unique is the number of evaluations actually paid,
	// Hits the number served for free — evaluations the portfolio did
	// not duplicate across members.
	Lookups, Unique, Hits int
}

// Race runs all members and returns the detailed outcome.
func (pf Portfolio) Race(p Problem, opt Options) (PortfolioResult, error) {
	if len(pf.Members) == 0 {
		return PortfolioResult{}, fmt.Errorf("strategy: portfolio has no members")
	}
	members := pf.Members
	if n, ok := spaceSize(p); ok && pf.ExactLimit > 0 && n <= pf.ExactLimit {
		members = append(members[:len(members):len(members)], Exact{Prove: true})
	}
	shared := withMemo(p)
	// Split the parallelism budget between the two fan-out levels:
	// up to Parallelism members race concurrently, and each member's
	// internal worker pool gets the remaining share, so total
	// concurrency stays near Parallelism instead of Parallelism^2.
	// Parallelism never affects results, only wall-clock.
	racing := opt.Parallelism
	if racing > len(members) {
		racing = len(members)
	}
	memberOpt := opt
	if racing > 1 {
		memberOpt.Parallelism = opt.Parallelism / racing
		if memberOpt.Parallelism < 1 {
			memberOpt.Parallelism = 1
		}
	}
	results := make([]Result, len(members))
	err := search.ForEach(len(members), opt.Parallelism, func(i int) error {
		r, err := members[i].Minimize(shared, memberOpt)
		if err != nil {
			return fmt.Errorf("strategy: portfolio member %s: %w", members[i].Name(), err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return PortfolioResult{}, err
	}

	out := PortfolioResult{
		PerMember:   results,
		MemberNames: make([]string, len(members)),
	}
	for i, m := range members {
		out.MemberNames[i] = m.Name()
	}
	best := 0
	for i := 1; i < len(results); i++ {
		if results[i].BestEnergy < results[best].BestEnergy {
			best = i
		}
	}
	out.Result = results[best]
	out.Worker = best
	// A certificate certifies an energy value, not a member: when the
	// exact member proved the winning energy optimal but lost the
	// lowest-index tie-break, its certificate (and pool) still apply to
	// the winner.
	if out.Cert == nil {
		for _, r := range results {
			if r.Cert != nil && r.Cert.Optimal && r.BestEnergy == out.BestEnergy {
				out.Cert, out.Pool = r.Cert, r.Pool
				break
			}
		}
	}
	out.Evaluations = 0
	out.Workers = 0
	for _, r := range results {
		out.Evaluations += r.Evaluations
		out.Workers += r.Workers
	}
	out.Lookups, out.Unique, out.Hits, _ = memoStats(shared)
	return out, nil
}

// spaceSize returns the product-space size of a Spaced problem, with
// ok=false for coupled-coordinate problems or overflowing products.
func spaceSize(p Problem) (int, bool) {
	sp, ok := p.(Spaced)
	if !ok {
		return 0, false
	}
	size := 1
	for i := 0; i < sp.Dim(); i++ {
		n := sp.Levels(i)
		if n <= 0 || size > (1<<40)/n {
			return 0, false
		}
		size *= n
	}
	return size, true
}

// Minimize implements Strategy.
func (pf Portfolio) Minimize(p Problem, opt Options) (Result, error) {
	res, err := pf.Race(p, opt)
	if err != nil {
		return Result{}, err
	}
	return res.Result, nil
}
