package strategy

import (
	"math"
	"math/rand"

	"hetopt/internal/anneal"
)

// DefaultInitialTemp is the SA starting temperature for seconds-scale
// energies. The paper anneals from 10^4 down to 1; the objective here is
// measured in seconds (0.1-40) rather than the milliseconds-scale
// numbers that schedule implies, so the same 10^4 dynamic range is
// anchored at 5.
const DefaultInitialTemp = 5.0

// TempSpan is the ratio between initial and stop temperature (10^4, the
// paper's 10000 -> "T < 1" span).
const TempSpan = 1e4

// Anneal is simulated annealing, the paper's chosen metaheuristic
// (Section III-A, Figure 3), ported onto the strategy layer: K
// independent chains (Options.Restarts) anneal with ChainSeed-derived
// seeds, sharing a single-flight evaluation memo when K > 1 so a state
// visited by several chains costs one evaluation; the best chain wins,
// ties broken by the lowest chain index. A single chain runs without
// the memo, reproducing the original single-chain effort accounting
// exactly. It works on any Problem (Spaced not required).
type Anneal struct {
	// InitialTemp is the starting temperature; zero selects
	// DefaultInitialTemp.
	InitialTemp float64
	// StopTemp stops a chain once T drops below it; zero selects
	// InitialTemp/TempSpan, preserving the paper's schedule shape. The
	// cooling rate is derived so the schedule spans exactly the budget.
	StopTemp float64
}

// DefaultAnneal is the paper-preset annealing strategy.
func DefaultAnneal() Anneal { return Anneal{} }

// Name implements Strategy.
func (Anneal) Name() string { return "anneal" }

// annealWorker is one chain's view of the shared problem: it adapts the
// error-returning strategy.Problem to anneal.Problem with a chain-local
// sticky error and evaluation counter.
type annealWorker struct {
	p     Problem
	evals int
	err   error
}

func (w *annealWorker) Dim() int { return w.p.Dim() }

func (w *annealWorker) Initial(dst []int, rng *rand.Rand) { w.p.Initial(dst, rng) }

func (w *annealWorker) Neighbor(dst, src []int, rng *rand.Rand) { w.p.Neighbor(dst, src, rng) }

func (w *annealWorker) Energy(state []int) float64 {
	if w.err != nil {
		return math.Inf(1)
	}
	e, err := w.p.Energy(state)
	if err != nil {
		w.err = err
		return math.Inf(1)
	}
	w.evals++
	return sanitize(e)
}

// Minimize implements Strategy.
func (a Anneal) Minimize(p Problem, opt Options) (Result, error) {
	t0 := a.InitialTemp
	if t0 == 0 {
		t0 = DefaultInitialTemp
	}
	stop := a.StopTemp
	if stop == 0 {
		stop = t0 / TempSpan
	}
	chains := opt.restarts()
	eval := p
	if chains > 1 {
		eval = withMemo(p)
	}
	workers := make([]*annealWorker, chains)
	res, err := anneal.MinimizeMulti(func(chain int) anneal.Problem {
		workers[chain] = &annealWorker{p: eval}
		return workers[chain]
	}, anneal.MultiOptions{
		Options: anneal.Options{
			InitialTemp: t0,
			StopTemp:    stop,
			MaxIters:    opt.budget(),
			Seed:        opt.Seed,
		},
		Chains:      chains,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return Result{}, err
	}
	evals := 0
	for _, w := range workers {
		if w.err != nil {
			return Result{}, w.err
		}
		evals += w.evals
	}
	return Result{
		Best:        res.Best,
		BestEnergy:  res.BestEnergy,
		Evaluations: evals,
		Worker:      res.Chain,
		Workers:     chains,
	}, nil
}
