// Package strategy is the pluggable search layer: every optimizer in
// the codebase — the paper's simulated annealing (Section III-A),
// exhaustive enumeration ("enumeration, also known as brute-force"),
// and the alternative metaheuristics the paper weighs before choosing
// SA (genetic algorithms, local search, tabu search, random sampling) —
// is a Strategy over one shared representation: budgeted, seeded
// minimization of an energy over integer index vectors, the
// representation internal/space, internal/anneal and
// internal/heuristics already share.
//
// Unifying the search layer turns every optimizer x objective x space
// combination into a first-class scenario: internal/core runs its four
// paper methods as thin presets (EM/EML = Exhaustive, SAM/SAML =
// Anneal) over an injected Strategy, internal/multi and
// internal/adaptive accept the same injection, and Portfolio races any
// set of member strategies concurrently over a shared single-flight
// evaluation memo so no configuration is ever paid for twice.
//
// Seeding contract: worker i of any strategy (annealing chain,
// heuristic restart, portfolio member's workers) draws its seed from
// search.ChainSeed(Options.Seed, i). Winners are selected by
// (energy, worker index), never by completion order, and evaluations
// are pure functions of the state, so for a fixed (Strategy, Options)
// the Result is bit-identical at every Parallelism level.
package strategy

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hetopt/internal/search"
)

// Problem is a discrete minimization problem over integer index
// vectors. Energy must be a pure function of the state and safe for
// concurrent use (strategies call it from several workers); Initial and
// Neighbor must draw all randomness from the supplied rng.
type Problem interface {
	// Dim returns the length of a state vector.
	Dim() int
	// Initial writes a valid starting state into dst.
	Initial(dst []int, rng *rand.Rand)
	// Neighbor writes into dst a neighbor of src; dst and src may alias.
	Neighbor(dst, src []int, rng *rand.Rand)
	// Energy evaluates a state; lower is better. NaN energies are
	// treated as +Inf (never selected).
	Energy(state []int) (float64, error)
}

// Spaced is implemented by problems whose states form a full product
// space: every combination of per-dimension levels is a valid state.
// Strategies that enumerate or recombine states coordinate-wise
// (Exhaustive, Genetic, Tabu, Local, Random) require it; problems with
// coupled coordinates (e.g. the multi-device fraction simplex) support
// only the Initial/Neighbor-driven strategies such as Anneal.
type Spaced interface {
	Problem
	// Levels returns the number of values coordinate i can take.
	Levels(i int) int
}

// BatchProblem is optionally implemented by problems that evaluate a
// slice of states in one call, amortizing per-call interface and memo
// overhead. Semantics are exactly the sequential loop: out[i] receives
// Energy(states[i]) in order, the first error stops the batch and is
// returned, and effort accounting (memo lookups, evaluator charges)
// matches calling Energy repeatedly. After an error the out entries at
// and beyond the failure are untouched; callers must not use out from a
// failed batch. Strategies probe for it with a type assertion
// (Exhaustive chunks its ordinal scan, Genetic batches generations) and
// fall back to the sequential loop.
type BatchProblem interface {
	Problem
	// EnergyBatch writes Energy(states[i]) into out[i];
	// len(out) >= len(states).
	EnergyBatch(states [][]int, out []float64) error
}

// Options configures a strategy run. The zero value is usable.
type Options struct {
	// Budget caps the number of energy evaluations each worker spends:
	// annealing candidates per chain (each chain additionally evaluates
	// its initial state), heuristic evaluations per restart. Exhaustive
	// ignores it (enumeration visits every state exactly once). Zero
	// selects 1000, the budget the paper highlights for SA.
	Budget int
	// Seed is the base seed; worker i derives search.ChainSeed(Seed, i).
	Seed int64
	// Restarts is the number of independent workers K (annealing chains,
	// heuristic restarts). Each worker runs the full Budget from its own
	// seed; the best worker wins, ties broken by the lowest index.
	// Workers share a single-flight evaluation memo, so states visited
	// by several workers cost one evaluation. Zero or one runs a single
	// worker, reproducing the plain single-run behavior exactly.
	Restarts int
	// Parallelism caps the number of workers running concurrently. The
	// Result is bit-identical at every level; zero or one runs
	// sequentially.
	Parallelism int
}

func (o Options) budget() int {
	if o.Budget <= 0 {
		return 1000
	}
	return o.Budget
}

func (o Options) restarts() int {
	if o.Restarts <= 1 {
		return 1
	}
	return o.Restarts
}

// Result is the outcome of a strategy run.
type Result struct {
	// Best is the lowest-energy state found; BestEnergy its energy.
	Best       []int
	BestEnergy float64
	// Evaluations counts Energy lookups observed across all workers,
	// shared-memo hits included (the logical search effort; physical
	// effort is lower whenever workers overlap).
	Evaluations int
	// Worker is the index of the winning worker: the chain for Anneal,
	// the restart for the heuristic strategies, the member for
	// Portfolio, 0 for Exhaustive (its decomposition into shards is
	// data-parallel, not a set of independent searches).
	Worker int
	// Workers is the number of independent workers that ran (1 for
	// Exhaustive; for Portfolio, the sum over members).
	Workers int
	// Cert, when non-nil, is the optimality certificate of an exact
	// branch-and-bound run (nil for every heuristic strategy; Portfolio
	// propagates the exact member's certificate when it certifies the
	// winning energy). Read it through Certificate(), which spares the
	// nil-check.
	Cert *Certificate
	// Pool is the exact strategy's diverse near-optimal solution pool
	// (empty for heuristics and when no pool was requested). Read it
	// through PoolEntries().
	Pool []PoolEntry
}

// Certificate returns the run's optimality certificate; ok is false for
// heuristic strategies, which cannot certify anything. Callers never
// need to touch the raw Cert pointer.
func (r Result) Certificate() (Certificate, bool) {
	if r.Cert == nil {
		return Certificate{}, false
	}
	return *r.Cert, true
}

// PoolEntries returns the diverse solution pool, nil unless an exact
// run collected one.
func (r Result) PoolEntries() []PoolEntry { return r.Pool }

// Strategy is one search method over the shared representation.
// Implementations must be deterministic for a fixed Options at every
// Parallelism level, and must document whether they require Spaced.
type Strategy interface {
	// Name identifies the strategy in reports, tables and CLI flags.
	Name() string
	// Minimize runs the search on p under opt.
	Minimize(p Problem, opt Options) (Result, error)
}

// stateKey encodes a state vector as a compact string memo key — the
// fallback for problems too wide for the allocation-free array key.
func stateKey(state []int) string {
	buf := make([]byte, 0, 2*len(state))
	for _, v := range state {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return string(buf)
}

// arrayKeyDims bounds the array state key: problems with at most this
// many dimensions (and at most 65536 levels each) get a fixed-size
// comparable key built without allocating. The tuning schema has 5
// dimensions, so every paper-shaped problem qualifies.
const arrayKeyDims = 8

// arrayKey is the compact comparable state key.
type arrayKey struct {
	n uint8
	v [arrayKeyDims]uint16
}

func makeArrayKey(state []int) arrayKey {
	k := arrayKey{n: uint8(len(state))}
	for i, x := range state {
		k.v[i] = uint16(x)
	}
	return k
}

// canArrayKey reports whether every state of p fits the array key.
func canArrayKey(p Problem) bool {
	sp, ok := p.(Spaced)
	if !ok || p.Dim() > arrayKeyDims {
		return false
	}
	for i := 0; i < p.Dim(); i++ {
		if sp.Levels(i) > 1<<16 {
			return false
		}
	}
	return true
}

// memoShards stripes the shared state memo so concurrent chains and
// portfolio members do not serialize on one mutex.
const memoShards = 8

// hashArrayKey routes array keys onto memo shards (FNV-style fold plus
// a final avalanche; shard routing never affects results).
func hashArrayKey(k arrayKey) uint64 {
	h := uint64(k.n)
	for i := 0; i < int(k.n); i++ {
		h = (h ^ uint64(k.v[i])) * 0x100000001b3
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	return h ^ (h >> 33)
}

// hashStateString routes string keys onto memo shards.
func hashStateString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// memoProblem wraps a Problem's Energy in a concurrency-safe
// single-flight state-keyed memo, so workers sharing one memoProblem
// never pay for the same state twice. Evaluations are pure, so the memo
// never changes a value — only the physical effort spent. Paper-shaped
// problems key on a stack-built array (amemo); wider problems fall back
// to the varint string key (smemo). Hits take the memo's allocation-free
// Get fast path; only misses build the Do closure.
type memoProblem struct {
	Problem
	amemo *search.Memo[arrayKey, float64]
	smemo *search.Memo[string, float64]
}

func (m *memoProblem) Energy(state []int) (float64, error) {
	if m.amemo != nil {
		k := makeArrayKey(state)
		if v, ok, err := m.amemo.Get(k); ok {
			return v, err
		}
		return m.amemo.Do(k, func() (float64, error) {
			return m.Problem.Energy(state)
		})
	}
	k := stateKey(state)
	if v, ok, err := m.smemo.Get(k); ok {
		return v, err
	}
	return m.smemo.Do(k, func() (float64, error) {
		return m.Problem.Energy(state)
	})
}

// EnergyBatch implements BatchProblem through the memo: identical to the
// sequential loop (one memo lookup per state, first error stops), with
// hits served allocation-free.
func (m *memoProblem) EnergyBatch(states [][]int, out []float64) error {
	for i, st := range states {
		e, err := m.Energy(st)
		if err != nil {
			return err
		}
		out[i] = e
	}
	return nil
}

// spacedMemoProblem additionally forwards Levels, so a memo wrapped
// around a Spaced problem still satisfies Spaced.
type spacedMemoProblem struct{ *memoProblem }

func (m spacedMemoProblem) Levels(i int) int { return m.Problem.(Spaced).Levels(i) }

// lowerBounded matches problems carrying admissible partial-assignment
// bounds (exact.Bounded without the import).
type lowerBounded interface {
	LowerBound(prefix []int, fixed int) float64
}

// boundedSpacedMemoProblem additionally forwards LowerBound, so the
// exact strategy still prunes when racing over a shared memo inside
// Portfolio. It is a distinct type (not a method on the plain memo
// wrappers) so a memo never advertises bounds its problem lacks.
type boundedSpacedMemoProblem struct{ spacedMemoProblem }

func (m boundedSpacedMemoProblem) LowerBound(prefix []int, fixed int) float64 {
	return m.Problem.(lowerBounded).LowerBound(prefix, fixed)
}

// withMemo wraps p in a fresh single-flight memo, preserving Spaced
// (and LowerBound) exactly when p supports it (a memo over coupled
// coordinates must not pretend to be a product space, and a memo over
// an unbounded problem must not pretend to have admissible bounds).
func withMemo(p Problem) Problem {
	mp := &memoProblem{Problem: p}
	if canArrayKey(p) {
		mp.amemo = search.NewShardedMemo[arrayKey, float64](memoShards, hashArrayKey)
	} else {
		mp.smemo = search.NewShardedMemo[string, float64](memoShards, hashStateString)
	}
	if _, ok := p.(Spaced); ok {
		if _, ok := p.(lowerBounded); ok {
			return boundedSpacedMemoProblem{spacedMemoProblem{mp}}
		}
		return spacedMemoProblem{mp}
	}
	return mp
}

// memoStats reports the shared-memo accounting of a problem returned by
// withMemo: total lookups, unique (paid) evaluations, and hits.
func memoStats(p Problem) (lookups, unique, hits int, ok bool) {
	var mp *memoProblem
	switch t := p.(type) {
	case *memoProblem:
		mp = t
	case spacedMemoProblem:
		mp = t.memoProblem
	case boundedSpacedMemoProblem:
		mp = t.memoProblem
	default:
		return 0, 0, 0, false
	}
	if mp.amemo != nil {
		return mp.amemo.Lookups(), mp.amemo.Unique(), mp.amemo.Hits(), true
	}
	return mp.smemo.Lookups(), mp.smemo.Unique(), mp.smemo.Hits(), true
}

// spacedOrErr asserts that a strategy requiring a product space got one.
func spacedOrErr(name string, p Problem) (Spaced, error) {
	if sp, ok := p.(Spaced); ok {
		return sp, nil
	}
	return nil, fmt.Errorf("strategy: %s requires a product-space problem (strategy.Spaced); %T has coupled coordinates", name, p)
}

// sanitize maps NaN to +Inf so broken evaluations are never selected.
func sanitize(e float64) float64 {
	if math.IsNaN(e) {
		return math.Inf(1)
	}
	return e
}

// Names lists the parseable strategy names in presentation order.
func Names() []string {
	return []string{"anneal", "exhaustive", "exact", "genetic", "tabu", "local", "random", "portfolio"}
}

// Parse converts a CLI-style strategy name into a Strategy with default
// construction parameters: "anneal" uses DefaultAnneal (the paper's
// schedule rescaled to seconds-valued energies), and "portfolio" races
// DefaultPortfolio's members. An empty name returns (nil, nil), meaning
// "let the caller pick its method preset".
func Parse(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "auto":
		return nil, nil
	case "anneal":
		return DefaultAnneal(), nil
	case "exhaustive":
		return Exhaustive{}, nil
	case "exact":
		return Exact{}, nil
	case "genetic":
		return Genetic{}, nil
	case "tabu":
		return Tabu{}, nil
	case "local":
		return Local{}, nil
	case "random":
		return Random{}, nil
	case "portfolio":
		return DefaultPortfolio(), nil
	default:
		return nil, fmt.Errorf("strategy: unknown strategy %q (want %s)", name, strings.Join(Names(), ", "))
	}
}
