package strategy

import (
	"math"

	"hetopt/internal/heuristics"
)

// The metaheuristic strategies port internal/heuristics — the
// alternatives the paper weighs against simulated annealing in Section
// III-A — onto the strategy layer. Each runs K independent restarts
// (Options.Restarts) through heuristics.SearchMulti with explicit
// ChainSeed-derived per-restart seeds, sharing a single-flight
// evaluation memo when K > 1; the best restart wins, ties broken by the
// lowest index. All of them recombine or mutate states coordinate-wise,
// so they require Spaced.

// heuristicWorker is one restart's view of the shared problem: it
// adapts the error-returning strategy.Problem to heuristics.Problem
// with a restart-local sticky error.
type heuristicWorker struct {
	p   Spaced
	err error
}

func (w *heuristicWorker) Dim() int         { return w.p.Dim() }
func (w *heuristicWorker) Levels(i int) int { return w.p.Levels(i) }

func (w *heuristicWorker) Energy(state []int) float64 {
	if w.err != nil {
		return math.Inf(1)
	}
	e, err := w.p.Energy(state)
	if err != nil {
		w.err = err
		return math.Inf(1)
	}
	return e
}

// EnergyBatch implements heuristics.BatchProblem, forwarding to the
// problem's batch path when it has one. Entries are pre-filled with +Inf
// so a batch that fails mid-way leaves the failed and subsequent entries
// at the value the sticky-error sequential path would produce; the error
// itself aborts the whole run through the restart-local sticky error, so
// the differing already-evaluated prefix is never observed.
func (w *heuristicWorker) EnergyBatch(states [][]int, out []float64) {
	out = out[:len(states)]
	bp, ok := w.p.(BatchProblem)
	if !ok || w.err != nil {
		for i, st := range states {
			out[i] = w.Energy(st)
		}
		return
	}
	for i := range out {
		out[i] = math.Inf(1)
	}
	if err := bp.EnergyBatch(states, out); err != nil {
		w.err = err
	}
}

// minimizeHeuristic is the shared restart fan-out behind the four
// heuristic strategies.
func minimizeHeuristic(name string, p Problem, opt Options, run heuristics.Searcher) (Result, error) {
	sp, err := spacedOrErr(name, p)
	if err != nil {
		return Result{}, err
	}
	restarts := opt.restarts()
	eval := sp
	if restarts > 1 {
		eval = withMemo(sp).(Spaced)
	}
	workers := make([]*heuristicWorker, restarts)
	res, err := heuristics.SearchMulti(func(i int) heuristics.Problem {
		workers[i] = &heuristicWorker{p: eval}
		return workers[i]
	}, run, heuristics.MultiOptions{
		Options:     heuristics.Options{Budget: opt.budget(), Seed: opt.Seed},
		Restarts:    restarts,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return Result{}, err
	}
	for _, w := range workers {
		if w.err != nil {
			return Result{}, w.err
		}
	}
	return Result{
		Best:        res.Best,
		BestEnergy:  res.BestEnergy,
		Evaluations: res.TotalEvaluations(),
		Worker:      res.Restart,
		Workers:     restarts,
	}, nil
}

// Random is uniform random sampling: the natural lower baseline every
// other strategy must beat.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Minimize implements Strategy.
func (Random) Minimize(p Problem, opt Options) (Result, error) {
	return minimizeHeuristic("random", p, opt, heuristics.RandomSearch)
}

// Local is steepest-descent hill climbing with random restarts within
// each worker's budget.
type Local struct{}

// Name implements Strategy.
func (Local) Name() string { return "local" }

// Minimize implements Strategy.
func (Local) Minimize(p Problem, opt Options) (Result, error) {
	return minimizeHeuristic("local", p, opt, heuristics.LocalSearch)
}

// Tabu is tabu search with short-term memory and aspiration.
type Tabu struct {
	// Tenure and Samples tune the tabu memory; zero selects the
	// heuristics package defaults (2*Dim and 4*Dim).
	Tenure, Samples int
}

// Name implements Strategy.
func (Tabu) Name() string { return "tabu" }

// Minimize implements Strategy.
func (t Tabu) Minimize(p Problem, opt Options) (Result, error) {
	return minimizeHeuristic("tabu", p, opt, func(hp heuristics.Problem, hopt heuristics.Options) (heuristics.Result, error) {
		return heuristics.TabuSearch(hp, heuristics.TabuOptions{Options: hopt, Tenure: t.Tenure, Samples: t.Samples})
	})
}

// Genetic is a generational genetic algorithm with tournament
// selection, uniform crossover, per-gene mutation and elitism.
type Genetic struct {
	// Population, MutationRate and Elite tune the GA; zero selects the
	// heuristics package defaults (24, 1/Dim, 2).
	Population   int
	MutationRate float64
	Elite        int
}

// Name implements Strategy.
func (Genetic) Name() string { return "genetic" }

// Minimize implements Strategy.
func (g Genetic) Minimize(p Problem, opt Options) (Result, error) {
	return minimizeHeuristic("genetic", p, opt, func(hp heuristics.Problem, hopt heuristics.Options) (heuristics.Result, error) {
		return heuristics.Genetic(hp, heuristics.GeneticOptions{
			Options:      hopt,
			Population:   g.Population,
			MutationRate: g.MutationRate,
			Elite:        g.Elite,
		})
	})
}
