package strategy

import (
	"hetopt/internal/exact"
)

// Certificate and PoolEntry re-export the exact layer's result types so
// every consumer of a strategy Result (core, graph, serve, the CLIs)
// speaks one vocabulary without importing internal/exact directly.
type (
	// Certificate is a branch-and-bound optimality certificate.
	Certificate = exact.Certificate
	// PoolEntry is one member of the diverse near-optimal solution pool.
	PoolEntry = exact.PoolEntry
)

// Pool-knob defaults, re-exported for flag and wire validation.
const (
	DefaultPoolGap      = exact.DefaultPoolGap
	DefaultMinDiversity = exact.DefaultMinDiversity
	MaxPoolSize         = exact.MaxPoolSize
)

// Exact is the deterministic branch-and-bound strategy (internal/exact)
// lifted onto the strategy layer: the only member that returns a
// provable answer rather than a heuristic one. It requires Spaced.
// Options.Budget caps energy evaluations per subtree root (the
// deterministic unit of work, mirroring the per-chain/per-restart
// budget semantics of the heuristics); Prove lifts the cap and runs to
// exhaustion. Problems additionally implementing
// LowerBound(prefix []int, fixed int) float64 (see exact.Bounded) are
// pruned with admissible bounds; others are solved as a certified
// exhaustive enumeration. Options.Seed and Options.Restarts are ignored
// — the search draws no randomness and its decomposition is fixed.
type Exact struct {
	// Prove ignores the budget and always exhausts the tree.
	Prove bool
	// PoolSize, PoolGap and MinDiversity configure the diverse solution
	// pool (see exact.Options).
	PoolSize     int
	PoolGap      float64
	MinDiversity int
}

// Name implements Strategy.
func (Exact) Name() string { return "exact" }

// Minimize implements Strategy. The returned Result carries the
// certificate and pool (Result.Certificate()/Result.PoolEntries()).
func (e Exact) Minimize(p Problem, opt Options) (Result, error) {
	sp, err := spacedOrErr("exact", p)
	if err != nil {
		return Result{}, err
	}
	res, err := exact.Solve(sp, exact.Options{
		Budget:       opt.budget(),
		Prove:        e.Prove,
		PoolSize:     e.PoolSize,
		PoolGap:      e.PoolGap,
		MinDiversity: e.MinDiversity,
		Parallelism:  opt.Parallelism,
	})
	if err != nil {
		return Result{}, err
	}
	cert := res.Certificate
	return Result{
		Best:        res.Best,
		BestEnergy:  res.BestEnergy,
		Evaluations: res.Evaluations,
		Worker:      0,
		Workers:     1,
		Cert:        &cert,
		Pool:        res.Pool,
	}, nil
}
