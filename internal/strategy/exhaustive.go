package strategy

import (
	"fmt"
	"math"

	"hetopt/internal/search"
	"hetopt/internal/space"
)

// Exhaustive is the paper's enumeration ("brute-force") ported onto the
// strategy layer: it visits every state of a product-space problem
// exactly once, sharding the ordinal range into contiguous sub-ranges
// (space.ForEachRange over a space built from the problem's levels)
// scanned concurrently. The winner is the lowest energy at the lowest
// ordinal — identical to the sequential scan at any worker count.
//
// It requires Spaced, ignores Options.Budget and Options.Restarts
// (enumeration is certainly optimal and visits each state once; there
// is nothing to restart), and reports Worker 0: its decomposition is
// data-parallel, not a set of independent searches.
type Exhaustive struct{}

// Name implements Strategy.
func (Exhaustive) Name() string { return "exhaustive" }

// productSpace rebuilds the generic index space of a Spaced problem, so
// enumeration reuses space.ForEachRange's ordinal sharding machinery.
func productSpace(p Spaced) (*space.Space, error) {
	params := make([]space.Param, p.Dim())
	for i := range params {
		levels := p.Levels(i)
		if levels <= 0 {
			return nil, fmt.Errorf("strategy: exhaustive: dimension %d has no levels", i)
		}
		vals := make([]float64, levels)
		for j := range vals {
			vals[j] = float64(j)
		}
		params[i] = space.Param{Name: fmt.Sprintf("p%d", i), Kind: space.Ordered, Values: vals}
	}
	return space.New(params...)
}

// Minimize implements Strategy.
func (Exhaustive) Minimize(p Problem, opt Options) (Result, error) {
	sp, err := spacedOrErr("exhaustive", p)
	if err != nil {
		return Result{}, err
	}
	prod, err := productSpace(sp)
	if err != nil {
		return Result{}, err
	}
	size := prod.Size()
	workers := search.Workers(opt.Parallelism)
	if workers > size {
		workers = size
	}
	type shardBest struct {
		e     float64
		ord   int
		evals int
	}
	merge := func(sb *shardBest, e float64, ord int) {
		sb.evals++
		if e = sanitize(e); sb.ord < 0 || e < sb.e {
			sb.e = e
			sb.ord = ord
		}
	}
	scan := func(lo, hi int) (shardBest, error) {
		sb := shardBest{e: math.Inf(1), ord: -1}
		bp, batch := sp.(BatchProblem)
		if !batch {
			err := prod.ForEachRange(lo, hi, func(ord int, idx []int) error {
				e, err := sp.Energy(idx)
				if err != nil {
					return err
				}
				merge(&sb, e, ord)
				return nil
			})
			return sb, err
		}
		// Batched scan: decode the range in fixed-size chunks into a
		// reused backing array and evaluate each chunk in one call. The
		// merge still walks ordinals in order, so the (energy, ordinal)
		// winner is the sequential one.
		const chunk = 256
		dim := sp.Dim()
		backing := make([]int, chunk*dim)
		states := make([][]int, chunk)
		for i := range states {
			states[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
		}
		energies := make([]float64, chunk)
		for start := lo; start < hi; start += chunk {
			end := start + chunk
			if end > hi {
				end = hi
			}
			n := end - start
			fill := 0
			if err := prod.ForEachRange(start, end, func(ord int, idx []int) error {
				copy(states[fill], idx)
				fill++
				return nil
			}); err != nil {
				return sb, err
			}
			if err := bp.EnergyBatch(states[:n], energies[:n]); err != nil {
				return sb, err
			}
			for i := 0; i < n; i++ {
				merge(&sb, energies[i], start+i)
			}
		}
		return sb, nil
	}

	shards := search.Shards(size, workers)
	bests := make([]shardBest, len(shards))
	err = search.ForEach(len(shards), workers, func(si int) error {
		var err error
		bests[si], err = scan(shards[si][0], shards[si][1])
		return err
	})
	if err != nil {
		return Result{}, err
	}

	total := shardBest{e: math.Inf(1), ord: -1}
	for _, sb := range bests {
		total.evals += sb.evals
		// Shards are merged in ordinal order, so the first strict
		// improvement reproduces the sequential (energy, ordinal) winner;
		// an all-+Inf space yields its lowest ordinal.
		if sb.ord >= 0 && (total.ord < 0 || sb.e < total.e) {
			total.e = sb.e
			total.ord = sb.ord
		}
	}
	if total.ord < 0 {
		return Result{}, fmt.Errorf("strategy: exhaustive: empty space")
	}
	best, err := prod.Unflatten(total.ord)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Best:        best,
		BestEnergy:  total.e,
		Evaluations: total.evals,
		Worker:      0,
		Workers:     1,
	}, nil
}
