package strategy

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// bowl is a separable quadratic over a product space with a unique
// minimum at target. Energy is concurrency-safe (atomic counter) so
// every strategy can drive it from parallel workers.
type bowl struct {
	levels []int
	target []int
	evals  atomic.Int64
}

func newBowl() *bowl {
	return &bowl{levels: []int{12, 12, 12}, target: []int{7, 3, 9}}
}

func (b *bowl) Dim() int         { return len(b.levels) }
func (b *bowl) Levels(i int) int { return b.levels[i] }

func (b *bowl) Initial(dst []int, rng *rand.Rand) {
	for i := range dst {
		dst[i] = rng.Intn(b.levels[i])
	}
}

func (b *bowl) Neighbor(dst, src []int, rng *rand.Rand) {
	copy(dst, src)
	i := rng.Intn(len(dst))
	if dst[i] == 0 {
		dst[i] = 1
	} else if dst[i] == b.levels[i]-1 {
		dst[i]--
	} else if rng.Intn(2) == 0 {
		dst[i]--
	} else {
		dst[i]++
	}
}

func (b *bowl) Energy(state []int) (float64, error) {
	b.evals.Add(1)
	e := 0.0
	for i, v := range state {
		d := float64(v - b.target[i])
		e += d * d
	}
	return e, nil
}

// coupled hides Levels: a Problem that is not Spaced.
type coupled struct{ b *bowl }

func (c coupled) Dim() int                                { return c.b.Dim() }
func (c coupled) Initial(dst []int, rng *rand.Rand)       { c.b.Initial(dst, rng) }
func (c coupled) Neighbor(dst, src []int, rng *rand.Rand) { c.b.Neighbor(dst, src, rng) }
func (c coupled) Energy(state []int) (float64, error)     { return c.b.Energy(state) }

// failing errors after a set number of evaluations.
type failing struct {
	*bowl
	after int64
}

func (f *failing) Energy(state []int) (float64, error) {
	if f.bowl.evals.Load() >= f.after {
		return 0, fmt.Errorf("injected evaluator failure")
	}
	return f.bowl.Energy(state)
}

func allStrategies() []Strategy {
	return []Strategy{DefaultAnneal(), Exhaustive{}, Genetic{}, Tabu{}, Local{}, Random{}, DefaultPortfolio()}
}

func TestAllStrategiesFindBowlMinimum(t *testing.T) {
	for _, s := range allStrategies() {
		res, err := s.Minimize(newBowl(), Options{Budget: 3000, Seed: 1, Restarts: 2})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// Random sampling may miss the exact optimum on 12^3 states; every
		// guided strategy must hit it with 2x3000 evaluations.
		if _, isRandom := s.(Random); isRandom {
			if res.BestEnergy > 9 {
				t.Errorf("random: best = %g suspiciously bad", res.BestEnergy)
			}
			continue
		}
		if res.BestEnergy != 0 {
			t.Errorf("%s: best = %g at %v, want 0", s.Name(), res.BestEnergy, res.Best)
		}
	}
}

func TestExhaustiveMatchesSequentialScanAtAnyParallelism(t *testing.T) {
	want, err := Exhaustive{}.Minimize(newBowl(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want.BestEnergy != 0 || want.Evaluations != 12*12*12 {
		t.Fatalf("sequential scan wrong: %+v", want)
	}
	for _, p := range []int{2, 3, 7, 16, 10000} {
		got, err := Exhaustive{}.Minimize(newBowl(), Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, got)
		}
	}
}

func TestSpacedRequirement(t *testing.T) {
	c := coupled{b: newBowl()}
	for _, s := range []Strategy{Exhaustive{}, Genetic{}, Tabu{}, Local{}, Random{}} {
		if _, err := s.Minimize(c, Options{Budget: 50}); err == nil {
			t.Errorf("%s must reject a non-product-space problem", s.Name())
		}
	}
	// Initial/Neighbor-driven strategies work on coupled problems.
	res, err := DefaultAnneal().Minimize(c, Options{Budget: 500, Seed: 3, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEnergy != 0 {
		t.Errorf("anneal on coupled problem: best = %g, want 0", res.BestEnergy)
	}
	// A portfolio restricted to such members works too.
	pres, err := Portfolio{Members: []Strategy{DefaultAnneal()}}.Minimize(c, Options{Budget: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pres.BestEnergy != 0 {
		t.Errorf("portfolio on coupled problem: best = %g, want 0", pres.BestEnergy)
	}
}

func TestStrategyErrorPropagation(t *testing.T) {
	for _, s := range allStrategies() {
		f := &failing{bowl: newBowl(), after: 13}
		_, err := s.Minimize(f, Options{Budget: 200, Seed: 1, Restarts: 2, Parallelism: 2})
		if err == nil {
			t.Errorf("%s: injected failure must propagate", s.Name())
		}
	}
}

func TestAnnealSingleWorkerHasNoMemoOverhead(t *testing.T) {
	// One chain must evaluate through the raw problem (budget+1 calls),
	// preserving the pre-strategy-layer effort accounting.
	b := newBowl()
	res, err := DefaultAnneal().Minimize(b, Options{Budget: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 101 {
		t.Fatalf("evaluations = %d, want 101 (1 initial + 100 candidates)", res.Evaluations)
	}
	if got := b.evals.Load(); got != 101 {
		t.Fatalf("problem saw %d evaluations, want 101 (no dedup for a single chain)", got)
	}
	if res.Worker != 0 || res.Workers != 1 {
		t.Fatalf("worker accounting wrong: %+v", res)
	}
}

func TestRestartsShareMemo(t *testing.T) {
	// Multi-worker heuristics share a memo: the problem must see fewer
	// evaluations than the workers logically spent (the tiny space
	// guarantees overlap).
	b := newBowl()
	res, err := Local{}.Minimize(b, Options{Budget: 400, Seed: 2, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if paid := int(b.evals.Load()); paid >= res.Evaluations {
		t.Fatalf("paid %d evaluations for %d lookups; restarts must deduplicate", paid, res.Evaluations)
	}
}

func TestRestartsNeverWorseThanWorkerZero(t *testing.T) {
	for _, s := range []Strategy{DefaultAnneal(), Genetic{}, Tabu{}, Local{}, Random{}} {
		single, err := s.Minimize(newBowl(), Options{Budget: 120, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		multi, err := s.Minimize(newBowl(), Options{Budget: 120, Seed: 11, Restarts: 5})
		if err != nil {
			t.Fatal(err)
		}
		if multi.BestEnergy > single.BestEnergy {
			t.Errorf("%s: 5 restarts (%g) worse than restart 0 alone (%g)", s.Name(), multi.BestEnergy, single.BestEnergy)
		}
	}
}

func TestStateKeyDistinct(t *testing.T) {
	a := stateKey([]int{1, 2, 3})
	b := stateKey([]int{1, 2, 4})
	c := stateKey([]int{12, 3})
	if a == b || a == c || b == c {
		t.Fatalf("state keys collide: %q %q %q", a, b, c)
	}
	if a != stateKey([]int{1, 2, 3}) {
		t.Fatal("equal states must produce equal keys")
	}
}

func TestParse(t *testing.T) {
	for _, name := range Names() {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("Parse(%q) returned nil strategy", name)
		}
		if s.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, s.Name())
		}
	}
	for _, name := range []string{"", "auto", " AUTO "} {
		s, err := Parse(name)
		if err != nil || s != nil {
			t.Errorf("Parse(%q) = (%v, %v), want (nil, nil)", name, s, err)
		}
	}
	if _, err := Parse("quantum"); err == nil {
		t.Error("unknown strategy name must error")
	}
}

func TestNaNEnergyNeverWins(t *testing.T) {
	nan := &nanProblem{}
	for _, s := range allStrategies() {
		res, err := s.Minimize(nan, Options{Budget: 40, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !math.IsInf(res.BestEnergy, 1) {
			t.Errorf("%s: best = %g, want +Inf", s.Name(), res.BestEnergy)
		}
	}
}

type nanProblem struct{}

func (n *nanProblem) Dim() int                          { return 2 }
func (n *nanProblem) Levels(i int) int                  { return 3 }
func (n *nanProblem) Initial(dst []int, rng *rand.Rand) { dst[0], dst[1] = rng.Intn(3), rng.Intn(3) }
func (n *nanProblem) Neighbor(dst, src []int, rng *rand.Rand) {
	copy(dst, src)
	dst[rng.Intn(2)] = rng.Intn(3)
}
func (n *nanProblem) Energy(state []int) (float64, error) { return math.NaN(), nil }
