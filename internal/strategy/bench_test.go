package strategy

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkStrategyMinimize runs every strategy on the synthetic bowl
// under an equal budget — the microbenchmark behind the strategy
// comparison table.
func BenchmarkStrategyMinimize(b *testing.B) {
	b.ReportAllocs()
	for _, s := range allStrategies() {
		b.Run(s.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Minimize(newBowl(), Options{Budget: 500, Seed: 1, Restarts: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPortfolioRace measures the racing portfolio sequential vs
// parallel: the result is bit-identical, only wall-clock changes.
func BenchmarkPortfolioRace(b *testing.B) {
	b.ReportAllocs()
	for _, p := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DefaultPortfolio().Race(newBowl(), Options{Budget: 500, Seed: 1, Restarts: 2, Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
