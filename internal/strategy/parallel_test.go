package strategy

import (
	"reflect"
	"testing"
)

// TestMinimizeDeterministicAcrossParallelism is the layer's core
// contract: for a fixed (Strategy, Options) the Result is bit-identical
// at p in {1, 4, 8}, for every strategy, with and without restarts.
func TestMinimizeDeterministicAcrossParallelism(t *testing.T) {
	cases := []struct {
		name string
		s    Strategy
		opt  Options
	}{
		{"anneal", DefaultAnneal(), Options{Budget: 200, Seed: 5}},
		{"anneal-restarts", DefaultAnneal(), Options{Budget: 150, Seed: 5, Restarts: 4}},
		{"exhaustive", Exhaustive{}, Options{}},
		{"genetic", Genetic{}, Options{Budget: 300, Seed: 5, Restarts: 4}},
		{"tabu", Tabu{}, Options{Budget: 300, Seed: 5, Restarts: 4}},
		{"local", Local{}, Options{Budget: 300, Seed: 5, Restarts: 4}},
		{"random", Random{}, Options{Budget: 300, Seed: 5, Restarts: 4}},
		{"portfolio", DefaultPortfolio(), Options{Budget: 200, Seed: 5, Restarts: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want Result
			for i, p := range []int{1, 4, 8} {
				opt := tc.opt
				opt.Parallelism = p
				res, err := tc.s.Minimize(newBowl(), opt)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = res
					continue
				}
				if !reflect.DeepEqual(want, res) {
					t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, res)
				}
			}
		})
	}
}

// TestPortfolioSharesCache is the racing portfolio's accounting
// contract: across members the shared memo pays each distinct state
// once (the problem-side counter equals Unique), members overlap (Hits
// > 0), and the books balance. Run under -race this is also the
// shared-cache concurrency test: members race on 8 workers.
func TestPortfolioSharesCache(t *testing.T) {
	b := newBowl()
	res, err := DefaultPortfolio().Race(b, Options{Budget: 300, Seed: 2, Restarts: 2, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if paid := int(b.evals.Load()); paid != res.Unique {
		t.Fatalf("problem saw %d evaluations, memo paid %d: duplicate evaluations across members", paid, res.Unique)
	}
	if res.Hits <= 0 {
		t.Fatalf("no cache hits across members on a 12^3 space (lookups %d, unique %d)", res.Lookups, res.Unique)
	}
	if res.Lookups != res.Unique+res.Hits {
		t.Fatalf("accounting broken: %d lookups != %d unique + %d hits", res.Lookups, res.Unique, res.Hits)
	}
	if res.Unique > 12*12*12 {
		t.Fatalf("paid %d evaluations on a space of %d states", res.Unique, 12*12*12)
	}
}

// TestPortfolioNeverWorseThanMembers: every member races with the same
// seed and budget it gets standalone, so the portfolio's best is a min
// over standalone member results.
func TestPortfolioNeverWorseThanMembers(t *testing.T) {
	pf := DefaultPortfolio()
	opt := Options{Budget: 150, Seed: 9, Restarts: 2, Parallelism: 4}
	res, err := pf.Race(newBowl(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range pf.Members {
		standalone, err := m.Minimize(newBowl(), opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerMember[i].BestEnergy != standalone.BestEnergy {
			t.Errorf("member %s diverged inside the race: %g vs %g standalone",
				m.Name(), res.PerMember[i].BestEnergy, standalone.BestEnergy)
		}
		if res.BestEnergy > standalone.BestEnergy {
			t.Errorf("portfolio best %g worse than member %s standalone (%g)",
				res.BestEnergy, m.Name(), standalone.BestEnergy)
		}
	}
	if res.MemberNames[res.Worker] != pf.Members[res.Worker].Name() {
		t.Errorf("winner bookkeeping inconsistent: %v", res.MemberNames)
	}
}
