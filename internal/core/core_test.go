package core

import (
	"math"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/ml"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// smallSchema is a reduced configuration space keeping tests fast while
// preserving the structure of the paper space.
func smallSchema(t *testing.T) *space.Schema {
	t.Helper()
	sc, err := space.NewSchema(space.SchemaSpec{
		HostThreads:      []int{4, 24, 48},
		HostAffinities:   []machine.Affinity{machine.AffinityNone, machine.AffinityScatter},
		DeviceThreads:    []int{16, 240},
		DeviceAffinities: []machine.Affinity{machine.AffinityBalanced, machine.AffinityCompact},
		Fractions:        []float64{0, 25, 50, 75, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// smallPlan is a reduced training grid: dense on fractions (the model
// must interpolate sizes) but narrow on the other axes.
func smallPlan() TrainingPlan {
	fractions := make([]float64, 0, 20)
	for f := 5.0; f <= 100; f += 5 {
		fractions = append(fractions, f)
	}
	return TrainingPlan{
		Workloads:        []offload.Workload{offload.GenomeWorkload(dna.Human), offload.GenomeWorkload(dna.Cat)},
		Fractions:        fractions,
		HostThreads:      []int{4, 24, 48},
		HostAffinities:   []machine.Affinity{machine.AffinityNone, machine.AffinityScatter},
		DeviceThreads:    []int{16, 240},
		DeviceAffinities: []machine.Affinity{machine.AffinityBalanced, machine.AffinityCompact},
	}
}

func smallBoost() ml.BoostOptions {
	return ml.BoostOptions{Rounds: 120, LearningRate: 0.12, Tree: ml.TreeOptions{MaxDepth: 6, MinLeaf: 2}, Subsample: 1, Seed: 1}
}

func testModels(t *testing.T, platform *offload.Platform) *Models {
	t.Helper()
	models, err := Train(platform, smallPlan(), TrainOptions{Boost: smallBoost(), SplitSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return models
}

func TestMethodStringAndParse(t *testing.T) {
	for _, m := range Methods() {
		parsed, err := ParseMethod(m.String())
		if err != nil || parsed != m {
			t.Errorf("round trip %v failed: %v %v", m, parsed, err)
		}
	}
	if _, err := ParseMethod("genetic"); err == nil {
		t.Error("unknown method should fail")
	}
	if got := Method(9).String(); got != "method(9)" {
		t.Errorf("unknown method string = %q", got)
	}
}

func TestMethodProperties(t *testing.T) {
	// Table II.
	if EM.UsesAnnealing() || EM.UsesML() {
		t.Error("EM is enumeration + measurements")
	}
	if EML.UsesAnnealing() || !EML.UsesML() {
		t.Error("EML is enumeration + ML")
	}
	if !SAM.UsesAnnealing() || SAM.UsesML() {
		t.Error("SAM is SA + measurements")
	}
	if !SAML.UsesAnnealing() || !SAML.UsesML() {
		t.Error("SAML is SA + ML")
	}
}

func TestMeasurerCounts(t *testing.T) {
	platform := offload.NewPlatform()
	m := NewMeasurer(platform, offload.GenomeWorkload(dna.Human))
	cfg := space.Config{HostThreads: 48, HostAffinity: machine.AffinityScatter, DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced, HostFraction: 60}
	for i := 0; i < 5; i++ {
		if _, err := m.Evaluate(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if m.Count() != 5 {
		t.Fatalf("count = %d, want 5", m.Count())
	}
	m.ResetCount()
	if m.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFeatureEncoding(t *testing.T) {
	x := hostFeatures(24, machine.AffinityScatter, 1500)
	if x[featThreads] != 24 || x[featSizeMB] != 1500 {
		t.Fatalf("features = %v", x)
	}
	// One-hot: none, scatter, compact.
	if x[featAffBase] != 0 || x[featAffBase+1] != 1 || x[featAffBase+2] != 0 {
		t.Fatalf("host affinity one-hot = %v", x[featAffBase:])
	}
	y := deviceFeatures(120, machine.AffinityBalanced, 800)
	if y[featAffBase] != 1 || y[featAffBase+1] != 0 || y[featAffBase+2] != 0 {
		t.Fatalf("device affinity one-hot = %v", y[featAffBase:])
	}
	if len(HostFeatureNames()) != numFeatures || len(DeviceFeatureNames()) != numFeatures {
		t.Fatal("feature name lengths wrong")
	}
}

func TestTrainingPlanCountsMatchPaper(t *testing.T) {
	plan := PaperTrainingPlan()
	if got := plan.HostExperiments(); got != 2880 {
		t.Fatalf("host experiments = %d, want 2880 (Section IV-B)", got)
	}
	if got := plan.DeviceExperiments(); got != 4320 {
		t.Fatalf("device experiments = %d, want 4320", got)
	}
	if got := plan.HostExperiments() + plan.DeviceExperiments(); got != 7200 {
		t.Fatalf("total = %d, want 7200", got)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingPlanValidation(t *testing.T) {
	plan := PaperTrainingPlan()
	plan.Workloads = nil
	if err := plan.Validate(); err == nil {
		t.Error("no workloads should fail")
	}
	plan = PaperTrainingPlan()
	plan.Fractions = []float64{0}
	if err := plan.Validate(); err == nil {
		t.Error("zero fraction should fail (no work, no time)")
	}
	plan = PaperTrainingPlan()
	plan.HostThreads = nil
	if err := plan.Validate(); err == nil {
		t.Error("empty host grid should fail")
	}
	plan = PaperTrainingPlan()
	plan.DeviceAffinities = nil
	if err := plan.Validate(); err == nil {
		t.Error("empty device grid should fail")
	}
}

func TestGenerateDataShapes(t *testing.T) {
	platform := offload.NewPlatform()
	plan := smallPlan()
	host, err := GenerateHostData(platform, plan)
	if err != nil {
		t.Fatal(err)
	}
	if host.Len() != plan.HostExperiments() {
		t.Fatalf("host rows = %d, want %d", host.Len(), plan.HostExperiments())
	}
	dev, err := GenerateDeviceData(platform, plan)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Len() != plan.DeviceExperiments() {
		t.Fatalf("device rows = %d, want %d", dev.Len(), plan.DeviceExperiments())
	}
	for _, y := range host.Y {
		if y <= 0 {
			t.Fatal("host times must be positive")
		}
	}
}

func TestTrainProducesAccurateModels(t *testing.T) {
	platform := offload.NewPlatform()
	models := testModels(t, platform)
	if models.HostReport.Eval.MeanPercentError > 15 {
		t.Fatalf("host model percent error %.1f%% too high", models.HostReport.Eval.MeanPercentError)
	}
	if models.DeviceReport.Eval.MeanPercentError > 15 {
		t.Fatalf("device model percent error %.1f%% too high", models.DeviceReport.Eval.MeanPercentError)
	}
	// Split is half/half.
	if d := models.HostReport.TrainN - models.HostReport.TestN; d < -1 || d > 1 {
		t.Fatalf("host split %d/%d not halves", models.HostReport.TrainN, models.HostReport.TestN)
	}
	// Prediction sanity against a fresh measurement.
	pred, err := models.PredictHost(48, machine.AffinityScatter, dna.Human.SizeMB/2)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || pred > 10 {
		t.Fatalf("host prediction %g implausible", pred)
	}
}

func TestTrainRegressorKinds(t *testing.T) {
	platform := offload.NewPlatform()
	plan := smallPlan()
	var pcts []float64
	for _, kind := range []RegressorKind{BoostedTrees, Linear, Poisson} {
		models, err := Train(platform, plan, TrainOptions{Kind: kind, Boost: smallBoost(), SplitSeed: 3})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if models.Kind != kind {
			t.Fatalf("kind = %v, want %v", models.Kind, kind)
		}
		pcts = append(pcts, models.HostReport.Eval.MeanPercentError)
	}
	// The paper chose BDTR because it was the most accurate.
	if pcts[0] >= pcts[1] || pcts[0] >= pcts[2] {
		t.Fatalf("BDTR (%.2f%%) should beat linear (%.2f%%) and poisson (%.2f%%)", pcts[0], pcts[1], pcts[2])
	}
}

func TestRegressorKindString(t *testing.T) {
	if BoostedTrees.String() != "boosted-trees" || Linear.String() != "linear" || Poisson.String() != "poisson" {
		t.Fatal("regressor kind names wrong")
	}
	if RegressorKind(8).String() != "regressor(8)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestPredictorMemoizationAndValidation(t *testing.T) {
	platform := offload.NewPlatform()
	models := testModels(t, platform)
	w := offload.GenomeWorkload(dna.Human)
	if _, err := NewPredictor(nil, w, platform.Model()); err == nil {
		t.Error("nil models should fail")
	}
	if _, err := NewPredictor(models, offload.Workload{}, platform.Model()); err == nil {
		t.Error("invalid workload should fail")
	}
	p, err := NewPredictor(models, w, platform.Model())
	if err != nil {
		t.Fatal(err)
	}
	cfg := space.Config{HostThreads: 48, HostAffinity: machine.AffinityScatter, DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced, HostFraction: 50}
	a, err := p.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoized prediction changed")
	}
	if p.hostMemo.Unique() != 1 || p.devMemo.Unique() != 1 {
		t.Fatalf("memo sizes = %d/%d, want 1/1", p.hostMemo.Unique(), p.devMemo.Unique())
	}
	if _, err := p.Evaluate(space.Config{HostFraction: 200}); err == nil {
		t.Error("bad fraction should fail")
	}
}

// instance builds a ready Instance over the small schema.
func instance(t *testing.T, g dna.Genome) (*Instance, *offload.Platform) {
	t.Helper()
	platform := offload.NewPlatform()
	models := testModels(t, platform)
	w := offload.GenomeWorkload(g)
	pred, err := NewPredictor(models, w, platform.Model())
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{
		Schema:    smallSchema(t),
		Measurer:  NewMeasurer(platform, w),
		Predictor: pred,
	}, platform
}

func TestInstanceValidation(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	if err := inst.Validate(SAML); err != nil {
		t.Fatal(err)
	}
	noPred := &Instance{Schema: inst.Schema, Measurer: inst.Measurer}
	if err := noPred.Validate(SAML); err == nil {
		t.Error("SAML without predictor should fail")
	}
	if err := noPred.Validate(SAM); err != nil {
		t.Error("SAM without predictor should pass")
	}
	if err := (&Instance{}).Validate(EM); err == nil {
		t.Error("missing schema should fail")
	}
	if err := (&Instance{Schema: inst.Schema}).Validate(EM); err == nil {
		t.Error("missing measurer should fail")
	}
}

func TestEMFindsExhaustiveOptimum(t *testing.T) {
	inst, platform := instance(t, dna.Human)
	res, err := Run(EM, inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchEvaluations != inst.Schema.Size() {
		t.Fatalf("EM evaluated %d configs, want %d", res.SearchEvaluations, inst.Schema.Size())
	}
	// Independently verify optimality over the whole space.
	w := offload.GenomeWorkload(dna.Human)
	bestE := math.Inf(1)
	err = inst.Schema.Space().ForEach(func(idx []int) error {
		cfg, err := inst.Schema.Config(idx)
		if err != nil {
			return err
		}
		ti, err := platform.Measure(w, cfg, 0)
		if err != nil {
			return err
		}
		if ti.E() < bestE {
			bestE = ti.E()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeasuredE()-bestE) > 1e-12 {
		t.Fatalf("EM best %g != exhaustive best %g", res.MeasuredE(), bestE)
	}
}

func TestSAMethodsStayWithinSpaceAndBudget(t *testing.T) {
	inst, _ := instance(t, dna.Cat)
	for _, m := range []Method{SAM, SAML} {
		res, err := Run(m, inst, Options{Iterations: 200, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.SearchEvaluations > 201 {
			t.Fatalf("%v used %d evaluations for budget 200", m, res.SearchEvaluations)
		}
		if _, err := inst.Schema.Index(res.Config); err != nil {
			t.Fatalf("%v returned out-of-space config %v", m, res.Config)
		}
		if res.MeasuredE() <= 0 {
			t.Fatalf("%v measured E = %g", m, res.MeasuredE())
		}
	}
}

func TestSAMLNearEM(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	em, err := Run(EM, inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	saml, err := Run(SAML, inst, Options{Iterations: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pd := 100 * (saml.MeasuredE() - em.MeasuredE()) / em.MeasuredE()
	if pd < 0 {
		t.Fatalf("SAML (%g) cannot beat the enumerated optimum (%g)", saml.MeasuredE(), em.MeasuredE())
	}
	if pd > 35 {
		t.Fatalf("SAML percent difference %.1f%% too large on the small space", pd)
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	inst, _ := instance(t, dna.Dog)
	a, err := Run(SAM, inst, Options{Iterations: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(SAM, inst, Options{Iterations: 150, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config != b.Config || a.MeasuredE() != b.MeasuredE() {
		t.Fatal("same seed must reproduce the run")
	}
}

func TestExperimentsCounting(t *testing.T) {
	inst, _ := instance(t, dna.Mouse)
	inst.Measurer.ResetCount()
	res, err := Run(SAML, inst, Options{Iterations: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// SAML performs zero search measurements; only the final fair
	// comparison touches the measurer.
	if res.Experiments != 1 {
		t.Fatalf("SAML consumed %d experiments, want 1", res.Experiments)
	}
	res, err = Run(SAM, inst, Options{Iterations: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiments != 102 { // initial + 100 candidates + final
		t.Fatalf("SAM consumed %d experiments, want 102", res.Experiments)
	}
}

func TestBaselines(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	host, err := HostOnlyBaseline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if host.Config.HostFraction != 100 || host.Config.HostThreads != 48 {
		t.Fatalf("host baseline config %v", host.Config)
	}
	if host.Measured.Device != 0 {
		t.Fatal("host-only baseline must not use the device")
	}
	dev, err := DeviceOnlyBaseline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Config.HostFraction != 0 || dev.Config.DeviceThreads != 240 {
		t.Fatalf("device baseline config %v", dev.Config)
	}
	if dev.Measured.Host != 0 {
		t.Fatal("device-only baseline must not use the host")
	}
	// Section IV-D: the tuned heterogeneous configuration beats both.
	em, err := Run(EM, inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if em.MeasuredE() >= host.MeasuredE() || em.MeasuredE() >= dev.MeasuredE() {
		t.Fatalf("EM (%g) should beat host-only (%g) and device-only (%g)",
			em.MeasuredE(), host.MeasuredE(), dev.MeasuredE())
	}
}

func TestRunErrorPropagation(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	if _, err := Run(SAML, &Instance{Schema: inst.Schema, Measurer: inst.Measurer}, Options{}); err == nil {
		t.Error("SAML without predictor must error")
	}
	if _, err := Run(Method(42), inst, Options{}); err == nil {
		t.Error("unknown method must error")
	}
}
