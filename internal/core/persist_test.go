package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
)

func TestModelsSaveLoadRoundTrip(t *testing.T) {
	platform := offload.NewPlatform()
	orig := testModels(t, platform)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must be bit-identical across the round trip.
	for _, probe := range []struct {
		threads int
		aff     machine.Affinity
		sizeMB  float64
	}{
		{48, machine.AffinityScatter, 1500},
		{4, machine.AffinityNone, 300},
		{24, machine.AffinityCompact, 2800},
	} {
		a, err := orig.PredictHost(probe.threads, probe.aff, probe.sizeMB)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictHost(probe.threads, probe.aff, probe.sizeMB)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("host prediction diverged: %g vs %g", a, b)
		}
	}
	da, err := orig.PredictDevice(240, machine.AffinityBalanced, 2000)
	if err != nil {
		t.Fatal(err)
	}
	db, err := loaded.PredictDevice(240, machine.AffinityBalanced, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("device prediction diverged: %g vs %g", da, db)
	}
	// Headline accuracy survives.
	if loaded.HostReport.Eval.MeanPercentError != orig.HostReport.Eval.MeanPercentError {
		t.Fatal("host accuracy lost in round trip")
	}
	if loaded.Kind != BoostedTrees {
		t.Fatalf("kind = %v", loaded.Kind)
	}
}

func TestLoadedModelsDriveOptimization(t *testing.T) {
	platform := offload.NewPlatform()
	orig := testModels(t, platform)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w := offload.GenomeWorkload(dna.Cat)
	pred, err := NewPredictor(loaded, w, platform.Model())
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{Schema: smallSchema(t), Measurer: NewMeasurer(platform, w), Predictor: pred}
	res, err := Run(SAML, inst, Options{Iterations: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasuredE() <= 0 {
		t.Fatal("loaded models produced an unusable run")
	}
}

func TestModelsFileHelpers(t *testing.T) {
	platform := offload.NewPlatform()
	orig := testModels(t, platform)
	path := filepath.Join(t.TempDir(), "models.gob")
	if err := SaveModelsFile(orig, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DeviceReport.Eval.MeanPercentError != orig.DeviceReport.Eval.MeanPercentError {
		t.Fatal("file round trip lost accuracy numbers")
	}
	if _, err := LoadModelsFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestSaveRejectsNonBoosted(t *testing.T) {
	platform := offload.NewPlatform()
	models, err := Train(platform, smallPlan(), TrainOptions{Kind: Linear, SplitSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := models.Save(&buf); err == nil {
		t.Fatal("linear models must not persist")
	}
}

func TestLoadModelsRejectsGarbage(t *testing.T) {
	if _, err := LoadModels(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage should fail")
	}
}
