package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

func TestObjectiveValues(t *testing.T) {
	const timeSec, energyJ = 2.0, 300.0
	if got := (TimeObjective{}).Value(timeSec, energyJ); got != timeSec {
		t.Errorf("time objective = %g, want %g", got, timeSec)
	}
	if got := (EnergyObjective{}).Value(timeSec, energyJ); got != energyJ {
		t.Errorf("energy objective = %g, want %g", got, energyJ)
	}
	w := WeightedSumObjective{Alpha: 0.25, PowerScaleW: 100}
	if got, want := w.Value(timeSec, energyJ), 0.25*2+0.75*3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted objective = %g, want %g", got, want)
	}
	// Zero scale falls back to the default.
	wd := WeightedSumObjective{Alpha: 0}
	if got, want := wd.Value(timeSec, energyJ), energyJ/DefaultPowerScaleW; math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted objective with default scale = %g, want %g", got, want)
	}
	b := TimeBoundedObjective{TimeBoundSec: 1.5}
	if got, want := b.Value(1.4, energyJ), energyJ; got != want {
		t.Errorf("feasible bounded objective = %g, want %g", got, want)
	}
	if got := b.Value(2.0, energyJ); got <= energyJ {
		t.Errorf("infeasible bounded objective %g must exceed the raw energy %g", got, energyJ)
	}
	// The penalty is linear in the violation, pulling annealing back.
	if b.Value(2.0, energyJ) >= b.Value(3.0, energyJ) {
		t.Error("a larger violation must score worse")
	}
}

func TestParseObjective(t *testing.T) {
	for name, want := range map[string]Objective{
		"time":     TimeObjective{},
		"Energy":   EnergyObjective{},
		"weighted": WeightedSumObjective{Alpha: 0.3},
		"":         TimeObjective{},
	} {
		got, err := ParseObjective(name, 0.3)
		if err != nil {
			t.Fatalf("ParseObjective(%q): %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParseObjective(%q) = %#v, want %#v", name, got, want)
		}
	}
	if _, err := ParseObjective("carbon", 0.5); err == nil {
		t.Error("unknown objective should fail")
	}
	if _, err := ParseObjective("weighted", 1.5); err == nil {
		t.Error("alpha outside [0,1] should fail")
	}
}

// TestEnergyOptimumDiffersFromTimeOptimum is the acceptance check of the
// bi-objective extension on the full paper platform: the enumerated
// energy-optimal distribution must differ from the time-optimal one,
// consume fewer joules, and (on this platform) trade makespan for it.
func TestEnergyOptimumDiffersFromTimeOptimum(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	inst := &Instance{Schema: space.PaperSchema(), Measurer: NewMeasurer(platform, w)}

	timeOpt := Options{Parallelism: 8}
	timeRes, err := Run(EM, inst, timeOpt)
	if err != nil {
		t.Fatal(err)
	}
	energyOpt := Options{Parallelism: 8, Objective: EnergyObjective{}}
	energyRes, err := Run(EM, inst, energyOpt)
	if err != nil {
		t.Fatal(err)
	}
	if timeRes.Config == energyRes.Config {
		t.Fatalf("energy optimum %v must differ from time optimum", energyRes.Config)
	}
	if energyRes.MeasuredJ() >= timeRes.MeasuredJ() {
		t.Fatalf("energy optimum consumes %g J, not less than time optimum's %g J",
			energyRes.MeasuredJ(), timeRes.MeasuredJ())
	}
	if energyRes.MeasuredE() <= timeRes.MeasuredE() {
		t.Fatalf("energy optimum (%g s) should trade makespan vs time optimum (%g s)",
			energyRes.MeasuredE(), timeRes.MeasuredE())
	}
	// On this platform the energy optimum keeps all work on the host
	// (the engaged accelerator would burn static power).
	if energyRes.Config.HostFraction != 100 {
		t.Errorf("energy optimum maps %g%% to the host, want 100%%", energyRes.Config.HostFraction)
	}

	weightedOpt := Options{Parallelism: 8, Objective: WeightedSumObjective{Alpha: 0.5}}
	weightedRes, err := Run(EM, inst, weightedOpt)
	if err != nil {
		t.Fatal(err)
	}
	if weightedRes.Config == timeRes.Config {
		t.Errorf("weighted(0.5) optimum %v should differ from the time optimum on this platform", weightedRes.Config)
	}
	if !strings.Contains(weightedRes.Objective, "alpha=0.5") {
		t.Errorf("result objective %q should record alpha", weightedRes.Objective)
	}
}

// TestRunWithTimeSlack checks the constrained mode: the energy-minimal
// configuration within the slack must respect the makespan bound and
// consume no more energy than the time optimum.
func TestRunWithTimeSlack(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	timeRes, ecoRes, err := RunWithTimeSlack(EM, inst, Options{Parallelism: 4}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1.25 * timeRes.MeasuredE()
	if ecoRes.MeasuredE() > bound {
		t.Fatalf("bounded result %g s violates the bound %g s", ecoRes.MeasuredE(), bound)
	}
	if ecoRes.MeasuredJ() > timeRes.MeasuredJ() {
		t.Fatalf("bounded result consumes %g J, more than the time optimum's %g J",
			ecoRes.MeasuredJ(), timeRes.MeasuredJ())
	}
	if !strings.HasPrefix(ecoRes.Objective, "bounded") {
		t.Errorf("bounded result records objective %q", ecoRes.Objective)
	}
	if _, _, err := RunWithTimeSlack(EM, inst, Options{}, -0.1); err == nil {
		t.Error("negative slack should fail")
	}
}

// TestRunDeterministicAcrossParallelismObjectives extends the engine's
// determinism contract to the new objective paths: for a fixed seed the
// Result is bit-identical at every parallelism level under the energy
// and weighted objectives, for both measurement- and prediction-driven
// methods. Run with -race, this also exercises the shared evaluation
// cache composing times and energy from one evaluation across chains.
func TestRunDeterministicAcrossParallelismObjectives(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	cases := []struct {
		name string
		m    Method
		opt  Options
	}{
		{"EM-energy", EM, Options{Objective: EnergyObjective{}}},
		{"SAM-energy", SAM, Options{Iterations: 200, Seed: 5, Restarts: 4, Objective: EnergyObjective{}}},
		{"SAML-energy", SAML, Options{Iterations: 200, Seed: 5, Restarts: 4, Objective: EnergyObjective{}}},
		{"EML-weighted", EML, Options{Objective: WeightedSumObjective{Alpha: 0.5}}},
		{"SAM-weighted", SAM, Options{Iterations: 200, Seed: 5, Restarts: 4, Objective: WeightedSumObjective{Alpha: 0.5}}},
		{"SAML-weighted", SAML, Options{Iterations: 200, Seed: 5, Restarts: 4, Objective: WeightedSumObjective{Alpha: 0.5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want Result
			for i, p := range []int{1, 4, 8} {
				opt := tc.opt
				opt.Parallelism = p
				res, err := Run(tc.m, inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = res
					continue
				}
				if !reflect.DeepEqual(want, res) {
					t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, res)
				}
			}
		})
	}
}
