package core

import (
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/search"
	"hetopt/internal/space"
)

// TestMeasureCacheInterposes: with a search.Cache interposed via
// Instance.MeasureCache, a repeated run pays zero physical experiments
// (everything is served from the memo) and returns a bit-identical
// result — the contract the serving layer's cross-job sharing relies
// on.
func TestMeasureCacheInterposes(t *testing.T) {
	w := offload.GenomeWorkload(dna.Human)
	platform := offload.NewPlatform()
	meas := NewMeasurer(platform, w)
	inst := &Instance{
		Schema:       space.PaperSchema(),
		Measurer:     meas,
		MeasureCache: search.NewCache(meas),
	}
	opt := Options{Iterations: 80, Seed: 21}

	first, err := Run(SAM, inst, opt)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if first.Experiments == 0 {
		t.Fatalf("first run paid no experiments; the cache must still charge unique measurements")
	}
	second, err := Run(SAM, inst, opt)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if second.Experiments != 0 {
		t.Fatalf("second identical run paid %d experiments, want 0 (all served from the interposed cache)", second.Experiments)
	}
	if first.Config != second.Config || first.SearchE != second.SearchE ||
		first.Measured != second.Measured || first.MeasuredEnergy != second.MeasuredEnergy {
		t.Fatalf("cached run diverged:\n%+v\n%+v", first, second)
	}

	// A fresh instance without the cache reproduces the same result:
	// interposing a cache never changes a value.
	plain := &Instance{Schema: space.PaperSchema(), Measurer: NewMeasurer(platform, w)}
	third, err := Run(SAM, plain, opt)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if third.Config != first.Config || third.Measured != first.Measured {
		t.Fatalf("cache changed the result:\n%+v\n%+v", first, third)
	}
}
