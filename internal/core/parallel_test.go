package core

import (
	"reflect"
	"testing"

	"hetopt/internal/dna"
)

// TestRunDeterministicAcrossParallelism is the engine's core contract:
// for a fixed seed the returned Result is bit-identical at every
// parallelism level, for every method, with and without restarts.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	cases := []struct {
		name string
		m    Method
		opt  Options
	}{
		{"EM", EM, Options{}},
		{"EML", EML, Options{}},
		{"SAM", SAM, Options{Iterations: 300, Seed: 5}},
		{"SAML", SAML, Options{Iterations: 300, Seed: 5}},
		{"SAM-restarts", SAM, Options{Iterations: 200, Seed: 5, Restarts: 4}},
		{"SAML-restarts", SAML, Options{Iterations: 200, Seed: 5, Restarts: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want Result
			for i, p := range []int{1, 4, 8} {
				opt := tc.opt
				opt.Parallelism = p
				res, err := Run(tc.m, inst, opt)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = res
					continue
				}
				if !reflect.DeepEqual(want, res) {
					t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, res)
				}
			}
		})
	}
}

// TestEnumerationUniqueEvaluations checks the cache-hit accounting
// invariant: EM over the full space performs exactly |space| unique
// evaluations (plus the one fair-comparison measurement), at any
// parallelism level.
func TestEnumerationUniqueEvaluations(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	for _, p := range []int{1, 4} {
		inst.Measurer.ResetCount()
		res, err := Run(EM, inst, Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if res.SearchEvaluations != inst.Schema.Size() {
			t.Fatalf("p=%d: EM evaluated %d configs, want %d", p, res.SearchEvaluations, inst.Schema.Size())
		}
		if got := inst.Measurer.Count(); got != inst.Schema.Size()+1 {
			t.Fatalf("p=%d: measurer saw %d experiments, want %d", p, got, inst.Schema.Size()+1)
		}
	}
}

// TestRestartsShareCache checks that multi-chain SAM deduplicates
// repeated configurations: the experiments consumed must equal the number
// of distinct configurations visited (plus the final measurement), which
// is strictly less than the total evaluation count once chains overlap.
func TestRestartsShareCache(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	inst.Measurer.ResetCount()
	res, err := Run(SAM, inst, Options{Iterations: 300, Seed: 5, Restarts: 6})
	if err != nil {
		t.Fatal(err)
	}
	// 6 chains x (1 initial + 300 candidates) lookups.
	if want := 6 * 301; res.SearchEvaluations != want {
		t.Fatalf("search evaluations = %d, want %d", res.SearchEvaluations, want)
	}
	if res.Experiments >= res.SearchEvaluations {
		t.Fatalf("experiments %d not deduplicated below %d lookups (the small space guarantees chain overlap)",
			res.Experiments, res.SearchEvaluations)
	}
	if res.Experiments != inst.Measurer.Count() {
		t.Fatalf("result reports %d experiments, measurer saw %d", res.Experiments, inst.Measurer.Count())
	}
}

// TestRestartsNeverWorseThanChainZero: the multi-chain winner is a min
// over a set containing chain 0's outcome, so its search energy cannot be
// worse than the single-chain run with the same seed.
func TestRestartsNeverWorseThanChainZero(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	single, err := Run(SAM, inst, Options{Iterations: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(SAM, inst, Options{Iterations: 200, Seed: 7, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if multi.SearchE > single.SearchE {
		t.Fatalf("5 chains (%g) worse than chain 0 alone (%g)", multi.SearchE, single.SearchE)
	}
}

// TestParallelEnumerationMatchesSequentialScan verifies the sharded
// enumeration against the seed implementation's sequential semantics:
// lowest energy wins, earliest configuration among ties.
func TestParallelEnumerationMatchesSequentialScan(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	seq, err := Run(EM, inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 7, 16} {
		par, err := Run(EM, inst, Options{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if par.Config != seq.Config || par.SearchE != seq.SearchE {
			t.Fatalf("p=%d: %v (%g) != sequential %v (%g)", p, par.Config, par.SearchE, seq.Config, seq.SearchE)
		}
	}
}

// TestPredictorConcurrentUse drives one Predictor from many goroutines;
// run under -race this guards the memo tables.
func TestPredictorConcurrentUse(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	res1, err := Run(EML, inst, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(EML, inst, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("concurrent EML diverged: %+v vs %+v", res1, res2)
	}
}
