package core

import (
	"math"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/strategy"
)

// TestRooflineBoundAdmissible checks the pruning oracle's contract
// directly: the root bound (nothing fixed) and every fully-fixed bound
// stay at or below the measured objective of the corresponding
// configuration, for each built-in objective.
func TestRooflineBoundAdmissible(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	schema := smallSchema(t)
	meas := NewMeasurer(platform, w)
	for _, obj := range []Objective{
		TimeObjective{},
		EnergyObjective{},
		WeightedSumObjective{Alpha: 0.5},
		TimeBoundedObjective{TimeBoundSec: 1},
	} {
		b := newRooflineBounder(schema, platform, w, obj)
		if b == nil {
			t.Fatalf("%s: no bounder for a measurable schema", obj.Name())
		}
		p := &boundedSearchProblem{
			searchProblem: &searchProblem{schema: schema, eval: meas, obj: obj},
			b:             b,
		}
		dim := schema.Space().Dim()
		state := make([]int, dim)
		root := p.LowerBound(state, 0)
		var walk func(d int)
		walk = func(d int) {
			if d == dim {
				e, err := p.Energy(state)
				if err != nil {
					t.Fatal(err)
				}
				if lb := p.LowerBound(state, dim); lb > e {
					t.Fatalf("%s: bound %g above measured %g at %v", obj.Name(), lb, e, state)
				}
				if root > e {
					t.Fatalf("%s: root bound %g above measured %g", obj.Name(), root, e)
				}
				return
			}
			for v := 0; v < schema.Space().Params[d].Levels(); v++ {
				state[d] = v
				walk(d + 1)
			}
			state[d] = 0
		}
		walk(0)
	}
}

// TestExactRunMatchesEnumeration is the acceptance check on a real
// schema: the exact strategy reproduces EM's optimum with a proved
// certificate while exploring strictly fewer states than the space
// holds.
func TestExactRunMatchesEnumeration(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	inst := &Instance{Schema: smallSchema(t), Measurer: NewMeasurer(platform, w)}

	em, err := Run(EM, inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Run(EM, inst, Options{Strategy: strategy.Exact{Prove: true, PoolSize: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Config != em.Config || ex.SearchE != em.SearchE {
		t.Fatalf("exact found %v (%g), enumeration %v (%g)",
			ex.Config, ex.SearchE, em.Config, em.SearchE)
	}
	cert, ok := ex.Certificate()
	if !ok || !cert.Optimal || cert.Gap != 0 {
		t.Fatalf("exact run not certified: %+v (ok=%v)", cert, ok)
	}
	size := inst.Schema.Size()
	if cert.Explored+cert.Pruned != size {
		t.Fatalf("Explored+Pruned = %d+%d, want space size %d", cert.Explored, cert.Pruned, size)
	}
	if cert.Explored >= size || cert.Pruned == 0 {
		t.Fatalf("no real pruning: explored %d of %d (pruned %d)", cert.Explored, size, cert.Pruned)
	}
	if _, ok := em.Certificate(); ok {
		t.Fatal("plain enumeration must not fabricate a certificate")
	}
	if len(ex.Pool) == 0 || ex.Pool[0].Config != ex.Config || ex.Pool[0].Objective != ex.SearchE {
		t.Fatalf("pool[0] should be the optimum: %+v", ex.Pool)
	}
	for i := 1; i < len(ex.Pool); i++ {
		if ex.Pool[i].Objective < ex.Pool[i-1].Objective {
			t.Fatal("pool not sorted by objective")
		}
	}
}

// TestExactRunEnergyObjective repeats the equivalence under the energy
// objective, where the bound composes the idle-power floor.
func TestExactRunEnergyObjective(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	inst := &Instance{Schema: smallSchema(t), Measurer: NewMeasurer(platform, w)}
	opt := Options{Objective: EnergyObjective{}}

	em, err := Run(EM, inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	exOpt := opt
	exOpt.Strategy = strategy.Exact{Prove: true}
	ex, err := Run(EM, inst, exOpt)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Config != em.Config || ex.SearchE != em.SearchE {
		t.Fatalf("exact found %v (%g), enumeration %v (%g)",
			ex.Config, ex.SearchE, em.Config, em.SearchE)
	}
	cert, ok := ex.Certificate()
	if !ok || !cert.Optimal {
		t.Fatalf("energy run not certified: %+v", cert)
	}
	if math.Abs(cert.LowerBound-ex.SearchE) > 0 {
		t.Fatalf("proved certificate must close the bound: LB %g, best %g", cert.LowerBound, ex.SearchE)
	}
}

// TestMLPathStaysUnbounded pins the admissibility guard: prediction-path
// runs must not get roofline bounds (a regression could prune the
// predicted optimum), so an exact SAML-style run certifies by plain
// exhaustion.
func TestMLPathStaysUnbounded(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	models := testModels(t, platform)
	pred, err := NewPredictor(models, w, platform.Model())
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{Schema: smallSchema(t), Measurer: NewMeasurer(platform, w), Predictor: pred}
	res, err := Run(EML, inst, Options{Strategy: strategy.Exact{Prove: true}})
	if err != nil {
		t.Fatal(err)
	}
	cert, ok := res.Certificate()
	if !ok || !cert.Optimal {
		t.Fatalf("ML exact run should certify by exhaustion: %+v", cert)
	}
	if cert.Pruned != 0 || cert.Explored != inst.Schema.Size() {
		t.Fatalf("ML path must not prune: %+v", cert)
	}
}
