package core

import (
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// TestPredictorEvaluateSteadyStateZeroAllocs pins the steady-state
// prediction path as allocation-free: with both per-side memos warm and
// the power tables built, Evaluate is lookups and arithmetic only. The
// model-based methods (EML, SAML) spend their entire search budget on
// this path.
func TestPredictorEvaluateSteadyStateZeroAllocs(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	models := testModels(t, platform)
	pred, err := NewPredictor(models, w, platform.Model())
	if err != nil {
		t.Fatal(err)
	}
	cfg := space.Config{
		HostThreads: 48, HostAffinity: machine.AffinityScatter,
		DeviceThreads: 240, DeviceAffinity: machine.AffinityBalanced,
		HostFraction: 60,
	}
	if _, err := pred.Evaluate(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := pred.Evaluate(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Evaluate allocates %g allocs/op, want 0", allocs)
	}
}
