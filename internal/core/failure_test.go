package core

import (
	"fmt"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// faultyEvaluator fails after a set number of evaluations, simulating a
// testbed that dies mid-campaign.
type faultyEvaluator struct {
	inner     Evaluator
	remaining int
}

func (f *faultyEvaluator) Evaluate(cfg space.Config) (offload.Measurement, error) {
	if f.remaining <= 0 {
		return offload.Measurement{}, fmt.Errorf("injected evaluator failure")
	}
	f.remaining--
	return f.inner.Evaluate(cfg)
}

func TestEnumerationPropagatesEvaluatorFailure(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	inst := &Instance{
		Schema:   smallSchema(t),
		Measurer: NewMeasurer(platform, w),
	}
	// Wrap the real measurer through the search helper directly: the
	// injected failure must abort the run with the injected error.
	faulty := &faultyEvaluator{inner: inst.Measurer, remaining: 7}
	p := &searchProblem{schema: inst.Schema, eval: faulty, obj: TimeObjective{}}
	_, _, err := searchWith(strategy.Exhaustive{}, p, inst.Schema, Options{})
	if err == nil {
		t.Fatal("enumeration should propagate evaluator failure")
	}
	if got := err.Error(); got != "injected evaluator failure" {
		t.Fatalf("unexpected error %q", got)
	}
}

func TestAnnealSearchPropagatesEvaluatorFailure(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	inst := &Instance{Schema: smallSchema(t), Measurer: NewMeasurer(platform, w)}
	faulty := &faultyEvaluator{inner: inst.Measurer, remaining: 12}
	opt := Options{Iterations: 100, Seed: 1}
	p := &searchProblem{schema: inst.Schema, eval: faulty, obj: TimeObjective{}}
	_, _, err := searchWith(opt.strategyFor(SAM), p, inst.Schema, opt)
	if err == nil {
		t.Fatal("annealing should propagate evaluator failure")
	}
}

func TestRunSurvivesExactBudgetBoundary(t *testing.T) {
	// A failure exactly after the final fair-comparison measurement must
	// not surface: SAM with N iterations consumes N+2 measurements.
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	inst := &Instance{Schema: smallSchema(t), Measurer: NewMeasurer(platform, w)}
	res, err := Run(SAM, inst, Options{Iterations: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiments != 52 {
		t.Fatalf("experiments = %d, want 52", res.Experiments)
	}
}

func TestPredictorRejectsInvalidThreads(t *testing.T) {
	platform := offload.NewPlatform()
	models := testModels(t, platform)
	// Prediction for thread counts outside the machine's range must
	// still produce a finite number (models extrapolate); the offload
	// layer is where hardware validity is enforced. Verify the split of
	// responsibilities.
	v, err := models.PredictHost(1024, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatal("prediction must stay positive")
	}
	w := offload.GenomeWorkload(dna.Human)
	cfg := space.Config{HostThreads: -3, HostAffinity: 1, DeviceThreads: 240, DeviceAffinity: 3, HostFraction: 50}
	if _, err := platform.Measure(w, cfg, 0); err == nil {
		t.Fatal("measurement with negative threads must fail")
	}
}
