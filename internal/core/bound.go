package core

import (
	"math"

	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// This file derives admissible lower bounds on the objective of any
// configuration extending a partially-fixed one — the pruning oracle of
// the exact branch-and-bound strategy (internal/exact) over divisible
// schemas. The bound is a roofline relaxation of the analytic model
// (perf.Model): per-side compute time is bounded by the best streaming
// rate any allowed thread/affinity choice achieves, fixed setup and
// thread-spawn costs are dropped (they only add time), offload latency
// and the non-overlappable transfer residual are kept (every device
// share pays them), and multiplicative measurement noise is floored at
// its clamped minimum draw. Every simplification only lowers the value,
// so the bound never exceeds the measured objective of any completion —
// which is what lets the solver prune without losing the optimum.
//
// Bounds apply to the measurement path only. ML predictions (EML/SAML)
// are regression outputs with no floor: a tree can predict a time below
// any physical bound, so pruning on the roofline could discard the
// predicted optimum. Run therefore attaches bounds only when the method
// measures.

// noiseFloor is the smallest multiplicative noise factor perf.Model can
// draw for a relative std sigma: z is clamped to [-3, 3] and the factor
// to >= 0.01.
func noiseFloor(sigma float64) float64 {
	return math.Max(0.01, 1-3*sigma)
}

// rooflineBounder precomputes, per schema level, everything LowerBound
// needs so the per-node cost is a handful of table scans and a loop over
// the allowed fractions — pure, allocation-free and concurrent-safe.
type rooflineBounder struct {
	obj Objective

	// hostRate[ti][ai] and devRate[ti][ai] are modeled streaming rates in
	// MB/s for the schema's i-th thread and affinity values.
	hostRate, devRate [][]float64
	// hostFloor[ai] is the per-affinity host noise floor (AffinityNone
	// draws wider noise); devFloor and the power floors are uniform.
	hostFloor           []float64
	devFloor            float64
	hostPowerFloor      float64
	devicePowerFloor    float64
	hostIdleW, devIdleW float64

	// hostMB[fi] and devMB[fi] are the per-side shares of the workload at
	// the schema's i-th fraction value; workSec terms use complexity.
	hostMB, devMB []float64
	cx            float64
	offloadSec    float64
	pcieRateMBs   float64
	residual      float64
}

// newRooflineBounder builds the pruning oracle for a schema evaluated by
// measurement on the platform. It returns nil when no admissible bound
// is available: an objective outside the built-in four, or a model that
// rejects one of the schema's thread/affinity combinations.
func newRooflineBounder(schema *space.Schema, platform *offload.Platform, w offload.Workload, obj Objective) *rooflineBounder {
	if schema == nil || platform == nil {
		return nil
	}
	switch obj.(type) {
	case nil, TimeObjective, EnergyObjective, WeightedSumObjective, TimeBoundedObjective:
	default:
		return nil
	}
	m := platform.Model()
	if m == nil {
		return nil
	}
	traits := w.Traits()
	b := &rooflineBounder{
		obj:              obj,
		devFloor:         noiseFloor(m.Cal.NoiseStdDevice),
		hostPowerFloor:   noiseFloor(m.Cal.NoiseStdHostPower),
		devicePowerFloor: noiseFloor(m.Cal.NoiseStdDevicePower),
		hostIdleW:        m.Cal.HostIdleW,
		devIdleW:         m.Cal.DeviceIdleW,
		cx:               traits.Complexity,
		offloadSec:       m.Cal.OffloadLatencySec,
		pcieRateMBs:      m.Cal.PCIeRateMBs,
		residual:         m.Cal.TransferResidual,
	}
	if b.cx <= 0 {
		b.cx = 1
	}
	hostThreads := schema.HostThreadValues()
	hostAff := schema.HostAffinityValues()
	devThreads := schema.DeviceThreadValues()
	devAff := schema.DeviceAffinityValues()
	if len(hostThreads) == 0 || len(hostAff) == 0 || len(devThreads) == 0 || len(devAff) == 0 {
		return nil
	}
	b.hostRate = make([][]float64, len(hostThreads))
	for ti, threads := range hostThreads {
		b.hostRate[ti] = make([]float64, len(hostAff))
		for ai, aff := range hostAff {
			r, err := m.HostThroughputFor(threads, aff, traits)
			if err != nil || !(r > 0) {
				return nil
			}
			b.hostRate[ti][ai] = r
		}
	}
	b.devRate = make([][]float64, len(devThreads))
	for ti, threads := range devThreads {
		b.devRate[ti] = make([]float64, len(devAff))
		for ai, aff := range devAff {
			r, err := m.DeviceThroughputFor(threads, aff, traits)
			if err != nil || !(r > 0) {
				return nil
			}
			b.devRate[ti][ai] = r
		}
	}
	b.hostFloor = make([]float64, len(hostAff))
	for ai, aff := range hostAff {
		sigma := m.Cal.NoiseStdHost
		if aff == machine.AffinityNone {
			sigma *= m.Cal.NoiseNoneFactor
		}
		b.hostFloor[ai] = noiseFloor(sigma)
	}
	fracs := schema.FractionValues()
	b.hostMB = make([]float64, len(fracs))
	b.devMB = make([]float64, len(fracs))
	for fi, f := range fracs {
		b.hostMB[fi] = w.SizeMB * f / 100
		b.devMB[fi] = w.SizeMB - b.hostMB[fi]
	}
	return b
}

// allowed returns the index range [lo, hi) dimension d may still take
// under prefix[:fixed]: the single fixed value, or every level.
func allowed(prefix []int, fixed, d, levels int) (int, int) {
	if d < fixed {
		return prefix[d], prefix[d] + 1
	}
	return 0, levels
}

// LowerBound implements exact.Bounded (via the search problem wrapper):
// an admissible bound on the objective of any configuration whose first
// `fixed` schema dimensions match prefix. Fixing one more dimension only
// shrinks the maximized rate sets and the minimized fraction set, so the
// bound is monotone along every tree path, as the solver requires.
func (b *rooflineBounder) LowerBound(prefix []int, fixed int) float64 {
	// Best achievable rates and lowest noise floors over the still-allowed
	// thread/affinity choices (dims 0-3; see space.Param* ordering).
	htLo, htHi := allowed(prefix, fixed, space.ParamHostThreads, len(b.hostRate))
	haLo, haHi := allowed(prefix, fixed, space.ParamHostAffinity, len(b.hostFloor))
	dtLo, dtHi := allowed(prefix, fixed, space.ParamDeviceThreads, len(b.devRate))
	daLo, daHi := allowed(prefix, fixed, space.ParamDeviceAffinity, len(b.devRate[0]))
	hostRate, hostFloor := 0.0, math.Inf(1)
	for ti := htLo; ti < htHi; ti++ {
		for ai := haLo; ai < haHi; ai++ {
			if r := b.hostRate[ti][ai]; r > hostRate {
				hostRate = r
			}
		}
	}
	for ai := haLo; ai < haHi; ai++ {
		if f := b.hostFloor[ai]; f < hostFloor {
			hostFloor = f
		}
	}
	devRate := 0.0
	for ti := dtLo; ti < dtHi; ti++ {
		for ai := daLo; ai < daHi; ai++ {
			if r := b.devRate[ti][ai]; r > devRate {
				devRate = r
			}
		}
	}
	fLo, fHi := allowed(prefix, fixed, space.ParamHostFraction, len(b.hostMB))
	best := math.Inf(1)
	for fi := fLo; fi < fHi; fi++ {
		hostMB, devMB := b.hostMB[fi], b.devMB[fi]
		var tH, tD, lbE float64
		if hostMB > 0 {
			tH = hostFloor * hostMB * b.cx / hostRate
		}
		if devMB > 0 {
			transfer := devMB / b.pcieRateMBs
			tD = b.devFloor * (b.offloadSec + math.Max(devMB*b.cx/devRate, transfer) + b.residual*transfer)
		}
		lbT := math.Max(tH, tD)
		// Every engaged side draws at least idle power for the whole
		// makespan, and the makespan is at least lbT.
		if hostMB > 0 {
			lbE += b.hostIdleW * b.hostPowerFloor * lbT
		}
		if devMB > 0 {
			lbE += b.devIdleW * b.devicePowerFloor * lbT
		}
		if v := b.objectiveBound(lbT, lbE); v < best {
			best = v
		}
	}
	return best
}

// objectiveBound composes per-fraction time and energy bounds under the
// run's objective. All four built-in objectives are monotone in both
// arguments, so feeding them lower bounds yields a lower bound.
func (b *rooflineBounder) objectiveBound(lbT, lbE float64) float64 {
	switch o := b.obj.(type) {
	case EnergyObjective:
		return lbE
	case WeightedSumObjective:
		scale := o.PowerScaleW
		if scale <= 0 {
			scale = DefaultPowerScaleW
		}
		return o.Alpha*lbT + (1-o.Alpha)*lbE/scale
	case TimeBoundedObjective:
		v := lbE
		if lbT > o.TimeBoundSec {
			penalty := o.PenaltyW
			if penalty <= 0 {
				penalty = DefaultBoundPenaltyW
			}
			v += penalty * (lbT - o.TimeBoundSec)
		}
		return v
	default: // nil or TimeObjective
		return lbT
	}
}

// boundedSearchProblem pairs the search-space adapter with the roofline
// pruning oracle. It is a distinct type (rather than an optional field
// on searchProblem) so that only measurement-path problems advertise
// LowerBound: the strategy layer's memo wrapper and the exact solver
// detect bounds by method set.
type boundedSearchProblem struct {
	*searchProblem
	b *rooflineBounder
}

// LowerBound implements exact.Bounded.
func (p *boundedSearchProblem) LowerBound(prefix []int, fixed int) float64 {
	return p.b.LowerBound(prefix, fixed)
}

// NewBoundedSearchProblem is NewSearchProblem plus the roofline pruning
// oracle when one is available: the measurement platform and workload
// derive admissible bounds for the exact strategy, falling back to the
// plain (bound-free, still exactly solvable by certified enumeration)
// adapter when the objective or model does not admit one. The evaluator
// must be measurement-backed — attaching roofline bounds to an ML
// predictor could prune the predicted optimum.
func NewBoundedSearchProblem(schema *space.Schema, eval Evaluator, obj Objective, mode space.NeighborMode, platform *offload.Platform, w offload.Workload) strategy.Spaced {
	sp := NewSearchProblem(schema, eval, obj, mode)
	base, ok := sp.(*searchProblem)
	if !ok {
		return sp
	}
	if b := newRooflineBounder(schema, platform, w, obj); b != nil {
		return &boundedSearchProblem{searchProblem: base, b: b}
	}
	return sp
}
