package core

import (
	"fmt"
	"math"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// fp64 renders a float64 by its exact bit pattern so golden comparisons
// assert bit-identity, not formatted approximations.
func fp64(x float64) string { return fmt.Sprintf("%016x", math.Float64bits(x)) }

// resultFingerprint folds every numeric field of a Result into one
// comparable string.
func resultFingerprint(r Result) string {
	return fmt.Sprintf("%v|%v|%s|%s|%s|%s|%s|%s|%s|%d|%d",
		r.Method, r.Config, fp64(r.SearchE),
		fp64(r.Measured.Host), fp64(r.Measured.Device),
		fp64(r.MeasuredEnergy.Host), fp64(r.MeasuredEnergy.Device),
		r.Objective, fp64(r.MeasuredObjective),
		r.SearchEvaluations, r.Experiments)
}

// TestDNAPaperPlatformGolden pins the DNA-on-paper-platform results of
// all four methods to golden values captured before the scenario-layer
// refactor. Any change to these fingerprints means the refactor altered
// the semantics of the paper reproduction, which is forbidden: scenario
// plumbing must leave the default scenario bit-identical.
func TestDNAPaperPlatformGolden(t *testing.T) {
	platform := offload.NewPlatform()
	w := offload.GenomeWorkload(dna.Human)
	models := testModels(t, platform)
	pred, err := NewPredictor(models, w, platform.Model())
	if err != nil {
		t.Fatal(err)
	}
	inst := &Instance{
		Schema:    space.PaperSchema(),
		Measurer:  NewMeasurer(platform, w),
		Predictor: pred,
	}
	golden := map[Method]string{
		EM:   "EM|60/40 host(48T,compact) device(240T,balanced)|3fd77e3deaee3406|3fd77e3deaee3406|3fd73951bea1a10c|4051d6e9c34f1a83|405b2bb347afbc99|time|3fd77e3deaee3406|19926|19927",
		EML:  "EML|57.5/42.5 host(48T,scatter) device(180T,balanced)|3fd9962596f6f7ed|3fd8867e1c6f80aa|3fd8d90bcb4be539|405341a14f91ae69|405c10e1947f0e22|time|3fd8d90bcb4be539|19926|1",
		SAM:  "SAM|60/40 host(48T,compact) device(240T,balanced)|3fd77e3deaee3406|3fd77e3deaee3406|3fd73951bea1a10c|4051d6e9c34f1a83|405b2bb347afbc99|time|3fd77e3deaee3406|301|302",
		SAML: "SAML|50/50 host(24T,none) device(240T,compact)|3fda38ced2e9e58d|3fdcaa50d81e25f3|3fdb88e305d6f187|40555dca2bd940df|4060bac5466757aa|time|3fdcaa50d81e25f3|301|1",
	}
	for _, m := range Methods() {
		res, err := Run(m, inst, Options{Iterations: 300, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := resultFingerprint(res); got != golden[m] {
			t.Errorf("%v diverged from the pre-scenario-layer golden:\n got  %s\n want %s", m, got, golden[m])
		}
	}
}
