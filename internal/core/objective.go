package core

import (
	"fmt"
	"math"
	"strings"

	"hetopt/internal/offload"
)

// Objective maps one evaluated configuration — its aggregate execution
// time in seconds (max over processing units) and its consumed energy in
// joules (sum over engaged units) — to the scalar the search minimizes.
// The paper optimizes time only (Equation 2); the bi-objective extension
// follows Khaleghzadeh et al. in treating the workload distribution as
// the lever trading performance against energy.
//
// Implementations must be pure functions of their two arguments: the
// concurrent search engine assumes that equal measurements score equally
// regardless of goroutine scheduling, which is what keeps results
// bit-identical at every parallelism level.
type Objective interface {
	// Name identifies the objective in reports and results.
	Name() string
	// Value scores an evaluation; lower is better.
	Value(timeSec, energyJ float64) float64
}

// TimeObjective is the paper's objective: minimize the makespan
// E = max(T_host, T_device). It is the default everywhere.
type TimeObjective struct{}

// Name implements Objective.
func (TimeObjective) Name() string { return "time" }

// Value implements Objective.
func (TimeObjective) Value(timeSec, energyJ float64) float64 { return timeSec }

// EnergyObjective minimizes the total joules consumed across engaged
// processing units, regardless of how long the run takes.
type EnergyObjective struct{}

// Name implements Objective.
func (EnergyObjective) Name() string { return "energy" }

// Value implements Objective.
func (EnergyObjective) Value(timeSec, energyJ float64) float64 { return energyJ }

// DefaultPowerScaleW converts joules into time-equivalent seconds inside
// WeightedSumObjective: 1 second trades against DefaultPowerScaleW
// joules. The default is deliberately below the platform's typical draw
// (~200-300 W) so that alpha = 0.5 visibly pulls the distribution toward
// the energy-efficient unit instead of rounding to the time optimum.
const DefaultPowerScaleW = 50.0

// WeightedSumObjective is the scalarized bi-objective
//
//	alpha * T + (1-alpha) * E / PowerScaleW
//
// with T in seconds and E in joules. Alpha = 1 reduces to TimeObjective,
// alpha = 0 to a rescaled EnergyObjective; PowerScaleW <= 0 selects
// DefaultPowerScaleW.
type WeightedSumObjective struct {
	// Alpha is the time weight in [0,1].
	Alpha float64
	// PowerScaleW converts joules to equivalent seconds.
	PowerScaleW float64
}

// Name implements Objective.
func (o WeightedSumObjective) Name() string {
	return fmt.Sprintf("weighted(alpha=%g)", o.Alpha)
}

// Value implements Objective.
func (o WeightedSumObjective) Value(timeSec, energyJ float64) float64 {
	scale := o.PowerScaleW
	if scale <= 0 {
		scale = DefaultPowerScaleW
	}
	return o.Alpha*timeSec + (1-o.Alpha)*energyJ/scale
}

// DefaultBoundPenaltyW is the penalty slope of TimeBoundedObjective:
// joule-equivalents charged per second of bound violation. It is large
// enough that any feasible configuration beats every infeasible one, yet
// finite so simulated annealing still feels a gradient back into the
// feasible region.
const DefaultBoundPenaltyW = 1e6

// TimeBoundedObjective is the constrained mode: minimize energy subject
// to the makespan staying within TimeBoundSec. Violations are penalized
// linearly rather than scored +Inf so annealing chains that wander out of
// the feasible region are pulled back instead of random-walking.
// Construct the bound from a time-optimal run, e.g. via RunWithTimeSlack.
type TimeBoundedObjective struct {
	// TimeBoundSec is the makespan budget in seconds.
	TimeBoundSec float64
	// PenaltyW is the violation slope; <= 0 selects DefaultBoundPenaltyW.
	PenaltyW float64
}

// Name implements Objective.
func (o TimeBoundedObjective) Name() string {
	return fmt.Sprintf("bounded(T<=%.4gs)", o.TimeBoundSec)
}

// Value implements Objective.
func (o TimeBoundedObjective) Value(timeSec, energyJ float64) float64 {
	v := energyJ
	if timeSec > o.TimeBoundSec {
		penalty := o.PenaltyW
		if penalty <= 0 {
			penalty = DefaultBoundPenaltyW
		}
		v += penalty * (timeSec - o.TimeBoundSec)
	}
	return v
}

// ParseObjective converts a CLI-style objective name ("time", "energy",
// "weighted") into an Objective; alpha is only consulted by "weighted".
// The constrained mode is not parseable here because its time bound comes
// from a preceding time-optimal run — see RunWithTimeSlack.
func ParseObjective(name string, alpha float64) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "time":
		return TimeObjective{}, nil
	case "energy":
		return EnergyObjective{}, nil
	case "weighted":
		if alpha < 0 || alpha > 1 {
			return nil, fmt.Errorf("core: weighted objective needs alpha in [0,1], got %g", alpha)
		}
		return WeightedSumObjective{Alpha: alpha}, nil
	default:
		return nil, fmt.Errorf("core: unknown objective %q (want time, energy or weighted)", name)
	}
}

// objectiveValue scores a measurement under obj, defaulting to the
// paper's time objective when obj is nil.
func objectiveValue(obj Objective, m offload.Measurement) float64 {
	if obj == nil {
		return m.E()
	}
	return obj.Value(m.E(), m.Joules())
}

// RunWithTimeSlack is the constrained bi-objective pipeline: it first
// runs method m under the time objective to establish the best achievable
// makespan T_best, then re-runs it minimizing energy subject to
// T <= (1+slack)*T_best. It returns both results; the first is the
// time-optimal reference, the second the energy-minimal configuration
// within the slack. slack must be non-negative.
func RunWithTimeSlack(m Method, inst *Instance, opt Options, slack float64) (timeRes, energyRes Result, err error) {
	if slack < 0 || math.IsNaN(slack) {
		return Result{}, Result{}, fmt.Errorf("core: time slack %g must be non-negative", slack)
	}
	timeOpt := opt
	timeOpt.Objective = TimeObjective{}
	timeRes, err = Run(m, inst, timeOpt)
	if err != nil {
		return Result{}, Result{}, err
	}
	bound := (1 + slack) * timeRes.MeasuredE()
	bobj := TimeBoundedObjective{TimeBoundSec: bound}
	boundOpt := opt
	boundOpt.Objective = bobj
	energyRes, err = Run(m, inst, boundOpt)
	if err != nil {
		return Result{}, Result{}, err
	}
	// Predict-then-measure methods (EML/SAML) search the bound on
	// predictions and can land just outside it — or on a higher-energy
	// configuration — once measured. The time optimum is itself feasible
	// by construction, so the constrained result is never allowed to be
	// worse than the reference in both dimensions. The fallback keeps
	// the bounded run's effort accounting: that search still executed.
	if energyRes.MeasuredE() > bound || energyRes.MeasuredJ() > timeRes.MeasuredJ() {
		fallback := timeRes
		fallback.Objective = bobj.Name()
		fallback.MeasuredObjective = bobj.Value(fallback.MeasuredE(), fallback.MeasuredJ())
		fallback.SearchEvaluations = energyRes.SearchEvaluations
		fallback.Experiments = energyRes.Experiments
		energyRes = fallback
	}
	return timeRes, energyRes, nil
}
