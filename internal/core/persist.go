package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"hetopt/internal/ml"
)

// Model persistence implements the off-line learning usage the paper
// describes (train once, reuse the predictor for new inputs): a trained
// Models bundle round-trips through an opaque binary file. Only
// boosted-tree models persist — the linear/Poisson baselines retrain in
// milliseconds.

// persistedModels is the single serialized message. The ensembles are
// nested as pre-encoded blobs: gob decoders buffer ahead on plain readers
// (files), so the whole bundle must be one message.
type persistedModels struct {
	Kind       RegressorKind
	HostNorm   ml.Normalizer
	DeviceNorm ml.Normalizer
	HostEval   savedEval
	DeviceEval savedEval
	HostModel  []byte
	DevModel   []byte
}

// savedEval keeps the headline accuracy with the model so reports survive
// a reload (the per-sample test data does not persist).
type savedEval struct {
	N                                   int
	MeanAbsoluteError, MeanPercentError float64
	RMSE, R2                            float64
}

func toSavedEval(e ml.Evaluation) savedEval {
	return savedEval{N: e.N, MeanAbsoluteError: e.MeanAbsoluteError, MeanPercentError: e.MeanPercentError, RMSE: e.RMSE, R2: e.R2}
}

func fromSavedEval(s savedEval) ml.Evaluation {
	return ml.Evaluation{N: s.N, MeanAbsoluteError: s.MeanAbsoluteError, MeanPercentError: s.MeanPercentError, RMSE: s.RMSE, R2: s.R2}
}

// Save writes the trained models to w. Only BoostedTrees models are
// supported.
func (m *Models) Save(w io.Writer) error {
	host, ok := m.Host.(*ml.BoostedTrees)
	if !ok {
		return fmt.Errorf("core: only boosted-tree models persist (host is %T)", m.Host)
	}
	device, ok := m.Device.(*ml.BoostedTrees)
	if !ok {
		return fmt.Errorf("core: only boosted-tree models persist (device is %T)", m.Device)
	}
	if m.HostNorm == nil || m.DeviceNorm == nil {
		return fmt.Errorf("core: models missing normalizers")
	}
	var hostBlob, devBlob bytes.Buffer
	if err := host.Save(&hostBlob); err != nil {
		return err
	}
	if err := device.Save(&devBlob); err != nil {
		return err
	}
	header := persistedModels{
		Kind:       m.Kind,
		HostNorm:   *m.HostNorm,
		DeviceNorm: *m.DeviceNorm,
		HostEval:   toSavedEval(m.HostReport.Eval),
		DeviceEval: toSavedEval(m.DeviceReport.Eval),
		HostModel:  hostBlob.Bytes(),
		DevModel:   devBlob.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(header); err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}
	return nil
}

// LoadModels reads a bundle written by Save. The restored reports carry
// the headline accuracy numbers but no per-sample test data.
func LoadModels(r io.Reader) (*Models, error) {
	var header persistedModels
	if err := gob.NewDecoder(r).Decode(&header); err != nil {
		return nil, fmt.Errorf("core: loading models: %w", err)
	}
	if header.Kind != BoostedTrees {
		return nil, fmt.Errorf("core: persisted kind %v unsupported", header.Kind)
	}
	host, err := ml.LoadBoostedTrees(bytes.NewReader(header.HostModel))
	if err != nil {
		return nil, fmt.Errorf("core: host model: %w", err)
	}
	device, err := ml.LoadBoostedTrees(bytes.NewReader(header.DevModel))
	if err != nil {
		return nil, fmt.Errorf("core: device model: %w", err)
	}
	hostNorm := header.HostNorm
	deviceNorm := header.DeviceNorm
	return &Models{
		Kind:         header.Kind,
		Host:         host,
		Device:       device,
		HostNorm:     &hostNorm,
		DeviceNorm:   &deviceNorm,
		HostReport:   SideReport{Eval: fromSavedEval(header.HostEval)},
		DeviceReport: SideReport{Eval: fromSavedEval(header.DeviceEval)},
	}, nil
}

// SaveModelsFile and LoadModelsFile are file-path conveniences.
func SaveModelsFile(m *Models, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating model file: %w", err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModelsFile loads a model bundle from a file.
func LoadModelsFile(path string) (*Models, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: opening model file: %w", err)
	}
	defer f.Close()
	return LoadModels(f)
}
