package core

import (
	"fmt"

	"hetopt/internal/dna"
	"hetopt/internal/machine"
	"hetopt/internal/ml"
	"hetopt/internal/offload"
	"hetopt/internal/space"
)

// TrainingPlan describes the experiment grid used to generate training
// data for the performance-prediction models (Section III-B: "In total the
// data of about 7200 experiments were used").
type TrainingPlan struct {
	// Workloads are the inputs to measure. The paper plan lists the four
	// evaluation genomes; scenario plans list a workload family's size
	// presets so the per-side models learn that family's signature.
	Workloads []offload.Workload
	// Fractions are the input percentages measured per side (the paper
	// uses 2.5-100 in 2.5% steps).
	Fractions []float64
	// Host side grid.
	HostThreads    []int
	HostAffinities []machine.Affinity
	// Device side grid.
	DeviceThreads    []int
	DeviceAffinities []machine.Affinity
	// Trial selects the measurement-noise draw for data generation.
	Trial int
}

// PaperTrainingPlan reproduces the paper's grid: 4 genomes x 40 fractions
// x (6 host thread counts x 3 affinities + 9 device thread counts x 3
// affinities) = 2880 host + 4320 device = 7200 experiments.
func PaperTrainingPlan() TrainingPlan {
	fractions := make([]float64, 0, 40)
	for f := 2.5; f <= 100; f += 2.5 {
		fractions = append(fractions, f)
	}
	return TrainingPlan{
		Workloads:        GenomeWorkloads(),
		Fractions:        fractions,
		HostThreads:      []int{2, 6, 12, 24, 36, 48},
		HostAffinities:   []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact},
		DeviceThreads:    []int{2, 4, 8, 16, 30, 60, 120, 180, 240},
		DeviceAffinities: []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact},
	}
}

// GenomeWorkloads returns the paper's four evaluation genomes as
// workloads, in the paper's order.
func GenomeWorkloads() []offload.Workload {
	gs := dna.Genomes()
	out := make([]offload.Workload, len(gs))
	for i, g := range gs {
		out[i] = offload.GenomeWorkload(g)
	}
	return out
}

// Validate checks the plan is non-empty on every axis.
func (p TrainingPlan) Validate() error {
	switch {
	case len(p.Workloads) == 0:
		return fmt.Errorf("core: training plan has no workloads")
	case len(p.Fractions) == 0:
		return fmt.Errorf("core: training plan has no fractions")
	case len(p.HostThreads) == 0 || len(p.HostAffinities) == 0:
		return fmt.Errorf("core: training plan has an empty host grid")
	case len(p.DeviceThreads) == 0 || len(p.DeviceAffinities) == 0:
		return fmt.Errorf("core: training plan has an empty device grid")
	}
	for _, f := range p.Fractions {
		if f <= 0 || f > 100 {
			return fmt.Errorf("core: training fraction %g outside (0,100]", f)
		}
	}
	return nil
}

// HostExperiments returns the host-side experiment count.
func (p TrainingPlan) HostExperiments() int {
	return len(p.Workloads) * len(p.Fractions) * len(p.HostThreads) * len(p.HostAffinities)
}

// DeviceExperiments returns the device-side experiment count.
func (p TrainingPlan) DeviceExperiments() int {
	return len(p.Workloads) * len(p.Fractions) * len(p.DeviceThreads) * len(p.DeviceAffinities)
}

// GenerateHostData measures the host grid and assembles the training
// dataset: features (threads, size, affinity one-hot) -> host time.
func GenerateHostData(platform *offload.Platform, plan TrainingPlan) (*ml.Dataset, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	d := &ml.Dataset{FeatureNames: HostFeatureNames()}
	for _, w := range plan.Workloads {
		for _, f := range plan.Fractions {
			sizeMB := w.SizeMB * f / 100
			for _, n := range plan.HostThreads {
				for _, aff := range plan.HostAffinities {
					cfg := space.Config{
						HostThreads: n, HostAffinity: aff,
						// The device side is idle for host-only samples;
						// its values are irrelevant but must be valid.
						DeviceThreads: 2, DeviceAffinity: machine.AffinityBalanced,
						HostFraction: 100,
					}
					t, err := platform.Measure(w.Scaled(sizeMB), cfg, plan.Trial)
					if err != nil {
						return nil, fmt.Errorf("core: host sample (%s %g%% %dT %s): %w", w.Name, f, n, aff, err)
					}
					d.Append(hostFeatures(n, aff, sizeMB), t.Host)
				}
			}
		}
	}
	return d, nil
}

// GenerateDeviceData measures the device grid analogously.
func GenerateDeviceData(platform *offload.Platform, plan TrainingPlan) (*ml.Dataset, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	d := &ml.Dataset{FeatureNames: DeviceFeatureNames()}
	for _, w := range plan.Workloads {
		for _, f := range plan.Fractions {
			sizeMB := w.SizeMB * f / 100
			for _, n := range plan.DeviceThreads {
				for _, aff := range plan.DeviceAffinities {
					cfg := space.Config{
						HostThreads: 2, HostAffinity: machine.AffinityScatter,
						DeviceThreads: n, DeviceAffinity: aff,
						HostFraction: 0,
					}
					t, err := platform.Measure(w.Scaled(sizeMB), cfg, plan.Trial)
					if err != nil {
						return nil, fmt.Errorf("core: device sample (%s %g%% %dT %s): %w", w.Name, f, n, aff, err)
					}
					d.Append(deviceFeatures(n, aff, sizeMB), t.Device)
				}
			}
		}
	}
	return d, nil
}

// RegressorKind selects the regression algorithm; the paper compares
// BDTR against linear and Poisson regression before choosing BDTR.
type RegressorKind int

const (
	// BoostedTrees is Boosted Decision Tree Regression (the paper's
	// choice).
	BoostedTrees RegressorKind = iota
	// Linear is ordinary least squares.
	Linear
	// Poisson is Poisson regression with a log link.
	Poisson
)

// String implements fmt.Stringer.
func (k RegressorKind) String() string {
	switch k {
	case BoostedTrees:
		return "boosted-trees"
	case Linear:
		return "linear"
	case Poisson:
		return "poisson"
	default:
		return fmt.Sprintf("regressor(%d)", int(k))
	}
}

// TrainOptions configures Train.
type TrainOptions struct {
	// Kind selects the regressor; BoostedTrees by default.
	Kind RegressorKind
	// Boost configures boosted trees (ignored for other kinds). Zero
	// values select the package defaults tuned for the 7200-sample grid.
	Boost ml.BoostOptions
	// SplitSeed drives the train/test shuffle ("half of the experiments
	// for training and the other half for evaluation").
	SplitSeed int64
}

// SideReport holds the fitted artifacts and accuracy of one side's model.
type SideReport struct {
	// Eval is the accuracy on the held-out half (Equations 5 and 6).
	Eval ml.Evaluation
	// Test is the held-out half with raw (unnormalized) features, used by
	// the per-thread-count accuracy tables.
	Test *ml.Dataset
	// Predictions are the model outputs on Test, row-aligned.
	Predictions []float64
	// TrainN and TestN record the split sizes.
	TrainN, TestN int
}

// Models bundles the trained host and device predictors.
type Models struct {
	// Host and Device are the fitted regressors (inputs normalized).
	Host, Device ml.Regressor
	// HostNorm and DeviceNorm are the fitted normalizers.
	HostNorm, DeviceNorm *ml.Normalizer
	// HostReport and DeviceReport hold held-out accuracy.
	HostReport, DeviceReport SideReport
	// Kind records the regressor family.
	Kind RegressorKind
}

// PredictHost predicts the host execution time for a raw sample.
func (m *Models) PredictHost(threads int, aff machine.Affinity, sizeMB float64) (float64, error) {
	x, err := m.HostNorm.Apply(hostFeatures(threads, aff, sizeMB))
	if err != nil {
		return 0, err
	}
	return clampTime(m.Host.Predict(x)), nil
}

// PredictDevice predicts the device execution time for a raw sample.
func (m *Models) PredictDevice(threads int, aff machine.Affinity, sizeMB float64) (float64, error) {
	x, err := m.DeviceNorm.Apply(deviceFeatures(threads, aff, sizeMB))
	if err != nil {
		return 0, err
	}
	return clampTime(m.Device.Predict(x)), nil
}

// clampTime floors predictions at a microsecond: execution times are
// positive, but additive ensembles can undershoot near the boundary.
func clampTime(t float64) float64 {
	if t < 1e-6 {
		return 1e-6
	}
	return t
}

// defaultBoost are the boosted-tree hyperparameters used for the paper
// grid; the ablation bench explores alternatives.
func defaultBoost() ml.BoostOptions {
	return ml.BoostOptions{
		Rounds:       300,
		LearningRate: 0.08,
		Tree:         ml.TreeOptions{MaxDepth: 7, MinLeaf: 5},
		Subsample:    0.9,
		Seed:         1,
	}
}

// Train generates the plan's data on the platform, splits each side in
// half, fits the selected regressor per side (Figure 4's pipeline:
// normalize, train, evaluate) and reports held-out accuracy.
func Train(platform *offload.Platform, plan TrainingPlan, opt TrainOptions) (*Models, error) {
	hostData, err := GenerateHostData(platform, plan)
	if err != nil {
		return nil, err
	}
	devData, err := GenerateDeviceData(platform, plan)
	if err != nil {
		return nil, err
	}
	return TrainOnData(hostData, devData, opt)
}

// TrainOnData fits models from pre-generated datasets (exposed for tests
// and ablations).
func TrainOnData(hostData, devData *ml.Dataset, opt TrainOptions) (*Models, error) {
	models := &Models{Kind: opt.Kind}
	var err error
	models.Host, models.HostNorm, models.HostReport, err = trainSide(hostData, opt)
	if err != nil {
		return nil, fmt.Errorf("core: host model: %w", err)
	}
	models.Device, models.DeviceNorm, models.DeviceReport, err = trainSide(devData, opt)
	if err != nil {
		return nil, fmt.Errorf("core: device model: %w", err)
	}
	return models, nil
}

func trainSide(data *ml.Dataset, opt TrainOptions) (ml.Regressor, *ml.Normalizer, SideReport, error) {
	train, test, err := data.Split(0.5, opt.SplitSeed)
	if err != nil {
		return nil, nil, SideReport{}, err
	}
	norm, err := ml.FitNormalizer(train)
	if err != nil {
		return nil, nil, SideReport{}, err
	}
	trainN, err := norm.ApplyDataset(train)
	if err != nil {
		return nil, nil, SideReport{}, err
	}
	var reg ml.Regressor
	switch opt.Kind {
	case BoostedTrees:
		boostOpt := opt.Boost
		if boostOpt.Rounds == 0 && boostOpt.LearningRate == 0 && boostOpt.Tree.MaxDepth == 0 {
			boostOpt = defaultBoost()
		}
		reg, err = ml.FitBoostedTrees(trainN, boostOpt)
	case Linear:
		reg, err = ml.FitLinear(trainN, 1e-8)
	case Poisson:
		reg, err = ml.FitPoisson(trainN, ml.PoissonOptions{})
	default:
		err = fmt.Errorf("unknown regressor kind %d", opt.Kind)
	}
	if err != nil {
		return nil, nil, SideReport{}, err
	}
	testN, err := norm.ApplyDataset(test)
	if err != nil {
		return nil, nil, SideReport{}, err
	}
	eval, err := ml.Evaluate(reg, testN)
	if err != nil {
		return nil, nil, SideReport{}, err
	}
	report := SideReport{
		Eval:   eval,
		Test:   test,
		TrainN: train.Len(),
		TestN:  test.Len(),
	}
	for _, row := range testN.X {
		report.Predictions = append(report.Predictions, reg.Predict(row))
	}
	return reg, norm, report, nil
}
