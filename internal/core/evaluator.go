// Package core implements the paper's primary contribution: determining a
// near-optimal system configuration for heterogeneous work distribution by
// combining combinatorial optimization (simulated annealing over the
// configuration space) with machine learning (boosted decision tree
// regression predicting per-side execution times).
//
// The four optimization methods of Table II are provided behind one
// interface, differing only in how they explore the space and how they
// evaluate candidate configurations:
//
//	EM    enumeration         + measurements
//	EML   enumeration         + machine learning
//	SAM   simulated annealing + measurements
//	SAML  simulated annealing + machine learning
//
// Methods that search on predictions (EML, SAML) are scored by measuring
// their suggested configuration, the paper's fair-comparison methodology
// (Section IV-C).
package core

import (
	"fmt"
	"sync/atomic"

	"hetopt/internal/machine"
	"hetopt/internal/offload"
	"hetopt/internal/perf"
	"hetopt/internal/search"
	"hetopt/internal/space"
)

// Evaluator estimates the per-side execution times and energy of a
// configuration. Implementations: *Measurer (testbed measurements) and
// *Predictor (machine-learning predictions composed with the analytic
// power model). Both sides of the measurement come from one evaluation,
// so caches keyed on the configuration serve every objective.
type Evaluator interface {
	Evaluate(cfg space.Config) (offload.Measurement, error)
}

// Measurer evaluates configurations by (simulated) measurement and counts
// how many experiments were performed — the "effort" column of Table II.
// It is safe for concurrent use: measurement is a pure function of the
// configuration and trial (see perf.Model) and the effort counter is
// atomic, so sharded enumeration and concurrent annealing chains can
// share one Measurer.
type Measurer struct {
	// Platform performs the measurements.
	Platform *offload.Platform
	// Workload is the input under optimization.
	Workload offload.Workload
	// Trial selects the measurement-noise draw (see perf.Model).
	Trial int

	count atomic.Int64
}

// NewMeasurer builds a Measurer for the workload on the platform.
func NewMeasurer(p *offload.Platform, w offload.Workload) *Measurer {
	return &Measurer{Platform: p, Workload: w}
}

// Evaluate implements Evaluator by running one experiment.
func (m *Measurer) Evaluate(cfg space.Config) (offload.Measurement, error) {
	m.count.Add(1)
	return m.Platform.MeasureFull(m.Workload, cfg, m.Trial)
}

// EvaluateBatch implements search.BatchEvaluator by running one
// experiment per configuration into out. Semantics match a sequential
// Evaluate loop exactly: each attempt is charged and the first error
// stops the batch.
func (m *Measurer) EvaluateBatch(cfgs []space.Config, out []offload.Measurement) error {
	for i, cfg := range cfgs {
		m.count.Add(1)
		v, err := m.Platform.MeasureFull(m.Workload, cfg, m.Trial)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}

// Count returns the number of experiments performed so far.
func (m *Measurer) Count() int { return int(m.count.Load()) }

// Charge advances the effort counter by one without performing a
// measurement. Interposed evaluators (Instance.MeasureCache) use it to
// charge an evaluation that a cross-run cache served physically, so a
// run's Experiments stays a pure function of the run itself rather
// than of cache warmth.
func (m *Measurer) Charge() { m.count.Add(1) }

// ResetCount zeroes the experiment counter.
func (m *Measurer) ResetCount() { m.count.Store(0) }

// Feature layout shared by the host and device models: the paper trains on
// the number of threads, the thread affinity and the input size
// (Section III-B).
const (
	featThreads = iota
	featSizeMB
	featAffBase // three one-hot affinity indicators follow
	numFeatures = featAffBase + 3
)

// hostAffinityOrder fixes the one-hot encoding order per side.
var hostAffinityOrder = []machine.Affinity{machine.AffinityNone, machine.AffinityScatter, machine.AffinityCompact}
var deviceAffinityOrder = []machine.Affinity{machine.AffinityBalanced, machine.AffinityScatter, machine.AffinityCompact}

// HostFeatureNames and DeviceFeatureNames label the model inputs.
func HostFeatureNames() []string {
	return []string{"threads", "size-mb", "aff-none", "aff-scatter", "aff-compact"}
}

// DeviceFeatureNames labels the device model inputs.
func DeviceFeatureNames() []string {
	return []string{"threads", "size-mb", "aff-balanced", "aff-scatter", "aff-compact"}
}

// hostFeatures encodes one host-side sample.
func hostFeatures(threads int, aff machine.Affinity, sizeMB float64) []float64 {
	return sideFeatures(threads, aff, sizeMB, hostAffinityOrder)
}

// deviceFeatures encodes one device-side sample.
func deviceFeatures(threads int, aff machine.Affinity, sizeMB float64) []float64 {
	return sideFeatures(threads, aff, sizeMB, deviceAffinityOrder)
}

func sideFeatures(threads int, aff machine.Affinity, sizeMB float64, order []machine.Affinity) []float64 {
	x := make([]float64, numFeatures)
	x[featThreads] = float64(threads)
	x[featSizeMB] = sizeMB
	for i, a := range order {
		if a == aff {
			x[featAffBase+i] = 1
		}
	}
	return x
}

// Predictor evaluates configurations with the trained per-side regression
// models (the paper's Figure 4 predictive model). Predictions are
// memoized: the deterministic mapping from configuration to features makes
// caching exact, which matters when enumeration queries 19,926
// configurations built from only ~1,800 distinct per-side inputs. The
// memo tables are concurrency-safe (single-flight), so one Predictor can
// serve sharded enumeration and parallel annealing chains.
//
// The energy side of an evaluation is not learned: predicted times are
// composed with the analytic power model (noise-free active/static power
// per unit), following the paper's split between measured behaviour and
// modeled structure.
type Predictor struct {
	models   *Models
	workload offload.Workload
	power    *perf.Model

	hostMemo *search.Memo[sideKey, float64]
	devMemo  *search.Memo[sideKey, float64]
}

type sideKey struct {
	threads int
	aff     machine.Affinity
	sizeMB  float64
}

// NewPredictor binds trained models to a workload. power is the analytic
// model whose power constants price the predicted times into joules; use
// the platform the models were trained on (Platform.Model()).
func NewPredictor(models *Models, w offload.Workload, power *perf.Model) (*Predictor, error) {
	if models == nil || models.Host == nil || models.Device == nil {
		return nil, fmt.Errorf("core: predictor needs trained host and device models")
	}
	if power == nil {
		return nil, fmt.Errorf("core: predictor needs a performance model for energy composition")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &Predictor{
		models:   models,
		workload: w,
		power:    power,
		hostMemo: search.NewMemo[sideKey, float64](),
		devMemo:  search.NewMemo[sideKey, float64](),
	}, nil
}

// Evaluate implements Evaluator by predicting T_host and T_device and
// pricing them into energy with the power model.
func (p *Predictor) Evaluate(cfg space.Config) (offload.Measurement, error) {
	if cfg.HostFraction < 0 || cfg.HostFraction > 100 {
		return offload.Measurement{}, fmt.Errorf("core: host fraction %g outside [0,100]", cfg.HostFraction)
	}
	hostMB := p.workload.SizeMB * cfg.HostFraction / 100
	devMB := p.workload.SizeMB - hostMB
	var m offload.Measurement
	if hostMB > 0 {
		v, err := p.hostTime(cfg.HostThreads, cfg.HostAffinity, hostMB)
		if err != nil {
			return offload.Measurement{}, err
		}
		m.Times.Host = v
	}
	if devMB > 0 {
		v, err := p.devTime(cfg.DeviceThreads, cfg.DeviceAffinity, devMB)
		if err != nil {
			return offload.Measurement{}, err
		}
		m.Times.Device = v
	}
	makespan := m.Times.E()
	if hostMB > 0 {
		e, err := p.power.HostModeledEnergy(cfg.HostThreads, cfg.HostAffinity, m.Times.Host, makespan)
		if err != nil {
			return offload.Measurement{}, err
		}
		m.Energy.Host = e
	}
	if devMB > 0 {
		e, err := p.power.DeviceModeledEnergy(cfg.DeviceThreads, cfg.DeviceAffinity, m.Times.Device, makespan)
		if err != nil {
			return offload.Measurement{}, err
		}
		m.Energy.Device = e
	}
	return m, nil
}

// hostTime returns the memoized host-side prediction. Memo hits take the
// allocation-free Get fast path; only a miss builds the Do closure and
// runs the regression forest.
func (p *Predictor) hostTime(threads int, aff machine.Affinity, sizeMB float64) (float64, error) {
	key := sideKey{threads, aff, sizeMB}
	if v, ok, err := p.hostMemo.Get(key); ok {
		return v, err
	}
	return p.hostMemo.Do(key, func() (float64, error) {
		return p.models.PredictHost(threads, aff, sizeMB)
	})
}

// devTime is the device analogue of hostTime.
func (p *Predictor) devTime(threads int, aff machine.Affinity, sizeMB float64) (float64, error) {
	key := sideKey{threads, aff, sizeMB}
	if v, ok, err := p.devMemo.Get(key); ok {
		return v, err
	}
	return p.devMemo.Do(key, func() (float64, error) {
		return p.models.PredictDevice(threads, aff, sizeMB)
	})
}

// EvaluateBatch implements search.BatchEvaluator: identical to a
// sequential Evaluate loop (first error stops), with steady-state
// predictions served from the side memos without allocating.
func (p *Predictor) EvaluateBatch(cfgs []space.Config, out []offload.Measurement) error {
	for i, cfg := range cfgs {
		v, err := p.Evaluate(cfg)
		if err != nil {
			return err
		}
		out[i] = v
	}
	return nil
}
