package core
