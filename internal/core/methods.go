package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hetopt/internal/anneal"
	"hetopt/internal/offload"
	"hetopt/internal/search"
	"hetopt/internal/space"
)

// Method identifies one of the paper's four optimization methods
// (Table II).
type Method int

const (
	// EM is Enumeration and Measurements: certainly optimal, very high
	// effort.
	EM Method = iota
	// EML is Enumeration and Machine Learning.
	EML
	// SAM is Simulated Annealing and Measurements.
	SAM
	// SAML is Simulated Annealing and Machine Learning — the paper's
	// proposed approach.
	SAML
)

// Methods lists all four in the paper's order.
func Methods() []Method { return []Method{EM, EML, SAM, SAML} }

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case EM:
		return "EM"
	case EML:
		return "EML"
	case SAM:
		return "SAM"
	case SAML:
		return "SAML"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod converts a name ("em", "SAML", ...) into a Method.
func ParseMethod(s string) (Method, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "EM":
		return EM, nil
	case "EML":
		return EML, nil
	case "SAM":
		return SAM, nil
	case "SAML":
		return SAML, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q (want EM, EML, SAM or SAML)", s)
	}
}

// UsesAnnealing reports whether the method explores with SA.
func (m Method) UsesAnnealing() bool { return m == SAM || m == SAML }

// UsesML reports whether the method evaluates with predictions.
func (m Method) UsesML() bool { return m == EML || m == SAML }

// Instance bundles everything a method run needs.
type Instance struct {
	// Schema is the configuration space.
	Schema *space.Schema
	// Measurer provides ground-truth measurements (and counts effort).
	Measurer *Measurer
	// Predictor provides ML evaluations; required for EML and SAML.
	Predictor *Predictor
}

// Validate checks the instance against the method's needs.
func (inst *Instance) Validate(m Method) error {
	if inst == nil || inst.Schema == nil {
		return fmt.Errorf("core: instance needs a schema")
	}
	if inst.Measurer == nil {
		return fmt.Errorf("core: instance needs a measurer (final configurations are always measured)")
	}
	if m.UsesML() && inst.Predictor == nil {
		return fmt.Errorf("core: method %v needs a predictor", m)
	}
	return nil
}

// Options tunes a method run. The zero value is usable.
type Options struct {
	// Iterations is the simulated-annealing candidate budget (ignored by
	// EM/EML). Zero selects 1000, the budget the paper highlights as
	// "only about 5% of the total possible configurations".
	Iterations int
	// Seed drives SA's stochastic choices.
	Seed int64
	// InitialTemp overrides the SA starting temperature (zero selects
	// DefaultInitialTemp). The stop temperature is derived as
	// InitialTemp/TempSpan, preserving the paper's schedule shape
	// (T: 10^4 -> 1) rescaled to seconds-valued energies.
	InitialTemp float64
	// NeighborMode selects the SA neighborhood structure.
	NeighborMode space.NeighborMode
	// Parallelism is the worker count of the concurrent search engine:
	// EM/EML shard the enumeration into that many ordinal ranges, SAM/SAML
	// anneal that many chains concurrently (capped at Restarts). Results
	// are bit-identical at every parallelism level for a fixed Seed; zero
	// or one runs sequentially.
	Parallelism int
	// Restarts is the number of independent annealing chains K for
	// SAM/SAML (ignored by EM/EML). Each chain runs the full Iterations
	// budget from a seed derived from (Seed, chain); the best chain wins,
	// ties broken by the lowest chain index. Chains share a memoizing
	// evaluation cache, so configurations visited by several chains cost
	// one experiment. Zero or one reproduces the single-chain behavior
	// exactly.
	Restarts int
	// Objective selects what the search minimizes: the paper's makespan
	// (nil or TimeObjective), total joules (EnergyObjective), a weighted
	// sum, or energy under a time bound. Every method evaluates a
	// configuration once and scores times and energy from that single
	// evaluation, so the determinism contract holds for every objective.
	Objective Objective
}

// DefaultInitialTemp is the SA starting temperature for seconds-scale
// energies. The paper anneals from 10^4 down to 1; our objective is
// measured in seconds (0.1-40) rather than the milliseconds-scale numbers
// that schedule implies, so the same 10^4 dynamic range is anchored at 5.
const DefaultInitialTemp = 5.0

// TempSpan is the ratio between initial and stop temperature (10^4, the
// paper's 10000 -> "T < 1" span).
const TempSpan = 1e4

func (o Options) iterations() int {
	if o.Iterations <= 0 {
		return 1000
	}
	return o.Iterations
}

func (o Options) restarts() int {
	if o.Restarts <= 1 {
		return 1
	}
	return o.Restarts
}

func (o Options) objective() Objective {
	if o.Objective == nil {
		return TimeObjective{}
	}
	return o.Objective
}

// Result reports a completed optimization run.
type Result struct {
	// Method that produced the result.
	Method Method
	// Config is the suggested system configuration.
	Config space.Config
	// SearchE is the objective value of Config under the evaluator the
	// search used (measurements for EM/SAM, predictions for EML/SAML).
	SearchE float64
	// Measured holds the fair-comparison measurement of Config and
	// MeasuredE its time objective (Equation 2).
	Measured offload.Times
	// MeasuredEnergy is the per-side energy of the fair-comparison
	// measurement; MeasuredJ is its total.
	MeasuredEnergy offload.Energy
	// Objective names the objective the search minimized and
	// MeasuredObjective is its value on the fair-comparison measurement.
	Objective         string
	MeasuredObjective float64
	// SearchEvaluations counts evaluator calls during the search.
	SearchEvaluations int
	// Experiments counts physical measurements consumed, including the
	// final fair-comparison measurement.
	Experiments int
}

// MeasuredE is the measured time objective (makespan) of the suggested
// configuration.
func (r Result) MeasuredE() float64 { return r.Measured.E() }

// MeasuredJ is the measured energy in joules of the suggested
// configuration.
func (r Result) MeasuredJ() float64 { return r.MeasuredEnergy.Total() }

// Run executes one optimization method on the instance.
func Run(m Method, inst *Instance, opt Options) (Result, error) {
	if err := inst.Validate(m); err != nil {
		return Result{}, err
	}
	startCount := inst.Measurer.Count()
	var (
		best    space.Config
		bestE   float64
		evals   int
		runErr  error
		evalSet Evaluator
	)
	if m.UsesML() {
		evalSet = inst.Predictor
	} else {
		evalSet = inst.Measurer
	}

	obj := opt.objective()
	switch m {
	case EM, EML:
		best, bestE, evals, runErr = enumerate(inst.Schema, evalSet, opt.Parallelism, obj)
	case SAM, SAML:
		best, bestE, evals, runErr = annealSearch(inst.Schema, evalSet, opt)
	default:
		runErr = fmt.Errorf("core: unknown method %v", m)
	}
	if runErr != nil {
		return Result{}, runErr
	}

	// Fair comparison: measure the suggested configuration. For
	// measurement-driven methods this re-measures the same trial, which
	// reproduces the identical value at no extra information.
	measured, err := inst.Measurer.Evaluate(best)
	if err != nil {
		return Result{}, fmt.Errorf("core: measuring suggested configuration: %w", err)
	}
	return Result{
		Method:            m,
		Config:            best,
		SearchE:           bestE,
		Measured:          measured.Times,
		MeasuredEnergy:    measured.Energy,
		Objective:         obj.Name(),
		MeasuredObjective: objectiveValue(obj, measured),
		SearchEvaluations: evals,
		Experiments:       inst.Measurer.Count() - startCount,
	}, nil
}

// enumerate is exhaustive search (the paper's "enumeration, also known as
// brute-force"). parallelism > 1 shards the space into contiguous ordinal
// ranges evaluated concurrently; every configuration is distinct, so the
// winner — the lowest objective value at the lowest ordinal — is
// identical to the sequential scan at any worker count.
func enumerate(schema *space.Schema, eval Evaluator, parallelism int, obj Objective) (space.Config, float64, int, error) {
	size := schema.Space().Size()
	workers := search.Workers(parallelism)
	if workers > size {
		workers = size
	}
	type shardBest struct {
		e     float64
		ord   int
		evals int
	}
	scan := func(lo, hi int) (shardBest, error) {
		sb := shardBest{e: math.Inf(1), ord: -1}
		err := schema.Space().ForEachRange(lo, hi, func(ord int, idx []int) error {
			cfg, err := schema.Config(idx)
			if err != nil {
				return err
			}
			t, err := eval.Evaluate(cfg)
			if err != nil {
				return err
			}
			sb.evals++
			if e := objectiveValue(obj, t); e < sb.e {
				sb.e = e
				sb.ord = ord
			}
			return nil
		})
		return sb, err
	}

	shards := search.Shards(size, workers)
	bests := make([]shardBest, len(shards))
	err := search.ForEach(len(shards), workers, func(si int) error {
		var err error
		bests[si], err = scan(shards[si][0], shards[si][1])
		return err
	})
	if err != nil {
		return space.Config{}, 0, 0, err
	}

	total := shardBest{e: math.Inf(1), ord: -1}
	for _, sb := range bests {
		total.evals += sb.evals
		// Shards are merged in ordinal order, so the first strict
		// improvement reproduces the sequential (energy, ordinal) winner.
		if sb.ord >= 0 && sb.e < total.e {
			total.e = sb.e
			total.ord = sb.ord
		}
	}
	idx, err := schema.Space().Unflatten(total.ord)
	if err != nil {
		return space.Config{}, 0, 0, err
	}
	best, err := schema.Config(idx)
	if err != nil {
		return space.Config{}, 0, 0, err
	}
	return best, total.e, total.evals, nil
}

// saProblem adapts the schema + evaluator to the annealer.
type saProblem struct {
	schema *space.Schema
	eval   Evaluator
	mode   space.NeighborMode
	obj    Objective
	evals  int
	err    error
}

func (p *saProblem) Dim() int { return p.schema.Space().Dim() }

func (p *saProblem) Initial(dst []int, rng *rand.Rand) {
	copy(dst, p.schema.Space().Random(rng))
}

func (p *saProblem) Neighbor(dst, src []int, rng *rand.Rand) {
	p.schema.Space().Neighbor(dst, src, rng, p.mode)
}

func (p *saProblem) Energy(idx []int) float64 {
	if p.err != nil {
		return math.Inf(1)
	}
	cfg, err := p.schema.Config(idx)
	if err != nil {
		p.err = err
		return math.Inf(1)
	}
	t, err := p.eval.Evaluate(cfg)
	if err != nil {
		p.err = err
		return math.Inf(1)
	}
	p.evals++
	return objectiveValue(p.obj, t)
}

// annealSearch runs the paper's SA (Figure 3) with the cooling rate tuned
// so the temperature anneals from InitialTemp to the stop temperature over
// exactly the iteration budget. Restarts > 1 anneals K independent chains
// (each with the full budget, from a seed derived from (Seed, chain))
// that share a memoizing evaluation cache, so a configuration visited by
// several chains costs one evaluation; the best chain wins, ties broken
// by the lowest chain index.
func annealSearch(schema *space.Schema, eval Evaluator, opt Options) (space.Config, float64, int, error) {
	t0 := opt.InitialTemp
	if t0 == 0 {
		t0 = DefaultInitialTemp
	}
	annealOpt := anneal.Options{
		InitialTemp: t0,
		StopTemp:    t0 / TempSpan,
		MaxIters:    opt.iterations(),
		Seed:        opt.Seed,
	}
	chains := opt.restarts()
	if chains == 1 {
		p := &saProblem{schema: schema, eval: eval, mode: opt.NeighborMode, obj: opt.objective()}
		res, err := anneal.Minimize(p, annealOpt)
		if err != nil {
			return space.Config{}, 0, 0, err
		}
		if p.err != nil {
			return space.Config{}, 0, 0, p.err
		}
		cfg, err := schema.Config(res.Best)
		if err != nil {
			return space.Config{}, 0, 0, err
		}
		return cfg, res.BestEnergy, p.evals, nil
	}

	shared := search.NewCache(eval)
	problems := make([]*saProblem, chains)
	res, err := anneal.MinimizeMulti(func(chain int) anneal.Problem {
		problems[chain] = &saProblem{schema: schema, eval: shared, mode: opt.NeighborMode, obj: opt.objective()}
		return problems[chain]
	}, anneal.MultiOptions{
		Options:     annealOpt,
		Chains:      chains,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return space.Config{}, 0, 0, err
	}
	evals := 0
	for _, p := range problems {
		if p.err != nil {
			return space.Config{}, 0, 0, p.err
		}
		evals += p.evals
	}
	cfg, err := schema.Config(res.Best)
	if err != nil {
		return space.Config{}, 0, 0, err
	}
	return cfg, res.BestEnergy, evals, nil
}

// HostOnlyBaseline measures the paper's CPU-only baseline: all host
// threads (the schema's maximum), fraction 100, best affinity by
// measurement.
func HostOnlyBaseline(inst *Instance) (Result, error) {
	if err := inst.Validate(EM); err != nil {
		return Result{}, err
	}
	threads := maxInt(inst.Schema.HostThreadValues())
	bestE := math.Inf(1)
	var best space.Config
	var bestT offload.Measurement
	for _, aff := range inst.Schema.HostAffinityValues() {
		cfg := space.Config{
			HostThreads: threads, HostAffinity: aff,
			DeviceThreads:  maxInt(inst.Schema.DeviceThreadValues()),
			DeviceAffinity: inst.Schema.DeviceAffinityValues()[0],
			HostFraction:   100,
		}
		t, err := inst.Measurer.Evaluate(cfg)
		if err != nil {
			return Result{}, err
		}
		if t.E() < bestE {
			bestE, best, bestT = t.E(), cfg, t
		}
	}
	return Result{Method: EM, Config: best, SearchE: bestE,
		Measured: bestT.Times, MeasuredEnergy: bestT.Energy,
		Objective: TimeObjective{}.Name(), MeasuredObjective: bestE,
		SearchEvaluations: len(inst.Schema.HostAffinityValues()),
		Experiments:       len(inst.Schema.HostAffinityValues())}, nil
}

// DeviceOnlyBaseline measures the accelerator-only baseline: all device
// threads, fraction 0, best affinity by measurement.
func DeviceOnlyBaseline(inst *Instance) (Result, error) {
	if err := inst.Validate(EM); err != nil {
		return Result{}, err
	}
	threads := maxInt(inst.Schema.DeviceThreadValues())
	bestE := math.Inf(1)
	var best space.Config
	var bestT offload.Measurement
	for _, aff := range inst.Schema.DeviceAffinityValues() {
		cfg := space.Config{
			HostThreads:   maxInt(inst.Schema.HostThreadValues()),
			HostAffinity:  inst.Schema.HostAffinityValues()[0],
			DeviceThreads: threads, DeviceAffinity: aff,
			HostFraction: 0,
		}
		t, err := inst.Measurer.Evaluate(cfg)
		if err != nil {
			return Result{}, err
		}
		if t.E() < bestE {
			bestE, best, bestT = t.E(), cfg, t
		}
	}
	return Result{Method: EM, Config: best, SearchE: bestE,
		Measured: bestT.Times, MeasuredEnergy: bestT.Energy,
		Objective: TimeObjective{}.Name(), MeasuredObjective: bestE,
		SearchEvaluations: len(inst.Schema.DeviceAffinityValues()),
		Experiments:       len(inst.Schema.DeviceAffinityValues())}, nil
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
