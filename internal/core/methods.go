package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hetopt/internal/offload"
	"hetopt/internal/search"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// Method identifies one of the paper's four optimization methods
// (Table II).
type Method int

const (
	// EM is Enumeration and Measurements: certainly optimal, very high
	// effort.
	EM Method = iota
	// EML is Enumeration and Machine Learning.
	EML
	// SAM is Simulated Annealing and Measurements.
	SAM
	// SAML is Simulated Annealing and Machine Learning — the paper's
	// proposed approach.
	SAML
)

// Methods lists all four in the paper's order.
func Methods() []Method { return []Method{EM, EML, SAM, SAML} }

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case EM:
		return "EM"
	case EML:
		return "EML"
	case SAM:
		return "SAM"
	case SAML:
		return "SAML"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod converts a name ("em", "SAML", ...) into a Method.
func ParseMethod(s string) (Method, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "EM":
		return EM, nil
	case "EML":
		return EML, nil
	case "SAM":
		return SAM, nil
	case "SAML":
		return SAML, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q (want EM, EML, SAM or SAML)", s)
	}
}

// UsesAnnealing reports whether the method's preset explorer is SA.
func (m Method) UsesAnnealing() bool { return m == SAM || m == SAML }

// UsesML reports whether the method evaluates with predictions.
func (m Method) UsesML() bool { return m == EML || m == SAML }

// Instance bundles everything a method run needs.
type Instance struct {
	// Schema is the configuration space.
	Schema *space.Schema
	// Measurer provides ground-truth measurements (and counts effort).
	Measurer *Measurer
	// Predictor provides ML evaluations; required for EML and SAML.
	Predictor *Predictor
	// MeasureCache, when non-nil, interposes a memoizing evaluator in
	// front of Measurer for every measurement the run performs — the
	// search-time evaluations of EM/SAM and the final fair-comparison
	// measurement alike. It must be backed by this instance's Measurer
	// (e.g. a search.Cache wrapping it, or a memo shared across
	// instances for the same workload) so the effort counter still
	// reflects the physical experiments paid. Measurements are pure
	// functions of the configuration, so interposing a cache never
	// changes a returned value, only how often the experiment is
	// actually run. The serving layer uses this to share one
	// configuration-keyed memo across concurrent jobs for the same
	// workload; nil measures directly.
	MeasureCache Evaluator
}

// measureEvaluator returns the evaluator used for measurements: the
// interposed cache when present, the raw measurer otherwise.
func (inst *Instance) measureEvaluator() Evaluator {
	if inst.MeasureCache != nil {
		return inst.MeasureCache
	}
	return inst.Measurer
}

// Validate checks the instance against the method's needs.
func (inst *Instance) Validate(m Method) error {
	if inst == nil || inst.Schema == nil {
		return fmt.Errorf("core: instance needs a schema")
	}
	if inst.Measurer == nil {
		return fmt.Errorf("core: instance needs a measurer (final configurations are always measured)")
	}
	if m.UsesML() && inst.Predictor == nil {
		return fmt.Errorf("core: method %v needs a predictor", m)
	}
	return nil
}

// Options tunes a method run. The zero value is usable.
type Options struct {
	// Iterations is the search evaluation budget per worker (an
	// annealing chain's candidate count, a heuristic restart's
	// evaluation budget — whichever strategy explores; exhaustive
	// enumeration ignores it). Zero selects 1000, the budget the paper
	// highlights as "only about 5% of the total possible
	// configurations".
	Iterations int
	// Seed drives the strategy's stochastic choices; worker i derives
	// search.ChainSeed(Seed, i).
	Seed int64
	// InitialTemp overrides the SA starting temperature of the annealing
	// preset (zero selects DefaultInitialTemp). The stop temperature is
	// derived as InitialTemp/TempSpan, preserving the paper's schedule
	// shape (T: 10^4 -> 1) rescaled to seconds-valued energies. Ignored
	// when Strategy is injected.
	InitialTemp float64
	// NeighborMode selects the neighborhood structure used by
	// Initial/Neighbor-driven strategies (SA).
	NeighborMode space.NeighborMode
	// Parallelism is the worker count of the concurrent search engine:
	// enumeration shards into that many ordinal ranges, annealing and
	// the heuristic strategies fan that many workers out (capped at
	// Restarts). Results are bit-identical at every parallelism level
	// for a fixed Seed; zero or one runs sequentially.
	Parallelism int
	// Restarts is the number of independent search workers K: annealing
	// chains for SAM/SAML, restarts for the heuristic strategies
	// (ignored by enumeration). Each worker runs the full Iterations
	// budget from a seed derived from (Seed, worker); the best worker
	// wins, ties broken by the lowest index. Workers share a memoizing
	// evaluation cache, so configurations visited by several workers
	// cost one experiment. Zero or one reproduces the single-worker
	// behavior exactly.
	Restarts int
	// Objective selects what the search minimizes: the paper's makespan
	// (nil or TimeObjective), total joules (EnergyObjective), a weighted
	// sum, or energy under a time bound. Every method evaluates a
	// configuration once and scores times and energy from that single
	// evaluation, so the determinism contract holds for every objective.
	Objective Objective
	// Strategy injects the search strategy. Nil selects the method's
	// preset — exhaustive enumeration for EM/EML, the paper's simulated
	// annealing for SAM/SAML — keeping the four paper methods
	// bit-identical to their pre-strategy-layer behavior. Any
	// strategy.Strategy (including a racing strategy.Portfolio) can be
	// injected to explore the same space under the same objective and
	// evaluator.
	Strategy strategy.Strategy
}

// DefaultInitialTemp is the SA starting temperature for seconds-scale
// energies. The paper anneals from 10^4 down to 1; our objective is
// measured in seconds (0.1-40) rather than the milliseconds-scale numbers
// that schedule implies, so the same 10^4 dynamic range is anchored at 5.
const DefaultInitialTemp = strategy.DefaultInitialTemp

// TempSpan is the ratio between initial and stop temperature (10^4, the
// paper's 10000 -> "T < 1" span).
const TempSpan = strategy.TempSpan

func (o Options) iterations() int {
	if o.Iterations <= 0 {
		return 1000
	}
	return o.Iterations
}

func (o Options) objective() Objective {
	if o.Objective == nil {
		return TimeObjective{}
	}
	return o.Objective
}

// strategyFor resolves the search strategy of a run: the injected one,
// or the method's preset (EM/EML enumerate, SAM/SAML anneal with the
// run's temperature override).
func (o Options) strategyFor(m Method) strategy.Strategy {
	if o.Strategy != nil {
		return o.Strategy
	}
	if m.UsesAnnealing() {
		t0 := o.InitialTemp
		if t0 == 0 {
			t0 = DefaultInitialTemp
		}
		return strategy.Anneal{InitialTemp: t0, StopTemp: t0 / TempSpan}
	}
	return strategy.Exhaustive{}
}

// ParseStrategy converts a CLI-style strategy name into a Strategy with
// the core presets ("anneal" is the paper schedule, "portfolio" races
// the annealer against all four alternative metaheuristics). The empty
// name (or "auto") returns nil, selecting each method's preset.
func ParseStrategy(name string) (strategy.Strategy, error) {
	return strategy.Parse(name)
}

// Result reports a completed optimization run.
type Result struct {
	// Method that produced the result.
	Method Method
	// Config is the suggested system configuration.
	Config space.Config
	// SearchE is the objective value of Config under the evaluator the
	// search used (measurements for EM/SAM, predictions for EML/SAML).
	SearchE float64
	// Measured holds the fair-comparison measurement of Config and
	// MeasuredE its time objective (Equation 2).
	Measured offload.Times
	// MeasuredEnergy is the per-side energy of the fair-comparison
	// measurement; MeasuredJ is its total.
	MeasuredEnergy offload.Energy
	// Objective names the objective the search minimized and
	// MeasuredObjective is its value on the fair-comparison measurement.
	Objective         string
	MeasuredObjective float64
	// SearchEvaluations counts evaluator calls during the search.
	SearchEvaluations int
	// Experiments counts physical measurements consumed, including the
	// final fair-comparison measurement.
	Experiments int
	// Cert carries the optimality certificate when the search strategy
	// produced one (the exact branch-and-bound strategy, or a portfolio
	// it won); nil for purely heuristic runs. Read it through
	// Certificate() rather than nil-checking the field.
	Cert *strategy.Certificate
	// Pool is the diverse near-optimal configuration pool of an exact
	// run with a positive pool size, decoded into configurations and
	// sorted by objective value; Pool[0] is the suggested optimum. Empty
	// for heuristic runs.
	Pool []PoolConfig
}

// PoolConfig is one member of the diverse solution pool: a decoded
// configuration with its search-objective value.
type PoolConfig struct {
	// Config is the decoded configuration.
	Config space.Config
	// Objective is its value under the evaluator the search used.
	Objective float64
}

// Certificate returns the run's optimality certificate; ok is false when
// the strategy certified nothing (every heuristic run).
func (r Result) Certificate() (strategy.Certificate, bool) {
	if r.Cert == nil {
		return strategy.Certificate{}, false
	}
	return *r.Cert, true
}

// MeasuredE is the measured time objective (makespan) of the suggested
// configuration.
func (r Result) MeasuredE() float64 { return r.Measured.E() }

// MeasuredJ is the measured energy in joules of the suggested
// configuration.
func (r Result) MeasuredJ() float64 { return r.MeasuredEnergy.Total() }

// Run executes one optimization method on the instance.
func Run(m Method, inst *Instance, opt Options) (Result, error) {
	switch m {
	case EM, EML, SAM, SAML:
	default:
		return Result{}, fmt.Errorf("core: unknown method %v", m)
	}
	if err := inst.Validate(m); err != nil {
		return Result{}, err
	}
	startCount := inst.Measurer.Count()
	var evalSet Evaluator
	if m.UsesML() {
		evalSet = inst.Predictor
	} else {
		evalSet = inst.measureEvaluator()
	}

	obj := opt.objective()
	var prob strategy.Spaced = &searchProblem{schema: inst.Schema, eval: evalSet, mode: opt.NeighborMode, obj: obj}
	if !m.UsesML() {
		// Measurement-path runs get the roofline pruning oracle so the
		// exact strategy (standalone or inside a portfolio) can prune;
		// prediction-path runs stay bound-free (see bound.go).
		if b := newRooflineBounder(inst.Schema, inst.Measurer.Platform, inst.Measurer.Workload, obj); b != nil {
			prob = &boundedSearchProblem{searchProblem: prob.(*searchProblem), b: b}
		}
	}
	best, sres, err := searchWith(opt.strategyFor(m), prob, inst.Schema, opt)
	if err != nil {
		return Result{}, err
	}
	pool, err := decodePool(inst.Schema, sres.PoolEntries())
	if err != nil {
		return Result{}, err
	}

	// Fair comparison: measure the suggested configuration. For
	// measurement-driven methods this re-measures the same trial, which
	// reproduces the identical value at no extra information.
	measured, err := inst.measureEvaluator().Evaluate(best)
	if err != nil {
		return Result{}, fmt.Errorf("core: measuring suggested configuration: %w", err)
	}
	return Result{
		Method:            m,
		Config:            best,
		SearchE:           sres.BestEnergy,
		Measured:          measured.Times,
		MeasuredEnergy:    measured.Energy,
		Objective:         obj.Name(),
		MeasuredObjective: objectiveValue(obj, measured),
		SearchEvaluations: sres.Evaluations,
		Experiments:       inst.Measurer.Count() - startCount,
		Cert:              sres.Cert,
		Pool:              pool,
	}, nil
}

// decodePool converts the strategy layer's index-vector pool into
// configurations.
func decodePool(schema *space.Schema, entries []strategy.PoolEntry) ([]PoolConfig, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	pool := make([]PoolConfig, len(entries))
	for i, e := range entries {
		cfg, err := schema.Config(e.State)
		if err != nil {
			return nil, err
		}
		pool[i] = PoolConfig{Config: cfg, Objective: e.Energy}
	}
	return pool, nil
}

// NewSearchProblem adapts a configuration space, an evaluator and an
// objective (nil selects the paper's time objective) to
// strategy.Problem — and strategy.Spaced: a schema is a full product
// space. Run builds one internally for every method; it is exported so
// experiment drivers and refinement wrappers reuse the same adapter
// instead of growing copies.
func NewSearchProblem(schema *space.Schema, eval Evaluator, obj Objective, mode space.NeighborMode) strategy.Spaced {
	if obj == nil {
		obj = TimeObjective{}
	}
	return &searchProblem{schema: schema, eval: eval, mode: mode, obj: obj}
}

// searchProblem is stateless — Energy is a pure function of the state —
// so every worker of every strategy can share one instance.
type searchProblem struct {
	schema *space.Schema
	eval   Evaluator
	mode   space.NeighborMode
	obj    Objective
}

func (p *searchProblem) Dim() int { return p.schema.Space().Dim() }

func (p *searchProblem) Levels(i int) int { return p.schema.Space().Params[i].Levels() }

func (p *searchProblem) Initial(dst []int, rng *rand.Rand) {
	copy(dst, p.schema.Space().Random(rng))
}

func (p *searchProblem) Neighbor(dst, src []int, rng *rand.Rand) {
	p.schema.Space().Neighbor(dst, src, rng, p.mode)
}

func (p *searchProblem) Energy(state []int) (float64, error) {
	cfg, err := p.schema.Config(state)
	if err != nil {
		return 0, err
	}
	t, err := p.eval.Evaluate(cfg)
	if err != nil {
		return 0, err
	}
	return objectiveValue(p.obj, t), nil
}

// EnergyBatch implements strategy.BatchProblem: decode every state, hand
// the configurations to the evaluator's batch path in one call, and
// score each measurement under the objective. Strategies only produce
// valid states, so decoding up front before evaluating (instead of
// interleaved, as the sequential loop does) can only reorder work on the
// never-taken invalid-state path. Falls back to the sequential loop for
// evaluators without a batch path.
func (p *searchProblem) EnergyBatch(states [][]int, out []float64) error {
	be, ok := p.eval.(search.BatchEvaluator)
	if !ok {
		for i, st := range states {
			e, err := p.Energy(st)
			if err != nil {
				return err
			}
			out[i] = e
		}
		return nil
	}
	cfgs := make([]space.Config, len(states))
	for i, st := range states {
		cfg, err := p.schema.Config(st)
		if err != nil {
			return err
		}
		cfgs[i] = cfg
	}
	ms := make([]offload.Measurement, len(states))
	if err := be.EvaluateBatch(cfgs, ms); err != nil {
		return err
	}
	for i := range ms {
		out[i] = objectiveValue(p.obj, ms[i])
	}
	return nil
}

// searchWith runs a strategy over the adapted problem and decodes the
// winner; the full strategy result rides along so certificate and pool
// survive into core.Result.
func searchWith(strat strategy.Strategy, p strategy.Spaced, schema *space.Schema, opt Options) (space.Config, strategy.Result, error) {
	res, err := strat.Minimize(p, strategy.Options{
		Budget:      opt.iterations(),
		Seed:        opt.Seed,
		Restarts:    opt.Restarts,
		Parallelism: opt.Parallelism,
	})
	if err != nil {
		return space.Config{}, strategy.Result{}, err
	}
	cfg, err := schema.Config(res.Best)
	if err != nil {
		return space.Config{}, strategy.Result{}, err
	}
	return cfg, res, nil
}

// HostOnlyBaseline measures the paper's CPU-only baseline: all host
// threads (the schema's maximum), fraction 100, best affinity by
// measurement.
func HostOnlyBaseline(inst *Instance) (Result, error) {
	if err := inst.Validate(EM); err != nil {
		return Result{}, err
	}
	threads := maxInt(inst.Schema.HostThreadValues())
	bestE := math.Inf(1)
	var best space.Config
	var bestT offload.Measurement
	for _, aff := range inst.Schema.HostAffinityValues() {
		cfg := space.Config{
			HostThreads: threads, HostAffinity: aff,
			DeviceThreads:  maxInt(inst.Schema.DeviceThreadValues()),
			DeviceAffinity: inst.Schema.DeviceAffinityValues()[0],
			HostFraction:   100,
		}
		t, err := inst.measureEvaluator().Evaluate(cfg)
		if err != nil {
			return Result{}, err
		}
		if t.E() < bestE {
			bestE, best, bestT = t.E(), cfg, t
		}
	}
	return Result{Method: EM, Config: best, SearchE: bestE,
		Measured: bestT.Times, MeasuredEnergy: bestT.Energy,
		Objective: TimeObjective{}.Name(), MeasuredObjective: bestE,
		SearchEvaluations: len(inst.Schema.HostAffinityValues()),
		Experiments:       len(inst.Schema.HostAffinityValues())}, nil
}

// DeviceOnlyBaseline measures the accelerator-only baseline: all device
// threads, fraction 0, best affinity by measurement.
func DeviceOnlyBaseline(inst *Instance) (Result, error) {
	if err := inst.Validate(EM); err != nil {
		return Result{}, err
	}
	threads := maxInt(inst.Schema.DeviceThreadValues())
	bestE := math.Inf(1)
	var best space.Config
	var bestT offload.Measurement
	for _, aff := range inst.Schema.DeviceAffinityValues() {
		cfg := space.Config{
			HostThreads:   maxInt(inst.Schema.HostThreadValues()),
			HostAffinity:  inst.Schema.HostAffinityValues()[0],
			DeviceThreads: threads, DeviceAffinity: aff,
			HostFraction: 0,
		}
		t, err := inst.measureEvaluator().Evaluate(cfg)
		if err != nil {
			return Result{}, err
		}
		if t.E() < bestE {
			bestE, best, bestT = t.E(), cfg, t
		}
	}
	return Result{Method: EM, Config: best, SearchE: bestE,
		Measured: bestT.Times, MeasuredEnergy: bestT.Energy,
		Objective: TimeObjective{}.Name(), MeasuredObjective: bestE,
		SearchEvaluations: len(inst.Schema.DeviceAffinityValues()),
		Experiments:       len(inst.Schema.DeviceAffinityValues())}, nil
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
