package core

import (
	"reflect"
	"testing"

	"hetopt/internal/dna"
	"hetopt/internal/strategy"
)

// TestRunInjectedStrategyDeterministicAcrossParallelism extends the
// engine's determinism contract to injected strategies: for a fixed
// seed the Result is bit-identical at p in {1, 4, 8} for the genetic,
// tabu and local-search strategies and for the racing portfolio, under
// the time and energy objectives.
func TestRunInjectedStrategyDeterministicAcrossParallelism(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	strategies := []struct {
		name string
		s    strategy.Strategy
	}{
		{"genetic", strategy.Genetic{}},
		{"tabu", strategy.Tabu{}},
		{"local", strategy.Local{}},
		{"portfolio", strategy.DefaultPortfolio()},
	}
	objectives := []struct {
		name string
		obj  Objective
	}{
		{"time", nil},
		{"energy", EnergyObjective{}},
	}
	for _, st := range strategies {
		for _, ob := range objectives {
			t.Run(st.name+"/"+ob.name, func(t *testing.T) {
				var want Result
				for i, p := range []int{1, 4, 8} {
					res, err := Run(SAML, inst, Options{
						Iterations:  120,
						Seed:        5,
						Restarts:    3,
						Parallelism: p,
						Objective:   ob.obj,
						Strategy:    st.s,
					})
					if err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						want = res
						continue
					}
					if !reflect.DeepEqual(want, res) {
						t.Fatalf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, want, res)
					}
				}
			})
		}
	}
}

// TestInjectedPresetsMatchMethodDefaults: injecting the preset strategy
// explicitly reproduces the method's default run bit-for-bit, so
// "-strategy anneal" equals plain SAM/SAML and "-strategy exhaustive"
// equals plain EM/EML.
func TestInjectedPresetsMatchMethodDefaults(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	annealPreset := strategy.Anneal{InitialTemp: DefaultInitialTemp, StopTemp: DefaultInitialTemp / TempSpan}
	cases := []struct {
		name string
		m    Method
		s    strategy.Strategy
		opt  Options
	}{
		{"SAM-anneal", SAM, annealPreset, Options{Iterations: 200, Seed: 5, Restarts: 3}},
		{"SAML-anneal", SAML, annealPreset, Options{Iterations: 200, Seed: 5}},
		{"EM-exhaustive", EM, strategy.Exhaustive{}, Options{Parallelism: 4}},
		{"EML-exhaustive", EML, strategy.Exhaustive{}, Options{Parallelism: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			def, err := Run(tc.m, inst, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			opt := tc.opt
			opt.Strategy = tc.s
			injected, err := Run(tc.m, inst, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(def, injected) {
				t.Fatalf("injected preset diverged from method default:\nwant %+v\ngot  %+v", def, injected)
			}
		})
	}
}

// TestInjectedStrategySwapsExplorer: a method keeps its evaluator but
// explores with the injected strategy — EM with the anneal strategy
// becomes SAM (same evaluator, same explorer, same result).
func TestInjectedStrategySwapsExplorer(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	annealPreset := strategy.Anneal{InitialTemp: DefaultInitialTemp, StopTemp: DefaultInitialTemp / TempSpan}
	opt := Options{Iterations: 150, Seed: 3}
	sam, err := Run(SAM, inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Strategy = annealPreset
	emAnneal, err := Run(EM, inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if emAnneal.Config != sam.Config || emAnneal.SearchE != sam.SearchE ||
		emAnneal.SearchEvaluations != sam.SearchEvaluations {
		t.Fatalf("EM with anneal strategy should explore exactly like SAM:\nSAM %+v\ngot %+v", sam, emAnneal)
	}
}

// TestPortfolioRunNeverWorseThanPresetSAM: the default portfolio
// contains the annealing preset as its first member with the same seed,
// so its search energy can never exceed plain single-strategy SA.
func TestPortfolioRunNeverWorseThanPresetSAM(t *testing.T) {
	inst, _ := instance(t, dna.Human)
	opt := Options{Iterations: 150, Seed: 7}
	sam, err := Run(SAM, inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Strategy = strategy.DefaultPortfolio()
	pf, err := Run(SAM, inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pf.SearchE > sam.SearchE {
		t.Fatalf("portfolio (%g) worse than its annealing member alone (%g)", pf.SearchE, sam.SearchE)
	}
}
