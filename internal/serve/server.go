// Package serve is the tuning-as-a-service layer: an HTTP/JSON server
// (stdlib net/http only) that answers the paper's query shape — "what is
// the near-optimal configuration for workload W under objective O?" —
// as asynchronous jobs on a bounded worker pool, with a warm-start
// result store so repeat queries are served from cache, and a batch
// endpoint that maps a whole time/energy front (a list of alphas) in
// one call. See DESIGN.md, "The serving layer".
//
// Endpoints:
//
//	POST /v1/jobs        submit one tune request; 202 + job id
//	                     (200 with the inline result — no id, no poll —
//	                     when the store already holds it, or on ?wait=1
//	                     once the job finishes), 429 on backpressure
//	POST /v1/jobs:batch  submit a request list and/or an alpha sweep
//	GET  /v1/jobs/{id}   poll a job
//	GET  /v1/healthz     liveness and pool state
//	GET  /v1/metrics     request/job/store/latency counters
//
// Determinism contract: a request is canonicalized (TuneRequest.
// Normalize) before keying the store, so identical requests — whatever
// their field order or explicit defaults — produce bit-identical
// results, the second one marked as a store hit. Concurrent jobs for
// the same workload share a configuration-keyed evaluation memo (via
// core.Instance.MeasureCache), so overlapping searches never pay for
// the same measurement twice.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetopt/internal/core"
	"hetopt/internal/graph"
	"hetopt/internal/offload"
	"hetopt/internal/scenario"
	"hetopt/internal/search"
	"hetopt/internal/space"
	"hetopt/internal/strategy"
)

// Options configures a Server. The zero value selects the paper
// platform and schema, 4 workers, a 64-slot queue and an unbounded
// store.
type Options struct {
	// Platform overrides the measurement substrate of the "paper"
	// platform (tests and embedders); nil resolves every platform,
	// "paper" included, from the scenario registry.
	Platform *offload.Platform
	// Schema overrides the configuration space of the "paper" platform;
	// nil resolves it from the scenario registry.
	Schema *space.Schema
	// Plan overrides the model-training grid for the ML methods on every
	// scenario; the zero value derives a per-(platform, family) plan
	// from the scenario registry. Models are trained lazily, once per
	// (platform, family), on the first EML/SAML job for it.
	Plan core.TrainingPlan
	// DefaultWorkload and DefaultPlatform fill requests that name
	// neither a workload nor a genome / no platform; empty keeps the
	// wire defaults ("dna:human" on "paper"). cmd/hetserved sets them
	// from -workload and -platform.
	DefaultWorkload string
	DefaultPlatform string
	// TrainOpt configures model fitting.
	TrainOpt core.TrainOptions
	// Workers is the worker-pool size; <= 0 selects 4.
	Workers int
	// QueueSize bounds the pending-job queue (backpressure beyond it);
	// <= 0 selects 64.
	QueueSize int
	// StoreSize bounds the warm-start store (LRU eviction beyond it);
	// <= 0 means unbounded.
	StoreSize int
	// StoreShards is the warm-start store's lock-stripe count; <= 0
	// selects the default (16, fewer when StoreSize is smaller). A
	// single shard gives exact global LRU order; more shards spread
	// concurrent warm hits over independent locks.
	StoreShards int
	// JobRetention bounds the job-status registry: beyond it the oldest
	// completed jobs are forgotten (their GET answers 404; queued and
	// running jobs are never evicted). <= 0 selects 4096.
	JobRetention int
	// Parallelism is the per-job search worker count; <= 0 runs each
	// job sequentially. It never affects results, only wall-clock.
	Parallelism int
	// Cluster makes this server one member of a consistent-hash
	// sharded cluster (forwarding, scatter-gather, replication and
	// failover); nil serves single-node. See ClusterOptions.
	Cluster *ClusterOptions
}

// job is the server-side state of one submission.
type job struct {
	mu     sync.Mutex
	id     string
	key    string
	req    TuneRequest // canonical
	state  JobState
	cached bool
	result *TuneResult
	err    string
	done   chan struct{} // closed on the terminal transition (wait=1)
}

// setDone transitions the job to done/failed and wakes wait=1 callers.
func (j *job) setDone(res TuneResult, err error, cached bool) {
	j.mu.Lock()
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
		j.cached = cached
		j.result = &res
	}
	j.mu.Unlock()
	if j.done != nil {
		close(j.done)
	}
}

// finished reports whether the job reached a terminal state.
func (j *job) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == JobDone || j.state == JobFailed
}

// status snapshots the job's wire form.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.id,
		State:   j.state,
		Cached:  j.cached,
		Request: j.req,
		Key:     j.key,
		Error:   j.err,
	}
	if j.result != nil {
		r := *j.result
		st.Result = &r
	}
	return st
}

// workloadKey identifies the shared evaluation state of one workload on
// one platform.
type workloadKey struct {
	platform string
	name     string
	sizeMB   float64
}

// Server is the tuning service. Construct with New; it implements
// http.Handler.
type Server struct {
	opt     Options
	pool    *Pool
	store   *Store
	mux     *http.ServeMux
	met     metrics
	cluster *clusterState // nil on a single-node server

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string // registration order, drives retention eviction
	nextID   atomic.Int64

	draining atomic.Bool

	platMu    sync.Mutex
	platforms map[string]*platformState

	trainMu sync.Mutex
	trained map[trainKey]*trainState

	evalMu     sync.Mutex
	memos      map[workloadKey]*search.Memo[space.Config, offload.Measurement]
	memoOrder  []workloadKey
	predictors map[workloadKey]*core.Predictor
	predOrder  []workloadKey

	// runFn executes one canonical request; tests substitute it to
	// exercise pool/store semantics without real tuning runs.
	runFn func(TuneRequest) (TuneResult, error)
}

// New builds a Server and starts its worker pool. It panics on an
// invalid Options.Cluster (a static configuration error); cluster
// embedders wanting an error instead use NewCluster.
func New(opt Options) *Server {
	s, err := NewCluster(opt)
	if err != nil {
		panic(err)
	}
	return s
}

// NewCluster is New returning cluster-configuration errors instead of
// panicking; with a nil Options.Cluster it never fails.
func NewCluster(opt Options) (*Server, error) {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.QueueSize <= 0 {
		opt.QueueSize = 64
	}
	if opt.JobRetention <= 0 {
		opt.JobRetention = 4096
	}
	if opt.StoreShards <= 0 {
		opt.StoreShards = defaultStoreShards
	}
	s := &Server{
		opt:        opt,
		pool:       NewPool(opt.Workers, opt.QueueSize),
		store:      NewStoreShards(opt.StoreSize, opt.StoreShards),
		jobs:       map[string]*job{},
		platforms:  map[string]*platformState{},
		trained:    map[trainKey]*trainState{},
		memos:      map[workloadKey]*search.Memo[space.Config, offload.Measurement]{},
		predictors: map[workloadKey]*core.Predictor{},
	}
	s.runFn = s.runTune
	if opt.Cluster != nil {
		cl, err := newClusterState(*opt.Cluster)
		if err != nil {
			return nil, err
		}
		s.cluster = cl
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("POST /v1/jobs:batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	if s.cluster != nil {
		s.mux.HandleFunc("POST /v1/cluster/replicate", s.handleReplicate)
	}
	return s, nil
}

// platformState is the lazily built per-platform substrate shared by
// every job on that platform.
type platformState struct {
	spec     scenario.PlatformSpec
	platform *offload.Platform
	schema   *space.Schema
}

// platformFor resolves a canonical platform name into its shared state,
// building it on first use. Options.Platform/Schema, when set, override
// the "paper" platform so embedders and tests can substitute their own
// substrate without touching the registry.
func (s *Server) platformFor(name string) (*platformState, error) {
	s.platMu.Lock()
	defer s.platMu.Unlock()
	if st, ok := s.platforms[name]; ok {
		return st, nil
	}
	spec, err := scenario.PlatformByName(name)
	if err != nil {
		return nil, err
	}
	st := &platformState{spec: spec}
	if name == "paper" && s.opt.Platform != nil {
		st.platform = s.opt.Platform
	} else {
		st.platform = spec.Platform()
	}
	if name == "paper" && s.opt.Schema != nil {
		st.schema = s.opt.Schema
	} else {
		st.schema, err = spec.Schema()
		if err != nil {
			return nil, err
		}
	}
	s.platforms[name] = st
	return st, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops job intake and waits for every accepted job — queued and
// in-flight — to finish, or for ctx to expire. Call after shutting the
// HTTP listener down.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pool.Shutdown(ctx)
	if s.cluster != nil && s.cluster.repl != nil {
		// After the pool: the last completions have enqueued their
		// replication, and Close drains the queue (each delivery
		// bounded by the short replication timeout).
		s.cluster.repl.Close()
	}
	return err
}

// writeJSON marshals v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorJSON is the error envelope of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

// jobID formats identifier n as "j-" plus n zero-padded to at least six
// digits — byte-identical to fmt.Sprintf("j-%06d", n), including the
// sign placement for negative values — without the fmt machinery on the
// submit path.
func jobID(n int64) string {
	var num [20]byte
	d := strconv.AppendInt(num[:0], n, 10)
	sign := 0
	if d[0] == '-' {
		sign = 1
	}
	pad := 6 - len(d)
	if pad < 0 {
		pad = 0
	}
	b := make([]byte, 0, 2+pad+len(d))
	b = append(b, 'j', '-')
	b = append(b, d[:sign]...)
	for i := 0; i < pad; i++ {
		b = append(b, '0')
	}
	b = append(b, d[sign:]...)
	return string(b)
}

// submit turns one canonical (already-normalized) request into a job
// status: answered inline from the warm-start store when possible (no
// registry entry, no pool slot — the returned status is terminal and
// has no id), registered and enqueued on the pool otherwise. A full
// queue or a draining server is reported as an error with nothing
// registered.
func (s *Server) submit(req TuneRequest) (JobStatus, error) {
	st, _, err := s.submitJob(req)
	return st, err
}

// submitJob is submit returning the registered job alongside the
// status, so wait=1 callers can block on its terminal transition. The
// job is nil for warm hits (nothing to wait for) and on error.
func (s *Server) submitJob(req TuneRequest) (JobStatus, *job, error) {
	if s.draining.Load() {
		return JobStatus{}, nil, ErrPoolClosed
	}
	key := req.Key()

	// Warm start: a completed store entry answers the submission right
	// here — no registry entry, no poll round-trip, no pool slot
	// (cached POSTs are never backpressured).
	start := time.Now()
	if res, ok := s.store.Peek(key); ok {
		s.met.warmHit(time.Since(start))
		return JobStatus{
			State:   JobDone,
			Cached:  true,
			Request: req,
			Key:     key,
			Result:  &res,
		}, nil, nil
	}

	j := &job{
		id:    jobID(s.nextID.Add(1)),
		key:   key,
		req:   req,
		state: JobQueued,
		done:  make(chan struct{}),
	}
	err := s.pool.Submit(func() {
		j.mu.Lock()
		j.state = JobRunning
		j.mu.Unlock()
		res, err, hit := s.store.Do(key, func() (TuneResult, error) {
			return s.runFn(req)
		})
		if err == nil && !hit {
			// Render the warm-hit response bytes once, at completion:
			// every later hit on this key is served these exact bytes.
			body := renderWarmBody(req, key, res)
			s.store.SetBody(key, body)
			// Replication rides the same bytes, enqueued after the
			// stripe lock is long released — the replicator's network
			// I/O can never block the warm path.
			s.replicateEntry(key, body)
		}
		j.setDone(res, err, hit)
		if err != nil {
			s.met.failed.Add(1)
		} else {
			s.met.completed.Add(1)
			if hit {
				s.met.storeHits.Add(1)
			}
		}
		s.met.observeCold(time.Since(start))
	})
	if err != nil {
		s.met.rejected.Add(1)
		return JobStatus{}, nil, err
	}
	s.met.submitted.Add(1)
	s.register(j)
	return j.status(), j, nil
}

// renderWarmBody marshals the terminal status a warm hit answers with —
// the same bytes writeJSON would produce for it, newline included.
func renderWarmBody(req TuneRequest, key string, res TuneResult) []byte {
	st := JobStatus{
		State:   JobDone,
		Cached:  true,
		Request: req,
		Key:     key,
		Result:  &res,
	}
	b, err := json.Marshal(st)
	if err != nil {
		return nil // unreachable: JobStatus marshals
	}
	return append(b, '\n')
}

// register publishes a job for GET /v1/jobs/{id}, forgetting the
// oldest completed jobs beyond the retention bound so the registry
// cannot grow without limit under steady traffic. Queued and running
// jobs are never evicted.
func (s *Server) register(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobs) <= s.opt.JobRetention {
		return
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		jj, ok := s.jobs[id]
		if !ok {
			continue
		}
		if len(s.jobs) > s.opt.JobRetention && jj.finished() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// lookup resolves a job id.
func (s *Server) lookup(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// submitStatus maps a submission error to its HTTP status code.
func submitStatus(err error) int {
	switch err {
	case ErrQueueFull:
		return http.StatusTooManyRequests
	case ErrPoolClosed:
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	s.met.request("jobs")
	// Routing disposition: every jobs request lands in exactly one
	// cluster bucket — forwarded when a peer's answer was streamed
	// through, local otherwise (warm hits, cold computes and error
	// answers alike) — so local+forwarded equals the request count.
	proxied := false
	if s.cluster != nil {
		defer func() {
			if proxied {
				s.cluster.forwarded.Add(1)
			} else {
				s.cluster.local.Add(1)
			}
		}()
	}
	sc := getScratch()
	defer putScratch(sc)
	if err := sc.decode(w, r, &sc.req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	s.applyDefaults(&sc.req)
	req, err := sc.req.Normalize()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	sc.key = req.AppendKey(sc.key[:0])

	// Warm-hit fast path: when the canonical key already names a
	// completed store entry, answer with its pre-rendered bytes — one
	// round-trip, no registry entry, no job id, no poll. Skipped while
	// draining so shutdown keeps its 503 contract. In a cluster this
	// runs before routing: a follower's replicated entry answers here
	// with the owner's exact bytes, no hop paid.
	if !s.draining.Load() {
		start := time.Now()
		if body, res, ok := s.store.PeekWarm(sc.key); ok {
			if body == nil {
				// Completed before this PR's bytes existed (or the
				// render raced): render once, then every later hit is
				// served bytes-only.
				key := string(sc.key)
				body = renderWarmBody(req, key, res)
				s.store.SetBody(key, body)
			}
			s.met.warmHit(time.Since(start))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			return
		}
	}

	// Cluster routing: a non-owned cold key is forwarded to its owner
	// (follower on owner outage), one loop-guarded hop. Forwarding
	// failure on every peer falls through to a local compute — the
	// answer stays byte-identical, results being pure functions of the
	// canonical request. Draining nodes skip the hop so shutdown keeps
	// its 503 contract.
	if s.cluster != nil && !isForwarded(r) && !s.draining.Load() {
		if rt := s.cluster.router.Route(sc.key); !rt.Local {
			if s.forwardJob(w, rt, req) {
				proxied = true
				return
			}
		}
	}

	st, j, err := s.submitJob(req)
	if err != nil {
		writeJSON(w, submitStatus(err), errorJSON{err.Error()})
		return
	}
	if j != nil && r.URL.Query().Get("wait") == "1" {
		// Inline completion on request: block until the job's terminal
		// transition (or the client gives up) instead of answering 202.
		select {
		case <-j.done:
			st = j.status()
		case <-r.Context().Done():
			st = j.status()
		}
	}
	code := http.StatusAccepted
	if st.State == JobDone || st.State == JobFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.request("batch")
	sc := getScratch()
	defer putScratch(sc)
	var batch BatchRequest
	if err := sc.decode(w, r, &batch); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	reqs, err := batch.expand()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	// Normalize the whole batch before submitting any member: a batch
	// with a malformed request is rejected atomically, and the
	// canonical forms are reused for submission and rejection alike.
	canon := make([]TuneRequest, len(reqs))
	for i, raw := range reqs {
		s.applyDefaults(&raw)
		c, err := raw.Normalize()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		canon[i] = c
	}
	// Cluster scatter-gather: members fan out to their owning shards
	// in parallel (an alpha sweep runs on every node's hot store at
	// once) and the front merges deterministically in expansion order,
	// every member terminal. Forwarded batches (loop guard) and
	// draining servers keep the local path.
	if s.cluster != nil && !isForwarded(r) && !s.draining.Load() {
		resp := s.scatterBatch(canon)
		code := http.StatusOK
		rejected := 0
		for _, st := range resp.Jobs {
			if st.State == JobRejected {
				rejected++
			}
		}
		if rejected == len(resp.Jobs) {
			code = http.StatusTooManyRequests
		}
		writeJSON(w, code, resp)
		return
	}

	resp := BatchResponse{Jobs: make([]JobStatus, 0, len(canon))}
	accepted := 0
	for _, req := range canon {
		st, err := s.submit(req)
		if err != nil {
			// Queue backpressure mid-batch: report the member rejected
			// in-line and keep going — accepted members stay valid.
			resp.Jobs = append(resp.Jobs, JobStatus{
				State:   JobRejected,
				Request: req,
				Key:     req.Key(),
				Error:   err.Error(),
			})
			continue
		}
		accepted++
		resp.Jobs = append(resp.Jobs, st)
	}
	code := http.StatusAccepted
	if accepted == 0 {
		// Nothing got in: backpressure (429), or shutdown (503).
		code = http.StatusTooManyRequests
		if s.draining.Load() {
			code = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	s.met.request("get_job")
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorJSON{fmt.Sprintf("serve: unknown job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.request("healthz")
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.jobsMu.Lock()
	jobs := len(s.jobs)
	s.jobsMu.Unlock()
	writeJSON(w, http.StatusOK, Health{
		Status:  status,
		Workers: s.opt.Workers,
		Jobs:    jobs,
		Entries: s.store.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.request("metrics")
	writeJSON(w, http.StatusOK, s.Metrics())
}

// maxWorkloadStates bounds the per-workload shared state maps (memos,
// predictors): workload identity includes the caller-controlled
// size_mb, so without a bound a size scan would accumulate state
// forever. Beyond the bound the oldest workload's state is dropped —
// in-flight jobs keep their pointers (still correct, just no sharing
// with future jobs for that workload).
const maxWorkloadStates = 64

// sharedMemo returns the per-workload evaluation memo, creating it on
// first use. Every concurrent job for the same workload funnels its
// measurements through this memo, so overlapping searches pay for each
// configuration once.
func (s *Server) sharedMemo(k workloadKey) *search.Memo[space.Config, offload.Measurement] {
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	m, ok := s.memos[k]
	if !ok {
		m = search.NewShardedMemo[space.Config, offload.Measurement](16, search.HashConfig)
		s.memos[k] = m
		s.memoOrder = append(s.memoOrder, k)
		if len(s.memoOrder) > maxWorkloadStates {
			delete(s.memos, s.memoOrder[0])
			s.memoOrder = s.memoOrder[1:]
		}
	}
	return m
}

// memoEval is a per-job evaluator funneling this job's measurer
// through the workload's shared memo. Two layers keep the accounting
// deterministic while the physical work is shared: the per-job memo
// charges this job's effort counter exactly once per distinct
// configuration it visits — whether the shared memo computes the
// measurement or replays one another job paid — so a job's Experiments
// is a pure function of its request, not of cache warmth; the shared
// memo ensures each configuration is physically measured at most once
// per workload across the whole server.
type memoEval struct {
	jobMemo *search.Memo[space.Config, offload.Measurement]
	shared  *search.Memo[space.Config, offload.Measurement]
	meas    *core.Measurer
}

// newMemoEval builds the two-layer evaluator for one job.
func newMemoEval(shared *search.Memo[space.Config, offload.Measurement], meas *core.Measurer) *memoEval {
	return &memoEval{
		jobMemo: search.NewShardedMemo[space.Config, offload.Measurement](16, search.HashConfig),
		shared:  shared,
		meas:    meas,
	}
}

// Evaluate implements core.Evaluator.
func (e *memoEval) Evaluate(cfg space.Config) (offload.Measurement, error) {
	// Repeat visits take the allocation-free fast path; a hit on the
	// per-job memo charges nothing, exactly like a Do hit.
	if v, ok, err := e.jobMemo.Get(cfg); ok {
		return v, err
	}
	return e.jobMemo.Do(cfg, func() (offload.Measurement, error) {
		computed := false
		m, err := e.shared.Do(cfg, func() (offload.Measurement, error) {
			computed = true
			return e.meas.Evaluate(cfg)
		})
		if err == nil && !computed {
			// Served by another job's measurement: charge the logical
			// experiment without re-running it.
			e.meas.Charge()
		}
		return m, err
	})
}

// trainKey identifies one (platform, workload family) model pair.
type trainKey struct {
	platform string
	family   string
}

// trainState trains once per key and replays the outcome afterwards.
type trainState struct {
	once   sync.Once
	models *core.Models
	err    error
}

// trainedModels trains the prediction models for one (platform, family)
// pair exactly once (first ML job for it) and replays the outcome
// afterwards. Options.Plan, when set, overrides the registry-derived
// training grid.
func (s *Server) trainedModels(st *platformState, fam scenario.Family) (*core.Models, error) {
	key := trainKey{platform: strings.ToLower(st.spec.Name), family: strings.ToLower(fam.Name)}
	s.trainMu.Lock()
	ts, ok := s.trained[key]
	if !ok {
		ts = &trainState{}
		s.trained[key] = ts
	}
	s.trainMu.Unlock()
	ts.once.Do(func() {
		plan := s.opt.Plan
		if len(plan.Workloads) == 0 {
			plan = st.spec.TrainingPlan(fam)
		}
		ts.models, ts.err = core.Train(st.platform, plan, s.opt.TrainOpt)
	})
	return ts.models, ts.err
}

// Pretrain trains the default scenario's prediction models (the DNA
// family on the paper platform) eagerly; otherwise the first EML/SAML
// job for a scenario pays that scenario's one-time training cost.
func (s *Server) Pretrain() error {
	st, err := s.platformFor("paper")
	if err != nil {
		return err
	}
	fam, err := scenario.FamilyByName("dna")
	if err != nil {
		return err
	}
	_, err = s.trainedModels(st, fam)
	return err
}

// applyDefaults fills a raw request's workload/platform from the
// server's configured defaults before normalization.
func (s *Server) applyDefaults(r *TuneRequest) {
	if r.Workload == "" && r.Genome == "" {
		r.Workload = s.opt.DefaultWorkload
	}
	if r.Platform == "" {
		r.Platform = s.opt.DefaultPlatform
	}
}

// handleScenarios answers GET /v1/scenarios with the catalog of
// registered workload families and platform specs — every valid value
// of TuneRequest.Workload and TuneRequest.Platform.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	s.met.request("scenarios")
	writeJSON(w, http.StatusOK, Scenarios())
}

// Scenarios assembles the wire form of the registered scenario catalog.
func Scenarios() ScenariosResponse {
	var resp ScenariosResponse
	for _, f := range scenario.Families() {
		ww := WorkloadWire{
			Name:        f.Name,
			Description: f.Description,
			Class:       string(f.Class),
			Default:     f.Presets[0].Name,
		}
		for _, p := range f.Presets {
			qualified := p.Qualified(f)
			ww.Presets = append(ww.Presets, PresetWire{Name: p.Name, Workload: qualified, SizeMB: p.SizeMB})
			if canon, err := scenario.CanonicalWorkloadName(p.Name); err == nil && canon == qualified {
				ww.Aliases = append(ww.Aliases, strings.ToLower(p.Name))
			}
		}
		resp.Workloads = append(resp.Workloads, ww)
	}
	for _, p := range scenario.Platforms() {
		pw := PlatformWire{
			Name:        p.Name,
			Description: p.Description,
			Host:        p.Host().Name,
			Device:      p.Device().Name,
		}
		if schema, err := p.Schema(); err == nil {
			pw.Configurations = schema.Size()
		}
		resp.Platforms = append(resp.Platforms, pw)
	}
	return resp
}

// predictor returns the shared per-workload predictor (its internal
// memo tables are concurrency-safe, so jobs share prediction work too).
func (s *Server) predictor(k workloadKey, st *platformState, fam scenario.Family, w offload.Workload) (*core.Predictor, error) {
	models, err := s.trainedModels(st, fam)
	if err != nil {
		return nil, err
	}
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	if p, ok := s.predictors[k]; ok {
		return p, nil
	}
	p, err := core.NewPredictor(models, w, st.platform.Model())
	if err != nil {
		return nil, err
	}
	s.predictors[k] = p
	s.predOrder = append(s.predOrder, k)
	if len(s.predOrder) > maxWorkloadStates {
		delete(s.predictors, s.predOrder[0])
		s.predOrder = s.predOrder[1:]
	}
	return p, nil
}

// runTune executes one canonical request on the strategy layer.
func (s *Server) runTune(req TuneRequest) (TuneResult, error) {
	fam, w, err := req.workload()
	if err != nil {
		return TuneResult{}, err
	}
	st, err := s.platformFor(req.Platform)
	if err != nil {
		return TuneResult{}, err
	}
	method, err := core.ParseMethod(req.Method)
	if err != nil {
		return TuneResult{}, err
	}
	strat, err := core.ParseStrategy(req.Strategy)
	if err != nil {
		return TuneResult{}, err
	}
	if ex, ok := strat.(strategy.Exact); ok {
		// The exact-only request knobs configure the parsed strategy;
		// Normalize guarantees they are zero for every other strategy.
		ex.Prove = req.Prove
		ex.PoolSize = req.PoolSize
		ex.PoolGap = req.PoolGap
		strat = ex
	}
	if fam.IsDAG() {
		return s.runDAGTune(req, st, method, strat)
	}

	wk := workloadKey{platform: req.Platform, name: w.Name, sizeMB: w.SizeMB}
	meas := core.NewMeasurer(st.platform, w)
	inst := &core.Instance{
		Schema:       st.schema,
		Measurer:     meas,
		MeasureCache: newMemoEval(s.sharedMemo(wk), meas),
	}
	if method.UsesML() {
		pred, err := s.predictor(wk, st, fam, w)
		if err != nil {
			return TuneResult{}, err
		}
		inst.Predictor = pred
	}

	opt := core.Options{
		Iterations:  req.Iterations,
		Seed:        req.Seed,
		Restarts:    req.Restarts,
		Parallelism: s.opt.Parallelism,
		Strategy:    strat,
	}

	if req.Objective == "bounded" {
		timeRes, energyRes, err := core.RunWithTimeSlack(method, inst, opt, req.Slack)
		if err != nil {
			return TuneResult{}, err
		}
		out := tuneResult(energyRes)
		ref := tuneResult(timeRes)
		out.TimeReference = &ref
		return out, nil
	}

	obj, err := core.ParseObjective(req.Objective, req.Alpha)
	if err != nil {
		return TuneResult{}, err
	}
	opt.Objective = obj
	res, err := core.Run(method, inst, opt)
	if err != nil {
		return TuneResult{}, err
	}
	return tuneResult(res), nil
}

// runDAGTune executes one canonical DAG placement request: the graph
// simulator replaces the measurement substrate, and the method's preset
// explorer maps onto the placement search — EM/EML enumerate the 2^n
// placements, SAM/SAML anneal; an explicit strategy overrides either.
// The ML methods have no separate prediction phase here (the simulator
// is already a model), so EML/SAML behave like EM/SAM on graphs.
func (s *Server) runDAGTune(req TuneRequest, st *platformState, method core.Method, strat strategy.Strategy) (TuneResult, error) {
	fam, preset, err := scenario.Resolve(req.Workload)
	if err != nil {
		return TuneResult{}, err
	}
	g, err := fam.Graph(preset.Name)
	if err != nil {
		return TuneResult{}, err
	}
	sim, err := st.spec.DAGSim(g)
	if err != nil {
		return TuneResult{}, err
	}
	if strat == nil { // "auto": the method's preset explorer
		if method.UsesAnnealing() {
			strat = strategy.DefaultAnneal()
		} else {
			strat = strategy.Exhaustive{}
		}
	}
	res, err := graph.Tune(sim, strat, strategy.Options{
		Budget:      req.Iterations,
		Seed:        req.Seed,
		Restarts:    req.Restarts,
		Parallelism: s.opt.Parallelism,
	})
	if err != nil {
		return TuneResult{}, err
	}
	return dagTuneResult(method, sim, res), nil
}

// Endpoints lists the service's routes in presentation order (used by
// the CLI's startup banner).
func Endpoints() []string {
	return []string{
		"POST /v1/jobs",
		"POST /v1/jobs:batch",
		"GET  /v1/jobs/{id}",
		"GET  /v1/scenarios",
		"GET  /v1/healthz",
		"GET  /v1/metrics",
	}
}
