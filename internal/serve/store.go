package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Store is the warm-start result store: a concurrency-safe,
// single-flight, optionally size-bounded table of completed tuning
// results keyed on the canonicalized request (TuneRequest.Key). Repeat
// queries are answered from the store with hit accounting, and
// concurrent first queries for the same key share one computation —
// the same single-flight discipline as search.Memo, extended with LRU
// eviction and with "did this call pay?" reporting so jobs can be
// marked as store hits.
//
// Entries are striped over independently locked shards (the same
// 16-shard/atomic-done idiom as search.NewShardedMemo) so the warm-hit
// fast path of concurrent submissions never serializes on one mutex,
// and each completed entry can carry its marshaled response bytes
// (SetBody/PeekWarm): warm hits are served by writing stored bytes, so
// bit-identity of repeated answers is structural — every hit literally
// returns the same bytes — rather than a property of re-marshaling.
//
// Results are pure functions of the canonical request, so serving from
// the store never changes a returned value — identical requests yield
// bit-identical results whether computed or replayed.
type Store struct {
	shards []storeShard

	lookups   atomic.Int64
	hits      atomic.Int64
	evictions atomic.Int64
}

// storeShard is one lock stripe: a mutex, the entries it guards, that
// stripe's LRU list and its share of the capacity bound.
type storeShard struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
	lru     *list.List // front = most recently used; values are keys
	cap     int        // per-shard bound; <= 0 means unbounded
}

// storeEntry holds one single-flight computation.
type storeEntry struct {
	once sync.Once
	res  TuneResult
	body []byte // pre-rendered warm-hit response bytes (may lag res)
	err  error
	done bool          // set under the shard mutex once the computation finished
	elem *list.Element // position in the shard's LRU list
}

// defaultStoreShards stripes the store: enough locks that concurrent
// warm hits rarely collide, few enough that the table stays cheap.
const defaultStoreShards = 16

// NewStore returns an empty store evicting least-recently-used completed
// entries beyond capacity; capacity <= 0 means unbounded. The store is
// striped over 16 shards (fewer when capacity is smaller than that);
// the capacity bound is enforced per shard, so the effective bound is
// capacity rounded down to a multiple of the shard count.
func NewStore(capacity int) *Store {
	return NewStoreShards(capacity, defaultStoreShards)
}

// NewStoreShards is NewStore with an explicit shard count (shards < 1
// selects 1). A single-shard store enforces exact global LRU order;
// sharded stores enforce it per stripe.
func NewStoreShards(capacity, shards int) *Store {
	if shards < 1 {
		shards = 1
	}
	if capacity > 0 && shards > capacity {
		shards = capacity
	}
	perShard := 0
	if capacity > 0 {
		perShard = capacity / shards
		if perShard < 1 {
			perShard = 1
		}
	}
	s := &Store{shards: make([]storeShard, shards)}
	for i := range s.shards {
		s.shards[i] = storeShard{
			entries: map[string]*storeEntry{},
			lru:     list.New(),
			cap:     perShard,
		}
	}
	return s
}

// shardFor routes a key to its stripe by FNV-1a over the key bytes.
// Routing only spreads keys over locks; no result depends on it.
func (s *Store) shardFor(key []byte) *storeShard {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return &s.shards[h%uint64(len(s.shards))]
}

// shardForString is shardFor over a string key (no conversion copy).
func (s *Store) shardForString(key string) *storeShard {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &s.shards[h%uint64(len(s.shards))]
}

// Peek returns the completed result for key without computing anything,
// refreshing its LRU position. It counts a lookup (and a hit) only when
// it finds one, so a Peek-miss followed by Do still accounts exactly one
// lookup per served job.
func (s *Store) Peek(key string) (TuneResult, bool) {
	sh := s.shardForString(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok || !e.done || e.err != nil {
		sh.mu.Unlock()
		return TuneResult{}, false
	}
	sh.lru.MoveToFront(e.elem)
	res := e.res
	sh.mu.Unlock()
	s.lookups.Add(1)
	s.hits.Add(1)
	return res, true
}

// PeekWarm is the warm-hit fast path of the serving layer: it looks a
// completed entry up by its key bytes — the map access compiles to an
// allocation-free string lookup — and returns the pre-rendered response
// body alongside the result. A nil body with ok true means the entry
// completed but its bytes have not been rendered yet (SetBody pending);
// the caller renders once and every later hit is served bytes-only.
// Accounting matches Peek: one lookup and one hit, only on success.
func (s *Store) PeekWarm(key []byte) (body []byte, res TuneResult, ok bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, found := sh.entries[string(key)]
	if !found || !e.done || e.err != nil {
		sh.mu.Unlock()
		return nil, TuneResult{}, false
	}
	sh.lru.MoveToFront(e.elem)
	body, res = e.body, e.res
	sh.mu.Unlock()
	s.lookups.Add(1)
	s.hits.Add(1)
	return body, res, true
}

// SetBody attaches the pre-rendered warm-hit response bytes to a
// completed entry. The first caller wins; later calls (concurrent
// renders of the same bytes) are no-ops. The body must be immutable
// after the call — hits hand the same slice to every writer.
func (s *Store) SetBody(key string, body []byte) {
	sh := s.shardForString(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok && e.done && e.err == nil && e.body == nil {
		e.body = body
	}
	sh.mu.Unlock()
}

// Install inserts an already-completed entry — a replicated result
// from a cluster peer — alongside its pre-rendered response bytes,
// which later hits serve verbatim (the byte-identity of failover
// answers is inherited from the owner's bytes, not re-derived). The
// local store wins every race: when the key already has an entry,
// in-flight or completed, Install is a no-op and reports false. It
// counts neither a lookup nor a hit (replication is not traffic).
func (s *Store) Install(key string, res TuneResult, body []byte) bool {
	sh := s.shardForString(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[key]; ok {
		return false
	}
	e := &storeEntry{res: res, body: body, done: true}
	// Consume the single-flight slot so a racing Do on this entry can
	// never recompute over the installed result.
	e.once.Do(func() {})
	e.elem = sh.lru.PushFront(key)
	sh.entries[key] = e
	s.evictLocked(sh)
	return true
}

// Do returns the stored result for key, computing it with fn on the
// first call; concurrent first calls block until the single computation
// finishes and share its outcome. The hit return reports whether this
// call was served without paying for the computation. Failed
// computations are not retained: the error is returned to every call
// sharing the flight, then the entry is dropped so a later request
// recomputes.
func (s *Store) Do(key string, fn func() (TuneResult, error)) (res TuneResult, err error, hit bool) {
	s.lookups.Add(1)
	sh := s.shardForString(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		e = &storeEntry{}
		e.elem = sh.lru.PushFront(key)
		sh.entries[key] = e
	} else {
		sh.lru.MoveToFront(e.elem)
	}
	sh.mu.Unlock()

	computed := false
	e.once.Do(func() {
		computed = true
		e.res, e.err = fn()
		sh.mu.Lock()
		if e.err != nil {
			// Drop failed entries (only if still ours: a concurrent
			// replacement is someone else's flight).
			if sh.entries[key] == e {
				delete(sh.entries, key)
				sh.lru.Remove(e.elem)
			}
		} else {
			e.done = true
			s.evictLocked(sh)
		}
		sh.mu.Unlock()
	})
	if !computed {
		s.hits.Add(1)
	}
	return e.res, e.err, !computed
}

// evictLocked drops least-recently-used completed entries beyond the
// shard's capacity. In-flight entries are never evicted (their flight
// must stay shared); callers hold sh.mu.
func (s *Store) evictLocked(sh *storeShard) {
	if sh.cap <= 0 {
		return
	}
	for elem := sh.lru.Back(); elem != nil && len(sh.entries) > sh.cap; {
		prev := elem.Prev()
		key := elem.Value.(string)
		if e := sh.entries[key]; e != nil && e.done {
			delete(sh.entries, key)
			sh.lru.Remove(elem)
			s.evictions.Add(1)
		}
		elem = prev
	}
}

// Len returns the number of entries (in-flight included).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Lookups, Hits and Evictions report the store accounting: one lookup
// per served job, Hits of which were answered without a computation.
func (s *Store) Lookups() int { return int(s.lookups.Load()) }

// Hits returns the number of lookups served without paying for a run.
func (s *Store) Hits() int { return int(s.hits.Load()) }

// Evictions returns the number of completed entries dropped by the
// capacity bound.
func (s *Store) Evictions() int { return int(s.evictions.Load()) }
