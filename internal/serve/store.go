package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Store is the warm-start result store: a concurrency-safe,
// single-flight, optionally size-bounded table of completed tuning
// results keyed on the canonicalized request (TuneRequest.Key). Repeat
// queries are answered from the store with hit accounting, and
// concurrent first queries for the same key share one computation —
// the same single-flight discipline as search.Memo, extended with LRU
// eviction and with "did this call pay?" reporting so jobs can be
// marked as store hits.
//
// Results are pure functions of the canonical request, so serving from
// the store never changes a returned value — identical requests yield
// bit-identical results whether computed or replayed.
type Store struct {
	mu      sync.Mutex
	entries map[string]*storeEntry
	lru     *list.List // front = most recently used; values are keys
	cap     int

	lookups   atomic.Int64
	hits      atomic.Int64
	evictions atomic.Int64
}

// storeEntry holds one single-flight computation.
type storeEntry struct {
	once sync.Once
	res  TuneResult
	err  error
	done bool          // set under Store.mu once the computation finished
	elem *list.Element // position in the LRU list
}

// NewStore returns an empty store evicting least-recently-used completed
// entries beyond capacity; capacity <= 0 means unbounded.
func NewStore(capacity int) *Store {
	return &Store{
		entries: map[string]*storeEntry{},
		lru:     list.New(),
		cap:     capacity,
	}
}

// Peek returns the completed result for key without computing anything,
// refreshing its LRU position. It counts a lookup (and a hit) only when
// it finds one, so a Peek-miss followed by Do still accounts exactly one
// lookup per served job.
func (s *Store) Peek(key string) (TuneResult, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok || !e.done || e.err != nil {
		s.mu.Unlock()
		return TuneResult{}, false
	}
	s.lru.MoveToFront(e.elem)
	s.mu.Unlock()
	s.lookups.Add(1)
	s.hits.Add(1)
	return e.res, true
}

// Do returns the stored result for key, computing it with fn on the
// first call; concurrent first calls block until the single computation
// finishes and share its outcome. The hit return reports whether this
// call was served without paying for the computation. Failed
// computations are not retained: the error is returned to every call
// sharing the flight, then the entry is dropped so a later request
// recomputes.
func (s *Store) Do(key string, fn func() (TuneResult, error)) (res TuneResult, err error, hit bool) {
	s.lookups.Add(1)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &storeEntry{}
		e.elem = s.lru.PushFront(key)
		s.entries[key] = e
	} else {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()

	computed := false
	e.once.Do(func() {
		computed = true
		e.res, e.err = fn()
		s.mu.Lock()
		if e.err != nil {
			// Drop failed entries (only if still ours: a concurrent
			// replacement is someone else's flight).
			if s.entries[key] == e {
				delete(s.entries, key)
				s.lru.Remove(e.elem)
			}
		} else {
			e.done = true
			s.evictLocked()
		}
		s.mu.Unlock()
	})
	if !computed {
		s.hits.Add(1)
	}
	return e.res, e.err, !computed
}

// evictLocked drops least-recently-used completed entries beyond the
// capacity. In-flight entries are never evicted (their flight must stay
// shared); callers hold s.mu.
func (s *Store) evictLocked() {
	if s.cap <= 0 {
		return
	}
	for elem := s.lru.Back(); elem != nil && len(s.entries) > s.cap; {
		prev := elem.Prev()
		key := elem.Value.(string)
		if e := s.entries[key]; e != nil && e.done {
			delete(s.entries, key)
			s.lru.Remove(elem)
			s.evictions.Add(1)
		}
		elem = prev
	}
}

// Len returns the number of entries (in-flight included).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Lookups, Hits and Evictions report the store accounting: one lookup
// per served job, Hits of which were answered without a computation.
func (s *Store) Lookups() int { return int(s.lookups.Load()) }

// Hits returns the number of lookups served without paying for a run.
func (s *Store) Hits() int { return int(s.hits.Load()) }

// Evictions returns the number of completed entries dropped by the
// capacity bound.
func (s *Store) Evictions() int { return int(s.evictions.Load()) }
