package serve

import (
	"net/http"
	"testing"

	"hetopt/internal/scenario"
)

// TestScenariosEndpoint: GET /v1/scenarios advertises the full catalog,
// and every advertised workload/platform name round-trips through
// request normalization — what the endpoint offers, POST /v1/jobs
// accepts.
func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	var resp ScenariosResponse
	if code := getJSON(t, ts.URL+"/v1/scenarios", &resp); code != http.StatusOK {
		t.Fatalf("GET /v1/scenarios: status %d", code)
	}
	if len(resp.Workloads) != len(scenario.Families()) {
		t.Fatalf("endpoint lists %d workload families, registry has %d", len(resp.Workloads), len(scenario.Families()))
	}
	if len(resp.Platforms) != len(scenario.Platforms()) {
		t.Fatalf("endpoint lists %d platforms, registry has %d", len(resp.Platforms), len(scenario.Platforms()))
	}
	for _, w := range resp.Workloads {
		if w.Name == "" || w.Description == "" || len(w.Presets) == 0 || w.Default == "" {
			t.Errorf("incomplete workload entry: %+v", w)
		}
		for _, p := range w.Presets {
			n, err := (TuneRequest{Workload: p.Workload}).Normalize()
			if err != nil {
				t.Errorf("advertised workload %q rejected by Normalize: %v", p.Workload, err)
				continue
			}
			if n.Workload != p.Workload {
				t.Errorf("advertised workload %q canonicalizes to %q; the endpoint must advertise canonical names", p.Workload, n.Workload)
			}
			if p.SizeMB <= 0 {
				t.Errorf("preset %q advertises size %g", p.Workload, p.SizeMB)
			}
		}
		for _, alias := range w.Aliases {
			n, err := (TuneRequest{Workload: alias}).Normalize()
			if err != nil {
				t.Errorf("advertised alias %q rejected: %v", alias, err)
				continue
			}
			if got, want := n.Workload, w.Name+":"+alias; got != want {
				t.Errorf("alias %q canonicalized to %q, want %q", alias, got, want)
			}
		}
	}
	for _, p := range resp.Platforms {
		if p.Name == "" || p.Description == "" || p.Host == "" || p.Device == "" || p.Configurations <= 0 {
			t.Errorf("incomplete platform entry: %+v", p)
		}
		if _, err := (TuneRequest{Platform: p.Name}).Normalize(); err != nil {
			t.Errorf("advertised platform %q rejected by Normalize: %v", p.Name, err)
		}
	}
}

// TestScenarioJobsAcrossPlatforms: the same workload tuned on two
// platforms yields distinct store keys and genuinely different tuned
// configurations; re-POSTing either is a warm-start hit.
func TestScenarioJobsAcrossPlatforms(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueSize: 8, Parallelism: 4})
	paper := submitAndWait(t, ts.URL, `{"workload":"spmv","method":"sam","iterations":80,"seed":3}`)
	if paper.State != JobDone || paper.Result == nil {
		t.Fatalf("spmv-on-paper failed: %+v", paper)
	}
	edge := submitAndWait(t, ts.URL, `{"workload":"spmv","platform":"edge","method":"sam","iterations":80,"seed":3}`)
	if edge.State != JobDone || edge.Result == nil {
		t.Fatalf("spmv-on-edge failed: %+v", edge)
	}
	if paper.Key == edge.Key {
		t.Fatalf("platform not part of the store key: %q", paper.Key)
	}
	if paper.Request.Platform != "paper" || edge.Request.Platform != "edge" {
		t.Fatalf("canonical platforms wrong: %q, %q", paper.Request.Platform, edge.Request.Platform)
	}
	// The edge schema has no 48-thread host level; a result carrying
	// one would mean the paper substrate leaked across platforms.
	if edge.Result.Config.HostThreads > 8 {
		t.Fatalf("edge result uses %d host threads, beyond the edge platform's 8", edge.Result.Config.HostThreads)
	}
	again := submitAndWait(t, ts.URL, `{"seed":3,"iterations":80,"method":"SAM","platform":"Edge","workload":"SPMV:medium"}`)
	if !again.Cached {
		t.Fatalf("respelled edge request missed the store: %+v", again)
	}
	if again.Key != edge.Key {
		t.Fatalf("respelled request keyed %q, want %q", again.Key, edge.Key)
	}
}

// TestServerDefaultScenarioOptions: DefaultWorkload/DefaultPlatform fill
// requests that name neither, and explicit fields still win.
func TestServerDefaultScenarioOptions(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueSize: 4,
		DefaultWorkload: "crypto:small", DefaultPlatform: "edge",
	})
	st := submitAndWait(t, ts.URL, `{"method":"sam","iterations":40,"seed":1}`)
	if st.State != JobDone {
		t.Fatalf("defaulted job failed: %+v", st)
	}
	if st.Request.Workload != "crypto:small" || st.Request.Platform != "edge" {
		t.Fatalf("server defaults not applied: %+v", st.Request)
	}
	explicit := submitAndWait(t, ts.URL, `{"method":"sam","iterations":40,"seed":1,"workload":"human","platform":"paper"}`)
	if explicit.Request.Workload != "dna:human" || explicit.Request.Platform != "paper" {
		t.Fatalf("explicit fields overridden by server defaults: %+v", explicit.Request)
	}
}
