package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestDAGJobEndToEnd: a task-graph workload rides the same async-job
// machinery as divisible kernels — POST, poll, warm-start — and the
// result carries the placement with real device names and a genuine
// speedup over host-only execution.
func TestDAGJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueSize: 8, Parallelism: 4})
	first := submitAndWait(t, ts.URL,
		`{"workload":"dag:resnet-ish","platform":"gpu-like","method":"em","seed":4}`)
	if first.State != JobDone || first.Result == nil {
		t.Fatalf("DAG job did not complete: %+v", first)
	}
	res := first.Result
	if res.Placement == nil {
		t.Fatal("DAG result carries no placement")
	}
	p := res.Placement
	if len(p.Encoded) != len(p.Nodes) || len(p.Nodes) == 0 {
		t.Fatalf("placement encoding %q inconsistent with %d nodes", p.Encoded, len(p.Nodes))
	}
	if p.SpeedupVsHost <= 1.05 {
		t.Errorf("resnet-ish on gpu-like: speedup %.3f, want a measurable win over host-only", p.SpeedupVsHost)
	}
	if p.MakespanSec <= 0 || p.MakespanSec > p.HostOnlySec+1e-12 || p.MakespanSec > p.RoundRobinSec+1e-12 {
		t.Errorf("optimum %.4f loses to a baseline (%+v)", p.MakespanSec, p)
	}
	for _, n := range p.Nodes {
		if n.Name == "" || n.Device == "" {
			t.Errorf("placement node incomplete: %+v", n)
		}
	}
	if !strings.Contains(res.Distribution, "host[") || !strings.Contains(res.Distribution, "device[") {
		t.Errorf("distribution %q does not render the placement", res.Distribution)
	}
	if res.Objective != "time" || res.TimeSec != p.MakespanSec {
		t.Errorf("result times inconsistent: %+v", res)
	}
	if res.Config.HostThreads <= 0 || res.Config.DeviceThreads <= 0 {
		t.Errorf("DAG result carries no side configurations: %+v", res.Config)
	}

	// A respelled equivalent (bare unique preset alias, shuffled fields)
	// must hit the warm-start store and return bit-identical bytes.
	second := submitAndWait(t, ts.URL,
		`{"seed":4,"method":"EM","platform":"GPU-LIKE","workload":"RESNET-ISH"}`)
	if second.State != JobDone || !second.Cached {
		t.Fatalf("respelled DAG request missed the store: %+v", second)
	}
	firstJSON, _ := json.Marshal(first.Result)
	secondJSON, _ := json.Marshal(second.Result)
	if string(firstJSON) != string(secondJSON) {
		t.Errorf("warm-started DAG result differs:\n first  %s\n second %s", firstJSON, secondJSON)
	}
}

// TestDAGJobAnnealingMethods: the SA-based methods map onto the
// placement search (their preset explorer anneals instead of
// enumerating) and still beat round-robin with a reasonable budget.
func TestDAGJobAnnealingMethods(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4, Parallelism: 4})
	st := submitAndWait(t, ts.URL,
		`{"workload":"dag:fork-join","platform":"edge","method":"saml","iterations":400,"restarts":3,"seed":11}`)
	if st.State != JobDone || st.Result == nil || st.Result.Placement == nil {
		t.Fatalf("annealed DAG job failed: %+v", st)
	}
	p := st.Result.Placement
	if p.MakespanSec > p.RoundRobinSec+1e-12 {
		t.Errorf("annealed placement %.4f worse than round-robin %.4f", p.MakespanSec, p.RoundRobinSec)
	}
	if st.Result.SearchEvaluations <= 0 {
		t.Errorf("no evaluations recorded: %+v", st.Result)
	}
}

// TestDAGRequestValidation: the graph class rejects what it cannot
// honor — non-time objectives and size rescaling — with 400s at
// normalization time, and accepts the preset's own size (so canonical
// requests re-normalize to themselves).
func TestDAGRequestValidation(t *testing.T) {
	for _, body := range []string{
		`{"workload":"dag:resnet-ish","objective":"energy"}`,
		`{"workload":"dag:resnet-ish","objective":"weighted","alpha":0.5}`,
		`{"workload":"dag:resnet-ish","objective":"bounded","slack":0.1}`,
		`{"workload":"dag:resnet-ish","size_mb":123}`,
	} {
		if _, err := decodeAndNormalize(t, body); err == nil {
			t.Errorf("request %s accepted, want rejection", body)
		}
	}
	n, err := decodeAndNormalize(t, `{"workload":"dag:resnet-ish"}`)
	if err != nil {
		t.Fatalf("plain DAG request rejected: %v", err)
	}
	if n.SizeMB <= 0 {
		t.Fatalf("normalized DAG request has no size: %+v", n)
	}
	withSize := n
	n2, err := withSize.Normalize()
	if err != nil {
		t.Fatalf("canonical DAG request rejected on re-normalization: %v", err)
	}
	if n2 != n {
		t.Fatalf("DAG normalization not idempotent:\nonce  %+v\ntwice %+v", n, n2)
	}
}

// decodeAndNormalize parses a raw request body and normalizes it.
func decodeAndNormalize(t *testing.T, body string) (TuneRequest, error) {
	t.Helper()
	var r TuneRequest
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	return r.Normalize()
}

// TestScenariosListsDAG: GET /v1/scenarios advertises the graph family
// with its class, its presets resolving like any other workload, while
// divisible families stay class-less (their wire form is unchanged).
func TestScenariosListsDAG(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	var resp ScenariosResponse
	if code := getJSON(t, ts.URL+"/v1/scenarios", &resp); code != http.StatusOK {
		t.Fatalf("GET /v1/scenarios: status %d", code)
	}
	var dag *WorkloadWire
	for i, w := range resp.Workloads {
		if w.Name == "dag" {
			dag = &resp.Workloads[i]
		} else if w.Class != "" {
			t.Errorf("divisible family %q advertises class %q", w.Name, w.Class)
		}
	}
	if dag == nil {
		t.Fatal("/v1/scenarios does not list the dag family")
	}
	if dag.Class != "dag" {
		t.Errorf("dag family advertises class %q", dag.Class)
	}
	want := map[string]bool{"dag:resnet-ish": false, "dag:fork-join": false, "dag:sparse-solver": false}
	for _, p := range dag.Presets {
		if _, ok := want[p.Workload]; ok {
			want[p.Workload] = true
		}
		if p.SizeMB <= 0 {
			t.Errorf("DAG preset %q advertises size %g", p.Workload, p.SizeMB)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("/v1/scenarios misses DAG preset %q", name)
		}
	}
}
