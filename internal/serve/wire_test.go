package serve

import (
	"encoding/json"
	"testing"
)

// normOrFatal normalizes a request, failing the test on error.
func normOrFatal(t *testing.T, r TuneRequest) TuneRequest {
	t.Helper()
	n, err := r.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", r, err)
	}
	return n
}

// TestKeyFieldOrderIndependent is the canonical-keying contract: the
// same request serialized with different JSON field orders (and with or
// without explicit defaults) lands on one store key.
func TestKeyFieldOrderIndependent(t *testing.T) {
	bodies := []string{
		`{"genome":"human","method":"sam","iterations":500,"seed":7}`,
		`{"seed":7,"iterations":500,"method":"sam","genome":"human"}`,
		`{"seed":7,"method":"SAM","genome":"Human","iterations":500,"strategy":"auto","objective":"time","restarts":1}`,
		`{"method":"sam","iterations":500,"seed":7}`, // genome defaults to human
	}
	var want string
	for i, body := range bodies {
		var r TuneRequest
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatalf("unmarshal %q: %v", body, err)
		}
		key := normOrFatal(t, r).Key()
		if i == 0 {
			want = key
			continue
		}
		if key != want {
			t.Fatalf("body %d keyed %q, want %q", i, key, want)
		}
	}
}

// TestKeyDefaultNormalization checks that defaults are folded in: an
// explicit genome size equal to the genome's own size, the default
// iteration budget, and case-insensitive names all share the key.
func TestKeyDefaultNormalization(t *testing.T) {
	base := normOrFatal(t, TuneRequest{})
	if base.Workload != "dna:human" || base.Platform != "paper" || base.Genome != "" ||
		base.Method != "SAML" || base.Strategy != "auto" ||
		base.Objective != "time" || base.Iterations != 1000 || base.Restarts != 1 {
		t.Fatalf("unexpected canonical defaults: %+v", base)
	}
	if base.SizeMB <= 0 {
		t.Fatalf("canonical size not resolved: %+v", base)
	}
	explicit := normOrFatal(t, TuneRequest{
		Genome: "HUMAN", SizeMB: base.SizeMB, Method: "saml",
		Strategy: "AUTO", Objective: "TIME", Iterations: 1000, Restarts: 1,
	})
	if explicit.Key() != base.Key() {
		t.Fatalf("explicit defaults keyed %q, want %q", explicit.Key(), base.Key())
	}
	// The genome alias, the bare preset, the family-qualified form and
	// the platform default all canonicalize to one key.
	for _, alias := range []TuneRequest{
		{Workload: "human"},
		{Workload: "DNA:Human"},
		{Workload: "dna"},
		{Genome: "human", Platform: "PAPER"},
	} {
		if k := normOrFatal(t, alias).Key(); k != base.Key() {
			t.Fatalf("alias %+v keyed %q, want %q", alias, k, base.Key())
		}
	}
}

// TestKeyIgnoredFieldsZeroed: alpha only keys weighted requests, slack
// only bounded ones.
func TestKeyIgnoredFieldsZeroed(t *testing.T) {
	a := normOrFatal(t, TuneRequest{Objective: "time", Alpha: 0.7, Slack: 0.2})
	b := normOrFatal(t, TuneRequest{Objective: "time"})
	if a.Key() != b.Key() {
		t.Fatalf("alpha/slack leaked into a time-objective key:\n%s\n%s", a.Key(), b.Key())
	}
	w1 := normOrFatal(t, TuneRequest{Objective: "weighted", Alpha: 0.3})
	w2 := normOrFatal(t, TuneRequest{Objective: "weighted", Alpha: 0.7})
	if w1.Key() == w2.Key() {
		t.Fatalf("weighted requests with different alphas share a key")
	}
}

// TestKeyDistinguishesRuns: fields that change the run change the key.
func TestKeyDistinguishesRuns(t *testing.T) {
	base := normOrFatal(t, TuneRequest{Method: "sam"})
	variants := []TuneRequest{
		{Method: "sam", Seed: 5},
		{Method: "sam", Iterations: 500},
		{Method: "sam", Genome: "mouse"},
		{Method: "sam", Strategy: "genetic"},
		{Method: "sam", Objective: "energy"},
		{Method: "sam", Restarts: 4},
		{Method: "em"},
		{Method: "sam", SizeMB: 100},
	}
	seen := map[string]bool{base.Key(): true}
	for _, v := range variants {
		k := normOrFatal(t, v).Key()
		if seen[k] {
			t.Fatalf("variant %+v collides with an earlier key %q", v, k)
		}
		seen[k] = true
	}
}

func TestNormalizeRejects(t *testing.T) {
	bad := []TuneRequest{
		{Genome: "plankton"},
		{Method: "annealish"},
		{Strategy: "quantum"},
		{Objective: "vibes"},
		{Objective: "weighted", Alpha: 1.5},
		{Objective: "bounded", Slack: -0.1},
		{Iterations: -1},
		{Restarts: -2},
		{SizeMB: -5},
	}
	for _, r := range bad {
		if _, err := r.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted an invalid request", r)
		}
	}
}

func TestBatchExpand(t *testing.T) {
	b := BatchRequest{
		Requests: []TuneRequest{{Method: "sam"}},
		Template: &TuneRequest{Method: "sam", Iterations: 200},
		Alphas:   []float64{0, 0.5, 1},
	}
	reqs, err := b.expand()
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	if len(reqs) != 4 {
		t.Fatalf("expanded %d requests, want 4", len(reqs))
	}
	for i, a := range []float64{0, 0.5, 1} {
		r := reqs[1+i]
		if r.Objective != "weighted" || r.Alpha != a || r.Iterations != 200 {
			t.Fatalf("alpha expansion %d wrong: %+v", i, r)
		}
	}
	if _, err := (BatchRequest{}).expand(); err == nil {
		t.Fatalf("empty batch accepted")
	}
	if _, err := (BatchRequest{Alphas: []float64{0.5}}).expand(); err == nil {
		t.Fatalf("alphas without template accepted")
	}
}
