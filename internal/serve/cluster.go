package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hetopt/internal/cluster"
)

// ClusterOptions configures a Server as one member of a consistent-
// hash sharded hetserved cluster (see DESIGN.md, "The cluster layer").
// Every member is configured with the same Peers list; the ring it
// induces routes each canonical request key to one owning node, so
// each node's warm-start store and trained models stay hot for its
// slice of the key space. Any node accepts any request: non-owned keys
// are forwarded to the owner (one extra hop, loop-guarded), the batch
// endpoint scatter-gathers members across shards, and completed store
// entries are replicated to each key's ring-successor follower so an
// owner outage fails over and still answers warm.
type ClusterOptions struct {
	// NodeID is this node's own entry in Peers — the base URL peers
	// reach it at (e.g. "http://10.0.0.1:8080").
	NodeID string
	// Peers lists every cluster member's base URL, self included.
	// Order does not matter: the ring sorts, so all members agree.
	Peers []string
	// Replicate enables asynchronous replication of completed store
	// entries to the key's follower (and, after a failover compute,
	// back toward the owner).
	Replicate bool
	// ForwardTimeout bounds one proxied exchange end to end; <= 0
	// selects cluster.DefaultForwardTimeout. Forwarded cold jobs are
	// synchronous (the proxied hop always waits), so size it for
	// compute, not for warm hits.
	ForwardTimeout time.Duration
	// VirtualNodes is the per-node ring point count; <= 0 selects
	// cluster.DefaultVirtualNodes (128).
	VirtualNodes int
	// ReplicationQueue bounds the pending replication queue; <= 0
	// selects cluster.DefaultReplicationQueue. The queue is drained
	// asynchronously — a full queue drops entries, never blocks the
	// warm path.
	ReplicationQueue int
}

// replicationTimeout bounds one replication delivery. Deliberately
// shorter than the forward timeout: replication is best-effort and its
// queue must drain fast at shutdown even against a black-holed peer.
const replicationTimeout = 5 * time.Second

// clusterState is the per-server cluster runtime.
type clusterState struct {
	opt    ClusterOptions
	router *cluster.Router
	client *cluster.Client // forwarding + scatter
	repl   *cluster.Replicator

	// Routing disposition of POST /v1/jobs: every request is counted
	// in exactly one bucket — forwarded when a peer's response was
	// streamed through, local otherwise (including warm hits, error
	// answers and failover-to-local computes) — so local+forwarded
	// always equals the endpoint's request count.
	local     atomic.Int64
	forwarded atomic.Int64
	// scattered counts batch members proxied to peers; failover counts
	// requests answered by a follower (or recomputed here) after the
	// owner was unreachable.
	scattered   atomic.Int64
	failover    atomic.Int64
	replApplied atomic.Int64
}

// newClusterState validates the options and builds the runtime.
func newClusterState(opt ClusterOptions) (*clusterState, error) {
	router, err := cluster.NewRouter(opt.NodeID, opt.Peers, opt.VirtualNodes)
	if err != nil {
		return nil, err
	}
	cl := &clusterState{
		opt:    opt,
		router: router,
		client: cluster.NewClient(opt.ForwardTimeout),
	}
	if opt.Replicate && len(router.Peers()) > 1 {
		replClient := cluster.NewClient(replicationTimeout)
		cl.repl = cluster.NewReplicator(opt.ReplicationQueue, 1, func(target string, payload []byte) error {
			resp, err := replClient.Post(target+"/v1/cluster/replicate", payload, router.Self())
			if err != nil {
				router.MarkDown(target)
				return err
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("serve: replicate to %s: status %d", target, resp.StatusCode)
			}
			router.MarkUp(target)
			return nil
		})
	}
	return cl, nil
}

// forwarded reports whether r carries the one-hop loop guard.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardedHeader) != ""
}

// proxy streams one peer's answer for the canonical request body
// through to w verbatim — status code, content type and the body bytes
// (a warm hit streams the owner's pre-rendered response bytes without
// re-encoding, which is what keeps proxied answers byte-identical to
// local ones). It reports false, writing nothing, when the peer never
// answered (failover-eligible).
func (cl *clusterState) proxy(w http.ResponseWriter, target string, body []byte) bool {
	resp, err := cl.client.Post(target+"/v1/jobs?wait=1", body, cl.router.Self())
	if err != nil {
		cl.router.MarkDown(target)
		return false
	}
	defer resp.Body.Close()
	cl.router.MarkUp(target)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// forwardJob proxies a non-owned request to the key's owner, failing
// over to the follower when the owner is unreachable (the follower
// holds the replicated warm entry, so the answer stays warm and
// byte-identical). The proxied hop always waits (?wait=1): a cold
// forward returns the terminal status in one round trip, so clients
// never need to poll a job id that lives on another node. It reports
// false, with nothing written, when no peer answered — the caller
// computes locally (results are pure functions of the request, so a
// local recompute is still byte-identical, just not warm).
func (s *Server) forwardJob(w http.ResponseWriter, rt cluster.Route, req TuneRequest) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	cl := s.cluster
	if cl.proxy(w, rt.Owner, body) {
		return true
	}
	if rt.Follower != rt.Owner && rt.Follower != cl.router.Self() {
		if cl.proxy(w, rt.Follower, body) {
			cl.failover.Add(1)
			return true
		}
	}
	cl.failover.Add(1) // owner (and follower) down: recompute locally
	return false
}

// submitWait submits one canonical request locally and blocks until
// its terminal state — the scatter-gather equivalent of ?wait=1.
func (s *Server) submitWait(req TuneRequest) JobStatus {
	st, j, err := s.submitJob(req)
	if err != nil {
		return JobStatus{
			State:   JobRejected,
			Request: req,
			Key:     req.Key(),
			Error:   err.Error(),
		}
	}
	if j != nil {
		<-j.done
		st = j.status()
	}
	return st
}

// scatterOne resolves one non-owned batch member: proxied to the
// owner, failed over to the follower, computed locally when no peer
// answered. Peer rejections (429/503) are reported as rejected
// members, mirroring the local batch contract.
func (s *Server) scatterOne(req TuneRequest, key string, rt cluster.Route) JobStatus {
	body, err := json.Marshal(req)
	if err != nil {
		return s.submitWait(req)
	}
	cl := s.cluster
	targets := [2]string{rt.Owner, rt.Follower}
	for i, target := range targets {
		if target == cl.router.Self() || (i == 1 && target == rt.Owner) {
			continue
		}
		resp, rerr := cl.client.Post(target+"/v1/jobs?wait=1", body, cl.router.Self())
		if rerr != nil {
			cl.router.MarkDown(target)
			continue
		}
		cl.router.MarkUp(target)
		cl.scattered.Add(1)
		if i == 1 {
			cl.failover.Add(1)
		}
		st, derr := decodeScattered(resp, req, key)
		if derr != nil {
			return JobStatus{State: JobRejected, Request: req, Key: key, Error: derr.Error()}
		}
		return st
	}
	cl.failover.Add(1)
	return s.submitWait(req)
}

// decodeScattered turns one proxied member response into a JobStatus.
func decodeScattered(resp *http.Response, req TuneRequest, key string) (JobStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return JobStatus{}, fmt.Errorf("serve: decoding scattered member: %w", err)
		}
		return st, nil
	}
	var e errorJSON
	_ = json.NewDecoder(resp.Body).Decode(&e)
	if e.Error == "" {
		e.Error = fmt.Sprintf("serve: peer answered status %d", resp.StatusCode)
	}
	return JobStatus{State: JobRejected, Request: req, Key: key, Error: e.Error}, nil
}

// scatterBatch fans the expanded batch out across the cluster — each
// member goes to its key's owning shard in parallel, so an alpha sweep
// runs on every node's hot store and trained models at once — and
// merges the answers deterministically in expansion order. Every
// member comes back terminal (local members wait too), so the merged
// front needs no cross-node polling.
func (s *Server) scatterBatch(canon []TuneRequest) BatchResponse {
	out := make([]JobStatus, len(canon))
	var wg sync.WaitGroup
	for i := range canon {
		wg.Add(1)
		go func(i int, req TuneRequest) {
			defer wg.Done()
			key := req.Key()
			rt := s.cluster.router.Route([]byte(key))
			if rt.Local {
				out[i] = s.submitWait(req)
			} else {
				out[i] = s.scatterOne(req, key, rt)
			}
		}(i, canon[i])
	}
	wg.Wait()
	return BatchResponse{Jobs: out}
}

// replicateWire is the replication payload: the canonical store key
// and the owner's pre-rendered warm-hit response bytes, carried as a
// JSON string so the exact bytes (trailing newline included) round-
// trip — the follower serves them verbatim, which is what makes a
// failover answer byte-identical to the owner's.
type replicateWire struct {
	Key  string `json:"key"`
	Body string `json:"body"`
}

// replicateEntry enqueues one completed entry for replication to the
// key's follower (and toward the owner, after a failover compute on a
// non-owner). Called from the pool worker after SetBody — never under
// a store stripe lock, and Enqueue never blocks, so a slow or black-
// holed follower cannot touch the warm path.
func (s *Server) replicateEntry(key string, body []byte) {
	cl := s.cluster
	if cl == nil || cl.repl == nil {
		return
	}
	owner, follower := cl.router.Ring().Lookup([]byte(key))
	self := cl.router.Self()
	targets := make([]string, 0, 2)
	if owner != self {
		targets = append(targets, owner)
	}
	if follower != self && follower != owner {
		targets = append(targets, follower)
	}
	if len(targets) == 0 {
		return
	}
	payload, err := json.Marshal(replicateWire{Key: key, Body: string(body)})
	if err != nil {
		return
	}
	cl.repl.Enqueue(cluster.Item{Targets: targets, Payload: payload})
}

// handleReplicate applies one replicated entry: the rendered response
// bytes are installed verbatim alongside the decoded result, so later
// warm hits (and failover answers) on this node serve the owner's
// exact bytes. Existing entries — in-flight or completed — win over
// the replica; the apply is idempotent.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	s.met.request("replicate")
	sc := getScratch()
	defer putScratch(sc)
	var msg replicateWire
	if err := sc.decode(w, r, &msg); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	if msg.Key == "" || msg.Body == "" {
		writeJSON(w, http.StatusBadRequest, errorJSON{"serve: replicate needs key and body"})
		return
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(msg.Body), &st); err != nil || st.Result == nil || st.State != JobDone {
		writeJSON(w, http.StatusBadRequest, errorJSON{"serve: replicate body is not a completed job status"})
		return
	}
	if st.Key != msg.Key {
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("serve: replicate key %q does not match body key %q", msg.Key, st.Key)})
		return
	}
	applied := s.store.Install(msg.Key, *st.Result, []byte(msg.Body))
	if applied {
		s.cluster.replApplied.Add(1)
	}
	writeJSON(w, http.StatusOK, struct {
		Applied bool `json:"applied"`
	}{applied})
}

// ClusterOwner reports which peer owns key's shard — the node whose
// store warms it. Empty on a single-node server. Experiments use it to
// build the per-node disjoint key slices of the scale-out table.
func (s *Server) ClusterOwner(key string) string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.router.Ring().Owner([]byte(key))
}

// ClusterMetrics is the cluster block of GET /v1/metrics; nil (and
// omitted from the wire) on a single-node server. Local and Forwarded
// partition the jobs endpoint's request count exactly: every POST
// /v1/jobs is answered either by this node (local — warm hits, cold
// computes, error answers and failover recomputes alike) or by
// streaming a peer's response through (forwarded).
type ClusterMetrics struct {
	NodeID string        `json:"node_id"`
	Peers  []PeerMetrics `json:"peers"`
	// Local + Forwarded == Requests["jobs"] (TestMetricsClusterSplit).
	Local     int64 `json:"local"`
	Forwarded int64 `json:"forwarded"`
	// Scattered counts batch members proxied to peers; Failover counts
	// owner-unreachable requests answered by the follower or recomputed
	// here.
	Scattered int64 `json:"scattered"`
	Failover  int64 `json:"failover"`
	// Replication is the async hot-entry replication accounting.
	Replication struct {
		Sent    int64 `json:"sent"`
		Failed  int64 `json:"failed"`
		Dropped int64 `json:"dropped"`
		Applied int64 `json:"applied"`
		Pending int64 `json:"pending"`
	} `json:"replication"`
}

// PeerMetrics is one cluster member's last-known health.
type PeerMetrics struct {
	Node string `json:"node"`
	Self bool   `json:"self,omitempty"`
	Up   bool   `json:"up"`
}

// clusterMetrics snapshots the cluster block; nil when not clustered.
func (s *Server) clusterMetrics() *ClusterMetrics {
	cl := s.cluster
	if cl == nil {
		return nil
	}
	m := &ClusterMetrics{
		NodeID:    cl.router.Self(),
		Local:     cl.local.Load(),
		Forwarded: cl.forwarded.Load(),
		Scattered: cl.scattered.Load(),
		Failover:  cl.failover.Load(),
	}
	for _, p := range cl.router.Peers() {
		m.Peers = append(m.Peers, PeerMetrics{Node: p, Self: p == cl.router.Self(), Up: cl.router.Up(p)})
	}
	if cl.repl != nil {
		m.Replication.Sent = cl.repl.Sent()
		m.Replication.Failed = cl.repl.Failed()
		m.Replication.Dropped = cl.repl.Dropped()
		m.Replication.Pending = int64(cl.repl.Pending())
	}
	m.Replication.Applied = cl.replApplied.Load()
	return m
}
