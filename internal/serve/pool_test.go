package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-gate }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // the single worker is now busy, queue is empty
	if err := p.Submit(func() { <-gate }); err != nil {
		t.Fatalf("second submit (fills the queue): %v", err)
	}
	if err := p.Submit(func() {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit got %v, want ErrQueueFull", err)
	}
	close(gate)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestPoolShutdownDrains(t *testing.T) {
	p := NewPool(1, 4)
	gate := make(chan struct{})
	started := make(chan struct{})
	ran := make([]bool, 3)
	if err := p.Submit(func() { close(started); <-gate; ran[0] = true }); err != nil {
		t.Fatalf("submit 0: %v", err)
	}
	<-started
	for i := 1; i < 3; i++ {
		i := i
		if err := p.Submit(func() { ran[i] = true }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- p.Shutdown(context.Background()) }()

	// Intake must close promptly even while jobs are still draining.
	deadline := time.After(5 * time.Second)
	for {
		err := p.Submit(func() {})
		if errors.Is(err, ErrPoolClosed) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("submit after Shutdown never returned ErrPoolClosed (got %v)", err)
		case <-time.After(time.Millisecond):
		}
	}

	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("accepted job %d was dropped by shutdown (drain must run queued jobs)", i)
		}
	}
	// Idempotent.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestPoolShutdownContextExpiry(t *testing.T) {
	p := NewPool(1, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-gate }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown with stuck job got %v, want DeadlineExceeded", err)
	}
	close(gate)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown after release: %v", err)
	}
}

func TestPoolCounters(t *testing.T) {
	p := NewPool(1, 8)
	if p.Capacity() != 8 {
		t.Fatalf("capacity %d, want 8", p.Capacity())
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-gate }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	if err := p.Submit(func() {}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if p.Running() != 1 {
		t.Fatalf("running %d, want 1", p.Running())
	}
	if p.Depth() != 1 {
		t.Fatalf("depth %d, want 1", p.Depth())
	}
	close(gate)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if p.Running() != 0 || p.Depth() != 0 {
		t.Fatalf("counters after drain: running=%d depth=%d", p.Running(), p.Depth())
	}
}
