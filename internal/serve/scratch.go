package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// maxBodyBytes bounds request bodies (per-request decode limit).
const maxBodyBytes = 1 << 20

// postScratch is the per-request decode scratch of the submission
// handlers: the body buffer, the canonical-key buffer and the decoded
// request are pooled and reused across requests, so a steady stream of
// submissions stops allocating fresh decode state per POST.
type postScratch struct {
	buf []byte      // request body bytes
	key []byte      // canonical store key (AppendKey target)
	req TuneRequest // decode target of POST /v1/jobs
	rd  bytes.Reader
}

var scratchPool = sync.Pool{New: func() any {
	return &postScratch{
		buf: make([]byte, 0, 4096),
		key: make([]byte, 0, 192),
	}
}}

func getScratch() *postScratch { return scratchPool.Get().(*postScratch) }

func putScratch(sc *postScratch) { scratchPool.Put(sc) }

// decode reads the bounded request body into the pooled buffer and
// strictly decodes it into v (unknown fields rejected), resetting the
// pooled TuneRequest first so a reused scratch never leaks fields from
// an earlier request into a sparse body.
func (sc *postScratch) decode(w http.ResponseWriter, r *http.Request, v any) error {
	sc.req = TuneRequest{}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	buf := sc.buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			sc.buf = buf
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("serve: decoding request body: %w", err)
		}
	}
	sc.rd.Reset(sc.buf)
	dec := json.NewDecoder(&sc.rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decoding request body: %w", err)
	}
	return nil
}
