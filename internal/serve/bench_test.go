package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkStoreHit measures the warm-start fast path: a completed
// entry served straight from the store.
func BenchmarkStoreHit(b *testing.B) {
	b.ReportAllocs()
	s := NewStore(0)
	if _, err, _ := s.Do("k", func() (TuneResult, error) { return TuneResult{TimeSec: 1}, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Peek("k"); !ok {
			b.Fatal("hit missed")
		}
	}
}

// BenchmarkServeWarmStart measures the full HTTP round trip of a
// cached submission: canonicalize, store hit, respond with the result.
func BenchmarkServeWarmStart(b *testing.B) {
	b.ReportAllocs()
	s := New(Options{Workers: 1, QueueSize: 4})
	s.runFn = func(req TuneRequest) (TuneResult, error) { return TuneResult{Method: req.Method}, nil }
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := []byte(`{"method":"sam","iterations":100,"seed":1}`)
	warm := func() JobStatus {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		return st
	}
	first := warm()
	if first.State != JobDone && first.State != JobQueued && first.State != JobRunning {
		b.Fatalf("unexpected first state %s", first.State)
	}
	// Ensure the store entry is completed before timing hits.
	for i := 0; ; i++ {
		if st := warm(); st.State == JobDone {
			break
		}
		if i > 1_000_000 {
			b.Fatal("job never completed")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := warm(); !st.Cached || st.State != JobDone {
			b.Fatalf("iteration %d not served from the store: %+v", i, st)
		}
	}
}

// BenchmarkCanonicalKey measures request normalization and keying.
func BenchmarkCanonicalKey(b *testing.B) {
	b.ReportAllocs()
	req := TuneRequest{Genome: "human", Method: "sam", Iterations: 500, Seed: 7}
	for i := 0; i < b.N; i++ {
		n, err := req.Normalize()
		if err != nil {
			b.Fatal(err)
		}
		if n.Key() == "" {
			b.Fatal("empty key")
		}
	}
}
