package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreSingleFlight(t *testing.T) {
	s := NewStore(0)
	var computes int
	var mu sync.Mutex
	compute := func() (TuneResult, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		return TuneResult{TimeSec: 1.5}, nil
	}

	const callers = 16
	var wg sync.WaitGroup
	hits := make([]bool, callers)
	results := make([]TuneResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err, hit := s.Do("k", compute)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			hits[i], results[i] = hit, res
		}(i)
	}
	wg.Wait()

	if computes != 1 {
		t.Fatalf("computed %d times, want 1 (single flight)", computes)
	}
	paid := 0
	for i := range hits {
		if results[i].TimeSec != 1.5 {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		if !hits[i] {
			paid++
		}
	}
	if paid != 1 {
		t.Fatalf("%d callers paid, want exactly 1", paid)
	}
	if s.Lookups() != callers || s.Hits() != callers-1 {
		t.Fatalf("accounting lookups=%d hits=%d, want %d/%d", s.Lookups(), s.Hits(), callers, callers-1)
	}
}

func TestStorePeek(t *testing.T) {
	s := NewStore(0)
	if _, ok := s.Peek("missing"); ok {
		t.Fatalf("Peek found a missing key")
	}
	if s.Lookups() != 0 {
		t.Fatalf("a Peek miss must not count a lookup (the later Do counts it)")
	}
	if _, err, _ := s.Do("k", func() (TuneResult, error) { return TuneResult{EnergyJ: 3}, nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	res, ok := s.Peek("k")
	if !ok || res.EnergyJ != 3 {
		t.Fatalf("Peek after Do: ok=%v res=%+v", ok, res)
	}
	if s.Lookups() != 2 || s.Hits() != 1 {
		t.Fatalf("accounting lookups=%d hits=%d, want 2/1", s.Lookups(), s.Hits())
	}
}

func TestStoreErrorsNotRetained(t *testing.T) {
	s := NewStore(0)
	calls := 0
	failing := func() (TuneResult, error) { calls++; return TuneResult{}, fmt.Errorf("boom %d", calls) }
	if _, err, _ := s.Do("k", failing); err == nil {
		t.Fatalf("first Do swallowed the error")
	}
	if s.Len() != 0 {
		t.Fatalf("failed entry retained (len %d)", s.Len())
	}
	if _, ok := s.Peek("k"); ok {
		t.Fatalf("Peek served a failed entry")
	}
	if _, err, hit := s.Do("k", failing); err == nil || hit {
		t.Fatalf("second Do should recompute and fail again (err=%v hit=%v)", err, hit)
	}
	if calls != 2 {
		t.Fatalf("computed %d times, want 2 (errors are not cached)", calls)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	// A single shard gives exact global LRU order; the default sharded
	// layout enforces the bound per stripe.
	s := NewStoreShards(2, 1)
	put := func(key string, v float64) {
		t.Helper()
		if _, err, _ := s.Do(key, func() (TuneResult, error) { return TuneResult{TimeSec: v}, nil }); err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
	}
	put("a", 1)
	put("b", 2)
	// Refresh "a" so "b" is the LRU victim when "c" lands.
	if _, ok := s.Peek("a"); !ok {
		t.Fatalf("Peek(a) missed")
	}
	put("c", 3)
	if s.Len() != 2 {
		t.Fatalf("len %d, want 2 (capacity)", s.Len())
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions %d, want 1", s.Evictions())
	}
	if _, ok := s.Peek("b"); ok {
		t.Fatalf("LRU victim b survived")
	}
	if _, ok := s.Peek("a"); !ok {
		t.Fatalf("recently-used a evicted")
	}
	if _, ok := s.Peek("c"); !ok {
		t.Fatalf("newest c evicted")
	}
}

func TestStoreEvictionSparesInFlight(t *testing.T) {
	s := NewStore(1)
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = s.Do("slow", func() (TuneResult, error) {
			close(started)
			<-gate
			return TuneResult{}, nil
		})
	}()
	<-started
	// Two completed entries land while "slow" is in flight; only
	// completed entries may be evicted.
	if _, err, _ := s.Do("a", func() (TuneResult, error) { return TuneResult{}, nil }); err != nil {
		t.Fatalf("Do(a): %v", err)
	}
	if _, err, _ := s.Do("b", func() (TuneResult, error) { return TuneResult{}, nil }); err != nil {
		t.Fatalf("Do(b): %v", err)
	}
	close(gate)
	<-done
	if _, ok := s.Peek("slow"); !ok {
		t.Fatalf("in-flight entry was evicted mid-flight")
	}
}

func TestStorePeekWarmAndSetBody(t *testing.T) {
	s := NewStore(0)
	if _, _, ok := s.PeekWarm([]byte("missing")); ok {
		t.Fatalf("PeekWarm found a missing key")
	}
	if s.Lookups() != 0 {
		t.Fatalf("a PeekWarm miss must not count a lookup")
	}
	if _, err, _ := s.Do("k", func() (TuneResult, error) { return TuneResult{EnergyJ: 7}, nil }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	// Completed but unrendered: ok with a nil body.
	body, res, ok := s.PeekWarm([]byte("k"))
	if !ok || body != nil || res.EnergyJ != 7 {
		t.Fatalf("PeekWarm before SetBody: ok=%v body=%q res=%+v", ok, body, res)
	}
	s.SetBody("k", []byte("first\n"))
	s.SetBody("k", []byte("second\n")) // later render of the same entry: no-op
	body, _, ok = s.PeekWarm([]byte("k"))
	if !ok || string(body) != "first\n" {
		t.Fatalf("PeekWarm after SetBody: ok=%v body=%q, first caller must win", ok, body)
	}
	// SetBody on a missing or failed key is a no-op, not a panic.
	s.SetBody("missing", []byte("x"))
	if s.Lookups() != 3 || s.Hits() != 2 {
		t.Fatalf("accounting lookups=%d hits=%d, want 3/2", s.Lookups(), s.Hits())
	}
}

func TestStoreShardedBound(t *testing.T) {
	// The sharded layout enforces capacity per stripe: the effective
	// bound is capacity rounded down to a multiple of the shard count,
	// and Len never exceeds the nominal capacity.
	s := NewStore(16) // 16 shards, 1 entry each
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", i)
		if _, err, _ := s.Do(key, func() (TuneResult, error) { return TuneResult{TimeSec: float64(i)}, nil }); err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
	}
	if s.Len() > 16 {
		t.Fatalf("len %d exceeds capacity 16", s.Len())
	}
	if s.Evictions() != 100-s.Len() {
		t.Fatalf("evictions %d + retained %d != 100 inserts", s.Evictions(), s.Len())
	}
	// Small capacities shrink the shard count instead of rounding the
	// bound to zero.
	tiny := NewStore(3)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("t%d", i)
		if _, err, _ := tiny.Do(key, func() (TuneResult, error) { return TuneResult{}, nil }); err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
	}
	if tiny.Len() > 3 || tiny.Len() == 0 {
		t.Fatalf("len %d, want 1..3", tiny.Len())
	}
}
