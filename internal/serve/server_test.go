package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer builds a Server plus an HTTP listener around it.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

// post sends body (a value to marshal, or a raw string) and returns the
// status code and decoded JobStatus-shaped response bytes.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	var buf []byte
	switch b := body.(type) {
	case string:
		buf = []byte(b)
	default:
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, out.Bytes()
}

// getJSON GETs url and unmarshals into v.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	if v != nil {
		if err := json.Unmarshal(out.Bytes(), v); err != nil {
			t.Fatalf("unmarshal %s response %q: %v", url, out.String(), err)
		}
	}
	return resp.StatusCode
}

// pollDone polls a job until it leaves the queued/running states.
func pollDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st JobStatus
		code := getJSON(t, base+"/v1/jobs/"+id, &st)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// submitAndWait posts one request and polls it to completion.
func submitAndWait(t *testing.T, base string, body any) JobStatus {
	t.Helper()
	code, resp := post(t, base+"/v1/jobs", body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST /v1/jobs: status %d body %s", code, resp)
	}
	var st JobStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatalf("unmarshal job status %q: %v", resp, err)
	}
	if st.State == JobDone || st.State == JobFailed {
		return st
	}
	return pollDone(t, base, st.ID)
}

// TestWarmStartBitIdentical is the service's acceptance contract: two
// identical requests (submitted with different JSON field orders)
// return bit-identical results, the second answered inline from the
// store — terminal state on the POST itself, no job id, no poll.
func TestWarmStartBitIdentical(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueSize: 8})
	first := submitAndWait(t, ts.URL,
		`{"genome":"human","method":"sam","iterations":60,"seed":9}`)
	if first.State != JobDone {
		t.Fatalf("first job failed: %+v", first)
	}
	if first.Cached {
		t.Fatalf("first job cannot be a store hit")
	}

	// Same request, different field order and explicit defaults.
	warmBody := `{"seed":9,"iterations":60,"method":"SAM","genome":"Human","strategy":"auto","objective":"time"}`
	code, resp := post(t, ts.URL+"/v1/jobs", warmBody)
	if code != http.StatusOK {
		t.Fatalf("cached re-POST: status %d body %s (want 200, the result is already known)", code, resp)
	}
	var second JobStatus
	if err := json.Unmarshal(resp, &second); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if second.State != JobDone || !second.Cached {
		t.Fatalf("re-POST not served from the store: %+v", second)
	}
	if second.ID != "" {
		t.Fatalf("warm hit registered a job (id %q); it must answer inline with no registry entry", second.ID)
	}
	if second.Key != first.Key {
		t.Fatalf("identical requests keyed differently:\n%s\n%s", first.Key, second.Key)
	}

	// The warm result is byte-identical to the cold job's GET result.
	var g1 JobStatus
	getJSON(t, ts.URL+"/v1/jobs/"+first.ID, &g1)
	b1, _ := json.Marshal(g1.Result)
	b2, _ := json.Marshal(second.Result)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("results differ:\n%s\n%s", b1, b2)
	}

	// Warm hits are served stored bytes: two re-POSTs return
	// byte-identical whole bodies, structurally.
	code, resp2 := post(t, ts.URL+"/v1/jobs", warmBody)
	if code != http.StatusOK {
		t.Fatalf("second re-POST: status %d", code)
	}
	if !bytes.Equal(resp, resp2) {
		t.Fatalf("warm-hit bodies differ:\n%s\n%s", resp, resp2)
	}

	m := s.Metrics()
	if m.Store.Lookups != 3 || m.Store.Hits != 2 || m.Jobs.StoreHits != 2 {
		t.Fatalf("store accounting: %+v %+v", m.Store, m.Jobs)
	}
	if m.Jobs.Submitted != 3 || m.Jobs.Completed != 3 || m.Jobs.Failed != 0 {
		t.Fatalf("job accounting: %+v", m.Jobs)
	}
	if m.Latency.Warm.Count != 2 || m.Latency.Cold.Count != 1 {
		t.Fatalf("latency split: %+v", m.Latency)
	}
}

// TestBatchAlphaSweep maps a time/energy front in one call and checks
// the whole batch warm-starts on re-submission.
func TestBatchAlphaSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueSize: 16})
	batch := BatchRequest{
		Template: &TuneRequest{Method: "sam", Iterations: 40, Seed: 3},
		Alphas:   []float64{0, 0.5, 1},
	}
	code, resp := post(t, ts.URL+"/v1/jobs:batch", batch)
	if code != http.StatusAccepted {
		t.Fatalf("batch: status %d body %s", code, resp)
	}
	var br BatchResponse
	if err := json.Unmarshal(resp, &br); err != nil {
		t.Fatalf("unmarshal batch: %v", err)
	}
	if len(br.Jobs) != 3 {
		t.Fatalf("batch accepted %d jobs, want 3", len(br.Jobs))
	}
	results := make([]JobStatus, len(br.Jobs))
	for i, j := range br.Jobs {
		if j.State == JobRejected {
			t.Fatalf("batch member %d rejected: %+v", i, j)
		}
		results[i] = pollDone(t, ts.URL, j.ID)
		if results[i].State != JobDone {
			t.Fatalf("batch member %d failed: %+v", i, results[i])
		}
		want := fmt.Sprintf("weighted(alpha=%g)", batch.Alphas[i])
		if results[i].Result.Objective != want {
			t.Fatalf("member %d objective %q, want %q", i, results[i].Result.Objective, want)
		}
	}
	// Each point's measured objective is the weighted sum of its own
	// measured time and energy (alpha*T + (1-alpha)*E/50).
	for i, a := range batch.Alphas {
		r := results[i].Result
		want := a*r.TimeSec + (1-a)*r.EnergyJ/50
		if diff := want - r.MeasuredObjective; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("member %d measured objective %g, want %g", i, r.MeasuredObjective, want)
		}
	}

	// Re-submitting the whole batch is answered from the store.
	code, resp = post(t, ts.URL+"/v1/jobs:batch", batch)
	if code != http.StatusAccepted {
		t.Fatalf("batch re-POST: status %d", code)
	}
	if err := json.Unmarshal(resp, &br); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i, j := range br.Jobs {
		if j.State != JobDone || !j.Cached {
			t.Fatalf("re-POSTed member %d not warm-started: %+v", i, j)
		}
		b1, _ := json.Marshal(results[i].Result)
		b2, _ := json.Marshal(j.Result)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("member %d result changed:\n%s\n%s", i, b1, b2)
		}
	}
}

// TestBackpressure429: with one worker and a one-slot queue, the third
// concurrent job is refused with 429 and nothing is registered for it.
func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.runFn = func(req TuneRequest) (TuneResult, error) {
		started <- struct{}{}
		<-gate
		return TuneResult{Method: req.Method}, nil
	}
	defer close(gate)

	code, resp := post(t, ts.URL+"/v1/jobs", `{"method":"sam","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("job 1: status %d body %s", code, resp)
	}
	<-started // worker busy, queue empty
	code, _ = post(t, ts.URL+"/v1/jobs", `{"method":"sam","seed":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("job 2 (queued): status %d", code)
	}
	code, resp = post(t, ts.URL+"/v1/jobs", `{"method":"sam","seed":3}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d body %s, want 429", code, resp)
	}
	var e errorJSON
	if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" {
		t.Fatalf("429 body %q lacks an error envelope", resp)
	}
	if m := s.Metrics(); m.Jobs.Rejected != 1 || m.Jobs.Submitted != 2 {
		t.Fatalf("rejection accounting: %+v", m.Jobs)
	}
}

// TestGracefulDrain: Drain refuses new work but completes every
// accepted job, queued and in-flight.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.runFn = func(req TuneRequest) (TuneResult, error) {
		started <- struct{}{}
		<-gate
		return TuneResult{Method: req.Method}, nil
	}

	var ids []string
	for i := 0; i < 2; i++ {
		code, resp := post(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"method":"sam","seed":%d}`, i+1))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, code)
		}
		var st JobStatus
		if err := json.Unmarshal(resp, &st); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		ids = append(ids, st.ID)
	}
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// New submissions are refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := post(t, ts.URL+"/v1/jobs", `{"method":"sam","seed":99}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still accepted while draining (status %d)", code)
		}
		time.Sleep(time.Millisecond)
	}
	// A batch hitting the draining server is 503 too, not 429.
	if code, _ := post(t, ts.URL+"/v1/jobs:batch", `{"requests":[{"method":"sam","seed":98}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("batch while draining: status %d, want 503", code)
	}
	var h Health
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", h.Status)
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		var st JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.State != JobDone {
			t.Fatalf("accepted job %s not drained to completion: %s", id, st.State)
		}
	}
}

// TestBoundedObjectiveCarriesReference: the constrained mode reports
// the time-optimal reference run alongside the energy-minimal result.
func TestBoundedObjectiveCarriesReference(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueSize: 8})
	st := submitAndWait(t, ts.URL,
		`{"method":"sam","objective":"bounded","slack":0.10,"iterations":40,"seed":5}`)
	if st.State != JobDone {
		t.Fatalf("bounded job failed: %+v", st)
	}
	if st.Result.TimeReference == nil {
		t.Fatalf("bounded result lacks the time-optimal reference")
	}
	if !strings.HasPrefix(st.Result.Objective, "bounded(") {
		t.Fatalf("objective %q, want bounded(...)", st.Result.Objective)
	}
	bound := (1 + 0.10) * st.Result.TimeReference.TimeSec
	if st.Result.TimeSec > bound*(1+1e-9) {
		t.Fatalf("bounded result %g exceeds bound %g", st.Result.TimeSec, bound)
	}
}

// TestSharedEvaluationMemo: a second job over the same workload re-uses
// measurements the first already paid (same seed, longer budget: the
// chain's shared prefix revisits the same configurations). Physical
// sharing shows up as hits on the per-workload shared memo; the jobs'
// own Experiments accounting stays a pure function of each request.
func TestSharedEvaluationMemo(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8})
	first := submitAndWait(t, ts.URL, `{"method":"sam","iterations":60,"seed":4}`)
	if first.State != JobDone {
		t.Fatalf("first job failed: %+v", first)
	}
	second := submitAndWait(t, ts.URL, `{"method":"sam","iterations":61,"seed":4}`)
	if second.State != JobDone {
		t.Fatalf("second job failed: %+v", second)
	}
	memo := s.sharedMemo(workloadKey{platform: first.Request.Platform, name: "human", sizeMB: first.Request.SizeMB})
	if memo.Hits() == 0 {
		t.Fatalf("shared memo saw no hits across overlapping jobs (lookups=%d unique=%d)",
			memo.Lookups(), memo.Unique())
	}
	// Physical work across both jobs is the distinct-config union, not
	// the sum of what each was charged.
	if charged := first.Result.Experiments + second.Result.Experiments; memo.Unique() >= charged {
		t.Fatalf("no physical sharing: %d unique measurements for %d charged experiments", memo.Unique(), charged)
	}
}

// TestRecomputeAfterEvictionBitIdentical: even when the warm-start
// store has evicted a result and the shared evaluation memo is warm,
// recomputing the identical request answers byte-for-byte identically —
// the Experiments accounting is charged per distinct configuration
// visited, not per physical measurement paid.
func TestRecomputeAfterEvictionBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8, StoreSize: 1})
	reqA := `{"method":"sam","iterations":50,"seed":1}`
	first := submitAndWait(t, ts.URL, reqA)
	if first.State != JobDone {
		t.Fatalf("first job failed: %+v", first)
	}
	// A different request over the same workload evicts A's store entry
	// (capacity 1) while leaving the shared evaluation memo warm.
	evictor := submitAndWait(t, ts.URL, `{"method":"sam","iterations":50,"seed":2}`)
	if evictor.State != JobDone {
		t.Fatalf("evictor job failed: %+v", evictor)
	}
	again := submitAndWait(t, ts.URL, reqA)
	if again.State != JobDone {
		t.Fatalf("recomputed job failed: %+v", again)
	}
	if again.Cached {
		t.Fatalf("expected a recompute after eviction, got a store hit")
	}
	b1, _ := json.Marshal(first.Result)
	b2, _ := json.Marshal(again.Result)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("recomputed result differs from the original:\n%s\n%s", b1, b2)
	}
}

// TestJobRetentionBound: the registry forgets the oldest completed
// jobs beyond the bound; recent jobs stay addressable.
func TestJobRetentionBound(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8, JobRetention: 3})
	s.runFn = func(req TuneRequest) (TuneResult, error) {
		return TuneResult{Method: req.Method}, nil
	}
	var ids []string
	for seed := 1; seed <= 6; seed++ {
		st := submitAndWait(t, ts.URL, fmt.Sprintf(`{"method":"sam","seed":%d}`, seed))
		if st.State != JobDone {
			t.Fatalf("seed %d failed: %+v", seed, st)
		}
		ids = append(ids, st.ID)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+ids[0], nil); code != http.StatusNotFound {
		t.Fatalf("oldest job still addressable (status %d), retention bound not enforced", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+ids[len(ids)-1], nil); code != http.StatusOK {
		t.Fatalf("newest job evicted (status %d)", code)
	}
	s.jobsMu.Lock()
	n := len(s.jobs)
	s.jobsMu.Unlock()
	if n > 3 {
		t.Fatalf("registry holds %d jobs, bound is 3", n)
	}
}

// TestBadRequests exercises the failure envelope.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	cases := []struct {
		name, url, body string
	}{
		{"bad genome", "/v1/jobs", `{"genome":"plankton"}`},
		{"bad json", "/v1/jobs", `{"genome":`},
		{"unknown field", "/v1/jobs", `{"genom":"human"}`},
		{"empty batch", "/v1/jobs:batch", `{}`},
		{"alphas without template", "/v1/jobs:batch", `{"alphas":[0.5]}`},
		{"batch with bad member", "/v1/jobs:batch", `{"requests":[{"method":"sam"},{"genome":"plankton"}]}`},
		{"bad alpha", "/v1/jobs", `{"objective":"weighted","alpha":2}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, resp := post(t, ts.URL+tc.url, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d body %s, want 400", code, resp)
			}
			var e errorJSON
			if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" {
				t.Fatalf("400 body %q lacks an error envelope", resp)
			}
		})
	}
	// A batch with any invalid member registers nothing.
	if m := s.Metrics(); m.Jobs.Submitted != 0 {
		t.Fatalf("invalid requests registered %d jobs", m.Jobs.Submitted)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j-999999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job id: status %d, want 404", code)
	}
}

// TestHealthAndMetricsEndpoints smoke-checks the observability routes.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, QueueSize: 5})
	var h Health
	if code := getJSON(t, ts.URL+"/v1/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if h.Status != "ok" || h.Workers != 3 {
		t.Fatalf("healthz %+v", h)
	}
	st := submitAndWait(t, ts.URL, `{"method":"sam","iterations":30,"seed":2}`)
	if st.State != JobDone {
		t.Fatalf("job failed: %+v", st)
	}
	var m Metrics
	if code := getJSON(t, ts.URL+"/v1/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Requests["jobs"] != 1 || m.Requests["healthz"] != 1 {
		t.Fatalf("request counters: %+v", m.Requests)
	}
	if m.Jobs.Submitted != 1 || m.Jobs.Completed != 1 {
		t.Fatalf("job counters: %+v", m.Jobs)
	}
	if m.Latency.Count != 1 || m.Latency.MeanMS <= 0 {
		t.Fatalf("latency counters: %+v", m.Latency)
	}
	if m.Queue.Workers != 3 || m.Queue.Capacity != 5 {
		t.Fatalf("queue counters: %+v", m.Queue)
	}
}

// TestMLMethodLazyTraining: the first EML/SAML job trains the models
// once; a repeat is a store hit.
func TestMLMethodLazyTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	_, ts := newTestServer(t, Options{Workers: 2, QueueSize: 8})
	st := submitAndWait(t, ts.URL, `{"method":"saml","iterations":50,"seed":11}`)
	if st.State != JobDone {
		t.Fatalf("saml job failed: %+v", st)
	}
	again := submitAndWait(t, ts.URL, `{"method":"saml","iterations":50,"seed":11}`)
	if !again.Cached {
		t.Fatalf("repeat saml job not warm-started")
	}
}

// TestStoreEviction keeps the store at its bound under distinct keys
// (single shard: exact global LRU, so the eviction count is exact).
func TestStoreEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8, StoreSize: 2, StoreShards: 1})
	s.runFn = func(req TuneRequest) (TuneResult, error) {
		return TuneResult{Method: req.Method}, nil
	}
	for seed := 1; seed <= 4; seed++ {
		st := submitAndWait(t, ts.URL, fmt.Sprintf(`{"method":"sam","seed":%d}`, seed))
		if st.State != JobDone {
			t.Fatalf("seed %d failed: %+v", seed, st)
		}
	}
	if m := s.Metrics(); m.Store.Entries > 2 || m.Store.Evictions != 2 {
		t.Fatalf("store bound not enforced: %+v", m.Store)
	}
}

// TestWarmHitStorm re-POSTs one job from many goroutines at once: every
// response body is byte-identical (warm hits are served stored bytes),
// exactly one compute is paid, and the store's paid count equals its
// unique-key count.
func TestWarmHitStorm(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueSize: 8})
	var computes atomic.Int64
	s.runFn = func(req TuneRequest) (TuneResult, error) {
		computes.Add(1)
		return TuneResult{Method: req.Method, TimeSec: 1.25, EnergyJ: 80}, nil
	}
	body := `{"method":"sam","seed":42}`
	first := submitAndWait(t, ts.URL, body)
	if first.State != JobDone {
		t.Fatalf("cold job failed: %+v", first)
	}

	const n = 32
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d body %s", resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("storm POST %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("storm bodies differ:\n%s\n%s", bodies[0], bodies[i])
		}
	}
	var st JobStatus
	if err := json.Unmarshal(bodies[0], &st); err != nil {
		t.Fatalf("unmarshal storm body: %v", err)
	}
	if st.State != JobDone || !st.Cached || st.ID != "" || st.Result == nil {
		t.Fatalf("storm response not an inline warm hit: %+v", st)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("paid %d computes, want exactly 1", got)
	}
	m := s.Metrics()
	if paid := m.Store.Lookups - m.Store.Hits; paid != 1 {
		t.Fatalf("store paid %d, want 1 (== unique keys): %+v", paid, m.Store)
	}
	if m.Jobs.StoreHits != n || m.Latency.Warm.Count != n {
		t.Fatalf("warm accounting: jobs=%+v latency=%+v", m.Jobs, m.Latency)
	}
}

// TestWaitInlineCompletion: ?wait=1 blocks a cold POST until the job's
// terminal state and answers 200 with the embedded result — while still
// registering the job for later GETs.
func TestWaitInlineCompletion(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	s.runFn = func(req TuneRequest) (TuneResult, error) {
		return TuneResult{Method: req.Method, TimeSec: 2.5}, nil
	}
	code, resp := post(t, ts.URL+"/v1/jobs?wait=1", `{"method":"sam","seed":7}`)
	if code != http.StatusOK {
		t.Fatalf("wait=1 POST: status %d body %s, want 200", code, resp)
	}
	var st JobStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if st.State != JobDone || st.Result == nil {
		t.Fatalf("wait=1 response not terminal: %+v", st)
	}
	if st.Cached {
		t.Fatalf("cold wait=1 job wrongly marked cached")
	}
	if st.ID == "" {
		t.Fatalf("wait=1 cold job must still be registered (no id)")
	}
	var g JobStatus
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &g)
	if g.State != JobDone {
		t.Fatalf("wait=1 job not pollable afterwards: %+v", g)
	}
}

// TestMetricsLatencySplit: the warm/cold latency buckets partition the
// request latency accounting — counts and totals sum exactly to the
// top-level figures.
func TestMetricsLatencySplit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueSize: 8})
	s.runFn = func(req TuneRequest) (TuneResult, error) {
		time.Sleep(2 * time.Millisecond) // keep cold visibly slower than warm
		return TuneResult{Method: req.Method, TimeSec: 1}, nil
	}
	for seed := 1; seed <= 2; seed++ {
		st := submitAndWait(t, ts.URL, fmt.Sprintf(`{"method":"sam","seed":%d}`, seed))
		if st.State != JobDone {
			t.Fatalf("seed %d failed: %+v", seed, st)
		}
	}
	for i := 0; i < 3; i++ {
		code, resp := post(t, ts.URL+"/v1/jobs", `{"method":"sam","seed":1}`)
		if code != http.StatusOK {
			t.Fatalf("warm POST %d: status %d body %s", i, code, resp)
		}
	}
	m := s.Metrics()
	if m.Latency.Warm.Count != 3 || m.Latency.Cold.Count != 2 {
		t.Fatalf("bucket counts: %+v", m.Latency)
	}
	if m.Latency.Count != m.Latency.Warm.Count+m.Latency.Cold.Count {
		t.Fatalf("latency count %d != warm %d + cold %d", m.Latency.Count, m.Latency.Warm.Count, m.Latency.Cold.Count)
	}
	if m.Latency.TotalMS != m.Latency.Warm.TotalMS+m.Latency.Cold.TotalMS {
		t.Fatalf("latency total %g != warm %g + cold %g", m.Latency.TotalMS, m.Latency.Warm.TotalMS, m.Latency.Cold.TotalMS)
	}
	if m.Latency.Warm.MeanMS > m.Latency.Cold.MeanMS {
		t.Fatalf("warm mean %g above cold mean %g", m.Latency.Warm.MeanMS, m.Latency.Cold.MeanMS)
	}
}
