package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// swapServer lets a test learn each cluster member's URL before its
// Server exists: every member's peer list names every member's URL, so
// the listeners must bind first. It answers 503 until the real server
// is swapped in.
type swapServer struct {
	s atomic.Pointer[Server]
}

func (sw *swapServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s := sw.s.Load(); s != nil {
		s.ServeHTTP(w, r)
		return
	}
	http.Error(w, "cluster member not ready", http.StatusServiceUnavailable)
}

// newTestCluster builds an n-node in-process cluster: n real listeners
// over n Servers configured with each other as peers. Returns the
// servers and their base URLs (index-aligned).
func newTestCluster(t *testing.T, n int, mut func(o *Options)) ([]*Server, []string) {
	t.Helper()
	swaps := make([]*swapServer, n)
	listeners := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapServer{}
		listeners[i] = httptest.NewServer(swaps[i])
		urls[i] = listeners[i].URL
	}
	servers := make([]*Server, n)
	for i := range servers {
		opt := Options{
			Workers:   2,
			QueueSize: 16,
			Cluster: &ClusterOptions{
				NodeID:    urls[i],
				Peers:     urls,
				Replicate: true,
			},
		}
		if mut != nil {
			mut(&opt)
		}
		s, err := NewCluster(opt)
		if err != nil {
			t.Fatalf("building cluster member %d: %v", i, err)
		}
		servers[i] = s
		swaps[i].s.Store(s)
	}
	t.Cleanup(func() {
		for _, l := range listeners {
			l.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, s := range servers {
			_ = s.Drain(ctx)
		}
	})
	return servers, urls
}

// requestOwnedBy sweeps seeds until the canonical key is owned by the
// wanted node on any member's ring (all rings agree), returning the
// canonical request, its key and the marshaled POST body.
func requestOwnedBy(t *testing.T, s *Server, owner string) (TuneRequest, string, []byte) {
	t.Helper()
	for seed := int64(1); seed < 4096; seed++ {
		raw := TuneRequest{Method: "sam", Iterations: 40, Seed: seed}
		canon, err := raw.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		key := canon.Key()
		if o, _ := s.cluster.router.Ring().Lookup([]byte(key)); o == owner {
			body, merr := json.Marshal(canon)
			if merr != nil {
				t.Fatal(merr)
			}
			return canon, key, body
		}
	}
	t.Fatalf("no seed under 4096 hashes to owner %s", owner)
	return TuneRequest{}, "", nil
}

// waitReplicated polls until s's store holds key (the async replicator
// delivered it) or the deadline passes.
func waitReplicated(t *testing.T, s *Server, key string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, ok := s.store.PeekWarm([]byte(key)); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("key %q never replicated to %s", key, s.cluster.router.Self())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// postRaw POSTs pre-marshaled bytes and returns status + body bytes.
func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, out.Bytes()
}

// TestClusterForwardByteIdentical is the tentpole determinism
// contract: once a key is computed anywhere in the cluster, every node
// answers it with byte-identical response bytes — the owner from its
// store, the follower from its replica, and any other node by
// streaming the owner's bytes through one forwarded hop — and the
// whole sweep pays exactly one compute cluster-wide.
func TestClusterForwardByteIdentical(t *testing.T) {
	servers, urls := newTestCluster(t, 3, nil)
	_, key, body := requestOwnedBy(t, servers[0], urls[0])
	owner, follower := servers[0].cluster.router.Ring().Lookup([]byte(key))
	if owner != urls[0] {
		t.Fatalf("requestOwnedBy returned a key owned by %s", owner)
	}

	// Cold compute on the owner (inline completion), then wait for the
	// async replica to land on the follower.
	code, cold := postRaw(t, urls[0]+"/v1/jobs?wait=1", body)
	if code != http.StatusOK {
		t.Fatalf("cold wait POST: status %d body %s", code, cold)
	}
	var coldSt JobStatus
	if err := json.Unmarshal(cold, &coldSt); err != nil || coldSt.State != JobDone {
		t.Fatalf("cold wait answer not done: %s (err %v)", cold, err)
	}
	for i, u := range urls {
		if u == follower {
			waitReplicated(t, servers[i], key)
		}
	}

	// The same POST to every node now answers warm with identical
	// bytes: locally on owner and follower, via one forwarded hop on
	// the third node.
	answers := make([][]byte, len(urls))
	for i, u := range urls {
		code, b := postRaw(t, u+"/v1/jobs", body)
		if code != http.StatusOK {
			t.Fatalf("warm POST to node %d: status %d body %s", i, code, b)
		}
		answers[i] = b
	}
	for i := 1; i < len(answers); i++ {
		if !bytes.Equal(answers[0], answers[i]) {
			t.Fatalf("node %d answer differs:\n%s\n%s", i, answers[0], answers[i])
		}
	}
	// The cold answer carries the job id, but its result bytes match.
	w1, _ := json.Marshal(coldSt.Result)
	var warmSt JobStatus
	if err := json.Unmarshal(answers[0], &warmSt); err != nil {
		t.Fatal(err)
	}
	w2, _ := json.Marshal(warmSt.Result)
	if !bytes.Equal(w1, w2) {
		t.Fatalf("warm result bytes differ from the cold compute:\n%s\n%s", w1, w2)
	}

	// Exactly one compute was paid cluster-wide: completed minus
	// store-served across every node is 1.
	computes := int64(0)
	for _, s := range servers {
		m := s.Metrics()
		computes += m.Jobs.Completed - m.Jobs.StoreHits
	}
	if computes != 1 {
		t.Fatalf("cluster paid %d computes, want exactly 1", computes)
	}
	// The non-owner non-follower node answered by forwarding.
	for i, u := range urls {
		if u == owner || u == follower {
			continue
		}
		m := servers[i].Metrics()
		if m.Cluster == nil || m.Cluster.Forwarded != 1 {
			t.Fatalf("third node metrics: %+v, want forwarded=1", m.Cluster)
		}
	}
}

// TestClusterFailoverServesWarm: after the owner dies, a POST to a
// node holding no replica fails over to the key's follower and still
// answers warm — with the owner's exact bytes.
func TestClusterFailoverServesWarm(t *testing.T) {
	swaps := make([]*swapServer, 3)
	listeners := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range swaps {
		swaps[i] = &swapServer{}
		listeners[i] = httptest.NewServer(swaps[i])
		urls[i] = listeners[i].URL
	}
	servers := make([]*Server, 3)
	for i := range servers {
		s, err := NewCluster(Options{
			Workers:   2,
			QueueSize: 16,
			Cluster:   &ClusterOptions{NodeID: urls[i], Peers: urls, Replicate: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		swaps[i].s.Store(s)
	}
	t.Cleanup(func() {
		for _, l := range listeners {
			l.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, s := range servers {
			_ = s.Drain(ctx)
		}
	})

	_, key, body := requestOwnedBy(t, servers[0], urls[0])
	_, follower := servers[0].cluster.router.Ring().Lookup([]byte(key))

	code, warm := postRaw(t, urls[0]+"/v1/jobs?wait=1", body)
	if code != http.StatusOK {
		t.Fatalf("cold wait POST: status %d", code)
	}
	var fIdx, tIdx int
	for i, u := range urls {
		switch u {
		case urls[0]:
		case follower:
			fIdx = i
		default:
			tIdx = i
		}
	}
	waitReplicated(t, servers[fIdx], key)
	// Warm answer bytes as the owner serves them (for the byte-identity
	// check after the failover).
	code, ownerWarm := postRaw(t, urls[0]+"/v1/jobs", body)
	if code != http.StatusOK {
		t.Fatalf("owner warm POST: status %d", code)
	}

	listeners[0].Close() // the owner dies

	// The third node holds no replica: it must fail over to the
	// follower and stream the replicated bytes through.
	code, failover := postRaw(t, urls[tIdx]+"/v1/jobs", body)
	if code != http.StatusOK {
		t.Fatalf("failover POST: status %d body %s", code, failover)
	}
	if !bytes.Equal(failover, ownerWarm) {
		t.Fatalf("failover answer differs from the owner's warm bytes:\n%s\n%s", failover, ownerWarm)
	}
	_ = warm
	m := servers[tIdx].Metrics()
	if m.Cluster == nil || m.Cluster.Failover != 1 {
		t.Fatalf("third node cluster metrics %+v, want failover=1", m.Cluster)
	}
	if m.Cluster.Forwarded != 1 {
		t.Fatalf("failover answer must still count as forwarded, got %+v", m.Cluster)
	}
	// The dead owner is now marked down on the router.
	if servers[tIdx].cluster.router.Up(urls[0]) {
		t.Fatal("dead owner still marked up after a failed forward")
	}
}

// TestMetricsClusterSplit mirrors the latency-split test: on every
// node, the cluster block's local+forwarded partition the jobs
// endpoint's request count exactly — warm hits, cold computes, error
// answers and proxied-in requests all land in exactly one bucket.
func TestMetricsClusterSplit(t *testing.T) {
	servers, urls := newTestCluster(t, 2, nil)

	// A seed sweep posted entirely to node 0: roughly half the keys
	// forward to node 1, the rest compute locally.
	for seed := int64(1); seed <= 8; seed++ {
		raw := TuneRequest{Method: "sam", Iterations: 40, Seed: seed}
		body, err := json.Marshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		if code, b := postRaw(t, urls[0]+"/v1/jobs?wait=1", body); code != http.StatusOK {
			t.Fatalf("seed %d: status %d body %s", seed, code, b)
		}
	}
	// An error answer (malformed body) counts local too.
	if code, _ := postRaw(t, urls[0]+"/v1/jobs", []byte(`{"method":`)); code != http.StatusBadRequest {
		t.Fatalf("malformed POST accepted")
	}

	for i, s := range servers {
		m := s.Metrics()
		if m.Cluster == nil {
			t.Fatalf("node %d: no cluster block", i)
		}
		if got, want := m.Cluster.Local+m.Cluster.Forwarded, m.Requests["jobs"]; got != want {
			t.Fatalf("node %d: local %d + forwarded %d = %d, want the request count %d",
				i, m.Cluster.Local, m.Cluster.Forwarded, got, want)
		}
	}
	m0 := servers[0].Metrics()
	if m0.Cluster.Forwarded == 0 || m0.Cluster.Local == 0 {
		t.Fatalf("an 8-seed sweep should split both ways, got local=%d forwarded=%d",
			m0.Cluster.Local, m0.Cluster.Forwarded)
	}

	// The wire shape: node id, both peers up, replication accounting.
	var wire Metrics
	if code := getJSON(t, urls[0]+"/v1/metrics", &wire); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if wire.Cluster == nil || wire.Cluster.NodeID != urls[0] || len(wire.Cluster.Peers) != 2 {
		t.Fatalf("wire cluster block %+v", wire.Cluster)
	}
	for _, p := range wire.Cluster.Peers {
		if !p.Up {
			t.Fatalf("peer %s reported down on a healthy cluster", p.Node)
		}
	}

	// Single-node servers stay clean: no cluster block in memory or on
	// the wire (the single-node wire bytes are unchanged by this PR).
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 4})
	var raw map[string]json.RawMessage
	getJSON(t, ts.URL+"/v1/metrics", &raw)
	if _, ok := raw["cluster"]; ok {
		t.Fatal("single-node /v1/metrics grew a cluster block")
	}
}

// TestClusterScatterBatch: a batch POSTed to one node fans its members
// out across the cluster and merges a fully terminal response in
// expansion order — no member is left queued behind a job id on some
// other node.
func TestClusterScatterBatch(t *testing.T) {
	servers, urls := newTestCluster(t, 3, nil)
	batch := BatchRequest{
		Template: &TuneRequest{Method: "sam", Iterations: 40, Seed: 3},
		Alphas:   []float64{0, 0.25, 0.5, 0.75, 1},
	}
	code, resp := post(t, urls[0]+"/v1/jobs:batch", batch)
	if code != http.StatusOK {
		t.Fatalf("cluster batch: status %d body %s", code, resp)
	}
	var br BatchResponse
	if err := json.Unmarshal(resp, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Jobs) != len(batch.Alphas) {
		t.Fatalf("batch answered %d members, want %d", len(br.Jobs), len(batch.Alphas))
	}
	for i, j := range br.Jobs {
		if j.State != JobDone || j.Result == nil {
			t.Fatalf("member %d not terminal-done: %+v", i, j)
		}
		want := fmt.Sprintf("weighted(alpha=%g)", batch.Alphas[i])
		if j.Result.Objective != want {
			t.Fatalf("member %d objective %q, want %q (merge order broken)", i, j.Result.Objective, want)
		}
	}
	// The members were spread: at least one computed away from node 0,
	// and node 0 proxied it (scattered counter).
	m0 := servers[0].Metrics()
	if m0.Cluster.Scattered == 0 {
		t.Fatalf("5-alpha batch scattered no members: %+v", m0.Cluster)
	}
	total := int64(0)
	for _, s := range servers {
		m := s.Metrics()
		total += m.Jobs.Completed - m.Jobs.StoreHits
	}
	if total != int64(len(batch.Alphas)) {
		t.Fatalf("cluster paid %d computes for %d distinct members", total, len(batch.Alphas))
	}

	// Re-POST: every member is warm now, wherever it lives.
	code, resp = post(t, urls[1]+"/v1/jobs:batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch re-POST: status %d", code)
	}
	if err := json.Unmarshal(resp, &br); err != nil {
		t.Fatal(err)
	}
	for i, j := range br.Jobs {
		if j.State != JobDone || !j.Cached {
			t.Fatalf("re-POSTed member %d not warm: %+v", i, j)
		}
	}
}

// TestStoreInstall pins the replica-apply semantics: install onto a
// fresh key wins and disarms the single-flight slot; any existing
// entry — the owner's own compute — wins over a late replica.
func TestStoreInstall(t *testing.T) {
	st := NewStoreShards(8, 2)
	res := TuneResult{Method: "SAM", TimeSec: 1.5, EnergyJ: 60}
	body := []byte(`{"state":"done"}` + "\n")
	if !st.Install("k1", res, body) {
		t.Fatal("install onto a fresh key refused")
	}
	if st.Install("k1", TuneResult{Method: "EM"}, []byte("other")) {
		t.Fatal("install over an existing entry must lose")
	}
	b, got, ok := st.PeekWarm([]byte("k1"))
	if !ok || !bytes.Equal(b, body) || got.Method != "SAM" {
		t.Fatalf("peek after install: ok=%v body=%q res=%+v", ok, b, got)
	}
	// The installed slot never recomputes: Do returns the replica as a
	// hit without calling the compute function.
	r2, err, hit := st.Do("k1", func() (TuneResult, error) {
		t.Fatal("Do recomputed an installed key")
		return TuneResult{}, nil
	})
	if err != nil || !hit || r2.Method != "SAM" {
		t.Fatalf("Do on installed key: %+v %v hit=%v", r2, err, hit)
	}
}

// TestBlackholedFollowerNeverBlocksWarmPath is the SetBody bugfix
// pinned at the serve layer: with the key's follower accepting
// connections but never answering, the cold compute and every warm hit
// still answer promptly — replication rides a bounded async queue,
// never the request path.
func TestBlackholedFollowerNeverBlocksWarmPath(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	blackhole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // swallow replication POSTs without ever answering
	}))
	// LIFO: unblock must run before Close — the black hole's handler
	// goroutines only return once release closes.
	defer blackhole.Close()
	defer unblock()

	sw := &swapServer{}
	self := httptest.NewServer(sw)
	defer self.Close()
	peers := []string{self.URL, blackhole.URL}
	s, err := NewCluster(Options{
		Workers:   2,
		QueueSize: 16,
		Cluster:   &ClusterOptions{NodeID: self.URL, Peers: peers, Replicate: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw.s.Store(s)
	// Unblock the black hole before draining: the replicator's Close
	// waits for the in-flight delivery, which only ends when release
	// closes (or the 5s replication timeout fires).
	t.Cleanup(func() {
		unblock()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})

	_, key, body := requestOwnedBy(t, s, self.URL)
	_ = key

	start := time.Now()
	code, _ := postRaw(t, self.URL+"/v1/jobs?wait=1", body)
	coldLatency := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("cold POST: status %d", code)
	}
	for i := 0; i < 10; i++ {
		st := time.Now()
		code, _ := postRaw(t, self.URL+"/v1/jobs", body)
		if code != http.StatusOK {
			t.Fatalf("warm POST %d: status %d", i, code)
		}
		if d := time.Since(st); d > 2*time.Second {
			t.Fatalf("warm hit %d took %v behind a black-holed follower", i, d)
		}
	}
	if coldLatency > 10*time.Second {
		t.Fatalf("cold compute took %v: replication blocked the request path", coldLatency)
	}
}
