package serve

import (
	"fmt"
	"math"
	"testing"
)

// TestJobIDMatchesSprintf pins jobID as byte-identical to the
// fmt.Sprintf("j-%06d", n) it replaced, including the sign placement
// fmt uses for negative values and widths beyond the pad.
func TestJobIDMatchesSprintf(t *testing.T) {
	cases := []int64{
		0, 1, 9, 10, 42, 99999, 100000, 999999, // within the pad
		1000000, 123456789, math.MaxInt64, // beyond the pad
		-1, -42, -99999, -999999, -1000000, math.MinInt64, // signed
	}
	for _, n := range cases {
		got := jobID(n)
		want := fmt.Sprintf("j-%06d", n)
		if got != want {
			t.Errorf("jobID(%d) = %q, want %q", n, got, want)
		}
	}
}
