package serve

import (
	"strings"
	"testing"
)

// FuzzNormalize fuzzes request canonicalization with two properties the
// warm-start store depends on:
//
//  1. Normalize is idempotent: normalizing a canonical request returns
//     it unchanged (same struct, same key).
//  2. Key-equal requests have identical normalized forms: a respelled
//     variant of the same request (case, surrounding whitespace) must
//     canonicalize to the very same struct, never to a different
//     request that happens to share the key.
//
// The seed corpus covers every name axis: scenario workloads, genome
// aliases, platforms, methods, strategies and all four objectives.
func FuzzNormalize(f *testing.F) {
	seeds := []struct {
		workload, platform, genome, method, strat, objective string
		alpha, slack, sizeMB                                 float64
		iters, restarts                                      int
		seed                                                 int64
	}{
		{"", "", "", "", "", "", 0, 0, 0, 0, 0, 0},
		{"dna:human", "paper", "", "saml", "auto", "time", 0, 0, 0, 1000, 1, 1},
		{"human", "", "", "sam", "anneal", "energy", 0, 0, 0, 500, 2, 7},
		{"", "", "mouse", "em", "exhaustive", "time", 0, 0, 0, 0, 0, 0},
		{"spmv", "gpu-like", "", "eml", "portfolio", "weighted", 0.5, 0, 0, 250, 4, 3},
		{"stencil:large", "edge", "", "sam", "genetic", "bounded", 0, 0.1, 0, 100, 1, 9},
		{"crypto:small", "paper", "", "sam", "tabu", "time", 0, 0, 512, 300, 1, 2},
		{"SPMV:LARGE", "EDGE", "", "SAM", "LOCAL", "ENERGY", 0, 0, 0, 0, 0, -5},
		{"unknown-workload", "unknown-platform", "", "bad", "bad", "bad", -1, -1, -1, -1, -1, 0},
		{" dna ", " paper ", "", " sam ", " random ", " time ", 2, 5, 1.5, 10, 10, 10},
		{"dag:resnet-ish", "gpu-like", "", "em", "exhaustive", "time", 0, 0, 0, 0, 0, 0},
		{"DAG:FORK-JOIN", "edge", "", "SAML", "anneal", "", 0, 0, 0, 200, 2, 5},
		{"sparse-solver", "", "", "sam", "auto", "time", 0, 0, 0, 300, 1, 11},
		{"dag:resnet-ish", "paper", "", "em", "", "energy", 0, 0, 0, 0, 0, 0},
	}
	for _, s := range seeds {
		f.Add(s.workload, s.platform, s.genome, s.method, s.strat, s.objective,
			s.alpha, s.slack, s.sizeMB, s.iters, s.restarts, s.seed)
	}
	f.Fuzz(func(t *testing.T, workload, platform, genome, method, strat, objective string,
		alpha, slack, sizeMB float64, iters, restarts int, seed int64) {
		r := TuneRequest{
			Workload: workload, Platform: platform, Genome: genome,
			Method: method, Strategy: strat, Objective: objective,
			Alpha: alpha, Slack: slack, SizeMB: sizeMB,
			Iterations: iters, Restarts: restarts, Seed: seed,
		}
		n, err := r.Normalize()
		if err != nil {
			return // invalid requests are rejected, not canonicalized
		}

		// Idempotence: canonical forms are fixed points.
		n2, err := n.Normalize()
		if err != nil {
			t.Fatalf("canonical request rejected on re-normalization: %+v: %v", n, err)
		}
		if n2 != n {
			t.Fatalf("Normalize not idempotent:\nonce  %+v\ntwice %+v", n, n2)
		}
		if n2.Key() != n.Key() {
			t.Fatalf("key changed across re-normalization: %q vs %q", n.Key(), n2.Key())
		}

		// A respelled variant of the same request (case and whitespace)
		// must normalize to the identical struct — key-equal requests
		// always share one canonical form.
		v := r
		v.Workload = "  " + strings.ToUpper(r.Workload) + " "
		v.Platform = strings.ToUpper(r.Platform) + "\t"
		v.Genome = " " + strings.ToUpper(r.Genome)
		v.Method = strings.ToLower(r.Method)
		v.Strategy = strings.ToUpper(r.Strategy)
		v.Objective = " " + strings.ToUpper(r.Objective) + " "
		nv, err := v.Normalize()
		if err != nil {
			t.Fatalf("respelled variant of a valid request rejected: %+v: %v", v, err)
		}
		if nv != n {
			t.Fatalf("respelled variant canonicalized differently:\noriginal %+v\nvariant  %+v", n, nv)
		}
		if nv.Key() != n.Key() {
			t.Fatalf("respelled variant keyed differently: %q vs %q", n.Key(), nv.Key())
		}
	})
}
