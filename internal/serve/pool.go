package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is returned by Pool.Submit when the bounded queue has no
// room; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrPoolClosed is returned by Pool.Submit after Shutdown began; the
// HTTP layer maps it to 503 Service Unavailable.
var ErrPoolClosed = errors.New("serve: pool shutting down")

// Pool runs submitted jobs on a fixed set of worker goroutines fed from
// a bounded queue. Submission never blocks: a full queue is reported as
// ErrQueueFull, which is the service's backpressure signal. Shutdown
// stops intake and drains — every job accepted before Shutdown, queued
// or in-flight, still runs to completion.
type Pool struct {
	queue chan func()
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	depth   atomic.Int64 // jobs accepted but not yet started
	running atomic.Int64 // jobs currently executing
}

// NewPool starts workers goroutines over a queue holding up to
// queueSize pending jobs (minimums of 1 apply to both).
func NewPool(workers, queueSize int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueSize < 1 {
		queueSize = 1
	}
	p := &Pool{queue: make(chan func(), queueSize)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.queue {
				p.depth.Add(-1)
				p.running.Add(1)
				fn()
				p.running.Add(-1)
			}
		}()
	}
	return p
}

// Submit enqueues fn, returning ErrQueueFull when the queue has no room
// and ErrPoolClosed after Shutdown began.
func (p *Pool) Submit(fn func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- fn:
		p.depth.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Shutdown stops intake and waits for every accepted job — queued and
// in-flight — to finish, or for ctx to expire (in which case workers
// keep draining in the background and the context error is returned).
// Shutdown is idempotent.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Depth returns the number of accepted jobs not yet started.
func (p *Pool) Depth() int64 { return p.depth.Load() }

// Running returns the number of jobs currently executing.
func (p *Pool) Running() int64 { return p.running.Load() }

// Capacity returns the queue capacity.
func (p *Pool) Capacity() int { return cap(p.queue) }
