package serve

import (
	"encoding/json"
	"testing"
)

// TestWarmStartGoldenDNA pins the wire-level result of a DNA tuning
// request on the default (paper) platform to golden JSON captured
// before the scenario-layer refactor, and asserts the warm-started
// re-POST returns the same bytes. The scenario plumbing must leave the
// default scenario's served results bit-identical.
func TestWarmStartGoldenDNA(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8})
	first := submitAndWait(t, ts.URL,
		`{"genome":"human","method":"sam","iterations":300,"seed":9}`)
	if first.State != JobDone || first.Result == nil {
		t.Fatalf("first job did not complete: %+v", first)
	}
	firstJSON, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"method":"SAM","config":{"host_threads":24,"host_affinity":"none","device_threads":240,"device_affinity":"balanced","host_fraction":35},"distribution":"35/65 host(24T,none) device(240T,balanced)","search_objective":0.5003671457120341,"time_sec":0.5003671457120341,"host_sec":0.30843769407705945,"device_sec":0.5003671457120341,"energy_j":223.04093071913522,"host_j":71.27296153011292,"device_j":151.7679691890223,"objective":"time","measured_objective":0.5003671457120341,"search_evaluations":301,"experiments":206}`
	if string(firstJSON) != golden {
		t.Errorf("served result diverged from the pre-scenario-layer golden:\n got  %s\n want %s", firstJSON, golden)
	}

	second := submitAndWait(t, ts.URL,
		`{"seed":9,"method":"SAM","iterations":300,"genome":"Human"}`)
	if second.State != JobDone || !second.Cached || second.Result == nil {
		t.Fatalf("re-POST not served from the warm-start store: %+v", second)
	}
	secondJSON, err := json.Marshal(second.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(secondJSON) != string(firstJSON) {
		t.Errorf("warm-started result differs from the first run:\n first  %s\n second %s", firstJSON, secondJSON)
	}
}

// TestNormalizeGoldenDivisible pins the canonical (workload, store key)
// of divisible-kernel request spellings to values captured before the
// workload-class split moved Normalize onto scenario.Resolve. The graph
// layer must leave divisible canonicalization byte-identical.
func TestNormalizeGoldenDivisible(t *testing.T) {
	cases := []struct {
		req           TuneRequest
		workload, key string
	}{
		{
			TuneRequest{Genome: "human", Method: "sam", Iterations: 300, Seed: 9},
			"dna:human",
			"w=dna:human|p=paper|mb=3246.08|m=SAM|s=auto|o=time|a=0|sl=0|it=300|r=1|seed=9",
		},
		{
			TuneRequest{Workload: "SPMV", Platform: "GPU-Like", Method: "em"},
			"spmv:medium",
			"w=spmv:medium|p=gpu-like|mb=2048|m=EM|s=auto|o=time|a=0|sl=0|it=1000|r=1|seed=0",
		},
		{
			TuneRequest{Workload: "stencil:large", Platform: "edge", Method: "saml",
				Objective: "weighted", Alpha: 0.5, Iterations: 200, Restarts: 2, Seed: 3},
			"stencil:large",
			"w=stencil:large|p=edge|mb=6144|m=SAML|s=auto|o=weighted|a=0.5|sl=0|it=200|r=2|seed=3",
		},
		{
			TuneRequest{Workload: "Mouse", Method: "eml", Objective: "energy"},
			"dna:mouse",
			"w=dna:mouse|p=paper|mb=2836.48|m=EML|s=auto|o=energy|a=0|sl=0|it=1000|r=1|seed=0",
		},
	}
	for _, c := range cases {
		n, err := c.req.Normalize()
		if err != nil {
			t.Fatalf("%+v: %v", c.req, err)
		}
		if n.Workload != c.workload {
			t.Errorf("%+v: canonical workload %q, want %q", c.req, n.Workload, c.workload)
		}
		if got := n.Key(); got != c.key {
			t.Errorf("%+v: key diverged from the pre-graph-layer golden:\n got  %s\n want %s", c.req, got, c.key)
		}
	}
}
