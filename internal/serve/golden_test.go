package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWarmStartGoldenDNA pins the wire-level result of a DNA tuning
// request on the default (paper) platform to golden JSON captured
// before the scenario-layer refactor, and asserts the warm-started
// re-POST returns the same bytes. The scenario plumbing must leave the
// default scenario's served results bit-identical.
func TestWarmStartGoldenDNA(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8})
	first := submitAndWait(t, ts.URL,
		`{"genome":"human","method":"sam","iterations":300,"seed":9}`)
	if first.State != JobDone || first.Result == nil {
		t.Fatalf("first job did not complete: %+v", first)
	}
	firstJSON, err := json.Marshal(first.Result)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"method":"SAM","config":{"host_threads":24,"host_affinity":"none","device_threads":240,"device_affinity":"balanced","host_fraction":35},"distribution":"35/65 host(24T,none) device(240T,balanced)","search_objective":0.5003671457120341,"time_sec":0.5003671457120341,"host_sec":0.30843769407705945,"device_sec":0.5003671457120341,"energy_j":223.04093071913522,"host_j":71.27296153011292,"device_j":151.7679691890223,"objective":"time","measured_objective":0.5003671457120341,"search_evaluations":301,"experiments":206}`
	if string(firstJSON) != golden {
		t.Errorf("served result diverged from the pre-scenario-layer golden:\n got  %s\n want %s", firstJSON, golden)
	}

	second := submitAndWait(t, ts.URL,
		`{"seed":9,"method":"SAM","iterations":300,"genome":"Human"}`)
	if second.State != JobDone || !second.Cached || second.Result == nil {
		t.Fatalf("re-POST not served from the warm-start store: %+v", second)
	}
	secondJSON, err := json.Marshal(second.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(secondJSON) != string(firstJSON) {
		t.Errorf("warm-started result differs from the first run:\n first  %s\n second %s", firstJSON, secondJSON)
	}
}

// TestExactServedWithCertificateAndPool runs the exact strategy through
// the full service path and checks the redesigned result surface: the
// certificate proves the optimum (with real pruning), the pool rides
// along, and the warm-hit fast path — which serves pre-rendered bytes —
// returns the certificate-bearing body bit-identically on both the
// inline re-POST and GET /v1/jobs/{id}.
func TestExactServedWithCertificateAndPool(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8})
	body := `{"workload":"dna:human","method":"em","strategy":"exact","prove":true,"pool_size":3}`
	first := submitAndWait(t, ts.URL, body)
	if first.State != JobDone || first.Result == nil {
		t.Fatalf("exact job did not complete: %+v", first)
	}
	if want := "|ps=3|pg=0.1|pr=true"; !strings.HasSuffix(first.Key, want) {
		t.Fatalf("exact key %q missing pool-knob suffix %q", first.Key, want)
	}
	cert := first.Result.Certificate
	if cert == nil || !cert.Optimal || cert.Gap != 0 {
		t.Fatalf("proved exact run without a proof: %+v", cert)
	}
	if cert.Pruned == 0 || cert.Explored == 0 {
		t.Fatalf("paper-space exact run should prune: %+v", cert)
	}
	pool := first.Result.Pool
	if len(pool) == 0 || pool[0].Config == nil {
		t.Fatalf("exact run with pool_size 3 returned no pool: %+v", pool)
	}
	if *pool[0].Config != first.Result.Config || pool[0].Objective != first.Result.SearchObjective {
		t.Fatalf("pool[0] %+v is not the optimum %+v", pool[0], first.Result.Config)
	}
	for _, e := range pool {
		if e.Distribution == "" || e.Encoded != "" {
			t.Fatalf("divisible pool entry malformed: %+v", e)
		}
	}

	// Same request, shuffled fields: the inline warm hit serves the
	// pre-rendered body, certificate and pool included.
	code, resp := post(t, ts.URL+"/v1/jobs",
		`{"pool_size":3,"prove":true,"strategy":"exact","method":"EM","workload":"dna:human"}`)
	if code != 200 {
		t.Fatalf("warm re-POST: status %d body %s", code, resp)
	}
	var second JobStatus
	if err := json.Unmarshal(resp, &second); err != nil {
		t.Fatal(err)
	}
	if second.State != JobDone || !second.Cached {
		t.Fatalf("exact re-POST not a warm hit: %+v", second)
	}
	b1, _ := json.Marshal(first.Result)
	b2, _ := json.Marshal(second.Result)
	if string(b1) != string(b2) {
		t.Fatalf("warm exact result differs:\n%s\n%s", b1, b2)
	}

	// GET on the cold job serves the same certificate-bearing bytes.
	var got JobStatus
	getJSON(t, ts.URL+"/v1/jobs/"+first.ID, &got)
	b3, _ := json.Marshal(got.Result)
	if string(b3) != string(b1) {
		t.Fatalf("GET result differs from POST result:\n%s\n%s", b3, b1)
	}
}

// TestExactDAGServedWithCertificate covers the placement path: the exact
// strategy over a task graph returns a certificate and an encoded-pool
// block priced by the simulator.
func TestExactDAGServedWithCertificate(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueSize: 8})
	st := submitAndWait(t, ts.URL,
		`{"workload":"dag:fork-join","method":"em","strategy":"exact","prove":true,"pool_size":2}`)
	if st.State != JobDone || st.Result == nil {
		t.Fatalf("exact DAG job did not complete: %+v", st)
	}
	cert := st.Result.Certificate
	if cert == nil || !cert.Optimal {
		t.Fatalf("DAG exact run not certified: %+v", cert)
	}
	if cert.Pruned == 0 {
		t.Fatalf("critical-path bound should prune the placement tree: %+v", cert)
	}
	if st.Result.Placement == nil {
		t.Fatal("DAG result lost its placement block")
	}
	if len(st.Result.Pool) == 0 {
		t.Fatal("DAG exact run with pool_size 2 returned no pool")
	}
	for _, e := range st.Result.Pool {
		if e.Encoded == "" || e.Config != nil {
			t.Fatalf("DAG pool entry malformed: %+v", e)
		}
	}
	if st.Result.Pool[0].Encoded != st.Result.Placement.Encoded {
		t.Fatalf("pool[0] %q is not the winning placement %q",
			st.Result.Pool[0].Encoded, st.Result.Placement.Encoded)
	}
}

// TestNormalizeGoldenDivisible pins the canonical (workload, store key)
// of divisible-kernel request spellings to values captured before the
// workload-class split moved Normalize onto scenario.Resolve. The graph
// layer must leave divisible canonicalization byte-identical.
func TestNormalizeGoldenDivisible(t *testing.T) {
	cases := []struct {
		req           TuneRequest
		workload, key string
	}{
		{
			TuneRequest{Genome: "human", Method: "sam", Iterations: 300, Seed: 9},
			"dna:human",
			"w=dna:human|p=paper|mb=3246.08|m=SAM|s=auto|o=time|a=0|sl=0|it=300|r=1|seed=9",
		},
		{
			TuneRequest{Workload: "SPMV", Platform: "GPU-Like", Method: "em"},
			"spmv:medium",
			"w=spmv:medium|p=gpu-like|mb=2048|m=EM|s=auto|o=time|a=0|sl=0|it=1000|r=1|seed=0",
		},
		{
			TuneRequest{Workload: "stencil:large", Platform: "edge", Method: "saml",
				Objective: "weighted", Alpha: 0.5, Iterations: 200, Restarts: 2, Seed: 3},
			"stencil:large",
			"w=stencil:large|p=edge|mb=6144|m=SAML|s=auto|o=weighted|a=0.5|sl=0|it=200|r=2|seed=3",
		},
		{
			TuneRequest{Workload: "Mouse", Method: "eml", Objective: "energy"},
			"dna:mouse",
			"w=dna:mouse|p=paper|mb=2836.48|m=EML|s=auto|o=energy|a=0|sl=0|it=1000|r=1|seed=0",
		},
	}
	for _, c := range cases {
		n, err := c.req.Normalize()
		if err != nil {
			t.Fatalf("%+v: %v", c.req, err)
		}
		if n.Workload != c.workload {
			t.Errorf("%+v: canonical workload %q, want %q", c.req, n.Workload, c.workload)
		}
		if got := n.Key(); got != c.key {
			t.Errorf("%+v: key diverged from the pre-graph-layer golden:\n got  %s\n want %s", c.req, got, c.key)
		}
	}
}

// TestNormalizeExactKnobs pins the exact-only knob canonicalization: the
// pool/prove fields join the store key only under the exact strategy (so
// every pre-existing key keeps its bytes), are zeroed elsewhere exactly
// like Alpha outside "weighted", and the pool gap defaults/clamps the
// way the strategy layer documents.
func TestNormalizeExactKnobs(t *testing.T) {
	n, err := TuneRequest{Genome: "human", Method: "em", Strategy: "exact",
		Prove: true, PoolSize: 3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	const key = "w=dna:human|p=paper|mb=3246.08|m=EM|s=exact|o=time|a=0|sl=0|it=1000|r=1|seed=0|ps=3|pg=0.1|pr=true"
	if got := n.Key(); got != key {
		t.Errorf("exact key:\n got  %s\n want %s", got, key)
	}

	// A pool size implies the default gap; an explicit gap survives; an
	// oversized pool clamps.
	if n.PoolGap != 0.1 {
		t.Errorf("pool_gap not defaulted: %g", n.PoolGap)
	}
	big, err := TuneRequest{Genome: "human", Strategy: "exact", PoolSize: 1000, PoolGap: 0.25}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if big.PoolSize != 64 || big.PoolGap != 0.25 {
		t.Errorf("pool_size/gap canonicalization: %d/%g, want 64/0.25", big.PoolSize, big.PoolGap)
	}

	// Non-exact strategies zero the knobs and keep the legacy key bytes.
	h, err := TuneRequest{Genome: "human", Method: "sam", Iterations: 300, Seed: 9,
		Prove: true, PoolSize: 8, PoolGap: 0.5}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if h.PoolSize != 0 || h.PoolGap != 0 || h.Prove {
		t.Errorf("heuristic request kept exact-only knobs: %+v", h)
	}
	const legacy = "w=dna:human|p=paper|mb=3246.08|m=SAM|s=auto|o=time|a=0|sl=0|it=300|r=1|seed=9"
	if got := h.Key(); got != legacy {
		t.Errorf("heuristic key gained bytes:\n got  %s\n want %s", got, legacy)
	}

	// Invalid knobs are rejected.
	if _, err := (TuneRequest{Genome: "human", Strategy: "exact", PoolSize: -1}).Normalize(); err == nil {
		t.Error("negative pool_size accepted")
	}
	if _, err := (TuneRequest{Genome: "human", Strategy: "exact", PoolGap: -0.5}).Normalize(); err == nil {
		t.Error("negative pool_gap accepted")
	}
}
